(* ultraspan command-line interface.

   dune exec bin/ultraspan_cli.exe -- generate --family grid -n 100 -o g.txt
   dune exec bin/ultraspan_cli.exe -- spanner --algo ultra -t 4 -i g.txt
   dune exec bin/ultraspan_cli.exe -- certificate --algo packing -k 3 -i g.txt
   dune exec bin/ultraspan_cli.exe -- resilience --algo thurimella -k 3 --family harary --degree 3 -n 60
   dune exec bin/ultraspan_cli.exe -- resilience --spanner bs -k 3 --failures 2 -i g.txt
   dune exec bin/ultraspan_cli.exe -- stats -i g.txt *)

open Ultraspan
open Cmdliner

(* ---------- shared arguments ---------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input graph (edge list; see Graph_io).")

let family_arg =
  Arg.(
    value
    & opt string "gnp"
    & info [ "family" ] ~docv:"FAM"
        ~doc:
          "Graph family: gnp | geometric | grid | torus | hypercube | harary \
           | path | cycle | preferential.")

let n_arg =
  Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Vertex count.")

let degree_arg =
  Arg.(
    value & opt float 8.0
    & info [ "degree" ] ~docv:"D" ~doc:"Average degree (gnp/preferential).")

let weights_arg =
  Arg.(
    value & opt int 1
    & info [ "max-weight" ] ~docv:"W"
        ~doc:"Randomize integer weights in [1, W] (1 = unweighted).")

let k_arg doc = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc)

let t_arg =
  Arg.(value & opt int 4 & info [ "t" ] ~docv:"T" ~doc:"Sparsity parameter t.")

let eps_arg =
  Arg.(value & opt float 0.5 & info [ "epsilon" ] ~docv:"EPS" ~doc:"Epsilon.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write result to FILE.")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("fast", `Fast); ("ref", `Ref) ]) `Fast
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "CONGEST simulator message plane: fast (CSR slot-based, default) \
           or ref (list-based reference oracle).  Both are observably \
           identical; the flag exists for A/B perf runs.")

let backend_arg =
  Arg.(
    value
    & opt (some (enum [ ("seq", `Seq); ("sharded", `Sharded) ])) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Fast-engine round-delivery backend: seq (single-domain) or \
           sharded (two-phase parallel delivery over the domain pool; \
           byte-identical results for any job count).  Default: sharded \
           on a multicore machine, seq otherwise.  Not valid with \
           --engine ref.")

(* The ref oracle is list-based and single-domain by definition; reject
   the contradictory combination up front with a one-line diagnostic
   (main turns the Failure into exit 1). *)
let check_engine_backend engine backend =
  match (engine, backend) with
  | `Ref, Some `Sharded ->
      failwith "--engine ref has no sharded delivery backend (drop --backend \
                sharded or use --engine fast)"
  | _ -> ()

let verify_mode_enum =
  Arg.enum
    [ ("local", Verify.Local); ("exact", Verify.Exact); ("probe", Verify.Probe) ]

let verify_arg =
  Arg.(
    value
    & opt (some verify_mode_enum) None
    & info [ "verify" ] ~docv:"MODE"
        ~doc:
          "Verify the produced artifact before exiting: local (build \
           per-node witnesses and run the O(k)-round CONGEST checker \
           programs on the simulator), exact (the centralized ground-truth \
           checkers), or probe (the sublinear eps-far connectivity \
           spot-check).  Exit 1 if the artifact is rejected.")

(* Shared tail of every --verify run: print the canonical verdict line,
   exit 1 on rejection (after [k] so metrics snapshots still flush). *)
let report_verdict v =
  Format.printf "verify          : %a@." Verify.pp_verdict v;
  v.Verify.ok

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write an ultraspan-metrics/1 JSON snapshot of the run's metrics \
           registry to $(docv).  The snapshot is flushed (flagged partial) \
           even when the run aborts, e.g. on a round-limit overrun.")

(* Run [f] against a metrics registry: a live one wired into the global
   Parallel instrumentation when --metrics FILE was given, the shared
   no-op sink otherwise.  The snapshot is saved even when [f] raises —
   flagged partial — so an aborted run keeps its counters, then the
   exception propagates. *)
let with_metrics file f =
  match file with
  | None -> f Metrics.disabled
  | Some path ->
      let reg = Metrics.create () in
      Parallel.set_metrics (Some reg);
      let save () =
        Parallel.set_metrics None;
        Metrics_io.save_registry path reg;
        Printf.printf "wrote metrics snapshot to %s\n%!" path
      in
      (match f reg with
      | r ->
          save ();
          r
      | exception e ->
          Metrics.mark_partial reg;
          save ();
          raise e)

let make_graph family n degree max_w seed =
  let rng = Rng.create seed in
  let g =
    match family with
    | "gnp" -> Generators.connected_gnp ~rng ~n ~avg_degree:degree
    | "geometric" ->
        Generators.ensure_connected ~rng
          (Generators.random_geometric ~rng ~n
             ~radius:(sqrt (degree /. (3.14 *. float_of_int n))))
    | "grid" ->
        let s = int_of_float (sqrt (float_of_int n)) in
        Generators.grid s s
    | "torus" ->
        let s = max 3 (int_of_float (sqrt (float_of_int n))) in
        Generators.torus s s
    | "hypercube" ->
        Generators.hypercube
          (int_of_float (Float.log2 (float_of_int (max 2 n))))
    | "harary" -> Generators.harary ~k:(int_of_float degree) ~n
    | "path" -> Generators.path n
    | "cycle" -> Generators.cycle n
    | "preferential" ->
        Generators.preferential_attachment ~rng ~n
          ~degree:(max 1 (int_of_float degree))
    | f -> failwith ("unknown family: " ^ f)
  in
  if max_w > 1 then Generators.randomize_weights ~rng ~lo:1 ~hi:max_w g else g

let load_graph input family n degree max_w seed =
  match input with
  | Some path -> Graph_io.load path
  | None -> make_graph family n degree max_w seed

(* ---------- generate ---------- *)

let generate family n degree max_w seed output =
  let g = make_graph family n degree max_w seed in
  (match output with
  | Some path -> Graph_io.save path g
  | None -> print_string (Graph_io.to_string g));
  Format.eprintf "generated %a@." Graph.pp g

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a graph and print/save it.")
    Term.(
      const generate $ family_arg $ n_arg $ degree_arg $ weights_arg $ seed_arg
      $ output_arg)

(* ---------- stats ---------- *)

let stats input family n degree max_w seed =
  let g = load_graph input family n degree max_w seed in
  Format.printf "%a@." Graph.pp g;
  Printf.printf "max degree      : %d\n" (Graph.max_degree g);
  let _, comps = Connectivity.components g in
  Printf.printf "components      : %d\n" comps;
  if Graph.n g <= 2000 then begin
    Printf.printf "hop diameter    : %d\n" (Bfs.diameter_hops g)
  end;
  if Graph.n g <= 500 then
    Printf.printf "edge connectivity: %d\n" (Maxflow.edge_connectivity g)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print basic statistics of a graph.")
    Term.(
      const stats $ input_arg $ family_arg $ n_arg $ degree_arg $ weights_arg
      $ seed_arg)

(* ---------- shared algorithm dispatch ---------- *)

let build_spanner ?(engine = `Fast) ?backend ?jobs ?metrics ~algo ~k ~t ~seed g =
  match algo with
  | "bs" -> (Baswana_sen.run ~rng:(Rng.create seed) ~k g).Baswana_sen.spanner
  | "bs-distributed" ->
      (Bs_distributed.run ?metrics ~engine ?backend ?jobs ~seed ~k g)
        .Bs_distributed.spanner
  | "bs-derand" -> (Bs_derand.run ~k g).Bs_derand.spanner
  | "linear" -> (Linear_size.run g).Linear_size.spanner
  | "linear-random" ->
      (Linear_size.run ~variant:(Linear_size.Randomized (Rng.create seed)) g)
        .Linear_size.spanner
  | "ultra" -> (Ultra_sparse.run ~t g).Ultra_sparse.spanner
  | "greedy" -> Greedy.run ~k g
  | "en" -> (Elkin_neiman.run ~rng:(Rng.create seed) ~k g).Elkin_neiman.spanner
  | "clustering" -> (Clustering_spanner.sparse g).Clustering_spanner.spanner
  | "clustering-ultra" ->
      (Clustering_spanner.ultra_sparse ~t g).Clustering_spanner.spanner
  | a -> failwith ("unknown algorithm: " ^ a)

let build_certificate ~algo ~k ~eps ~seed g =
  match algo with
  | "ni" -> Nagamochi_ibaraki.certificate ~k g
  | "thurimella" -> Thurimella.certificate ~k g
  | "packing" ->
      (Spanner_packing.run ~k ~epsilon:eps g).Spanner_packing.certificate
  | "kecss" -> (Kecss.approximate ~epsilon:eps ~k g).Kecss.certificate
  | "karger" ->
      (Karger_split.run ~rng:(Rng.create seed) ~k ~epsilon:eps g)
        .Karger_split.certificate
  | a -> failwith ("unknown algorithm: " ^ a)

(* ---------- spanner ---------- *)

let spanner algo k t engine backend breakdown jobs verify mfile input family n
    degree max_w seed output =
  check_engine_backend engine backend;
  let g = load_graph input family n degree max_w seed in
  Format.printf "input: %a@." Graph.pp g;
  let ok =
    with_metrics mfile @@ fun metrics ->
    let sp = build_spanner ~engine ?backend ~jobs ~metrics ~algo ~k ~t ~seed g in
    Printf.printf "spanner edges   : %d (%.2f per vertex)\n" (Spanner.size sp)
      (float_of_int (Spanner.size sp) /. float_of_int (Graph.n g));
    Printf.printf "spanning        : %b\n" (Spanner.is_spanning g sp);
    if Graph.n g <= 4096 then
      Printf.printf "exact stretch   : %.2f\n"
        (Stretch.max_edge_stretch ~jobs g sp.Spanner.keep);
    Printf.printf "simulated rounds: %d\n" (Spanner.total_rounds sp);
    if breakdown then
      Format.printf "round breakdown : %a@." Rounds.pp sp.Spanner.rounds;
    (match output with
    | None -> ()
    | Some path ->
        Graph_io.save path (Graph.sub_by_eids g sp.Spanner.keep);
        Printf.printf "wrote spanner to %s\n" path);
    match verify with
    | None -> true
    | Some mode ->
        (* the (2k-1) bound comes from --k, whatever --algo built *)
        report_verdict
          (Verify.spanner ~engine ?backend ~jobs ~seed ~mode ~k g sp)
  in
  if not ok then exit 1

let spanner_algo_arg =
  Arg.(
    value & opt string "ultra"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:
          "bs | bs-distributed | bs-derand | linear | linear-random | ultra \
           | greedy | en | clustering | clustering-ultra.")

let breakdown_arg =
  Arg.(
    value & flag
    & info [ "breakdown" ]
        ~doc:
          "Print the hierarchical round-accounting tree (algorithm -> phase \
           -> step spans).")

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the stretch verification over $(docv) domains (default \
           ULTRASPAN_JOBS or 1).  The result is identical for every N.")

let spanner_cmd =
  Cmd.v
    (Cmd.info "spanner" ~doc:"Compute a spanner and report its guarantees.")
    Term.(
      const spanner $ spanner_algo_arg
      $ k_arg "Stretch parameter k (stretch 2k-1)."
      $ t_arg $ engine_arg $ backend_arg $ breakdown_arg $ jobs_arg
      $ verify_arg $ metrics_arg
      $ input_arg $ family_arg $ n_arg $ degree_arg $ weights_arg $ seed_arg
      $ output_arg)

(* ---------- certificate ---------- *)

let certificate algo k eps input family n degree max_w seed output =
  let g = load_graph input family n degree max_w seed in
  Format.printf "input: %a@." Graph.pp g;
  let c = build_certificate ~algo ~k ~eps ~seed g in
  Printf.printf "certificate edges: %d (%.2f x kn)\n" (Certificate.size c)
    (float_of_int (Certificate.size c) /. float_of_int (k * Graph.n g));
  if Graph.n g <= 500 then begin
    let lg, lh = Certificate.preserved_connectivity g c in
    Printf.printf "connectivity     : G %d -> H %d (capped at k+1)\n" lg lh;
    Printf.printf "valid certificate: %b\n" (Certificate.is_certificate g c)
  end;
  Printf.printf "simulated rounds : %d\n" (Ultraspan.Rounds.total c.Certificate.rounds);
  match output with
  | None -> ()
  | Some path ->
      Graph_io.save path (Certificate.subgraph g c);
      Printf.printf "wrote certificate to %s\n" path

let cert_algo_arg =
  Arg.(
    value & opt string "packing"
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"ni | thurimella | packing | kecss | karger.")

let certificate_cmd =
  Cmd.v
    (Cmd.info "certificate" ~doc:"Compute a k-connectivity certificate.")
    Term.(
      const certificate $ cert_algo_arg $ k_arg "Connectivity parameter k."
      $ eps_arg $ input_arg $ family_arg $ n_arg $ degree_arg $ weights_arg
      $ seed_arg $ output_arg)

(* ---------- resilience ---------- *)

(* Domain validation for user-supplied parameters: a one-line [Failure]
   (caught in [main] below) instead of a backtrace from deep inside a
   library. *)
let validate_k who k =
  if k < 1 then failwith (Printf.sprintf "%s: k must be >= 1 (got %d)" who k)

let resilience algo spanner_algo k t eps budget trials failures verify input
    family n degree max_w seed =
  validate_k "resilience" k;
  if budget < 1 then
    failwith (Printf.sprintf "resilience: budget must be >= 1 (got %d)" budget);
  if trials < 0 then
    failwith (Printf.sprintf "resilience: trials must be >= 0 (got %d)" trials);
  (match failures with
  | Some f when f < 0 ->
      failwith (Printf.sprintf "resilience: failures must be >= 0 (got %d)" f)
  | _ -> ());
  let g = load_graph input family n degree max_w seed in
  Format.printf "input: %a@." Graph.pp g;
  match spanner_algo with
  | Some salgo ->
      let sp = build_spanner ~algo:salgo ~k ~t ~seed g in
      let failures = match failures with Some f -> f | None -> max 1 (k - 1) in
      Printf.printf "spanner %s: %d edges\n" salgo (Spanner.size sp);
      let r =
        Resilience.check_spanner ~rng:(Rng.create seed) ~trials ~failures g
          sp.Spanner.keep
      in
      Format.printf "%a@." Resilience.pp_spanner_report r;
      (match verify with
      | None -> ()
      | Some mode ->
          if not (report_verdict (Verify.spanner ~seed ~mode ~k g sp)) then
            exit 1)
  | None ->
      let c = build_certificate ~algo ~k ~eps ~seed g in
      Printf.printf "certificate %s: %d edges (k = %d)\n" algo
        (Certificate.size c) k;
      let r = Resilience.check_certificate ~rng:(Rng.create seed) ~budget g c in
      Format.printf "%a@." Resilience.pp_cert_report r;
      Printf.printf "resilient        : %b\n" (r.Resilience.violations = 0);
      let verified =
        match verify with
        | None -> true
        | Some mode -> report_verdict (Verify.certificate ~seed ~mode g c)
      in
      if r.Resilience.violations > 0 || not verified then exit 1

let spanner_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spanner" ] ~docv:"ALGO"
        ~doc:
          "Measure stretch degradation of this spanner algorithm under edge \
           deletions instead of checking a certificate.")

let budget_arg =
  Arg.(
    value & opt int 2000
    & info [ "budget" ] ~docv:"B"
        ~doc:
          "Failure-set budget: enumerate exhaustively when the count of \
           sets with at most k-1 edges fits, sample B sets otherwise.")

let trials_arg =
  Arg.(
    value & opt int 32
    & info [ "trials" ] ~docv:"T" ~doc:"Trials for spanner degradation.")

let failures_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "failures" ] ~docv:"F"
        ~doc:"Edges removed per spanner trial (default k-1).")

let resilience_cmd =
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Evaluate a certificate (or, with --spanner, a spanner) under edge \
          failures: a k-connectivity certificate must preserve the \
          components of G - F for every failure set with at most k-1 \
          edges.  Exits non-zero if a violation is found.")
    Term.(
      const resilience $ cert_algo_arg $ spanner_opt_arg
      $ k_arg "Connectivity / stretch parameter k."
      $ t_arg $ eps_arg $ budget_arg $ trials_arg $ failures_arg $ verify_arg
      $ input_arg $ family_arg $ n_arg $ degree_arg $ weights_arg $ seed_arg)

(* ---------- stream ---------- *)

let stream replay emit batches ops insert_frac from_faults mode cert cert_k k
    jobs verify mfile input family n degree max_w seed output =
  validate_k "stream" k;
  if jobs < 1 then
    failwith (Printf.sprintf "stream: jobs must be >= 1 (got %d)" jobs);
  let g = load_graph input family n degree max_w seed in
  let make_stream () =
    let rng = Rng.create seed in
    let s =
      if from_faults > 0 then
        Update_stream.of_faults g
          (Faults.random_link_failures ~rng g ~within:(max 0 (batches - 1))
             ~count:from_faults Faults.empty)
      else Update_stream.generate ~rng ~batches ~ops ~insert_frac g
    in
    { s with Update_stream.seed }
  in
  match (replay, emit) with
  | None, false | Some _, true ->
      failwith "stream: pass exactly one of --emit or --replay FILE"
  | None, true ->
      with_metrics mfile @@ fun _metrics ->
      let s = make_stream () in
      (match output with
      | Some path ->
          Update_stream.save path s;
          (* the artifact path goes to stdout, like every other writer *)
          Format.printf "wrote %a to %s@." Update_stream.pp s path
      | None -> print_string (Update_stream.to_string s))
  | Some path, false ->
      let s = if path = "-" then make_stream () else Update_stream.load path in
      Format.printf "input: %a@." Graph.pp g;
      Format.printf "stream: %a@." Update_stream.pp s;
      (* --verify picks the per-batch recertification mode of the engine *)
      let recert =
        match verify with
        | Some Verify.Local -> `Local
        | Some Verify.Probe -> `Probe
        | None | Some Verify.Exact -> `Exact
      in
      let cfg =
        {
          (Repair.defaults ~k) with
          Repair.mode;
          cert = Option.map (fun algo -> (algo, cert_k)) cert;
          jobs;
          recert;
        }
      in
      (match cfg.Repair.cert with
      | Some (_, ck) when ck < 1 ->
          failwith (Printf.sprintf "stream: cert-k must be >= 1 (got %d)" ck)
      | _ -> ());
      let failed =
        with_metrics mfile @@ fun metrics ->
      let eng = Repair.create ~metrics cfg g in
      Printf.printf "initial: %d spanner edges (stretch bound %d)%s\n"
        (Repair.spanner_size eng)
        ((2 * k) - 1)
        (if cfg.Repair.cert = None then ""
         else Printf.sprintf ", %d certificate edges" (Repair.certificate_size eng));
      let failures = ref 0 in
      List.iteri
        (fun i b ->
          let o = Repair.apply_batch eng b in
          let v = Repair.recertify ~rng:(Rng.create seed) eng in
          let ok =
            v.Repair.stretch_ok && v.Repair.spanning
            && v.Repair.cert_ok <> Some false
          in
          if not ok then incr failures;
          Format.printf "%a | %a@." Repair.pp_outcome o Repair.pp_verdicts v;
          ignore i)
        s.Update_stream.batches;
      Printf.printf "final: %d edges, %d spanner edges, recertified %d/%d batches\n"
        (Graph.m (Repair.graph eng))
        (Repair.spanner_size eng)
        (List.length s.Update_stream.batches - !failures)
        (List.length s.Update_stream.batches);
      !failures
      in
      (* exit after with_metrics has flushed the snapshot *)
      if failed > 0 then exit 1

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:
          "Replay stream $(docv) through the repair engine against the \
           input graph, recertifying after every batch ($(b,-) generates \
           the stream in-process from --seed instead of reading a file).")

let emit_arg =
  Arg.(
    value & flag
    & info [ "emit" ]
        ~doc:"Generate a seeded stream and print it (or save with -o).")

let batches_arg =
  Arg.(
    value & opt int 8
    & info [ "batches" ] ~docv:"B" ~doc:"Batches to generate (--emit).")

let ops_arg =
  Arg.(
    value & opt int 16
    & info [ "ops" ] ~docv:"O" ~doc:"Ops per generated batch (--emit).")

let insert_frac_arg =
  Arg.(
    value & opt float 0.5
    & info [ "insert-frac" ] ~docv:"F"
        ~doc:"Fraction of insertions among generated ops (in [0, 1]).")

let from_faults_arg =
  Arg.(
    value & opt int 0
    & info [ "from-faults" ] ~docv:"L"
        ~doc:
          "Derive the stream from a random fault plan with $(docv) link \
           failures (PR 1 semantics: a link failure is an edge deletion) \
           instead of the insert/delete generator.")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("repair", `Incremental); ("rebuild", `Rebuild) ]) `Incremental
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Maintenance mode: incremental repair (default) or from-scratch \
           rebuild every batch (the differential baseline).")

let cert_opt_arg =
  Arg.(
    value
    & opt
        (some (enum [ ("thurimella", Repair.Thurimella); ("kecss", Repair.Kecss) ]))
        None
    & info [ "cert" ] ~docv:"ALGO"
        ~doc:
          "Also maintain a connectivity certificate (thurimella | kecss) \
           with lazy recertification.")

let cert_k_arg =
  Arg.(
    value & opt int 2
    & info [ "cert-k" ] ~docv:"CK"
        ~doc:"Connectivity certified by --cert (default 2).")

let stream_cmd =
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Batched edge-update streams (ultraspan-stream/1): generate or \
          fault-derive one with --emit, or --replay one through the \
          incremental spanner-repair engine, recertifying the spanner (and \
          optional certificate) after every batch with the ground-truth \
          checkers.  Exits non-zero if any post-batch state fails \
          recertification.")
    Term.(
      const stream $ replay_arg $ emit_arg $ batches_arg $ ops_arg
      $ insert_frac_arg $ from_faults_arg $ mode_arg $ cert_opt_arg
      $ cert_k_arg
      $ k_arg "Stretch parameter k (stretch 2k-1)."
      $ jobs_arg $ verify_arg $ metrics_arg $ input_arg $ family_arg $ n_arg
      $ degree_arg $ weights_arg $ seed_arg $ output_arg)

(* ---------- verify ---------- *)

let verify_matrix engine backend jobs quick seed =
  check_engine_backend engine backend;
  let ok =
    Verify.matrix ~engine ?backend ~jobs ~seed ~quick Format.std_formatter
  in
  if not ok then exit 1

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ]
        ~doc:"Small graphs (the CI verify job's per-configuration setting).")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the corruption-detection matrix of the verification plane: \
          build valid spanners and connectivity certificates, check the \
          CONGEST checker programs accept them, then apply seeded \
          corruptions (dropped spanner edges, truncated / detached / \
          erased detours, dropped forest arcs, flipped forest labels, \
          corrupted depth and root labels) and check every one is \
          rejected, plus eps-far probe controls.  The transcript is \
          canonical: byte-identical across --engine, --backend and -j \
          (CI diffs it with cmp).  Exits non-zero on any miss.")
    Term.(
      const verify_matrix $ engine_arg $ backend_arg $ jobs_arg $ quick_arg
      $ seed_arg)

(* ---------- trace ---------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let trace prog k root engine backend drop crashes top mfile input family n
    degree max_w seed output =
  check_engine_backend engine backend;
  let g = load_graph input family n degree max_w seed in
  Format.printf "input: %a@." Graph.pp g;
  let plan =
    let p = Faults.empty in
    let p = if drop > 0.0 then Faults.with_drops ~seed drop p else p in
    if crashes > 0 then
      Faults.random_crashes ~rng:(Rng.create seed) ~n:(Graph.n g) ~within:4
        ~count:crashes p
    else p
  in
  let faulty = plan <> Faults.empty in
  let faults = if faulty then Some (Faults.make plan) else None in
  if faulty then Format.printf "fault plan: %a@." Faults.pp plan;
  let tr = Trace.create g in
  let prof = Profile.create () in
  with_metrics mfile @@ fun metrics ->
  let stats =
    Profile.time prof prog @@ fun () ->
    match prog with
    | "bfs" ->
        snd (Programs.bfs ?faults ~trace:tr ~metrics ~engine ?backend g ~root)
    | "broadcast" ->
        snd
          (Programs.broadcast_max ?faults ~trace:tr ~metrics ~engine ?backend g
             ~values:(Array.init (Graph.n g) Fun.id))
    | p when faulty ->
        failwith
          (Printf.sprintf
             "program %s does not take a fault plan (only bfs | broadcast)" p)
    | "matching" ->
        snd (Programs.maximal_matching ~trace:tr ~metrics ~engine ?backend g)
    | "mis" -> snd (Programs.luby_mis ~trace:tr ~metrics ~engine ?backend ~seed g)
    | "bellman-ford" ->
        snd
          (Programs.bellman_ford ~trace:tr ~metrics ~engine ?backend g
             ~source:root)
    | "forest" ->
        snd (Programs.spanning_forest ~trace:tr ~metrics ~engine ?backend g)
    | "bs" ->
        (Bs_distributed.run ~trace:tr ~metrics ~engine ?backend ~seed ~k g)
          .Bs_distributed.network_stats
    | p -> failwith ("unknown program: " ^ p)
  in
  Printf.printf "rounds          : %d\n" stats.Network.rounds;
  Printf.printf "messages        : %d\n" stats.Network.messages;
  if stats.Network.drops > 0 then
    Printf.printf "dropped         : %d\n" stats.Network.drops;
  Format.printf "%a@?" (Trace.pp_summary ~top) tr;
  (* phase wall-clock flows into both exports: the metrics snapshot (as
     timing.profile.* timers) and the Chrome trace (as span events) *)
  Profile.export prof metrics;
  let prefix = match output with Some p -> p | None -> "trace" in
  write_file (prefix ^ ".jsonl") (Trace.to_jsonl tr);
  write_file (prefix ^ ".trace.json")
    (Trace.to_chrome ~extra_events:(Profile.chrome_events prof) tr);
  Printf.printf "wrote %s.jsonl (one record per line) and %s.trace.json \
                 (Chrome trace-event JSON, loadable in Perfetto)\n"
    prefix prefix

let trace_program_arg =
  Arg.(
    value & opt string "bfs"
    & info [ "program" ] ~docv:"PROG"
        ~doc:
          "Traced protocol: bfs | broadcast | matching | mis | bellman-ford \
           | forest | bs (distributed Baswana-Sen).")

let root_arg =
  Arg.(
    value & opt int 0
    & info [ "root" ] ~docv:"V" ~doc:"Root / source vertex (bfs, bellman-ford).")

let drop_arg =
  Arg.(
    value & opt float 0.0
    & info [ "drop-prob" ] ~docv:"P"
        ~doc:"Message drop probability (bfs/broadcast only).")

let crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "crashes" ] ~docv:"C"
        ~doc:"Crash-stop failures within the first rounds (bfs/broadcast only).")

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"K" ~doc:"Congested edges to list in the summary.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a native CONGEST protocol with a trace sink attached and \
          export the per-round/per-node/per-edge records as JSONL plus \
          Chrome trace-event JSON (with -o PREFIX, to PREFIX.jsonl and \
          PREFIX.trace.json).")
    Term.(
      const trace $ trace_program_arg
      $ k_arg "Stretch parameter k (program bs)."
      $ root_arg $ engine_arg $ backend_arg $ drop_arg $ crashes_arg $ top_arg
      $ metrics_arg
      $ input_arg $ family_arg $ n_arg $ degree_arg $ weights_arg $ seed_arg
      $ output_arg)

(* ---------- metrics ---------- *)

let metrics_report file expose strip top =
  if top < 1 then
    failwith (Printf.sprintf "metrics: top must be >= 1 (got %d)" top);
  let s =
    try Metrics_io.load file
    with Exp_json.Error msg ->
      failwith (Printf.sprintf "%s: not an %s artifact (%s)" file
                  Metrics_io.schema msg)
  in
  let s = if strip then Metrics.strip_timing s else s in
  if expose then print_string (Metrics.exposition s)
  else begin
    Printf.printf "%s (%s)\n" file Metrics_io.schema;
    Format.printf "%a@?" (Metrics.pp_report ~top) s
  end

let metrics_file_pos_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"ultraspan-metrics/1 snapshot (written by --metrics FILE).")

let expose_arg =
  Arg.(
    value & flag
    & info [ "expose" ]
        ~doc:
          "Print the Prometheus-style text exposition instead of the human \
           report (deterministic byte-for-byte; what the check.sh / CI \
           determinism gates diff).")

let strip_timing_arg =
  Arg.(
    value & flag
    & info [ "strip-timing" ]
        ~doc:
          "Drop the timing.* execution namespace (wall-clock timers and \
           engine-/schedule-internal diagnostics) first; what remains must \
           be byte-identical across --jobs and --engine.")

let report_top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"K" ~doc:"Counters to list per section.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Render an ultraspan-metrics/1 snapshot: top-k counters (split \
          deterministic vs execution namespace), gauges, histogram \
          sparklines and per-phase timers with GC quick_stat deltas — or, \
          with --expose, a Prometheus-style text exposition.")
    Term.(
      const metrics_report $ metrics_file_pos_arg $ expose_arg
      $ strip_timing_arg $ report_top_arg)

(* ---------- report ---------- *)

let report dir full =
  let module T = Exp_table in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith (Printf.sprintf "%s: not a directory (run bench/main.exe first)" dir);
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then failwith (Printf.sprintf "%s: no .json artifacts" dir);
  let checked = ref 0 and violated = ref 0 and bad = ref 0 in
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      match T.load path with
      | exception (Exp_json.Error msg | Failure msg | Sys_error msg) ->
          incr bad;
          Printf.printf "%-14s UNREADABLE (%s)\n" f msg
      | tbl ->
          let vs = T.violations tbl in
          checked := !checked + T.bounds_checked tbl;
          violated := !violated + List.length vs;
          let title =
            match String.index_opt tbl.T.title '\n' with
            | None -> tbl.T.title
            | Some i -> String.sub tbl.T.title 0 i ^ " ..."
          in
          Printf.printf "%-6s %-52s %3d bound(s)  %s\n" tbl.T.id title
            (T.bounds_checked tbl)
            (if vs = [] then "ok" else Printf.sprintf "%d VIOLATED" (List.length vs));
          List.iter
            (fun (sid, label, (b : T.bound)) ->
              Printf.printf "       violation %s[%s] %s: observed %g, limit %g%s\n"
                sid label b.T.bid b.T.observed b.T.limit
                (if b.T.descr = "" then "" else " — " ^ b.T.descr))
            vs;
          if full then begin
            print_newline ();
            T.print tbl
          end)
    files;
  Printf.printf "%d artifact(s), %d bound(s) checked, %d violated%s\n"
    (List.length files) !checked !violated
    (if !bad > 0 then Printf.sprintf ", %d unreadable" !bad else "");
  if !violated > 0 || !bad > 0 then exit 1

let report_dir_arg =
  Arg.(
    value & pos 0 string "artifacts"
    & info [] ~docv:"DIR" ~doc:"Artifact directory (default: artifacts).")

let report_full_arg =
  Arg.(
    value & flag
    & info [ "full" ] ~doc:"Also render each table's full text layout.")

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Summarize JSON table artifacts written by bench/main.exe: per \
          table, the declared paper bounds and any violations.  Exits \
          non-zero if an artifact is unreadable or a bound is violated.")
    Term.(const report $ report_dir_arg $ report_full_arg)

(* ---------- compile / query (distance-oracle serving layer) ---------- *)

let compile algo k t jobs mfile input family n degree max_w seed output =
  let g = load_graph input family n degree max_w seed in
  Format.printf "input: %a@." Graph.pp g;
  with_metrics mfile @@ fun metrics ->
  let sp = build_spanner ~jobs ~metrics ~algo ~k ~t ~seed g in
  let o = Oracle.compile g ~k sp in
  Format.printf "%a@." Oracle.pp o;
  Printf.printf "checksum        : %016Lx\n" (Oracle.checksum o);
  let bytes = Oracle.save output o in
  Printf.printf "wrote %s (%d bytes, %s)\n" output bytes Oracle.schema

let oracle_out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write the compiled ultraspan-oracle/1 artifact to $(docv).")

let compile_cmd =
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Build a spanner and compile it into a servable ultraspan-oracle/1 \
          binary artifact: CSR adjacency of the kept subgraph plus \
          per-cluster shortest-path-tree metadata, checksummed.  The \
          artifact is what the query subcommand serves from — the spanner \
          is never rebuilt at query time.")
    Term.(
      const compile $ spanner_algo_arg
      $ k_arg "Stretch parameter k (stretch 2k-1)."
      $ t_arg $ jobs_arg $ metrics_arg $ input_arg $ family_arg $ n_arg
      $ degree_arg $ weights_arg $ seed_arg $ oracle_out_arg)

let query oracle_path qfile random emitq jobs verify mfile input family n
    degree max_w seed output =
  let o = Oracle.load oracle_path in
  Format.printf "%a@." Oracle.pp o;
  let qs =
    match (qfile, random) with
    | Some f, _ -> Query_engine.load_queries f
    | None, r when r > 0 ->
        Query_engine.generate ~rng:(Rng.create seed) ~n:(Oracle.n o) ~count:r
    | None, _ -> failwith "query: give --queries FILE or --random COUNT"
  in
  (match emitq with
  | Some f ->
      Query_engine.save_queries f qs;
      Printf.printf "wrote %d queries to %s (%s)\n" (Array.length qs) f
        Query_engine.queries_schema
  | None -> ());
  let ok =
    with_metrics mfile @@ fun metrics ->
    let answers, st = Query_engine.run ~jobs ~metrics o qs in
    Printf.printf "queries         : %d (%d dist, %d mem, %d unreachable)\n"
      st.Query_engine.queries st.Query_engine.dist st.Query_engine.mem
      st.Query_engine.unreachable;
    Printf.printf "sssp cache      : %d hit(s), %d miss(es), %d eviction(s)\n"
      st.Query_engine.cache_hits st.Query_engine.cache_misses
      st.Query_engine.cache_evictions;
    (match output with
    | Some path ->
        Query_engine.save_results path qs answers;
        Printf.printf "wrote results to %s (%s)\n" path
          Query_engine.results_schema
    | None -> print_string (Query_engine.render_results qs answers));
    match verify with
    | None -> true
    | Some mode ->
        (* the original graph comes from the shared graph arguments; the
           spanner itself is reconstructed from the artifact's edge ids,
           so no --algo replay is needed *)
        let g = load_graph input family n degree max_w seed in
        if Graph.m g <> o.Oracle.orig_m then
          failwith
            (Printf.sprintf
               "%s was compiled against a graph with %d edges, but the given \
                graph has %d (pass the compile-time graph arguments)"
               oracle_path o.Oracle.orig_m (Graph.m g));
        let eids = ref [] in
        for e = Oracle.m o - 1 downto 0 do
          eids := o.Oracle.orig_eid.{e} :: !eids
        done;
        let sp = Spanner.of_eids g !eids in
        let verdict_ok =
          report_verdict
            (Verify.spanner ~jobs ~seed ~mode ~k:o.Oracle.k g sp)
        in
        (match
           Query_engine.spot_check ~rng:(Rng.create seed) g o qs answers
         with
        | Ok c ->
            Printf.printf
              "spot-check      : %d sampled answer(s) within (2k-1) bounds\n" c;
            verdict_ok
        | Error m ->
            Printf.printf "spot-check      : FAILED (%s)\n" m;
            false)
  in
  if not ok then exit 1

let oracle_pos_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ORACLE"
        ~doc:"Compiled ultraspan-oracle/1 artifact (from the compile \
              subcommand).")

let queries_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "queries" ] ~docv:"FILE"
        ~doc:"Batch query file (ultraspan-queries/1 text format).")

let random_arg =
  Arg.(
    value & opt int 0
    & info [ "random" ] ~docv:"COUNT"
        ~doc:
          "Generate a seeded mixed workload of $(docv) queries (hot-skewed \
           distance queries plus membership queries) instead of reading \
           --queries.")

let emit_queries_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-queries" ] ~docv:"FILE"
        ~doc:"Also write the executed query batch to $(docv).")

let query_cmd =
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Serve a batch of s-t approximate-distance and edge-membership \
          queries from a compiled oracle artifact.  Batches fan out over \
          the domain pool with a fixed chunk schedule, so the result file \
          is byte-identical for every -j.  With --verify local, rebuild \
          the spanner's per-node witnesses on the original graph, run the \
          CONGEST checker programs, and spot-check sampled answers \
          against exact distances and the (2k-1) stretch contract.")
    Term.(
      const query $ oracle_pos_arg $ queries_arg $ random_arg
      $ emit_queries_arg $ jobs_arg $ verify_arg $ metrics_arg $ input_arg
      $ family_arg $ n_arg $ degree_arg $ weights_arg $ seed_arg $ output_arg)

(* ---------- main ---------- *)

let () =
  let info =
    Cmd.info "ultraspan" ~version:"1.0"
      ~doc:
        "Deterministic distributed sparse and ultra-sparse spanners and \
         connectivity certificates (SPAA 2022 reproduction)."
  in
  let group =
    Cmd.group info
      [
        generate_cmd; stats_cmd; spanner_cmd; certificate_cmd; resilience_cmd;
        stream_cmd; verify_cmd; trace_cmd; metrics_cmd; report_cmd;
        compile_cmd; query_cmd;
      ]
  in
  (* Domain errors (unknown algorithm/family/program, unreadable input,
     malformed stream/query/oracle files, truncated or corrupt JSON
     artifacts, out-of-range parameters) surface as
     Failure/Sys_error/Invalid_argument/Exp_json.Error; exit 1 cleanly
     instead of a crash with backtrace, and keep cmdliner's own exit codes
     for usage errors. *)
  exit
    (try Cmd.eval ~catch:false group with
    | Failure msg | Sys_error msg | Invalid_argument msg
    | Exp_json.Error msg ->
        Printf.eprintf "ultraspan: %s\n" msg;
        1)
