#!/bin/sh
# CI / pre-commit gate, split into named stages.
#
# Usage:
#   bin/check.sh                 run every stage, in order
#   bin/check.sh STAGE...        run the named stages only (CI runs them as
#                                separate steps to get per-stage timing and
#                                log folding)
#   bin/check.sh --list          print the stage names and exit
#
# Stages:
#   build       full build (libs, executables, docs) + test suite
#   fmt         format check        (skipped when ocamlformat is missing)
#   lint        shellcheck          (skipped when shellcheck is missing)
#   trace       trace-exporter smoke test
#   metrics     metrics plane: snapshots are emitted and render, and outside
#               the timing.* namespace they are byte-identical for the same
#               seed across engines (fast vs ref) and job counts (1 vs 4)
#   tables      bench tables, strict: every declared paper bound must hold,
#               the artifacts round-trip through the golden differ
#   parallel    rerunning the tables over several domains (--jobs) must
#               reproduce the sequential artifacts byte-for-byte
#   stream      an emitted update stream replays through the repair engine
#               recertified, and rerunning D1 from the same seed reproduces
#               its artifact byte-for-byte
#   xfail       negative control: a deliberately violated bound must fail
#   sharded     --engine ref --backend sharded must be rejected, a sharded
#               CLI run must leave deterministic metrics byte-identical to
#               the sequential backend at -j 1 / -j 4, and the large-n
#               mp-smoke must pass
#   verify      verification plane: the corruption matrix transcript is
#               byte-identical across engines/backends/job counts, every
#               corruption is rejected, and the bench --verify gate passes
#   oracle      serving layer: compile -> query round-trips end-to-end with
#               local verification, the result file is byte-identical at
#               -j 1 and -j 4, and a corrupted artifact is rejected with a
#               one-line diagnostic and exit 1
#   efficiency  perf efficiency gate against the committed BENCH_congest.json
#               (includes the floors) plus its negative control
#   perf        perf regression gate against BENCH_congest.json
#
# Every run ends with a per-stage wall-clock summary table.
set -eu
cd "$(dirname "$0")/.." || exit 1

STAGES="build fmt lint trace metrics tables parallel stream xfail sharded verify oracle efficiency perf"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Sequential quick-table artifacts are the reference several stages diff
# against; build them at most once per invocation.
ensure_ref_artifacts() {
  if [ ! -d "$tmp/artifacts" ]; then
    dune exec bench/main.exe -- --quick --all --strict \
      --artifacts "$tmp/artifacts" >/dev/null
  fi
}

stage_build() {
  dune build @all
  dune runtest
}

stage_fmt() {
  if command -v ocamlformat >/dev/null 2>&1; then
    dune build @fmt
  else
    echo "   (skipped: ocamlformat not installed)"
  fi
}

stage_lint() {
  if command -v shellcheck >/dev/null 2>&1; then
    shellcheck bin/check.sh
  else
    echo "   (skipped: shellcheck not installed)"
  fi
}

stage_trace() {
  dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
    --degree 6 --seed 5 -o "$tmp/trace" >/dev/null
  test -s "$tmp/trace.jsonl"
  test -s "$tmp/trace.trace.json"
}

stage_metrics() {
  dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
    --degree 6 --seed 5 -o "$tmp/mtr-fast" --metrics "$tmp/m-fast.json" \
    >/dev/null
  test -s "$tmp/m-fast.json"
  dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-fast.json" >/dev/null
  dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
    --degree 6 --seed 5 --engine ref -o "$tmp/mtr-ref" \
    --metrics "$tmp/m-ref.json" >/dev/null
  dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-fast.json" \
    --expose --strip-timing >"$tmp/m-fast.prom"
  dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-ref.json" \
    --expose --strip-timing >"$tmp/m-ref.prom"
  cmp "$tmp/m-fast.prom" "$tmp/m-ref.prom"
  dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
    --family gnp -n 200 --degree 8 --seed 3 -j 1 \
    --metrics "$tmp/m-j1.json" >/dev/null
  dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
    --family gnp -n 200 --degree 8 --seed 3 -j 4 \
    --metrics "$tmp/m-j4.json" >/dev/null
  dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-j1.json" \
    --expose --strip-timing >"$tmp/m-j1.prom"
  dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-j4.json" \
    --expose --strip-timing >"$tmp/m-j4.prom"
  cmp "$tmp/m-j1.prom" "$tmp/m-j4.prom"
}

stage_tables() {
  ensure_ref_artifacts
  dune exec bin/ultraspan_cli.exe -- report "$tmp/artifacts" >/dev/null
  # golden self-diff: t4 against the reference run
  dune exec bench/main.exe -- --quick --table t4 \
    --against "$tmp/artifacts" >/dev/null
}

stage_parallel() {
  # The sequential run is the reference: a multi-domain rerun must produce
  # byte-identical artifacts (the pool's fixed chunk schedule and
  # index-ordered reduction make this exact, not approximate).
  ensure_ref_artifacts
  par_jobs=$(nproc 2>/dev/null || echo 4)
  [ "$par_jobs" -lt 4 ] && par_jobs=4
  dune exec bench/main.exe -- --quick --all --jobs "$par_jobs" \
    --against "$tmp/artifacts" >/dev/null
}

stage_stream() {
  dune exec bin/ultraspan_cli.exe -- stream --emit --family torus -n 64 \
    --batches 4 --ops 6 --seed 9 -o "$tmp/stream.txt" >/dev/null
  test -s "$tmp/stream.txt"
  dune exec bin/ultraspan_cli.exe -- stream --replay "$tmp/stream.txt" \
    --family torus -n 64 --seed 9 >/dev/null
  # replaying with the local-checker recertification must also pass
  dune exec bin/ultraspan_cli.exe -- stream --replay "$tmp/stream.txt" \
    --family torus -n 64 --seed 9 --verify local >/dev/null
  ensure_ref_artifacts
  dune exec bench/main.exe -- --quick --table d1 \
    --artifacts "$tmp/d1-replay" >/dev/null
  cmp "$tmp/artifacts/d1.json" "$tmp/d1-replay/d1.json"
}

stage_xfail() {
  if dune exec bench/main.exe -- --quick --table xfail --strict \
      --artifacts "$tmp/xfail" >/dev/null 2>&1; then
    echo "ERROR: xfail table passed the strict gate" >&2
    exit 1
  fi
}

stage_sharded() {
  if dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
      --family gnp -n 64 --degree 6 --seed 3 --engine ref --backend sharded \
      >/dev/null 2>&1; then
    echo "ERROR: --engine ref --backend sharded was accepted" >&2
    exit 1
  fi
  # bench/main.exe must reject the same contradiction with the same line
  if dune exec bench/main.exe -- --engine ref --backend sharded \
      >/dev/null 2>&1; then
    echo "ERROR: bench accepted --engine ref --backend sharded" >&2
    exit 1
  fi
  # Jobs invariance on the sharded backend: the whole stripped exposition
  # must be byte-identical at -j 1 and -j 4.  Across backends only the
  # deterministic congest.* counters are comparable (the pool meters count
  # pool sections, and the sharded backend runs more of them by design).
  dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
    --family gnp -n 200 --degree 8 --seed 3 --backend seq -j 1 \
    --metrics "$tmp/m-bseq.json" >/dev/null
  dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
    --family gnp -n 200 --degree 8 --seed 3 --backend sharded -j 1 \
    --metrics "$tmp/m-sh1.json" >/dev/null
  dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
    --family gnp -n 200 --degree 8 --seed 3 --backend sharded -j 4 \
    --metrics "$tmp/m-sh4.json" >/dev/null
  for b in bseq sh1 sh4; do
    dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-$b.json" \
      --expose --strip-timing >"$tmp/m-$b.prom"
  done
  cmp "$tmp/m-sh1.prom" "$tmp/m-sh4.prom"
  grep "^congest\." "$tmp/m-bseq.prom" >"$tmp/congest-seq.txt"
  grep "^congest\." "$tmp/m-sh1.prom" >"$tmp/congest-sh.txt"
  grep -q "congest\.payload_words_total" "$tmp/congest-sh.txt"
  grep -q "congest\.max_payload_words" "$tmp/congest-sh.txt"
  cmp "$tmp/congest-seq.txt" "$tmp/congest-sh.txt"
  dune exec bench/perf.exe -- --mp-smoke 100000
}

stage_verify() {
  # Corruption matrix: every valid artifact accepted, every seeded
  # corruption rejected, and the transcript byte-identical across
  # engines, backends and job counts.
  dune exec bin/ultraspan_cli.exe -- verify --quick --backend seq \
    >"$tmp/verify-seq.txt"
  dune exec bin/ultraspan_cli.exe -- verify --quick --backend sharded -j 1 \
    >"$tmp/verify-sh1.txt"
  dune exec bin/ultraspan_cli.exe -- verify --quick --backend sharded -j 4 \
    >"$tmp/verify-sh4.txt"
  dune exec bin/ultraspan_cli.exe -- verify --quick --engine ref \
    --backend seq >"$tmp/verify-ref.txt"
  cmp "$tmp/verify-seq.txt" "$tmp/verify-sh1.txt"
  cmp "$tmp/verify-seq.txt" "$tmp/verify-sh4.txt"
  cmp "$tmp/verify-seq.txt" "$tmp/verify-ref.txt"
  # the post-table gate: V1 bounds + local verification of fresh artifacts
  dune exec bench/main.exe -- --quick --table v1 --strict --verify local \
    --artifacts "$tmp/verify-artifacts" >/dev/null
}

stage_oracle() {
  # compile -> query round trip, with the spanner recertified on the
  # original graph and sampled answers spot-checked against exact distances
  dune exec bin/ultraspan_cli.exe -- compile --algo bs-derand --family gnp \
    -n 300 --degree 8 --seed 3 -k 3 -o "$tmp/oracle.bin" >/dev/null
  test -s "$tmp/oracle.bin"
  dune exec bin/ultraspan_cli.exe -- query "$tmp/oracle.bin" --random 500 \
    --seed 3 --family gnp -n 300 --degree 8 --verify local \
    --emit-queries "$tmp/oracle-queries.txt" -o "$tmp/oracle-j1.txt" \
    >/dev/null
  # the emitted batch replayed over the pool must reproduce the result
  # file byte-for-byte
  dune exec bin/ultraspan_cli.exe -- query "$tmp/oracle.bin" \
    --queries "$tmp/oracle-queries.txt" -j 4 -o "$tmp/oracle-j4.txt" \
    >/dev/null
  cmp "$tmp/oracle-j1.txt" "$tmp/oracle-j4.txt"
  # a truncated artifact must be rejected with exit 1, not a backtrace
  head -c 100 "$tmp/oracle.bin" >"$tmp/oracle-corrupt.bin"
  if dune exec bin/ultraspan_cli.exe -- query "$tmp/oracle-corrupt.bin" \
      --random 10 >/dev/null 2>"$tmp/oracle-err.txt"; then
    echo "ERROR: corrupted oracle artifact was accepted" >&2
    exit 1
  fi
  grep -q "not an ultraspan-oracle/1 artifact" "$tmp/oracle-err.txt"
}

stage_efficiency() {
  dune exec bench/perf.exe -- --gate-efficiency BENCH_congest.json
  if dune exec bench/perf.exe -- --gate-efficiency BENCH_congest.json \
      --min-pool-utilization 1.5 >/dev/null 2>&1; then
    echo "ERROR: efficiency gate passed an impossible utilization floor" >&2
    exit 1
  fi
}

stage_perf() {
  dune exec bench/perf.exe -- --quick \
    --against BENCH_congest.json --tolerance 40
}

# ---------------------------------------------------------------------

case "${1:-}" in
  --list)
    echo "$STAGES"
    exit 0
    ;;
  --help | -h)
    sed -n '2,38p' "$0" | sed 's/^# \{0,1\}//'
    exit 0
    ;;
esac

if [ "$#" -gt 0 ]; then
  sel="$*"
  for s in $sel; do
    case " $STAGES " in
      *" $s "*) ;;
      *)
        echo "check.sh: unknown stage '$s' (try --list)" >&2
        exit 2
        ;;
    esac
  done
else
  sel=$STAGES
fi

times_file="$tmp/stage-times"
: >"$times_file"
for s in $sel; do
  echo "== $s =="
  t0=$(date +%s)
  "stage_$s"
  t1=$(date +%s)
  printf '%s %s\n' "$s" "$((t1 - t0))" >>"$times_file"
done

echo
echo "stage timing summary"
echo "--------------------"
total=0
while read -r name secs; do
  printf '%-12s %5ss\n' "$name" "$secs"
  total=$((total + secs))
done <"$times_file"
echo "--------------------"
printf '%-12s %5ss\n' "total" "$total"
echo "check: OK"
