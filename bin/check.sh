#!/bin/sh
# CI / pre-commit gate: full build (libs, executables, docs) + test suite,
# plus a smoke test of the trace exporters and the O1 observability table.
# Usage: bin/check.sh  (from anywhere inside the repo)
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest

# trace smoke test: run a traced protocol, check both export files appear
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
  --degree 6 --seed 5 -o "$tmp/trace" >/dev/null
test -s "$tmp/trace.jsonl"
test -s "$tmp/trace.trace.json"
dune exec bench/main.exe -- --quick --table o1 >/dev/null

# perf smoke test: the microbenchmark suite runs end-to-end, its JSON
# parses, and every suite reports at least one run
dune exec bench/perf.exe -- --quick -o "$tmp/BENCH_congest.json" >/dev/null
dune exec bench/perf.exe -- --validate "$tmp/BENCH_congest.json"

echo "check: OK"
