#!/bin/sh
# CI / pre-commit gate: full build (libs, executables, docs) + test suite.
# Usage: bin/check.sh  (from anywhere inside the repo)
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest
echo "check: OK"
