#!/bin/sh
# CI / pre-commit gate.  Usage: bin/check.sh  (from anywhere inside the repo)
#
#   1. full build (libs, executables, docs) + test suite
#   2. format check        (skipped when ocamlformat is not installed)
#   3. shellcheck          (skipped when shellcheck is not installed)
#   4. trace-exporter smoke test
#   5. metrics plane: snapshots are emitted and render, and outside the
#      timing.* namespace they are byte-identical for the same seed across
#      engines (fast vs ref) and job counts (-j 1 vs -j 4)
#   6. bench tables, strict: every declared paper bound must hold, and the
#      emitted JSON artifacts must round-trip through the golden differ
#   7. parallel determinism: rerunning the tables over several domains
#      (--jobs) must reproduce the sequential artifacts byte-for-byte
#   8. stream-replay determinism: an emitted update stream replays through
#      the repair engine recertified, and rerunning the D1 table from the
#      same seed reproduces its artifact byte-for-byte
#   9. negative control: a deliberately violated bound must fail the gate
#  10. sharded delivery backend: --engine ref --backend sharded must be
#      rejected, a sharded CLI run must leave deterministic metrics
#      byte-identical to the sequential backend at -j 1 and -j 4, and the
#      large-n mp-smoke (flood + BFS at n=1e5, seq vs sharded -j 1/-j 4,
#      in-process byte-compare) must pass
#  11. perf regression gate against the committed BENCH_congest.json
#      (includes the efficiency floors), plus the efficiency-gate negative
#      control: an impossible utilization floor must fail
set -eu
cd "$(dirname "$0")/.." || exit 1

echo "== build + tests =="
dune build @all
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== format check =="
  dune build @fmt
else
  echo "== format check skipped (ocamlformat not installed) =="
fi

if command -v shellcheck >/dev/null 2>&1; then
  echo "== shellcheck =="
  shellcheck bin/check.sh
else
  echo "== shellcheck skipped (shellcheck not installed) =="
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== trace smoke test =="
dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
  --degree 6 --seed 5 -o "$tmp/trace" >/dev/null
test -s "$tmp/trace.jsonl"
test -s "$tmp/trace.trace.json"

echo "== metrics plane (snapshot, report, engine + jobs determinism) =="
dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
  --degree 6 --seed 5 -o "$tmp/mtr-fast" --metrics "$tmp/m-fast.json" \
  >/dev/null
test -s "$tmp/m-fast.json"
dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-fast.json" >/dev/null
dune exec bin/ultraspan_cli.exe -- trace --program bfs --family gnp -n 64 \
  --degree 6 --seed 5 --engine ref -o "$tmp/mtr-ref" \
  --metrics "$tmp/m-ref.json" >/dev/null
dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-fast.json" \
  --expose --strip-timing >"$tmp/m-fast.prom"
dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-ref.json" \
  --expose --strip-timing >"$tmp/m-ref.prom"
cmp "$tmp/m-fast.prom" "$tmp/m-ref.prom"
dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
  --family gnp -n 200 --degree 8 --seed 3 -j 1 \
  --metrics "$tmp/m-j1.json" >/dev/null
dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
  --family gnp -n 200 --degree 8 --seed 3 -j 4 \
  --metrics "$tmp/m-j4.json" >/dev/null
dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-j1.json" \
  --expose --strip-timing >"$tmp/m-j1.prom"
dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-j4.json" \
  --expose --strip-timing >"$tmp/m-j4.prom"
cmp "$tmp/m-j1.prom" "$tmp/m-j4.prom"

echo "== bench tables (quick, strict) =="
dune exec bench/main.exe -- --quick --all --strict \
  --artifacts "$tmp/artifacts" >/dev/null
dune exec bin/ultraspan_cli.exe -- report "$tmp/artifacts" >/dev/null

echo "== golden self-diff (t4 against the run above) =="
dune exec bench/main.exe -- --quick --table t4 \
  --against "$tmp/artifacts" >/dev/null

# The sequential run above is the reference: a multi-domain rerun must
# produce byte-identical artifacts (the pool's fixed chunk schedule and
# index-ordered reduction make this exact, not approximate).
par_jobs=$(nproc 2>/dev/null || echo 4)
[ "$par_jobs" -lt 4 ] && par_jobs=4
echo "== parallel determinism (--jobs $par_jobs vs the sequential run) =="
dune exec bench/main.exe -- --quick --all --jobs "$par_jobs" \
  --against "$tmp/artifacts" >/dev/null

echo "== stream smoke test (emit, then replay recertified) =="
dune exec bin/ultraspan_cli.exe -- stream --emit --family torus -n 64 \
  --batches 4 --ops 6 --seed 9 -o "$tmp/stream.txt" >/dev/null
test -s "$tmp/stream.txt"
dune exec bin/ultraspan_cli.exe -- stream --replay "$tmp/stream.txt" \
  --family torus -n 64 --seed 9 >/dev/null

echo "== stream-replay determinism (same seed, byte-identical D1) =="
dune exec bench/main.exe -- --quick --table d1 \
  --artifacts "$tmp/d1-replay" >/dev/null
cmp "$tmp/artifacts/d1.json" "$tmp/d1-replay/d1.json"

echo "== strict negative control (xfail must exit non-zero) =="
if dune exec bench/main.exe -- --quick --table xfail --strict \
    --artifacts "$tmp/xfail" >/dev/null 2>&1; then
  echo "ERROR: xfail table passed the strict gate" >&2
  exit 1
fi

echo "== sharded backend (ref rejection, metrics invariance, mp-smoke) =="
if dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
    --family gnp -n 64 --degree 6 --seed 3 --engine ref --backend sharded \
    >/dev/null 2>&1; then
  echo "ERROR: --engine ref --backend sharded was accepted" >&2
  exit 1
fi
# Jobs invariance on the sharded backend: the whole stripped exposition
# must be byte-identical at -j 1 and -j 4.  Across backends only the
# deterministic congest.* counters are comparable (the pool meters count
# pool sections, and the sharded backend runs more of them by design).
dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
  --family gnp -n 200 --degree 8 --seed 3 --backend seq -j 1 \
  --metrics "$tmp/m-bseq.json" >/dev/null
dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
  --family gnp -n 200 --degree 8 --seed 3 --backend sharded -j 1 \
  --metrics "$tmp/m-sh1.json" >/dev/null
dune exec bin/ultraspan_cli.exe -- spanner --algo bs-distributed \
  --family gnp -n 200 --degree 8 --seed 3 --backend sharded -j 4 \
  --metrics "$tmp/m-sh4.json" >/dev/null
for b in bseq sh1 sh4; do
  dune exec bin/ultraspan_cli.exe -- metrics "$tmp/m-$b.json" \
    --expose --strip-timing >"$tmp/m-$b.prom"
done
cmp "$tmp/m-sh1.prom" "$tmp/m-sh4.prom"
grep "^congest\." "$tmp/m-bseq.prom" >"$tmp/congest-seq.txt"
grep "^congest\." "$tmp/m-sh1.prom" >"$tmp/congest-sh.txt"
grep -q "congest\.payload_words_total" "$tmp/congest-sh.txt"
grep -q "congest\.max_payload_words" "$tmp/congest-sh.txt"
cmp "$tmp/congest-seq.txt" "$tmp/congest-sh.txt"
dune exec bench/perf.exe -- --mp-smoke 100000

echo "== efficiency gate (recorded artifact + negative control) =="
dune exec bench/perf.exe -- --gate-efficiency BENCH_congest.json
if dune exec bench/perf.exe -- --gate-efficiency BENCH_congest.json \
    --min-pool-utilization 1.5 >/dev/null 2>&1; then
  echo "ERROR: efficiency gate passed an impossible utilization floor" >&2
  exit 1
fi

echo "== perf regression gate =="
dune exec bench/perf.exe -- --quick \
  --against BENCH_congest.json --tolerance 40

echo "check: OK"
