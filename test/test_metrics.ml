open Ultraspan
open Helpers

(* ---------- the unified metrics plane (PR: observability) ---------- *)

(* A flooding program that never halts: every node re-floods every round,
   so [max_rounds] always fires.  Used by the partial-snapshot test. *)
let restless_program =
  {
    Network.init = (fun _ _ -> 0);
    round =
      (fun g ~round:_ ~me st _inbox ->
        {
          Network.state = st + 1;
          out = List.map (fun (u, _) -> (u, [| st |])) (Graph.neighbors g me);
          halt = false;
        });
  }

(* ---------- registry semantics ---------- *)

let registry_semantics () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a.b.c" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.value c);
  (* registration is idempotent: same name, same cell *)
  let c' = Metrics.counter r "a.b.c" in
  Metrics.incr c';
  Alcotest.(check int) "same handle" 43 (Metrics.value c);
  let g = Metrics.gauge r "a.g" in
  Metrics.set g 7;
  Metrics.set_max g 3;
  Alcotest.(check int) "set_max keeps max" 7 (Metrics.gauge_value g);
  Metrics.set_max g 11;
  Alcotest.(check int) "set_max raises high-water" 11 (Metrics.gauge_value g);
  (* kind mismatch and malformed names are programming errors *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: a.b.c already registered with another type")
    (fun () -> ignore (Metrics.gauge r "a.b.c"));
  List.iter
    (fun bad ->
      match Metrics.counter r bad with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "name %S should be rejected" bad)
    [ ""; "."; "a..b"; ".a"; "a."; "A.b"; "a b"; "a-b" ]

let histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1; 2; 4 |] r "h" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 5 ];
  let s = Metrics.snapshot r in
  match s.Metrics.histograms with
  | [ ("h", d) ] ->
      Alcotest.(check (array int)) "edges" [| 1; 2; 4 |] d.Metrics.hedges;
      (* le semantics: le 1 <- {0,1}; le 2 <- {2}; le 4 <- {3,4}; over <- {5} *)
      Alcotest.(check (array int)) "counts" [| 2; 1; 2; 1 |] d.Metrics.hcounts;
      Alcotest.(check int) "sum" 15 d.Metrics.hsum;
      Alcotest.(check int) "total" 6 d.Metrics.htotal
  | _ -> Alcotest.fail "expected exactly one histogram"

let timer_namespace () =
  let r = Metrics.create () in
  let t = Metrics.timer r "phase.setup" in
  let x = Metrics.time t (fun () -> 42) in
  Alcotest.(check int) "time returns the thunk's result" 42 x;
  let s = Metrics.snapshot r in
  (match Metrics.find_timer s "timing.phase.setup" with
  | Some d -> Alcotest.(check int) "one call recorded" 1 d.Metrics.tcalls
  | None -> Alcotest.fail "timer must live under timing.*");
  (* absolute overwrite is idempotent *)
  let t2 = Metrics.timer r "timing.phase.setup" in
  Metrics.timer_set t2 ~seconds:1.5 ~calls:3 ~minor_words:0. ~major_words:0.
    ~promoted_words:0.;
  Metrics.timer_set t2 ~seconds:1.5 ~calls:3 ~minor_words:0. ~major_words:0.
    ~promoted_words:0.;
  match Metrics.find_timer (Metrics.snapshot r) "timing.phase.setup" with
  | Some d ->
      Alcotest.(check int) "overwrite, not accumulate" 3 d.Metrics.tcalls;
      Alcotest.(check (float 1e-9)) "seconds overwritten" 1.5 d.Metrics.tseconds
  | None -> Alcotest.fail "timer vanished"

let disabled_hot_path_allocates_nothing () =
  let c = Metrics.counter Metrics.disabled "x.c" in
  let g = Metrics.gauge Metrics.disabled "x.g" in
  let h = Metrics.histogram Metrics.disabled "x.h" in
  (* warm up so any one-time allocation is done *)
  Metrics.incr c;
  Metrics.observe h 1;
  let before = Gc.minor_words () in
  for i = 0 to 99_999 do
    Metrics.incr c;
    Metrics.add c i;
    Metrics.set g i;
    Metrics.set_max g i;
    Metrics.observe h i
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "no-op hot path allocated %.0f minor words" delta;
  Alcotest.(check int) "dead counter never counts" 0 (Metrics.value c)

(* ---------- snapshots and artifacts ---------- *)

let populated_registry () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "congest.deliveries_total") 315;
  Metrics.add (Metrics.counter r "timing.congest.fast.arena_slots_touched") 9;
  Metrics.set (Metrics.gauge r "congest.max_payload_words") 4;
  let h = Metrics.histogram ~buckets:[| 2; 8 |] r "congest.per_round" in
  List.iter (Metrics.observe h) [ 1; 5; 100 ];
  Metrics.timer_set
    (Metrics.timer r "profile.build")
    ~seconds:0.25 ~calls:2 ~minor_words:1024. ~major_words:16.
    ~promoted_words:8.;
  r

let snapshot_roundtrip () =
  let r = populated_registry () in
  Metrics.mark_partial r;
  let s = Metrics.snapshot r in
  Alcotest.(check bool) "partial flag" true s.Metrics.partial;
  let s' = Metrics_io.snapshot_of_json (Metrics_io.json_of_snapshot s) in
  Alcotest.(check bool) "roundtrip is exact" true (s = s');
  (* and through a file *)
  let path = Filename.temp_file "ultraspan" ".metrics.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Metrics_io.save path s;
      let s'' = Metrics_io.load path in
      Alcotest.(check bool) "file roundtrip is exact" true (s = s''))

let bad_schema_rejected () =
  let path = Filename.temp_file "ultraspan" ".metrics.json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "{\"schema\": \"something-else/9\", \"partial\": false}";
      close_out oc;
      match Metrics_io.load path with
      | exception Exp_json.Error _ -> ()
      | _ -> Alcotest.fail "wrong schema must be rejected")

let strip_timing_drops_execution () =
  let s = Metrics.snapshot (populated_registry ()) in
  let d = Metrics.strip_timing s in
  Alcotest.(check int) "timers all dropped" 0 (List.length d.Metrics.timers);
  Alcotest.(check bool) "timing counter dropped" true
    (Metrics.find_counter d "timing.congest.fast.arena_slots_touched" = None);
  Alcotest.(check (option int))
    "deterministic counter kept" (Some 315)
    (Metrics.find_counter d "congest.deliveries_total");
  Alcotest.(check int) "histogram kept" 1 (List.length d.Metrics.histograms)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

let exposition_deterministic () =
  let r = populated_registry () in
  let s = Metrics.snapshot r in
  Alcotest.(check string)
    "byte-identical re-render"
    (Metrics.exposition s) (Metrics.exposition s);
  let e = Metrics.exposition ~strip:true s in
  Alcotest.(check bool) "strip removes timing lines" false
    (contains ~affix:"timing." e);
  Metrics.mark_partial r;
  let e' = Metrics.exposition (Metrics.snapshot r) in
  Alcotest.(check bool) "partial marker line" true
    (contains ~affix:"# partial 1" e')

(* ---------- differential laws ---------- *)

let engine_differential =
  qcheck ~count:20 "metrics: Fast and Ref engines agree outside timing.*"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let run engine =
        let r = Metrics.create () in
        let _ = Programs.bfs ~metrics:r ~engine g ~root:0 in
        Metrics.snapshot r
      in
      let sf = run `Fast and sr = run `Ref in
      let df = Metrics.strip_timing sf and dr = Metrics.strip_timing sr in
      Metrics.exposition df = Metrics.exposition dr
      && Metrics.find_counter df "congest.deliveries_total"
         = Metrics.find_counter dr "congest.deliveries_total"
      && Metrics.find_counter df "congest.deliveries_total" <> Some 0)

let jobs_invariance =
  qcheck ~count:10 "metrics: parallel counters are jobs-invariant" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let witness jobs =
        let r = Metrics.create () in
        Parallel.set_metrics (Some r);
        Fun.protect
          ~finally:(fun () -> Parallel.set_metrics None)
          (fun () ->
            let sp = Bs_derand.run ~k:2 g in
            ignore
              (Stretch.max_edge_stretch ~jobs g sp.Bs_derand.spanner.keep);
            ignore
              (Parallel.map_reduce ~jobs ~n:(Graph.n g)
                 ~map:(fun i -> i * i)
                 ~init:0 ~reduce:( + )));
        Metrics.exposition ~strip:true (Metrics.snapshot r)
      in
      witness 1 = witness 4)

let partial_snapshot_on_round_limit () =
  let g = unit_graph_of_seed 12 in
  let r = Metrics.create () in
  (match Network.run ~max_rounds:3 ~metrics:r g restless_program with
  | exception Network.Round_limit_exceeded _ -> ()
  | _ -> Alcotest.fail "restless program must exceed the round limit");
  let s = Metrics.snapshot r in
  Alcotest.(check bool) "snapshot flagged partial" true s.Metrics.partial;
  match Metrics.find_counter s "congest.rounds_total" with
  | Some rounds when rounds > 0 -> ()
  | _ -> Alcotest.fail "partial snapshot still carries the completed rounds"

(* ---------- profile integration ---------- *)

let profile_nested_scopes () =
  let p = Profile.create () in
  Profile.time p "outer" (fun () ->
      Profile.time p "inner" (fun () -> ignore (Sys.opaque_identity 1));
      Profile.time p "inner" (fun () -> ignore (Sys.opaque_identity 2)));
  Profile.time p "tail" (fun () -> ());
  let paths = List.map (fun (p, _, _) -> p) (Profile.phases p) in
  Alcotest.(check (list string))
    "nested paths in first-use order"
    [ "outer"; "outer/inner"; "tail" ] paths;
  let calls path =
    match List.find_opt (fun (p, _, _) -> p = path) (Profile.phases p) with
    | Some (_, _, c) -> c
    | None -> -1
  in
  Alcotest.(check int) "re-entry accumulates" 2 (calls "outer/inner");
  (* export lands under timing.profile.* with '/' -> '.' *)
  let r = Metrics.create () in
  Profile.export p r;
  let s = Metrics.snapshot r in
  (match Metrics.find_timer s "timing.profile.outer.inner" with
  | Some d -> Alcotest.(check int) "exported calls" 2 d.Metrics.tcalls
  | None -> Alcotest.fail "nested phase missing from registry");
  (* re-export is idempotent (absolute overwrite) *)
  Profile.export p r;
  Alcotest.(check bool) "idempotent export" true
    (Metrics.snapshot r = s);
  let events = Profile.chrome_events p in
  Alcotest.(check int) "one event per span instance" 4 (List.length events);
  List.iter
    (fun e ->
      if not (contains ~affix:"\"ph\":\"X\"" e) then
        Alcotest.failf "not a complete event: %s" e)
    events

let suite =
  [
    case "registry semantics" registry_semantics;
    case "histogram bucket edges (le semantics)" histogram_buckets;
    case "timers live in timing.*" timer_namespace;
    case "disabled hot path allocates nothing"
      disabled_hot_path_allocates_nothing;
    case "snapshot roundtrips through ultraspan-metrics/1" snapshot_roundtrip;
    case "wrong schema is rejected" bad_schema_rejected;
    case "strip_timing drops the execution namespace"
      strip_timing_drops_execution;
    case "exposition is deterministic" exposition_deterministic;
    engine_differential;
    jobs_invariance;
    case "round-limit abort flushes a partial snapshot"
      partial_snapshot_on_round_limit;
    case "profile: nested scopes, export, chrome events"
      profile_nested_scopes;
  ]
