open Ultraspan
open Helpers

(* ---------- stream format ---------- *)

let stream_of_seed ?(batches = 4) ?(ops = 6) ?insert_frac g seed =
  Update_stream.generate
    ~rng:(Rng.create (succ (abs seed)))
    ~batches ~ops ?insert_frac g

let round_trip_is_identity =
  qcheck "stream: text round-trip is the identity" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let s = stream_of_seed g seed in
      let txt = Update_stream.to_string s in
      Update_stream.of_string txt = s
      && Update_stream.to_string (Update_stream.of_string txt) = txt)

let generation_is_deterministic =
  qcheck "stream: same seed, same bytes" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      Update_stream.to_string (stream_of_seed g seed)
      = Update_stream.to_string (stream_of_seed g seed))

let generated_streams_replay =
  qcheck "stream: generated streams apply cleanly" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let s = stream_of_seed ~insert_frac:0.3 g seed in
      ignore (Update_stream.apply_all g s);
      true)

let parse_failure input =
  match Update_stream.of_string input with
  | exception Failure msg ->
      String.length msg >= 13 && String.sub msg 0 13 = "Update_stream"
  | _ -> false

let rejects_malformed () =
  List.iter
    (fun (name, input) ->
      Alcotest.(check bool) name true (parse_failure input))
    [
      ("empty", "");
      ("bad header", "garbage header\n");
      ("wrong schema", "ultraspan-stream/9 0 0\n");
      ("missing batch", "ultraspan-stream/1 0 2\nbatch 0\n");
      ("truncated batch", "ultraspan-stream/1 0 1\nbatch 3\n- 0 1\n");
      ("trailing garbage", "ultraspan-stream/1 0 0\nbatch 0\n");
      ("bad op", "ultraspan-stream/1 0 1\nbatch 1\n* 1 2\n");
      ("self-loop", "ultraspan-stream/1 0 1\nbatch 1\n+ 2 2 1\n");
      ("zero weight", "ultraspan-stream/1 0 1\nbatch 1\n+ 1 2 0\n");
      ("short batch", "ultraspan-stream/1 0 2\nbatch 2\n- 0 1\nbatch 0\n");
    ]

let comments_and_blanks_ignored () =
  let s =
    Update_stream.of_string
      "# a comment\nultraspan-stream/1 9 1\n\nbatch 2\n# inside\n+ 0 4 2\n- 1 2\n"
  in
  Alcotest.(check int) "seed" 9 s.Update_stream.seed;
  Alcotest.(check int) "ops" 2 (Update_stream.op_count s);
  Alcotest.(check int) "inserts" 1 (Update_stream.insert_count s)

let apply_is_strict () =
  let g = Generators.cycle 5 in
  let fails batch =
    match Update_stream.apply g batch with
    | exception Failure _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "delete absent" true
    (fails [ Update_stream.delete 0 2 ]);
  Alcotest.(check bool) "insert existing" true
    (fails [ Update_stream.insert 0 1 1 ]);
  Alcotest.(check bool) "out of range" true
    (fails [ Update_stream.insert 0 9 1 ]);
  (* sequential semantics: delete then re-insert is legal *)
  let g' =
    Update_stream.apply g
      [ Update_stream.delete 0 1; Update_stream.insert 0 1 7 ]
  in
  Alcotest.(check int) "m unchanged" 5 (Graph.m g');
  match Graph.find_edge g' 0 1 with
  | Some eid -> Alcotest.(check int) "new weight" 7 (Graph.weight g' eid)
  | None -> Alcotest.fail "edge 0-1 missing after re-insert"

(* ---------- fault-plan derivation ---------- *)

let faults_become_deletions () =
  let g = Generators.cycle 6 in
  let plan = Faults.sever ~round:1 1 0 (Faults.sever ~round:0 2 3 Faults.empty) in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "round-grouped deletions"
    [ (0, [ (2, 3) ]); (1, [ (0, 1) ]) ]
    (Faults.to_update_stream g plan);
  let s = Update_stream.of_faults g plan in
  Alcotest.(check int) "two batches" 2 (Update_stream.batch_count s);
  Alcotest.(check int) "deletions only" 2 (Update_stream.delete_count s)

let crash_kills_incident_edges () =
  let g = Generators.cycle 6 in
  let plan = Faults.crash ~round:0 0 Faults.empty in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "both incident edges die"
    [ (0, [ (0, 1); (0, 5) ]) ]
    (Faults.to_update_stream g plan)

let fault_stream_dedupes () =
  let g = Generators.cycle 6 in
  let plan =
    Faults.sever ~round:2 0 1
      (Faults.crash ~round:0 0 (Faults.sever ~round:0 3 5 Faults.empty))
  in
  (* 3-5 is not an edge; 0-1 already died with the crash at round 0 *)
  Alcotest.(check (list (pair int (list (pair int int)))))
    "non-edges skipped, repeats dropped"
    [ (0, [ (0, 1); (0, 5) ]) ]
    (Faults.to_update_stream g plan)

let empty_plan_empty_stream () =
  let g = Generators.cycle 6 in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "no faults, no batches" []
    (Faults.to_update_stream g Faults.empty);
  let s = Update_stream.of_faults g Faults.empty in
  Alcotest.(check int) "zero batches" 0 (Update_stream.batch_count s);
  (* drop_prob alone is transient, not a topology change *)
  Alcotest.(check (list (pair int (list (pair int int)))))
    "drops-only plan is still empty" []
    (Faults.to_update_stream g (Faults.with_drops 0.5 Faults.empty))

let all_non_edges_empty_stream () =
  (* every severed pair misses the graph: the whole stream vanishes *)
  let g = Generators.path 6 in
  let plan =
    Faults.sever ~round:0 0 2
      (Faults.sever ~round:1 1 4 (Faults.sever ~round:2 0 5 Faults.empty))
  in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "nothing to delete" []
    (Faults.to_update_stream g plan);
  Alcotest.(check int) "zero batches" 0
    (Update_stream.batch_count (Update_stream.of_faults g plan))

let crash_only_plan_replays () =
  (* crash-stop-only: each round's batch removes the node's surviving
     incident edges, and the stream replays strictly (no double deletes
     even when the second crash's neighbourhood overlaps the first's) *)
  let g = Generators.cycle 5 in
  let plan = Faults.crash ~round:2 1 (Faults.crash ~round:0 0 Faults.empty) in
  Alcotest.(check (list (pair int (list (pair int int)))))
    "overlap deduped across rounds"
    [ (0, [ (0, 1); (0, 4) ]); (2, [ (1, 2) ]) ]
    (Faults.to_update_stream g plan);
  let s = Update_stream.of_faults g plan in
  let g' = Update_stream.apply_all g s in
  Alcotest.(check int) "two edges survive" 2 (Graph.m g');
  Alcotest.(check bool) "out-of-range crash rejected" true
    (match
       Faults.to_update_stream g (Faults.crash ~round:0 9 Faults.empty)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- repair engine ---------- *)

let graph_bytes g = Graph_io.to_string g

(* The differential heart of the suite: the incremental engine and the
   rebuild-from-scratch engine must agree on every verdict after every
   batch, and both must keep the stretch bound. *)
let repair_matches_rebuild =
  qcheck ~count:12 "repair == rebuild: same graph, same verdicts, bound kept"
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 2 in
      let g = unit_graph_of_seed ~n_max:36 seed in
      let s = stream_of_seed ~batches:3 ~ops:5 g (succ seed) in
      let cfg = Repair.defaults ~k in
      let inc = Repair.create cfg g in
      let reb = Repair.create { cfg with Repair.mode = `Rebuild } g in
      List.for_all
        (fun b ->
          let _oi = Repair.apply_batch inc b in
          let orr = Repair.apply_batch reb b in
          let vi = Repair.recertify inc and vr = Repair.recertify reb in
          graph_bytes (Repair.graph inc) = graph_bytes (Repair.graph reb)
          && orr.Repair.action = `Rebuild
          && vi.Repair.stretch_ok && vr.Repair.stretch_ok
          && vi.Repair.spanning = vr.Repair.spanning)
        s.Update_stream.batches)

let engine_graph_matches_apply_all =
  qcheck ~count:15 "engine graph == Update_stream.apply_all" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let s = stream_of_seed g seed in
      let eng = Repair.create (Repair.defaults ~k:2) g in
      ignore (Repair.apply_stream eng s);
      graph_bytes (Repair.graph eng) = graph_bytes (Update_stream.apply_all g s))

let weighted_streams_keep_bound =
  qcheck ~count:10 "weighted graphs: stretch bound survives batches" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:32 seed in
      let s = stream_of_seed ~batches:2 ~ops:4 g seed in
      let eng = Repair.create (Repair.defaults ~k:3) g in
      List.for_all
        (fun b ->
          ignore (Repair.apply_batch eng b);
          (Repair.recertify eng).Repair.stretch_ok)
        s.Update_stream.batches)

let replay_is_bit_identical () =
  let g = unit_graph_of_seed 11 in
  let s = stream_of_seed ~batches:4 ~ops:8 g 11 in
  let run () =
    let eng = Repair.create (Repair.defaults ~k:3) g in
    let outs = Repair.apply_stream eng s in
    (outs, graph_bytes (Repair.graph eng), Repair.spanner eng)
  in
  Alcotest.(check bool) "two replays, same outcomes/graph/spanner" true
    (run () = run ())

let copy_is_independent () =
  let g = unit_graph_of_seed 5 in
  let s = stream_of_seed ~batches:2 ~ops:6 g 5 in
  let eng = Repair.create (Repair.defaults ~k:2) g in
  let snapshot = Repair.copy eng in
  let before = graph_bytes (Repair.graph snapshot) in
  ignore (Repair.apply_stream eng s);
  Alcotest.(check string) "copy untouched by the original's batches" before
    (graph_bytes (Repair.graph snapshot));
  ignore (Repair.apply_stream snapshot s);
  Alcotest.(check string) "copy replays to the same graph"
    (graph_bytes (Repair.graph eng))
    (graph_bytes (Repair.graph snapshot))

let bad_batch_leaves_engine_unchanged () =
  let g = Generators.cycle 8 in
  let eng = Repair.create (Repair.defaults ~k:2) g in
  let before = graph_bytes (Repair.graph eng) in
  (match
     Repair.apply_batch eng
       [ Update_stream.delete 0 1; Update_stream.delete 0 1 ]
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "double delete must raise");
  Alcotest.(check string) "graph unchanged" before
    (graph_bytes (Repair.graph eng));
  Alcotest.(check int) "no batch counted" 1
    (Repair.apply_batch eng [ Update_stream.delete 0 1 ]).Repair.batch

(* ---------- lazy recertification ---------- *)

let cert_edge_of eng =
  (* some certificate edge of the current graph, as an op *)
  match Repair.certificate eng with
  | None -> Alcotest.fail "engine maintains no certificate"
  | Some c ->
      let g = Repair.graph eng in
      let found = ref None in
      Graph.iter_edges g (fun e ->
          if !found = None && c.Certificate.keep.(e.Graph.id) then
            found := Some (Update_stream.delete e.Graph.u e.Graph.v));
      (match !found with
      | Some op -> op
      | None -> Alcotest.fail "certificate is empty")

let debt_triggers_cert_rebuild () =
  let g = k_connected_graph ~n:24 ~k:5 17 in
  let cfg =
    { (Repair.defaults ~k:2) with
      Repair.cert = Some (Repair.Thurimella, 2);
      headroom = 1;
    }
  in
  let eng = Repair.create cfg g in
  let rebuilds = ref 0 and max_debt = ref 0 in
  for _ = 1 to 6 do
    let o = Repair.apply_batch eng [ cert_edge_of eng ] in
    if o.Repair.cert_rebuilt then incr rebuilds;
    max_debt := max !max_debt o.Repair.cert_debt;
    let v = Repair.recertify ~rng:(Rng.create 3) ~budget:60 eng in
    Alcotest.(check (option bool)) "still a certificate" (Some true)
      v.Repair.cert_ok;
    Alcotest.(check (option int)) "no failure-set violations" (Some 0)
      v.Repair.cert_violations
  done;
  Alcotest.(check bool) "debt crossed the headroom at least once" true
    (!rebuilds >= 1);
  Alcotest.(check bool) "debt never exceeds headroom after a batch" true
    (!max_debt <= 1)

let cert_preserved_under_streams =
  qcheck ~count:8 "certificate k-connectivity preserved on random streams"
    seed_gen (fun seed ->
      let g = k_connected_graph ~n:24 ~k:4 seed in
      let cfg =
        { (Repair.defaults ~k:2) with Repair.cert = Some (Repair.Thurimella, 2) }
      in
      let eng = Repair.create cfg g in
      let s = stream_of_seed ~batches:3 ~ops:4 ~insert_frac:0.4 g seed in
      List.for_all
        (fun b ->
          ignore (Repair.apply_batch eng b);
          let v = Repair.recertify ~rng:(Rng.create seed) ~budget:40 eng in
          v.Repair.cert_ok = Some true && v.Repair.cert_violations = Some 0)
        s.Update_stream.batches)

(* at least one PR 1 fault plan replayed through the engine, recertified *)
let fault_plan_replays_recertified () =
  let g = k_connected_graph ~n:30 ~k:4 3 in
  let plan =
    Faults.random_link_failures
      ~rng:(Rng.create 1)
      g ~within:3 ~count:5 Faults.empty
  in
  let s = Update_stream.of_faults g plan in
  Alcotest.(check bool) "plan produced deletions" true
    (Update_stream.delete_count s = 5);
  let cfg =
    { (Repair.defaults ~k:2) with Repair.cert = Some (Repair.Thurimella, 2) }
  in
  let eng = Repair.create cfg g in
  List.iter
    (fun b ->
      ignore (Repair.apply_batch eng b);
      let v = Repair.recertify ~rng:(Rng.create 9) ~budget:80 eng in
      Alcotest.(check bool) "stretch recertified" true v.Repair.stretch_ok;
      Alcotest.(check bool) "spanning" true v.Repair.spanning;
      Alcotest.(check (option bool)) "certificate recertified" (Some true)
        v.Repair.cert_ok)
    s.Update_stream.batches

let kecss_cert_degrades_gracefully () =
  (* deletions sink the graph below the KECSS precondition: the engine must
     fall back (Thurimella) rather than fail, and stay certified *)
  let g = k_connected_graph ~n:20 ~k:3 7 in
  let cfg =
    { (Repair.defaults ~k:2) with
      Repair.cert = Some (Repair.Kecss, 2);
      headroom = 0;
    }
  in
  let eng = Repair.create cfg g in
  for _ = 1 to 4 do
    ignore (Repair.apply_batch eng [ cert_edge_of eng ]);
    let v = Repair.recertify ~rng:(Rng.create 3) ~budget:40 eng in
    Alcotest.(check (option bool)) "still certified" (Some true) v.Repair.cert_ok
  done

let suite =
  [
    round_trip_is_identity;
    generation_is_deterministic;
    generated_streams_replay;
    case "stream: rejects malformed input" rejects_malformed;
    case "stream: comments and blanks ignored" comments_and_blanks_ignored;
    case "stream: strict apply" apply_is_strict;
    case "faults: link failures become deletions" faults_become_deletions;
    case "faults: crash kills incident edges" crash_kills_incident_edges;
    case "faults: dedupe and non-edges" fault_stream_dedupes;
    case "faults: empty plan, empty stream" empty_plan_empty_stream;
    case "faults: all-non-edge plan is empty" all_non_edges_empty_stream;
    case "faults: crash-stop-only plan replays" crash_only_plan_replays;
    repair_matches_rebuild;
    engine_graph_matches_apply_all;
    weighted_streams_keep_bound;
    case "repair: replay is bit-identical" replay_is_bit_identical;
    case "repair: copy is independent" copy_is_independent;
    case "repair: bad batch leaves engine unchanged"
      bad_batch_leaves_engine_unchanged;
    case "cert: debt > headroom triggers rebuild" debt_triggers_cert_rebuild;
    cert_preserved_under_streams;
    case "cert: fault plan replays recertified" fault_plan_replays_recertified;
    slow_case "cert: kecss degrades gracefully" kecss_cert_degrades_gracefully;
  ]
