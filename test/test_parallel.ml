open Ultraspan
open Helpers

(* The deterministic domain pool (Parallel) and its consumers: every entry
   point must return bit-identical results at any job count, the early-exit
   stretch Dijkstra must agree with a full restricted Dijkstra, and the
   bench artifacts built from parallel kernels must not depend on jobs. *)

let jobs_gen = QCheck2.Gen.int_range 2 6

(* --- pool primitives --- *)

let test_parallel_for_covers () =
  let n = 1000 in
  let hits = Array.make n 0 in
  (* Each slot is written by exactly one chunk, so no two domains race on
     an index; the final content proves exactly-once coverage. *)
  Parallel.parallel_for ~jobs:4 0 n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index ran once" true (Array.for_all (( = ) 1) hits)

let test_parallel_for_offset () =
  let seen = Array.make 20 false in
  Parallel.parallel_for ~jobs:3 7 20 (fun i -> seen.(i) <- true);
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) (Printf.sprintf "index %d" i) (7 <= i && i < 20) s)
    seen

let test_map_array_order () =
  let a = Parallel.map_array ~jobs:5 257 (fun i -> i * i) in
  Alcotest.(check bool) "results in index order" true
    (Array.for_all (fun ok -> ok) (Array.mapi (fun i v -> v = i * i) a))

let test_map_list_order () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int)) "order preserved"
    (List.map (fun x -> 3 * x) xs)
    (Parallel.map_list ~jobs:4 (fun x -> 3 * x) xs)

let test_empty_ranges () =
  Parallel.parallel_for ~jobs:4 5 5 (fun _ -> Alcotest.fail "ran on empty");
  Alcotest.(check int) "map_array 0" 0
    (Array.length (Parallel.map_array ~jobs:4 0 (fun i -> i)));
  Alcotest.(check int) "map_reduce empty = init" 42
    (Parallel.map_reduce ~jobs:4 ~n:0 ~map:(fun i -> i) ~init:42 ~reduce:( + ))

let test_exception_propagates () =
  (match Parallel.parallel_for ~jobs:3 0 500 (fun i -> if i = 321 then failwith "boom") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* the pool must stay usable after a failed section *)
  Alcotest.(check int) "pool alive after failure" 4950
    (Parallel.map_reduce ~jobs:3 ~n:100 ~map:(fun i -> i) ~init:0 ~reduce:( + ))

let test_nested_sections () =
  let expect =
    Array.init 8 (fun i ->
        let acc = ref 0.0 in
        for j = 0 to 49 do
          acc := !acc +. (float_of_int (i + j) *. 0.1)
        done;
        !acc)
  in
  let got =
    Parallel.map_array ~jobs:4 8 (fun i ->
        Parallel.map_reduce ~jobs:4 ~n:50
          ~map:(fun j -> float_of_int (i + j) *. 0.1)
          ~init:0.0 ~reduce:( +. ))
  in
  Alcotest.(check bool) "nested = sequential, bit-identical" true (expect = got)

let test_default_jobs_env () =
  let set v = Unix.putenv "ULTRASPAN_JOBS" v in
  set "3";
  Alcotest.(check int) "ULTRASPAN_JOBS=3" 3 (Parallel.default_jobs ());
  set " 5 ";
  Alcotest.(check int) "whitespace trimmed" 5 (Parallel.default_jobs ());
  set "zonk";
  (match Parallel.default_jobs () with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  set "0";
  (match Parallel.default_jobs () with
  | _ -> Alcotest.fail "expected Invalid_argument on 0"
  | exception Invalid_argument _ -> ());
  set "";
  Alcotest.(check int) "empty means sequential" 1 (Parallel.default_jobs ())

(* map_reduce's parallel path must perform the sequential left fold's
   arithmetic exactly — float sums are the sensitive case. *)
let float_sum_law =
  qcheck ~count:50 "map_reduce float sum is jobs-invariant"
    QCheck2.Gen.(pair (list_size (int_range 0 300) (float_range (-1e6) 1e6)) jobs_gen)
    (fun (xs, jobs) ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let seq =
        Parallel.map_reduce ~jobs:1 ~n ~map:(Array.get a) ~init:0.0
          ~reduce:( +. )
      in
      let par =
        Parallel.map_reduce ~jobs ~n ~map:(Array.get a) ~init:0.0
          ~reduce:( +. )
      in
      Int64.bits_of_float seq = Int64.bits_of_float par)

(* --- verification kernels: jobs differentials --- *)

let mask_of g seed =
  (Baswana_sen.run ~rng:(Rng.create seed) ~k:3 g).Baswana_sen.spanner
    .Spanner.keep

let stretch_jobs_law =
  qcheck ~count:15 "max/mean stretch identical at any job count"
    QCheck2.Gen.(pair seed_gen jobs_gen)
    (fun (seed, jobs) ->
      let g = graph_of_seed seed in
      let keep = mask_of g seed in
      Stretch.max_edge_stretch ~jobs:1 g keep
      = Stretch.max_edge_stretch ~jobs g keep
      && Stretch.mean_edge_stretch ~jobs:1 g keep
         = Stretch.mean_edge_stretch ~jobs g keep)

let sampled_stretch_jobs_law =
  qcheck ~count:15 "sampled stretch draws the same sample at any job count"
    QCheck2.Gen.(pair seed_gen jobs_gen)
    (fun (seed, jobs) ->
      let g = graph_of_seed seed in
      let keep = mask_of g seed in
      Stretch.sampled_edge_stretch ~jobs:1 ~rng:(Rng.create 99) ~samples:37 g
        keep
      = Stretch.sampled_edge_stretch ~jobs ~rng:(Rng.create 99) ~samples:37 g
          keep)

let apsp_jobs_law =
  qcheck ~count:10 "APSP / multi-source / diameter identical at any job count"
    QCheck2.Gen.(pair seed_gen jobs_gen)
    (fun (seed, jobs) ->
      let g = graph_of_seed ~n_max:60 seed in
      let sources = Array.init (min 5 (Graph.n g)) (fun i -> i) in
      Apsp.by_dijkstra ~jobs:1 g = Apsp.by_dijkstra ~jobs g
      && Apsp.multi_source ~jobs:1 g sources
         = Apsp.multi_source ~jobs g sources
      && Apsp.diameter ~jobs:1 g = Apsp.diameter ~jobs g)

(* --- early-exit stretch Dijkstra vs full restricted Dijkstra --- *)

(* Mirror of the pre-early-exit per-vertex check: one FULL restricted
   Dijkstra per vertex.  The early-exit search stops once the v < u
   neighbors are settled; settled distances are final, so the maxima must
   agree exactly. *)
let ref_max_edge_stretch g keep =
  let worst = ref 0.0 in
  for v = 0 to Graph.n g - 1 do
    let needs = ref false and kept = ref 0 in
    Graph.iter_adj g v (fun u eid ->
        if u > v then if keep.(eid) then incr kept else needs := true);
    let vw =
      if not !needs then if !kept = 0 then 0.0 else 1.0
      else begin
        let dist = Dijkstra.distances ~allow:(fun eid -> keep.(eid)) g v in
        let w0 = ref 0.0 in
        Graph.iter_adj g v (fun u eid ->
            if u > v then begin
              let w = Graph.weight g eid in
              let s =
                if dist.(u) = Dijkstra.infinity then Float.infinity
                else if w = 0 then if dist.(u) = 0 then 1.0 else Float.infinity
                else float_of_int dist.(u) /. float_of_int w
              in
              if s > !w0 then w0 := s
            end);
        !w0
      end
    in
    if vw > !worst then worst := vw
  done;
  if Graph.m g = 0 then 1.0 else !worst

let early_exit_law =
  qcheck ~count:25 "early-exit stretch = full-Dijkstra stretch"
    QCheck2.Gen.(pair seed_gen jobs_gen)
    (fun (seed, jobs) ->
      let g = graph_of_seed ~n_max:80 seed in
      let keep = mask_of g seed in
      Stretch.max_edge_stretch ~jobs g keep = ref_max_edge_stretch g keep)

let early_exit_sparse_mask_law =
  qcheck ~count:15 "early exit with adversarially sparse masks"
    QCheck2.Gen.(pair seed_gen (int_range 0 100))
    (fun (seed, pct) ->
      let g = graph_of_seed ~n_max:60 seed in
      (* keep each edge with pct% probability: exercises disconnected
         subgraphs, where unsettled targets must read as infinity *)
      let rng = Rng.create (seed + 7) in
      let keep = Array.init (Graph.m g) (fun _ -> Rng.int rng 100 < pct) in
      Stretch.max_edge_stretch ~jobs:4 g keep = ref_max_edge_stretch g keep)

(* --- artifacts built from parallel kernels are byte-identical --- *)

let table_at_jobs jobs =
  let module T = Exp_table in
  let g = graph_of_seed 7 in
  let keep = mask_of g 7 in
  let smax = Stretch.max_edge_stretch ~jobs g keep in
  let smean = Stretch.mean_edge_stretch ~jobs g keep in
  let diam = Apsp.diameter ~jobs g in
  T.make ~id:"par-diff" ~title:"parallel differential"
    ~params:[ ("n", T.Int (Graph.n g)) ]
    [
      T.section
        ~cols:[ T.col ~w:9 "smax"; T.col ~w:9 "smean"; T.col ~w:6 "diam" ]
        "s"
        [
          T.row
            [
              ("smax", T.Float smax);
              ("smean", T.Float smean);
              ("diam", T.Int diam);
            ];
        ];
    ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_artifact_bytes () =
  let module T = Exp_table in
  let dir1 = Filename.temp_dir "uspar" "j1" in
  let dir4 = Filename.temp_dir "uspar" "j4" in
  let p1 = T.save ~dir:dir1 (table_at_jobs 1) in
  let p4 = T.save ~dir:dir4 (table_at_jobs 4) in
  Alcotest.(check string) "artifact bytes identical at jobs 1 vs 4"
    (read_file p1) (read_file p4)

let suite =
  [
    Alcotest.test_case "parallel_for covers" `Quick test_parallel_for_covers;
    Alcotest.test_case "parallel_for offset range" `Quick
      test_parallel_for_offset;
    Alcotest.test_case "map_array order" `Quick test_map_array_order;
    Alcotest.test_case "map_list order" `Quick test_map_list_order;
    Alcotest.test_case "empty ranges" `Quick test_empty_ranges;
    Alcotest.test_case "exception propagates, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "nested sections run sequentially" `Quick
      test_nested_sections;
    Alcotest.test_case "ULTRASPAN_JOBS parsing" `Quick test_default_jobs_env;
    float_sum_law;
    stretch_jobs_law;
    sampled_stretch_jobs_law;
    apsp_jobs_law;
    early_exit_law;
    early_exit_sparse_mask_law;
    Alcotest.test_case "artifact bytes jobs-invariant" `Quick
      test_artifact_bytes;
  ]
