open Ultraspan
open Helpers

(* ---------- Rng ---------- *)

let rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done

let rng_int_uniformish () =
  let rng = Rng.create 11 in
  let counts = Array.make 8 0 in
  let trials = 8000 in
  for _ = 1 to trials do
    let x = Rng.int rng 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200))
    counts

let rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (x >= 0.0 && x < 2.5)
  done

let rng_bernoulli_bias () =
  let rng = Rng.create 9 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  Alcotest.(check bool) "p=0.3 within 3 sigma" true (!hits > 2800 && !hits < 3200)

let rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  (* the split stream is not a shifted copy of the parent's *)
  let xa = Array.init 20 (fun _ -> Rng.int64 a) in
  let xb = Array.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let rng_shuffle_permutation =
  qcheck "shuffle is a permutation" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let a = Array.init 50 (fun i -> i) in
      Rng.shuffle rng a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init 50 (fun i -> i))

let rng_int_in () =
  let rng = Rng.create 17 in
  for _ = 1 to 500 do
    let x = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "int_in range" true (x >= -5 && x <= 5)
  done

(* ---------- Pqueue ---------- *)

let pqueue_sorts =
  qcheck "pqueue pops in sorted order"
    QCheck2.Gen.(list_size (int_bound 200) int)
    (fun xs ->
      let pq = Pqueue.create ~cmp:compare () in
      List.iter (fun x -> Pqueue.push pq x x) xs;
      let rec drain acc =
        match Pqueue.pop pq with
        | None -> List.rev acc
        | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

let pqueue_basics () =
  let pq = Pqueue.create ~cmp:compare () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty pq);
  Alcotest.(check (option (pair int string))) "peek empty" None (Pqueue.peek pq);
  Pqueue.push pq 3 "c";
  Pqueue.push pq 1 "a";
  Pqueue.push pq 2 "b";
  Alcotest.(check int) "length" 3 (Pqueue.length pq);
  Alcotest.(check (option (pair int string))) "peek min" (Some (1, "a")) (Pqueue.peek pq);
  Alcotest.(check (pair int string)) "pop order" (1, "a") (Pqueue.pop_exn pq);
  Alcotest.(check (pair int string)) "pop order" (2, "b") (Pqueue.pop_exn pq);
  Pqueue.clear pq;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty pq)

let pqueue_pop_exn_empty () =
  let pq = Pqueue.create ~cmp:compare () in
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn pq : int * int))

let pqueue_custom_order () =
  let pq = Pqueue.create ~cmp:(fun a b -> compare b a) () in
  List.iter (fun x -> Pqueue.push pq x x) [ 5; 1; 9; 3 ];
  Alcotest.(check (pair int int)) "max-heap" (9, 9) (Pqueue.pop_exn pq)

(* ---------- Bitset ---------- *)

let bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal b);
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 99;
  Alcotest.(check bool) "mem 63" true (Bitset.mem b 63);
  Alcotest.(check bool) "not mem 50" false (Bitset.mem b 50);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 63; 99 ] (Bitset.to_list b);
  Bitset.remove b 63;
  Alcotest.(check bool) "removed" false (Bitset.mem b 63);
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b)

let bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.add b 10)

let bitset_matches_naive =
  qcheck "bitset matches naive set"
    QCheck2.Gen.(list_size (int_bound 100) (int_bound 63))
    (fun ops ->
      let b = Bitset.create 64 in
      let naive = Hashtbl.create 16 in
      List.iter
        (fun i ->
          if Hashtbl.mem naive i then begin
            Hashtbl.remove naive i;
            Bitset.remove b i
          end
          else begin
            Hashtbl.replace naive i ();
            Bitset.add b i
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length naive
      && List.for_all (Hashtbl.mem naive) (Bitset.to_list b))

(* ---------- Union_find ---------- *)

let union_find_matches_components =
  qcheck "union-find matches naive reachability" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let n = 30 in
      let uf = Union_find.create n in
      let adj = Array.make_matrix n n false in
      for _ = 1 to 40 do
        let a = Rng.int rng n and b = Rng.int rng n in
        if a <> b then begin
          ignore (Union_find.union uf a b);
          adj.(a).(b) <- true;
          adj.(b).(a) <- true
        end
      done;
      (* Floyd–Warshall style closure *)
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if adj.(i).(k) && adj.(k).(j) then adj.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && Union_find.same uf i j <> adj.(i).(j) then ok := false
        done
      done;
      !ok)

let union_find_counts () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial count" 5 (Union_find.count uf);
  Alcotest.(check bool) "union joins" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat is noop" false (Union_find.union uf 1 0);
  Alcotest.(check int) "count after union" 4 (Union_find.count uf);
  Alcotest.(check int) "size" 2 (Union_find.size_of uf 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check int) "size big" 4 (Union_find.size_of uf 2)

(* ---------- Stats ---------- *)

let stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (Stats.median xs);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "min_max" (1.0, 4.0)
    (Stats.min_max xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 1.0)

let stats_histogram () =
  let xs = [| 0.0; 0.5; 1.0; 1.5; 2.0 |] in
  let h = Stats.histogram ~bins:2 xs in
  Alcotest.(check int) "two bins" 2 (Array.length h);
  let total = Array.fold_left (fun a (_, _, c) -> a + c) 0 h in
  Alcotest.(check int) "counts sum" 5 total

let stats_histogram_constant () =
  (* all-equal data used to produce zero-width buckets with every count in
     the last one; now it degenerates to a single explicit bucket *)
  let h = Stats.histogram ~bins:5 [| 2.5; 2.5; 2.5 |] in
  Alcotest.(check int) "one bucket" 1 (Array.length h);
  let lo, hi, c = h.(0) in
  Alcotest.(check (float 1e-9)) "lo" 2.5 lo;
  Alcotest.(check (float 1e-9)) "hi" 2.5 hi;
  Alcotest.(check int) "count" 3 c;
  let single = Stats.histogram ~bins:3 [| 7.0 |] in
  Alcotest.(check int) "singleton input" 1 (Array.length single)

let profile_basics () =
  let p = Profile.create () in
  let x = Profile.time p "work" (fun () -> 1 + 1) in
  Alcotest.(check int) "result threaded through" 2 x;
  ignore (Profile.time p "work" (fun () -> ()));
  Profile.record p "fixed" 0.5;
  (match Profile.phases p with
  | [ ("work", _, 2); ("fixed", s, 1) ] ->
      Alcotest.(check (float 1e-9)) "recorded seconds" 0.5 s
  | _ -> Alcotest.fail "expected [work x2; fixed x1] in first-use order");
  Alcotest.(check bool) "total >= recorded" true (Profile.total p >= 0.5);
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Profile.record: negative duration") (fun () ->
      Profile.record p "fixed" (-1.0))

let stats_empty () =
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean [||]);
  Alcotest.check_raises "min_max empty"
    (Invalid_argument "Stats.min_max: empty array") (fun () ->
      ignore (Stats.min_max [||]))

(* ---------- Hash_family ---------- *)

let hash_family_deterministic () =
  let h = Hash_family.of_coeffs [| 12345; 678; 91011 |] in
  let a = Array.init 50 (Hash_family.eval h) in
  let b = Array.init 50 (Hash_family.eval h) in
  Alcotest.(check bool) "same outputs" true (a = b)

let hash_family_range =
  qcheck "eval within field" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let h = Hash_family.create ~degree:3 rng in
      List.for_all
        (fun i ->
          let v = Hash_family.eval h i in
          v >= 0 && v < Hash_family.prime)
        (List.init 100 (fun i -> i * 7919)))

let hash_family_marginals () =
  (* Across random seeds, each indicator fires with probability ~ p. *)
  let rng = Rng.create 99 in
  let p = 0.25 in
  let threshold = Hash_family.threshold_of_prob p in
  let trials = 3000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let h = Hash_family.create ~degree:2 rng in
    if Hash_family.indicator h ~threshold 42 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "marginal close to p" true (abs_float (freq -. p) < 0.04)

let hash_family_hitting_event () =
  (* Hitting-event probability under the family approximates independence:
     Pr[no X_i fires among 10 indices] should be close to (1-p)^10 when the
     degree (independence) is high enough. *)
  let rng = Rng.create 4242 in
  let p = 0.2 in
  let threshold = Hash_family.threshold_of_prob p in
  let trials = 3000 in
  let misses = ref 0 in
  for _ = 1 to trials do
    let h = Hash_family.create ~degree:9 rng in
    let all_zero = ref true in
    for i = 0 to 9 do
      if Hash_family.indicator h ~threshold (1000 + i) then all_zero := false
    done;
    if !all_zero then incr misses
  done;
  let freq = float_of_int !misses /. float_of_int trials in
  let expected = (1.0 -. p) ** 10.0 in
  Alcotest.(check bool) "hitting-event approximated" true
    (abs_float (freq -. expected) < 0.05)

let hash_family_pairwise_independence () =
  (* Degree-1 family: joint distribution of two indicators ~ product. *)
  let rng = Rng.create 7 in
  let p = 0.5 in
  let threshold = Hash_family.threshold_of_prob p in
  let trials = 4000 in
  let both = ref 0 in
  for _ = 1 to trials do
    let h = Hash_family.create ~degree:1 rng in
    if Hash_family.indicator h ~threshold 3 && Hash_family.indicator h ~threshold 77
    then incr both
  done;
  let freq = float_of_int !both /. float_of_int trials in
  Alcotest.(check bool) "pairwise product" true (abs_float (freq -. 0.25) < 0.04)

let hash_family_bad_args () =
  Alcotest.check_raises "negative degree"
    (Invalid_argument "Hash_family.create: negative degree") (fun () ->
      ignore (Hash_family.create ~degree:(-1) (Rng.create 0)))

let suite =
  [
    case "rng: deterministic" rng_deterministic;
    case "rng: seed sensitivity" rng_seed_sensitivity;
    case "rng: int range" rng_int_range;
    case "rng: int uniform-ish" rng_int_uniformish;
    case "rng: float range" rng_float_range;
    case "rng: bernoulli bias" rng_bernoulli_bias;
    case "rng: split independence" rng_split_independent;
    rng_shuffle_permutation;
    case "rng: int_in" rng_int_in;
    pqueue_sorts;
    case "pqueue: basics" pqueue_basics;
    case "pqueue: pop_exn empty" pqueue_pop_exn_empty;
    case "pqueue: custom order" pqueue_custom_order;
    case "bitset: basics" bitset_basics;
    case "bitset: bounds" bitset_bounds;
    bitset_matches_naive;
    union_find_matches_components;
    case "union_find: counts" union_find_counts;
    case "stats: basics" stats_basics;
    case "stats: histogram" stats_histogram;
    case "stats: histogram constant data" stats_histogram_constant;
    case "stats: empty" stats_empty;
    case "profile: basics" profile_basics;
    case "hash_family: deterministic" hash_family_deterministic;
    hash_family_range;
    case "hash_family: marginals" hash_family_marginals;
    case "hash_family: hitting events" hash_family_hitting_event;
    case "hash_family: pairwise independence" hash_family_pairwise_independence;
    case "hash_family: bad args" hash_family_bad_args;
  ]
