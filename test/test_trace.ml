open Ultraspan
open Helpers

(* ---------- the trace sink (PR: observability) ---------- *)

(* Same flooding program as the congest suite: the root floods a token and
   every node records the round it first hears it. *)
let flood_program root =
  {
    Network.init = (fun _ _ -> -1);
    round =
      (fun g ~round ~me st inbox ->
        if round = 0 && me = root then
          {
            Network.state = 0;
            out = List.map (fun (u, _) -> (u, [| 1 |])) (Graph.neighbors g me);
            halt = true;
          }
        else if st = -1 && inbox <> [] then
          {
            Network.state = round;
            out = List.map (fun (u, _) -> (u, [| 1 |])) (Graph.neighbors g me);
            halt = true;
          }
        else { Network.state = st; out = []; halt = true })
  }

let mixed_plan_of_seed g seed =
  let rng = Rng.create (succ (abs seed)) in
  let n = Graph.n g in
  Faults.empty
  |> Faults.with_drops ~seed 0.15
  |> Faults.random_crashes ~rng ~n ~within:4 ~count:(min 3 (n - 1))
  |> Faults.random_link_failures ~rng g ~within:4 ~count:(min 4 (Graph.m g))

let sum = Array.fold_left ( + ) 0

let round_sum tr f =
  Array.fold_left (fun a r -> a + f r) 0 (Trace.rounds tr)

let trace_is_pure_observation =
  qcheck "trace sink: pure observation, sums reconcile with stats" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let plain = Network.run g (flood_program 0) in
      let tr = Trace.create g in
      let traced = Network.run ~trace:tr g (flood_program 0) in
      let _, stats = traced in
      plain = traced
      && Array.length (Trace.rounds tr) = stats.Network.rounds
      && round_sum tr (fun r -> r.Trace.delivered) = stats.Network.messages
      && round_sum tr (fun r -> r.Trace.active) = stats.Network.wakeups
      && sum (Trace.sent tr) = stats.Network.messages
      && sum (Trace.received tr) = stats.Network.messages
      && sum (Trace.edge_load tr) = stats.Network.messages
      && Trace.total_delivered tr = stats.Network.messages
      && round_sum tr (fun r -> r.Trace.drops) = 0
      && Trace.total_fault_events tr = 0)

let trace_reconciles_with_faults =
  qcheck ~count:20 "trace sink: fault counters reconcile with the injector"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let f = Faults.make (mixed_plan_of_seed g seed) in
      let tr = Trace.create g in
      let _, stats = Network.run ~faults:f ~trace:tr g (flood_program 0) in
      round_sum tr (fun r -> r.Trace.drops) = stats.Network.drops
      && stats.Network.drops = Faults.drops f
      && round_sum tr (fun r -> r.Trace.crashes) = Faults.crashed_nodes f
      && round_sum tr (fun r -> r.Trace.severs) = Faults.severed_links f
      && round_sum tr (fun r -> r.Trace.delivered) = stats.Network.messages
      && Trace.total_fault_events tr = List.length (Faults.events f))

let jsonl_round_trips =
  qcheck ~count:20 "trace sink: JSONL round records parse back exactly"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let f = Faults.make (mixed_plan_of_seed g seed) in
      let tr = Trace.create g in
      let _ = Network.run ~faults:f ~trace:tr g (flood_program 0) in
      let parsed =
        String.split_on_char '\n' (Trace.to_jsonl tr)
        |> List.filter_map Trace.round_of_jsonl
      in
      parsed = Array.to_list (Trace.rounds tr))

let exports_are_deterministic =
  qcheck ~count:10 "trace sink: seeded runs export byte-identical traces"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let export () =
        let f = Faults.make (mixed_plan_of_seed g seed) in
        let tr = Trace.create g in
        let _ = Network.run ~faults:f ~trace:tr g (flood_program 0) in
        (Trace.to_jsonl tr, Trace.to_chrome tr)
      in
      export () = export ())

let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let c = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr c
  done;
  !c

let chrome_export_well_formed () =
  let g = Generators.path 6 in
  let tr = Trace.create g in
  let _, stats = Network.run ~trace:tr g (flood_program 0) in
  let chrome = Trace.to_chrome tr in
  Alcotest.(check int) "one duration slice per round" stats.Network.rounds
    (count_substring chrome {|"ph":"X"|});
  Alcotest.(check int) "two counter tracks per round"
    (2 * stats.Network.rounds)
    (count_substring chrome {|"ph":"C"|});
  Alcotest.(check bool) "array-shaped" true
    (chrome.[0] = '[' && chrome.[String.length chrome - 1] = '\n'
    && String.length chrome >= 2
    && chrome.[String.length chrome - 2] = ']')

let trace_is_single_use () =
  let g = Generators.path 3 in
  let tr = Trace.create g in
  let _ = Network.run ~trace:tr g (flood_program 0) in
  Alcotest.check_raises "reuse rejected"
    (Invalid_argument "Trace.start: sink already used (build a fresh one)")
    (fun () -> ignore (Network.run ~trace:tr g (flood_program 0)))

let trace_rejects_wrong_graph () =
  let tr = Trace.create (Generators.path 3) in
  Alcotest.check_raises "size mismatch rejected"
    (Invalid_argument "Trace.start: sink was built for a different graph")
    (fun () ->
      ignore (Network.run ~trace:tr (Generators.path 5) (flood_program 0)))

let traced_programs_agree =
  qcheck ~count:15 "native programs: traced run returns the same answers"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let tr = Trace.create g in
      let plain = Programs.bfs g ~root:0 in
      let traced = Programs.bfs ~trace:tr g ~root:0 in
      let _, stats = traced in
      plain = traced
      && round_sum tr (fun r -> r.Trace.delivered) = stats.Network.messages)

let suite =
  [
    trace_is_pure_observation;
    trace_reconciles_with_faults;
    jsonl_round_trips;
    exports_are_deterministic;
    case "trace: chrome export shape" chrome_export_well_formed;
    case "trace: sink single-use" trace_is_single_use;
    case "trace: graph mismatch" trace_rejects_wrong_graph;
    traced_programs_agree;
  ]
