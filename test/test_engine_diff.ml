open Ultraspan
open Helpers

(* Differential tests for the two simulator engines: the CSR slot-based
   [`Fast] message plane must be observably identical to the [`Ref]
   list-based oracle — states, stats, fault-event logs and exported trace
   JSONL, byte for byte. *)

(* ---------- a family of random-but-deterministic programs ----------

   Keyed by [seed]: every node sends to a pseudo-random subset of its
   neighbours with pseudo-random payloads (1-4 words) while [round < cap],
   and halts pseudo-randomly (woken nodes re-halt at [round >= cap], so
   every run quiesces). *)

let random_program ~seed ~cap =
  let h a b c =
    Rng.bits (Rng.create ((seed * 1_000_003) + (a * 8191) + (b * 131) + c))
  in
  {
    Network.init = (fun _ v -> v land 0xff);
    round =
      (fun g ~round ~me st inbox ->
        let absorbed =
          List.fold_left
            (fun acc (s, p) -> acc + s + Array.fold_left ( + ) 0 p)
            st inbox
        in
        if round >= cap then { Network.state = absorbed; out = []; halt = true }
        else begin
          let out =
            List.rev
              (Graph.fold_adj g me
                 (fun acc u _ ->
                   let r = h me u round in
                   if r land 3 = 0 then acc
                   else begin
                     let words = 1 + (r lsr 2) mod 4 in
                     let payload =
                       Array.init words (fun i -> h u me (round + i) land 0xffff)
                     in
                     (u, payload) :: acc
                   end)
                 [])
          in
          let halt = h me 17 round land 7 < 3 in
          { Network.state = absorbed; out; halt }
        end);
  }

let cap_of_seed seed = 2 + (abs seed mod 7)

(* Run under one engine with a fresh trace sink (and optionally a fresh
   injector built from [plan]); return everything observable. *)
let observe ~engine ?plan g prog =
  let faults = Option.map Faults.make plan in
  let tr = Trace.create g in
  let states, stats = Network.run ?faults ~trace:tr ~engine g prog in
  let events = match faults with Some f -> Faults.events f | None -> [] in
  (states, stats, events, Trace.to_jsonl tr)

let engines_agree ?plan g prog =
  observe ~engine:`Fast ?plan g prog = observe ~engine:`Ref ?plan g prog

let mixed_plan_of_seed g seed =
  let rng = Rng.create (succ (abs seed)) in
  let n = Graph.n g in
  Faults.empty
  |> Faults.with_drops ~seed 0.2
  |> Faults.random_crashes ~rng ~n ~within:5 ~count:(min 3 (n - 1))
  |> Faults.random_link_failures ~rng g ~within:5 ~count:(min 4 (Graph.m g))

(* ---------- qcheck properties ---------- *)

let random_programs_fault_free =
  qcheck ~count:60 "random programs: engines identical (fault-free)" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      engines_agree g (random_program ~seed ~cap:(cap_of_seed seed)))

let random_programs_under_faults =
  qcheck ~count:60 "random programs: engines identical (mixed faults)"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let plan = mixed_plan_of_seed g seed in
      engines_agree ~plan g (random_program ~seed ~cap:(cap_of_seed seed)))

let native_protocols_agree =
  qcheck ~count:25 "native protocols: engines identical" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:50 seed in
      let u = Graph.with_unit_weights g in
      let both run = run `Fast = run `Ref in
      let traced run engine =
        let tr = Trace.create g in
        let out = run ~trace:tr ~engine in
        (out, Trace.to_jsonl tr)
      in
      both (traced (fun ~trace ~engine -> Programs.bfs ~trace ~engine u ~root:0))
      && both
           (traced (fun ~trace ~engine ->
                let values = Array.init (Graph.n g) (fun v -> (v * 37) mod 101) in
                Programs.broadcast_max ~trace ~engine u ~values))
      && both
           (traced (fun ~trace ~engine ->
                Programs.maximal_matching ~trace ~engine u))
      && both
           (traced (fun ~trace ~engine ->
                Programs.luby_mis ~trace ~engine ~seed u))
      && both
           (traced (fun ~trace ~engine ->
                Programs.bellman_ford ~trace ~engine g ~source:0))
      && both
           (traced (fun ~trace ~engine -> Programs.spanning_forest ~trace ~engine g)))

let bfs_under_faults_agrees =
  qcheck ~count:25 "faulty BFS: engines identical incl. fault events" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let plan = mixed_plan_of_seed g seed in
      let run engine =
        let f = Faults.make plan in
        let tr = Trace.create g in
        let out = Programs.bfs ~faults:f ~trace:tr ~engine g ~root:0 in
        (out, Faults.events f, Trace.to_jsonl tr)
      in
      run `Fast = run `Ref)

let bs_distributed_agrees =
  qcheck ~count:15 "distributed Baswana-Sen: engines identical" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let run engine =
        let tr = Trace.create g in
        let o = Bs_distributed.run ~trace:tr ~engine ~seed ~k:3 g in
        ( o.Bs_distributed.spanner.Spanner.keep,
          o.Bs_distributed.network_stats,
          Trace.to_jsonl tr )
      in
      run `Fast = run `Ref)

(* ---------- model-violation and limit behaviour ---------- *)

let violations_agree () =
  let g = Generators.path 3 in
  let raises prog =
    let attempt engine =
      match Network.run ~engine g prog with
      | _ -> None
      | exception Network.Not_a_neighbor { sender; target } ->
          Some (`Nn (sender, target))
      | exception Network.Duplicate_message { sender; target } ->
          Some (`Dup (sender, target))
      | exception Network.Message_too_large { sender; words; limit } ->
          Some (`Big (sender, words, limit))
    in
    let f = attempt `Fast and r = attempt `Ref in
    Alcotest.(check bool) "violation parity" true (f = r && f <> None)
  in
  let once out =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me:_ () _ ->
          { Network.state = (); out = (if round = 0 then out else []); halt = true });
    }
  in
  (* vertex 0's only neighbour is 1: vertex 2 is not adjacent *)
  raises
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me () _ ->
          let out = if round = 0 && me = 0 then [ (2, [| 0 |]) ] else [] in
          { Network.state = (); out; halt = true });
    };
  raises (once [ (1, [| 0 |]); (1, [| 1 |]) ]);
  raises (once [ (1, [| 0; 0; 0; 0; 0 |]) ])

let round_limit_agrees () =
  (* An infinite ping-pong on an edge: both engines must trip the limit
     with identical partial stats. *)
  let g = Generators.path 2 in
  let prog =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun g ~round:_ ~me () _ ->
          let out = Graph.fold_adj g me (fun acc u _ -> (u, [| 1 |]) :: acc) [] in
          { Network.state = (); out; halt = false });
    }
  in
  let partial engine =
    match Network.run ~max_rounds:5 ~engine g prog with
    | _ -> None
    | exception Network.Round_limit_exceeded { limit; partial } ->
        Some (limit, partial)
  in
  let f = partial `Fast and r = partial `Ref in
  Alcotest.(check bool) "limit parity" true (f = r && f <> None)

(* ---------- sharded backend differential ----------

   The [`Sharded] backend of the fast engine must be byte-identical to
   [`Seq] for every job count — bare (parallel step phase), traced and
   faulted (step phase degrades sequential, assembly stays parallel), and
   on model-violation / round-limit paths. *)

let observe_backend ~backend ~jobs ?plan g prog =
  let faults = Option.map Faults.make plan in
  let tr = Trace.create g in
  let states, stats = Network.run ?faults ~trace:tr ~backend ~jobs g prog in
  let events = match faults with Some f -> Faults.events f | None -> [] in
  (states, stats, events, Trace.to_jsonl tr)

let sharded_bare =
  qcheck ~count:60 "random programs: sharded == seq (bare, jobs 1/4)" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let prog = random_program ~seed ~cap:(cap_of_seed seed) in
      let seq = Network.run ~backend:`Seq g prog in
      Network.run ~backend:`Sharded ~jobs:1 g prog = seq
      && Network.run ~backend:`Sharded ~jobs:4 g prog = seq)

let sharded_traced_faulted =
  qcheck ~count:40
    "random programs: sharded == seq (trace + mixed faults, jobs 1/4)"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let prog = random_program ~seed ~cap:(cap_of_seed seed) in
      let plan = mixed_plan_of_seed g seed in
      let seq = observe_backend ~backend:`Seq ~jobs:1 ~plan g prog in
      observe_backend ~backend:`Sharded ~jobs:1 ~plan g prog = seq
      && observe_backend ~backend:`Sharded ~jobs:4 ~plan g prog = seq)

let sharded_metrics_jobs_invariant =
  qcheck ~count:15
    "random programs: sharded deterministic metrics == seq (stripped)"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let prog = random_program ~seed ~cap:(cap_of_seed seed) in
      let exposition backend jobs =
        let r = Metrics.create () in
        let _ = Network.run ~metrics:r ~backend ~jobs g prog in
        Metrics.exposition ~strip:true (Metrics.snapshot r)
      in
      let seq = exposition `Seq 1 in
      exposition `Sharded 1 = seq && exposition `Sharded 4 = seq)

let sharded_violations_agree () =
  (* Violators placed mid-range so shard-ordered selection is exercised:
     on a 50-path the sequential engine reaches node 10 first — the
     sharded backend must raise node 10's violation too, for any jobs. *)
  let g = Generators.path 50 in
  let raises prog =
    let attempt backend jobs =
      match Network.run ~backend ~jobs g prog with
      | _ -> None
      | exception Network.Not_a_neighbor { sender; target } ->
          Some (`Nn (sender, target))
      | exception Network.Duplicate_message { sender; target } ->
          Some (`Dup (sender, target))
      | exception Network.Message_too_large { sender; words; limit } ->
          Some (`Big (sender, words, limit))
    in
    let seq = attempt `Seq 1 in
    Alcotest.(check bool) "sharded violation parity" true
      (seq <> None
      && attempt `Sharded 1 = seq
      && attempt `Sharded 4 = seq)
  in
  let offender me out =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me:v () _ ->
          let out = if round = 0 && v = me then out else [] in
          { Network.state = (); out; halt = true });
    }
  in
  (* two violators in different shards: lowest node must win *)
  let two =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me () _ ->
          let out =
            if round = 0 && (me = 10 || me = 40) then [ (0, [| 0 |]) ] else []
          in
          { Network.state = (); out; halt = true });
    }
  in
  raises (offender 30 [ (0, [| 7 |]) ]);
  raises (offender 30 [ (31, [| 0 |]); (31, [| 1 |]) ]);
  raises (offender 30 [ (31, [| 0; 0; 0; 0; 0 |]) ]);
  raises two

let sharded_round_limit_agrees () =
  let g = Generators.cycle 40 in
  let prog =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun g ~round:_ ~me () _ ->
          let out = Graph.fold_adj g me (fun acc u _ -> (u, [| 1 |]) :: acc) [] in
          { Network.state = (); out; halt = false });
    }
  in
  let partial backend jobs =
    match Network.run ~max_rounds:5 ~backend ~jobs g prog with
    | _ -> None
    | exception Network.Round_limit_exceeded { limit; partial } ->
        Some (limit, partial)
  in
  let seq = partial `Seq 1 in
  Alcotest.(check bool) "sharded limit parity" true
    (seq <> None && partial `Sharded 1 = seq && partial `Sharded 4 = seq)

let ref_sharded_rejected () =
  let g = Generators.path 3 in
  let prog =
    {
      Network.init = (fun _ _ -> ());
      round = (fun _ ~round:_ ~me:_ () _ -> { Network.state = (); out = []; halt = true });
    }
  in
  Alcotest.check_raises "ref + sharded is invalid"
    (Invalid_argument
       "Network.run: the ref engine has no sharded delivery backend")
    (fun () -> ignore (Network.run ~engine:`Ref ~backend:`Sharded g prog))

let suite =
  [
    random_programs_fault_free;
    random_programs_under_faults;
    native_protocols_agree;
    bfs_under_faults_agrees;
    bs_distributed_agrees;
    case "model violations identical" violations_agree;
    case "round limit identical" round_limit_agrees;
    sharded_bare;
    sharded_traced_faulted;
    sharded_metrics_jobs_invariant;
    case "sharded: model violations identical" sharded_violations_agree;
    case "sharded: round limit identical" sharded_round_limit_agrees;
    case "sharded: rejected on ref engine" ref_sharded_rejected;
  ]
