open Ultraspan
open Helpers

(* The distance-oracle serving layer: the ultraspan-oracle/1 binary format
   round-trips bit-for-bit, corrupt files are rejected with one-line
   diagnostics, the batch engine's answers are exactly the spanner
   distances (so the (2k-1) contract of a valid spanner transfers), result
   files are byte-identical across job counts, and the SSSP-tree LRU is
   deterministic under a fixed access trace. *)

let spanner_of ~k g = (Bs_derand.run ~k g).Bs_derand.spanner

(* A structurally interesting mask: random subset of the edges, so the
   compiled oracle has several clusters and unreachable pairs.  The engine
   contract (answers = exact spanner distances) holds for any mask. *)
let random_mask seed g =
  let rng = Rng.create (seed + 7) in
  let keep = Array.init (Graph.m g) (fun _ -> Rng.int rng 4 > 0) in
  { Spanner.keep; rounds = Rounds.create () }

let with_tmp f =
  let path = Filename.temp_file "oracle" ".bin" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ---------- binary format ---------- *)

let compile_roundtrip =
  qcheck ~count:25 "compile -> save -> load is structural identity" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let o = Oracle.compile g ~k:3 (random_mask seed g) in
      with_tmp (fun path ->
          let bytes = Oracle.save path o in
          let o' = Oracle.load path in
          bytes > 0 && Oracle.equal o o'
          && Int64.equal (Oracle.checksum o) (Oracle.checksum o')))

let real_spanner_roundtrip () =
  let g = unit_graph_of_seed 11 in
  let o = Oracle.compile g ~k:2 (spanner_of ~k:2 g) in
  with_tmp (fun path ->
      ignore (Oracle.save path o);
      let o' = Oracle.load path in
      Alcotest.(check bool) "equal" true (Oracle.equal o o');
      (* edge ids round-trip: the reloaded graph maps every spanner edge
         to the same original id *)
      Graph.iter_edges o'.Oracle.graph (fun e ->
          let u', v' = Graph.endpoints g o'.Oracle.orig_eid.{e.Graph.id} in
          Alcotest.(check (pair int int)) "orig endpoints" (e.Graph.u, e.Graph.v)
            (u', v')))

let corruption_rejected () =
  let g = unit_graph_of_seed 5 in
  let o = Oracle.compile g ~k:3 (spanner_of ~k:3 g) in
  with_tmp (fun path ->
      let bytes = Oracle.save path o in
      let read () = In_channel.with_open_bin path In_channel.input_all in
      let write s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s) in
      let expect_failure what =
        match Oracle.load path with
        | _ -> Alcotest.failf "%s was accepted" what
        | exception Failure msg ->
            Alcotest.(check bool)
              (what ^ " diagnostic names the file") true
              (String.length msg > 0
              && String.sub msg 0 (String.length path) = path)
      in
      let original = read () in
      write (String.sub original 0 (bytes / 2));
      expect_failure "truncated file";
      let flipped = Bytes.of_string original in
      let pos = 8 + (8 * 7) + 3 in
      Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0xff));
      write (Bytes.to_string flipped);
      expect_failure "flipped payload byte";
      write "USPANORCgarbage";
      expect_failure "short garbage";
      write ("XXXXXXXX" ^ String.sub original 8 (bytes - 8));
      expect_failure "bad magic")

(* ---------- engine correctness ---------- *)

let reference_answers (o : Oracle.t) qs =
  Array.map
    (function
      | Query_engine.Dist (s, t) ->
          Query_engine.Dist_answer (Dijkstra.distance o.Oracle.graph s t)
      | Query_engine.Mem (u, v) ->
          Query_engine.Mem_answer
            (if u = v then None
             else
               Option.map
                 (fun e -> o.Oracle.orig_eid.{e})
                 (Graph.find_edge o.Oracle.graph u v)))
    qs

let engine_exact =
  qcheck ~count:20 "batch answers are exact spanner distances + membership"
    seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:70 seed in
      let o = Oracle.compile g ~k:3 (random_mask seed g) in
      let qs =
        Query_engine.generate ~rng:(Rng.create seed) ~n:(Graph.n g) ~count:200
      in
      let answers, stats = Query_engine.run ~jobs:1 o qs in
      stats.Query_engine.queries = 200
      && answers = reference_answers o qs)

let stretch_contract () =
  let g = unit_graph_of_seed 23 in
  let k = 3 in
  let o = Oracle.compile g ~k (spanner_of ~k g) in
  let qs = Query_engine.generate ~rng:(Rng.create 9) ~n:(Graph.n g) ~count:400 in
  let answers, _ = Query_engine.run ~jobs:1 o qs in
  Array.iteri
    (fun i q ->
      match (q, answers.(i)) with
      | Query_engine.Dist (s, t), Query_engine.Dist_answer d ->
          let dg = Dijkstra.distance g s t in
          if d < dg || d > ((2 * k) - 1) * dg then
            Alcotest.failf "d_H(%d,%d) = %d outside [%d, %d]" s t d dg
              (((2 * k) - 1) * dg)
      | _ -> ())
    qs;
  match
    Query_engine.spot_check ~rng:(Rng.create 4) g o qs answers
  with
  | Ok c -> Alcotest.(check bool) "spot-check ran" true (c > 0)
  | Error m -> Alcotest.fail m

let jobs_invariance () =
  let g = graph_of_seed ~n_max:90 31 in
  let o = Oracle.compile g ~k:3 (spanner_of ~k:3 g) in
  let qs = Query_engine.generate ~rng:(Rng.create 17) ~n:(Graph.n g) ~count:600 in
  let a1, s1 = Query_engine.run ~jobs:1 o qs in
  let a4, s4 = Query_engine.run ~jobs:4 o qs in
  Alcotest.(check string) "result files byte-identical for -j 1 vs -j 4"
    (Query_engine.render_results qs a1)
    (Query_engine.render_results qs a4);
  Alcotest.(check (list int)) "deterministic stats"
    [ s1.Query_engine.queries; s1.Query_engine.dist; s1.Query_engine.mem;
      s1.Query_engine.unreachable ]
    [ s4.Query_engine.queries; s4.Query_engine.dist; s4.Query_engine.mem;
      s4.Query_engine.unreachable ];
  (* no eviction at the default capacity, so the cache totals are
     schedule-independent too *)
  Alcotest.(check (list int)) "cache totals without eviction"
    [ s1.Query_engine.cache_hits; s1.Query_engine.cache_misses; 0 ]
    [ s4.Query_engine.cache_hits; s4.Query_engine.cache_misses;
      s4.Query_engine.cache_evictions ]

(* ---------- LRU determinism ---------- *)

let lru_fixed_trace () =
  let g = graph_of_seed ~n_max:90 41 in
  let o = Oracle.compile g ~k:3 (spanner_of ~k:3 g) in
  (* a fixed access trace with 12 distinct hot sources against a 4-entry
     cache: evictions must occur, and at jobs:1 the whole trajectory —
     hits, misses, evictions and every answer — is a pure function of the
     trace, so two runs agree exactly *)
  let n = Graph.n g in
  let qs =
    Array.init 480 (fun i ->
        let src = i / 8 mod 12 in
        Query_engine.Dist (src, (src + 1 + (i mod (n - 1))) mod n))
  in
  let run () = Query_engine.run ~jobs:1 ~cache_capacity:4 o qs in
  let a1, s1 = run () in
  let a2, s2 = run () in
  Alcotest.(check bool) "answers identical" true (a1 = a2);
  Alcotest.(check (list int)) "cache trajectory identical"
    [ s1.Query_engine.cache_hits; s1.Query_engine.cache_misses;
      s1.Query_engine.cache_evictions ]
    [ s2.Query_engine.cache_hits; s2.Query_engine.cache_misses;
      s2.Query_engine.cache_evictions ];
  Alcotest.(check bool) "evictions actually happened" true
    (s1.Query_engine.cache_evictions > 0);
  (* eviction pressure must not change answers, only throughput *)
  let a3, _ = Query_engine.run ~jobs:1 ~cache_capacity:64 o qs in
  Alcotest.(check bool) "answers independent of capacity" true (a1 = a3)

(* ---------- text formats ---------- *)

let query_file_roundtrip () =
  let qs =
    [| Query_engine.Dist (0, 5); Query_engine.Mem (2, 3);
       Query_engine.Dist (7, 7) |]
  in
  let path = Filename.temp_file "queries" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Query_engine.save_queries path qs;
      Alcotest.(check bool) "round-trip" true (Query_engine.load_queries path = qs))

let malformed_queries_rejected () =
  let reject what s =
    match Query_engine.parse_queries ~path:"q.txt" s with
    | _ -> Alcotest.failf "%s was accepted" what
    | exception Failure msg ->
        Alcotest.(check bool) (what ^ " names the file") true
          (String.length msg >= 5 && String.sub msg 0 5 = "q.txt")
  in
  reject "bad header" "ultraspan-queries/9\ndist 1 2\n";
  reject "bad arity" "ultraspan-queries/1\ndist 1\n";
  reject "bad vertex" "ultraspan-queries/1\ndist 1 x\n";
  reject "negative vertex" "ultraspan-queries/1\nmem -1 2\n";
  reject "unknown kind" "ultraspan-queries/1\npath 1 2\n"

let out_of_range_rejected () =
  let g = unit_graph_of_seed 3 in
  let o = Oracle.compile g ~k:2 (spanner_of ~k:2 g) in
  match Query_engine.run ~jobs:1 o [| Query_engine.Dist (0, Graph.n g) |] with
  | _ -> Alcotest.fail "out-of-range query accepted"
  | exception Failure _ -> ()

let suite =
  [
    compile_roundtrip;
    Alcotest.test_case "real-spanner save/load round-trip" `Quick
      real_spanner_roundtrip;
    Alcotest.test_case "corrupt artifacts rejected" `Quick corruption_rejected;
    engine_exact;
    Alcotest.test_case "(2k-1) stretch contract + spot-check" `Quick
      stretch_contract;
    Alcotest.test_case "results byte-identical across jobs" `Quick
      jobs_invariance;
    Alcotest.test_case "LRU deterministic under fixed trace" `Quick
      lru_fixed_trace;
    Alcotest.test_case "query file round-trip" `Quick query_file_roundtrip;
    Alcotest.test_case "malformed query files rejected" `Quick
      malformed_queries_rejected;
    Alcotest.test_case "out-of-range query rejected" `Quick
      out_of_range_rejected;
  ]
