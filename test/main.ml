let () =
  Alcotest.run "ultraspan"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("metrics", Test_metrics.suite);
      ("graph", Test_graph.suite);
      ("congest", Test_congest.suite);
      ("engine-diff", Test_engine_diff.suite);
      ("trace", Test_trace.suite);
      ("decomp", Test_decomp.suite);
      ("spanner", Test_spanner.suite);
      ("certificate", Test_certificate.suite);
      ("verify", Test_verify.suite);
      ("resilience", Test_resilience.suite);
      ("dynamic", Test_dynamic.suite);
      ("extensions", Test_extensions.suite);
      ("misc", Test_misc.suite);
      ("artifacts", Test_artifacts.suite);
      ("oracle", Test_oracle.suite);
      ("integration", Test_integration.suite);
    ]
