open Ultraspan
open Helpers
module T = Exp_table
module J = Exp_json

(* The typed experiment-table layer behind bench/main.exe: JSON artifacts
   round-trip, emission is deterministic, bound predicates gate strict
   mode, and the golden differ is exact on counts but banded on time. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let cols = [ T.col ~w:6 "n"; T.col ~w:8 "size"; T.col ~w:8 "wall" ]

let sample_table () =
  let r1 =
    T.row
      ~bounds:[ T.le ~id:"size<=2n" ~descr:"paper bound" 190.0 200.0 ]
      [
        ("n", T.Int 100); ("size", T.Int 190); ("wall", T.Time 0.37);
        ("stretch", T.Float 2.5); ("algo", T.Str "ultra"); ("ok", T.Bool true);
      ]
  in
  let r2 =
    T.row
      ~bounds:[ T.flag ~id:"spanning" true ]
      [ ("n", T.Int 200); ("size", T.Int 377); ("wall", T.Time 0.74);
        ("stretch", T.Float infinity) ]
  in
  T.make ~id:"tt" ~title:"round-trip sample"
    ~params:[ ("seed", T.Int 42); ("quick", T.Bool true) ]
    ~notes:[ "a note" ]
    [
      T.section ~caption:[ "prose line" ] ~rule:true ~cols "main" [ r1; r2 ];
      T.section ~elide:4 ~indent:2 ~cols "aux" [ r2 ];
    ]

(* ---------- JSON round-trip ---------- *)

let roundtrip () =
  let t = sample_table () in
  let s = T.to_artifact_string t in
  let t' = T.of_artifact_string s in
  Alcotest.(check string) "serialization is a fixpoint" s
    (T.to_artifact_string t');
  Alcotest.(check string) "id" t.T.id t'.T.id;
  Alcotest.(check int) "sections" (List.length t.T.sections)
    (List.length t'.T.sections);
  Alcotest.(check int) "bounds survive" (T.bounds_checked t)
    (T.bounds_checked t');
  (* typed values survive: Time stays Time (banded in diffs), inf parses *)
  let main = List.hd t'.T.sections in
  let r1 = List.hd main.T.rows in
  (match List.assoc "wall" r1.T.fields with
  | T.Time 0.37 -> ()
  | v -> Alcotest.failf "wall came back as %s" (T.default_render v));
  let r2 = List.nth main.T.rows 1 in
  match List.assoc "stretch" r2.T.fields with
  | T.Float f when f = infinity -> ()
  | v -> Alcotest.failf "inf came back as %s" (T.default_render v)

let schema_checked () =
  let bogus = J.Obj [ ("schema", J.Str "nonsense/9") ] in
  match T.of_json bogus with
  | exception _ -> ()
  | _ -> Alcotest.fail "wrong schema accepted"

(* ---------- determinism ---------- *)

(* Two table builds from the same seeded computation must emit identical
   artifact bytes — this is what makes `--against` goldens meaningful. *)
let deterministic_emission () =
  let build () =
    let g =
      Generators.connected_gnp ~rng:(Rng.create 7) ~n:200 ~avg_degree:6.0
    in
    let out = Ultra_sparse.run ~t:4 g in
    let size = Spanner.size out.Ultra_sparse.spanner in
    T.make ~id:"det" ~title:"determinism probe"
      [
        T.section ~cols "s"
          [
            T.row
              ~bounds:
                [
                  T.le ~id:"size<=n+n/t" (float_of_int size)
                    (float_of_int (200 + (200 / 4)));
                ]
              [ ("n", T.Int 200); ("size", T.Int size) ];
          ];
      ]
  in
  Alcotest.(check string) "same seed, same bytes"
    (T.to_artifact_string (build ()))
    (T.to_artifact_string (build ()))

(* ---------- bound predicates / strict gate ---------- *)

let strict_catches_violation () =
  let bad =
    T.make ~id:"bad" ~title:"violated"
      [
        T.section ~cols "s"
          [
            T.row
              ~bounds:[ T.le ~id:"two<=one" 2.0 1.0; T.flag ~id:"fine" true ]
              [ ("n", T.Int 1) ];
          ];
      ]
  in
  Alcotest.(check bool) "not ok" false (T.ok bad);
  Alcotest.(check int) "both bounds counted" 2 (T.bounds_checked bad);
  match T.violations bad with
  | [ (sid, _, b) ] ->
      Alcotest.(check string) "section" "s" sid;
      Alcotest.(check string) "bound id" "two<=one" b.T.bid
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let le_tolerates_rounding () =
  Alcotest.(check bool) "observed == limit holds" true
    (T.le ~id:"eq" 3.0 3.0).T.holds;
  Alcotest.(check bool) "strictly above fails" false
    (T.le ~id:"gt" 3.0001 3.0).T.holds

(* ---------- golden diffing ---------- *)

let patch_field table ~sid ~key v =
  let patch_row (r : T.row) =
    if List.mem_assoc key r.T.fields then
      {
        r with
        T.fields = List.map (fun (k, x) -> (k, if k = key then v else x)) r.T.fields;
      }
    else r
  in
  {
    table with
    T.sections =
      List.map
        (fun (s : T.section) ->
          if s.T.sid = sid then { s with T.rows = List.map patch_row s.T.rows }
          else s)
        table.T.sections;
  }

let diff_catches_injected_change () =
  let golden = sample_table () in
  Alcotest.(check (list string)) "self-diff is clean" []
    (T.diff ~golden golden);
  let broken = patch_field golden ~sid:"main" ~key:"size" (T.Int 999) in
  match T.diff ~golden broken with
  | [] -> Alcotest.fail "injected Int change not caught"
  | d :: _ ->
      Alcotest.(check bool) "diff names the field" true
        (contains d "size")

let diff_bands_time () =
  let golden = sample_table () in
  (* within the band: 0.37 -> 0.5 (75% relative + 0.25 flat slack) *)
  let near = patch_field golden ~sid:"main" ~key:"wall" (T.Time 0.5) in
  Alcotest.(check (list string)) "wall-clock jitter tolerated" []
    (T.diff ~golden near);
  (* far outside the band: must be flagged *)
  let far = patch_field golden ~sid:"main" ~key:"wall" (T.Time 40.0) in
  Alcotest.(check bool) "gross slowdown caught" true
    (T.diff ~golden far <> []);
  (* a Float field gets no band: tiny drift is a diff *)
  let drift = patch_field golden ~sid:"main" ~key:"stretch" (T.Float 2.51) in
  Alcotest.(check bool) "exact field drift caught" true
    (T.diff ~golden drift <> [])

let suite =
  [
    case "artifact JSON round-trip (Time, inf, bounds)" roundtrip;
    case "artifact schema is checked" schema_checked;
    case "same-seed emission is byte-identical" deterministic_emission;
    case "strict gate catches a violated bound" strict_catches_violation;
    case "le bound tolerates float rounding" le_tolerates_rounding;
    case "golden diff catches injected change" diff_catches_injected_change;
    case "golden diff bands Time, not Float" diff_bands_time;
  ]
