open Ultraspan
open Helpers

(* End-to-end pipelines across library boundaries: the theorem-level
   behaviour a downstream user relies on. *)

let theorem_1_6_end_to_end () =
  (* deterministic ultra-sparse spanner on several graph families *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun t ->
          let out = Ultra_sparse.run ~t g in
          let sp = out.Ultra_sparse.spanner in
          Alcotest.(check bool)
            (Printf.sprintf "%s t=%d size" name t)
            true
            (Spanner.size sp <= Ultra_sparse.bound ~n:(Graph.n g) ~t);
          Alcotest.(check bool)
            (Printf.sprintf "%s t=%d spanning" name t)
            true (Spanner.is_spanning g sp);
          Alcotest.(check bool)
            (Printf.sprintf "%s t=%d stretch finite" name t)
            true
            (Stretch.max_edge_stretch g sp.Spanner.keep < Float.infinity))
        [ 2; 8 ])
    [
      ("weighted gnp", graph_of_seed ~n_max:200 1);
      ("unweighted gnp", unit_graph_of_seed ~n_max:200 2);
      ( "weighted geometric",
        let rng = Rng.create 3 in
        Generators.ensure_connected ~rng
          (Generators.random_geometric ~rng ~n:150 ~radius:0.15) );
      ("torus", Generators.torus 12 12);
    ]

let theorem_1_4_beats_gk18_overhead () =
  (* The paper's point versus [GK18]: the derandomized size should not
     carry an extra log n factor.  We check the measured size against the
     GK18-style bound envelope n^(1+1/k)·k·log2(n) being substantially
     above our bound envelope. *)
  let rng = Rng.create 4 in
  let g = Generators.connected_gnp ~rng ~n:512 ~avg_degree:40.0 in
  let g = Graph.with_unit_weights g in
  let k = 3 in
  let out = Bs_derand.run ~k g in
  let size = float_of_int (Spanner.size out.Bs_derand.spanner) in
  let ours = Bs_derand.size_bound ~n:(Graph.n g) ~k ~weighted:false in
  Alcotest.(check bool) "within our bound" true (size <= ours)

let derand_vs_randomized_same_guarantee () =
  (* both spanning, both stretch <= 2k-1, on the same graph *)
  let g = graph_of_seed ~n_max:150 5 in
  let k = 3 in
  let rnd = (Baswana_sen.run ~rng:(Rng.create 1) ~k g).Baswana_sen.spanner in
  let det = (Bs_derand.run ~k g).Bs_derand.spanner in
  List.iter
    (fun (name, sp) ->
      check_ok name (Spanner.validate g sp ~alpha:(float_of_int ((2 * k) - 1))))
    [ ("randomized", rnd); ("derandomized", det) ]

let theorem_g1_via_theorem_1_6 () =
  (* the certificate pipeline exercises the whole spanner stack *)
  let g = Generators.harary ~k:4 ~n:40 in
  let out = Spanner_packing.run ~k:4 ~epsilon:0.5 g in
  Alcotest.(check bool) "certificate" true
    (Certificate.is_certificate g out.Spanner_packing.certificate);
  Alcotest.(check bool) "size" true
    (float_of_int (Certificate.size out.Spanner_packing.certificate)
    <= Spanner_packing.size_bound ~n:40 ~k:4 ~epsilon:0.5 +. 1.0)

let theorem_1_8_pipeline () =
  (* work-efficient weighted ultra-sparse: weight classes + Thm 1.7 +
     Thm 1.2 reduction *)
  let rng = Rng.create 9 in
  let g =
    Generators.weighted_connected_gnp ~rng ~n:300 ~avg_degree:8.0 ~max_w:512
  in
  let sparse = Clustering_spanner.sparse_weighted ~epsilon:0.5 in
  let out = Ultra_sparse.run ~sparse ~t:4 g in
  let sp = out.Ultra_sparse.spanner in
  Alcotest.(check bool) "size <= n + n/4" true
    (Spanner.size sp <= Ultra_sparse.bound ~n:(Graph.n g) ~t:4);
  Alcotest.(check bool) "spanning" true (Spanner.is_spanning g sp);
  Alcotest.(check bool) "stretch finite" true
    (Stretch.max_edge_stretch g sp.Spanner.keep < Float.infinity)

let determinism_across_pipeline =
  qcheck ~count:6 "whole deterministic pipeline reproducible" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:120 seed in
      let a = Ultra_sparse.run ~t:4 g in
      let b = Ultra_sparse.run ~t:4 g in
      let pa = Spanner_packing.run ~k:2 ~epsilon:0.5 g in
      let pb = Spanner_packing.run ~k:2 ~epsilon:0.5 g in
      a.Ultra_sparse.spanner.Spanner.keep = b.Ultra_sparse.spanner.Spanner.keep
      && pa.Spanner_packing.certificate.Certificate.keep
         = pb.Spanner_packing.certificate.Certificate.keep)

let disconnected_inputs_everywhere () =
  let g =
    Graph.of_edges ~n:12
      [
        (0, 1, 3); (1, 2, 1); (2, 0, 2);
        (3, 4, 5); (4, 5, 1); (5, 6, 2); (6, 3, 4);
        (7, 8, 1);
        (* 9,10,11 isolated *)
      ]
  in
  let us = Ultra_sparse.run ~t:2 g in
  Alcotest.(check bool) "ultra spanning" true
    (Spanner.is_spanning g us.Ultra_sparse.spanner);
  let ls = Linear_size.run g in
  Alcotest.(check bool) "linear spanning" true
    (Spanner.is_spanning g ls.Linear_size.spanner);
  let bs = Baswana_sen.run ~rng:(Rng.create 1) ~k:2 g in
  Alcotest.(check bool) "bs spanning" true
    (Spanner.is_spanning g bs.Baswana_sen.spanner);
  let ni = Nagamochi_ibaraki.certificate ~k:2 g in
  Alcotest.(check bool) "ni spans" true (Connectivity.spans g ni.Certificate.keep)

let rounds_polylog_shape () =
  (* simulated rounds of the deterministic ultra-sparse spanner grow
     polylogarithmically-ish: ratio rounds/(t · log^6 n) stays bounded as n
     doubles *)
  let measure n =
    let rng = Rng.create 7 in
    let g = Generators.weighted_connected_gnp ~rng ~n ~avg_degree:8.0 ~max_w:100 in
    let out = Ultra_sparse.run ~t:2 g in
    let l = Float.log2 (float_of_int n) in
    float_of_int (Spanner.total_rounds out.Ultra_sparse.spanner) /. (l ** 6.0)
  in
  let r1 = measure 250 and r2 = measure 1000 in
  Alcotest.(check bool) "polylog-ish growth" true (r2 <= 16.0 *. Float.max r1 1.0)

let spanner_to_certificate_composition () =
  (* peeling t-ultra-sparse spanners k times keeps every cut's edges: the
     Appendix G invariant on a mid-size graph via sampled cuts *)
  let g = Generators.harary ~k:5 ~n:30 in
  let out = Spanner_packing.run ~k:5 ~epsilon:0.4 g in
  let keep = out.Spanner_packing.certificate.Certificate.keep in
  let rng = Rng.create 13 in
  for _ = 1 to 200 do
    let side = Array.init (Graph.n g) (fun _ -> Rng.bool rng) in
    let in_g = ref 0 and in_h = ref 0 in
    Graph.iter_edges g (fun e ->
        if side.(e.Graph.u) <> side.(e.Graph.v) then begin
          incr in_g;
          if keep.(e.Graph.id) then incr in_h
        end);
    Alcotest.(check bool) "all-or-k" true (!in_h = !in_g || !in_h >= 5)
  done

let suite =
  [
    slow_case "Thm 1.6 end-to-end" theorem_1_6_end_to_end;
    slow_case "Thm 1.4 size vs GK18 envelope" theorem_1_4_beats_gk18_overhead;
    case "derand vs randomized guarantee" derand_vs_randomized_same_guarantee;
    case "Thm G.1 via Thm 1.6" theorem_g1_via_theorem_1_6;
    slow_case "Thm 1.8 pipeline" theorem_1_8_pipeline;
    determinism_across_pipeline;
    case "disconnected inputs" disconnected_inputs_everywhere;
    slow_case "rounds polylog shape" rounds_polylog_shape;
    case "Appendix G cut invariant (sampled)" spanner_to_certificate_composition;
  ]
