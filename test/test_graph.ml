open Ultraspan
open Helpers

(* ---------- construction ---------- *)

let construction_basics () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 5); (1, 2, 3); (3, 2, 7) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check int) "degree 1" 2 (Graph.degree g 1);
  Alcotest.(check int) "degree 0" 1 (Graph.degree g 0);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check int) "total weight" 15 (Graph.total_weight g);
  Alcotest.(check bool) "mem 2-3" true (Graph.mem_edge g 2 3);
  Alcotest.(check bool) "not mem 0-3" false (Graph.mem_edge g 0 3)

let construction_merges_parallel () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 5); (1, 0, 2); (0, 1, 9) ] in
  Alcotest.(check int) "merged" 1 (Graph.m g);
  Alcotest.(check int) "min weight kept" 2 (Graph.weight g 0)

let construction_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.of_edges: self-loop")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (1, 1, 1) ]))

let construction_rejects_bad_endpoint () =
  Alcotest.check_raises "oob"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 3, 1) ]))

let construction_rejects_negative_weight () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Graph.of_edges: negative weight") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (0, 1, -1) ]))

let endpoints_canonical =
  qcheck "edges canonical u < v, ids dense" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let ok = ref true in
      Array.iteri
        (fun i e ->
          if e.Graph.id <> i || e.Graph.u >= e.Graph.v then ok := false)
        (Graph.edges g);
      !ok)

let adjacency_consistent =
  qcheck "iter_adj covers each edge twice" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let count = Array.make (Graph.m g) 0 in
      for v = 0 to Graph.n g - 1 do
        Graph.iter_adj g v (fun u eid ->
            count.(eid) <- count.(eid) + 1;
            ignore u)
      done;
      Array.for_all (fun c -> c = 2) count)

let other_endpoint () =
  let g = Graph.of_edges ~n:3 [ (0, 2, 1) ] in
  Alcotest.(check int) "other of 0" 2 (Graph.other_endpoint g 0 0);
  Alcotest.(check int) "other of 2" 0 (Graph.other_endpoint g 0 2);
  Alcotest.check_raises "not on edge"
    (Invalid_argument "Graph.other_endpoint: vertex not on edge") (fun () ->
      ignore (Graph.other_endpoint g 0 1))

let sub_by_eids_roundtrip =
  qcheck "subgraph keeps selected edges" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let rng = Rng.create seed in
      let keep = Array.init (Graph.m g) (fun _ -> Rng.bool rng) in
      let sub = Graph.sub_by_eids g keep in
      let expected = Array.fold_left (fun a k -> if k then a + 1 else a) 0 keep in
      Graph.n sub = Graph.n g && Graph.m sub = expected)

let sub_with_mapping_correct =
  qcheck "sub_with_mapping maps edges faithfully" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let rng = Rng.create (seed + 1) in
      let keep = Array.init (Graph.m g) (fun _ -> Rng.bool rng) in
      let sub, mapping = Graph.sub_with_mapping g keep in
      let ok = ref (Array.length mapping = Graph.m sub) in
      Array.iteri
        (fun new_eid old_eid ->
          let nu, nv = Graph.endpoints sub new_eid in
          let ou, ov = Graph.endpoints g old_eid in
          if
            (nu, nv) <> (ou, ov)
            || Graph.weight sub new_eid <> Graph.weight g old_eid
            || not keep.(old_eid)
          then ok := false)
        mapping;
      !ok)

let with_unit_weights_same_ids =
  qcheck "with_unit_weights keeps topology and ids" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let u = Graph.with_unit_weights g in
      Graph.n u = Graph.n g
      && Graph.m u = Graph.m g
      && Array.for_all (fun e -> e.Graph.w = 1) (Graph.edges u)
      && Array.for_all2
           (fun a b -> a.Graph.u = b.Graph.u && a.Graph.v = b.Graph.v)
           (Graph.edges g) (Graph.edges u))

(* ---------- io ---------- *)

let io_roundtrip =
  qcheck "save/load identity" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let g' = Graph_io.of_string (Graph_io.to_string g) in
      Graph.n g = Graph.n g'
      && Array.for_all2
           (fun a b -> a = b)
           (Graph.edges g) (Graph.edges g'))

let io_rejects_garbage () =
  Alcotest.check_raises "bad header" (Failure "Graph_io: bad header") (fun () ->
      ignore (Graph_io.of_string "hello world\n"))

let io_comments () =
  let g = Graph_io.of_string "# a comment\n3 1\n0 1 7\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "w" 7 (Graph.weight g 0)

(* ---------- generators ---------- *)

let gen_path () =
  let g = Generators.path 10 in
  Alcotest.(check int) "m" 9 (Graph.m g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "diameter" 9 (Bfs.diameter_hops g)

let gen_cycle () =
  let g = Generators.cycle 10 in
  Alcotest.(check int) "m" 10 (Graph.m g);
  Alcotest.(check int) "diameter" 5 (Bfs.diameter_hops g);
  Alcotest.(check bool) "2-edge-connected" true (Maxflow.is_k_edge_connected g 2)

let gen_complete () =
  let g = Generators.complete 8 in
  Alcotest.(check int) "m" 28 (Graph.m g);
  Alcotest.(check int) "lambda" 7 (Maxflow.edge_connectivity g)

let gen_grid () =
  let g = Generators.grid 4 6 in
  Alcotest.(check int) "n" 24 (Graph.n g);
  Alcotest.(check int) "m" ((3 * 6) + (4 * 5)) (Graph.m g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "diameter" 8 (Bfs.diameter_hops g)

let gen_torus () =
  let g = Generators.torus 4 5 in
  Alcotest.(check int) "m" 40 (Graph.m g);
  Alcotest.(check int) "4-regular lambda" 4 (Maxflow.edge_connectivity g)

let gen_hypercube () =
  let g = Generators.hypercube 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  Alcotest.(check int) "lambda = d" 4 (Maxflow.edge_connectivity g)

let gen_star_binary_caterpillar () =
  let s = Generators.star 7 in
  Alcotest.(check int) "star m" 6 (Graph.m s);
  let b = Generators.binary_tree 15 in
  Alcotest.(check int) "tree m" 14 (Graph.m b);
  Alcotest.(check bool) "tree connected" true (Connectivity.is_connected b);
  let c = Generators.caterpillar 5 3 in
  Alcotest.(check int) "caterpillar n" 20 (Graph.n c);
  Alcotest.(check int) "caterpillar m" 19 (Graph.m c);
  Alcotest.(check bool) "caterpillar connected" true (Connectivity.is_connected c)

let gen_harary_connectivity () =
  List.iter
    (fun (k, n) ->
      let g = Generators.harary ~k ~n in
      let lam = Maxflow.edge_connectivity g in
      Alcotest.(check bool)
        (Printf.sprintf "harary %d %d lambda >= k" k n)
        true (lam >= k);
      Alcotest.(check bool)
        (Printf.sprintf "harary %d %d near-minimal" k n)
        true
        (Graph.m g <= ((k * n) + 1) / 2 + 1))
    [ (1, 5); (2, 9); (3, 10); (3, 13); (4, 11); (5, 14); (6, 13); (7, 16) ]

let gen_gnp_connected =
  qcheck "connected_gnp is connected" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.connected_gnp ~rng ~n:80 ~avg_degree:3.0 in
      Connectivity.is_connected g)

let gen_gnp_density () =
  let rng = Rng.create 5 in
  let g = Generators.gnp ~rng ~n:300 ~p:0.1 in
  let expected = 0.1 *. float_of_int (300 * 299 / 2) in
  let m = float_of_int (Graph.m g) in
  Alcotest.(check bool) "density within 15%" true
    (m > 0.85 *. expected && m < 1.15 *. expected)

let gen_gnm_exact =
  qcheck "gnm has exactly m edges" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.gnm ~rng ~n:50 ~m:100 in
      Graph.m g = 100)

let gen_geometric () =
  let rng = Rng.create 8 in
  let g = Generators.random_geometric ~rng ~n:200 ~radius:0.15 in
  Alcotest.(check bool) "has edges" true (Graph.m g > 0);
  Alcotest.(check bool) "weights bounded" true
    (Array.for_all (fun e -> e.Graph.w >= 1 && e.Graph.w <= 1000) (Graph.edges g))

let gen_preferential () =
  let rng = Rng.create 21 in
  let g = Generators.preferential_attachment ~rng ~n:200 ~degree:3 in
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check bool) "m about 3n" true
    (Graph.m g >= (3 * (200 - 4)) && Graph.m g <= 3 * 200 + 10)

let gen_randomize_weights =
  qcheck "randomize_weights in range" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.grid 5 5 in
      let g = Generators.randomize_weights ~rng ~lo:3 ~hi:9 g in
      Array.for_all (fun e -> e.Graph.w >= 3 && e.Graph.w <= 9) (Graph.edges g))

(* ---------- traversal ---------- *)

let bfs_path_distances () =
  let g = Generators.path 6 in
  let d = Bfs.distances g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4; 5 |] d

let bfs_unreachable () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1) ] in
  let d = Bfs.distances g 0 in
  Alcotest.(check int) "unreachable" (-1) d.(3)

let bfs_tree_valid =
  qcheck "bfs tree parents decrease distance" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let dist, parent_eid = Bfs.tree g 0 in
      let ok = ref true in
      Array.iteri
        (fun v pe ->
          if v <> 0 && dist.(v) > 0 then begin
            if pe < 0 then ok := false
            else begin
              let u = Graph.other_endpoint g pe v in
              if dist.(u) <> dist.(v) - 1 then ok := false
            end
          end)
        parent_eid;
      !ok)

let bfs_multi_source () =
  let g = Generators.path 7 in
  let dist, src = Bfs.multi_source g [ 0; 6 ] in
  Alcotest.(check int) "middle dist" 3 dist.(3);
  Alcotest.(check int) "near left" 0 src.(1);
  Alcotest.(check int) "near right" 6 src.(5)

let dijkstra_vs_bellman =
  qcheck ~count:25 "dijkstra = bellman-ford" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:60 seed in
      let d1 = Dijkstra.distances g 0 in
      let d2 = Bellman_ford.distances g 0 in
      d1 = d2)

let dijkstra_vs_bfs_unit =
  qcheck "dijkstra on unit weights = bfs" seed_gen (fun seed ->
      let g = unit_graph_of_seed seed in
      let d1 = Dijkstra.distances g 0 in
      let d2 = Bfs.distances g 0 in
      Array.for_all2
        (fun a b -> (a = Dijkstra.infinity && b = -1) || a = b)
        d1 d2)

let dijkstra_point_to_point =
  qcheck "distance agrees with distances" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:50 seed in
      let rng = Rng.create seed in
      let t = Rng.int rng (Graph.n g) in
      Dijkstra.distance g 0 t = (Dijkstra.distances g 0).(t))

let dijkstra_restricted () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 1); (0, 2, 10) ] in
  let direct = Graph.find_edge g 0 2 |> Option.get in
  let d = Dijkstra.distances ~allow:(fun e -> e = direct) g 0 in
  Alcotest.(check int) "only direct edge" 10 d.(2);
  Alcotest.(check int) "1 unreachable" Dijkstra.infinity d.(1)

let dijkstra_triangle_inequality =
  qcheck "distances satisfy triangle inequality over edges" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:60 seed in
      let d = Dijkstra.distances g 0 in
      let ok = ref true in
      Graph.iter_edges g (fun e ->
          if
            d.(e.Graph.u) < Dijkstra.infinity
            && d.(e.Graph.v) < Dijkstra.infinity
          then begin
            if d.(e.Graph.v) > d.(e.Graph.u) + e.Graph.w then ok := false;
            if d.(e.Graph.u) > d.(e.Graph.v) + e.Graph.w then ok := false
          end);
      !ok)

(* ---------- components / spanning trees ---------- *)

let components_count () =
  let g = Graph.of_edges ~n:6 [ (0, 1, 1); (2, 3, 1) ] in
  let _, count = Connectivity.components g in
  Alcotest.(check int) "components" 4 count;
  Alcotest.(check bool) "same comp" true (Connectivity.same_component g 0 1);
  Alcotest.(check bool) "diff comp" false (Connectivity.same_component g 1 2)

let spans_detects_broken =
  qcheck "dropping a bridge breaks spanning" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let mst = Spanning_tree.kruskal_mst g in
      let keep = Array.make (Graph.m g) false in
      List.iter (fun e -> keep.(e) <- true) mst;
      let spans_full = Connectivity.spans g keep in
      (* remove one tree edge: must no longer span *)
      match mst with
      | [] -> true
      | e :: _ ->
          keep.(e) <- false;
          spans_full && not (Connectivity.spans g keep))

let mst_weights_agree =
  qcheck "kruskal and prim agree on weight" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      Spanning_tree.forest_weight g (Spanning_tree.kruskal_mst g)
      = Spanning_tree.forest_weight g (Spanning_tree.prim_mst g))

let mst_is_spanning_forest =
  qcheck "mst is a spanning forest" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      Spanning_tree.is_spanning_forest g (Spanning_tree.kruskal_mst g)
      && Spanning_tree.is_spanning_forest g (Spanning_tree.bfs_forest g))

let mst_minimality_small () =
  (* exhaustive check on a tiny graph: MST weight <= weight of any
     spanning tree obtained by edge subsets *)
  let g =
    Graph.of_edges ~n:4
      [ (0, 1, 4); (1, 2, 3); (2, 3, 2); (3, 0, 5); (0, 2, 1) ]
  in
  let mst_w = Spanning_tree.forest_weight g (Spanning_tree.kruskal_mst g) in
  Alcotest.(check int) "known mst weight" 6 mst_w

(* ---------- flows and cuts ---------- *)

let maxflow_known () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (0, 2, 1); (1, 3, 1); (2, 3, 1) ] in
  let net = Maxflow.of_graph g in
  Alcotest.(check int) "two disjoint paths" 2 (Maxflow.max_flow net 0 3)

let maxflow_limit () =
  let g = Generators.complete 6 in
  let net = Maxflow.of_graph g in
  Alcotest.(check int) "limit caps" 2 (Maxflow.max_flow ~limit:2 net 0 5)

let edge_connectivity_matches_stoer_wagner =
  qcheck ~count:20 "lambda: flow = stoer-wagner" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      Maxflow.edge_connectivity g = Mincut.stoer_wagner g)

let edge_connectivity_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (2, 3, 1) ] in
  Alcotest.(check int) "lambda 0" 0 (Maxflow.edge_connectivity g);
  Alcotest.(check bool) "not 1-connected" false (Maxflow.is_k_edge_connected g 1)

let edge_connectivity_upper_saturates () =
  let g = Generators.complete 8 in
  Alcotest.(check int) "saturates at upper+1" 4
    (Maxflow.edge_connectivity ~upper:3 g)

let mincut_weighted () =
  (* two triangles joined by one light edge *)
  let g =
    Graph.of_edges ~n:6
      [
        (0, 1, 5); (1, 2, 5); (0, 2, 5);
        (3, 4, 5); (4, 5, 5); (3, 5, 5);
        (2, 3, 2);
      ]
  in
  let w, side = Mincut.stoer_wagner_cut g in
  Alcotest.(check int) "cut weight" 2 w;
  Alcotest.(check bool) "sides differ" true (side.(0) <> side.(5))

(* ---------- stretch ---------- *)

let stretch_full_graph_is_one =
  qcheck "keeping all edges gives stretch 1" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:50 seed in
      let keep = Array.make (Graph.m g) true in
      abs_float (Stretch.max_edge_stretch g keep -. 1.0) < 1e-9)

let stretch_mst_finite =
  qcheck "mst stretch finite and >= 1" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:50 seed in
      let keep = Array.make (Graph.m g) false in
      List.iter (fun e -> keep.(e) <- true) (Spanning_tree.kruskal_mst g);
      let s = Stretch.max_edge_stretch g keep in
      s >= 1.0 -. 1e-9 && s <> Float.infinity)

let stretch_disconnected_infinite () =
  let g = Graph.of_edges ~n:3 [ (0, 1, 1); (1, 2, 1); (0, 2, 1) ] in
  let keep = [| true; false; false |] in
  Alcotest.(check bool) "infinite" true
    (Stretch.max_edge_stretch g keep = Float.infinity)

let stretch_cycle_exact () =
  (* dropping one edge of an unweighted n-cycle gives stretch n-1 *)
  let g = Generators.cycle 8 in
  let keep = Array.make (Graph.m g) true in
  keep.(0) <- false;
  Alcotest.(check (float 1e-9)) "cycle stretch" 7.0 (Stretch.max_edge_stretch g keep)

let mean_stretch_bounded_by_max =
  qcheck "mean <= max stretch" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let rng = Rng.create seed in
      let keep = Array.init (Graph.m g) (fun _ -> Rng.bernoulli rng 0.8) in
      List.iter (fun e -> keep.(e) <- true) (Spanning_tree.kruskal_mst g);
      Stretch.mean_edge_stretch g keep
      <= Stretch.max_edge_stretch g keep +. 1e-9)

(* ---------- partition / contraction ---------- *)

let partition_trivial =
  qcheck "trivial partition validates" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let p = Partition.trivial g in
      Partition.validate p = Ok ()
      && Partition.count p = Graph.n g
      && Partition.max_radius p = 0
      && Partition.is_partition p)

let partition_of_cluster_of () =
  let g = Generators.path 6 in
  let p = Partition.of_cluster_of g [| 0; 0; 0; 1; 1; 1 |] in
  check_ok "validate" (Partition.validate p);
  Alcotest.(check int) "count" 2 (Partition.count p);
  Alcotest.(check int) "radius" 2 (Partition.max_radius p);
  Alcotest.(check (list int)) "sizes" [ 3; 3 ]
    (Array.to_list (Partition.sizes p));
  Alcotest.(check int) "tree edges" 4 (List.length (Partition.tree_edges p))

let partition_rejects_disconnected_cluster () =
  let g = Generators.path 4 in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Partition.of_cluster_of: cluster not connected")
    (fun () -> ignore (Partition.of_cluster_of g [| 0; 1; 1; 0 |]))

let partition_restrict () =
  let g = Generators.path 6 in
  let p = Partition.of_cluster_of g [| 0; 0; 1; 1; 2; 2 |] in
  let p' = Partition.restrict p ~keep_cluster:(fun c -> c <> 1) in
  check_ok "validate" (Partition.validate p');
  Alcotest.(check int) "count" 2 (Partition.count p');
  Alcotest.(check int) "unclustered" (-1) p'.Partition.cluster_of.(2)

let contraction_quotient () =
  let g =
    Graph.of_edges ~n:6
      [ (0, 1, 1); (1, 2, 1); (3, 4, 1); (4, 5, 1); (2, 3, 7); (1, 4, 3) ]
  in
  let p = Partition.of_cluster_of g [| 0; 0; 0; 1; 1; 1 |] in
  let c = Contraction.make g p in
  Alcotest.(check int) "quotient n" 2 (Graph.n c.Contraction.quotient);
  Alcotest.(check int) "quotient m" 1 (Graph.m c.Contraction.quotient);
  Alcotest.(check int) "min weight kept" 3 (Graph.weight c.Contraction.quotient 0);
  let orig = c.Contraction.repr_eid.(0) in
  let u, v = Graph.endpoints g orig in
  Alcotest.(check (pair int int)) "representative is the 1-4 edge" (1, 4) (u, v)

let contraction_pullback_valid =
  qcheck "pull_back returns base edges crossing clusters" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let rng = Rng.create seed in
      let nc = 1 + Rng.int rng 5 in
      let assign = Array.init (Graph.n g) (fun _ -> Rng.int rng nc) in
      let c = Contraction.of_cluster_of g assign nc in
      let q = c.Contraction.quotient in
      let all = List.init (Graph.m q) (fun i -> i) in
      List.for_all
        (fun base_eid ->
          let u, v = Graph.endpoints g base_eid in
          assign.(u) <> assign.(v))
        (Contraction.pull_back c all))

let suite =
  [
    case "construction: basics" construction_basics;
    case "construction: merges parallel" construction_merges_parallel;
    case "construction: rejects self-loop" construction_rejects_self_loop;
    case "construction: rejects bad endpoint" construction_rejects_bad_endpoint;
    case "construction: rejects negative weight" construction_rejects_negative_weight;
    endpoints_canonical;
    adjacency_consistent;
    case "other_endpoint" other_endpoint;
    sub_by_eids_roundtrip;
    sub_with_mapping_correct;
    with_unit_weights_same_ids;
    io_roundtrip;
    case "io: rejects garbage" io_rejects_garbage;
    case "io: comments" io_comments;
    case "gen: path" gen_path;
    case "gen: cycle" gen_cycle;
    case "gen: complete" gen_complete;
    case "gen: grid" gen_grid;
    case "gen: torus" gen_torus;
    case "gen: hypercube" gen_hypercube;
    case "gen: star/tree/caterpillar" gen_star_binary_caterpillar;
    case "gen: harary connectivity" gen_harary_connectivity;
    gen_gnp_connected;
    case "gen: gnp density" gen_gnp_density;
    gen_gnm_exact;
    case "gen: geometric" gen_geometric;
    case "gen: preferential attachment" gen_preferential;
    gen_randomize_weights;
    case "bfs: path distances" bfs_path_distances;
    case "bfs: unreachable" bfs_unreachable;
    bfs_tree_valid;
    case "bfs: multi-source" bfs_multi_source;
    dijkstra_vs_bellman;
    dijkstra_vs_bfs_unit;
    dijkstra_point_to_point;
    case "dijkstra: restricted edges" dijkstra_restricted;
    dijkstra_triangle_inequality;
    case "components: count" components_count;
    spans_detects_broken;
    mst_weights_agree;
    mst_is_spanning_forest;
    case "mst: known minimum" mst_minimality_small;
    case "maxflow: known" maxflow_known;
    case "maxflow: limit" maxflow_limit;
    edge_connectivity_matches_stoer_wagner;
    case "lambda: disconnected" edge_connectivity_disconnected;
    case "lambda: upper saturates" edge_connectivity_upper_saturates;
    case "mincut: weighted" mincut_weighted;
    stretch_full_graph_is_one;
    stretch_mst_finite;
    case "stretch: disconnected infinite" stretch_disconnected_infinite;
    case "stretch: cycle exact" stretch_cycle_exact;
    mean_stretch_bounded_by_max;
    partition_trivial;
    case "partition: of_cluster_of" partition_of_cluster_of;
    case "partition: rejects disconnected" partition_rejects_disconnected_cluster;
    case "partition: restrict" partition_restrict;
    case "contraction: quotient" contraction_quotient;
    contraction_pullback_valid;
  ]

(* ---------- DIMACS + extra generators (added with the extensions) ---------- *)

let dimacs_roundtrip =
  qcheck "DIMACS save/load identity" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let g' = Graph_io.of_dimacs (Graph_io.to_dimacs g) in
      Graph.n g = Graph.n g'
      && Array.for_all2 (fun a b -> a = b) (Graph.edges g) (Graph.edges g'))

let dimacs_parses_comments () =
  let g = Graph_io.of_dimacs "c hello\np sp 3 2\na 1 2 5\na 2 1 5\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check int) "w" 5 (Graph.weight g 0)

let dimacs_rejects_garbage () =
  Alcotest.check_raises "no p line"
    (Failure "Graph_io: DIMACS input has no problem line") (fun () ->
      ignore (Graph_io.of_dimacs "a 1 2 3\n"))

let gen_random_regular =
  qcheck "random_regular near-regular" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.random_regular ~rng ~n:100 ~d:4 in
      (* configuration model drops a few stubs; degrees are <= d and most
         vertices hit d exactly *)
      let full = ref 0 in
      for v = 0 to 99 do
        if Graph.degree g v > 4 then full := -1000;
        if Graph.degree g v = 4 then incr full
      done;
      !full >= 60)

let gen_random_regular_rejects_odd () =
  Alcotest.check_raises "odd stubs"
    (Invalid_argument "Generators.random_regular: n*d must be even") (fun () ->
      ignore (Generators.random_regular ~rng:(Rng.create 1) ~n:5 ~d:3))

let gen_lollipop () =
  let g = Generators.lollipop 10 20 in
  Alcotest.(check int) "n" 30 (Graph.n g);
  Alcotest.(check int) "m" (45 + 20) (Graph.m g);
  Alcotest.(check bool) "connected" true (Connectivity.is_connected g);
  Alcotest.(check int) "diameter" 21 (Bfs.diameter_hops g)

(* ---------- streamed construction ---------- *)

(* of_edge_iter must produce the exact structure of of_edge_array on the
   same multiset of triples — same canonical edge order, ids, CSR. *)
let collect_triples s =
  let acc = ref [] in
  Generators.Streamed.iter s (fun u v w -> acc := (u, v, w) :: !acc);
  Array.of_list (List.rev !acc)

let streamed_matches_materialized s =
  Generators.Streamed.graph s
  = Graph.of_edge_array ~n:(Generators.Streamed.n s) (collect_triples s)

let streamed_grid_torus () =
  Alcotest.(check bool) "grid == streamed grid" true
    (Generators.grid 7 9 = Generators.Streamed.graph (Generators.Streamed.grid 7 9));
  Alcotest.(check bool) "torus == streamed torus" true
    (Generators.torus 5 6 = Generators.Streamed.graph (Generators.Streamed.torus 5 6))

let streamed_equivalence =
  qcheck ~count:40 "streamed: of_edge_iter == of_edge_array" seed_gen
    (fun seed ->
      let n = 3 + (seed mod 60) in
      streamed_matches_materialized
        (Generators.Streamed.degree_bounded ~seed ~n ~degree:(2 + (seed mod 5)))
      && streamed_matches_materialized
           (Generators.Streamed.preferential ~seed ~n:(n + 4)
              ~degree:(1 + (seed mod 4))))

let streamed_dedups_min_weight () =
  (* parallel edges across the two passes: min weight must survive, in
     canonical order, like [canonicalize]. *)
  let iter f =
    f 2 1 9;
    f 1 2 4;
    f 0 1 7;
    f 1 0 7
  in
  let g = Graph.of_edge_iter ~n:3 iter in
  let g' = Graph.of_edge_array ~n:3 [| (2, 1, 9); (1, 2, 4); (0, 1, 7); (1, 0, 7) |] in
  Alcotest.(check bool) "dedup parity" true (g = g');
  Alcotest.(check int) "m" 2 (Graph.m g);
  Alcotest.(check int) "w(1,2)" 4
    (match Graph.find_edge g 1 2 with Some e -> Graph.weight g e | None -> -1)

let streamed_rejects_bad_input () =
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.of_edge_iter: self-loop") (fun () ->
      ignore (Graph.of_edge_iter ~n:3 (fun f -> f 1 1 1)));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edge_iter: endpoint out of range") (fun () ->
      ignore (Graph.of_edge_iter ~n:3 (fun f -> f 0 3 1)));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Graph.of_edge_iter: negative weight") (fun () ->
      ignore (Graph.of_edge_iter ~n:3 (fun f -> f 0 1 (-1))));
  (* a stream that shrinks between the counting and scatter passes *)
  let calls = ref 0 in
  let flaky f =
    incr calls;
    if !calls = 1 then begin
      f 0 1 1;
      f 1 2 1
    end
    else f 0 1 1
  in
  Alcotest.check_raises "replay mismatch"
    (Invalid_argument "Graph.of_edge_iter: stream changed between passes")
    (fun () -> ignore (Graph.of_edge_iter ~n:3 flaky))

let streamed_connected () =
  let db = Generators.Streamed.degree_bounded ~seed:11 ~n:500 ~degree:4 in
  let pa = Generators.Streamed.preferential ~seed:11 ~n:500 ~degree:3 in
  Alcotest.(check bool) "degree_bounded connected" true
    (Connectivity.is_connected (Generators.Streamed.graph db));
  Alcotest.(check bool) "preferential connected" true
    (Connectivity.is_connected (Generators.Streamed.graph pa))

let suite =
  suite
  @ [
      dimacs_roundtrip;
      case "dimacs: comments" dimacs_parses_comments;
      case "dimacs: rejects garbage" dimacs_rejects_garbage;
      gen_random_regular;
      case "gen: random_regular odd" gen_random_regular_rejects_odd;
      case "gen: lollipop" gen_lollipop;
      case "streamed: grid/torus parity" streamed_grid_torus;
      streamed_equivalence;
      case "streamed: parallel-edge dedup" streamed_dedups_min_weight;
      case "streamed: bad input rejected" streamed_rejects_bad_input;
      case "streamed: families connected" streamed_connected;
    ]
