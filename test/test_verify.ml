(* The verification plane: witness builders, CONGEST checker programs,
   eps-far probes, the Verify front door and the corruption matrix. *)

open Ultraspan
open Helpers

let sp_of g k = (Bs_derand.run ~k g).Bs_derand.spanner

let run_spanner_checker ?engine ?backend ?jobs g sp k =
  let w = Witness.spanner g ~k sp in
  let cv =
    Checkers.spanner ?engine ?backend ?jobs g ~keep:sp.Spanner.keep ~k
      ~detour:w.Witness.detour
  in
  (w, cv)

(* ---------- witness completeness + checker completeness ---------- *)

let unweighted_accepts =
  qcheck ~count:15 "spanner witness complete + checker accepts (unit weights)"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let k = 2 + (seed mod 3) in
      let w, cv = run_spanner_checker g (sp_of g k) k in
      w.Witness.missing = 0 && Checkers.all_accept cv)

let weighted_accepts =
  qcheck ~count:15 "spanner witness complete + checker accepts (weighted)"
    seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:70 ~max_w:20 seed in
      let k = 2 + (seed mod 3) in
      let w, cv = run_spanner_checker g (sp_of g k) k in
      w.Witness.missing = 0 && Checkers.all_accept cv)

let whole_graph_spanner () =
  (* A tree spanner keeps every edge: no walks, immediate acceptance. *)
  let g = Generators.binary_tree 31 in
  let sp = sp_of g 2 in
  let w, cv = run_spanner_checker g sp 2 in
  Alcotest.(check int) "no missing witnesses" 0 w.Witness.missing;
  Alcotest.(check int) "no messages" 0 cv.Checkers.stats.Network.messages;
  Alcotest.(check bool) "accepts" true (Checkers.all_accept cv)

let empty_spanner_rejected () =
  let g = unit_graph_of_seed 3 in
  let v = Verify.spanner ~mode:Verify.Local ~k:2 g (Spanner.empty g) in
  Alcotest.(check bool) "rejected" false v.Verify.ok;
  Alcotest.(check bool) "has rejecting nodes" true (v.Verify.rejects > 0)

let cert_accepts name builder =
  qcheck ~count:12 name seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let k = 2 + (seed mod 2) in
      let cert = builder ~k g in
      match Witness.certificate g cert with
      | Error e -> QCheck2.Test.fail_reportf "no witness: %s" e
      | Ok w ->
          let cv =
            Checkers.forests g ~keep:cert.Certificate.keep ~k
              ~forest:w.Witness.forest ~parent:w.Witness.parent
              ~depth:w.Witness.depth ~root:w.Witness.root
          in
          Checkers.all_accept cv
          && cv.Checkers.stats.Network.rounds <= 3)

let thurimella_accepts =
  cert_accepts "thurimella witness accepts in O(1) rounds"
    (fun ~k g -> Thurimella.certificate ~k g)

let ni_accepts =
  cert_accepts "nagamochi-ibaraki witness accepts in O(1) rounds"
    (fun ~k g -> Nagamochi_ibaraki.certificate ~k g)

(* ---------- corruption matrix: detection + byte-identity ---------- *)

let matrix_run ?engine ?backend ?jobs () =
  let b = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer b in
  let ok = Verify.matrix ?engine ?backend ?jobs ~seed:11 ~quick:true ppf in
  Format.pp_print_flush ppf ();
  (ok, Buffer.contents b)

let matrix_detects () =
  let ok, transcript = matrix_run () in
  if not ok then Alcotest.failf "matrix failed:\n%s" transcript;
  Alcotest.(check bool) "mentions corruptions" true
    (String.length transcript > 0)

let matrix_byte_identical () =
  let _, seq = matrix_run ~engine:`Fast ~backend:`Seq () in
  let _, sh1 = matrix_run ~engine:`Fast ~backend:`Sharded ~jobs:1 () in
  let _, sh4 = matrix_run ~engine:`Fast ~backend:`Sharded ~jobs:4 () in
  let _, refe = matrix_run ~engine:`Ref ~backend:`Seq () in
  Alcotest.(check string) "seq = sharded -j1" seq sh1;
  Alcotest.(check string) "seq = sharded -j4" seq sh4;
  Alcotest.(check string) "fast = ref" seq refe

(* ---------- eps-far probes ---------- *)

let eps_far_connected () =
  let g = Generators.torus 16 16 in
  let r = Eps_far.connectivity ~seed:5 ~epsilon:0.1 g in
  Alcotest.(check bool) "accepts" true r.Eps_far.accepted;
  Alcotest.(check bool) "vertex budget" true
    (r.Eps_far.vertex_queries <= r.Eps_far.samples * r.Eps_far.cap)

let eps_far_matching_rejected () =
  let n = 64 in
  let g =
    Graph.of_edges ~n (List.init (n / 2) (fun i -> ((2 * i), (2 * i) + 1, 1)))
  in
  let r = Eps_far.connectivity ~seed:5 ~epsilon:0.1 g in
  Alcotest.(check bool) "rejects" false r.Eps_far.accepted;
  match r.Eps_far.witness with
  | Some (_, size) -> Alcotest.(check int) "witness component" 2 size
  | None -> Alcotest.fail "no witness"

let eps_far_keep_mask () =
  let g = unit_graph_of_seed 9 in
  let none = Array.make (Graph.m g) false in
  let r = Eps_far.connectivity ~keep:none ~seed:5 ~epsilon:0.1 g in
  Alcotest.(check bool) "empty subgraph rejected" false r.Eps_far.accepted;
  let all = Array.make (Graph.m g) true in
  let r = Eps_far.connectivity ~keep:all ~seed:5 ~epsilon:0.1 g in
  Alcotest.(check bool) "full connected subgraph accepted" true
    r.Eps_far.accepted

(* ---------- the Verify front door ---------- *)

let front_door_spanner () =
  let g = unit_graph_of_seed 5 in
  let sp = sp_of g 3 in
  List.iter
    (fun mode ->
      let v = Verify.spanner ~mode ~k:3 g sp in
      Alcotest.(check bool) (Verify.mode_name mode ^ " ok") true v.Verify.ok)
    [ Verify.Local; Verify.Exact; Verify.Probe ]

let front_door_certificate () =
  let g = k_connected_graph ~k:3 17 in
  let cert = Thurimella.certificate ~k:3 g in
  List.iter
    (fun mode ->
      let v = Verify.certificate ~mode g cert in
      Alcotest.(check bool) (Verify.mode_name mode ^ " ok") true v.Verify.ok)
    [ Verify.Local; Verify.Exact; Verify.Probe ]

let local_fallback_on_non_peeling () =
  (* Keeping *all* edges of a dense graph is a valid certificate but not a
     union of k spanning-forest peelings, so no witness exists: Local must
     fall back to the exact checker and say so. *)
  let g = unit_graph_of_seed 7 in
  let all = List.init (Graph.m g) (fun e -> e) in
  Alcotest.(check bool) "dense enough" true (Graph.m g > 2 * Graph.n g);
  let cert = Certificate.of_eids g ~k:2 all in
  (match Witness.certificate g cert with
  | Ok _ -> Alcotest.fail "expected no witness for the all-edges certificate"
  | Error _ -> ());
  let v = Verify.certificate ~mode:Verify.Local g cert in
  Alcotest.(check bool) "fallback verdict ok" true v.Verify.ok;
  Alcotest.(check bool) "fallback noted" true
    (String.length v.Verify.note > 0)

let checker_validates_inputs () =
  let g = unit_graph_of_seed 4 in
  let bad_len = Array.make (Graph.m g + 1) false in
  Alcotest.check_raises "keep length"
    (Invalid_argument "Checkers.spanner: keep length mismatch") (fun () ->
      ignore
        (Checkers.spanner g ~keep:bad_len ~k:2
           ~detour:(Array.make (Graph.m g) [||])))

let suite =
  [
    unweighted_accepts;
    weighted_accepts;
    case "whole-graph spanner: vacuous accept" whole_graph_spanner;
    case "empty spanner rejected" empty_spanner_rejected;
    thurimella_accepts;
    ni_accepts;
    case "corruption matrix: all detected" matrix_detects;
    slow_case "matrix byte-identical across engines/backends/jobs"
      matrix_byte_identical;
    case "eps-far: connected accepted within budget" eps_far_connected;
    case "eps-far: far-from-connected rejected" eps_far_matching_rejected;
    case "eps-far: keep-mask subgraph" eps_far_keep_mask;
    case "front door: spanner modes" front_door_spanner;
    case "front door: certificate modes" front_door_certificate;
    case "local fallback on non-peeling certificate"
      local_fallback_on_non_peeling;
    case "checker input validation" checker_validates_inputs;
  ]
