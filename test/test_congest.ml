open Ultraspan
open Helpers

(* ---------- simulator semantics ---------- *)

(* A program where the root floods a token; every node records the round it
   first hears it. *)
let flood_program root =
  {
    Network.init = (fun _ _ -> -1);
    round =
      (fun g ~round ~me st inbox ->
        if round = 0 && me = root then
          {
            Network.state = 0;
            out = List.map (fun (u, _) -> (u, [| 1 |])) (Graph.neighbors g me);
            halt = true;
          }
        else if st = -1 && inbox <> [] then
          {
            Network.state = round;
            out = List.map (fun (u, _) -> (u, [| 1 |])) (Graph.neighbors g me);
            halt = true;
          }
        else { Network.state = st; out = []; halt = true })
  }

let flood_reaches_everyone =
  qcheck "flooding reaches every vertex in ecc rounds" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let states, stats = Network.run g (flood_program 0) in
      let dist = Bfs.distances g 0 in
      Array.for_all2 (fun s d -> s = d) states dist
      && stats.Network.rounds <= Bfs.eccentricity g 0 + 2)

let word_limit_enforced () =
  let g = Generators.path 2 in
  let program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me st _ ->
          if round = 0 && me = 0 then
            { Network.state = st; out = [ (1, Array.make 10 0) ]; halt = true }
          else { Network.state = st; out = []; halt = true });
    }
  in
  match Network.run ~word_limit:4 g program with
  | exception Network.Message_too_large { words = 10; limit = 4; _ } -> ()
  | _ -> Alcotest.fail "expected Message_too_large"

let non_neighbor_rejected () =
  let g = Generators.path 3 in
  let program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me st _ ->
          if round = 0 && me = 0 then
            { Network.state = st; out = [ (2, [| 1 |]) ]; halt = true }
          else { Network.state = st; out = []; halt = true });
    }
  in
  match Network.run g program with
  | exception Network.Not_a_neighbor { sender = 0; target = 2 } -> ()
  | _ -> Alcotest.fail "expected Not_a_neighbor"

let duplicate_rejected () =
  (* two messages to the same (valid) neighbour: a distinct violation from
     targeting a non-neighbour, with its own exception *)
  let g = Generators.path 2 in
  let program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me st _ ->
          if round = 0 && me = 0 then
            { Network.state = st; out = [ (1, [| 1 |]); (1, [| 2 |]) ]; halt = true }
          else { Network.state = st; out = []; halt = true });
    }
  in
  match Network.run g program with
  | exception Network.Duplicate_message { sender = 0; target = 1 } -> ()
  | _ -> Alcotest.fail "expected Duplicate_message"

let round_limit_enforced () =
  let g = Generators.path 2 in
  let program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me st inbox ->
          (* nodes 0 and 1 ping-pong forever *)
          if (round = 0 && me = 0) || inbox <> [] then
            { Network.state = st; out = [ (1 - me, [| 0 |]) ]; halt = true }
          else { Network.state = st; out = []; halt = true });
    }
  in
  match Network.run ~max_rounds:10 g program with
  | exception Network.Round_limit_exceeded { limit = 10; partial } ->
      (* the partial stats make the divergence diagnosable *)
      Alcotest.(check int) "partial rounds" 10 partial.Network.rounds;
      Alcotest.(check bool) "messages observed" true
        (partial.Network.messages > 0)
  | _ -> Alcotest.fail "expected Round_limit_exceeded"

let message_stats_counted () =
  let g = Generators.star 5 in
  let _, stats = Network.run g (flood_program 0) in
  (* root sends 4, each leaf echoes to the root: 4 more *)
  Alcotest.(check int) "messages" 8 stats.Network.messages;
  Alcotest.(check int) "max words" 1 stats.Network.max_words

(* ---------- distributed BFS ---------- *)

let bfs_matches_centralized =
  qcheck "distributed bfs = centralized" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let result, _ = Programs.bfs g ~root:0 in
      let dist = Bfs.distances g 0 in
      result.Programs.dist = dist)

let bfs_parents_valid =
  qcheck "distributed bfs parents valid" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let result, _ = Programs.bfs g ~root:0 in
      let ok = ref true in
      Array.iteri
        (fun v p ->
          if v <> 0 && result.Programs.dist.(v) > 0 then
            if
              p < 0
              || (not (Graph.mem_edge g v p))
              || result.Programs.dist.(p) <> result.Programs.dist.(v) - 1
            then ok := false)
        result.Programs.parent;
      !ok)

let bfs_round_bound =
  qcheck "distributed bfs rounds ~ eccentricity" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let _, stats = Programs.bfs g ~root:0 in
      stats.Network.rounds <= Bfs.eccentricity g 0 + 2)

(* ---------- broadcast ---------- *)

let broadcast_max_correct =
  qcheck "broadcast_max converges to global max" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let rng = Rng.create seed in
      let values = Array.init (Graph.n g) (fun _ -> Rng.int rng 1000) in
      let result, _ = Programs.broadcast_max g ~values in
      let expected = Array.fold_left max min_int values in
      Array.for_all (fun v -> v = expected) result)

(* ---------- maximal matching ---------- *)

let matching_is_valid mate g =
  let ok = ref true in
  (* symmetric and between neighbours *)
  Array.iteri
    (fun v m ->
      if m >= 0 then begin
        if mate.(m) <> v then ok := false;
        if not (Graph.mem_edge g v m) then ok := false
      end)
    mate;
  !ok

let matching_is_maximal mate g =
  let ok = ref true in
  Graph.iter_edges g (fun e ->
      if mate.(e.Graph.u) = -1 && mate.(e.Graph.v) = -1 then ok := false);
  !ok

let mm_valid =
  qcheck "distributed matching is a matching" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let mate, _ = Programs.maximal_matching g in
      matching_is_valid mate g)

let mm_maximal =
  qcheck "distributed matching is maximal" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let mate, _ = Programs.maximal_matching g in
      matching_is_maximal mate g)

let mm_on_structured () =
  List.iter
    (fun (name, g) ->
      let mate, _ = Programs.maximal_matching g in
      Alcotest.(check bool) (name ^ " valid") true (matching_is_valid mate g);
      Alcotest.(check bool) (name ^ " maximal") true (matching_is_maximal mate g))
    [
      ("path", Generators.path 17);
      ("cycle", Generators.cycle 12);
      ("star", Generators.star 9);
      ("complete", Generators.complete 8);
      ("grid", Generators.grid 6 7);
    ]

(* ---------- round accounting ---------- *)

let rounds_accounting () =
  let r = Rounds.create () in
  Rounds.charge r 5;
  Rounds.charge ~label:"x" r 7;
  Rounds.charge_aggregate ~label:"x" r ~radius:3;
  Alcotest.(check int) "total" (5 + 7 + 8) (Rounds.total r);
  Alcotest.(check (list (pair string int))) "breakdown"
    [ ("(other)", 5); ("x", 15) ]
    (Rounds.breakdown r)

let rounds_merge () =
  let a = Rounds.create () and b = Rounds.create () in
  Rounds.charge ~label:"p" a 3;
  Rounds.charge ~label:"p" b 4;
  Rounds.charge ~label:"q" b 1;
  Rounds.merge_into a b;
  Alcotest.(check int) "merged total" 8 (Rounds.total a)

let rounds_rejects_negative () =
  let r = Rounds.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Rounds.charge: negative")
    (fun () -> Rounds.charge r (-1));
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Rounds.charge_aggregate: negative radius") (fun () ->
      Rounds.charge_aggregate r ~radius:(-1))

let rounds_spans () =
  let r = Rounds.create () in
  Rounds.span r "algo" (fun () ->
      Rounds.charge ~label:"setup" r 2;
      Rounds.span r "phase-1" (fun () -> Rounds.charge ~label:"wave" r 5));
  Rounds.charge r 1;
  Alcotest.(check int) "total" 8 (Rounds.total r);
  Alcotest.(check (list (pair string int)))
    "breakdown is path-qualified"
    [ ("(other)", 1); ("algo/phase-1/wave", 5); ("algo/setup", 2) ]
    (Rounds.breakdown r);
  match Rounds.spans r with
  | [ algo; other ] ->
      Alcotest.(check string) "first span" "algo" algo.Rounds.name;
      Alcotest.(check int) "algo subtotal" 7 algo.Rounds.subtotal;
      Alcotest.(check int) "algo direct" 0 algo.Rounds.self;
      Alcotest.(check string) "flat charge is a leaf span" "(other)"
        other.Rounds.name;
      (match algo.Rounds.children with
      | [ setup; phase ] ->
          Alcotest.(check string) "setup leaf" "setup" setup.Rounds.name;
          Alcotest.(check int) "setup rounds" 2 setup.Rounds.subtotal;
          Alcotest.(check string) "phase node" "phase-1" phase.Rounds.name;
          Alcotest.(check int) "phase subtotal" 5 phase.Rounds.subtotal
      | _ -> Alcotest.fail "expected two children under algo")
  | _ -> Alcotest.fail "expected two top-level spans"

let rounds_span_unwinds_on_exception () =
  let r = Rounds.create () in
  (try
     Rounds.span r "boom" (fun () ->
         Rounds.charge ~label:"partial" r 3;
         failwith "bang")
   with Failure _ -> ());
  Rounds.charge ~label:"after" r 2;
  Alcotest.(check (list (pair string int)))
    "stack popped by the exception"
    [ ("after", 2); ("boom/partial", 3) ]
    (Rounds.breakdown r)

let rounds_merge_preserves_spans () =
  let a = Rounds.create () and b = Rounds.create () in
  Rounds.span b "inner" (fun () -> Rounds.charge ~label:"w" b 4);
  Rounds.span a "outer" (fun () -> Rounds.merge_into a b);
  Alcotest.(check int) "merged total" 4 (Rounds.total a);
  Alcotest.(check (list (pair string int)))
    "merged under the receiving span"
    [ ("outer/inner/w", 4) ]
    (Rounds.breakdown a)

let suite =
  [
    flood_reaches_everyone;
    case "simulator: word limit" word_limit_enforced;
    case "simulator: non-neighbor" non_neighbor_rejected;
    case "simulator: duplicate message" duplicate_rejected;
    case "simulator: round limit" round_limit_enforced;
    case "simulator: message stats" message_stats_counted;
    bfs_matches_centralized;
    bfs_parents_valid;
    bfs_round_bound;
    broadcast_max_correct;
    mm_valid;
    mm_maximal;
    case "matching: structured graphs" mm_on_structured;
    case "rounds: accounting" rounds_accounting;
    case "rounds: merge" rounds_merge;
    case "rounds: rejects negative" rounds_rejects_negative;
    case "rounds: span tree" rounds_spans;
    case "rounds: span unwinds on exception" rounds_span_unwinds_on_exception;
    case "rounds: merge preserves spans" rounds_merge_preserves_spans;
  ]

(* ---------- cluster-tree primitives ---------- *)

let cluster_partition_of seed t =
  let g = Helpers.graph_of_seed ~n_max:120 seed in
  let p, _ = Ultraspan.Stretch_friendly.partition ~t g in
  (g, p, Ultraspan.Cluster_programs.of_partition p)

let cluster_sums_correct =
  qcheck ~count:15 "cluster convergecast sums" seed_gen (fun seed ->
      let g, p, part = cluster_partition_of seed 4 in
      let n = Graph.n g in
      let values = Array.init n (fun v -> (v * v) mod 11) in
      let sums, _ = Cluster_programs.sum_to_roots g part ~values in
      let expected = Array.make (Partition.count p) 0 in
      Array.iteri
        (fun v c -> expected.(c) <- expected.(c) + values.(v))
        p.Partition.cluster_of;
      sums = expected)

let cluster_min_boundary_correct =
  qcheck ~count:15 "cluster min boundary edges" seed_gen (fun seed ->
      let g, p, part = cluster_partition_of seed 4 in
      let mins, _ = Cluster_programs.min_boundary_edges g part in
      let expected = Array.make (Partition.count p) None in
      Graph.iter_edges g (fun e ->
          let cu = p.Partition.cluster_of.(e.Graph.u)
          and cv = p.Partition.cluster_of.(e.Graph.v) in
          if cu <> cv then begin
            let key = Some (e.Graph.w, e.Graph.id) in
            let upd c =
              match expected.(c) with
              | Some k when Some k <= key -> ()
              | _ -> expected.(c) <- key
            in
            upd cu;
            upd cv
          end);
      mins = expected)

let cluster_broadcast_correct =
  qcheck ~count:15 "cluster broadcast from roots" seed_gen (fun seed ->
      let g, p, part = cluster_partition_of seed 8 in
      let values = Array.init (Partition.count p) (fun c -> (c * 31) + 5) in
      let got, _ = Cluster_programs.broadcast_from_roots g part ~values in
      let ok = ref true in
      Array.iteri
        (fun v x -> if x <> values.(p.Partition.cluster_of.(v)) then ok := false)
        got;
      !ok)

let cluster_rounds_match_accounting =
  qcheck ~count:15
    "measured wave cost within the charge_aggregate formula" seed_gen
    (fun seed ->
      let g, p, part = cluster_partition_of seed 8 in
      let radius = Partition.max_radius p in
      let _, s1 =
        Cluster_programs.sum_to_roots g part
          ~values:(Array.make (Graph.n g) 1)
      in
      let _, s2 = Cluster_programs.min_boundary_edges g part in
      let _, s3 =
        Cluster_programs.broadcast_from_roots g part
          ~values:(Array.make (Partition.count p) 0)
      in
      (* charge_aggregate bills 2*radius + 2 for a full down-and-up wave;
         each single wave must fit in radius + 3 measured rounds *)
      s1.Network.rounds <= radius + 3
      && s2.Network.rounds <= radius + 3
      && s3.Network.rounds <= radius + 3)

let cluster_rejects_unclustered () =
  let g = Generators.path 4 in
  let p = Partition.of_cluster_of g [| 0; 0; -1; 1 |] in
  Alcotest.check_raises "unclustered vertex"
    (Invalid_argument "Cluster_programs.of_partition: unclustered vertex")
    (fun () -> ignore (Cluster_programs.of_partition p))

let suite =
  suite
  @ [
      cluster_sums_correct;
      cluster_min_boundary_correct;
      cluster_broadcast_correct;
      cluster_rounds_match_accounting;
      case "cluster: rejects unclustered" cluster_rejects_unclustered;
    ]

(* ---------- weighted SSSP + spanning forest programs ---------- *)

let bellman_ford_matches_dijkstra =
  qcheck ~count:12 "distributed bellman-ford = dijkstra" seed_gen (fun seed ->
      let g = Helpers.graph_of_seed ~n_max:60 seed in
      let (dist, parent), _ = Programs.bellman_ford g ~source:0 in
      let expected = Dijkstra.distances g 0 in
      dist = expected
      && Array.for_all2
           (fun p d -> (d = 0 || d = max_int) = (p = -1))
           parent dist)

let bellman_ford_parents_relax =
  qcheck ~count:10 "bellman-ford parents lie on shortest paths" seed_gen
    (fun seed ->
      let g = Helpers.graph_of_seed ~n_max:60 seed in
      let (dist, parent), _ = Programs.bellman_ford g ~source:0 in
      let ok = ref true in
      Array.iteri
        (fun v p ->
          if p >= 0 then begin
            match Graph.find_edge g v p with
            | Some eid ->
                if dist.(p) + Graph.weight g eid <> dist.(v) then ok := false
            | None -> ok := false
          end)
        parent;
      !ok)

let spanning_forest_valid =
  qcheck ~count:12 "distributed spanning forest valid" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let eids, _ = Programs.spanning_forest g in
      Spanning_tree.is_spanning_forest g eids)

let spanning_forest_on_disconnected () =
  let g = Graph.of_edges ~n:9 [ (0, 1, 1); (1, 2, 1); (3, 4, 1); (5, 6, 1); (6, 7, 1) ] in
  let eids, _ = Programs.spanning_forest g in
  Alcotest.(check bool) "spanning forest" true (Spanning_tree.is_spanning_forest g eids);
  Alcotest.(check int) "edge count = n - #components" 5 (List.length eids)

let spanning_forest_rounds =
  qcheck ~count:10 "spanning forest rounds ~ eccentricity of min vertex"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let _, stats = Programs.spanning_forest g in
      stats.Network.rounds <= Bfs.eccentricity g 0 + 3)

let suite =
  suite
  @ [
      bellman_ford_matches_dijkstra;
      bellman_ford_parents_relax;
      spanning_forest_valid;
      case "forest: disconnected" spanning_forest_on_disconnected;
      spanning_forest_rounds;
    ]

(* ---------- fault injection ---------- *)

let empty_plan_is_identity =
  qcheck "empty fault plan = fault-free run" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:50 seed in
      let plain = Network.run g (flood_program 0) in
      let f = Faults.make Faults.empty in
      let faulty = Network.run ~faults:f g (flood_program 0) in
      plain = faulty && Faults.events f = [])

(* A plan with all three fault kinds, keyed by a seed. *)
let mixed_plan_of_seed g seed =
  let rng = Rng.create (succ (abs seed)) in
  let n = Graph.n g in
  Faults.empty
  |> Faults.with_drops ~seed 0.15
  |> Faults.random_crashes ~rng ~n ~within:4 ~count:(min 3 (n - 1))
  |> Faults.random_link_failures ~rng g ~within:4 ~count:(min 4 (Graph.m g))

let replay_is_deterministic =
  qcheck ~count:20 "same (seed, plan) replays identically" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let plan = mixed_plan_of_seed g seed in
      let run () =
        let f = Faults.make plan in
        let out = Network.run ~faults:f g (flood_program 0) in
        (out, Faults.events f)
      in
      run () = run ())

let crash_blocks_flood () =
  let g = Generators.path 4 in
  let f = Faults.make (Faults.crash ~round:0 1 Faults.empty) in
  let states, stats = Network.run ~faults:f g (flood_program 0) in
  Alcotest.(check (array int)) "flood stops at the crash"
    [| 0; -1; -1; -1 |] states;
  Alcotest.(check int) "crashed nodes" 1 stats.Network.crashed_nodes

let sever_blocks_link () =
  let g = Generators.path 3 in
  let f = Faults.make (Faults.sever ~round:0 1 2 Faults.empty) in
  let states, stats = Network.run ~faults:f g (flood_program 0) in
  Alcotest.(check (array int)) "flood stops at the dead link"
    [| 0; 1; -1 |] states;
  Alcotest.(check int) "severed links" 1 stats.Network.severed_links

let drop_everything () =
  let g = Generators.star 5 in
  let f = Faults.make (Faults.with_drops 1.0 Faults.empty) in
  let states, stats = Network.run ~faults:f g (flood_program 0) in
  Alcotest.(check (array int)) "only the root knows"
    [| 0; -1; -1; -1; -1 |] states;
  Alcotest.(check int) "nothing delivered" 0 stats.Network.messages;
  Alcotest.(check int) "every send dropped" 4 stats.Network.drops

let injector_is_single_use () =
  let g = Generators.path 3 in
  let f = Faults.make Faults.empty in
  let _ = Network.run ~faults:f g (flood_program 0) in
  Alcotest.check_raises "reuse rejected"
    (Invalid_argument "Faults.start: injector already used (build a fresh one)")
    (fun () -> ignore (Network.run ~faults:f g (flood_program 0)))

let counters_match_event_log =
  qcheck ~count:20 "stats counters = event-log tallies" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let f = Faults.make (mixed_plan_of_seed g seed) in
      let _, stats = Network.run ~faults:f g (flood_program 0) in
      let crashes = ref 0 and severs = ref 0 and drops = ref 0 in
      List.iter
        (function
          | Faults.Crash _ -> incr crashes
          | Faults.Sever _ -> incr severs
          | Faults.Drop _ -> incr drops)
        (Faults.events f);
      stats.Network.crashed_nodes = !crashes
      && stats.Network.severed_links = !severs
      && stats.Network.drops = !drops
      && Faults.drops f = !drops
      && Faults.crashed_nodes f = !crashes
      && Faults.severed_links f = !severs)

let bfs_under_faults_partial =
  qcheck ~count:15 "bfs under faults: reached nodes have true distances"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let f = Faults.make (mixed_plan_of_seed g seed) in
      let result, _ = Programs.bfs ~faults:f g ~root:0 in
      let dist = Bfs.distances g 0 in
      (* faults only lose information: any distance the damaged run reports
         is an upper bound witnessed by a real path, never an undercount *)
      Array.for_all2
        (fun got true_d -> got = -1 || got >= true_d)
        result.Programs.dist dist)

let suite =
  suite
  @ [
      empty_plan_is_identity;
      replay_is_deterministic;
      case "faults: crash blocks flood" crash_blocks_flood;
      case "faults: sever blocks link" sever_blocks_link;
      case "faults: drop everything" drop_everything;
      case "faults: injector single-use" injector_is_single_use;
      counters_match_event_log;
      bfs_under_faults_partial;
    ]
