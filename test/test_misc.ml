open Ultraspan
open Helpers

(* Cross-cutting properties that did not fit the per-module suites. *)

(* ---------- simulator determinism ---------- *)

let network_runs_deterministic =
  qcheck ~count:10 "simulator runs are deterministic" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let r1, s1 = Programs.bfs g ~root:0 in
      let r2, s2 = Programs.bfs g ~root:0 in
      r1.Programs.dist = r2.Programs.dist
      && r1.Programs.parent = r2.Programs.parent
      && s1 = s2)

let matching_deterministic =
  qcheck ~count:10 "matching protocol deterministic" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let m1, _ = Programs.maximal_matching g in
      let m2, _ = Programs.maximal_matching g in
      m1 = m2)

(* ---------- ultra-sparse internals ---------- *)

let ultra_quotient_budget =
  qcheck ~count:10 "ultra-sparse quotient edges within n/t" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let rng = Rng.create seed in
      let t = 1 + Rng.int rng 6 in
      let out = Ultra_sparse.run ~t g in
      out.Ultra_sparse.quotient_edges_kept <= Graph.n g / t
      (* the doubling loop terminates quickly in practice *)
      && out.Ultra_sparse.attempts <= 12)

let ultra_partition_consistency =
  qcheck ~count:10 "ultra-sparse t_inner >= t and doubling" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:120 seed in
      let out = Ultra_sparse.run ~t:3 g in
      out.Ultra_sparse.t_inner >= 3
      && out.Ultra_sparse.t_inner = 3 * (1 lsl (out.Ultra_sparse.attempts - 1)))

(* ---------- weighted reduction internals ---------- *)

let weighted_reduction_classes_cover =
  qcheck ~count:10 "weight classes partition the edges" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:60 ~max_w:500 seed in
      (* an "unweighted algorithm" that keeps everything: the reduction
         must then return the whole graph *)
      let keep_all h = Spanner.of_eids h (List.init (Graph.m h) Fun.id) in
      let out = Weighted_reduction.run ~unweighted:keep_all ~epsilon:0.3 g in
      Spanner.size out.Weighted_reduction.spanner = Graph.m g)

let weighted_reduction_stretch_scales =
  qcheck ~count:8 "reduction stretch <= (1+eps)(2k-1)" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:60 ~max_w:300 seed in
      let k = 2 in
      let eps = 1.0 in
      let unweighted h = (Bs_derand.run ~k h).Bs_derand.spanner in
      let out = Weighted_reduction.run ~unweighted ~epsilon:eps g in
      Stretch.max_edge_stretch g out.Weighted_reduction.spanner.Spanner.keep
      <= ((1.0 +. eps) *. float_of_int ((2 * k) - 1)) +. 1e-9)

(* ---------- graph accessor consistency ---------- *)

let neighbors_match_iter_adj =
  qcheck "neighbors = iter_adj collection" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:60 seed in
      let ok = ref true in
      for v = 0 to Graph.n g - 1 do
        let via_iter = Graph.fold_adj g v (fun acc u eid -> (u, eid) :: acc) [] in
        if List.sort compare (Graph.neighbors g v) <> List.sort compare via_iter
        then ok := false
      done;
      !ok)

let find_edge_consistent =
  qcheck "find_edge agrees with the edge list" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:50 seed in
      let ok = ref true in
      Graph.iter_edges g (fun e ->
          match Graph.find_edge g e.Graph.u e.Graph.v with
          | Some eid when eid = e.Graph.id -> ()
          | _ -> ok := false);
      (* and a few non-edges *)
      let rng = Rng.create seed in
      for _ = 1 to 20 do
        let a = Rng.int rng (Graph.n g) and b = Rng.int rng (Graph.n g) in
        match Graph.find_edge g a b with
        | Some eid ->
            let u, v = Graph.endpoints g eid in
            if (min a b, max a b) <> (u, v) then ok := false
        | None -> if a <> b && Graph.mem_edge g a b then ok := false
      done;
      !ok)

(* ---------- linear-size phase bookkeeping ---------- *)

let linear_phases_shrink =
  qcheck ~count:10 "linear-size phases shrink the cluster graph" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:200 seed in
      let out = Linear_size.run g in
      let rec decreasing = function
        | a :: (b :: _ as rest) ->
            b.Linear_size.nodes < a.Linear_size.nodes && decreasing rest
        | _ -> true
      in
      decreasing out.Linear_size.phases)

let linear_stretch_bound_composition =
  qcheck ~count:10 "stretch bound = prod (2g+1)" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let out = Linear_size.run g in
      let expected =
        List.fold_left
          (fun acc ph -> acc *. float_of_int ((2 * ph.Linear_size.g_iters) + 1))
          1.0 out.Linear_size.phases
      in
      abs_float (out.Linear_size.stretch_bound -. expected) < 1e-6)

(* ---------- spanner round accounts ---------- *)

let rounds_nonzero_for_real_algorithms =
  qcheck ~count:8 "round accounts are populated" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:100 seed in
      let checks =
        [
          Spanner.total_rounds (Bs_derand.run ~k:3 g).Bs_derand.spanner;
          Spanner.total_rounds (Linear_size.run g).Linear_size.spanner;
          Spanner.total_rounds (Ultra_sparse.run ~t:2 g).Ultra_sparse.spanner;
        ]
      in
      List.for_all (fun r -> r > 0) checks)

let suite =
  [
    network_runs_deterministic;
    matching_deterministic;
    ultra_quotient_budget;
    ultra_partition_consistency;
    weighted_reduction_classes_cover;
    weighted_reduction_stretch_scales;
    neighbors_match_iter_adj;
    find_edge_consistent;
    linear_phases_shrink;
    linear_stretch_bound_composition;
    rounds_nonzero_for_real_algorithms;
  ]

(* ---------- additional coverage ---------- *)

let file_roundtrip () =
  let g = graph_of_seed ~n_max:30 4 in
  let path = Filename.temp_file "ultraspan" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save path g;
      let g' = Graph_io.load path in
      Alcotest.(check bool) "roundtrip" true
        (Array.for_all2 (fun a b -> a = b) (Graph.edges g) (Graph.edges g')));
  let dpath = Filename.temp_file "ultraspan" ".dimacs" in
  Fun.protect
    ~finally:(fun () -> Sys.remove dpath)
    (fun () ->
      Graph_io.save_dimacs dpath g;
      let g' = Graph_io.load_dimacs dpath in
      Alcotest.(check bool) "dimacs file roundtrip" true
        (Array.for_all2 (fun a b -> a = b) (Graph.edges g) (Graph.edges g')))

let gnp_extremes () =
  let rng = Rng.create 1 in
  let empty = Generators.gnp ~rng ~n:20 ~p:0.0 in
  Alcotest.(check int) "p=0" 0 (Graph.m empty);
  let full = Generators.gnp ~rng ~n:20 ~p:1.0 in
  Alcotest.(check int) "p=1" 190 (Graph.m full)

let hash_family_mod_and_coeffs () =
  let h = Hash_family.of_coeffs [| -5; 3 |] in
  (* negative coefficients are normalized into the field *)
  Alcotest.(check bool) "normalized" true
    (Array.for_all (fun c -> c >= 0 && c < Hash_family.prime)
       (Hash_family.coeffs h));
  Alcotest.(check int) "degree" 1 (Hash_family.degree h);
  for i = 0 to 20 do
    let v = Hash_family.eval_mod h i 7 in
    Alcotest.(check bool) "mod range" true (v >= 0 && v < 7)
  done

let stats_percentile_interpolates () =
  let xs = [| 10.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "p50 interpolated" 15.0 (Stats.percentile xs 0.5)

let network_word_limit_boundary () =
  let g = Generators.path 2 in
  let program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me st _ ->
          if round = 0 && me = 0 then
            { Network.state = st; out = [ (1, Array.make 4 0) ]; halt = true }
          else { Network.state = st; out = []; halt = true });
    }
  in
  let _, stats = Network.run ~word_limit:4 g program in
  Alcotest.(check int) "exactly 4 words allowed" 4 stats.Network.max_words

let apsp_restricted =
  qcheck ~count:8 "by_dijkstra respects the edge mask" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let keep = Array.make (Graph.m g) false in
      List.iter (fun e -> keep.(e) <- true) (Spanning_tree.kruskal_mst g);
      let d = Apsp.by_dijkstra ~allow:(fun e -> keep.(e)) g in
      (* tree distances dominate graph distances *)
      let dg = Apsp.by_dijkstra g in
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        for v = 0 to Graph.n g - 1 do
          if d.(u).(v) < dg.(u).(v) then ok := false
        done
      done;
      !ok)

let stoer_wagner_cut_consistent =
  qcheck ~count:10 "stoer-wagner side matches its weight" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:30 seed in
      let w, side = Mincut.stoer_wagner_cut g in
      let crossing = ref 0 in
      Graph.iter_edges g (fun e ->
          if side.(e.Graph.u) <> side.(e.Graph.v) then
            crossing := !crossing + e.Graph.w);
      !crossing = w)

let bs_distributed_disconnected () =
  let g =
    Graph.of_edges ~n:8
      [ (0, 1, 3); (1, 2, 1); (2, 0, 2); (3, 4, 5); (4, 5, 1); (6, 7, 2) ]
  in
  let out = Bs_distributed.run ~seed:3 ~k:2 g in
  Alcotest.(check bool) "spans all components" true
    (Spanner.is_spanning g out.Bs_distributed.spanner)

let partition_members_sizes_agree =
  qcheck ~count:10 "partition members and sizes agree" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let p, _ = Stretch_friendly.partition ~t:4 g in
      let members = Partition.members p in
      let sizes = Partition.sizes p in
      Array.for_all2 (fun ms s -> List.length ms = s) members sizes)

let pqueue_interleaved =
  qcheck "pqueue interleaved push/pop matches sorted order"
    QCheck2.Gen.(list_size (int_bound 60) (int_bound 100))
    (fun xs ->
      (* push two at a time, pop one: final drain must still be sorted *)
      let pq = Pqueue.create ~cmp:compare () in
      let popped = ref [] in
      List.iteri
        (fun i x ->
          Pqueue.push pq x x;
          if i mod 2 = 1 then
            match Pqueue.pop pq with
            | Some (p, _) -> popped := p :: !popped
            | None -> ())
        xs;
      let rec drain acc =
        match Pqueue.pop pq with
        | None -> acc
        | Some (p, _) -> drain (p :: acc)
      in
      let final = drain [] in
      (* the final drain is sorted descending when accumulated head-first *)
      List.sort compare final = List.rev final
      && List.length !popped + List.length final = List.length xs)

let suite =
  suite
  @ [
      case "io: file roundtrips" file_roundtrip;
      case "gen: gnp extremes" gnp_extremes;
      case "hash_family: mod + coeffs" hash_family_mod_and_coeffs;
      case "stats: percentile interpolation" stats_percentile_interpolates;
      case "network: word limit boundary" network_word_limit_boundary;
      apsp_restricted;
      stoer_wagner_cut_consistent;
      case "congest bs: disconnected" bs_distributed_disconnected;
      partition_members_sizes_agree;
      pqueue_interleaved;
    ]

(* ---------- PRAM ledger ---------- *)

let pram_basics () =
  let p = Pram.create () in
  Pram.charge p ~work:10 ~depth:3;
  Pram.charge ~label:"x" p ~work:5 ~depth:2;
  Alcotest.(check int) "work" 15 (Pram.work p);
  Alcotest.(check int) "depth" 5 (Pram.depth p);
  Pram.charge_parallel p [ (7, 4); (9, 1) ];
  Alcotest.(check int) "parallel work adds" 31 (Pram.work p);
  Alcotest.(check int) "parallel depth maxes" 9 (Pram.depth p);
  let q = Pram.create () in
  Pram.charge q ~work:1 ~depth:1;
  Pram.merge_sequential p q;
  Alcotest.(check int) "merged" 32 (Pram.work p)

let pram_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Pram.charge: negative")
    (fun () -> Pram.charge (Pram.create ()) ~work:(-1) ~depth:0)

let clustering_pram_work_efficient =
  qcheck ~count:8 "Thm 1.7 ledger: work m·polylog, depth polylog" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:150 seed in
      let out = Clustering_spanner.sparse g in
      let lg =
        int_of_float (ceil (Float.log2 (float_of_int (Graph.n g + 2)))) + 1
      in
      Pram.work out.Clustering_spanner.pram
      <= 8 * (Graph.m g + Graph.n g) * lg
      && Pram.depth out.Clustering_spanner.pram <= 8 * lg * lg)

let suite =
  suite
  @ [
      case "pram: basics" pram_basics;
      case "pram: rejects negative" pram_rejects_negative;
      clustering_pram_work_efficient;
    ]

(* ---------- validators catch corruption ---------- *)

let validators_catch_corruption () =
  let g = graph_of_seed ~n_max:60 8 in
  let p, _ = Stretch_friendly.partition ~t:4 g in
  (* corrupt a parent pointer: point a non-root vertex at itself *)
  let bad = ref (-1) in
  Array.iteri (fun v par -> if par >= 0 && !bad = -1 then bad := v) p.Partition.parent;
  let v = !bad in
  let corrupted =
    {
      p with
      Partition.parent = Array.mapi (fun i x -> if i = v then v else x) p.Partition.parent;
    }
  in
  (match Partition.validate corrupted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted parent not caught");
  (* corrupt cluster_of: claim a vertex for a different cluster *)
  let c2 =
    {
      p with
      Partition.cluster_of =
        Array.mapi
          (fun i c -> if i = v then (c + 1) mod Partition.count p else c)
          p.Partition.cluster_of;
    }
  in
  match Partition.validate c2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corrupted cluster_of not caught"

let nd_validator_catches_bad_color () =
  let g = Generators.grid 6 6 in
  let nd = Network_decomposition.decompose g in
  (* force two adjacent clusters into the same colour *)
  let e = Graph.edge g 0 in
  let cu = nd.Network_decomposition.cluster_of.(e.Graph.u) in
  let cv = nd.Network_decomposition.cluster_of.(e.Graph.v) in
  if cu <> cv then begin
    let colors = Array.copy nd.Network_decomposition.color_of_cluster in
    colors.(cu) <- colors.(cv);
    let bad = { nd with Network_decomposition.color_of_cluster = colors } in
    match Network_decomposition.validate g ~separation:2 bad with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "same-colour adjacency not caught"
  end

let sc_validator_catches_overlap () =
  let g = Generators.grid 6 6 in
  let c = Separated_clustering.make ~separation:3 g in
  if Array.length c.Separated_clustering.clusters >= 2 then begin
    (* claim a vertex of cluster 1 for cluster 0's member list too *)
    let c0 = c.Separated_clustering.clusters.(0) in
    let c1 = c.Separated_clustering.clusters.(1) in
    match c1.Separated_clustering.members with
    | stolen :: _ ->
        let clusters = Array.copy c.Separated_clustering.clusters in
        clusters.(0) <-
          { c0 with Separated_clustering.members = stolen :: c0.Separated_clustering.members };
        let bad = { c with Separated_clustering.clusters = clusters } in
        (match Separated_clustering.validate ~separation:3 g bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "overlap not caught")
    | [] -> ()
  end

let suite =
  suite
  @ [
      case "validators: partition corruption" validators_catch_corruption;
      case "validators: nd colouring" nd_validator_catches_bad_color;
      case "validators: clustering overlap" sc_validator_catches_overlap;
    ]
