(* Shared helpers for the test-suite. *)

open Ultraspan

let qcheck ?(count = 30) name gen law =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen law)

(* A reproducible random connected weighted graph keyed by a seed. *)
let graph_of_seed ?(n_max = 120) ?(max_w = 100) seed =
  let rng = Rng.create (succ (abs seed)) in
  let n = 5 + Rng.int rng (n_max - 5) in
  let avg_degree = 2.0 +. Rng.float rng 8.0 in
  Generators.weighted_connected_gnp ~rng ~n ~avg_degree ~max_w

let unit_graph_of_seed ?(n_max = 120) seed =
  Graph.with_unit_weights (graph_of_seed ~n_max seed)

let seed_gen = QCheck2.Gen.int_bound 1_000_000

(* A random graph with decent connectivity: a Harary backbone plus noise.
   Ground-truth workload for the certificate and resilience suites. *)
let k_connected_graph ?(n = 60) ~k seed =
  let rng = Rng.create seed in
  let h = Generators.harary ~k ~n in
  let extra = ref [] in
  for _ = 1 to n do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then extra := (a, b, 1) :: !extra
  done;
  let base =
    Array.to_list
      (Array.map (fun e -> (e.Graph.u, e.Graph.v, e.Graph.w)) (Graph.edges h))
  in
  Graph.of_edges ~n (base @ !extra)

let check_ok name = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f
