open Ultraspan
open Helpers

(* ---------- Cole–Vishkin colouring ---------- *)

let random_pointer_graph rng n =
  (* out-degree <= 1 with only 2-cycles: build a random forest, orient
     child -> parent, then root some mutual pairs *)
  let succ = Array.make n (-1) in
  for v = 1 to n - 1 do
    if Rng.bernoulli rng 0.9 then succ.(v) <- Rng.int rng v
  done;
  (* turn a few roots into mutual pairs *)
  if n >= 2 && Rng.bool rng then succ.(0) <- 1;
  succ

let cv_proper =
  qcheck "cole-vishkin gives proper 3-colouring" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 300 in
      let succ = random_pointer_graph rng n in
      let r = Coloring.three_color ~n ~succ in
      Coloring.is_proper ~n ~succ r.Coloring.colors
      && Array.for_all (fun c -> c >= 0 && c <= 2) r.Coloring.colors)

let cv_iterations_log_star =
  qcheck "cole-vishkin iterations are O(log* n)" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 1000 in
      let succ = random_pointer_graph rng n in
      let r = Coloring.three_color ~n ~succ in
      r.Coloring.iterations <= Coloring.log_star n + 4)

let cv_long_path () =
  let n = 5000 in
  let succ = Array.init n (fun v -> if v = 0 then -1 else v - 1) in
  let r = Coloring.three_color ~n ~succ in
  Alcotest.(check bool) "proper" true (Coloring.is_proper ~n ~succ r.Coloring.colors);
  Alcotest.(check bool) "fast" true (r.Coloring.iterations <= 8)

let cv_mutual_pair () =
  let succ = [| 1; 0 |] in
  let r = Coloring.three_color ~n:2 ~succ in
  Alcotest.(check bool) "pair coloured differently" true
    (r.Coloring.colors.(0) <> r.Coloring.colors.(1))

let cv_rejects_long_cycle () =
  let succ = [| 1; 2; 0 |] in
  Alcotest.check_raises "3-cycle rejected"
    (Invalid_argument "Coloring.three_color: pointer cycle longer than 2")
    (fun () -> ignore (Coloring.three_color ~n:3 ~succ))

let log_star_values () =
  Alcotest.(check int) "log* 2" 1 (Coloring.log_star 2);
  Alcotest.(check int) "log* 16" 3 (Coloring.log_star 16);
  Alcotest.(check int) "log* 65536" 4 (Coloring.log_star 65536)

(* ---------- network decomposition ---------- *)

let nd_validates =
  qcheck ~count:20 "network decomposition validates" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let nd = Network_decomposition.decompose ~separation:2 g in
      Network_decomposition.validate g ~separation:2 nd = Ok ())

let nd_separation3_validates =
  qcheck ~count:15 "separation-3 decomposition validates" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let nd = Network_decomposition.decompose ~separation:3 g in
      Network_decomposition.validate g ~separation:3 nd = Ok ())

let nd_color_bound =
  qcheck "colour count is O(log n)" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:100 seed in
      let nd = Network_decomposition.decompose g in
      let bound =
        2 + int_of_float (Float.log2 (float_of_int (Graph.n g + 2)))
      in
      nd.Network_decomposition.n_colors <= bound)

let nd_radius_bound =
  qcheck "radius is O(separation log n)" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:100 seed in
      let sep = 3 in
      let nd = Network_decomposition.decompose ~separation:sep g in
      let bound =
        (sep - 1) * (2 + int_of_float (Float.log2 (float_of_int (Graph.n g + 2))))
      in
      Network_decomposition.max_cluster_radius nd <= bound)

let nd_structured () =
  List.iter
    (fun (name, g, sep) ->
      let nd = Network_decomposition.decompose ~separation:sep g in
      check_ok name (Network_decomposition.validate g ~separation:sep nd))
    [
      ("path", Generators.path 64, 2);
      ("cycle", Generators.cycle 33, 3);
      ("grid", Generators.grid 12 12, 2);
      ("grid sep3", Generators.grid 10 10, 3);
      ("complete", Generators.complete 20, 2);
      ("star", Generators.star 30, 3);
    ]

let nd_disconnected () =
  let g = Graph.of_edges ~n:8 [ (0, 1, 1); (2, 3, 1); (4, 5, 1) ] in
  let nd = Network_decomposition.decompose g in
  check_ok "disconnected" (Network_decomposition.validate g ~separation:2 nd)

let nd_rejects_separation_one () =
  Alcotest.check_raises "sep >= 2"
    (Invalid_argument "Network_decomposition: separation >= 2") (fun () ->
      ignore (Network_decomposition.decompose ~separation:1 (Generators.path 3)))

(* ---------- separated clusterings ---------- *)

let sc_validates =
  qcheck ~count:20 "separated clustering validates" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let rng = Rng.create seed in
      let sep = 1 + Rng.int rng 6 in
      let c = Separated_clustering.make ~separation:sep g in
      Separated_clustering.validate ~separation:sep g c = Ok ())

let sc_covers_half =
  qcheck "separated clustering covers half" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let c = Separated_clustering.make ~separation:5 g in
      2 * Separated_clustering.covered c >= Graph.n g)

let sc_with_active_mask =
  qcheck "clustering respects the active mask" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let rng = Rng.create seed in
      let active = Array.init (Graph.n g) (fun _ -> Rng.bernoulli rng 0.7) in
      let c = Separated_clustering.make ~active ~separation:3 g in
      Separated_clustering.validate ~active ~separation:3 g c = Ok ())

let sc_structured () =
  List.iter
    (fun (name, g, sep) ->
      let c = Separated_clustering.make ~separation:sep g in
      check_ok name (Separated_clustering.validate ~separation:sep g c);
      Alcotest.(check bool) (name ^ " covers half") true
        (2 * Separated_clustering.covered c >= Graph.n g))
    [
      ("path sep4", Generators.path 50, 4);
      ("grid sep5", Generators.grid 11 11, 5);
      ("cycle sep3", Generators.cycle 30, 3);
      ("torus sep6", Generators.torus 8 8, 6);
    ]

let sc_overlap_measured () =
  let g = Generators.grid 10 10 in
  let c = Separated_clustering.make ~separation:3 g in
  let xi = Separated_clustering.overlap g c in
  let avg = Separated_clustering.avg_overlap g c in
  Alcotest.(check bool) "xi nonneg" true (Array.for_all (fun x -> x >= 0) xi);
  Alcotest.(check bool) "avg consistent" true
    (abs_float (avg -. (float_of_int (Array.fold_left ( + ) 0 xi) /. 100.0)) < 1e-9)

(* ---------- ruling sets ---------- *)

let ruling_set_valid =
  qcheck "greedy ruling set is (alpha, alpha-1)-ruling" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let rng = Rng.create seed in
      let alpha = 2 + Rng.int rng 3 in
      let rs = Ruling_set.greedy g ~alpha in
      Ruling_set.is_ruling g ~alpha ~beta:(alpha - 1) rs)

let ruling_set_path () =
  let g = Generators.path 20 in
  let rs = Ruling_set.greedy g ~alpha:3 in
  Alcotest.(check bool) "valid" true (Ruling_set.is_ruling g ~alpha:3 ~beta:2 rs);
  Alcotest.(check bool) "packing tight on path" true (List.length rs >= 6)

let suite =
  [
    cv_proper;
    cv_iterations_log_star;
    case "cv: long path" cv_long_path;
    case "cv: mutual pair" cv_mutual_pair;
    case "cv: rejects long cycle" cv_rejects_long_cycle;
    case "log_star values" log_star_values;
    nd_validates;
    nd_separation3_validates;
    nd_color_bound;
    nd_radius_bound;
    case "nd: structured graphs" nd_structured;
    case "nd: disconnected" nd_disconnected;
    case "nd: rejects separation 1" nd_rejects_separation_one;
    sc_validates;
    sc_covers_half;
    sc_with_active_mask;
    case "sc: structured graphs" sc_structured;
    case "sc: overlap measured" sc_overlap_measured;
    ruling_set_valid;
    case "ruling set: path" ruling_set_path;
  ]
