open Ultraspan
open Helpers

(* The harary-backbone-plus-noise workload lives in Helpers.k_connected_graph
   (shared with the resilience suite). *)

(* ---------- Certificate basics ---------- *)

let certificate_basics () =
  let g = Generators.cycle 5 in
  let c = Certificate.of_eids g ~k:2 [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check int) "size" 5 (Certificate.size c);
  Alcotest.(check bool) "full graph certifies itself" true
    (Certificate.is_certificate g c);
  let broken = Certificate.of_eids g ~k:2 [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "missing edge drops 2-connectivity" false
    (Certificate.is_certificate g broken)

let certificate_union () =
  let g = Generators.cycle 4 in
  let a = Certificate.of_eids g ~k:1 [ 0; 1 ] in
  let b = Certificate.of_eids g ~k:1 [ 2; 3 ] in
  let u = Certificate.union a b in
  Alcotest.(check int) "union size" 4 (Certificate.size u)

let cut_property_detects_violation () =
  let g = Generators.cycle 6 in
  let full = Certificate.of_eids g ~k:2 (List.init 6 Fun.id) in
  Alcotest.(check bool) "full ok" true (Certificate.cut_property_exhaustive g full);
  let partial = Certificate.of_eids g ~k:2 [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check bool) "partial violates" false
    (Certificate.cut_property_exhaustive g partial)

(* ---------- Nagamochi–Ibaraki ---------- *)

let ni_forests_are_forests =
  qcheck ~count:15 "NI labels are forests" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let labels = Nagamochi_ibaraki.forests g in
      let max_label = Array.fold_left max 1 labels in
      let ok = ref true in
      for l = 1 to max_label do
        let eids = ref [] in
        Array.iteri (fun eid lab -> if lab = l then eids := eid :: !eids) labels;
        if not (Spanning_tree.is_forest g !eids) then ok := false
      done;
      !ok)

let ni_first_forest_spans =
  qcheck "NI forest 1 is a spanning forest" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let labels = Nagamochi_ibaraki.forests g in
      let eids = ref [] in
      Array.iteri (fun eid lab -> if lab = 1 then eids := eid :: !eids) labels;
      Spanning_tree.is_spanning_forest g !eids)

let ni_is_certificate =
  qcheck ~count:15 "NI certificate preserves connectivity" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 5 in
      let g = k_connected_graph ~n:40 ~k:(max 2 k) seed in
      let c = Nagamochi_ibaraki.certificate ~k g in
      Certificate.is_certificate g c
      && Certificate.size c <= k * (Graph.n g - 1))

let ni_cut_property_small =
  qcheck ~count:10 "NI strong cut property (exhaustive)" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 3 in
      let g = k_connected_graph ~n:12 ~k:3 seed in
      Certificate.cut_property_exhaustive g (Nagamochi_ibaraki.certificate ~k g))

(* ---------- Thurimella ---------- *)

let thurimella_is_certificate =
  qcheck ~count:15 "Thurimella certificate valid" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 5 in
      let g = k_connected_graph ~n:40 ~k:(max 2 k) seed in
      let c = Thurimella.certificate ~k g in
      Certificate.is_certificate g c
      && Certificate.size c <= k * (Graph.n g - 1))

let thurimella_cut_property_small =
  qcheck ~count:10 "Thurimella strong cut property" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 3 in
      let g = k_connected_graph ~n:12 ~k:3 seed in
      Certificate.cut_property_exhaustive g (Thurimella.certificate ~k g))

let thurimella_k1_is_forest () =
  let g = k_connected_graph ~n:30 ~k:3 7 in
  let c = Thurimella.certificate ~k:1 g in
  Alcotest.(check bool) "forest size" true (Certificate.size c <= Graph.n g - 1);
  Alcotest.(check bool) "spans" true
    (Connectivity.spans g c.Certificate.keep)

(* ---------- spanner packing (Theorem G.1) ---------- *)

let packing_is_certificate =
  qcheck ~count:10 "Thm G.1 certificate valid" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 4 in
      let g = k_connected_graph ~n:50 ~k:4 seed in
      let out = Spanner_packing.run ~k ~epsilon:0.5 g in
      Certificate.is_certificate g out.Spanner_packing.certificate)

let packing_size_bound =
  qcheck ~count:10 "Thm G.1 size <= kn(1+eps) + slack" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 4 in
      let epsilon = 0.25 +. Rng.float rng 0.5 in
      let g = k_connected_graph ~n:50 ~k:4 seed in
      let out = Spanner_packing.run ~k ~epsilon g in
      float_of_int (Certificate.size out.Spanner_packing.certificate)
      <= Spanner_packing.size_bound ~n:(Graph.n g) ~k ~epsilon +. 1.0)

let packing_cut_property_small =
  qcheck ~count:8 "Thm G.1 strong cut property (exhaustive)" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let k = 1 + Rng.int rng 3 in
      let g = k_connected_graph ~n:12 ~k:3 seed in
      let out = Spanner_packing.run ~k ~epsilon:0.5 g in
      Certificate.cut_property_exhaustive g out.Spanner_packing.certificate)

let packing_layers_disjoint_and_decreasing () =
  let g = k_connected_graph ~n:60 ~k:5 3 in
  let out = Spanner_packing.run ~k:5 ~epsilon:0.5 g in
  let total = List.fold_left ( + ) 0 out.Spanner_packing.layers in
  Alcotest.(check int) "layers partition the certificate" total
    (Certificate.size out.Spanner_packing.certificate)

let packing_deterministic () =
  let g = k_connected_graph ~n:40 ~k:3 11 in
  let a = Spanner_packing.run ~k:3 ~epsilon:0.5 g in
  let b = Spanner_packing.run ~k:3 ~epsilon:0.5 g in
  Alcotest.(check bool) "reproducible" true
    (a.Spanner_packing.certificate.Certificate.keep
    = b.Spanner_packing.certificate.Certificate.keep)

let packing_exhausts_small_graph () =
  (* k larger than the graph can support: certificate = whole graph *)
  let g = Generators.cycle 8 in
  let out = Spanner_packing.run ~k:5 ~epsilon:0.5 g in
  Alcotest.(check int) "whole graph" (Graph.m g)
    (Certificate.size out.Spanner_packing.certificate)

(* ---------- Karger split (Theorem 1.9) ---------- *)

let karger_is_certificate =
  qcheck ~count:8 "Thm 1.9 certificate valid" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 4 in
      let g = k_connected_graph ~n:50 ~k:4 seed in
      let out = Karger_split.run ~rng ~k ~epsilon:0.4 g in
      Certificate.is_certificate g out.Karger_split.certificate)

let karger_with_groups () =
  (* force Q > 1 with a small constant, on a high-k workload *)
  let n = 80 in
  let k = 24 in
  let g = Generators.harary ~k ~n in
  let rng = Rng.create 5 in
  let out = Karger_split.run ~c:0.05 ~rng ~k ~epsilon:0.45 g in
  Alcotest.(check bool) "multiple groups" true (out.Karger_split.groups > 1);
  Alcotest.(check bool) "still a certificate" true
    (Certificate.is_certificate g out.Karger_split.certificate)

let karger_size_reasonable =
  qcheck ~count:6 "Thm 1.9 size within bound" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 3 in
      let g = k_connected_graph ~n:50 ~k:3 seed in
      let out = Karger_split.run ~rng ~k ~epsilon:0.3 g in
      float_of_int (Certificate.size out.Karger_split.certificate)
      <= Float.max
           (Karger_split.size_bound ~n:(Graph.n g) ~k ~epsilon:0.3)
           (float_of_int (Graph.m g)))

(* ---------- cross-algorithm comparisons ---------- *)

let all_certify_hararys () =
  List.iter
    (fun (k, n) ->
      let g = Generators.harary ~k:(k + 1) ~n in
      let rng = Rng.create (k + n) in
      let cs =
        [
          ("NI", Nagamochi_ibaraki.certificate ~k g);
          ("Thu", Thurimella.certificate ~k g);
          ("Pack", (Spanner_packing.run ~k ~epsilon:0.5 g).Spanner_packing.certificate);
          ("Karger", (Karger_split.run ~rng ~k ~epsilon:0.4 g).Karger_split.certificate);
        ]
      in
      List.iter
        (fun (name, c) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s certifies harary %d,%d" name k n)
            true
            (Certificate.is_certificate g c))
        cs)
    [ (2, 20); (3, 25); (4, 30) ]

let non_connected_graph_certificates () =
  (* on a graph with lambda = 1, certificates must preserve lambda = 1 *)
  let g = Graph.of_edges ~n:7
      [ (0, 1, 1); (1, 2, 1); (2, 0, 1); (2, 3, 1); (3, 4, 1); (4, 5, 1); (5, 3, 1); (5, 6, 1) ]
  in
  List.iter
    (fun (name, c) ->
      Alcotest.(check bool) (name ^ " preserves bridges") true
        (Certificate.is_certificate g c))
    [
      ("NI", Nagamochi_ibaraki.certificate ~k:2 g);
      ("Thu", Thurimella.certificate ~k:2 g);
      ("Pack", (Spanner_packing.run ~k:2 ~epsilon:0.5 g).Spanner_packing.certificate);
    ]

let suite =
  [
    case "certificate: basics" certificate_basics;
    case "certificate: union" certificate_union;
    case "certificate: cut property detects" cut_property_detects_violation;
    ni_forests_are_forests;
    ni_first_forest_spans;
    ni_is_certificate;
    ni_cut_property_small;
    thurimella_is_certificate;
    thurimella_cut_property_small;
    case "thurimella: k=1 forest" thurimella_k1_is_forest;
    packing_is_certificate;
    packing_size_bound;
    packing_cut_property_small;
    case "packing: layers partition" packing_layers_disjoint_and_decreasing;
    case "packing: deterministic" packing_deterministic;
    case "packing: exhausts small graph" packing_exhausts_small_graph;
    karger_is_certificate;
    case "karger: multiple groups" karger_with_groups;
    karger_size_reasonable;
    case "cross: all certify hararys" all_certify_hararys;
    case "cross: bridges preserved" non_connected_graph_certificates;
  ]
