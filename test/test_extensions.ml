open Ultraspan
open Helpers

(* ---------- APSP ---------- *)

let apsp_agree =
  qcheck ~count:15 "floyd-warshall = per-vertex dijkstra" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:50 seed in
      Apsp.floyd_warshall g = Apsp.by_dijkstra g)

let apsp_symmetric =
  qcheck ~count:10 "APSP matrix symmetric with zero diagonal" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let d = Apsp.floyd_warshall g in
      let n = Graph.n g in
      let ok = ref true in
      for i = 0 to n - 1 do
        if d.(i).(i) <> 0 then ok := false;
        for j = 0 to n - 1 do
          if d.(i).(j) <> d.(j).(i) then ok := false
        done
      done;
      !ok)

let pair_stretch_sandwich =
  qcheck ~count:10 "true pair stretch <= edge-based stretch" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:40 seed in
      let keep = Array.make (Graph.m g) false in
      List.iter (fun e -> keep.(e) <- true) (Spanning_tree.kruskal_mst g);
      let exact = Apsp.exact_pair_stretch g keep in
      let edge_based = Stretch.max_edge_stretch g keep in
      exact <= edge_based +. 1e-9)

let apsp_diameter () =
  Alcotest.(check int) "path diameter" 9 (Apsp.diameter (Generators.path 10));
  Alcotest.(check int) "disconnected" Dijkstra.infinity
    (Apsp.diameter (Graph.of_edges ~n:3 [ (0, 1, 5) ]))

(* ---------- MPX low-diameter decomposition ---------- *)

let mpx_validates =
  qcheck ~count:15 "MPX decomposition validates" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let d = Mpx.decompose ~rng:(Rng.create seed) ~beta:0.4 g in
      Mpx.validate g d = Ok ())

let mpx_radius_bound () =
  (* radius O(log n / beta) w.h.p.: check a generous envelope over seeds *)
  let g = Generators.grid 20 20 in
  for seed = 1 to 10 do
    let beta = 0.3 in
    let d = Mpx.decompose ~rng:(Rng.create seed) ~beta g in
    let bound =
      int_of_float (4.0 *. Float.log2 (float_of_int (Graph.n g)) /. beta)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d radius" seed)
      true
      (Mpx.max_radius g d <= bound)
  done

let mpx_cut_fraction () =
  (* expected cut fraction ~ beta: across seeds the average should be well
     below 3*beta on a bounded-degree graph *)
  let g = Generators.torus 20 20 in
  let beta = 0.2 in
  let fracs =
    Array.init 10 (fun s ->
        let d = Mpx.decompose ~rng:(Rng.create (s + 1)) ~beta g in
        float_of_int (Mpx.cut_edges g d) /. float_of_int (Graph.m g))
  in
  Alcotest.(check bool) "cut fraction" true (Stats.mean fracs <= 3.0 *. beta)

let mpx_beta_tradeoff () =
  (* larger beta -> more clusters *)
  let g = Generators.grid 25 25 in
  let small = Mpx.decompose ~rng:(Rng.create 4) ~beta:0.05 g in
  let large = Mpx.decompose ~rng:(Rng.create 4) ~beta:0.8 g in
  Alcotest.(check bool) "monotone cluster count" true
    (Mpx.n_clusters small < Mpx.n_clusters large)

(* ---------- distributed Baswana–Sen ---------- *)

let bsd_valid =
  qcheck ~count:15 "CONGEST BS: spanning + stretch <= 2k-1" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:120 seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 3 in
      let out = Bs_distributed.run ~seed ~k g in
      Spanner.is_spanning g out.Bs_distributed.spanner
      && Stretch.max_edge_stretch g out.Bs_distributed.spanner.Spanner.keep
         <= float_of_int ((2 * k) - 1) +. 1e-9)

let bsd_round_complexity =
  qcheck ~count:10 "CONGEST BS runs in 2k + O(1) real rounds" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:100 seed in
      let k = 3 in
      let out = Bs_distributed.run ~seed ~k g in
      out.Bs_distributed.network_stats.Network.rounds <= (2 * k) + 2)

let bsd_message_size =
  qcheck ~count:10 "CONGEST BS messages are O(log n) bits" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:100 seed in
      let out = Bs_distributed.run ~seed ~k:3 g in
      out.Bs_distributed.network_stats.Network.max_words <= 2)

let bsd_reproducible () =
  let g = graph_of_seed ~n_max:100 3 in
  let a = Bs_distributed.run ~seed:9 ~k:3 g in
  let b = Bs_distributed.run ~seed:9 ~k:3 g in
  Alcotest.(check bool) "same seed, same spanner" true
    (a.Bs_distributed.spanner.Spanner.keep = b.Bs_distributed.spanner.Spanner.keep)

let bsd_unweighted =
  qcheck ~count:10 "CONGEST BS on unweighted graphs" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:120 seed in
      let out = Bs_distributed.run ~seed ~k:4 g in
      Spanner.is_spanning g out.Bs_distributed.spanner
      && Stretch.max_edge_stretch g out.Bs_distributed.spanner.Spanner.keep
         <= 7.0 +. 1e-9)

(* ---------- Luby MIS ---------- *)

let mis_check g mis =
  let indep = ref true and maximal = ref true in
  Graph.iter_edges g (fun e ->
      if mis.(e.Graph.u) && mis.(e.Graph.v) then indep := false);
  for v = 0 to Graph.n g - 1 do
    if not mis.(v) then begin
      let covered = ref false in
      Graph.iter_adj g v (fun u _ -> if mis.(u) then covered := true);
      if not !covered then maximal := false
    end
  done;
  (!indep, !maximal)

let luby_valid =
  qcheck ~count:20 "Luby MIS is independent and maximal" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:150 seed in
      let mis, _ = Programs.luby_mis ~seed g in
      mis_check g mis = (true, true))

let luby_round_bound =
  qcheck ~count:10 "Luby MIS finishes in O(log n) phases" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:200 seed in
      let _, stats = Programs.luby_mis ~seed g in
      stats.Network.rounds
      <= 3 * (4 + (4 * Coloring.log_star 0) + int_of_float (4.0 *. Float.log2 (float_of_int (Graph.n g + 2)))))

let luby_structured () =
  List.iter
    (fun (name, g) ->
      let mis, _ = Programs.luby_mis ~seed:7 g in
      Alcotest.(check (pair bool bool)) name (true, true) (mis_check g mis))
    [
      ("path", Generators.path 40);
      ("star", Generators.star 20);
      ("complete", Generators.complete 15);
      ("grid", Generators.grid 9 9);
    ]

let luby_complete_graph_single () =
  let g = Generators.complete 20 in
  let mis, _ = Programs.luby_mis ~seed:1 g in
  let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mis in
  Alcotest.(check int) "exactly one vertex" 1 count

(* ---------- k-ECSS ---------- *)

let kecss_ratio =
  qcheck ~count:8 "k-ECSS approximation within 2(1+eps)" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 3 in
      let g = Generators.harary ~k ~n:(30 + Rng.int rng 30) in
      let out = Kecss.approximate ~epsilon:0.25 ~k g in
      out.Kecss.connectivity_checked
      && out.Kecss.ratio <= (2.0 *. 1.25) +. 0.3)

let kecss_rejects_underconnected () =
  let g = Generators.path 10 in
  Alcotest.check_raises "not 3-connected"
    (Invalid_argument "Kecss.approximate: input is not k-edge-connected")
    (fun () -> ignore (Kecss.approximate ~k:3 g))

let kecss_exact_connectivity () =
  (* the headline vs Parter: exact k, not k(1-eps) *)
  let g = Generators.harary ~k:5 ~n:40 in
  let out = Kecss.approximate ~epsilon:0.5 ~k:5 g in
  let h = Certificate.subgraph g out.Kecss.certificate in
  Alcotest.(check bool) "exact k-connectivity" true
    (Maxflow.is_k_edge_connected h 5)

(* ---------- edge cases across the library ---------- *)

let zero_weight_edges () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 0); (1, 2, 0); (2, 3, 5); (0, 3, 9) ] in
  let d = Dijkstra.distances g 0 in
  Alcotest.(check int) "zero-weight path" 0 d.(2);
  Alcotest.(check int) "through zero" 5 d.(3);
  let rng = Rng.create 1 in
  let out = Baswana_sen.run ~rng ~k:2 g in
  Alcotest.(check bool) "BS tolerates zero weights" true
    (Spanner.is_spanning g out.Baswana_sen.spanner)

let equal_weight_ties =
  qcheck ~count:10 "all-equal weights exercise tie-breaking" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:80 seed in
      let g7 = Graph.with_weights g (fun _ -> 7) in
      let p, _ = Stretch_friendly.partition ~t:4 g7 in
      let out = Bs_derand.run ~k:3 g7 in
      Partition.validate p = Ok ()
      && Stretch_friendly.is_stretch_friendly g7 p
      && Spanner.is_spanning g7 out.Bs_derand.spanner)

let single_vertex_and_empty () =
  let g1 = Graph.empty 1 in
  let out = Linear_size.run g1 in
  Alcotest.(check int) "single vertex spanner" 0 (Spanner.size out.Linear_size.spanner);
  let g0 = Graph.empty 0 in
  Alcotest.(check int) "empty graph m" 0 (Graph.m g0);
  let p, _ = Stretch_friendly.partition ~t:1 g1 in
  Alcotest.(check int) "single vertex partition" 1 (Partition.count p)

let two_vertices () =
  let g = Graph.of_edges ~n:2 [ (0, 1, 3) ] in
  let out = Ultra_sparse.run ~t:2 g in
  Alcotest.(check int) "keeps the edge" 1 (Spanner.size out.Ultra_sparse.spanner);
  let c = Nagamochi_ibaraki.certificate ~k:1 g in
  Alcotest.(check int) "certificate keeps the edge" 1 (Certificate.size c)

let star_graph_spanners () =
  (* stars force the high-degree code paths *)
  let g = Generators.star 200 in
  let out = Bs_derand.run ~k:3 g in
  Alcotest.(check int) "star spanner = star" 199
    (Spanner.size out.Bs_derand.spanner);
  let ls = Linear_size.run g in
  Alcotest.(check int) "linear size star" 199 (Spanner.size ls.Linear_size.spanner)

let suite =
  [
    apsp_agree;
    apsp_symmetric;
    pair_stretch_sandwich;
    case "apsp: diameter" apsp_diameter;
    mpx_validates;
    case "mpx: radius bound" mpx_radius_bound;
    case "mpx: cut fraction" mpx_cut_fraction;
    case "mpx: beta tradeoff" mpx_beta_tradeoff;
    bsd_valid;
    bsd_round_complexity;
    bsd_message_size;
    case "congest bs: reproducible" bsd_reproducible;
    bsd_unweighted;
    luby_valid;
    luby_round_bound;
    case "luby: structured graphs" luby_structured;
    case "luby: complete graph" luby_complete_graph_single;
    kecss_ratio;
    case "kecss: rejects underconnected" kecss_rejects_underconnected;
    case "kecss: exact connectivity" kecss_exact_connectivity;
    case "edge: zero weights" zero_weight_edges;
    equal_weight_ties;
    case "edge: tiny graphs" single_vertex_and_empty;
    case "edge: two vertices" two_vertices;
    case "edge: star high-degree paths" star_graph_spanners;
  ]

(* ---------- bridges / girth / lightness ---------- *)

let bridges_known () =
  (* two triangles joined by a bridge *)
  let g =
    Graph.of_edges ~n:6
      [ (0, 1, 1); (1, 2, 1); (2, 0, 1); (3, 4, 1); (4, 5, 1); (5, 3, 1); (2, 3, 1) ]
  in
  let bs = Bridges.bridges g in
  Alcotest.(check int) "one bridge" 1 (List.length bs);
  let eid = List.hd bs in
  Alcotest.(check (pair int int)) "the 2-3 edge" (2, 3) (Graph.endpoints g eid);
  let _, count = Bridges.two_edge_components g in
  Alcotest.(check int) "two 2ecc components" 2 count

let bridges_tree_all () =
  let g = Generators.binary_tree 31 in
  Alcotest.(check int) "every tree edge is a bridge" 30
    (List.length (Bridges.bridges g))

let bridges_cycle_none () =
  Alcotest.(check (list int)) "cycle has no bridges" []
    (Bridges.bridges (Generators.cycle 12))

let bridges_match_maxflow =
  qcheck ~count:15 "2-edge-connectivity: tarjan = maxflow" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      Bridges.is_2_edge_connected g = Maxflow.is_k_edge_connected g 2)

let bridges_vs_connectivity =
  qcheck ~count:10 "removing a bridge disconnects" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      List.for_all
        (fun eid ->
          let keep = Array.init (Graph.m g) (fun i -> i <> eid) in
          not (Connectivity.spans g keep))
        (Bridges.bridges g))

let girth_known () =
  Alcotest.(check int) "C5" 5 (Cycles.girth (Generators.cycle 5));
  Alcotest.(check int) "K4" 3 (Cycles.girth (Generators.complete 4));
  Alcotest.(check int) "grid" 4 (Cycles.girth (Generators.grid 4 4));
  Alcotest.(check int) "tree" max_int (Cycles.girth (Generators.binary_tree 15));
  Alcotest.(check int) "hypercube" 4 (Cycles.girth (Generators.hypercube 4));
  Alcotest.(check int) "petersen-ish torus" 3 (Cycles.girth (Generators.torus 3 3))

let greedy_girth_direct =
  qcheck ~count:10 "greedy (2k-1)-spanner has girth > 2k (direct)" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 2 in
      let sp = Greedy.run ~k g in
      let h = Graph.sub_by_eids g sp.Spanner.keep in
      Cycles.girth h > 2 * k)

let lightness_mst_is_one () =
  let g = graph_of_seed 5 in
  let sp = Spanner.of_eids g (Spanning_tree.kruskal_mst g) in
  Alcotest.(check (float 1e-9)) "MST lightness" 1.0 (Spanner.lightness g sp)

let lightness_monotone =
  qcheck ~count:10 "lightness >= 1 for spanning subgraphs" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let out = Ultra_sparse.run ~t:4 g in
      Spanner.lightness g out.Ultra_sparse.spanner >= 1.0 -. 1e-9)

let suite =
  suite
  @ [
      case "bridges: known graph" bridges_known;
      case "bridges: tree" bridges_tree_all;
      case "bridges: cycle" bridges_cycle_none;
      bridges_match_maxflow;
      bridges_vs_connectivity;
      case "girth: known values" girth_known;
      greedy_girth_direct;
      case "lightness: mst" lightness_mst_is_one;
      lightness_monotone;
    ]

(* ---------- distributed Lemma 4.1 ---------- *)

let sfd_matches_centralized =
  qcheck ~count:12 "distributed Lemma 4.1 = centralized, bit for bit"
    seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let rng = Rng.create seed in
      let t = max 1 (min (2 + Rng.int rng 12) (Graph.n g / 2)) in
      let p1, _ = Stretch_friendly.partition ~t g in
      let out = Sf_distributed.partition ~t g in
      let p2 = out.Sf_distributed.partition in
      p1.Partition.cluster_of = p2.Partition.cluster_of
      && p1.Partition.parent = p2.Partition.parent
      && p1.Partition.parent_eid = p2.Partition.parent_eid
      && p1.Partition.roots = p2.Partition.roots)

let sfd_invariants =
  qcheck ~count:10 "distributed Lemma 4.1 invariants hold" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:120 seed in
      let t = max 1 (min 8 (Graph.n g / 2)) in
      let out = Sf_distributed.partition ~t g in
      let p = out.Sf_distributed.partition in
      Partition.validate p = Ok ()
      && Stretch_friendly.is_stretch_friendly g p
      && Array.for_all (fun s -> s >= t) (Partition.sizes p))

let sfd_real_rounds_linear_in_t =
  qcheck ~count:8 "distributed Lemma 4.1 measured rounds O(t log* n)"
    seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let rng = Rng.create seed in
      let t = max 2 (min (2 + Rng.int rng 15) (Graph.n g / 2)) in
      let out = Sf_distributed.partition ~t g in
      out.Sf_distributed.real_rounds
      <= 60 * t * (Coloring.log_star (Graph.n g) + 8))

let suite =
  suite
  @ [ sfd_matches_centralized; sfd_invariants; sfd_real_rounds_linear_in_t ]

(* ---------- final coverage batch ---------- *)

let sfd_structured () =
  List.iter
    (fun (name, g, t) ->
      let p1, _ = Stretch_friendly.partition ~t g in
      let out = Sf_distributed.partition ~t g in
      Alcotest.(check bool) (name ^ " identical") true
        (p1.Partition.cluster_of = out.Sf_distributed.partition.Partition.cluster_of))
    [
      ("grid", Graph.with_unit_weights (Generators.grid 12 12), 8);
      ("caterpillar", Generators.caterpillar 30 3, 8);
      ("cycle", Generators.cycle 64, 16);
      ("weighted torus",
       Generators.randomize_weights ~rng:(Rng.create 3) ~lo:1 ~hi:50
         (Generators.torus 8 8), 4);
    ]

let cluster_broadcast_deep_path () =
  (* one cluster spanning a long path: wave cost ~ radius, still correct *)
  let g = Generators.path 300 in
  let p = Partition.of_cluster_of g (Array.make 300 0) in
  let part = Cluster_programs.of_partition p in
  let got, stats = Cluster_programs.broadcast_from_roots g part ~values:[| 42 |] in
  Alcotest.(check bool) "all received" true (Array.for_all (fun x -> x = 42) got);
  Alcotest.(check bool) "rounds ~ path length" true
    (stats.Network.rounds <= 300 + 3 && stats.Network.rounds >= 250)

let duplicate_message_rejected () =
  let g = Generators.path 2 in
  let program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun _ ~round ~me st _ ->
          if round = 0 && me = 0 then
            {
              Network.state = st;
              out = [ (1, [| 1 |]); (1, [| 2 |]) ];
              halt = true;
            }
          else { Network.state = st; out = []; halt = true });
    }
  in
  match Network.run g program with
  | exception Network.Duplicate_message { sender = 0; target = 1 } -> ()
  | _ -> Alcotest.fail "duplicate per-round message not rejected"

let en_size_statistical () =
  (* with k = ceil(log2 n), EN's size should be O(n) on average *)
  let rng0 = Rng.create 12 in
  let g = Generators.connected_gnp ~rng:rng0 ~n:500 ~avg_degree:20.0 in
  let k = 9 in
  let sizes =
    Array.init 8 (fun i ->
        let rng = Rng.create (100 + i) in
        float_of_int (Spanner.size (Elkin_neiman.run ~rng ~k g).Elkin_neiman.spanner))
  in
  Alcotest.(check bool) "mean O(n)" true (Stats.mean sizes <= 10.0 *. 500.0)

let ruling_set_alpha1 () =
  let g = Generators.path 10 in
  let rs = Ruling_set.greedy g ~alpha:1 in
  Alcotest.(check int) "alpha=1 takes everyone" 10 (List.length rs)

let graph_pp_smoke () =
  let g = Generators.path 4 in
  let s = Format.asprintf "%a" Graph.pp g in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions n" true (contains "n=4");
  Alcotest.(check bool) "mentions m" true (contains "m=3")

let suite =
  suite
  @ [
      case "sfd: structured graphs" sfd_structured;
      case "cluster wave: deep path" cluster_broadcast_deep_path;
      case "network: duplicate message" duplicate_message_rejected;
      slow_case "en: size statistical" en_size_statistical;
      case "ruling set: alpha 1" ruling_set_alpha1;
      case "graph: pp smoke" graph_pp_smoke;
    ]
