open Ultraspan
open Helpers

(* ---------- exhaustive small cases (ground truth by hand) ---------- *)

let exhaustive_cycle () =
  (* cycle 6, k=2: failure sets are the empty set and the 6 singletons *)
  let g = Generators.cycle 6 in
  let full = Certificate.of_eids g ~k:2 (List.init 6 Fun.id) in
  let r = Resilience.check_certificate g full in
  Alcotest.(check bool) "exhaustive" true r.Resilience.exhaustive;
  Alcotest.(check int) "trials = 1 + 6" 7 r.Resilience.trials;
  Alcotest.(check int) "no violations" 0 r.Resilience.violations;
  Alcotest.(check bool) "no worst" true (r.Resilience.worst = None)

let exhaustive_catches_broken_certificate () =
  (* dropping one cycle edge from the "certificate" leaves a path: the
     failure of any surviving path edge splits H but not G *)
  let g = Generators.cycle 6 in
  let broken = Certificate.of_eids g ~k:2 [ 0; 1; 2; 3; 4 ] in
  let r = Resilience.check_certificate g broken in
  Alcotest.(check bool) "exhaustive" true r.Resilience.exhaustive;
  Alcotest.(check int) "five singleton violations" 5 r.Resilience.violations;
  (match r.Resilience.worst with
  | None -> Alcotest.fail "expected a worst violation"
  | Some v ->
      Alcotest.(check int) "|F| = 1" 1 (List.length v.Resilience.failed);
      Alcotest.(check int) "G stays whole" 1 v.Resilience.components_g;
      Alcotest.(check int) "H splits in two" 2 v.Resilience.components_h);
  Alcotest.(check bool) "not resilient" false (Resilience.is_resilient g broken)

let k1_only_empty_set () =
  (* k=1: the only admissible failure set is empty, so any spanning
     subgraph passes *)
  let g = Generators.cycle 5 in
  let tree = Certificate.of_eids g ~k:1 [ 0; 1; 2; 3 ] in
  let r = Resilience.check_certificate g tree in
  Alcotest.(check int) "one trial" 1 r.Resilience.trials;
  Alcotest.(check bool) "exhaustive" true r.Resilience.exhaustive;
  Alcotest.(check int) "no violations" 0 r.Resilience.violations

let sampling_respects_budget () =
  (* harary k=4 on 40 vertices: C(80, <=3) blows the budget, so exactly
     [budget] sets are sampled *)
  let g = Generators.harary ~k:4 ~n:40 in
  let c = Nagamochi_ibaraki.certificate ~k:4 g in
  let r = Resilience.check_certificate ~budget:97 g c in
  Alcotest.(check bool) "sampled" false r.Resilience.exhaustive;
  Alcotest.(check int) "budget trials" 97 r.Resilience.trials;
  Alcotest.(check int) "still resilient" 0 r.Resilience.violations

let report_is_deterministic () =
  let g = k_connected_graph ~n:30 ~k:3 42 in
  let c = Thurimella.certificate ~k:3 g in
  let run () = Resilience.check_certificate ~rng:(Rng.create 9) ~budget:150 g c in
  Alcotest.(check bool) "same rng seed, same report" true (run () = run ())

(* ---------- every construction tolerates |F| <= k-1 (satellite c) ---------- *)

let construction_resilient name build =
  qcheck ~count:8 (name ^ " certificate survives |F| <= k-1 failures")
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 3 in
      let g = k_connected_graph ~n:28 ~k seed in
      Resilience.is_resilient ~rng ~budget:60 g (build ~k g))

let thurimella_resilient =
  construction_resilient "thurimella" (fun ~k g -> Thurimella.certificate ~k g)

let ni_resilient =
  construction_resilient "nagamochi-ibaraki" (fun ~k g ->
      Nagamochi_ibaraki.certificate ~k g)

let kecss_resilient =
  construction_resilient "kECSS" (fun ~k g ->
      (Kecss.approximate ~epsilon:0.5 ~k g).Kecss.certificate)

let packing_resilient =
  construction_resilient "spanner-packing" (fun ~k g ->
      (Spanner_packing.run ~k ~epsilon:0.5 g).Spanner_packing.certificate)

(* The cut property implies the failure-set property; the harness must
   never contradict the exhaustive cut check on graphs small enough to
   afford both. *)
let harness_agrees_with_cut_property =
  qcheck ~count:10 "cut property ==> failure-set property" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 2 in
      let g = k_connected_graph ~n:12 ~k:3 seed in
      let c = Thurimella.certificate ~k g in
      (not (Certificate.cut_property_exhaustive g c))
      || Resilience.is_resilient ~rng ~budget:5000 g c)

(* ---------- spanners under failures ---------- *)

let full_graph_spanner_never_degrades =
  qcheck ~count:10 "full graph as spanner: stretch 1.0 under any failures"
    seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:40 seed in
      let keep = Array.make (Graph.m g) true in
      let rng = Rng.create seed in
      let failures = min 3 (Graph.m g) in
      let r = Resilience.check_spanner ~rng ~trials:8 ~failures g keep in
      r.Resilience.baseline = 1.0
      && r.Resilience.disconnected = 0
      && r.Resilience.worst_stretch = 1.0)

let spanner_zero_failures_is_baseline () =
  let g = k_connected_graph ~n:30 ~k:3 7 in
  let s = Baswana_sen.run ~rng:(Rng.create 3) ~k:2 g in
  let keep = s.Baswana_sen.spanner.Spanner.keep in
  let r = Resilience.check_spanner ~trials:4 ~failures:0 g keep in
  Alcotest.(check (float 1e-9)) "worst = baseline" r.Resilience.baseline
    r.Resilience.worst_stretch;
  Alcotest.(check int) "nothing disconnects" 0 r.Resilience.disconnected

let spanner_rejects_bad_mask () =
  let g = Generators.cycle 5 in
  Alcotest.check_raises "mask length"
    (Invalid_argument "Resilience.check_spanner: mask length mismatch")
    (fun () ->
      ignore (Resilience.check_spanner ~trials:1 ~failures:1 g [| true |]))

let suite =
  [
    case "resilience: exhaustive cycle" exhaustive_cycle;
    case "resilience: catches broken certificate"
      exhaustive_catches_broken_certificate;
    case "resilience: k=1 trivial" k1_only_empty_set;
    case "resilience: sampling budget" sampling_respects_budget;
    case "resilience: deterministic report" report_is_deterministic;
    thurimella_resilient;
    ni_resilient;
    kecss_resilient;
    packing_resilient;
    harness_agrees_with_cut_property;
    full_graph_spanner_never_degrades;
    case "resilience: spanner |F|=0 = baseline" spanner_zero_failures_is_baseline;
    case "resilience: spanner bad mask" spanner_rejects_bad_mask;
  ]
