open Ultraspan
open Helpers

let stretch_of g (sp : Spanner.t) = Stretch.max_edge_stretch g sp.Spanner.keep

(* ---------- Spanner basics ---------- *)

let spanner_of_eids () =
  let g = Generators.path 5 in
  let sp = Spanner.of_eids g [ 0; 2 ] in
  Alcotest.(check int) "size" 2 (Spanner.size sp);
  Alcotest.(check (list int)) "eids" [ 0; 2 ] (Spanner.eids sp);
  Alcotest.(check bool) "mem" true (Spanner.mem sp 2);
  Alcotest.(check bool) "not spanning" false (Spanner.is_spanning g sp)

let spanner_union () =
  let g = Generators.path 4 in
  let a = Spanner.of_eids g [ 0 ] and b = Spanner.of_eids g [ 1; 2 ] in
  let u = Spanner.union a b in
  Alcotest.(check int) "union size" 3 (Spanner.size u);
  Alcotest.(check bool) "spanning" true (Spanner.is_spanning g u)

let spanner_validate () =
  let g = Generators.cycle 6 in
  let all = Spanner.of_eids g (List.init (Graph.m g) Fun.id) in
  check_ok "full graph validates" (Spanner.validate g all ~alpha:1.0);
  let most = Spanner.of_eids g [ 0; 1; 2; 3; 4 ] in
  check_ok "cycle minus edge at alpha 5" (Spanner.validate g most ~alpha:5.0);
  (match Spanner.validate g most ~alpha:2.0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "stretch 5 should fail at alpha 2");
  match Spanner.validate g (Spanner.of_eids g [ 0 ]) ~alpha:10.0 with
  | Error "not spanning" -> ()
  | _ -> Alcotest.fail "expected not spanning"

(* ---------- Baswana–Sen randomized ---------- *)

let bs_spanning_and_stretch =
  qcheck ~count:25 "BS: spanning with stretch <= 2k-1" seed_gen (fun seed ->
      let g = graph_of_seed seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 4 in
      let out = Baswana_sen.run ~rng ~k g in
      Spanner.is_spanning g out.Baswana_sen.spanner
      && stretch_of g out.Baswana_sen.spanner
         <= float_of_int ((2 * k) - 1) +. 1e-9)

let bs_unweighted =
  qcheck ~count:20 "BS unweighted: stretch <= 2k-1" seed_gen (fun seed ->
      let g = unit_graph_of_seed seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 4 in
      let out = Baswana_sen.run ~rng ~k g in
      Spanner.is_spanning g out.Baswana_sen.spanner
      && stretch_of g out.Baswana_sen.spanner
         <= float_of_int ((2 * k) - 1) +. 1e-9)

let bs_all_die () =
  let rng = Rng.create 3 in
  let g = graph_of_seed 17 in
  let out = Baswana_sen.run ~rng ~k:3 g in
  let total_died =
    List.fold_left (fun a s -> a + s.Bs_core.died) 0 out.Baswana_sen.per_iteration
  in
  Alcotest.(check int) "every vertex dies" (Graph.n g) total_died

let bs_size_statistical () =
  (* mean size over seeds stays within the analytical bound *)
  let rng0 = Rng.create 77 in
  let g =
    Generators.weighted_connected_gnp ~rng:rng0 ~n:300 ~avg_degree:30.0
      ~max_w:1000
  in
  let k = 3 in
  let sizes =
    List.init 10 (fun i ->
        let rng = Rng.create (1000 + i) in
        float_of_int (Spanner.size (Baswana_sen.run ~rng ~k g).Baswana_sen.spanner))
  in
  let mean = Stats.mean (Array.of_list sizes) in
  let bound = Baswana_sen.size_bound ~n:(Graph.n g) ~k ~weighted:true in
  Alcotest.(check bool) "mean within bound" true (mean <= bound)

let bs_k1_gives_whole_graph () =
  let g = graph_of_seed 5 in
  let rng = Rng.create 1 in
  let out = Baswana_sen.run ~rng ~k:1 g in
  (* k = 1: single finishing iteration; stretch must be 1, i.e. every edge
     kept (all clusters are singletons and every edge is a minimum) *)
  Alcotest.(check int) "all edges" (Graph.m g) (Spanner.size out.Baswana_sen.spanner)

let bs_handles_disconnected () =
  let g = Graph.of_edges ~n:6 [ (0, 1, 2); (1, 2, 3); (3, 4, 1); (4, 5, 9) ] in
  let rng = Rng.create 2 in
  let out = Baswana_sen.run ~rng ~k:2 g in
  Alcotest.(check bool) "spans components" true
    (Spanner.is_spanning g out.Baswana_sen.spanner)

(* ---------- Bs_core invariants ---------- *)

let bs_core_partition_valid_through_iterations =
  qcheck ~count:15 "BS state keeps a valid partition" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let rng = Rng.create seed in
      let state = Bs_core.create g in
      let ok = ref true in
      for i = 1 to 3 do
        let sampled =
          Array.init (Bs_core.n_clusters state) (fun _ -> Rng.bernoulli rng 0.3)
        in
        ignore (Bs_core.iteration state ~sampled);
        let p = Bs_core.partition state in
        (match Partition.validate p with Ok () -> () | Error _ -> ok := false);
        if Partition.max_radius p > i then ok := false
      done;
      !ok)

let bs_core_cluster_trees_in_spanner =
  qcheck ~count:15 "cluster tree edges are spanner edges" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let rng = Rng.create seed in
      let state = Bs_core.create g in
      let ok = ref true in
      for _ = 1 to 3 do
        let sampled =
          Array.init (Bs_core.n_clusters state) (fun _ -> Rng.bernoulli rng 0.4)
        in
        ignore (Bs_core.iteration state ~sampled);
        let p = Bs_core.partition state in
        let mask = Bs_core.spanner_mask state in
        List.iter
          (fun eid -> if not mask.(eid) then ok := false)
          (Partition.tree_edges p)
      done;
      !ok)

let bs_core_stretch_friendly_clusters =
  qcheck ~count:15 "BS clusterings are stretch-friendly (Lemma 3.1)"
    seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:70 seed in
      let rng = Rng.create seed in
      let state = Bs_core.create g in
      let ok = ref true in
      for _ = 1 to 3 do
        let sampled =
          Array.init (Bs_core.n_clusters state) (fun _ -> Rng.bernoulli rng 0.4)
        in
        ignore (Bs_core.iteration state ~sampled);
        (* Lemma 3.1's boundary/inside properties hold w.r.t. the ALIVE
           edges (dead edges are excluded from the claim). *)
        if not (Stretch_friendly.is_stretch_friendly_alive g state) then
          ok := false
      done;
      !ok)

(* ---------- derandomized Baswana–Sen ---------- *)

let derand_deterministic =
  qcheck ~count:10 "derandomized BS is reproducible" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let a = Bs_derand.run ~k:3 g in
      let b = Bs_derand.run ~k:3 g in
      a.Bs_derand.spanner.Spanner.keep = b.Bs_derand.spanner.Spanner.keep)

let derand_spanning_and_stretch =
  qcheck ~count:15 "derand BS: spanning, stretch <= 2k-1" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:100 seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 3 in
      let out = Bs_derand.run ~k g in
      Spanner.is_spanning g out.Bs_derand.spanner
      && stretch_of g out.Bs_derand.spanner <= float_of_int ((2 * k) - 1) +. 1e-9)

let derand_unweighted =
  qcheck ~count:15 "derand BS unweighted: spanning, stretch" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:100 seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 3 in
      let out = Bs_derand.run ~k g in
      Spanner.is_spanning g out.Bs_derand.spanner
      && stretch_of g out.Bs_derand.spanner <= float_of_int ((2 * k) - 1) +. 1e-9)

let derand_guarantees_hold =
  qcheck ~count:15 "derand BS guarantees (Lemma 3.3) asserted" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:100 seed in
      let out = Bs_derand.run ~k:4 g in
      List.for_all
        (fun gu ->
          gu.Bs_derand.clusters <= gu.Bs_derand.cluster_bound
          && float_of_int gu.Bs_derand.edges_added
             <= gu.Bs_derand.edge_bound +. 1.0
          && gu.Bs_derand.high_degree_died = 0)
        out.Bs_derand.guarantees)

let derand_size_bound =
  qcheck ~count:10 "derand BS size within deterministic bound" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:120 seed in
      let k = 3 in
      let out = Bs_derand.run ~k g in
      float_of_int (Spanner.size out.Bs_derand.spanner)
      <= Bs_derand.size_bound ~n:(Graph.n g) ~k ~weighted:true)

let derand_nd_ordering_works () =
  let g = graph_of_seed ~n_max:60 11 in
  let out = Bs_derand.run ~ordering:Bs_derand.Network_decomposition ~k:3 g in
  Alcotest.(check bool) "spanning" true (Spanner.is_spanning g out.Bs_derand.spanner);
  Alcotest.(check bool) "stretch" true (stretch_of g out.Bs_derand.spanner <= 5.0);
  Alcotest.(check bool) "guarantees" true
    (List.for_all
       (fun gu -> gu.Bs_derand.high_degree_died = 0)
       out.Bs_derand.guarantees)

let derand_rejects_bad_p () =
  let g = Generators.path 4 in
  let state = Bs_core.create g in
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Bs_derand.simulate: p in (0,1)") (fun () ->
      ignore
        (Bs_derand.simulate ~state ~p:1.5 ~iters:1 ~rounds:(Rounds.create ()) ()))

(* ---------- stretch-friendly partitions (Lemma 4.1) ---------- *)

let sf_all_invariants =
  qcheck ~count:25 "Lemma 4.1 invariants" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let rng = Rng.create seed in
      (* keep t below n/2 so no component is smaller than t (the exempt
         case, tested separately) *)
      let t = max 1 (min (1 + Rng.int rng 16) (Graph.n g / 2)) in
      let iterations =
        if t = 1 then 0 else int_of_float (ceil (Float.log2 (float_of_int t)))
      in
      let p, _ = Stretch_friendly.partition ~t g in
      Partition.validate p = Ok ()
      && Partition.is_partition p
      && Partition.count p <= max 1 (Graph.n g / t)
      && Array.for_all (fun s -> s >= t) (Partition.sizes p)
      (* radius < 3·2^ceil(log2 t), i.e. < 6t in general and < 3t at
         powers of two — the paper's Lemma 4.1 bound *)
      && Partition.max_radius p < 3 * (1 lsl iterations)
      && Stretch_friendly.is_stretch_friendly g p)

let sf_unweighted =
  qcheck ~count:15 "Lemma 4.1 on unweighted graphs" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:150 seed in
      let t = max 1 (min 8 (Graph.n g / 2)) in
      let p, _ = Stretch_friendly.partition ~t g in
      Partition.validate p = Ok ()
      && Stretch_friendly.is_stretch_friendly g p
      && Array.for_all (fun s -> s >= t) (Partition.sizes p))

let sf_rounds_bound =
  qcheck "Lemma 4.1 round complexity O(t log* n)" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let rng = Rng.create seed in
      let t = 2 + Rng.int rng 16 in
      let _, info = Stretch_friendly.partition ~t g in
      let logstar = Coloring.log_star (Graph.n g) in
      Rounds.total info.Stretch_friendly.rounds <= 16 * t * (logstar + 6))

let sf_structured () =
  List.iter
    (fun (name, g, t) ->
      let p, _ = Stretch_friendly.partition ~t g in
      check_ok name (Partition.validate p);
      Alcotest.(check bool) (name ^ " sf") true
        (Stretch_friendly.is_stretch_friendly g p);
      Alcotest.(check bool) (name ^ " sizes") true
        (Array.for_all (fun s -> s >= t) (Partition.sizes p)))
    [
      ("path", Generators.path 64, 8);
      ("cycle", Generators.cycle 30, 4);
      ("grid", Generators.grid 12 12, 8);
      ("caterpillar", Generators.caterpillar 20 3, 8);
      ("complete", Generators.complete 32, 4);
    ]

let sf_exempt_small_components () =
  (* components smaller than t keep a whole-component cluster *)
  let g = Graph.of_edges ~n:7 [ (0, 1, 1); (1, 2, 1); (3, 4, 2); (5, 6, 1) ] in
  let p, _ = Stretch_friendly.partition ~t:4 g in
  check_ok "valid" (Partition.validate p);
  Alcotest.(check int) "one cluster per component" 3 (Partition.count p)

let sf_naive_star_valid =
  qcheck ~count:15 "naive-star ablation still valid + sf" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:100 seed in
      let t = max 1 (min 8 (Graph.n g / 2)) in
      let p, _ =
        Stretch_friendly.partition_with_strategy
          ~strategy:Stretch_friendly.Naive_star ~t g
      in
      Partition.validate p = Ok ()
      && Stretch_friendly.is_stretch_friendly g p
      && Array.for_all (fun s -> s >= t) (Partition.sizes p))

(* ---------- linear-size spanner (Theorem 1.5) ---------- *)

let linear_size_deterministic_repro () =
  let g = graph_of_seed ~n_max:150 3 in
  let a = Linear_size.run g and b = Linear_size.run g in
  Alcotest.(check bool) "reproducible" true
    (a.Linear_size.spanner.Spanner.keep = b.Linear_size.spanner.Spanner.keep)

let linear_size_valid =
  qcheck ~count:15 "Thm 1.5: spanning + stretch <= bound" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:200 seed in
      let out = Linear_size.run g in
      Spanner.is_spanning g out.Linear_size.spanner
      && stretch_of g out.Linear_size.spanner
         <= out.Linear_size.stretch_bound +. 1e-9)

let linear_size_unweighted_valid =
  qcheck ~count:15 "Thm 1.5 unweighted" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:200 seed in
      let out = Linear_size.run g in
      Spanner.is_spanning g out.Linear_size.spanner
      && stretch_of g out.Linear_size.spanner
         <= out.Linear_size.stretch_bound +. 1e-9)

let linear_size_is_linear () =
  (* edges/n stays bounded as n grows (the O(n) size claim) *)
  let ratios =
    List.map
      (fun n ->
        let rng = Rng.create 42 in
        let g = Generators.connected_gnp ~rng ~n ~avg_degree:12.0 in
        let out = Linear_size.run g in
        float_of_int (Spanner.size out.Linear_size.spanner) /. float_of_int n)
      [ 400; 800; 1600 ]
  in
  List.iter
    (fun r -> Alcotest.(check bool) "ratio bounded" true (r <= 4.0))
    ratios

let linear_size_randomized_valid =
  qcheck ~count:10 "Pettie-style randomized variant" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let out =
        Linear_size.run ~variant:(Linear_size.Randomized (Rng.create seed)) g
      in
      Spanner.is_spanning g out.Linear_size.spanner
      && stretch_of g out.Linear_size.spanner
         <= out.Linear_size.stretch_bound +. 1e-9)

let linear_size_schedule_sane () =
  List.iter
    (fun n ->
      let sched = Linear_size.schedule ~weighted:false n in
      Alcotest.(check bool) "some phases" true (List.length sched >= 1);
      List.iter
        (fun (x, gi) ->
          Alcotest.(check bool) "x >= 2" true (x >= 2.0);
          Alcotest.(check bool) "g >= 1" true (gi >= 1))
        sched;
      (* x_i grow *)
      let xs = List.map fst sched in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "x_i nondecreasing" true (increasing xs))
    [ 16; 256; 65536; 10_000_000 ]

(* ---------- ultra-sparse (Theorems 1.2/1.6) ---------- *)

let ultra_sparse_size_guarantee =
  qcheck ~count:12 "Thm 1.6: size <= n + n/t" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:200 seed in
      let rng = Rng.create seed in
      let t = 1 + Rng.int rng 8 in
      let out = Ultra_sparse.run ~t g in
      Spanner.size out.Ultra_sparse.spanner <= Ultra_sparse.bound ~n:(Graph.n g) ~t
      && Spanner.is_spanning g out.Ultra_sparse.spanner)

let ultra_sparse_stretch_finite =
  qcheck ~count:12 "Thm 1.6: finite stretch" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:150 seed in
      let out = Ultra_sparse.run ~t:4 g in
      stretch_of g out.Ultra_sparse.spanner < Float.infinity)

let ultra_sparse_deterministic () =
  let g = graph_of_seed ~n_max:120 9 in
  let a = Ultra_sparse.run ~t:4 g and b = Ultra_sparse.run ~t:4 g in
  Alcotest.(check bool) "reproducible" true
    (a.Ultra_sparse.spanner.Spanner.keep = b.Ultra_sparse.spanner.Spanner.keep)

let ultra_sparse_stretch_scales () =
  (* stretch grows roughly linearly with t (times log n): check it stays
     under c * t_inner * stretch-bound-ish envelope *)
  let rng = Rng.create 31 in
  let g = Generators.weighted_connected_gnp ~rng ~n:800 ~avg_degree:10.0 ~max_w:100 in
  List.iter
    (fun t ->
      let out = Ultra_sparse.run ~t g in
      let s = stretch_of g out.Ultra_sparse.spanner in
      let envelope =
        float_of_int (6 * out.Ultra_sparse.t_inner)
        *. (Float.log2 (float_of_int (Graph.n g)) +. 1.0)
        *. 8.0
      in
      Alcotest.(check bool)
        (Printf.sprintf "t=%d stretch %.1f under envelope %.1f" t s envelope)
        true (s <= envelope))
    [ 1; 2; 4; 8 ]

let ultra_sparse_structured () =
  List.iter
    (fun (name, g, t) ->
      let out = Ultra_sparse.run ~t g in
      Alcotest.(check bool) (name ^ " size") true
        (Spanner.size out.Ultra_sparse.spanner
        <= Ultra_sparse.bound ~n:(Graph.n g) ~t);
      Alcotest.(check bool) (name ^ " spanning") true
        (Spanner.is_spanning g out.Ultra_sparse.spanner))
    [
      ("grid", Generators.grid 15 15, 4);
      ("torus", Generators.torus 10 10, 2);
      ("hypercube", Generators.hypercube 8, 4);
      ("caterpillar", Generators.caterpillar 30 4, 8);
    ]

(* ---------- clustering spanners (Theorems 1.7, F.1) ---------- *)

let clustering_sparse_valid =
  qcheck ~count:12 "Thm 1.7: spanning, finite stretch" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:150 seed in
      let out = Clustering_spanner.sparse g in
      Spanner.is_spanning g out.Clustering_spanner.spanner
      && stretch_of g out.Clustering_spanner.spanner < Float.infinity)

let clustering_sparse_stretch_vs_diameter =
  qcheck ~count:10 "Thm 1.7: stretch O(tree diameter)" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:120 seed in
      let out = Clustering_spanner.sparse g in
      stretch_of g out.Clustering_spanner.spanner
      <= float_of_int ((2 * out.Clustering_spanner.max_tree_diameter) + 3))

let clustering_ultra_sparse_valid =
  qcheck ~count:10 "Thm F.1: spanning, witness invariants" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:120 seed in
      let rng = Rng.create seed in
      let t = 1 + Rng.int rng 3 in
      let out = Clustering_spanner.ultra_sparse ~t g in
      Spanner.is_spanning g out.Clustering_spanner.spanner
      && stretch_of g out.Clustering_spanner.spanner < Float.infinity
      && List.for_all
           (fun s -> s.Clustering_spanner.max_cut_distance < 4 * t)
           out.Clustering_spanner.steps)

let clustering_ultra_sparse_decay () =
  let g = Generators.grid 20 20 in
  let out = Clustering_spanner.ultra_sparse ~t:2 g in
  (* unclustered counts decay by >= 3/10 per step (Lemma F.2) *)
  let rec check_decay = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "decays" true
          (float_of_int b.Clustering_spanner.active_before
          <= 0.71 *. float_of_int a.Clustering_spanner.active_before);
        check_decay rest
    | _ -> ()
  in
  check_decay out.Clustering_spanner.steps

let clustering_rejects_weighted () =
  let g = graph_of_seed 3 in
  Alcotest.check_raises "weighted rejected"
    (Invalid_argument "Clustering_spanner: unweighted graphs only") (fun () ->
      ignore (Clustering_spanner.sparse g))

(* ---------- Elkin–Neiman ---------- *)

let en_valid =
  qcheck ~count:15 "EN: spanning with stretch <= 2k-1" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:120 seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 4 in
      let out = Elkin_neiman.run ~rng ~k g in
      Spanner.is_spanning g out.Elkin_neiman.spanner
      && stretch_of g out.Elkin_neiman.spanner
         <= float_of_int ((2 * k) - 1) +. 1e-9)

let en_rejects_weighted () =
  let g = graph_of_seed 3 in
  Alcotest.check_raises "weighted rejected"
    (Invalid_argument "Elkin_neiman.run: unweighted graphs only") (fun () ->
      ignore (Elkin_neiman.run ~rng:(Rng.create 1) ~k:2 g))

(* ---------- greedy ---------- *)

let greedy_valid =
  qcheck ~count:12 "greedy: spanning + stretch <= 2k-1" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let rng = Rng.create seed in
      let k = 2 + Rng.int rng 3 in
      let sp = Greedy.run ~k g in
      Spanner.is_spanning g sp
      && stretch_of g sp <= float_of_int ((2 * k) - 1) +. 1e-9)

let greedy_girth =
  qcheck ~count:10 "greedy unweighted spanner has girth > 2k" seed_gen
    (fun seed ->
      let g = unit_graph_of_seed ~n_max:60 seed in
      let sp = Greedy.run ~k:2 g in
      Greedy.girth_exceeds g sp.Spanner.keep 4)

let greedy_is_sparsest_baseline () =
  (* on a dense unweighted graph, greedy k=2 has at most n^1.5 + n edges *)
  let rng = Rng.create 4 in
  let g = Generators.connected_gnp ~rng ~n:150 ~avg_degree:40.0 in
  let g = Graph.with_unit_weights g in
  let sp = Greedy.run ~k:2 g in
  let bound = (float_of_int (Graph.n g) ** 1.5) +. float_of_int (Graph.n g) in
  Alcotest.(check bool) "girth bound size" true
    (float_of_int (Spanner.size sp) <= bound)

(* ---------- weighted reduction ---------- *)

let weighted_reduction_valid =
  qcheck ~count:10 "folklore reduction: spanning + stretch" seed_gen
    (fun seed ->
      let g = graph_of_seed ~n_max:80 ~max_w:200 seed in
      let k = 2 in
      let unweighted h =
        (Bs_derand.run ~k h).Bs_derand.spanner
      in
      let out = Weighted_reduction.run ~unweighted ~epsilon:0.5 g in
      Spanner.is_spanning g out.Weighted_reduction.spanner
      && stretch_of g out.Weighted_reduction.spanner
         <= 1.5 *. float_of_int ((2 * k) - 1) +. 1e-9)

let weighted_reduction_classes () =
  let g = Graph.of_edges ~n:4 [ (0, 1, 1); (1, 2, 10); (2, 3, 100) ] in
  let out =
    Weighted_reduction.run
      ~unweighted:(fun h -> Spanner.of_eids h (List.init (Graph.m h) Fun.id))
      ~epsilon:1.0 g
  in
  Alcotest.(check int) "three classes" 3 out.Weighted_reduction.classes;
  Alcotest.(check int) "all edges kept" 3 (Spanner.size out.Weighted_reduction.spanner)

let suite =
  [
    case "spanner: of_eids" spanner_of_eids;
    case "spanner: union" spanner_union;
    case "spanner: validate" spanner_validate;
    bs_spanning_and_stretch;
    bs_unweighted;
    case "bs: all vertices die" bs_all_die;
    slow_case "bs: size statistical" bs_size_statistical;
    case "bs: k=1 keeps everything" bs_k1_gives_whole_graph;
    case "bs: disconnected input" bs_handles_disconnected;
    bs_core_partition_valid_through_iterations;
    bs_core_cluster_trees_in_spanner;
    bs_core_stretch_friendly_clusters;
    derand_deterministic;
    derand_spanning_and_stretch;
    derand_unweighted;
    derand_guarantees_hold;
    derand_size_bound;
    case "derand: nd ordering" derand_nd_ordering_works;
    case "derand: rejects bad p" derand_rejects_bad_p;
    sf_all_invariants;
    sf_unweighted;
    sf_rounds_bound;
    case "sf: structured graphs" sf_structured;
    case "sf: exempt small components" sf_exempt_small_components;
    sf_naive_star_valid;
    case "linear: reproducible" linear_size_deterministic_repro;
    linear_size_valid;
    linear_size_unweighted_valid;
    slow_case "linear: size is O(n)" linear_size_is_linear;
    linear_size_randomized_valid;
    case "linear: schedule sane" linear_size_schedule_sane;
    ultra_sparse_size_guarantee;
    ultra_sparse_stretch_finite;
    case "ultra: reproducible" ultra_sparse_deterministic;
    slow_case "ultra: stretch scales with t" ultra_sparse_stretch_scales;
    case "ultra: structured graphs" ultra_sparse_structured;
    clustering_sparse_valid;
    clustering_sparse_stretch_vs_diameter;
    clustering_ultra_sparse_valid;
    case "clustering: decay (Lemma F.2)" clustering_ultra_sparse_decay;
    case "clustering: rejects weighted" clustering_rejects_weighted;
    en_valid;
    case "en: rejects weighted" en_rejects_weighted;
    greedy_valid;
    greedy_girth;
    case "greedy: size baseline" greedy_is_sparsest_baseline;
    weighted_reduction_valid;
    case "weighted reduction: classes" weighted_reduction_classes;
  ]

(* ---------- Lemma 3.1: per-iteration stretch certificates ---------- *)

let lemma_3_1_death_stretch =
  qcheck ~count:12 "Lemma 3.1: edge dead at iter i has stretch <= 2i-1"
    seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let rng = Rng.create seed in
      let state = Bs_core.create g in
      let k = 4 in
      let p = float_of_int (Graph.n g) ** (-1.0 /. float_of_int k) in
      for _ = 1 to k - 1 do
        let sampled =
          Array.init (Bs_core.n_clusters state) (fun _ -> Rng.bernoulli rng p)
        in
        ignore (Bs_core.iteration state ~sampled)
      done;
      ignore (Bs_core.finish state);
      let keep = Bs_core.spanner_mask state in
      let death = Bs_core.death_iteration state in
      let ok = ref true in
      Graph.iter_edges g (fun e ->
          let i = death.(e.Graph.id) in
          if i >= 0 && !ok then begin
            let d =
              Dijkstra.distance ~allow:(fun eid -> keep.(eid)) g e.Graph.u
                e.Graph.v
            in
            if d > ((2 * i) - 1) * e.Graph.w then ok := false
          end);
      (* sanity of the tracking itself: after finish, every edge is dead *)
      Array.iter (fun i -> if i < 0 then ok := false) death;
      !ok)

let death_iterations_monotone_with_aliveness =
  qcheck ~count:10 "edge death bookkeeping consistent" seed_gen (fun seed ->
      let g = graph_of_seed ~n_max:80 seed in
      let rng = Rng.create seed in
      let state = Bs_core.create g in
      let ok = ref true in
      for it = 1 to 3 do
        let sampled =
          Array.init (Bs_core.n_clusters state) (fun _ -> Rng.bernoulli rng 0.3)
        in
        ignore (Bs_core.iteration state ~sampled);
        let death = Bs_core.death_iteration state in
        Graph.iter_edges g (fun e ->
            let alive = Bs_core.edge_alive state e.Graph.id in
            let d = death.(e.Graph.id) in
            if alive && d <> -1 then ok := false;
            if (not alive) && (d < 1 || d > it) then ok := false;
            (* an edge with a dead endpoint must be dead *)
            if
              alive
              && not
                   (Bs_core.vertex_alive state e.Graph.u
                   && Bs_core.vertex_alive state e.Graph.v)
            then ok := false)
      done;
      !ok)

let suite =
  suite
  @ [ lemma_3_1_death_stretch; death_iterations_monotone_with_aliveness ]

let clustering_sparse_separation2 =
  qcheck ~count:8 "Thm 1.7 at separation 2 still valid" seed_gen (fun seed ->
      let g = unit_graph_of_seed ~n_max:100 seed in
      let out = Clustering_spanner.sparse ~separation:2 g in
      Spanner.is_spanning g out.Clustering_spanner.spanner
      && stretch_of g out.Clustering_spanner.spanner < Float.infinity)

let suite = suite @ [ clustering_sparse_separation2 ]
