(* Quickstart: build a weighted graph, compute the paper's deterministic
   ultra-sparse spanner (Theorem 1.6), verify its guarantees, and print a
   summary.

   Run with:  dune exec examples/quickstart.exe *)

open Ultraspan

let () =
  (* A reproducible weighted random graph: 1000 vertices, ~6000 edges,
     weights in [1, 10^6]. *)
  let rng = Rng.create 2022 in
  let g =
    Generators.weighted_connected_gnp ~rng ~n:1000 ~avg_degree:12.0
      ~max_w:1_000_000
  in
  Format.printf "input: %a@." Graph.pp g;

  (* The headline construction: a deterministic spanner with at most
     n + n/t edges.  No randomness anywhere — run it twice and you get the
     same subgraph. *)
  let t = 4 in
  let out = Ultra_sparse.run ~t g in
  let spanner = out.Ultra_sparse.spanner in

  Printf.printf "ultra-sparse spanner (t = %d):\n" t;
  Printf.printf "  edges        : %d (guaranteed <= n + n/t = %d)\n"
    (Spanner.size spanner)
    (Ultra_sparse.bound ~n:(Graph.n g) ~t);
  Printf.printf "  spanning     : %b\n" (Spanner.is_spanning g spanner);
  Printf.printf "  exact stretch: %.2f\n"
    (Stretch.max_edge_stretch g spanner.Spanner.keep);
  Printf.printf "  sim. rounds  : %d\n" (Spanner.total_rounds spanner);

  (* The spanner is a mask over the input's edge ids; materialize it as a
     graph of its own if you want to run something else on it. *)
  let h = Graph.sub_by_eids g spanner.Spanner.keep in
  Format.printf "spanner graph: %a@." Graph.pp h;

  (* Determinism check, for the skeptical. *)
  let again = Ultra_sparse.run ~t g in
  Printf.printf "reproducible : %b\n"
    (again.Ultra_sparse.spanner.Spanner.keep = spanner.Spanner.keep)
