(* The CONGEST simulator driven natively: message-passing node programs for
   BFS, global aggregation and maximal matching, with per-round statistics —
   the model all the paper's round bounds live in.

   Run with:  dune exec examples/congest_demo.exe *)

open Ultraspan

let show name (stats : Network.stats) =
  Printf.printf "  %-22s rounds=%-5d messages=%-7d max words/msg=%d\n" name
    stats.Network.rounds stats.Network.messages stats.Network.max_words

let () =
  let g = Generators.torus 16 16 in
  Printf.printf "network: 16x16 torus (%d nodes, %d links)\n\n" (Graph.n g)
    (Graph.m g);

  print_endline "native CONGEST node programs:";
  let bfs, bfs_stats = Programs.bfs g ~root:0 in
  show "BFS tree" bfs_stats;
  Printf.printf "    depth of BFS tree: %d (graph eccentricity %d)\n"
    (Array.fold_left max 0 bfs.Programs.dist)
    (Bfs.eccentricity g 0);

  let values = Array.init (Graph.n g) (fun v -> (v * 37) mod 1009) in
  let maxes, bc_stats = Programs.broadcast_max g ~values in
  show "broadcast max" bc_stats;
  Printf.printf "    agreed maximum: %d (expected %d)\n" maxes.(0)
    (Array.fold_left max 0 values);

  let mate, mm_stats = Programs.maximal_matching g in
  show "maximal matching" mm_stats;
  let matched = Array.fold_left (fun a m -> if m >= 0 then a + 1 else a) 0 mate in
  Printf.printf "    matched %d of %d nodes\n\n" matched (Graph.n g);

  (* The bandwidth constraint is enforced, not aspirational: a program that
     tries to ship a big message is rejected by the simulator. *)
  let greedy_program =
    {
      Network.init = (fun _ _ -> ());
      round =
        (fun g ~round ~me st _ ->
          if round = 0 && me = 0 then begin
            let payload = Array.init 64 Fun.id in
            let out =
              List.map (fun (u, _) -> (u, payload)) (Graph.neighbors g me)
            in
            { Network.state = st; out; halt = true }
          end
          else { Network.state = st; out = []; halt = true });
    }
  in
  (match Network.run g greedy_program with
  | exception Network.Message_too_large { sender; words; limit } ->
      Printf.printf
        "CONGEST enforcement: node %d tried to send %d words (limit %d) — \
         rejected.\n"
        sender words limit
  | _ -> print_endline "BUG: oversized message was not rejected");

  (* Round accounting for the centrally-simulated constructions uses the
     same currency: *)
  let out = Ultra_sparse.run ~t:4 (Graph.with_unit_weights g) in
  Printf.printf
    "\nultra-sparse spanner on this torus: %d edges, %d simulated rounds, \
     broken down as:\n"
    (Spanner.size out.Ultra_sparse.spanner)
    (Spanner.total_rounds out.Ultra_sparse.spanner);
  List.iter
    (fun (label, r) -> Printf.printf "  %-28s %8d\n" label r)
    (Ultraspan.Rounds.breakdown out.Ultra_sparse.spanner.Spanner.rounds)
