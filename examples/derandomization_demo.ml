(* The paper's central trick, watched live: Lemma 3.3 turns Baswana–Sen's
   expected-size guarantees into deterministic per-iteration facts via the
   method of conditional expectations.

   This demo runs the derandomized simulation and prints, for every
   iteration, the guarantee triple the implementation asserts:
     - number of sampled clusters        vs the bound n·p^i,
     - spanner edges charged this round  vs the utility budget,
     - high-degree deaths                (must be exactly 0),
   and then contrasts the deterministic output with the spread of the
   randomized algorithm over many seeds.

   Run with:  dune exec examples/derandomization_demo.exe *)

open Ultraspan

let () =
  let n = 1500 in
  let k = 3 in
  let rng = Rng.create 1 in
  let g =
    Generators.weighted_connected_gnp ~rng ~n ~avg_degree:64.0 ~max_w:(n * n)
  in
  Printf.printf "graph: n=%d m=%d   derandomized Baswana-Sen with k=%d\n\n"
    (Graph.n g) (Graph.m g) k;

  let out = Bs_derand.run ~k g in
  Printf.printf "%-5s %12s %12s %14s %14s %12s\n" "iter" "clusters"
    "bound n·p^i" "edges charged" "edge budget" "hi-deg died";
  print_endline (String.make 76 '-');
  List.iter
    (fun gu ->
      Printf.printf "%-5d %12d %12d %14d %14.0f %12d\n" gu.Bs_derand.iteration
        gu.Bs_derand.clusters gu.Bs_derand.cluster_bound
        gu.Bs_derand.edges_added gu.Bs_derand.edge_bound
        gu.Bs_derand.high_degree_died)
    out.Bs_derand.guarantees;
  let det_size = Spanner.size out.Bs_derand.spanner in
  Printf.printf "\ndeterministic spanner: %d edges, stretch %.2f <= %d\n"
    det_size
    (Stretch.max_edge_stretch g out.Bs_derand.spanner.Spanner.keep)
    ((2 * k) - 1);

  (* The randomized spread it replaces. *)
  let sizes =
    Array.init 12 (fun i ->
        let rng = Rng.create (7000 + i) in
        float_of_int
          (Spanner.size (Baswana_sen.run ~rng ~k g).Baswana_sen.spanner))
  in
  let lo, hi = Stats.min_max sizes in
  Printf.printf
    "randomized Baswana-Sen over 12 seeds: min %.0f / mean %.0f / max %.0f \
     edges\n"
    lo (Stats.mean sizes) hi;
  Printf.printf
    "\nThe point: every run of the left column is identical (no randomness \
     anywhere),\nand each guarantee above is checked by the implementation — \
     a violation would raise.\n"
