(* Network-backbone design: the "sparse skeleton" application from the
   paper's introduction.

   A wide-area network is modelled as a random geometric graph (routers
   scattered in the plane, links between nearby pairs, link cost = length).
   Operating every link is expensive, so we want a spanning sub-network with
   as few links as possible that still routes traffic without large detours.

   We compare: the MST (cheapest possible, but terrible detours), the greedy
   spanner, randomized Baswana–Sen, and the paper's deterministic
   ultra-sparse spanner at several t.

   Run with:  dune exec examples/backbone.exe *)

open Ultraspan

let () =
  let n = 1200 in
  let rng = Rng.create 77 in
  let g =
    Generators.ensure_connected ~rng
      (Generators.random_geometric ~rng ~n ~radius:0.06)
  in
  Printf.printf "WAN topology: %d routers, %d candidate links, total cost %d\n\n"
    (Graph.n g) (Graph.m g) (Graph.total_weight g);
  Printf.printf "%-34s %8s %10s %10s %12s\n" "backbone" "links" "cost"
    "cost/MST" "max detour";
  print_endline (String.make 80 '-');
  let mst_eids = Spanning_tree.kruskal_mst g in
  let mst_cost = Spanning_tree.forest_weight g mst_eids in
  let report name (sp : Spanner.t) =
    Printf.printf "%-34s %8d %10d %10.2f %12.2f\n" name (Spanner.size sp)
      (Spanner.weight g sp)
      (float_of_int (Spanner.weight g sp) /. float_of_int mst_cost)
      (Stretch.max_edge_stretch g sp.Spanner.keep)
  in
  report "minimum spanning tree" (Spanner.of_eids g mst_eids);
  report "greedy 3-spanner (centralized)" (Greedy.run ~k:2 g);
  let bs = Baswana_sen.run ~rng:(Rng.create 5) ~k:3 g in
  report "Baswana-Sen k=3 (randomized)" bs.Baswana_sen.spanner;
  List.iter
    (fun t ->
      let out = Ultra_sparse.run ~t g in
      report
        (Printf.sprintf "deterministic ultra-sparse t=%d" t)
        out.Ultra_sparse.spanner)
    [ 2; 8; 32 ];
  print_newline ();
  print_endline
    "Reading the table: the MST minimizes cost but its detours are awful; the";
  print_endline
    "ultra-sparse spanners sit within a whisker of the tree's link count while";
  print_endline
    "capping every detour — and, being deterministic, the same backbone comes";
  print_endline "out of every planning run."
