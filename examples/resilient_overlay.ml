(* Resilient overlay provisioning with connectivity certificates.

   An overlay operator wants to survive any k-1 simultaneous link failures
   while leasing as few links as possible.  A k-connectivity certificate of
   the full mesh is exactly that: it is k-edge-connected iff the mesh is,
   with O(kn) links instead of O(n^2).

   We build certificates with all four algorithms of the library, check
   their guarantees against exact edge connectivity, and then actually
   bombard the chosen overlay with random link failures to see it hold up.

   Run with:  dune exec examples/resilient_overlay.exe *)

open Ultraspan

let () =
  let n = 120 in
  let k = 4 in
  (* A dense-ish mesh with guaranteed k+1 connectivity underneath. *)
  let base = Generators.harary ~k:(k + 2) ~n in
  let rng = Rng.create 9 in
  let extra =
    List.filter_map
      (fun _ ->
        let a = Rng.int rng n and b = Rng.int rng n in
        if a = b then None else Some (a, b, 1))
      (List.init (3 * n) Fun.id)
  in
  let g =
    Graph.of_edges ~n
      (extra
      @ Array.to_list
          (Array.map (fun e -> (e.Graph.u, e.Graph.v, 1)) (Graph.edges base)))
  in
  Printf.printf "full mesh: %d nodes, %d links, edge connectivity %d\n\n"
    (Graph.n g) (Graph.m g) (Maxflow.edge_connectivity g);

  Printf.printf "target: survive any %d link failures (k = %d)\n\n" (k - 1) k;
  Printf.printf "%-26s %8s %12s %14s\n" "certificate" "links" "lambda(H)"
    "sim. rounds";
  print_endline (String.make 68 '-');
  let candidates =
    [
      ("Nagamochi-Ibaraki", Nagamochi_ibaraki.certificate ~k g);
      ("Thurimella k-forests", Thurimella.certificate ~k g);
      ( "spanner packing (Thm G.1)",
        (Spanner_packing.run ~k ~epsilon:0.5 g).Spanner_packing.certificate );
      ( "Karger split (Thm 1.9)",
        (Karger_split.run ~rng:(Rng.create 4) ~k ~epsilon:0.4 g)
          .Karger_split.certificate );
    ]
  in
  List.iter
    (fun (name, c) ->
      let h = Certificate.subgraph g c in
      Printf.printf "%-26s %8d %12d %14d\n" name (Certificate.size c)
        (Maxflow.edge_connectivity h)
        (Ultraspan.Rounds.total c.Certificate.rounds))
    candidates;

  (* Failure injection on the Theorem G.1 overlay. *)
  let _, cert = List.nth candidates 2 in
  let overlay = Certificate.subgraph g cert in
  let trials = 2000 in
  let survived = ref 0 in
  let frng = Rng.create 31337 in
  for _ = 1 to trials do
    (* fail k-1 random overlay links *)
    let m = Graph.m overlay in
    let failed = Array.make m false in
    let remaining = ref (k - 1) in
    while !remaining > 0 do
      let e = Rng.int frng m in
      if not failed.(e) then begin
        failed.(e) <- true;
        decr remaining
      end
    done;
    let alive = Graph.sub_by_eids overlay (Array.map not failed) in
    if Connectivity.is_connected alive then incr survived
  done;
  Printf.printf
    "\nfailure injection on the Thm G.1 overlay: %d/%d random %d-link failure \
     patterns survived\n"
    !survived trials (k - 1);
  assert (!survived = trials)
