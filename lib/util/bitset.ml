type t = { bytes : Bytes.t; n : int }

let create n = { bytes = Bytes.make ((n + 7) / 8) '\000'; n }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  check t i;
  let b = Char.code (Bytes.unsafe_get t.bytes (i lsr 3)) in
  Bytes.unsafe_set t.bytes (i lsr 3) (Char.unsafe_chr (b lor (1 lsl (i land 7))))

let remove t i =
  check t i;
  let b = Char.code (Bytes.unsafe_get t.bytes (i lsr 3)) in
  Bytes.unsafe_set t.bytes (i lsr 3)
    (Char.unsafe_chr (b land lnot (1 lsl (i land 7)) land 0xff))

let clear t = Bytes.fill t.bytes 0 (Bytes.length t.bytes) '\000'

let popcount_byte b =
  let b = b - ((b lsr 1) land 0x55) in
  let b = (b land 0x33) + ((b lsr 2) land 0x33) in
  (b + (b lsr 4)) land 0x0f

let cardinal t =
  let total = ref 0 in
  for i = 0 to Bytes.length t.bytes - 1 do
    total := !total + popcount_byte (Char.code (Bytes.unsafe_get t.bytes i))
  done;
  !total

let iter f t =
  for i = 0 to t.n - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])
