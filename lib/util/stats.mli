(** Summary statistics for the benchmark harness and experiment tables. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays of length < 2. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [\[0,1\]]: linear-interpolation quantile of
    a copy of [xs] (the input is not mutated). *)

val median : float array -> float

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] partitions [\[min, max\]] into [bins] equal-width
    buckets and returns [(lo, hi, count)] per bucket.  Constant data
    (min = max) degenerates to a single zero-width bucket [(x, x, n)]
    holding every sample; an empty array yields no buckets.  Raises
    [Invalid_argument] when [bins <= 0]. *)

val mean_int : int array -> float

val sum_int : int array -> int
