(** Disjoint-set forest with union by rank and path compression.

    The workhorse behind spanning forests, Kruskal, Borůvka rounds, and the
    connectivity checks used throughout the test-suite. *)

type t

val create : int -> t
(** [create n] builds [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** Merge the two sets.  Returns [true] iff they were previously distinct. *)

val same : t -> int -> int -> bool
(** Whether the two elements are in the same set. *)

val count : t -> int
(** Number of distinct sets currently. *)

val size_of : t -> int -> int
(** Number of elements in the set containing the given element. *)
