(** Typed metrics registry: counters, gauges, fixed-bucket histograms and
    timer aggregates under hierarchical dot-names.

    Zero overhead when off: handles resolved against {!disabled} are shared
    dead records whose update functions test one immediate bool and return —
    no allocation on the hot path.  Resolve handles once, outside loops.

    Determinism contract: every metric outside the [timing.*] namespace must
    be derived purely from algorithm work, so snapshots are byte-identical
    across [--jobs] and simulator engines.  [timing.*] is the execution
    namespace — wall-clock timers (auto-prefixed by {!timer}) and
    engine-/schedule-internal diagnostics — and is excluded from the
    determinism gates ({!strip_timing}). *)

type t
(** A registry.  Thread-safety: registration and {!snapshot} are locked;
    handle updates are unsynchronized and must stay on one domain (the
    deterministic [Parallel] pool publishes worker-side aggregates from the
    caller domain after its barrier). *)

val create : unit -> t
val disabled : t
(** The shared no-op sink: registrations return dead handles. *)

val live : t -> bool

val mark_partial : t -> unit
(** Flag the registry as describing an interrupted run (e.g.
    [Round_limit_exceeded], fault-injection abort).  Snapshots carry the
    flag; reports and artifacts surface it. *)

(** {1 Handles} *)

type counter
type gauge
type histogram
type timer

val counter : t -> string -> counter
(** Registration is idempotent: the same name returns the same handle, so
    repeated runs against one registry accumulate.  Raises [Invalid_argument]
    on malformed names (segments of [a-z0-9_] joined by dots) or when the
    name is already registered with a different metric type. *)

val gauge : t -> string -> gauge

val histogram : ?buckets:int array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds ([le] semantics); an
    implicit overflow bucket is appended.  Default: powers of two up to
    65536. *)

val timer : t -> string -> timer
(** Timers measure wall-clock and GC churn, so they always live in the
    execution namespace: the name is prefixed with ["timing."] unless it
    already is. *)

(** {1 Hot-path updates — no allocation} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val set_max : gauge -> int -> unit
(** High-water mark: keep the maximum of the current and given value. *)

val observe : histogram -> int -> unit
val timer_add : timer -> float -> unit

val timer_set :
  timer ->
  seconds:float ->
  calls:int ->
  minor_words:float ->
  major_words:float ->
  promoted_words:float ->
  unit
(** Absolute overwrite — for exporting externally-aggregated phase data
    (e.g. [Profile]) idempotently. *)

val time : timer -> (unit -> 'a) -> 'a
(** Run the thunk, accumulating wall-clock seconds and [Gc.quick_stat]
    word deltas.  On a dead handle this is exactly the thunk. *)

val value : counter -> int
val gauge_value : gauge -> int

(** {1 Snapshots} *)

type hist_data = {
  hedges : int array;
  hcounts : int array;  (** length [|hedges| + 1]; last = overflow *)
  hsum : int;
  htotal : int;
}

type timer_data = {
  tseconds : float;
  tcalls : int;
  tminor_words : float;
  tmajor_words : float;
  tpromoted_words : float;
}

type snapshot = {
  partial : bool;
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;
  histograms : (string * hist_data) list;
  timers : (string * timer_data) list;
}

val snapshot : t -> snapshot
(** Deterministic: entries sorted by name. *)

val in_timing_namespace : string -> bool

val strip_timing : snapshot -> snapshot
(** Drop every [timing.*] metric (all timers, plus any counter/gauge/
    histogram registered under the execution namespace).  What remains is
    covered by the byte-identical determinism gates. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> int option
val find_timer : snapshot -> string -> timer_data option

val exposition : ?strip:bool -> snapshot -> string
(** Prometheus-style text exposition (TYPE comments, [le] bucket labels,
    [_sum]/[_count]); deterministic byte-for-byte.  [strip] applies
    {!strip_timing} first. *)

val pp_report : ?top:int -> Format.formatter -> snapshot -> unit
(** Human report: top-[top] counters split deterministic vs execution,
    gauges, histogram sparklines, timer table with GC deltas. *)
