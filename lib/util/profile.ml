type entry = { mutable seconds : float; mutable calls : int }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse insertion order *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let entry t label =
  match Hashtbl.find_opt t.tbl label with
  | Some e -> e
  | None ->
      let e = { seconds = 0.0; calls = 0 } in
      Hashtbl.replace t.tbl label e;
      t.order <- label :: t.order;
      e

let record t label dt =
  if dt < 0.0 then invalid_arg "Profile.record: negative duration";
  let e = entry t label in
  e.seconds <- e.seconds +. dt;
  e.calls <- e.calls + 1

let time t label f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record t label (Unix.gettimeofday () -. t0)) f

let phases t =
  List.rev_map
    (fun label ->
      let e = Hashtbl.find t.tbl label in
      (label, e.seconds, e.calls))
    t.order

let total t =
  Hashtbl.fold (fun _ e acc -> acc +. e.seconds) t.tbl 0.0

let pp fmt t =
  Format.fprintf fmt "%.3f s total" (total t);
  List.iter
    (fun (label, s, calls) ->
      Format.fprintf fmt "@.  %-28s %9.3f s %6d call%s" label s calls
        (if calls = 1 then "" else "s"))
    (phases t)
