type entry = {
  mutable seconds : float;
  mutable calls : int;
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
}

(* A span is one timed scope instance, kept for the Chrome trace export.
   Offsets are relative to the profile's creation, in seconds.  The list
   is bounded ([span_cap]): profiles time phases, not per-item work, so
   overflow means a mis-used profiler, and we drop silently rather than
   grow without bound. *)
type span = { s_path : string; s_start : float; s_dur : float }

let span_cap = 4096

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse insertion order, path-keyed *)
  mutable stack : string list;  (* enclosing scope labels, innermost first *)
  epoch : float;
  mutable spans : span list;  (* reverse chronological *)
  mutable span_count : int;
}

let create () =
  {
    tbl = Hashtbl.create 16;
    order = [];
    stack = [];
    epoch = Unix.gettimeofday ();
    spans = [];
    span_count = 0;
  }

let entry t path =
  match Hashtbl.find_opt t.tbl path with
  | Some e -> e
  | None ->
      let e =
        {
          seconds = 0.0;
          calls = 0;
          minor_words = 0.0;
          major_words = 0.0;
          promoted_words = 0.0;
        }
      in
      Hashtbl.replace t.tbl path e;
      t.order <- path :: t.order;
      e

(* Nested scopes key under "outer/inner" paths; top-level labels are
   unchanged, so pre-existing flat callers see identical ledgers. *)
let path_of t label =
  match t.stack with [] -> label | outer :: _ -> outer ^ "/" ^ label

let add_span t path start dur =
  if t.span_count < span_cap then begin
    t.spans <- { s_path = path; s_start = start; s_dur = dur } :: t.spans;
    t.span_count <- t.span_count + 1
  end

let record t label dt =
  if dt < 0.0 then invalid_arg "Profile.record: negative duration";
  let path = path_of t label in
  let e = entry t path in
  e.seconds <- e.seconds +. dt;
  e.calls <- e.calls + 1;
  add_span t path (Unix.gettimeofday () -. t.epoch -. dt) dt

let time t label f =
  let path = path_of t label in
  let e = entry t path in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  t.stack <- path :: t.stack;
  Fun.protect
    ~finally:(fun () ->
      (match t.stack with
      | p :: rest when p == path -> t.stack <- rest
      | _ -> () (* unbalanced exit via exception already popped us *));
      let dt = Unix.gettimeofday () -. t0 in
      let g1 = Gc.quick_stat () in
      e.seconds <- e.seconds +. dt;
      e.calls <- e.calls + 1;
      e.minor_words <- e.minor_words +. (g1.Gc.minor_words -. g0.Gc.minor_words);
      e.major_words <- e.major_words +. (g1.Gc.major_words -. g0.Gc.major_words);
      e.promoted_words <-
        e.promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
      add_span t path (t0 -. t.epoch) dt)
    f

let phases t =
  List.rev_map
    (fun path ->
      let e = Hashtbl.find t.tbl path in
      (path, e.seconds, e.calls))
    t.order

let total t =
  (* Nested scopes are counted once: a child path's time is already inside
     its parent's, so the total sums top-level entries only. *)
  Hashtbl.fold
    (fun path e acc ->
      if String.contains path '/' then acc else acc +. e.seconds)
    t.tbl 0.0

let pp fmt t =
  Format.fprintf fmt "%.3f s total" (total t);
  List.iter
    (fun (path, s, calls) ->
      let depth =
        String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
      in
      let label =
        match String.rindex_opt path '/' with
        | None -> path
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      in
      Format.fprintf fmt "@.  %s%-*s %9.3f s %6d call%s"
        (String.concat "" (List.init depth (fun _ -> "  ")))
        (max 1 (28 - (2 * depth)))
        label s calls
        (if calls = 1 then "" else "s"))
    (phases t)

(* ---------- metrics export ---------- *)

(* Metric names admit [a-z0-9_.] only; phase labels are free-form
   ("bfs n=512").  Slashes become dots (keeping the hierarchy), everything
   else illegal is flattened to '_'. *)
let sanitize label =
  String.map
    (function
      | ('a' .. 'z' | '0' .. '9' | '_' | '.') as c -> c
      | 'A' .. 'Z' as c -> Char.lowercase_ascii c
      | '/' -> '.'
      | _ -> '_')
    label

let export t reg =
  let module M = Metrics in
  List.iter
    (fun path ->
      let e = Hashtbl.find t.tbl path in
      let tm = M.timer reg ("profile." ^ sanitize path) in
      (* absolute overwrite: re-exporting after more phases is idempotent
         per phase, never double-counts *)
      M.timer_set tm ~seconds:e.seconds ~calls:e.calls
        ~minor_words:e.minor_words ~major_words:e.major_words
        ~promoted_words:e.promoted_words)
    (List.rev t.order)

(* ---------- Chrome trace events ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_events t =
  (* Complete ("X") events on a dedicated tid, microsecond timestamps —
     mergeable into Trace.to_chrome's event array via [?extra_events]. *)
  List.rev_map
    (fun s ->
      Printf.sprintf
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,\"dur\":%.1f,\"pid\":0,\"tid\":1}"
        (json_escape s.s_path) (s.s_start *. 1e6) (s.s_dur *. 1e6))
    t.spans
