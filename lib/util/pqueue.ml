type ('p, 'a) t = {
  cmp : 'p -> 'p -> int;
  mutable prio : 'p array;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  ignore capacity;
  { cmp; prio = [||]; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t p x =
  (* Arrays start empty because we have no dummy element of type 'p/'a; the
     first push seeds them, later growth doubles. *)
  if Array.length t.prio = 0 then begin
    t.prio <- Array.make 16 p;
    t.data <- Array.make 16 x
  end
  else begin
    let n = Array.length t.prio in
    let prio' = Array.make (2 * n) t.prio.(0) in
    let data' = Array.make (2 * n) t.data.(0) in
    Array.blit t.prio 0 prio' 0 n;
    Array.blit t.data 0 data' 0 n;
    t.prio <- prio';
    t.data <- data'
  end

let swap t i j =
  let p = t.prio.(i) and d = t.data.(i) in
  t.prio.(i) <- t.prio.(j);
  t.data.(i) <- t.data.(j);
  t.prio.(j) <- p;
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.prio.(i) t.prio.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.prio.(l) t.prio.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.prio.(r) t.prio.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t p x =
  if t.size >= Array.length t.prio then grow t p x;
  t.prio.(t.size) <- p;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.prio.(0), t.data.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(0) and x = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prio.(0) <- t.prio.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (p, x)
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let clear t = t.size <- 0
