(** k-wise independent hash families over a prime field.

    This is the library's stand-in for the Gopalan–Yehudayoff short-seed
    distribution of the paper's Appendix B.  A degree-(k-1) random polynomial
    over GF(p) gives a k-wise independent family [\[N\] -> \[0,p)]; reducing
    mod M gives an (almost-uniform) family into [\[M\]].  The seed is the
    coefficient vector, so the "seed length" is k·log p bits — short enough
    to fix coefficient-by-coefficient in a conditional-expectation argument,
    and to *enumerate* for small test universes.

    Hitting-events (Definition 3.2 of the paper: "at least one X_j in S is
    set") over indicators [X_i = \[h(i) < threshold\]] are approximated by
    this family; the test-suite measures the approximation error empirically
    against full independence. *)

type t
(** One member of the family (a fixed polynomial = a fixed seed). *)

val prime : int
(** The field modulus (a 31-bit prime, [2^31 - 1]). *)

val create : degree:int -> Rng.t -> t
(** [create ~degree rng] samples a uniformly random polynomial of the given
    degree (so the family is (degree+1)-wise independent).  [degree >= 0]. *)

val of_coeffs : int array -> t
(** Deterministic construction from explicit coefficients (each reduced
    mod {!prime}).  The array is copied. *)

val coeffs : t -> int array
(** The seed, exposed for conditional-expectation style fixing. *)

val degree : t -> int

val eval : t -> int -> int
(** [eval h i] in [\[0, prime)].  Horner evaluation, O(degree). *)

val eval_mod : t -> int -> int -> int
(** [eval_mod h i m] is [eval h i mod m]. *)

val indicator : t -> threshold:int -> int -> bool
(** [indicator h ~threshold i] is [true] iff [eval h i < threshold]; the
    marginal probability is [threshold / prime] (exactly, for each single
    index, by uniformity of the polynomial family). *)

val threshold_of_prob : float -> int
(** Threshold such that [indicator] fires with probability ~p. *)

val sample_indicators : t -> threshold:int -> int -> bool array
(** [sample_indicators h ~threshold n] is the vector [X_0 .. X_{n-1}]. *)
