let default_jobs () =
  match Sys.getenv_opt "ULTRASPAN_JOBS" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ ->
          invalid_arg
            (Printf.sprintf
               "ULTRASPAN_JOBS must be a positive integer, got %S" s))

let available_cores () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* metrics                                                             *)
(* ------------------------------------------------------------------ *)

(* Deterministic counters (sections/chunks/items) are a function of the
   submitted work only — the fixed chunk partition makes them identical
   for every job count, and [map_reduce]'s sequential shortcut mirrors
   the counting the chunked path would do.  Everything schedule-dependent
   (who ran which chunk, wall-clock, sequential fallbacks) lives under
   [timing.parallel.pool.*], the execution namespace.

   [job_capacity] accumulates section-wall × participants so that
   pool utilization = chunk_run / job_capacity aggregates across sections
   of different widths. *)
type pmeters = {
  pm_on : bool;
  pm_sections : Metrics.counter;
  pm_chunks : Metrics.counter;
  pm_items : Metrics.counter;
  pm_seq_sections : Metrics.counter;
  pm_caller_chunks : Metrics.counter;
  pm_worker_chunks : Metrics.counter;
  pm_chunk_run : Metrics.timer;
  pm_section : Metrics.timer;
  pm_capacity : Metrics.timer;
}

let pmeters_of reg =
  {
    pm_on = Metrics.live reg;
    pm_sections = Metrics.counter reg "parallel.sections_total";
    pm_chunks = Metrics.counter reg "parallel.chunks_total";
    pm_items = Metrics.counter reg "parallel.items_total";
    pm_seq_sections = Metrics.counter reg "timing.parallel.pool.sequential_sections";
    pm_caller_chunks = Metrics.counter reg "timing.parallel.pool.caller_chunks";
    pm_worker_chunks = Metrics.counter reg "timing.parallel.pool.worker_chunks";
    pm_chunk_run = Metrics.timer reg "parallel.pool.chunk_run";
    pm_section = Metrics.timer reg "parallel.pool.section";
    pm_capacity = Metrics.timer reg "parallel.pool.job_capacity";
  }

let dead_pmeters = pmeters_of Metrics.disabled
let pmeters = ref dead_pmeters

let set_metrics = function
  | None -> pmeters := dead_pmeters
  | Some reg -> pmeters := pmeters_of reg

(* ------------------------------------------------------------------ *)
(* the pool                                                            *)
(* ------------------------------------------------------------------ *)

type task = {
  body : int -> unit;  (* chunk index -> work *)
  nchunks : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  workers : int;  (* pool workers participating (the caller is extra) *)
  mutable running : int;  (* participating workers not yet finished *)
  mutable failed : exn option;  (* first failure, re-raised on the caller *)
  mutable w_chunks : int;  (* chunks executed by pool workers *)
  mutable w_seconds : float;  (* their summed per-chunk wall time *)
}

type pool = {
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable task : task option;
  mutable generation : int;  (* bumped once per published task *)
  mutable domains : unit Domain.t list;
  mutable size : int;
  mutable quit : bool;
}

let pool =
  {
    lock = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    task = None;
    generation = 0;
    domains = [];
    size = 0;
    quit = false;
  }

(* True while this domain is executing chunks of some task: a nested
   parallel section must run sequentially (the pool is parked behind the
   outer section, so waiting on it would deadlock). *)
let inside_section = Domain.DLS.new_key (fun () -> ref false)

let record_failure t e =
  Mutex.lock pool.lock;
  if t.failed = None then t.failed <- Some e;
  Mutex.unlock pool.lock;
  (* stop other domains from claiming further chunks; fail fast *)
  Atomic.set t.next t.nchunks

(* Returns (chunks executed, their summed wall time) — merged into the
   task record under the pool lock by workers, and published to the
   metrics registry by the caller after the barrier, so handle updates
   stay on the caller's domain. *)
let claim_chunks t =
  let inside = Domain.DLS.get inside_section in
  inside := true;
  let timed = !pmeters.pm_on in
  let chunks = ref 0 and secs = ref 0.0 in
  let rec go () =
    let c = Atomic.fetch_and_add t.next 1 in
    if c < t.nchunks then begin
      (if timed then begin
         let t0 = Unix.gettimeofday () in
         (try t.body c with e -> record_failure t e);
         secs := !secs +. (Unix.gettimeofday () -. t0)
       end
       else try t.body c with e -> record_failure t e);
      incr chunks;
      go ()
    end
  in
  go ();
  inside := false;
  (!chunks, !secs)

let rec worker_loop id last_gen =
  Mutex.lock pool.lock;
  while (not pool.quit) && pool.generation = last_gen do
    Condition.wait pool.work_ready pool.lock
  done;
  if pool.quit then Mutex.unlock pool.lock
  else begin
    let gen = pool.generation in
    let task = pool.task in
    Mutex.unlock pool.lock;
    (match task with
    | Some t when id < t.workers ->
        let chunks, secs = claim_chunks t in
        Mutex.lock pool.lock;
        t.w_chunks <- t.w_chunks + chunks;
        t.w_seconds <- t.w_seconds +. secs;
        t.running <- t.running - 1;
        if t.running = 0 then Condition.broadcast pool.work_done;
        Mutex.unlock pool.lock
    | _ -> ());
    worker_loop id gen
  end

let teardown () =
  Mutex.lock pool.lock;
  pool.quit <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  pool.size <- 0

(* Grow the pool to [want] parked workers.  Workers capture the generation
   current at spawn time, so a task published after this call is always
   observed as new. *)
let ensure_workers want =
  if pool.size < want then begin
    if pool.size = 0 then at_exit teardown;
    Mutex.lock pool.lock;
    let gen = pool.generation in
    Mutex.unlock pool.lock;
    for id = pool.size to want - 1 do
      pool.domains <- Domain.spawn (fun () -> worker_loop id gen) :: pool.domains
    done;
    pool.size <- want
  end

(* Fixed chunk partition: a function of the range only, never of the job
   count.  Chunk [c] of [n] indices covers [n*c/k, n*(c+1)/k) for
   k = min n 64 — balanced to within one index. *)
let max_chunks = 64

let run_chunked ~jobs ~nchunks body =
  if nchunks > 0 then
    if jobs <= 1 || nchunks = 1 || !(Domain.DLS.get inside_section) then begin
      let pm = !pmeters in
      if pm.pm_on then begin
        Metrics.incr pm.pm_seq_sections;
        let t0 = Unix.gettimeofday () in
        for c = 0 to nchunks - 1 do
          body c
        done;
        let dt = Unix.gettimeofday () -. t0 in
        Metrics.timer_add pm.pm_section dt;
        Metrics.timer_add pm.pm_capacity dt;
        Metrics.timer_add pm.pm_chunk_run dt;
        Metrics.add pm.pm_caller_chunks nchunks
      end
      else
        for c = 0 to nchunks - 1 do
          body c
        done
    end
    else begin
      let pm = !pmeters in
      let workers = min (jobs - 1) (nchunks - 1) in
      ensure_workers workers;
      let t =
        {
          body;
          nchunks;
          next = Atomic.make 0;
          workers;
          running = workers;
          failed = None;
          w_chunks = 0;
          w_seconds = 0.0;
        }
      in
      let t0 = if pm.pm_on then Unix.gettimeofday () else 0.0 in
      Mutex.lock pool.lock;
      pool.task <- Some t;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.lock;
      let caller_chunks, caller_secs = claim_chunks t in
      Mutex.lock pool.lock;
      while t.running > 0 do
        Condition.wait pool.work_done pool.lock
      done;
      pool.task <- None;
      Mutex.unlock pool.lock;
      if pm.pm_on then begin
        let dt = Unix.gettimeofday () -. t0 in
        Metrics.timer_add pm.pm_section dt;
        Metrics.timer_add pm.pm_capacity (dt *. float_of_int (workers + 1));
        Metrics.timer_add pm.pm_chunk_run (caller_secs +. t.w_seconds);
        Metrics.add pm.pm_caller_chunks caller_chunks;
        Metrics.add pm.pm_worker_chunks t.w_chunks
      end;
      match t.failed with Some e -> raise e | None -> ()
    end

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some j -> invalid_arg (Printf.sprintf "Parallel: jobs must be >= 1, got %d" j)

let parallel_for ?jobs lo hi f =
  let len = hi - lo in
  if len > 0 then begin
    let jobs = resolve_jobs jobs in
    let nchunks = min len max_chunks in
    let pm = !pmeters in
    if pm.pm_on then begin
      Metrics.incr pm.pm_sections;
      Metrics.add pm.pm_chunks nchunks;
      Metrics.add pm.pm_items len
    end;
    run_chunked ~jobs ~nchunks (fun c ->
        let a = lo + (len * c / nchunks) and b = lo + (len * (c + 1) / nchunks) in
        for i = a to b - 1 do
          f i
        done)
  end

let block_count n = if n <= 0 then 0 else min n max_chunks

let iter_blocks ?jobs n f =
  if n > 0 then begin
    let jobs = resolve_jobs jobs in
    let k = block_count n in
    let pm = !pmeters in
    if pm.pm_on then begin
      Metrics.incr pm.pm_sections;
      Metrics.add pm.pm_chunks k;
      Metrics.add pm.pm_items n
    end;
    run_chunked ~jobs ~nchunks:k (fun c -> f c (n * c / k) (n * (c + 1) / k))
  end

let map_array ?jobs n f =
  if n = 0 then [||]
  else begin
    let res = Array.make n None in
    parallel_for ?jobs 0 n (fun i -> res.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) res
  end

let map_list ?jobs f xs =
  let a = Array.of_list xs in
  Array.to_list (map_array ?jobs (Array.length a) (fun i -> f a.(i)))

let map_reduce ?jobs ~n ~map ~init ~reduce =
  let jobs = resolve_jobs jobs in
  if jobs <= 1 || n <= 1 then begin
    (* Sequential left fold — the parallel path below performs exactly this
       arithmetic (per-index values reduced in index order).  The counter
       mirroring keeps the deterministic metrics jobs-invariant: this
       shortcut must account for the same sections/chunks/items the
       chunked path (via [parallel_for]) would have recorded. *)
    let pm = !pmeters in
    if pm.pm_on && n > 0 then begin
      Metrics.incr pm.pm_sections;
      Metrics.add pm.pm_chunks (min n max_chunks);
      Metrics.add pm.pm_items n;
      Metrics.incr pm.pm_seq_sections
    end;
    let fold () =
      let acc = ref init in
      for i = 0 to n - 1 do
        acc := reduce !acc (map i)
      done;
      !acc
    in
    if pm.pm_on && n > 0 then begin
      let t0 = Unix.gettimeofday () in
      let r = fold () in
      let dt = Unix.gettimeofday () -. t0 in
      Metrics.timer_add pm.pm_section dt;
      Metrics.timer_add pm.pm_capacity dt;
      Metrics.timer_add pm.pm_chunk_run dt;
      Metrics.add pm.pm_caller_chunks (min n max_chunks);
      r
    end
    else fold ()
  end
  else Array.fold_left reduce init (map_array ~jobs n map)
