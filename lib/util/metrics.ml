(* Typed metrics registry — the unified observability plane.

   Design mirrors Trace: instrumentation sites take the registry as an
   optional argument and resolve HANDLES once, outside the hot loop.  A
   handle from a disabled registry is a shared dead record whose update
   functions test one immediate bool and return — no allocation, no
   hashing, no branch misprediction worth measuring (test_metrics checks
   the zero-allocation claim with a [Gc.minor_words] delta).

   Determinism contract (see DESIGN.md §1.9): every metric outside the
   [timing.*] namespace must be a pure function of the algorithm's work —
   byte-identical snapshots for any [--jobs] and any simulator engine.
   [timing.*] is the execution namespace: wall-clock timers (auto-prefixed
   here) and engine-/schedule-internal diagnostics (registered under
   [timing.] explicitly, e.g. [timing.congest.fast.arena_slots_touched]),
   excluded from the determinism gates in check.sh/CI. *)

type counter = { mutable cv : int; c_live : bool }
type gauge = { mutable gv : int; g_live : bool }

type histogram = {
  edges : int array; (* strictly increasing upper bounds, `le` semantics *)
  counts : int array; (* length = |edges| + 1; last bucket = overflow *)
  mutable h_sum : int;
  mutable h_total : int;
  h_live : bool;
}

type timer = {
  mutable seconds : float;
  mutable calls : int;
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
  t_live : bool;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Timer of timer

type t = {
  live : bool;
  tbl : (string, metric) Hashtbl.t;
  lock : Mutex.t; (* registration and snapshot; updates are caller-domain *)
  mutable partial : bool;
}

let create () =
  { live = true; tbl = Hashtbl.create 64; lock = Mutex.create (); partial = false }

let disabled =
  { live = false; tbl = Hashtbl.create 1; lock = Mutex.create (); partial = false }

let live t = t.live

(* Shared dead handles: registration against a disabled registry costs
   nothing and updates through the result are single-bool no-ops. *)
let dead_counter = { cv = 0; c_live = false }
let dead_gauge = { gv = 0; g_live = false }

let dead_histogram =
  { edges = [||]; counts = [| 0 |]; h_sum = 0; h_total = 0; h_live = false }

let dead_timer =
  {
    seconds = 0.0;
    calls = 0;
    minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    t_live = false;
  }

let timing_prefix = "timing."

let in_timing_namespace name =
  String.length name >= 7 && String.sub name 0 7 = timing_prefix

let check_name name =
  let ok_char = function
    | 'a' .. 'z' | '0' .. '9' | '_' | '.' -> true
    | _ -> false
  in
  if name = "" then invalid_arg "Metrics: empty metric name";
  if not (String.for_all ok_char name) then
    invalid_arg
      (Printf.sprintf
         "Metrics: bad name %S (dot-separated [a-z0-9_] segments only)" name);
  if
    name.[0] = '.'
    || name.[String.length name - 1] = '.'
    || List.exists (( = ) "") (String.split_on_char '.' name)
  then
    invalid_arg (Printf.sprintf "Metrics: bad name %S (empty segment)" name)

let register t name make describe =
  check_name name;
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.replace t.tbl name m;
          m)
  |> fun m ->
  match describe m with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered with another type" name)

let counter t name =
  if not t.live then (
    check_name name;
    dead_counter)
  else
    register t name
      (fun () -> Counter { cv = 0; c_live = true })
      (function Counter c -> Some c | _ -> None)

let gauge t name =
  if not t.live then (
    check_name name;
    dead_gauge)
  else
    register t name
      (fun () -> Gauge { gv = 0; g_live = true })
      (function Gauge g -> Some g | _ -> None)

(* Default bucket ladder: powers of two up to 64k — wide enough for
   per-round message counts at n = 10^5 while keeping snapshots small. *)
let default_buckets =
  [| 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536 |]

let histogram ?(buckets = default_buckets) t name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket edges";
  Array.iteri
    (fun i e ->
      if i > 0 && e <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: bucket edges must be strictly increasing")
    buckets;
  if not t.live then (
    check_name name;
    dead_histogram)
  else
    register t name
      (fun () ->
        Histogram
          {
            edges = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_sum = 0;
            h_total = 0;
            h_live = true;
          })
      (function Histogram h -> Some h | _ -> None)

let timer t name =
  let name = if in_timing_namespace name then name else timing_prefix ^ name in
  if not t.live then (
    check_name name;
    dead_timer)
  else
    register t name
      (fun () ->
        Timer
          {
            seconds = 0.0;
            calls = 0;
            minor_words = 0.0;
            major_words = 0.0;
            promoted_words = 0.0;
            t_live = true;
          })
      (function Timer tm -> Some tm | _ -> None)

(* ---------- hot-path updates (no allocation) ---------- *)

let incr c = if c.c_live then c.cv <- c.cv + 1
let add c n = if c.c_live then c.cv <- c.cv + n
let set g v = if g.g_live then g.gv <- v
let set_max g v = if g.g_live && v > g.gv then g.gv <- v

let observe h v =
  if h.h_live then begin
    (* first bucket whose edge >= v, by binary search over the edges *)
    let lo = ref 0 and hi = ref (Array.length h.edges) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= Array.unsafe_get h.edges mid then hi := mid else lo := mid + 1
    done;
    let b = !lo in
    h.counts.(b) <- h.counts.(b) + 1;
    h.h_sum <- h.h_sum + v;
    h.h_total <- h.h_total + 1
  end

let timer_add tm dt =
  if tm.t_live then begin
    if dt < 0.0 then invalid_arg "Metrics.timer_add: negative duration";
    tm.seconds <- tm.seconds +. dt;
    tm.calls <- tm.calls + 1
  end

let timer_set tm ~seconds ~calls ~minor_words ~major_words ~promoted_words =
  if tm.t_live then begin
    tm.seconds <- seconds;
    tm.calls <- calls;
    tm.minor_words <- minor_words;
    tm.major_words <- major_words;
    tm.promoted_words <- promoted_words
  end

let time tm f =
  if not tm.t_live then f ()
  else begin
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        let s1 = Gc.quick_stat () in
        tm.seconds <- tm.seconds +. dt;
        tm.calls <- tm.calls + 1;
        tm.minor_words <- tm.minor_words +. (s1.Gc.minor_words -. s0.Gc.minor_words);
        tm.major_words <- tm.major_words +. (s1.Gc.major_words -. s0.Gc.major_words);
        tm.promoted_words <-
          tm.promoted_words +. (s1.Gc.promoted_words -. s0.Gc.promoted_words))
      f
  end

let value c = c.cv
let gauge_value g = g.gv
let mark_partial t = if t.live then t.partial <- true

(* ---------- snapshots ---------- *)

type hist_data = { hedges : int array; hcounts : int array; hsum : int; htotal : int }

type timer_data = {
  tseconds : float;
  tcalls : int;
  tminor_words : float;
  tmajor_words : float;
  tpromoted_words : float;
}

type snapshot = {
  partial : bool;
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_data) list;
  timers : (string * timer_data) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot t =
  Mutex.protect t.lock (fun () ->
      let counters = ref []
      and gauges = ref []
      and histograms = ref []
      and timers = ref [] in
      Hashtbl.iter
        (fun name m ->
          match m with
          | Counter c -> counters := (name, c.cv) :: !counters
          | Gauge g -> gauges := (name, g.gv) :: !gauges
          | Histogram h ->
              histograms :=
                ( name,
                  {
                    hedges = Array.copy h.edges;
                    hcounts = Array.copy h.counts;
                    hsum = h.h_sum;
                    htotal = h.h_total;
                  } )
                :: !histograms
          | Timer tm ->
              timers :=
                ( name,
                  {
                    tseconds = tm.seconds;
                    tcalls = tm.calls;
                    tminor_words = tm.minor_words;
                    tmajor_words = tm.major_words;
                    tpromoted_words = tm.promoted_words;
                  } )
                :: !timers)
        t.tbl;
      {
        partial = t.partial;
        counters = List.sort by_name !counters;
        gauges = List.sort by_name !gauges;
        histograms = List.sort by_name !histograms;
        timers = List.sort by_name !timers;
      })

let strip_timing s =
  let keep (name, _) = not (in_timing_namespace name) in
  {
    s with
    counters = List.filter keep s.counters;
    gauges = List.filter keep s.gauges;
    histograms = List.filter keep s.histograms;
    timers = [] (* timers always live under timing.* *);
  }

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_timer s name = List.assoc_opt name s.timers

(* ---------- Prometheus-style text exposition ---------- *)

(* Deterministic: one line per sample, names in sorted order, floats in
   shortest round-tripping form.  Dots are kept in the names (this is an
   exposition in the Prometheus *shape* — TYPE comments, `le` bucket
   labels, _sum/_count — not a scrape target). *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let exposition ?(strip = false) s =
  let s = if strip then strip_timing s else s in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt in
  if s.partial then line "# partial 1";
  List.iter
    (fun (name, v) ->
      line "# TYPE %s counter" name;
      line "%s %d" name v)
    s.counters;
  List.iter
    (fun (name, v) ->
      line "# TYPE %s gauge" name;
      line "%s %d" name v)
    s.gauges;
  List.iter
    (fun (name, h) ->
      line "# TYPE %s histogram" name;
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          line "%s_bucket{le=\"%d\"} %d" name h.hedges.(i) !cum)
        (Array.sub h.hcounts 0 (Array.length h.hedges));
      cum := !cum + h.hcounts.(Array.length h.hcounts - 1);
      line "%s_bucket{le=\"+Inf\"} %d" name !cum;
      line "%s_sum %d" name h.hsum;
      line "%s_count %d" name h.htotal)
    s.histograms;
  List.iter
    (fun (name, tm) ->
      line "# TYPE %s timer" name;
      line "%s_seconds %s" name (float_str tm.tseconds);
      line "%s_calls %d" name tm.tcalls;
      line "%s_minor_words %s" name (float_str tm.tminor_words);
      line "%s_major_words %s" name (float_str tm.tmajor_words);
      line "%s_promoted_words %s" name (float_str tm.tpromoted_words))
    s.timers;
  Buffer.contents buf

(* ---------- human report ---------- *)

let spark_levels = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline counts =
  let m = Array.fold_left max 0 counts in
  if m = 0 then String.concat "" (List.init (Array.length counts) (fun _ -> " "))
  else
    String.concat ""
      (Array.to_list
         (Array.map
            (fun c ->
              if c = 0 then spark_levels.(0)
              else spark_levels.(1 + (c * 7 / m)))
            counts))

let pp_report ?(top = 10) fmt s =
  if s.partial then
    Format.fprintf fmt "PARTIAL snapshot (the run was interrupted)@.";
  let det, exec = List.partition (fun (n, _) -> not (in_timing_namespace n)) s.counters in
  let top_of lst =
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) lst in
    List.filteri (fun i _ -> i < top) sorted
  in
  if det <> [] then begin
    Format.fprintf fmt "top counters (deterministic):@.";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-44s %12d@." n v) (top_of det)
  end;
  if exec <> [] then begin
    Format.fprintf fmt "top counters (execution namespace):@.";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-44s %12d@." n v) (top_of exec)
  end;
  if s.gauges <> [] then begin
    Format.fprintf fmt "gauges:@.";
    List.iter (fun (n, v) -> Format.fprintf fmt "  %-44s %12d@." n v) s.gauges
  end;
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "histogram %s (count %d, sum %d):@." name h.htotal h.hsum;
      Format.fprintf fmt "  |%s| le %s,+Inf@." (sparkline h.hcounts)
        (String.concat ","
           (Array.to_list (Array.map string_of_int h.hedges))))
    s.histograms;
  if s.timers <> [] then begin
    Format.fprintf fmt
      "timers (wall-clock + GC quick_stat deltas; excluded from determinism \
       gates):@.";
    Format.fprintf fmt "  %-44s %10s %7s %12s %12s@." "phase" "seconds" "calls"
      "minor Mw" "major Mw";
    List.iter
      (fun (n, tm) ->
        Format.fprintf fmt "  %-44s %10.4f %7d %12.3f %12.3f@." n tm.tseconds
          tm.tcalls
          (tm.tminor_words /. 1e6)
          (tm.tmajor_words /. 1e6))
      s.timers
  end
