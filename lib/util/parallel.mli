(** Deterministic domain-pool parallelism.

    A small reusable pool of worker domains (OCaml 5 [Domain]s) for the
    embarrassingly parallel kernels of the repo: per-source Dijkstras in the
    stretch/APSP verifiers and independent seeded trials in the bench
    harness.

    The layer is built so that parallelism can never change a result:

    - the chunk partition of an index range is a fixed function of the range
      alone (never of the job count), and chunks are claimed dynamically
      only to decide {e which domain} computes them;
    - {!map_reduce} stores one value per index and reduces them on the
      calling domain in index order, so the reduction performs {e exactly}
      the arithmetic of the sequential left fold — float sums are
      bit-identical for any job count, including [jobs = 1];
    - [jobs = 1] takes a plain sequential path with no domain traffic.

    Worker domains are spawned lazily on first use, parked between parallel
    sections, and joined at process exit.  Nested parallel sections (a
    parallel body calling back into this module) degrade to the sequential
    path instead of deadlocking or oversubscribing. *)

val default_jobs : unit -> int
(** Job count from the [ULTRASPAN_JOBS] environment variable (a positive
    integer), or 1 when unset.  This is the default for every [?jobs]
    argument in the library, so exporting [ULTRASPAN_JOBS=4] parallelizes
    the verification kernels without touching any call site.
    @raise Invalid_argument on a malformed value. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()] — what the machine can actually
    run in parallel.  Used by the perf harness to decide whether a speedup
    floor is meaningful. *)

val set_metrics : Metrics.t option -> unit
(** Attach (or detach, with [None]) a global metrics registry.  The layer
    is process-global, so its instrumentation is too.  Call only while no
    parallel section is running.

    Deterministic counters — [parallel.sections_total],
    [parallel.chunks_total], [parallel.items_total] — are functions of the
    submitted work alone and are byte-identical for every job count (the
    sequential [map_reduce] shortcut mirrors the chunked path's
    accounting).  Schedule- and clock-dependent data live in the execution
    namespace: [timing.parallel.pool.sequential_sections] /
    [caller_chunks] / [worker_chunks] counters and the
    [timing.parallel.pool.section] / [chunk_run] / [job_capacity] timers.
    Pool utilization is [chunk_run / job_capacity] ([job_capacity]
    accumulates section wall-clock × participating domains).  Worker-side
    measurements are merged under the pool lock and published to the
    registry from the calling domain after each section's barrier. *)

val parallel_for : ?jobs:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for ?jobs lo hi f] runs [f i] for every [lo <= i < hi],
    fanned across [jobs] domains (the caller participates; [jobs - 1]
    workers are taken from the pool).  [f] must write only to disjoint
    per-index state; completion of the call synchronizes all writes.
    Exceptions raised by [f] are re-raised on the caller. *)

val block_count : int -> int
(** Number of blocks {!iter_blocks} partitions a range of [n] indices
    into: [min n 64], and [0] for an empty range.  A fixed function of
    [n] alone — callers sizing per-block accumulators get the same shard
    layout for every job count. *)

val iter_blocks : ?jobs:int -> int -> (int -> int -> int -> unit) -> unit
(** [iter_blocks ?jobs n f] calls [f block lo hi] once per block of the
    fixed partition of [0 .. n-1] ([block_count n] blocks, block [c]
    covering [n*c/k .. n*(c+1)/k - 1]), fanned across [jobs] domains.
    This is {!parallel_for} exposed at block granularity, for callers
    that keep per-block state (e.g. the sharded CONGEST delivery
    backend's per-shard stat accumulators).  [f] must write only to
    per-block state; completion of the call synchronizes all writes. *)

val map_array : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_array ?jobs n f] is [Array.init n f] with the calls fanned across
    domains.  Element order is index order regardless of scheduling. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ?jobs f xs] is [List.map f xs] with the calls fanned across
    domains; result order is list order. *)

val map_reduce :
  ?jobs:int -> n:int -> map:(int -> 'a) -> init:'b -> reduce:('b -> 'a -> 'b) -> 'b
(** [map_reduce ?jobs ~n ~map ~init ~reduce] is
    [reduce (... (reduce init (map 0)) ...) (map (n-1))]: the maps run in
    parallel, the reduction runs on the caller in index order.  Bit-identical
    to the sequential left fold for every job count. *)
