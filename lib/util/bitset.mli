(** Compact fixed-capacity bitsets over [0 .. n-1].

    Backed by a [Bytes.t]; used for visited marks and frontier sets in the
    graph traversals where a [bool array] would double memory traffic. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0 .. n-1]. *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit
(** Empty the set. *)

val cardinal : t -> int
(** Number of members.  O(n/8). *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list
(** Members in increasing order. *)
