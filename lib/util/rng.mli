(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (SplitMix64).  Every randomized algorithm
    in the library threads an explicit [Rng.t] so that runs are reproducible
    bit-for-bit from a seed; nothing in the library touches the global
    [Stdlib.Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (practically) independent of the remainder of [t]'s stream.  Used to give
    sub-computations their own generators without sharing state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 30 uniform bits, as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
