(** Imperative binary min-heap priority queue.

    Used by Dijkstra, Prim and the clustering growers.  Priorities are
    compared with a user-supplied total order fixed at creation time; ties
    are broken arbitrarily (but deterministically for a fixed insertion
    sequence, which keeps the whole library reproducible). *)

type ('p, 'a) t
(** A queue of values of type ['a] keyed by priorities of type ['p]. *)

val create : ?capacity:int -> cmp:('p -> 'p -> int) -> unit -> ('p, 'a) t
(** Fresh empty queue.  [cmp] must be a total order; the minimum element
    under [cmp] is served first. *)

val length : ('p, 'a) t -> int

val is_empty : ('p, 'a) t -> bool

val push : ('p, 'a) t -> 'p -> 'a -> unit
(** Insert a value with the given priority.  O(log n). *)

val peek : ('p, 'a) t -> ('p * 'a) option
(** Minimum element, without removing it.  O(1). *)

val pop : ('p, 'a) t -> ('p * 'a) option
(** Remove and return the minimum element.  O(log n). *)

val pop_exn : ('p, 'a) t -> 'p * 'a
(** Like {!pop} but raises [Invalid_argument] on an empty queue. *)

val clear : ('p, 'a) t -> unit
(** Remove all elements, keeping the allocated storage. *)
