let prime = 2147483647 (* 2^31 - 1, Mersenne prime *)

type t = { coeffs : int array }

(* (p-1)^2 < 2^62 - 1 = max_int on 64-bit OCaml, so products of two reduced
   residues never overflow. *)
let mul_mod a b = a * b mod prime

let add_mod a b =
  let s = a + b in
  if s >= prime then s - prime else s

let create ~degree rng =
  if degree < 0 then invalid_arg "Hash_family.create: negative degree";
  let coeffs = Array.init (degree + 1) (fun _ -> Rng.int rng prime) in
  { coeffs }

let of_coeffs cs =
  if Array.length cs = 0 then invalid_arg "Hash_family.of_coeffs: empty";
  { coeffs = Array.map (fun c -> ((c mod prime) + prime) mod prime) cs }

let coeffs t = Array.copy t.coeffs

let degree t = Array.length t.coeffs - 1

let eval t i =
  let x = ((i mod prime) + prime) mod prime in
  let acc = ref 0 in
  for j = Array.length t.coeffs - 1 downto 0 do
    acc := add_mod (mul_mod !acc x) t.coeffs.(j)
  done;
  !acc

let eval_mod t i m =
  if m <= 0 then invalid_arg "Hash_family.eval_mod: modulus must be positive";
  eval t i mod m

let indicator t ~threshold i = eval t i < threshold

let threshold_of_prob p =
  if p < 0.0 || p > 1.0 then invalid_arg "Hash_family.threshold_of_prob";
  int_of_float (p *. float_of_int prime)

let sample_indicators t ~threshold n =
  Array.init n (fun i -> indicator t ~threshold i)
