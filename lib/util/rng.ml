type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = s }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is < bound/2^62, negligible
     for the graph sizes we use, but we keep rejection sampling anyway since
     it is cheap and exact. *)
  let mask_ok v = Int64.to_int (Int64.shift_right_logical v 1) in
  let rec loop () =
    let v = mask_ok (int64 t) in
    let r = v mod bound in
    if v - r + (bound - 1) >= 0 then r else loop ()
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
