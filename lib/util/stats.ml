let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 0.5

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then [||]
  else begin
    let lo, hi = min_max xs in
    if hi = lo then
      (* Degenerate data (all samples equal): one zero-width bucket at the
         data's own value, rather than [bins] buckets of an arbitrary
         width-1 grid unrelated to the data's scale. *)
      [| (lo, hi, Array.length xs) |]
    else begin
    let width = (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.mapi
      (fun i c ->
        let l = lo +. (float_of_int i *. width) in
        (l, l +. width, c))
      counts
    end
  end

let mean_int xs = mean (Array.map float_of_int xs)

let sum_int xs = Array.fold_left ( + ) 0 xs
