(** Wall-clock phase timers for the bench harness and the CLI.

    A [Profile.t] accumulates elapsed wall-clock seconds under named
    phases: wrap each phase in {!time} (or feed durations measured
    elsewhere to {!record}) and print the ledger with {!pp}.  Phases keep
    first-use order; re-entering a label accumulates into it.  This is
    observability only — timing a phase never changes its result. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t label f] runs [f], adds its elapsed wall-clock time under
    [label] (even if [f] raises), and returns [f ()]'s result. *)

val record : t -> string -> float -> unit
(** Add a duration in seconds measured externally.  Raises
    [Invalid_argument] on a negative duration. *)

val phases : t -> (string * float * int) list
(** [(label, total seconds, call count)] per phase, in first-use order. *)

val total : t -> float
(** Sum of all phase durations. *)

val pp : Format.formatter -> t -> unit
