(** Wall-clock phase timers for the bench harness and the CLI.

    A [Profile.t] accumulates elapsed wall-clock seconds (and GC
    [quick_stat] word deltas) under named phases.  Wrap each phase in
    {!time} (or feed durations measured elsewhere to {!record}) and print
    the ledger with {!pp}.  Phases keep first-use order; re-entering a
    label accumulates into it.

    Scopes nest: a {!time} call inside another runs under the path
    ["outer/inner"], rendered indented by {!pp} and exported
    hierarchically.  Top-level labels behave exactly as the historical
    flat profiler.  This is observability only — timing a phase never
    changes its result. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t label f] runs [f], adds its elapsed wall-clock time and GC
    word deltas under [label] — nested under the enclosing {!time} scope's
    path, if any — (even if [f] raises), and returns [f ()]'s result. *)

val record : t -> string -> float -> unit
(** Add a duration in seconds measured externally, under the current scope
    path.  No GC attribution.  Raises [Invalid_argument] on a negative
    duration. *)

val phases : t -> (string * float * int) list
(** [(path, total seconds, call count)] per phase, in first-use order;
    nested phases appear as ["outer/inner"] paths. *)

val total : t -> float
(** Sum of all top-level phase durations (nested scopes are already inside
    their parents, so they are not double-counted). *)

val pp : Format.formatter -> t -> unit

val export : t -> Metrics.t -> unit
(** Publish every phase into the registry as a [timing.profile.*] timer
    (labels sanitized to metric-name characters, ['/'] becoming ['.']).
    Uses absolute-overwrite semantics, so re-exporting after further
    phases never double-counts. *)

val chrome_events : t -> string list
(** Each timed scope instance as a Chrome-trace complete event (JSON
    object, one per string) on [tid 1], microsecond timestamps relative to
    {!create} — suitable for [Trace.to_chrome ~extra_events].  At most
    4096 spans are retained. *)
