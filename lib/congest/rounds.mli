(** CONGEST round accounting for centrally-simulated algorithms.

    The heavyweight algorithms of the paper (derandomized Baswana–Sen, the
    linear-size phases, the clustering growers) are simulated centrally in
    this library, but every step of those algorithms has an explicit round
    cost in the paper's analysis (an aggregation over a radius-r cluster
    costs O(r), a pipelined count over a depth-d tree costs O(d + t), one
    network-decomposition colour class costs its weak diameter, ...).  A
    [Rounds.t] tallies those charges so the bench harness can report
    simulated round complexities that follow the paper's accounting. *)

type t

val create : unit -> t

val charge : t -> ?label:string -> int -> unit
(** Add the given number of rounds ([>= 0]) under an optional label. *)

val charge_aggregate : ?label:string -> t -> radius:int -> unit
(** Convergecast + broadcast over a tree of the given hop radius:
    [2·radius + 2] rounds. *)

val total : t -> int

val breakdown : t -> (string * int) list
(** Per-label subtotals, sorted by label; unlabeled charges appear under
    ["(other)"]. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds all of [src]'s charges to [dst]. *)

val pp : Format.formatter -> t -> unit
