(** CONGEST round accounting for centrally-simulated algorithms.

    The heavyweight algorithms of the paper (derandomized Baswana–Sen, the
    linear-size phases, the clustering growers) are simulated centrally in
    this library, but every step of those algorithms has an explicit round
    cost in the paper's analysis (an aggregation over a radius-r cluster
    costs O(r), a pipelined count over a depth-d tree costs O(d + t), one
    network-decomposition colour class costs its weak diameter, ...).  A
    [Rounds.t] tallies those charges so the bench harness can report
    simulated round complexities that follow the paper's accounting.

    Charges are organised as a tree of named {e spans}
    (algorithm → phase → step): {!span} opens a nested span for the
    duration of a callback, and every {!charge} lands under the innermost
    open span.  Charging with no open span (the pre-span flat API) puts the
    label directly at the root, so one-level users see exactly the old
    behaviour. *)

type t

type span = {
  name : string;
  self : int;  (** rounds charged directly to this span *)
  subtotal : int;  (** self plus every descendant *)
  children : span list;  (** in first-charge order *)
}

val create : unit -> t

val charge : t -> ?label:string -> int -> unit
(** Add the given number of rounds under an optional label, inside the
    innermost open span.  Raises [Invalid_argument] on a negative charge
    (the documented [>= 0] precondition is enforced). *)

val charge_aggregate : ?label:string -> t -> radius:int -> unit
(** Convergecast + broadcast over a tree of the given hop radius:
    [2·radius + 2] rounds.  Raises [Invalid_argument] on a negative
    radius. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] with a span named [name] opened under the
    current span: every charge made during [f] is attributed to (a child
    of) that span.  Re-entering an existing name accumulates into the same
    node; the span is closed even if [f] raises. *)

val total : t -> int

val breakdown : t -> (string * int) list
(** Per-label subtotals as ["algorithm/phase/label"] slash-joined paths,
    sorted; only directly-charged nodes appear.  Charges made with no open
    span keep their bare label (unlabeled ones under ["(other)"]), so flat
    users see the historical output. *)

val spans : t -> span list
(** The span forest under the root, in first-charge order. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds all of [src]'s charges to [dst], grafting
    [src]'s span tree under [dst]'s innermost open span. *)

val pp : Format.formatter -> t -> unit
(** Total, then the span tree (subtotals on inner nodes, self-charges on
    leaves), indented two spaces per level. *)
