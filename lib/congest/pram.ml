open! Import

type t = {
  mutable work : int;
  mutable depth : int;
  tbl : (string, int * int) Hashtbl.t;
}

let create () = { work = 0; depth = 0; tbl = Hashtbl.create 16 }

let record t label w d =
  let cw, cd = Option.value ~default:(0, 0) (Hashtbl.find_opt t.tbl label) in
  Hashtbl.replace t.tbl label (cw + w, cd + d)

let charge ?(label = "(other)") t ~work ~depth =
  if work < 0 || depth < 0 then invalid_arg "Pram.charge: negative";
  t.work <- t.work + work;
  t.depth <- t.depth + depth;
  record t label work depth

let charge_parallel ?(label = "(parallel)") t branches =
  let w = List.fold_left (fun a (bw, _) -> a + bw) 0 branches in
  let d = List.fold_left (fun a (_, bd) -> max a bd) 0 branches in
  charge t ~label ~work:w ~depth:d

let work t = t.work

let depth t = t.depth

let breakdown t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] |> List.sort compare

let merge_sequential dst src =
  Hashtbl.iter (fun label (w, d) -> charge dst ~label ~work:w ~depth:d) src.tbl

let pp fmt t =
  Format.fprintf fmt "work=%d depth=%d" t.work t.depth;
  List.iter
    (fun (k, (w, d)) -> Format.fprintf fmt "@.  %-28s work=%-10d depth=%d" k w d)
    (breakdown t)
