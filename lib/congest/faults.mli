open! Import

(** Deterministic fault injection for the CONGEST simulator.

    A {!spec} is an immutable, declarative fault plan: crash-stop node
    failures and permanent link failures pinned to specific rounds, plus a
    per-delivery probabilistic message-drop rate driven by the library's
    SplitMix64 generator.  A [(seed, spec)] pair replays {e exactly}: two
    runs of the same program on the same graph with injectors built from
    equal specs produce identical states, statistics and fault-event logs.

    Semantics (enforced by {!Network.run}):

    - A node crashed at round [r] takes no step from round [r] on: it sends
      nothing, and every message addressed to it — in flight or sent later —
      is dropped.  Crash-stop, no recovery.
    - A link severed at round [r] drops every message {e sent} on it from
      round [r] on.  Messages already in flight (sent at round [r-1]) still
      arrive: the failure cuts the wire, not the receiver's buffer.
    - Probabilistic drops apply to deliveries that survived the two rules
      above, each with probability [drop_prob], consuming the injector's
      private RNG stream in the deterministic node-order/outbox-order of the
      simulator.

    Fault events never raise: a program under faults runs to quiescence (or
    to the round limit) and the damage is reported in the enriched
    {!Network.stats} and the chronological {!events} log. *)

(** {1 Plans} *)

type spec = {
  crashes : (int * int) list;  (** [(round, node)]: crash-stop at round start. *)
  link_failures : (int * int * int) list;
      (** [(round, u, v)]: the (undirected) link dies at round start. *)
  drop_prob : float;  (** per-delivery drop probability in [0, 1]. *)
  seed : int;  (** seed of the private drop RNG. *)
}

val empty : spec
(** No faults.  Running under [empty] is bit-identical to running without
    an injector (tested). *)

val crash : round:int -> int -> spec -> spec
(** Add one crash-stop failure.  [round >= 0]. *)

val sever : round:int -> int -> int -> spec -> spec
(** Add one permanent link failure (endpoint order irrelevant). *)

val with_drops : ?seed:int -> float -> spec -> spec
(** Set the probabilistic drop rate (and optionally reseed the drop RNG).
    Raises [Invalid_argument] outside [0, 1]. *)

val random_crashes :
  rng:Util.Rng.t -> n:int -> within:int -> count:int -> spec -> spec
(** Add [count] crashes of distinct nodes drawn uniformly from [0, n) at
    rounds uniform in [0, within].  Requires [count <= n]. *)

val random_link_failures :
  rng:Util.Rng.t -> Graph.t -> within:int -> count:int -> spec -> spec
(** Add [count] permanent failures of distinct edges of the graph, at
    rounds uniform in [0, within].  Requires [count <= m]. *)

val pp : Format.formatter -> spec -> unit
(** One-line summary: #crashes, #link failures, drop rate, seed. *)

val to_update_stream : Graph.t -> spec -> (int * (int * int) list) list
(** Reinterpret the permanent failures of a plan as batched edge deletions
    on [g]: a link failure {e is} an edge deletion, and a crash-stop node
    failure deletes every edge still incident to the node.  The result is
    one [(round, deletions)] batch per round that kills at least one edge,
    in increasing round order; each batch lists its dead edges as canonical
    [(u, v)] pairs ([u < v]) in ascending order, every graph edge appearing
    at most once across the whole stream.  Severed pairs that are not edges
    of [g] are skipped, and [drop_prob] is ignored — probabilistic drops
    are transient, not topology changes.  This is the bridge that lets any
    PR 1 fault plan replay through the dynamic-update engine
    ([Update_stream.of_faults] wraps it).
    Raises [Invalid_argument] on out-of-range nodes. *)

(** {1 Fault events} *)

type drop_reason =
  | Chance  (** lost to the probabilistic drop rate *)
  | Link_down  (** sent over a severed link *)
  | Receiver_crashed  (** addressed to (or in flight towards) a crashed node *)

type event =
  | Crash of { round : int; node : int }
  | Sever of { round : int; u : int; v : int }
  | Drop of { round : int; sender : int; target : int; reason : drop_reason }

val pp_event : Format.formatter -> event -> unit

(** {1 Injectors} *)

type t
(** A single-use stateful injector compiled from a {!spec}: it carries the
    drop RNG and accumulates the event log of one run.  Build a fresh one
    per run; {!Network.run} rejects a reused injector. *)

val make : spec -> t

val spec : t -> spec
(** The plan this injector was compiled from. *)

val events : t -> event list
(** Chronological log of everything the injector did, available after (or
    during) the run. *)

val drops : t -> int

val crashed_nodes : t -> int
(** Number of crash events applied so far (scheduled crashes of already
    crashed nodes are not double counted). *)

val severed_links : t -> int

(** {1 Simulator hooks}

    Called by {!Network.run}; user code never needs these, but they are
    exposed so alternative simulators can reuse the fault model. *)

val start : t -> n:int -> unit
(** Validate the plan against a network of [n] nodes and mark the injector
    used.  Raises [Invalid_argument] on out-of-range nodes or reuse. *)

val begin_round : t -> round:int -> unit
(** Apply every crash and link failure scheduled at (or before) [round].
    Rounds must be presented in increasing order. *)

val is_crashed : t -> int -> bool

val deliver : t -> round:int -> sender:int -> target:int -> bool
(** Should a message sent this round by [sender] to [target] be delivered?
    Checks, in order: severed link, crashed receiver, probabilistic drop —
    recording a {!Drop} event on the first rule that fires. *)

val drop_in_flight : t -> round:int -> sender:int -> target:int -> unit
(** Record the loss of an in-flight message whose receiver crashed before
    delivery. *)
