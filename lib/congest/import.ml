(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Bfs = Ultraspan_graph.Bfs
module Util = Ultraspan_util
