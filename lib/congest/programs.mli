open! Import

(** Distributed primitives written natively as CONGEST node programs.

    These run on the real message-passing simulator ({!Network.run}) and
    double as executable documentation of the model: their outputs are
    cross-checked against the centralized equivalents in the test-suite,
    and their measured round counts against the textbook bounds.

    Every program accepts an optional {!Trace} sink, forwarded verbatim to
    [Network.run ?trace], recording its per-round convergence behaviour
    without changing it, and optional [?engine] / [?backend] / [?jobs]
    selecting the simulator message plane, delivery backend and domain
    budget (see {!Network.engine} and {!Network.backend}), likewise
    forwarded verbatim.  An optional [?metrics] registry, forwarded to
    [Network.run ?metrics], accumulates the deterministic run counters
    described there. *)

(** {1 BFS tree} *)

type bfs_result = { dist : int array; parent : int array }

val bfs :
  ?faults:Faults.t -> ?trace:Trace.t ->
  ?metrics:Ultraspan_util.Metrics.t -> ?engine:Network.engine ->
  ?backend:Network.backend -> ?jobs:int ->
  Graph.t -> root:int -> bfs_result * Network.stats
(** Distributed BFS flooding from the root.  Rounds ~ eccentricity + O(1);
    [dist]/[parent] agree with {!Bfs.tree}.  Under a fault schedule the
    protocol still terminates: unreached vertices keep [dist = -1], which
    makes BFS the resilience probe of the bench harness. *)

(** {1 Broadcast / convergecast} *)

val broadcast_max :
  ?faults:Faults.t -> ?trace:Trace.t ->
  ?metrics:Ultraspan_util.Metrics.t -> ?engine:Network.engine ->
  ?backend:Network.backend -> ?jobs:int ->
  Graph.t -> values:int array -> int array * Network.stats
(** Every node learns the maximum of all initial values, by flooding;
    rounds ~ diameter + O(1).  (A stand-in for generic broadcast: any
    idempotent associative aggregate works the same way.)  Under faults,
    nodes cut off from the maximum keep the largest value that reached
    them. *)

(** {1 Maximal matching} *)

val maximal_matching :
  ?trace:Trace.t -> ?metrics:Ultraspan_util.Metrics.t ->
  ?engine:Network.engine ->
  ?backend:Network.backend -> ?jobs:int -> Graph.t ->
  int array * Network.stats
(** Deterministic distributed maximal matching by locally-minimal edge
    proposals (each round, every unmatched node points at its smallest
    unmatched neighbour; mutually-pointing pairs marry).  Returns
    [mate] with [-1] for unmatched.  Validity (matching + maximality)
    is checked in tests. *)

(** {1 Weighted single-source shortest paths} *)

val bellman_ford :
  ?trace:Trace.t -> ?metrics:Ultraspan_util.Metrics.t ->
  ?engine:Network.engine ->
  ?backend:Network.backend -> ?jobs:int -> Graph.t -> source:int ->
  (int array * int array) * Network.stats
(** Distributed Bellman–Ford: distance announcements flood and relax until
    quiescence.  Returns [(dist, parent)] ([max_int]/[-1] when
    unreachable); agrees with the centralized Dijkstra (tested).  Rounds
    are bounded by the hop length of the longest shortest path. *)

(** {1 Spanning forest} *)

val spanning_forest :
  ?trace:Trace.t -> ?metrics:Ultraspan_util.Metrics.t ->
  ?engine:Network.engine ->
  ?backend:Network.backend -> ?jobs:int -> Graph.t ->
  int list * Network.stats
(** Min-id flooding: every vertex adopts the smallest vertex id reachable
    from it, and its parent is the neighbour it last adopted from — the
    parent edges form a spanning forest (one tree per component, rooted at
    the component's minimum vertex).  Rounds ~ component eccentricity.
    This is the distributed substrate under Thurimella-style certificate
    peeling. *)

(** {1 Maximal independent set} *)

val luby_mis :
  ?trace:Trace.t -> ?metrics:Ultraspan_util.Metrics.t ->
  ?engine:Network.engine ->
  ?backend:Network.backend -> ?jobs:int -> seed:int -> Graph.t ->
  bool array * Network.stats
(** Luby's randomized MIS as a message-passing program: three rounds per
    phase (priorities, winner announcements, removal notices); local maxima
    join the set.  Per-node randomness comes from a hash of
    [(seed, vertex, phase)], so runs are reproducible.  O(log n) phases
    w.h.p. *)
