open! Import

type inbox = (int * int array) list
type outbox = (int * int array) list
type 'a step = { state : 'a; out : outbox; halt : bool }

type 'a program = {
  init : Graph.t -> int -> 'a;
  round : Graph.t -> round:int -> me:int -> 'a -> inbox -> 'a step;
}

type engine = [ `Fast | `Ref ]
type backend = [ `Seq | `Sharded ]

type stats = {
  rounds : int;
  messages : int;
  max_words : int;
  wakeups : int;
  drops : int;
  crashed_nodes : int;
  severed_links : int;
}

exception Message_too_large of { sender : int; words : int; limit : int }
exception Not_a_neighbor of { sender : int; target : int }
exception Duplicate_message of { sender : int; target : int }
exception Round_limit_exceeded of { limit : int; partial : stats }

module Metrics = Ultraspan_util.Metrics
module Parallel = Ultraspan_util.Parallel

(* Flat payload arena shared by the [`Seq] and [`Sharded] backends of the
   fast engine: one [word_limit]-word region per arc in an off-heap
   Bigarray, plus a per-arc length.  Sending copies the payload words in;
   inbox assembly materializes a fresh [int array] per delivered message.
   Compared to the boxed [int array array] arena this removes the
   2m-pointer array the GC had to trace every major cycle and the
   unbounded retention of stale payloads. *)
type arena = {
  words : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  plen : int array;  (* per-slot payload length *)
  stride : int;  (* = word_limit; slot [a] occupies [a*stride ..) *)
}

let make_arena ~arcs ~word_limit =
  {
    words = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (arcs * word_limit);
    plen = Array.make (max 1 arcs) 0;
    stride = word_limit;
  }

let[@inline] arena_write ar slot pl words =
  let b = slot * ar.stride in
  for i = 0 to words - 1 do
    Bigarray.Array1.unsafe_set ar.words (b + i) (Array.unsafe_get pl i)
  done;
  Array.unsafe_set ar.plen slot words

let[@inline] arena_read ar slot =
  let words = Array.unsafe_get ar.plen slot in
  let pl = Array.make words 0 in
  let b = slot * ar.stride in
  for i = 0 to words - 1 do
    Array.unsafe_set pl i (Bigarray.Array1.unsafe_get ar.words (b + i))
  done;
  pl

(* Deterministic metrics, byte-identical across engines (checked by
   test_metrics and the check.sh engine differential).  Engine-internal
   diagnostics — arena occupancy, merge-cursor work, inbox sorts — depend
   on the delivery strategy and are registered under [timing.congest.*],
   the execution namespace excluded from determinism gates. *)
type meters = {
  mon : bool;
  m_deliveries : Metrics.counter;
  m_payload_words : Metrics.counter;
  m_wakeups : Metrics.counter;
  m_drops : Metrics.counter;
  m_rounds : Metrics.counter;
  m_max_payload : Metrics.gauge;
  m_per_round : Metrics.histogram;
}

let meters_of metrics =
  {
    mon = Metrics.live metrics;
    m_deliveries = Metrics.counter metrics "congest.deliveries_total";
    m_payload_words = Metrics.counter metrics "congest.payload_words_total";
    m_wakeups = Metrics.counter metrics "congest.wakeups_total";
    m_drops = Metrics.counter metrics "congest.drops_total";
    m_rounds = Metrics.counter metrics "congest.rounds_total";
    m_max_payload = Metrics.gauge metrics "congest.max_payload_words";
    m_per_round = Metrics.histogram metrics "congest.deliveries_per_round";
  }

(* Both engines share the exact same observable behaviour: same states,
   same stats, same fault-RNG consumption order (node order, then outbox
   order) and same trace-hook call sequence.  The differential test-suite
   (test/test_engine_diff.ml) checks this bit-for-bit. *)

(* ---------- reference engine (the original list-based loop) ---------- *)

let run_ref ~max_rounds ~word_limit ?faults ?trace ~metrics g prog =
  let n = Graph.n g in
  (match faults with Some f -> Faults.start f ~n | None -> ());
  (match trace with Some tr -> Trace.start tr ~n | None -> ());
  let mm = meters_of metrics in
  let m_sorts = Metrics.counter metrics "timing.congest.ref.inbox_sorts" in
  let states = Array.init n (fun v -> prog.init g v) in
  let halted = Array.make n false in
  (* pending.(v): messages to deliver to v next round, as (sender, payload),
     accumulated in reverse. *)
  let pending = Array.make n [] in
  let has_pending = ref true (* round 0 runs everyone *) in
  let rounds = ref 0 in
  let messages = ref 0 in
  let max_words = ref 0 in
  let wakeups = ref 0 in
  let stats_now () =
    let drops, crashed_nodes, severed_links =
      match faults with
      | None -> (0, 0, 0)
      | Some f -> (Faults.drops f, Faults.crashed_nodes f, Faults.severed_links f)
    in
    {
      rounds = !rounds;
      messages = !messages;
      max_words = !max_words;
      wakeups = !wakeups;
      drops;
      crashed_nodes;
      severed_links;
    }
  in
  let all_halted () = Array.for_all (fun h -> h) halted in
  let round_start_msgs = ref 0 in
  while !has_pending || not (all_halted ()) do
    if !rounds >= max_rounds then begin
      Metrics.mark_partial metrics;
      raise (Round_limit_exceeded { limit = max_rounds; partial = stats_now () })
    end;
    round_start_msgs := !messages;
    (match faults with
    | Some f -> Faults.begin_round f ~round:!rounds
    | None -> ());
    (match (trace, faults) with
    | Some tr, Some f ->
        Trace.note_fault_counters tr ~crashed:(Faults.crashed_nodes f)
          ~severed:(Faults.severed_links f)
    | _ -> ());
    (* Collect this round's inboxes and clear pending. *)
    let inboxes =
      Array.map
        (fun msgs ->
          (match msgs with [] -> () | _ -> Metrics.incr m_sorts);
          List.sort compare (List.rev msgs))
        pending
    in
    Array.fill pending 0 n [];
    has_pending := false;
    for v = 0 to n - 1 do
      let inbox = inboxes.(v) in
      match faults with
      | Some f when Faults.is_crashed f v ->
          (* Crash-stop: no step, and in-flight messages to v are lost. *)
          List.iter
            (fun (sender, _) ->
              Faults.drop_in_flight f ~round:!rounds ~sender ~target:v;
              Metrics.incr mm.m_drops;
              match trace with
              | Some tr -> Trace.note_drop tr
              | None -> ())
            inbox;
          halted.(v) <- true
      | _ ->
          if (not halted.(v)) || inbox <> [] then begin
            incr wakeups;
            Metrics.incr mm.m_wakeups;
            (match trace with Some tr -> Trace.note_step tr | None -> ());
            let step = prog.round g ~round:!rounds ~me:v states.(v) inbox in
            states.(v) <- step.state;
            halted.(v) <- step.halt;
            (* Validate and enqueue outgoing messages.  Model violations
               (non-neighbour targets, duplicates, oversized payloads) are
               program bugs and raise even under faults. *)
            let seen_targets = Hashtbl.create 8 in
            List.iter
              (fun (target, payload) ->
                if not (Graph.mem_edge g v target) then
                  raise (Not_a_neighbor { sender = v; target });
                if Hashtbl.mem seen_targets target then
                  raise (Duplicate_message { sender = v; target })
                  (* one message per neighbour per round *);
                Hashtbl.replace seen_targets target ();
                let words = Array.length payload in
                if words > word_limit then
                  raise (Message_too_large { sender = v; words; limit = word_limit });
                if words > !max_words then max_words := words;
                Metrics.set_max mm.m_max_payload words;
                let delivered =
                  match faults with
                  | None -> true
                  | Some f -> Faults.deliver f ~round:!rounds ~sender:v ~target
                in
                if delivered then begin
                  incr messages;
                  Metrics.incr mm.m_deliveries;
                  Metrics.add mm.m_payload_words words;
                  (match trace with
                  | Some tr -> Trace.note_send tr ~sender:v ~target ~words
                  | None -> ());
                  pending.(target) <- (v, payload) :: pending.(target);
                  has_pending := true
                end
                else begin
                  Metrics.incr mm.m_drops;
                  match trace with
                  | Some tr -> Trace.note_drop tr
                  | None -> ()
                end)
              step.out
          end
    done;
    (match trace with
    | Some tr ->
        let halted_now =
          Array.fold_left (fun a h -> if h then a + 1 else a) 0 halted
        in
        Trace.end_round tr ~round:!rounds ~halted:halted_now
    | None -> ());
    if mm.mon then begin
      Metrics.incr mm.m_rounds;
      Metrics.observe mm.m_per_round (!messages - !round_start_msgs)
    end;
    incr rounds
  done;
  (states, stats_now ())

(* ---------- fast engine (CSR slot-based message plane) ----------

   One inbox slot per directed arc of the graph's CSR index: the message
   [s -> t] lands in the arc [t -> s] (found in O(log deg s) by binary
   search on the sender side plus an O(1) reverse-arc hop).  Because a
   sender's slot in its target's inbox is unique, duplicate detection is a
   slot-stamp check (no per-step hash table); because each vertex's arcs
   are sorted by destination, scanning the occupied slots of a receiver
   yields the inbox already sorted by sender (no per-round [List.sort]);
   and because the payload arena and stamps persist across rounds there is
   no per-round O(n) allocation — stamps distinguish rounds by value, so
   nothing is ever cleared.  Halted nodes and in-flight messages are
   tracked by counters, replacing the reference engine's O(n) quiescence
   scan. *)

let run_fast ~max_rounds ~word_limit ?faults ?trace ~metrics g prog =
  let n = Graph.n g in
  (match faults with Some f -> Faults.start f ~n | None -> ());
  (match trace with Some tr -> Trace.start tr ~n | None -> ());
  let mm = meters_of metrics in
  (* Arena/merge-cursor diagnostics are strategy-internal: execution
     namespace.  [arena_slots_touched] counts first touches of send slots,
     i.e. the arena high-water mark. *)
  let m_arena_slots = Metrics.counter metrics "timing.congest.fast.arena_slots_touched" in
  let m_arena_words = Metrics.counter metrics "timing.congest.fast.arena_words_written" in
  let m_mc_cmp = Metrics.counter metrics "timing.congest.fast.merge_cursor_comparisons" in
  let m_mc_hits = Metrics.counter metrics "timing.congest.fast.merge_cursor_hits" in
  let m_mc_fallbacks =
    Metrics.counter metrics "timing.congest.fast.merge_cursor_fallbacks"
  in
  (* Raw CSR arrays: the loops below run once per message and cannot
     afford a cross-module call per arc. *)
  let { Graph.off; dst; rev; _ } = Graph.csr g in
  let states = Array.init n (fun v -> prog.init g v) in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let arcs = Graph.arc_count g in
  (* Message plane: flat payload arena + stamps, one slot per arc.  A slot
     is "occupied for round r" iff its stamp equals r; stale stamps from
     earlier rounds never collide because rounds increase strictly. *)
  let arena = make_arena ~arcs ~word_limit in
  let delivered_stamp = Array.make arcs (-1) in
  let sent_stamp = Array.make arcs (-1) in
  (* Receivers with at least one pending message, and their counts. *)
  let in_count = Array.make n 0 in
  let touched = ref [] in
  let inboxes : inbox array = Array.make n [] in
  let pending_msgs = ref 0 in
  let rounds = ref 0 in
  let messages = ref 0 in
  let max_words = ref 0 in
  let wakeups = ref 0 in
  let stats_now () =
    let drops, crashed_nodes, severed_links =
      match faults with
      | None -> (0, 0, 0)
      | Some f -> (Faults.drops f, Faults.crashed_nodes f, Faults.severed_links f)
    in
    {
      rounds = !rounds;
      messages = !messages;
      max_words = !max_words;
      wakeups = !wakeups;
      drops;
      crashed_nodes;
      severed_links;
    }
  in
  let round_start_msgs = ref 0 in
  while !pending_msgs > 0 || !halted_count < n do
    if !rounds >= max_rounds then begin
      Metrics.mark_partial metrics;
      raise (Round_limit_exceeded { limit = max_rounds; partial = stats_now () })
    end;
    round_start_msgs := !messages;
    let r = !rounds in
    (match faults with
    | Some f -> Faults.begin_round f ~round:r
    | None -> ());
    (match (trace, faults) with
    | Some tr, Some f ->
        Trace.note_fault_counters tr ~crashed:(Faults.crashed_nodes f)
          ~severed:(Faults.severed_links f)
    | _ -> ());
    (* Assemble inboxes for every receiver touched last round: scan its
       arc slice backwards, consing the slots stamped r-1 — increasing
       sender order for free, matching the reference engine's sort. *)
    let receivers = !touched in
    touched := [];
    pending_msgs := 0;
    (* Stale words are left in the arena (occupancy is governed by the
       stamps alone); each delivered message materializes as a fresh array
       here, so nothing in the arena is ever reachable from a state. *)
    List.iter
      (fun v ->
        let acc = ref [] in
        for a = off.(v + 1) - 1 downto off.(v) do
          if Array.unsafe_get delivered_stamp a = r - 1 then
            acc := (Array.unsafe_get dst a, arena_read arena a) :: !acc
        done;
        inboxes.(v) <- !acc;
        in_count.(v) <- 0)
      receivers;
    for v = 0 to n - 1 do
      let inbox = inboxes.(v) in
      (match faults with
      | Some f when Faults.is_crashed f v ->
          (* Crash-stop: no step, and in-flight messages to v are lost. *)
          List.iter
            (fun (sender, _) ->
              Faults.drop_in_flight f ~round:r ~sender ~target:v;
              Metrics.incr mm.m_drops;
              match trace with
              | Some tr -> Trace.note_drop tr
              | None -> ())
            inbox;
          if not halted.(v) then begin
            halted.(v) <- true;
            incr halted_count
          end
      | _ ->
          if (not halted.(v)) || inbox <> [] then begin
            incr wakeups;
            Metrics.incr mm.m_wakeups;
            (match trace with Some tr -> Trace.note_step tr | None -> ());
            let step = prog.round g ~round:r ~me:v states.(v) inbox in
            states.(v) <- step.state;
            if halted.(v) <> step.halt then begin
              halted.(v) <- step.halt;
              if step.halt then incr halted_count else decr halted_count
            end;
            (* Validate and deliver into slots.  Same rule order as the
               reference engine: neighbour, duplicate, size, faults.
               Outboxes are usually in adjacency (ascending-target) order,
               so an ascending cursor resolves each target in O(1)
               amortized; out-of-order sends fall back to binary search. *)
            let base = off.(v) and stop = off.(v + 1) in
            let cursor = ref base in
            List.iter
              (fun (target, pl) ->
                let arc =
                  let c0 = !cursor in
                  let c = ref c0 in
                  while !c < stop && Array.unsafe_get dst !c < target do
                    incr c
                  done;
                  if mm.mon then Metrics.add m_mc_cmp (!c - c0 + 1);
                  if !c < stop && Array.unsafe_get dst !c = target then begin
                    Metrics.incr m_mc_hits;
                    cursor := !c + 1;
                    !c
                  end
                  else begin
                    Metrics.incr m_mc_fallbacks;
                    let lo = ref base and hi = ref (stop - 1) in
                    let res = ref (-1) in
                    while !res < 0 && !lo <= !hi do
                      let mid = (!lo + !hi) lsr 1 in
                      let d = Array.unsafe_get dst mid in
                      if d = target then res := mid
                      else if d < target then lo := mid + 1
                      else hi := mid - 1
                    done;
                    !res
                  end
                in
                if arc < 0 then raise (Not_a_neighbor { sender = v; target });
                let slot = Array.unsafe_get rev arc in
                if Array.unsafe_get sent_stamp slot = r then
                  raise (Duplicate_message { sender = v; target })
                  (* one message per neighbour per round *);
                if mm.mon && Array.unsafe_get sent_stamp slot < 0 then
                  Metrics.incr m_arena_slots;
                Array.unsafe_set sent_stamp slot r;
                let words = Array.length pl in
                if words > word_limit then
                  raise (Message_too_large { sender = v; words; limit = word_limit });
                if words > !max_words then max_words := words;
                Metrics.set_max mm.m_max_payload words;
                let delivered =
                  match faults with
                  | None -> true
                  | Some f -> Faults.deliver f ~round:r ~sender:v ~target
                in
                if delivered then begin
                  incr messages;
                  Metrics.incr mm.m_deliveries;
                  Metrics.add mm.m_payload_words words;
                  Metrics.add m_arena_words words;
                  (match trace with
                  | Some tr -> Trace.note_send tr ~sender:v ~target ~words
                  | None -> ());
                  arena_write arena slot pl words;
                  Array.unsafe_set delivered_stamp slot r;
                  let c = Array.unsafe_get in_count target in
                  if c = 0 then touched := target :: !touched;
                  Array.unsafe_set in_count target (c + 1);
                  incr pending_msgs
                end
                else begin
                  Metrics.incr mm.m_drops;
                  match trace with
                  | Some tr -> Trace.note_drop tr
                  | None -> ()
                end)
              step.out
          end);
      (match inbox with [] -> () | _ -> inboxes.(v) <- [])
    done;
    (match trace with
    | Some tr -> Trace.end_round tr ~round:r ~halted:!halted_count
    | None -> ());
    if mm.mon then begin
      Metrics.incr mm.m_rounds;
      Metrics.observe mm.m_per_round (!messages - !round_start_msgs)
    end;
    incr rounds
  done;
  (states, stats_now ())

(* ---------- sharded backend (parallel two-phase delivery) ----------

   The node range is cut into [Parallel.block_count n] shards — a fixed
   function of [n], never of the job count — and each round runs as two
   pool sections with a barrier between them:

   phase 1 (assembly): every shard scans its receivers' dirty flags and
   materializes inboxes from the slots stamped last round.  Writes are
   per-receiver, reads are arena slots written last round — the previous
   barrier ordered them.

   phase 2 (step + send): every shard steps its senders and delivers into
   the arena.  A slot is written only by its unique sender, so the only
   cross-shard writes are the receiver dirty flags — racy same-value byte
   stores whose reads all happen after the next barrier.

   Determinism: shard s covers the node range [n*s/k, n*(s+1)/k), nodes
   are stepped in increasing order within a shard, and every observable —
   stats, deterministic metrics, a model-violation exception — is either
   per-node state or folded on the caller in shard-index order, which is
   node order.  So the backend is byte-identical to [`Seq] for any job
   count.  Fault injection consumes its RNG in (node, outbox) order and
   trace hooks record one global sequence: both are order-sensitive, so
   with [?faults] or [?trace] attached phase 2 runs sequentially on the
   caller (assembly stays parallel), preserving exact event order. *)

type shard_acc = {
  mutable a_msgs : int;  (* messages delivered by this shard's senders *)
  mutable a_words : int;  (* their summed payload words *)
  mutable a_wake : int;
  mutable a_maxw : int;
  mutable a_halt : int;  (* halted-count delta *)
  mutable a_slots : int;  (* arena slot first-touches *)
  mutable a_viol : exn option;  (* first violation in (node, outbox) order *)
}

let run_sharded ~max_rounds ~word_limit ?faults ?trace ~metrics ?jobs g prog =
  let n = Graph.n g in
  (match faults with Some f -> Faults.start f ~n | None -> ());
  (match trace with Some tr -> Trace.start tr ~n | None -> ());
  let mm = meters_of metrics in
  let m_arena_slots =
    Metrics.counter metrics "timing.congest.sharded.arena_slots_touched"
  in
  let m_arena_words =
    Metrics.counter metrics "timing.congest.sharded.arena_words_written"
  in
  let m_par_rounds =
    Metrics.counter metrics "timing.congest.sharded.parallel_step_rounds"
  in
  let m_seq_rounds =
    Metrics.counter metrics "timing.congest.sharded.sequential_step_rounds"
  in
  let seq_step = Option.is_some faults || Option.is_some trace in
  let { Graph.off; dst; rev; _ } = Graph.csr g in
  let states = Array.init n (fun v -> prog.init g v) in
  let halted = Array.make n false in
  let halted_count = ref 0 in
  let arcs = Graph.arc_count g in
  let arena = make_arena ~arcs ~word_limit in
  let delivered_stamp = Array.make (max 1 arcs) (-1) in
  let sent_stamp = Array.make (max 1 arcs) (-1) in
  let dirty = Bytes.make (max 1 n) '\000' in
  let inboxes : inbox array = Array.make n [] in
  let nshards = Parallel.block_count n in
  let accs =
    Array.init nshards (fun _ ->
        {
          a_msgs = 0;
          a_words = 0;
          a_wake = 0;
          a_maxw = 0;
          a_halt = 0;
          a_slots = 0;
          a_viol = None;
        })
  in
  let pending_msgs = ref 0 in
  let rounds = ref 0 in
  let messages = ref 0 in
  let max_words = ref 0 in
  let wakeups = ref 0 in
  let stats_now () =
    let drops, crashed_nodes, severed_links =
      match faults with
      | None -> (0, 0, 0)
      | Some f -> (Faults.drops f, Faults.crashed_nodes f, Faults.severed_links f)
    in
    {
      rounds = !rounds;
      messages = !messages;
      max_words = !max_words;
      wakeups = !wakeups;
      drops;
      crashed_nodes;
      severed_links;
    }
  in
  (* Arc of [v -> target], by ascending cursor with binary-search fallback
     (same resolution strategy as the fast engine, uncounted). *)
  let find_arc ~base ~stop cursor target =
    let c = ref !cursor in
    while !c < stop && Array.unsafe_get dst !c < target do
      incr c
    done;
    if !c < stop && Array.unsafe_get dst !c = target then begin
      cursor := !c + 1;
      !c
    end
    else begin
      let lo = ref base and hi = ref (stop - 1) in
      let res = ref (-1) in
      while !res < 0 && !lo <= !hi do
        let mid = (!lo + !hi) lsr 1 in
        let d = Array.unsafe_get dst mid in
        if d = target then res := mid
        else if d < target then lo := mid + 1
        else hi := mid - 1
      done;
      !res
    end
  in
  let round_start_msgs = ref 0 in
  while !pending_msgs > 0 || !halted_count < n do
    if !rounds >= max_rounds then begin
      Metrics.mark_partial metrics;
      raise (Round_limit_exceeded { limit = max_rounds; partial = stats_now () })
    end;
    round_start_msgs := !messages;
    let r = !rounds in
    (match faults with
    | Some f -> Faults.begin_round f ~round:r
    | None -> ());
    (match (trace, faults) with
    | Some tr, Some f ->
        Trace.note_fault_counters tr ~crashed:(Faults.crashed_nodes f)
          ~severed:(Faults.severed_links f)
    | _ -> ());
    (* Phase 1: assemble inboxes of the receivers flagged dirty last round.
       Scanning the arc slice backwards conses ascending sender order. *)
    pending_msgs := 0;
    Parallel.iter_blocks ?jobs n (fun _ lo hi ->
        for v = lo to hi - 1 do
          if Bytes.unsafe_get dirty v <> '\000' then begin
            Bytes.unsafe_set dirty v '\000';
            let acc = ref [] in
            for a = off.(v + 1) - 1 downto off.(v) do
              if Array.unsafe_get delivered_stamp a = r - 1 then
                acc := (Array.unsafe_get dst a, arena_read arena a) :: !acc
            done;
            inboxes.(v) <- !acc
          end
        done);
    (* Phase 2: step and deliver. *)
    if seq_step then begin
      Metrics.incr m_seq_rounds;
      for v = 0 to n - 1 do
        let inbox = inboxes.(v) in
        (match faults with
        | Some f when Faults.is_crashed f v ->
            (* Crash-stop: no step, and in-flight messages to v are lost. *)
            List.iter
              (fun (sender, _) ->
                Faults.drop_in_flight f ~round:r ~sender ~target:v;
                Metrics.incr mm.m_drops;
                match trace with
                | Some tr -> Trace.note_drop tr
                | None -> ())
              inbox;
            if not halted.(v) then begin
              halted.(v) <- true;
              incr halted_count
            end
        | _ ->
            if (not halted.(v)) || inbox <> [] then begin
              incr wakeups;
              Metrics.incr mm.m_wakeups;
              (match trace with Some tr -> Trace.note_step tr | None -> ());
              let step = prog.round g ~round:r ~me:v states.(v) inbox in
              states.(v) <- step.state;
              if halted.(v) <> step.halt then begin
                halted.(v) <- step.halt;
                if step.halt then incr halted_count else decr halted_count
              end;
              let base = off.(v) and stop = off.(v + 1) in
              let cursor = ref base in
              List.iter
                (fun (target, pl) ->
                  let arc = find_arc ~base ~stop cursor target in
                  if arc < 0 then raise (Not_a_neighbor { sender = v; target });
                  let slot = Array.unsafe_get rev arc in
                  if Array.unsafe_get sent_stamp slot = r then
                    raise (Duplicate_message { sender = v; target })
                    (* one message per neighbour per round *);
                  if mm.mon && Array.unsafe_get sent_stamp slot < 0 then
                    Metrics.incr m_arena_slots;
                  Array.unsafe_set sent_stamp slot r;
                  let words = Array.length pl in
                  if words > word_limit then
                    raise
                      (Message_too_large { sender = v; words; limit = word_limit });
                  if words > !max_words then max_words := words;
                  Metrics.set_max mm.m_max_payload words;
                  let delivered =
                    match faults with
                    | None -> true
                    | Some f -> Faults.deliver f ~round:r ~sender:v ~target
                  in
                  if delivered then begin
                    incr messages;
                    Metrics.incr mm.m_deliveries;
                    Metrics.add mm.m_payload_words words;
                    Metrics.add m_arena_words words;
                    (match trace with
                    | Some tr -> Trace.note_send tr ~sender:v ~target ~words
                    | None -> ());
                    arena_write arena slot pl words;
                    Array.unsafe_set delivered_stamp slot r;
                    Bytes.unsafe_set dirty target '\001';
                    incr pending_msgs
                  end
                  else begin
                    Metrics.incr mm.m_drops;
                    match trace with
                    | Some tr -> Trace.note_drop tr
                    | None -> ()
                  end)
                step.out
            end);
        match inbox with [] -> () | _ -> inboxes.(v) <- []
      done
    end
    else begin
      Metrics.incr m_par_rounds;
      Parallel.iter_blocks ?jobs n (fun s lo hi ->
          let acc = accs.(s) in
          let v = ref lo in
          while acc.a_viol = None && !v < hi do
            let me = !v in
            let inbox = inboxes.(me) in
            if (not (Array.unsafe_get halted me)) || inbox <> [] then begin
              acc.a_wake <- acc.a_wake + 1;
              let step = prog.round g ~round:r ~me states.(me) inbox in
              states.(me) <- step.state;
              if halted.(me) <> step.halt then begin
                halted.(me) <- step.halt;
                acc.a_halt <- acc.a_halt + (if step.halt then 1 else -1)
              end;
              let base = off.(me) and stop = off.(me + 1) in
              let cursor = ref base in
              try
                List.iter
                  (fun (target, pl) ->
                    let arc = find_arc ~base ~stop cursor target in
                    if arc < 0 then
                      raise (Not_a_neighbor { sender = me; target });
                    let slot = Array.unsafe_get rev arc in
                    if Array.unsafe_get sent_stamp slot = r then
                      raise (Duplicate_message { sender = me; target })
                      (* one message per neighbour per round *);
                    if Array.unsafe_get sent_stamp slot < 0 then
                      acc.a_slots <- acc.a_slots + 1;
                    Array.unsafe_set sent_stamp slot r;
                    let words = Array.length pl in
                    if words > word_limit then
                      raise
                        (Message_too_large
                           { sender = me; words; limit = word_limit });
                    if words > acc.a_maxw then acc.a_maxw <- words;
                    arena_write arena slot pl words;
                    Array.unsafe_set delivered_stamp slot r;
                    Bytes.unsafe_set dirty target '\001';
                    acc.a_msgs <- acc.a_msgs + 1;
                    acc.a_words <- acc.a_words + words)
                  step.out
              with
              | (Message_too_large _ | Not_a_neighbor _ | Duplicate_message _)
                as e ->
                acc.a_viol <- Some e
            end;
            (match inbox with [] -> () | _ -> inboxes.(me) <- []);
            incr v
          done);
      (* Fold the shard accumulators in shard-index (= node) order.  On a
         violation, shards past the violating one are discarded, so the
         registry and the raised exception match the sequential engine's
         byte-for-byte (it would never have reached those nodes). *)
      let viol = ref None in
      let s = ref 0 in
      while !viol = None && !s < nshards do
        let a = accs.(!s) in
        messages := !messages + a.a_msgs;
        wakeups := !wakeups + a.a_wake;
        if a.a_maxw > !max_words then max_words := a.a_maxw;
        halted_count := !halted_count + a.a_halt;
        pending_msgs := !pending_msgs + a.a_msgs;
        if mm.mon then begin
          Metrics.add mm.m_deliveries a.a_msgs;
          Metrics.add mm.m_payload_words a.a_words;
          Metrics.add mm.m_wakeups a.a_wake;
          if a.a_maxw > 0 then Metrics.set_max mm.m_max_payload a.a_maxw;
          Metrics.add m_arena_slots a.a_slots;
          Metrics.add m_arena_words a.a_words
        end;
        viol := a.a_viol;
        a.a_msgs <- 0;
        a.a_words <- 0;
        a.a_wake <- 0;
        a.a_maxw <- 0;
        a.a_halt <- 0;
        a.a_slots <- 0;
        a.a_viol <- None;
        incr s
      done;
      match !viol with
      | Some e ->
          Metrics.mark_partial metrics;
          raise e
      | None -> ()
    end;
    (match trace with
    | Some tr -> Trace.end_round tr ~round:r ~halted:!halted_count
    | None -> ());
    if mm.mon then begin
      Metrics.incr mm.m_rounds;
      Metrics.observe mm.m_per_round (!messages - !round_start_msgs)
    end;
    incr rounds
  done;
  (states, stats_now ())

let run ?max_rounds ?(word_limit = 4) ?faults ?trace
    ?(metrics = Metrics.disabled) ?(engine = `Fast) ?backend ?jobs g prog =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 100 * (n + 1) in
  let backend =
    match (backend, engine) with
    | Some `Sharded, `Ref ->
        invalid_arg "Network.run: the ref engine has no sharded delivery backend"
    | Some b, _ -> b
    | None, `Fast when Parallel.available_cores () > 1 -> `Sharded
    | None, _ -> `Seq
  in
  match (engine, backend) with
  | `Ref, _ -> run_ref ~max_rounds ~word_limit ?faults ?trace ~metrics g prog
  | `Fast, `Seq -> run_fast ~max_rounds ~word_limit ?faults ?trace ~metrics g prog
  | `Fast, `Sharded ->
      run_sharded ~max_rounds ~word_limit ?faults ?trace ~metrics ?jobs g prog
