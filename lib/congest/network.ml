open! Import

type inbox = (int * int array) list
type outbox = (int * int array) list
type 'a step = { state : 'a; out : outbox; halt : bool }

type 'a program = {
  init : Graph.t -> int -> 'a;
  round : Graph.t -> round:int -> me:int -> 'a -> inbox -> 'a step;
}

type stats = {
  rounds : int;
  messages : int;
  max_words : int;
  wakeups : int;
  drops : int;
  crashed_nodes : int;
  severed_links : int;
}

exception Message_too_large of { sender : int; words : int; limit : int }
exception Not_a_neighbor of { sender : int; target : int }
exception Duplicate_message of { sender : int; target : int }
exception Round_limit_exceeded of { limit : int; partial : stats }

let run ?max_rounds ?(word_limit = 4) ?faults ?trace g prog =
  let n = Graph.n g in
  let max_rounds = match max_rounds with Some r -> r | None -> 100 * (n + 1) in
  (match faults with Some f -> Faults.start f ~n | None -> ());
  (match trace with Some tr -> Trace.start tr ~n | None -> ());
  let states = Array.init n (fun v -> prog.init g v) in
  let halted = Array.make n false in
  (* pending.(v): messages to deliver to v next round, as (sender, payload),
     accumulated in reverse. *)
  let pending = Array.make n [] in
  let has_pending = ref true (* round 0 runs everyone *) in
  let rounds = ref 0 in
  let messages = ref 0 in
  let max_words = ref 0 in
  let wakeups = ref 0 in
  let stats_now () =
    let drops, crashed_nodes, severed_links =
      match faults with
      | None -> (0, 0, 0)
      | Some f -> (Faults.drops f, Faults.crashed_nodes f, Faults.severed_links f)
    in
    {
      rounds = !rounds;
      messages = !messages;
      max_words = !max_words;
      wakeups = !wakeups;
      drops;
      crashed_nodes;
      severed_links;
    }
  in
  let all_halted () = Array.for_all (fun h -> h) halted in
  while !has_pending || not (all_halted ()) do
    if !rounds >= max_rounds then
      raise (Round_limit_exceeded { limit = max_rounds; partial = stats_now () });
    (match faults with
    | Some f -> Faults.begin_round f ~round:!rounds
    | None -> ());
    (match (trace, faults) with
    | Some tr, Some f ->
        Trace.note_fault_counters tr ~crashed:(Faults.crashed_nodes f)
          ~severed:(Faults.severed_links f)
    | _ -> ());
    (* Collect this round's inboxes and clear pending. *)
    let inboxes = Array.map (fun msgs -> List.sort compare (List.rev msgs)) pending in
    Array.fill pending 0 n [];
    has_pending := false;
    for v = 0 to n - 1 do
      let inbox = inboxes.(v) in
      match faults with
      | Some f when Faults.is_crashed f v ->
          (* Crash-stop: no step, and in-flight messages to v are lost. *)
          List.iter
            (fun (sender, _) ->
              Faults.drop_in_flight f ~round:!rounds ~sender ~target:v;
              match trace with
              | Some tr -> Trace.note_drop tr
              | None -> ())
            inbox;
          halted.(v) <- true
      | _ ->
          if (not halted.(v)) || inbox <> [] then begin
            incr wakeups;
            (match trace with Some tr -> Trace.note_step tr | None -> ());
            let step = prog.round g ~round:!rounds ~me:v states.(v) inbox in
            states.(v) <- step.state;
            halted.(v) <- step.halt;
            (* Validate and enqueue outgoing messages.  Model violations
               (non-neighbour targets, duplicates, oversized payloads) are
               program bugs and raise even under faults. *)
            let seen_targets = Hashtbl.create 8 in
            List.iter
              (fun (target, payload) ->
                if not (Graph.mem_edge g v target) then
                  raise (Not_a_neighbor { sender = v; target });
                if Hashtbl.mem seen_targets target then
                  raise (Duplicate_message { sender = v; target })
                  (* one message per neighbour per round *);
                Hashtbl.replace seen_targets target ();
                let words = Array.length payload in
                if words > word_limit then
                  raise (Message_too_large { sender = v; words; limit = word_limit });
                if words > !max_words then max_words := words;
                let delivered =
                  match faults with
                  | None -> true
                  | Some f -> Faults.deliver f ~round:!rounds ~sender:v ~target
                in
                if delivered then begin
                  incr messages;
                  (match trace with
                  | Some tr -> Trace.note_send tr ~sender:v ~target ~words
                  | None -> ());
                  pending.(target) <- (v, payload) :: pending.(target);
                  has_pending := true
                end
                else
                  match trace with
                  | Some tr -> Trace.note_drop tr
                  | None -> ())
              step.out
          end
    done;
    (match trace with
    | Some tr ->
        let halted_now =
          Array.fold_left (fun a h -> if h then a + 1 else a) 0 halted
        in
        Trace.end_round tr ~round:!rounds ~halted:halted_now
    | None -> ());
    incr rounds
  done;
  (states, stats_now ())
