open! Import

type verdict = { accept : bool array; stats : Network.stats }

let all_accept v = Array.for_all (fun b -> b) v.accept

(* ---------- spanner: detour-walk verification ---------- *)

(* Walk-token payload layout: [| eid; idx; acc; p0; p1; ... |] where
   [idx] is the receiving node's index in the path [p] and [acc] the
   spanner-path weight accumulated up to it.  The path has at most 2k
   vertices (enforced at launch), so a token is at most [2k + 3] words. *)

type sp_state = {
  sp_ok : bool;
  sp_pending : (int * int array) list;  (* (next hop, token), FIFO *)
}

let sp_check_failed st = { st with sp_ok = false }

(* Emit at most one pending token per neighbour (CONGEST: one message per
   edge per round); the rest stay queued in order. *)
let sp_emit st =
  let sent = Hashtbl.create 8 in
  let out, kept =
    List.fold_left
      (fun (out, kept) (dst, tok) ->
        if Hashtbl.mem sent dst then (out, (dst, tok) :: kept)
        else begin
          Hashtbl.add sent dst ();
          ((dst, tok) :: out, kept)
        end)
      ([], []) st.sp_pending
  in
  ( { st with sp_pending = List.rev kept },
    List.rev out,
    (* halt only when nothing is left to push next round *)
    kept = [] )

let sp_launch g ~keep ~k ~detour me =
  let bound_hops = (2 * k) - 1 in
  Graph.fold_adj g me
    (fun st u eid ->
      if me < u && not keep.(eid) then begin
        let p = detour.(eid) in
        let len = Array.length p in
        if len < 2 || p.(0) <> me || p.(len - 1) <> u || len - 1 > bound_hops
        then sp_check_failed st
        else
          match Graph.find_edge g me p.(1) with
          | Some e1 when keep.(e1) ->
              let tok = Array.make (len + 3) 0 in
              tok.(0) <- eid;
              tok.(1) <- 1;
              tok.(2) <- Graph.weight g e1;
              Array.blit p 0 tok 3 len;
              { st with sp_pending = st.sp_pending @ [ (p.(1), tok) ] }
          | _ -> sp_check_failed st
      end
      else st)
    { sp_ok = true; sp_pending = [] }

let sp_receive g ~keep ~k ~detour me st tok =
  let eid = tok.(0) and idx = tok.(1) and acc = tok.(2) in
  let len = Array.length tok - 3 in
  let path i = tok.(3 + i) in
  if idx < 1 || idx >= len || path idx <> me then sp_check_failed st
  else if idx = len - 1 then begin
    (* Final hop: I must be the far endpoint, the accumulated spanner
       weight must meet the stretch budget, and the delivered path must
       match the copy recorded at my end of the edge. *)
    let eu, ev = Graph.endpoints g eid in
    let mine = detour.(eid) in
    let same_copy =
      Array.length mine = len
      &&
      let ok = ref true in
      for i = 0 to len - 1 do
        if mine.(i) <> path i then ok := false
      done;
      !ok
    in
    if
      path 0 = eu && me = ev
      && acc <= ((2 * k) - 1) * Graph.weight g eid
      && same_copy
    then st
    else sp_check_failed st
  end
  else begin
    let nxt = path (idx + 1) in
    match Graph.find_edge g me nxt with
    | Some e when keep.(e) ->
        let tok' = Array.copy tok in
        tok'.(1) <- idx + 1;
        tok'.(2) <- acc + Graph.weight g e;
        { st with sp_pending = st.sp_pending @ [ (nxt, tok') ] }
    | _ -> sp_check_failed st
  end

let spanner ?engine ?backend ?jobs ?metrics g ~keep ~k ~detour =
  if k < 1 then invalid_arg "Checkers.spanner: k >= 1";
  if Array.length keep <> Graph.m g then
    invalid_arg "Checkers.spanner: keep length mismatch";
  if Array.length detour <> Graph.m g then
    invalid_arg "Checkers.spanner: detour length mismatch";
  let program =
    {
      Network.init = (fun _ _ -> { sp_ok = true; sp_pending = [] });
      round =
        (fun g ~round ~me st inbox ->
          let st =
            if round = 0 then sp_launch g ~keep ~k ~detour me else st
          in
          let st =
            List.fold_left
              (fun st (_, tok) -> sp_receive g ~keep ~k ~detour me st tok)
              st inbox
          in
          let st, out, halt = sp_emit st in
          { Network.state = st; out; halt });
    }
  in
  (* Every round either delivers a token hop or the system is quiescent,
     and there are at most m walks of at most 2k-1 hops each. *)
  let max_rounds = (2 * k * (Graph.m g + 2)) + 4 in
  let word_limit = max 4 ((2 * k) + 3) in
  let states, stats =
    Network.run ~max_rounds ~word_limit ?metrics ?engine ?backend ?jobs g
      program
  in
  { accept = Array.map (fun s -> s.sp_ok) states; stats }

(* ---------- certificate: forest-label verification ---------- *)

(* One label exchange, one check round.  The message is my full label
   vector: [| root_1..k; depth_1..k; parent_1..k |] (3k words). *)

let fo_local_ok g ~keep ~k ~forest ~parent ~depth ~root me =
  let ok = ref true in
  for i = 0 to k - 1 do
    let p = parent.(i).(me) and r = root.(i).(me) and d = depth.(i).(me) in
    if p = -1 then begin
      if r <> me || d <> 0 then ok := false
    end
    else if p < 0 || p >= Graph.n g || d < 1 then ok := false
    else
      match Graph.find_edge g me p with
      | Some e -> if forest.(e) <> i + 1 then ok := false
      | None -> ok := false
  done;
  Graph.iter_adj g me (fun _ eid ->
      let l = forest.(eid) in
      if l < 0 || l > k || keep.(eid) <> (l >= 1) then ok := false);
  !ok

let fo_edge_ok ~k ~forest ~parent ~depth ~root me eid sender msg =
  let j = forest.(eid) in
  let ok = ref true in
  (if j >= 1 then begin
     (* Tree-edge rule for the edge's own peel. *)
     let i = j - 1 in
     let r = root.(i).(me) and d = depth.(i).(me) and p = parent.(i).(me) in
     let r' = msg.(i) and d' = msg.(k + i) and p' = msg.((2 * k) + i) in
     if r <> r' then ok := false;
     if not ((p = sender && d = d' + 1) || (p' = me && d' = d + 1)) then
       ok := false
   end);
  (* Maximality rule: endpoints already connected in every earlier peel. *)
  let hi = if j = 0 then k else j - 1 in
  for i = 0 to hi - 1 do
    if root.(i).(me) <> msg.(i) then ok := false
  done;
  !ok

let forests ?engine ?backend ?jobs ?metrics g ~keep ~k ~forest ~parent ~depth
    ~root =
  if k < 1 then invalid_arg "Checkers.forests: k >= 1";
  if Array.length keep <> Graph.m g then
    invalid_arg "Checkers.forests: keep length mismatch";
  if Array.length forest <> Graph.m g then
    invalid_arg "Checkers.forests: forest length mismatch";
  if
    Array.length parent <> k || Array.length depth <> k
    || Array.length root <> k
  then invalid_arg "Checkers.forests: label arrays must have k rows";
  let program =
    {
      Network.init = (fun _ _ -> true);
      round =
        (fun g ~round ~me ok inbox ->
          if round = 0 then begin
            let ok = fo_local_ok g ~keep ~k ~forest ~parent ~depth ~root me in
            let msg = Array.make (3 * k) 0 in
            for i = 0 to k - 1 do
              msg.(i) <- root.(i).(me);
              msg.(k + i) <- depth.(i).(me);
              msg.((2 * k) + i) <- parent.(i).(me)
            done;
            let out =
              List.rev
                (Graph.fold_adj g me (fun acc u _ -> (u, msg) :: acc) [])
            in
            { Network.state = ok; out; halt = true }
          end
          else begin
            let ok =
              List.fold_left
                (fun ok (sender, msg) ->
                  match Graph.find_edge g me sender with
                  | Some eid ->
                      ok
                      && fo_edge_ok ~k ~forest ~parent ~depth ~root me eid
                           sender msg
                  | None -> false)
                ok inbox
            in
            { Network.state = ok; out = []; halt = true }
          end);
    }
  in
  let word_limit = max 4 (3 * k) in
  let states, stats =
    Network.run ~max_rounds:8 ~word_limit ?metrics ?engine ?backend ?jobs g
      program
  in
  { accept = states; stats }
