open! Import

(** CONGEST checker programs: distributed verification of locally
    checkable witnesses.

    These are the distributed half of the verification plane (the witness
    builders live in [Ultraspan_verify.Witness], which depends on this
    library — hence the plain-array interface here: a checker sees only
    the graph, a membership mask and per-node/per-edge label arrays, never
    the [Spanner.t]/[Certificate.t] records).

    Both programs follow the proof-labeling-scheme discipline: every node
    starts from its own slice of the witness, exchanges messages only with
    neighbours, and outputs a local accept/reject bit; the artifact is
    valid only if {e every} node accepts (a single global AND, which a real
    deployment would gather with one convergecast).  Like every program in
    this library they run on both engines and both delivery backends with
    byte-identical verdicts and stats at any [?jobs].

    {b Round bounds.}  {!forests} is a 2-round protocol (one label
    exchange, one check round) with [3k]-word messages.  {!spanner}
    pipelines one walk token per detour witness along its replacement
    path: each token travels at most [2k-1] hops and each edge carries at
    most one token per round, so the round count is [O(k + c)] where [c]
    is the walk congestion (max walks queued through one edge) — in
    particular independent of [n]; the V1 bench table records the measured
    counts. *)

type verdict = {
  accept : bool array;  (** per-node accept bit *)
  stats : Network.stats;
}

val all_accept : verdict -> bool
(** The global AND over the per-node bits. *)

val spanner :
  ?engine:Network.engine ->
  ?backend:Network.backend ->
  ?jobs:int ->
  ?metrics:Ultraspan_util.Metrics.t ->
  Graph.t ->
  keep:bool array ->
  k:int ->
  detour:int array array ->
  verdict
(** Verify that [keep] is a spanning [(2k-1)]-spanner of the graph from
    per-edge detour witnesses.  [detour.(e)] is the replacement-path
    witness for each non-spanner edge [e = (u,v)]: a vertex sequence
    [u, x1, ..., v] of at most [2k-1] hops whose edges all lie in the
    spanner with total weight at most [(2k-1) * w(e)] (the empty array for
    spanner edges).  The canonical endpoint [min u v] launches a walk
    token that replays the path hop by hop; the holder of the token
    rejects if the next hop is not an incident spanner edge, and the far
    endpoint rejects unless the accumulated weight meets the stretch
    budget and the delivered path matches its own recorded copy.  A
    missing or malformed witness is rejected by its launcher without any
    communication.  Acceptance by all nodes implies the spanner is
    spanning {e and} within stretch [2k-1]: an edge whose endpoints lie in
    different spanner components can have no all-spanner-edge detour. *)

val forests :
  ?engine:Network.engine ->
  ?backend:Network.backend ->
  ?jobs:int ->
  ?metrics:Ultraspan_util.Metrics.t ->
  Graph.t ->
  keep:bool array ->
  k:int ->
  forest:int array ->
  parent:int array array ->
  depth:int array array ->
  root:int array array ->
  verdict
(** Verify a k-connectivity certificate from forest-membership labels.
    The witness asserts [keep] is a union of forests [F_1 .. F_k] peeled
    Thurimella-style from the graph ([F_i] a maximal spanning forest of
    [G - F_1 - .. - F_(i-1)]): [forest.(e)] is the peel index in
    [1..k] ([0] = not in the certificate), and for each peel [i] node [v]
    carries [parent.(i-1).(v)] (parent vertex, [-1] at roots),
    [depth.(i-1).(v)] and [root.(i-1).(v)].  After one exchange of label
    vectors every node checks, per incident edge: membership consistency
    ([keep] iff labeled), the tree-edge rule for the edge's own peel
    (equal roots, one endpoint the other's parent at depth +1 — parent
    pointers with strictly decreasing depth cannot close a cycle, so each
    labeled set is a forest with truthful root labels), and the
    maximality rule (endpoints share a root in every peel {e before} the
    edge's own — so each [F_i] really is maximal w.r.t. the whole graph).
    Acceptance by all nodes therefore certifies the Nagamochi–Ibaraki
    sufficient condition; the checker is complete for peeling-built
    certificates (every valid Thurimella witness accepts) but a certificate
    constructed by other means need not admit such labels. *)
