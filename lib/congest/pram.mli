open! Import

(** PRAM work/depth ledger.

    Theorems 1.3, 1.7 and 1.8 come with PRAM variants: polylog(n) depth and
    m·polylog(n) work.  This ledger is the work-depth analogue of
    {!Rounds}: sequential composition adds both counters; parallel
    composition adds work and takes the maximum depth.  The bench's T7
    reports the ledgers the clustering pipeline would accrue, using the
    paper's per-step costs (a clustering sweep costs O(m) work and O(D
    log n) depth; a weight class runs in parallel with its siblings for
    work purposes but the CONGEST variant serializes them — both
    compositions are available). *)

type t

val create : unit -> t

val charge : ?label:string -> t -> work:int -> depth:int -> unit
(** Sequential composition: both counters accumulate. *)

val charge_parallel : ?label:string -> t -> (int * int) list -> unit
(** Parallel composition of (work, depth) branches: work adds, depth takes
    the maximum. *)

val work : t -> int

val depth : t -> int

val breakdown : t -> (string * (int * int)) list
(** Per-label (work, depth) subtotals, sorted by label. *)

val merge_sequential : t -> t -> unit
(** [merge_sequential dst src]: run [src] after [dst]. *)

val pp : Format.formatter -> t -> unit
