open! Import
module Stats = Util.Stats

type round_record = {
  round : int;
  active : int;
  delivered : int;
  words : int;
  drops : int;
  crashes : int;
  severs : int;
  halted : int;
}

type t = {
  g : Graph.t;
  mutable recs_rev : round_record list;
  sent : int array;
  received : int array;
  edge_load : int array;
  (* accumulators for the round in progress *)
  mutable cur_active : int;
  mutable cur_delivered : int;
  mutable cur_words : int;
  mutable cur_drops : int;
  mutable cur_crashes : int;
  mutable cur_severs : int;
  (* last cumulative fault counters seen, for per-round deltas *)
  mutable seen_crashed : int;
  mutable seen_severed : int;
  mutable used : bool;
}

let create g =
  {
    g;
    recs_rev = [];
    sent = Array.make (Graph.n g) 0;
    received = Array.make (Graph.n g) 0;
    edge_load = Array.make (Graph.m g) 0;
    cur_active = 0;
    cur_delivered = 0;
    cur_words = 0;
    cur_drops = 0;
    cur_crashes = 0;
    cur_severs = 0;
    seen_crashed = 0;
    seen_severed = 0;
    used = false;
  }

let graph t = t.g

(* ---------- simulator hooks ---------- *)

let start t ~n =
  if t.used then
    invalid_arg "Trace.start: sink already used (build a fresh one)";
  if n <> Array.length t.sent then
    invalid_arg "Trace.start: sink was built for a different graph";
  t.used <- true

let note_fault_counters t ~crashed ~severed =
  t.cur_crashes <- t.cur_crashes + (crashed - t.seen_crashed);
  t.cur_severs <- t.cur_severs + (severed - t.seen_severed);
  t.seen_crashed <- crashed;
  t.seen_severed <- severed

let note_step t = t.cur_active <- t.cur_active + 1

let note_send t ~sender ~target ~words =
  t.sent.(sender) <- t.sent.(sender) + 1;
  t.received.(target) <- t.received.(target) + 1;
  t.cur_delivered <- t.cur_delivered + 1;
  t.cur_words <- t.cur_words + words;
  match Graph.find_edge t.g sender target with
  | Some eid -> t.edge_load.(eid) <- t.edge_load.(eid) + 1
  | None -> ()
(* unreachable: Network validated the neighbour *)

let note_drop t = t.cur_drops <- t.cur_drops + 1

let end_round t ~round ~halted =
  t.recs_rev <-
    {
      round;
      active = t.cur_active;
      delivered = t.cur_delivered;
      words = t.cur_words;
      drops = t.cur_drops;
      crashes = t.cur_crashes;
      severs = t.cur_severs;
      halted;
    }
    :: t.recs_rev;
  t.cur_active <- 0;
  t.cur_delivered <- 0;
  t.cur_words <- 0;
  t.cur_drops <- 0;
  t.cur_crashes <- 0;
  t.cur_severs <- 0

(* ---------- accessors ---------- *)

let rounds t = Array.of_list (List.rev t.recs_rev)
let sent t = Array.copy t.sent
let received t = Array.copy t.received
let edge_load t = Array.copy t.edge_load

let total_delivered t =
  List.fold_left (fun acc r -> acc + r.delivered) 0 t.recs_rev

let total_fault_events t =
  List.fold_left (fun acc r -> acc + r.drops + r.crashes + r.severs) 0 t.recs_rev

(* ---------- JSONL export ---------- *)

let jsonl_round r =
  Printf.sprintf
    "{\"round\":%d,\"active\":%d,\"delivered\":%d,\"words\":%d,\"drops\":%d,\"crashes\":%d,\"severs\":%d,\"halted\":%d}"
    r.round r.active r.delivered r.words r.drops r.crashes r.severs r.halted

let round_of_jsonl line =
  match
    Scanf.sscanf line
      "{\"round\":%d,\"active\":%d,\"delivered\":%d,\"words\":%d,\"drops\":%d,\"crashes\":%d,\"severs\":%d,\"halted\":%d}"
      (fun round active delivered words drops crashes severs halted ->
        { round; active; delivered; words; drops; crashes; severs; halted })
  with
  | r -> Some r
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let to_jsonl t =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun r ->
      Buffer.add_string buf (jsonl_round r);
      Buffer.add_char buf '\n')
    (rounds t);
  Array.iteri
    (fun v s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"node\":%d,\"sent\":%d,\"received\":%d}\n" v s
           t.received.(v)))
    t.sent;
  Array.iteri
    (fun eid load ->
      if load > 0 then begin
        let u, v = Graph.endpoints t.g eid in
        Buffer.add_string buf
          (Printf.sprintf "{\"edge\":%d,\"u\":%d,\"v\":%d,\"load\":%d}\n" eid u
             v load)
      end)
    t.edge_load;
  Buffer.contents buf

(* ---------- Chrome trace-event export (Perfetto-loadable) ---------- *)

(* One "process", rounds as X duration slices on a synthetic microsecond
   timeline (1 round = 1000 ticks), plus C counter tracks for messages and
   node activity. *)
let to_chrome ?(extra_events = []) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"ultraspan CONGEST\"}}";
  Array.iter
    (fun r ->
      let ts = r.round * 1000 in
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"round %d\",\"ph\":\"X\",\"ts\":%d,\"dur\":1000,\"pid\":0,\"tid\":0,\"args\":{\"active\":%d,\"delivered\":%d,\"drops\":%d}}"
           r.round ts r.active r.delivered r.drops);
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"messages\",\"ph\":\"C\",\"ts\":%d,\"pid\":0,\"args\":{\"delivered\":%d,\"words\":%d,\"drops\":%d}}"
           ts r.delivered r.words r.drops);
      Buffer.add_string buf
        (Printf.sprintf
           ",\n{\"name\":\"nodes\",\"ph\":\"C\",\"ts\":%d,\"pid\":0,\"args\":{\"active\":%d,\"halted\":%d}}"
           ts r.active r.halted))
    (rounds t);
  List.iter
    (fun ev ->
      Buffer.add_string buf ",\n";
      Buffer.add_string buf ev)
    extra_events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(* ---------- plain-text summary ---------- *)

let top_edges t k =
  let loaded = ref [] in
  Array.iteri
    (fun eid load -> if load > 0 then loaded := (load, eid) :: !loaded)
    t.edge_load;
  let sorted = List.sort (fun a b -> compare b a) !loaded in
  List.filteri (fun i _ -> i < k) sorted

let pp_summary ?(top = 5) fmt t =
  let recs = rounds t in
  let n_rounds = Array.length recs in
  let delivered = total_delivered t in
  let drops = List.fold_left (fun a r -> a + r.drops) 0 t.recs_rev in
  Format.fprintf fmt "trace: %d rounds, %d messages delivered, %d dropped@."
    n_rounds delivered drops;
  if n_rounds > 0 then begin
    let per_round =
      Array.map (fun r -> float_of_int r.delivered) recs
    in
    Format.fprintf fmt
      "  messages/round: mean %.1f, median %.1f, p95 %.1f, max %.0f@."
      (Stats.mean per_round)
      (Stats.median per_round)
      (Stats.percentile per_round 0.95)
      (snd (Stats.min_max per_round))
  end;
  let per_node = Array.map float_of_int t.sent in
  if Array.length per_node > 0 then
    Format.fprintf fmt
      "  sends/node: mean %.1f, median %.1f, p95 %.1f, max %.0f@."
      (Stats.mean per_node)
      (Stats.median per_node)
      (Stats.percentile per_node 0.95)
      (snd (Stats.min_max per_node));
  (match top_edges t top with
  | [] -> ()
  | edges ->
      Format.fprintf fmt "  top congested edges:@.";
      List.iter
        (fun (load, eid) ->
          let u, v = Graph.endpoints t.g eid in
          Format.fprintf fmt "    %4d-%-4d %6d msgs@." u v load)
        edges);
  (* histogram of the per-node send distribution (degenerate data folds to
     a single bucket — see Stats.histogram) *)
  if Array.length per_node > 0 then begin
    Format.fprintf fmt "  per-node send histogram:@.";
    Array.iter
      (fun (lo, hi, c) ->
        Format.fprintf fmt "    [%6.1f, %6.1f) %6d@." lo hi c)
      (Stats.histogram ~bins:6 per_node)
  end
