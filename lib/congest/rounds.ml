type t = { mutable total : int; tbl : (string, int) Hashtbl.t }

let create () = { total = 0; tbl = Hashtbl.create 16 }

let charge t ?(label = "(other)") r =
  if r < 0 then invalid_arg "Rounds.charge: negative";
  t.total <- t.total + r;
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.tbl label) in
  Hashtbl.replace t.tbl label (cur + r)

let charge_aggregate ?label t ~radius = charge t ?label ((2 * radius) + 2)

let total t = t.total

let breakdown t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort compare

let merge_into dst src =
  Hashtbl.iter (fun label r -> charge dst ~label r) src.tbl

let pp fmt t =
  Format.fprintf fmt "%d rounds" t.total;
  List.iter (fun (k, v) -> Format.fprintf fmt "@.  %-28s %8d" k v) (breakdown t)
