(* Hierarchical round accounting.  Charges land on a tree of named spans
   (algorithm -> phase -> step); the pre-span flat API is the degenerate
   one-level tree, so existing call sites and their breakdowns are
   unchanged. *)

type node = {
  mutable self : int;  (* rounds charged directly to this node *)
  mutable charged : bool;  (* ever the target of a direct charge *)
  children : (string, node) Hashtbl.t;
  mutable order : string list;  (* child names, reverse insertion order *)
}

type t = { mutable total : int; root : node; mutable stack : node list }

type span = { name : string; self : int; subtotal : int; children : span list }

let fresh_node () =
  { self = 0; charged = false; children = Hashtbl.create 8; order = [] }

let create () = { total = 0; root = fresh_node (); stack = [] }

let current t = match t.stack with [] -> t.root | nd :: _ -> nd

let child (parent : node) name =
  match Hashtbl.find_opt parent.children name with
  | Some nd -> nd
  | None ->
      let nd = fresh_node () in
      Hashtbl.replace parent.children name nd;
      parent.order <- name :: parent.order;
      nd

let charge t ?(label = "(other)") r =
  if r < 0 then invalid_arg "Rounds.charge: negative";
  t.total <- t.total + r;
  let nd = child (current t) label in
  nd.self <- nd.self + r;
  nd.charged <- true

let charge_aggregate ?label t ~radius =
  if radius < 0 then invalid_arg "Rounds.charge_aggregate: negative radius";
  charge t ?label ((2 * radius) + 2)

let total t = t.total

let span t name f =
  let nd = child (current t) name in
  t.stack <- nd :: t.stack;
  Fun.protect ~finally:(fun () -> t.stack <- List.tl t.stack) f

let in_order (nd : node) = List.rev nd.order

let rec node_subtotal (nd : node) =
  List.fold_left
    (fun acc name -> acc + node_subtotal (Hashtbl.find nd.children name))
    nd.self (in_order nd)

let rec view name (nd : node) : span =
  {
    name;
    self = nd.self;
    subtotal = node_subtotal nd;
    children =
      List.map (fun nm -> view nm (Hashtbl.find nd.children nm)) (in_order nd);
  }

let spans t = List.map (fun nm -> view nm (Hashtbl.find t.root.children nm)) (in_order t.root)

let breakdown t =
  let acc = ref [] in
  let rec go path (nd : node) =
    List.iter
      (fun name ->
        let c = Hashtbl.find nd.children name in
        let p = path ^ (if path = "" then "" else "/") ^ name in
        if c.charged then acc := (p, c.self) :: !acc;
        go p c)
      (in_order nd)
  in
  go "" t.root;
  List.sort compare !acc

let merge_into dst src =
  let rec merge_node (dst_nd : node) (src_nd : node) =
    dst_nd.self <- dst_nd.self + src_nd.self;
    if src_nd.charged then dst_nd.charged <- true;
    List.iter
      (fun name ->
        merge_node (child dst_nd name) (Hashtbl.find src_nd.children name))
      (in_order src_nd)
  in
  merge_node (current dst) src.root;
  dst.total <- dst.total + src.total

let pp fmt t =
  Format.fprintf fmt "%d rounds" t.total;
  let rec go depth name (nd : node) =
    let indent = String.make (2 * (depth + 1)) ' ' in
    let has_children = nd.order <> [] in
    Format.fprintf fmt "@.%s%-*s %8d" indent
      (max 1 (28 - (2 * depth)))
      name
      (if has_children then node_subtotal nd else nd.self);
    if has_children && nd.self > 0 then
      Format.fprintf fmt "@.%s  %-*s %8d" indent
        (max 1 (28 - (2 * (depth + 1))))
        "(direct)" nd.self;
    List.iter (fun nm -> go (depth + 1) nm (Hashtbl.find nd.children nm)) (in_order nd)
  in
  List.iter (fun nm -> go 0 nm (Hashtbl.find t.root.children nm)) (in_order t.root)
