open! Import

(* Outbox addressed to every neighbour, in increasing neighbour order
   (adjacency slices are sorted, so a reversed fold preserves the order
   [Graph.neighbors] gave).  The payload array is shared across the
   outbox — the simulator never mutates payloads. *)
let out_to_all g me payload =
  List.rev (Graph.fold_adj g me (fun acc u _ -> (u, payload) :: acc) [])

let sorted_nbrs g v = List.rev (Graph.fold_adj g v (fun acc u _ -> u :: acc) [])

type bfs_result = { dist : int array; parent : int array }

(* ---------- BFS ---------- *)

type bfs_state = { bdist : int; bparent : int }

let bfs ?faults ?trace ?metrics ?engine ?backend ?jobs g ~root =
  if root < 0 || root >= Graph.n g then invalid_arg "Programs.bfs: bad root";
  let program =
    {
      Network.init = (fun _ _ -> { bdist = -1; bparent = -1 });
      round =
        (fun g ~round ~me st inbox ->
          if round = 0 && me = root then begin
            let out = out_to_all g me [| 0 |] in
            { Network.state = { bdist = 0; bparent = -1 }; out; halt = true }
          end
          else begin
            match inbox with
            | [] -> { Network.state = st; out = []; halt = true }
            | msgs ->
                if st.bdist >= 0 then
                  (* already settled; ignore late announcements *)
                  { Network.state = st; out = []; halt = true }
                else begin
                  let best_sender, best_d =
                    List.fold_left
                      (fun (bs, bd) (s, payload) ->
                        let d = payload.(0) in
                        if d < bd || (d = bd && s < bs) then (s, d) else (bs, bd))
                      (max_int, max_int) msgs
                  in
                  let st = { bdist = best_d + 1; bparent = best_sender } in
                  let payload = [| st.bdist |] in
                  let out =
                    List.rev
                      (Graph.fold_adj g me
                         (fun acc u _ ->
                           if u = best_sender then acc else (u, payload) :: acc)
                         [])
                  in
                  { Network.state = st; out; halt = true }
                end
          end);
    }
  in
  let states, stats = Network.run ?faults ?trace ?metrics ?engine ?backend ?jobs g program in
  ( {
      dist = Array.map (fun s -> s.bdist) states;
      parent = Array.map (fun s -> s.bparent) states;
    },
    stats )

(* ---------- broadcast max ---------- *)

type bc_state = { known : int }

let broadcast_max ?faults ?trace ?metrics ?engine ?backend ?jobs g ~values =
  if Array.length values <> Graph.n g then
    invalid_arg "Programs.broadcast_max: length mismatch";
  let program =
    {
      Network.init = (fun _ v -> { known = values.(v) });
      round =
        (fun g ~round ~me st inbox ->
          let incoming =
            List.fold_left (fun acc (_, p) -> max acc p.(0)) min_int inbox
          in
          let updated = max st.known incoming in
          if round = 0 || updated > st.known then begin
            let out = out_to_all g me [| updated |] in
            { Network.state = { known = updated }; out; halt = true }
          end
          else { Network.state = st; out = []; halt = true });
    }
  in
  let states, stats = Network.run ?faults ?trace ?metrics ?engine ?backend ?jobs g program in
  (Array.map (fun s -> s.known) states, stats)

(* ---------- maximal matching ---------- *)

let tag_propose = 0
let tag_matched = 1

type mm_state = {
  mate : int;
  alive : int list; (* unmatched neighbours, sorted increasing *)
  proposed_to : int;
  announced : bool;
}

let maximal_matching ?trace ?metrics ?engine ?backend ?jobs g =
  let program =
    {
      Network.init =
        (fun g v ->
          {
            mate = -1;
            alive = sorted_nbrs g v (* adjacency order, already increasing *);
            proposed_to = -1;
            announced = false;
          });
      round =
        (fun _ ~round ~me:_ st inbox ->
          (* Remove neighbours announced as matched. *)
          let dead =
            List.filter_map
              (fun (s, p) -> if p.(0) = tag_matched then Some s else None)
              inbox
          in
          let alive = List.filter (fun u -> not (List.mem u dead)) st.alive in
          let st = { st with alive } in
          if st.mate >= 0 then
            if st.announced then { Network.state = st; out = []; halt = true }
            else begin
              let out = List.map (fun u -> (u, [| tag_matched |])) st.alive in
              { Network.state = { st with announced = true }; out; halt = true }
            end
          else if round mod 2 = 0 then begin
            (* Propose phase. *)
            match st.alive with
            | [] -> { Network.state = st; out = []; halt = true }
            | target :: _ ->
                {
                  Network.state = { st with proposed_to = target };
                  out = [ (target, [| tag_propose |]) ];
                  halt = false;
                }
          end
          else begin
            (* Resolve phase: mutual proposals marry. *)
            let proposers =
              List.filter_map
                (fun (s, p) -> if p.(0) = tag_propose then Some s else None)
                inbox
            in
            if st.proposed_to >= 0 && List.mem st.proposed_to proposers then begin
              let mate = st.proposed_to in
              let out =
                List.filter_map
                  (fun u -> if u = mate then None else Some (u, [| tag_matched |]))
                  st.alive
              in
              {
                Network.state = { st with mate; announced = true; proposed_to = -1 };
                out;
                halt = true;
              }
            end
            else
              {
                Network.state = { st with proposed_to = -1 };
                out = [];
                halt = st.alive = [];
              }
          end);
    }
  in
  let states, stats = Network.run ?trace ?metrics ?engine ?backend ?jobs g program in
  (Array.map (fun s -> s.mate) states, stats)

(* ---------- Luby's MIS ---------- *)

let tag_priority = 2
let tag_in_mis = 3
let tag_removed = 4

type mis_status = Mis_active | Mis_in | Mis_covered

type mis_state = {
  status : mis_status;
  active_nbrs : int list;
  prios : (int * int) list; (* neighbour -> priority, this phase *)
}

let luby_mis ?trace ?metrics ?engine ?backend ?jobs ~seed g =
  (* Per-(vertex, phase) pseudo-random priorities via SplitMix: the whole
     run is reproducible from [seed]. *)
  let priority v phase =
    let r = Util.Rng.create ((seed * 1_000_003) + (v * 7919) + phase) in
    Util.Rng.bits r
  in
  let program =
    {
      Network.init =
        (fun g v ->
          {
            status = Mis_active;
            active_nbrs = sorted_nbrs g v;
            prios = [];
          });
      round =
        (fun _ ~round ~me st inbox ->
          let phase = round / 3 in
          let sub = round mod 3 in
          (* Removal notices can arrive at any sub-round boundary. *)
          let removed =
            List.filter_map
              (fun (s, p) -> if p.(0) = tag_removed then Some s else None)
              inbox
          in
          let active_nbrs =
            List.filter (fun u -> not (List.mem u removed)) st.active_nbrs
          in
          let st = { st with active_nbrs } in
          match st.status with
          | Mis_in | Mis_covered -> { Network.state = st; out = []; halt = true }
          | Mis_active ->
              if sub = 0 then begin
                if st.active_nbrs = [] then
                  (* isolated among active vertices: join the set *)
                  { Network.state = { st with status = Mis_in }; out = []; halt = true }
                else begin
                  let p = priority me phase in
                  let out =
                    List.map (fun u -> (u, [| tag_priority; p |])) st.active_nbrs
                  in
                  { Network.state = { st with prios = [] }; out; halt = false }
                end
              end
              else if sub = 1 then begin
                let prios =
                  List.filter_map
                    (fun (s, p) ->
                      if p.(0) = tag_priority then Some (s, p.(1)) else None)
                    inbox
                in
                let mine = priority me phase in
                let wins =
                  List.for_all
                    (fun (u, p) -> mine > p || (mine = p && me > u))
                    prios
                in
                if wins && prios <> [] then begin
                  let out =
                    List.map (fun u -> (u, [| tag_in_mis |])) st.active_nbrs
                  in
                  { Network.state = { st with status = Mis_in }; out; halt = true }
                end
                else { Network.state = { st with prios }; out = []; halt = false }
              end
              else begin
                (* sub = 2: winner announcements from sub-round 1 arrive
                   here; newly covered vertices tell the rest to prune them *)
                let winners =
                  List.filter_map
                    (fun (s, p) -> if p.(0) = tag_in_mis then Some s else None)
                    inbox
                in
                if winners <> [] then begin
                  let out =
                    List.filter_map
                      (fun u ->
                        if List.mem u winners then None
                        else Some (u, [| tag_removed |]))
                      st.active_nbrs
                  in
                  {
                    Network.state = { st with status = Mis_covered };
                    out;
                    halt = true;
                  }
                end
                else { Network.state = st; out = []; halt = false }
              end);
    }
  in
  let states, stats = Network.run ~word_limit:4 ?trace ?metrics ?engine ?backend ?jobs g program in
  (Array.map (fun s -> s.status = Mis_in) states, stats)

(* ---------- distributed Bellman–Ford ---------- *)

type bf_state = { bf_dist : int; bf_parent : int }

let bellman_ford ?trace ?metrics ?engine ?backend ?jobs g ~source =
  if source < 0 || source >= Graph.n g then
    invalid_arg "Programs.bellman_ford: bad source";
  let program =
    {
      Network.init = (fun _ v ->
          if v = source then { bf_dist = 0; bf_parent = -1 }
          else { bf_dist = max_int; bf_parent = -1 });
      round =
        (fun g ~round ~me st inbox ->
          (* relax against the incoming announcements *)
          let improved = ref (round = 0 && me = source) in
          let st = ref st in
          List.iter
            (fun (s, p) ->
              match Graph.find_edge g me s with
              | None -> ()
              | Some eid ->
                  let nd = p.(0) + Graph.weight g eid in
                  if nd < !st.bf_dist then begin
                    st := { bf_dist = nd; bf_parent = s };
                    improved := true
                  end)
            inbox;
          let st = !st in
          if !improved then begin
            let out = out_to_all g me [| st.bf_dist |] in
            { Network.state = st; out; halt = true }
          end
          else { Network.state = st; out = []; halt = true });
    }
  in
  let states, stats = Network.run ?trace ?metrics ?engine ?backend ?jobs g program in
  ( ( Array.map (fun s -> s.bf_dist) states,
      Array.map (fun s -> s.bf_parent) states ),
    stats )

(* ---------- spanning forest by min-id flooding ---------- *)

type forest_state = { fr_root : int; fr_parent_eid : int }

let spanning_forest ?trace ?metrics ?engine ?backend ?jobs g =
  let program =
    {
      Network.init = (fun _ v -> { fr_root = v; fr_parent_eid = -1 });
      round =
        (fun g ~round ~me st inbox ->
          let improved = ref (round = 0) in
          let st = ref st in
          List.iter
            (fun (s, p) ->
              if p.(0) < !st.fr_root then begin
                match Graph.find_edge g me s with
                | Some eid ->
                    st := { fr_root = p.(0); fr_parent_eid = eid };
                    improved := true
                | None -> ()
              end)
            inbox;
          let st = !st in
          if !improved then begin
            let out = out_to_all g me [| st.fr_root |] in
            { Network.state = st; out; halt = true }
          end
          else { Network.state = st; out = []; halt = true });
    }
  in
  let states, stats = Network.run ?trace ?metrics ?engine ?backend ?jobs g program in
  let eids =
    Array.to_list states
    |> List.filter_map (fun s ->
           if s.fr_parent_eid >= 0 then Some s.fr_parent_eid else None)
  in
  (eids, stats)
