open! Import

type partition = {
  cluster_of : int array;
  parent : int array;
  roots : int array;
}

let of_partition (p : Ultraspan_graph.Partition.t) =
  if Array.exists (fun c -> c < 0) p.Ultraspan_graph.Partition.cluster_of then
    invalid_arg "Cluster_programs.of_partition: unclustered vertex";
  {
    cluster_of = Array.copy p.Ultraspan_graph.Partition.cluster_of;
    parent = Array.copy p.Ultraspan_graph.Partition.parent;
    roots = Array.copy p.Ultraspan_graph.Partition.roots;
  }

let tag_hello = 0 (* [| tag; cluster; parent_flag; annotation |] *)
let tag_aggregate = 1 (* [| tag; a; b |] *)
let tag_down = 2 (* [| tag; value |] *)

type 'acc cv_state = {
  children : int list;
  pending : int; (* children yet to report *)
  acc : 'acc;
  nbr_cluster : (int * int * int) list;
  done_ : bool;
  result : 'acc option; (* at roots *)
}

(* Generic convergecast: accumulators are pairs of ints.  [local] computes a
   vertex's own contribution once neighbour clusters/annotations are known;
   [merge] combines accumulators. *)
let convergecast g part ~annotation ~local ~merge ~identity =
  let program =
    {
      Network.init =
        (fun _ _ ->
          {
            children = [];
            pending = -1;
            acc = identity;
            nbr_cluster = [];
            done_ = false;
            result = None;
          });
      round =
        (fun g ~round ~me st inbox ->
          if round = 0 then begin
            (* hello: cluster + parent flag + annotation *)
            let out =
              List.rev
                (Graph.fold_adj g me
                   (fun acc u _ ->
                     ( u,
                       [|
                         tag_hello;
                         part.cluster_of.(me);
                         (if part.parent.(me) = u then 1 else 0);
                         annotation.(me);
                       |] )
                     :: acc)
                   [])
            in
            { Network.state = st; out; halt = false }
          end
          else begin
            (* fold in hellos (round 1 only) and child aggregates *)
            let st =
              if round = 1 then begin
                let nbr_cluster =
                  List.filter_map
                    (fun (s, p) ->
                      if p.(0) = tag_hello then Some (s, p.(1), p.(3)) else None)
                    inbox
                in
                let children =
                  List.filter_map
                    (fun (s, p) ->
                      if
                        p.(0) = tag_hello && p.(2) = 1
                        && p.(1) = part.cluster_of.(me)
                      then Some s
                      else None)
                    inbox
                in
                {
                  st with
                  nbr_cluster;
                  children;
                  pending = List.length children;
                  acc = local g me ~nbrs:nbr_cluster;
                }
              end
              else st
            in
            let st =
              List.fold_left
                (fun st (_, p) ->
                  if p.(0) = tag_aggregate then
                    { st with
                      acc = merge st.acc (p.(1), p.(2));
                      pending = st.pending - 1;
                    }
                  else st)
                st inbox
            in
            if st.done_ then { Network.state = st; out = []; halt = true }
            else if st.pending = 0 then begin
              if part.parent.(me) = -1 then
                {
                  Network.state = { st with done_ = true; result = Some st.acc };
                  out = [];
                  halt = true;
                }
              else begin
                let a, b = st.acc in
                {
                  Network.state = { st with done_ = true };
                  out = [ (part.parent.(me), [| tag_aggregate; a; b |]) ];
                  halt = true;
                }
              end
            end
            else { Network.state = st; out = []; halt = false }
          end);
    }
  in
  let states, stats = Network.run ~word_limit:4 g program in
  let out = Array.make (Array.length part.roots) None in
  Array.iteri
    (fun cid root ->
      match states.(root).result with
      | Some acc -> out.(cid) <- Some acc
      | None -> failwith "Cluster_programs: root did not finish")
    part.roots;
  (out, stats)

let no_annotation g = Array.make (Graph.n g) 0

let reduce_to_roots g part ~annotation ~local ~merge ~identity =
  if Array.length annotation <> Graph.n g then
    invalid_arg "Cluster_programs.reduce_to_roots: annotation length";
  let out, stats = convergecast g part ~annotation ~local ~merge ~identity in
  (Array.map (function Some acc -> acc | None -> identity) out, stats)

let sum_to_roots g part ~values =
  if Array.length values <> Graph.n g then
    invalid_arg "Cluster_programs.sum_to_roots: length mismatch";
  let out, stats =
    convergecast g part ~annotation:(no_annotation g)
      ~local:(fun _ me ~nbrs:_ -> (values.(me), 0))
      ~merge:(fun (a, _) (b, _) -> (a + b, 0))
      ~identity:(0, 0)
  in
  (Array.map (function Some (a, _) -> a | None -> 0) out, stats)

let cluster_of_nbr nbrs u =
  List.find_map (fun (s, c, _) -> if s = u then Some c else None) nbrs

let min_boundary_edges g part =
  let none = (max_int, max_int) in
  let out, stats =
    convergecast g part ~annotation:(no_annotation g)
      ~local:(fun g me ~nbrs ->
        let best = ref none in
        Graph.iter_adj g me (fun u eid ->
            match cluster_of_nbr nbrs u with
            | Some c when c <> part.cluster_of.(me) ->
                let key = (Graph.weight g eid, eid) in
                if key < !best then best := key
            | _ -> ());
        !best)
      ~merge:min ~identity:none
  in
  ( Array.map
      (function
        | Some (w, eid) when (w, eid) <> none -> Some (w, eid)
        | _ -> None)
      out,
    stats )

type bc_state = {
  bc_children : int list;
  bc_value : int option;
  bc_sent : bool;
}

let broadcast_from_roots g part ~values =
  if Array.length values <> Array.length part.roots then
    invalid_arg "Cluster_programs.broadcast_from_roots: length mismatch";
  let program =
    {
      Network.init =
        (fun _ v ->
          {
            bc_children = [];
            bc_value =
              (if part.parent.(v) = -1 then Some values.(part.cluster_of.(v))
               else None);
            bc_sent = false;
          });
      round =
        (fun g ~round ~me st inbox ->
          if round = 0 then begin
            let out =
              List.rev
                (Graph.fold_adj g me
                   (fun acc u _ ->
                     ( u,
                       [|
                         tag_hello;
                         part.cluster_of.(me);
                         (if part.parent.(me) = u then 1 else 0);
                       |] )
                     :: acc)
                   [])
            in
            { Network.state = st; out; halt = false }
          end
          else begin
            let st =
              if round = 1 then
                {
                  st with
                  bc_children =
                    List.filter_map
                      (fun (s, p) ->
                        if
                          p.(0) = tag_hello && p.(2) = 1
                          && p.(1) = part.cluster_of.(me)
                        then Some s
                        else None)
                      inbox;
                }
              else st
            in
            let st =
              List.fold_left
                (fun st (_, p) ->
                  if p.(0) = tag_down then { st with bc_value = Some p.(1) }
                  else st)
                st inbox
            in
            match st.bc_value with
            | Some v when not st.bc_sent ->
                let out =
                  List.map (fun u -> (u, [| tag_down; v |])) st.bc_children
                in
                { Network.state = { st with bc_sent = true }; out; halt = true }
            | _ -> { Network.state = st; out = []; halt = st.bc_sent }
          end);
    }
  in
  let states, stats = Network.run ~word_limit:4 g program in
  ( Array.map
      (fun st ->
        match st.bc_value with
        | Some v -> v
        | None -> failwith "Cluster_programs: vertex missed the broadcast")
      states,
    stats )
