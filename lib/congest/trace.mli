open! Import

(** Per-round execution traces of {!Network.run}.

    A [Trace.t] is an optional event sink: pass one to [Network.run ?trace]
    and it records, with {e zero behaviour change} to the run itself,

    - a {!round_record} per simulator round — node activations, messages
      delivered, total words, fault damage (drops / crashes / severed
      links) and the halted-node count;
    - per-node send and receive counters;
    - per-edge load counters (messages that traversed each edge, for
      congestion hot-spot analysis).

    Counting conventions: a message is attributed to the round in which it
    was {e sent} (matching [Network.stats.messages], which counts at send
    time); [sent]/[received]/[edge_load] count delivered messages only,
    with fault losses reported separately per round.  The summed per-round
    counters therefore reconcile exactly with [Network.stats] and the
    {!Faults.events} log (tested).

    Sinks are single-use, like fault injectors: build a fresh one per run.
    All recorded data is a pure function of the run, so a seeded run's
    exported trace replays bit-identically. *)

type round_record = {
  round : int;
  active : int;  (** nodes that executed their round function *)
  delivered : int;  (** messages sent this round that reached [pending] *)
  words : int;  (** total payload words across those messages *)
  drops : int;  (** messages lost to faults this round (incl. in-flight) *)
  crashes : int;  (** crash-stop failures applied this round *)
  severs : int;  (** link failures applied this round *)
  halted : int;  (** nodes halted at the end of the round *)
}

type t

val create : Graph.t -> t
(** A fresh sink for one run on the given graph. *)

val graph : t -> Graph.t

(** {1 Recorded data} *)

val rounds : t -> round_record array
(** Chronological per-round records. *)

val sent : t -> int array
(** Messages each node successfully sent (copy). *)

val received : t -> int array
(** Messages delivered to each node (copy). *)

val edge_load : t -> int array
(** Delivered messages per edge id, both directions combined (copy). *)

val total_delivered : t -> int
val total_fault_events : t -> int
(** Sum of per-round [drops + crashes + severs]; equals
    [List.length (Faults.events f)] for the run's injector. *)

(** {1 Exporters} *)

val to_jsonl : t -> string
(** One JSON object per line: every round record, then per-node counters,
    then per-edge loads (loaded edges only).  Deterministic byte-for-byte
    for a seeded run. *)

val round_of_jsonl : string -> round_record option
(** Parse one round line of {!to_jsonl} back; [None] for per-node/per-edge
    lines (or anything else).  [to_jsonl] followed by [round_of_jsonl] on
    each line round-trips the record array exactly (tested). *)

val to_chrome : ?extra_events:string list -> t -> string
(** Chrome trace-event JSON (load in Perfetto / chrome://tracing): rounds
    as duration slices on a synthetic 1000-ticks-per-round timeline, plus
    counter tracks for message volume and node activity.  [extra_events]
    are appended verbatim into the event array — each string must be one
    complete JSON event object (e.g. {!Ultraspan_util.Profile.chrome_events}
    phase spans). *)

val pp_summary : ?top:int -> Format.formatter -> t -> unit
(** Plain-text digest: totals, per-round and per-node message percentiles,
    the [top] (default 5) most congested edges, and a per-node send
    histogram — all via {!Ultraspan_util.Stats}. *)

(** {1 Simulator hooks}

    Called by {!Network.run}; user code never needs these, but they are
    exposed so alternative simulators can reuse the sink. *)

val start : t -> n:int -> unit
(** Mark the sink used and check it matches a network of [n] nodes.
    Raises [Invalid_argument] on reuse or size mismatch. *)

val note_fault_counters : t -> crashed:int -> severed:int -> unit
(** Feed the injector's cumulative crash/sever counters after
    [Faults.begin_round]; the sink derives this round's deltas. *)

val note_step : t -> unit
(** A node executed its round function. *)

val note_send : t -> sender:int -> target:int -> words:int -> unit
(** A message survived fault filtering and was enqueued. *)

val note_drop : t -> unit
(** A delivery was lost to faults (probabilistic, severed link, or crashed
    receiver — including in-flight losses). *)

val end_round : t -> round:int -> halted:int -> unit
(** Seal the round in progress into a {!round_record}. *)
