open! Import
module Rng = Util.Rng

type spec = {
  crashes : (int * int) list;
  link_failures : (int * int * int) list;
  drop_prob : float;
  seed : int;
}

let empty = { crashes = []; link_failures = []; drop_prob = 0.0; seed = 0 }

let crash ~round node spec =
  if round < 0 then invalid_arg "Faults.crash: negative round";
  if node < 0 then invalid_arg "Faults.crash: negative node";
  { spec with crashes = (round, node) :: spec.crashes }

let sever ~round u v spec =
  if round < 0 then invalid_arg "Faults.sever: negative round";
  if u < 0 || v < 0 || u = v then invalid_arg "Faults.sever: bad endpoints";
  { spec with link_failures = (round, min u v, max u v) :: spec.link_failures }

let with_drops ?seed p spec =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Faults.with_drops: probability outside [0, 1]";
  let seed = match seed with Some s -> s | None -> spec.seed in
  { spec with drop_prob = p; seed }

(* [count] distinct draws from [0, bound) by rejection (count <= bound). *)
let distinct ~rng ~bound ~count who =
  if count < 0 || count > bound then
    invalid_arg (Printf.sprintf "Faults.%s: count outside [0, %d]" who bound);
  let seen = Hashtbl.create (2 * count) in
  let picked = ref [] in
  while Hashtbl.length seen < count do
    let x = Rng.int rng bound in
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      picked := x :: !picked
    end
  done;
  List.rev !picked

let random_crashes ~rng ~n ~within ~count spec =
  let nodes = distinct ~rng ~bound:n ~count "random_crashes" in
  List.fold_left
    (fun spec node -> crash ~round:(Rng.int rng (within + 1)) node spec)
    spec nodes

let random_link_failures ~rng g ~within ~count spec =
  let eids = distinct ~rng ~bound:(Graph.m g) ~count "random_link_failures" in
  List.fold_left
    (fun spec eid ->
      let u, v = Graph.endpoints g eid in
      sever ~round:(Rng.int rng (within + 1)) u v spec)
    spec eids

let to_update_stream g spec =
  let n = Graph.n g in
  let check_node who v =
    if v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Faults.to_update_stream: %s node %d outside [0, %d)"
           who v n)
  in
  List.iter (fun (_, v) -> check_node "crashed" v) spec.crashes;
  List.iter
    (fun (_, u, v) ->
      check_node "severed-link" u;
      check_node "severed-link" v)
    spec.link_failures;
  let dead = Hashtbl.create 64 in
  (* delete the (u, v) edge unless it is absent or already gone *)
  let kill u v acc =
    let key = (min u v, max u v) in
    if Hashtbl.mem dead key || not (Graph.mem_edge g u v) then acc
    else begin
      Hashtbl.add dead key ();
      key :: acc
    end
  in
  let module Is = Set.Make (Int) in
  let rounds =
    Is.elements
      (List.fold_left
         (fun s (r, _, _) -> Is.add r s)
         (List.fold_left (fun s (r, _) -> Is.add r s) Is.empty spec.crashes)
         spec.link_failures)
  in
  List.filter_map
    (fun round ->
      let dels = ref [] in
      List.iter
        (fun (r, u, v) -> if r = round then dels := kill u v !dels)
        (List.sort compare spec.link_failures);
      List.iter
        (fun (r, node) ->
          if r = round then
            Graph.iter_adj g node (fun u _ -> dels := kill node u !dels))
        (List.sort compare spec.crashes);
      match List.sort compare !dels with
      | [] -> None
      | dels -> Some (round, dels))
    rounds

let pp ppf spec =
  Format.fprintf ppf "faults(%d crashes, %d link failures, drop %.3f, seed %d)"
    (List.length spec.crashes)
    (List.length spec.link_failures)
    spec.drop_prob spec.seed

type drop_reason = Chance | Link_down | Receiver_crashed

type event =
  | Crash of { round : int; node : int }
  | Sever of { round : int; u : int; v : int }
  | Drop of { round : int; sender : int; target : int; reason : drop_reason }

let pp_event ppf = function
  | Crash { round; node } -> Format.fprintf ppf "r%d: crash node %d" round node
  | Sever { round; u; v } -> Format.fprintf ppf "r%d: sever %d-%d" round u v
  | Drop { round; sender; target; reason } ->
      Format.fprintf ppf "r%d: drop %d->%d (%s)" round sender target
        (match reason with
        | Chance -> "chance"
        | Link_down -> "link down"
        | Receiver_crashed -> "receiver crashed")

type t = {
  spec : spec;
  (* schedule sorted by round, consumed from the head as rounds begin *)
  mutable due_crashes : (int * int) list;
  mutable due_severs : (int * int * int) list;
  mutable crashed : bool array;  (* resized by [start] *)
  down : (int * int, unit) Hashtbl.t;
  rng : Rng.t;
  mutable events_rev : event list;
  mutable n_drops : int;
  mutable n_crashed : int;
  mutable n_severed : int;
  mutable started : bool;
}

let make spec =
  let by_round a b = compare a b in
  {
    spec;
    due_crashes = List.sort by_round spec.crashes;
    due_severs = List.sort by_round spec.link_failures;
    crashed = [||];
    down = Hashtbl.create 16;
    rng = Rng.create spec.seed;
    events_rev = [];
    n_drops = 0;
    n_crashed = 0;
    n_severed = 0;
    started = false;
  }

let spec t = t.spec
let events t = List.rev t.events_rev
let drops t = t.n_drops
let crashed_nodes t = t.n_crashed
let severed_links t = t.n_severed

let start t ~n =
  if t.started then
    invalid_arg "Faults.start: injector already used (build a fresh one)";
  t.started <- true;
  let check_node who v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Faults.start: %s node %d outside [0, %d)" who v n)
  in
  List.iter (fun (_, v) -> check_node "crashed" v) t.due_crashes;
  List.iter
    (fun (_, u, v) -> check_node "severed-link" u; check_node "severed-link" v)
    t.due_severs;
  t.crashed <- Array.make n false

let record t e = t.events_rev <- e :: t.events_rev

let begin_round t ~round =
  let rec crashes = function
    | (r, node) :: rest when r <= round ->
        if not t.crashed.(node) then begin
          t.crashed.(node) <- true;
          t.n_crashed <- t.n_crashed + 1;
          record t (Crash { round; node })
        end;
        crashes rest
    | rest -> t.due_crashes <- rest
  in
  crashes t.due_crashes;
  let rec severs = function
    | (r, u, v) :: rest when r <= round ->
        if not (Hashtbl.mem t.down (u, v)) then begin
          Hashtbl.replace t.down (u, v) ();
          t.n_severed <- t.n_severed + 1;
          record t (Sever { round; u; v })
        end;
        severs rest
    | rest -> t.due_severs <- rest
  in
  severs t.due_severs

let is_crashed t v = t.crashed.(v)

let drop t ~round ~sender ~target reason =
  t.n_drops <- t.n_drops + 1;
  record t (Drop { round; sender; target; reason })

let deliver t ~round ~sender ~target =
  if Hashtbl.mem t.down (min sender target, max sender target) then begin
    drop t ~round ~sender ~target Link_down;
    false
  end
  else if t.crashed.(target) then begin
    drop t ~round ~sender ~target Receiver_crashed;
    false
  end
  else if t.spec.drop_prob > 0.0 && Rng.bernoulli t.rng t.spec.drop_prob
  then begin
    drop t ~round ~sender ~target Chance;
    false
  end
  else true

let drop_in_flight t ~round ~sender ~target =
  drop t ~round ~sender ~target Receiver_crashed
