open! Import

(** Synchronous CONGEST-model network simulator.

    The network is the input graph: one node per vertex, communication only
    along edges, proceeding in synchronous rounds.  Per round every node may
    send one bounded-size message to each neighbour (the CONGEST bandwidth
    constraint); the simulator *enforces* the bound and records round and
    message statistics.

    Node behaviour is given as a {!program}: an initial state and a round
    function mapping (state, inbox) to (state, outbox, halt?).  A halted
    node is skipped until a message arrives, which wakes it.  The run ends
    when every node is halted and no messages are in flight, or when
    [max_rounds] is hit (an error by default, since every algorithm in this
    library has a proven round bound). *)

type inbox = (int * int array) list
(** [(sender_vertex, payload)] for each message received this round,
    in increasing sender order (deterministic). *)

type outbox = (int * int array) list
(** [(neighbour_vertex, payload)]: destinations must be neighbours; at most
    one message per neighbour per round. *)

type 'a step = { state : 'a; out : outbox; halt : bool }

type 'a program = {
  init : Graph.t -> int -> 'a;
      (** Initial state of each vertex.  A node only knows [n], its own id
          and its incident edges — programs honouring the model must not
          inspect the rest of the graph (this is by convention; the full
          graph is passed for convenience of address arithmetic). *)
  round : Graph.t -> round:int -> me:int -> 'a -> inbox -> 'a step;
}

type stats = {
  rounds : int;  (** rounds executed *)
  messages : int;  (** total messages delivered *)
  max_words : int;  (** largest message seen, in words *)
  wakeups : int;  (** total node activations *)
}

exception Message_too_large of { sender : int; words : int; limit : int }
exception Not_a_neighbor of { sender : int; target : int }
exception Round_limit_exceeded of int

val run :
  ?max_rounds:int ->
  ?word_limit:int ->
  Graph.t ->
  'a program ->
  'a array * stats
(** Execute to quiescence.  [word_limit] is the per-message size cap in
    words of O(log n) bits (default 4: a constant number of ids/weights,
    the usual CONGEST convention).  [max_rounds] defaults to [100 * (n+1)]. *)
