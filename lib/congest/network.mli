open! Import

(** Synchronous CONGEST-model network simulator.

    The network is the input graph: one node per vertex, communication only
    along edges, proceeding in synchronous rounds.  Per round every node may
    send one bounded-size message to each neighbour (the CONGEST bandwidth
    constraint); the simulator *enforces* the bound and records round and
    message statistics.

    Node behaviour is given as a {!program}: an initial state and a round
    function mapping (state, inbox) to (state, outbox, halt?).  A halted
    node is skipped until a message arrives, which wakes it.  The run ends
    when every node is halted and no messages are in flight, or when
    [max_rounds] is hit (an error by default, since every algorithm in this
    library has a proven round bound).

    Runs may optionally be subjected to a deterministic fault schedule
    ({!Faults}): crash-stop node failures, permanent link failures and
    probabilistic message drops.  Without a [?faults] injector the simulator
    is perfectly reliable and behaves exactly as before the fault layer
    existed (tested bit-for-bit against the empty plan). *)

type inbox = (int * int array) list
(** [(sender_vertex, payload)] for each message received this round,
    in increasing sender order (deterministic). *)

type outbox = (int * int array) list
(** [(neighbour_vertex, payload)]: destinations must be neighbours; at most
    one message per neighbour per round. *)

type 'a step = { state : 'a; out : outbox; halt : bool }

type 'a program = {
  init : Graph.t -> int -> 'a;
      (** Initial state of each vertex.  A node only knows [n], its own id
          and its incident edges — programs honouring the model must not
          inspect the rest of the graph (this is by convention; the full
          graph is passed for convenience of address arithmetic). *)
  round : Graph.t -> round:int -> me:int -> 'a -> inbox -> 'a step;
}

type engine = [ `Fast | `Ref ]
(** Message-plane implementation.  [`Fast] (the default) delivers messages
    into preallocated per-arc slots of the graph's CSR index: duplicate
    detection is a slot-stamp check, inboxes come out sorted by sender for
    free (adjacency slices are sorted), and payloads live in a flat
    off-heap arena (one [word_limit]-word region per arc) instead of a
    boxed array the GC would trace.  [`Ref] is the original list-based
    loop, kept as a reference oracle; both engines are observably
    identical — states, stats, fault events and traces match bit-for-bit
    (enforced by the differential test suite). *)

type backend = [ `Seq | `Sharded ]
(** Round-delivery backend of the [`Fast] engine.  [`Seq] steps all nodes
    on the calling domain.  [`Sharded] partitions the node range into a
    fixed set of shards ({!Ultraspan_util.Parallel.block_count}, a
    function of [n] alone) and runs each round as two barrier-separated
    pool sections — inbox assembly, then step-and-deliver — fanned across
    the deterministic domain pool.  Stats, states, deterministic metrics,
    fault events, traces and model-violation exceptions are byte-identical
    to [`Seq] for every job count: per-shard accumulators are folded on
    the caller in shard-index (= node) order, and the order-sensitive
    parts (fault RNG, trace hooks) force the step phase sequential
    whenever [?faults] or [?trace] is attached.  The [`Ref] engine has no
    sharded backend (requesting it is an [Invalid_argument]). *)

type stats = {
  rounds : int;  (** rounds executed *)
  messages : int;  (** total messages delivered (dropped ones excluded) *)
  max_words : int;  (** largest message sent, in words *)
  wakeups : int;  (** total node activations *)
  drops : int;  (** messages lost to faults (0 without an injector) *)
  crashed_nodes : int;  (** crash-stop failures applied *)
  severed_links : int;  (** permanent link failures applied *)
}

exception Message_too_large of { sender : int; words : int; limit : int }

exception Not_a_neighbor of { sender : int; target : int }
(** Raised when a message targets a vertex that is not adjacent to the
    sender. *)

exception Duplicate_message of { sender : int; target : int }
(** Raised when a node sends two messages to the same neighbour in one
    round (the CONGEST bandwidth constraint allows exactly one). *)

exception Round_limit_exceeded of { limit : int; partial : stats }
(** The run hit [max_rounds].  [partial] carries the statistics observed up
    to that point so a diverging (or fault-starved) run is diagnosable. *)

val run :
  ?max_rounds:int ->
  ?word_limit:int ->
  ?faults:Faults.t ->
  ?trace:Trace.t ->
  ?metrics:Ultraspan_util.Metrics.t ->
  ?engine:engine ->
  ?backend:backend ->
  ?jobs:int ->
  Graph.t ->
  'a program ->
  'a array * stats
(** Execute to quiescence.  [word_limit] is the per-message size cap in
    words of O(log n) bits (default 4: a constant number of ids/weights,
    the usual CONGEST convention).  [max_rounds] defaults to [100 * (n+1)].
    [engine] selects the message-plane implementation (default [`Fast];
    see {!type-engine}).

    [backend] selects the [`Fast] engine's round-delivery strategy (see
    {!type-backend}).  Default: [`Sharded] when the machine has more than
    one core, [`Seq] otherwise — safe because the two are byte-identical
    in every observable.  [jobs] bounds the domains the sharded backend
    uses (default: {!Ultraspan_util.Parallel.default_jobs}); it never
    affects results, only wall-clock.  One caveat: when a run raises a
    model violation under the parallel step phase, the registry reflects
    only the shards at or before the violating one — exactly what the
    sequential backend would have recorded.

    [faults] subjects the run to a fault schedule (see {!Faults} for the
    exact semantics); the injector must be fresh, and afterwards
    [Faults.events] holds the chronological log of what was injected.
    Crashed nodes count as halted for termination purposes, so a program
    that would wait forever for a lost message ends with
    {!Round_limit_exceeded} — whose [partial] stats include the fault
    counters.

    [trace] attaches a fresh {!Trace} sink recording per-round, per-node
    and per-edge behaviour.  Tracing is pure observation: a run with a sink
    computes exactly the same states and stats as one without (tested
    bit-for-bit), and with no sink the simulator takes the historical code
    path unchanged.

    [metrics] registers run counters in a {!Ultraspan_util.Metrics}
    registry (default: the disabled no-op sink).  Deterministic metrics
    ([congest.deliveries_total], [congest.payload_words_total],
    [congest.wakeups_total], [congest.drops_total], [congest.rounds_total],
    the [congest.max_payload_words] gauge and the
    [congest.deliveries_per_round] histogram) are identical across engines
    and accumulate across runs sharing the registry.  Engine-internal
    diagnostics (arena occupancy, merge-cursor work, inbox sorts) live
    under [timing.congest.*], the execution namespace excluded from
    determinism gates.  On {!Round_limit_exceeded} the registry is flagged
    partial and keeps every counter recorded so far — matching how
    [partial] stats stay available. *)
