open! Import

(** Intra-cluster communication primitives as native CONGEST programs.

    The paper's round analyses are built from three waves over cluster
    trees: convergecast an aggregate to the root, broadcast a value back
    down, and detect each cluster's minimum boundary edge (steps (1)–(2) of
    Lemma 4.1, and the workhorse of Appendix C/D).  This module runs those
    waves as genuine message-passing programs over a given partition, so
    the test-suite can check that the {!Rounds.charge_aggregate} accounting
    formula (2·radius + 2) matches the measured protocol cost.

    Protocol: one preliminary round in which every vertex tells each
    neighbour its cluster and whether that neighbour is its tree parent
    (children discovery), then the requested wave.  Nodes are synchronized
    by round number only — no global controller. *)

type partition = {
  cluster_of : int array;  (** vertex -> cluster id ([-1] not allowed here) *)
  parent : int array;  (** tree parent or -1 at roots *)
  roots : int array;  (** cluster id -> root vertex *)
}

val of_partition : Ultraspan_graph.Partition.t -> partition
(** Raises [Invalid_argument] if some vertex is unclustered. *)

val sum_to_roots :
  Graph.t -> partition -> values:int array -> int array * Network.stats
(** Convergecast: per-cluster sums of the per-vertex values, delivered at
    the roots.  Measured rounds <= radius + O(1). *)

val broadcast_from_roots :
  Graph.t -> partition -> values:int array -> int array * Network.stats
(** [values] is indexed by cluster; every vertex learns its cluster's
    value.  Measured rounds <= radius + O(1). *)

val min_boundary_edges :
  Graph.t -> partition -> (int * int) option array * Network.stats
(** Per cluster, the minimum boundary edge as [(weight, edge id)] ([None]
    for clusters without boundary edges), delivered at the roots —
    step (2) of Lemma 4.1.  Measured rounds <= radius + O(1). *)

val reduce_to_roots :
  Graph.t ->
  partition ->
  annotation:int array ->
  local:(Graph.t -> int -> nbrs:(int * int * int) list -> int * int) ->
  merge:(int * int -> int * int -> int * int) ->
  identity:(int * int) ->
  (int * int) array * Network.stats
(** The generic wave the primitives above are built from, exposed for the
    distributed Lemma 4.1 driver ({!Ultraspan_spanner.Sf_distributed}).
    Every vertex first announces (cluster, parent?, annotation.(v)) to its
    neighbours; then [local g v ~nbrs] — with [nbrs] the received
    [(neighbour, its cluster, its annotation)] triples — seeds a
    convergecast combined with [merge] up the cluster trees.  The per-root
    results are returned (identity for clusterless input).  Measured
    rounds <= radius + O(1). *)
