open! Import

(** Incremental maintenance of a (2k-1)-spanner and a k-connectivity
    certificate under batched edge updates — graceful degradation, never a
    wrong answer.

    {2 Spanner repair}

    The engine keeps the greedy invariant that makes any subgraph [H] a
    (2k-1)-spanner: for every edge [(x, y, w)] of the current graph,
    [d_H(x, y) <= (2k-1) * w].  After a batch it restores the invariant
    locally instead of rebuilding:

    - deletions of non-spanner edges remove an obligation and never create
      one; deleted spanner edges mark their endpoints {e dirty};
    - a bound-length witness path that crossed a deleted spanner edge
      [(a, b, w_ab)] certifies [d(x, a) + w_ab + d(b, y) <= (2k-1) * w] for
      the edge [(x, y, w)] it served, so one truncated Dijkstra per dirty
      vertex in the {e old} spanner (radius [(2k-1) * max_w]) is enough to
      find every edge whose bound may have broken — the {e candidates} —
      along with all insertions of the batch;
    - candidates are re-checked in ascending (weight, endpoints) order with
      early-exit truncated Dijkstras against the current spanner, adding
      the candidate itself when its bound fails (re-clustering its
      endpoints into the spanner), which restores the invariant and cannot
      break any other edge's bound.

    When a batch's damage exceeds the configured threshold
    ({!config.max_affected}) the engine falls back to a from-scratch
    {!Bs_derand} rebuild — the degradation is in {e cost}, never in the
    answer.  Between rebuilds the spanner only grows; rebuilds restore the
    deterministic size guarantees.

    {2 Lazy recertification}

    The certificate is built with {e headroom}: a request for [ck]-edge-
    connectivity builds a [(ck + headroom)]-certificate.  Constructions
    with the strong cut property (every cut keeps all of its edges or at
    least [ck + headroom] of them) tolerate deletions lazily: after [d]
    certificate-edge deletions every non-full cut still keeps
    [>= ck + headroom - d] edges, so while the {e debt} [d] stays at most
    [headroom] the survivors still certify [ck]-connectivity of the
    current graph.  Insertions are appended to the certificate (cuts only
    gain edges); the certificate is rebuilt from scratch only when the
    debt exceeds the headroom.

    {2 Recertified recovery}

    {!recertify} re-runs the repo's ground-truth checkers on the current
    state — {!Stretch.check_stretch}, {!Connectivity.spans},
    {!Certificate.is_certificate} and the {!Resilience} failure-set
    harness — so recovery is re-proved, not just re-measured. *)

type cert_algo = Thurimella | Kecss

type config = {
  k : int;  (** spanner parameter: stretch bound 2k-1 *)
  mode : [ `Incremental | `Rebuild ];
      (** [`Rebuild] reconstructs from scratch every batch (the engine
          differential baselines compare against). *)
  cert : (cert_algo * int) option;
      (** maintain a certificate of [ck]-edge-connectivity, or [None] *)
  headroom : int;  (** extra connectivity built into the certificate *)
  max_affected : float;
      (** fall back to a rebuild when the batch deletes more than
          [max_affected * spanner_size] spanner edges or yields more than
          [max_affected * m] candidates *)
  jobs : int;  (** domain-pool width for the verification kernels *)
  recert : [ `Exact | `Local | `Probe ];
      (** what {!recertify} runs: [`Exact] (default) — the centralized
          ground-truth checkers; [`Local] — witness construction plus the
          O(k)-round CONGEST checker programs ({!Ultraspan_verify.Verify}
          [Local] mode): an accept certifies the stretch bound without
          measuring exact stretch, so [verdicts.stretch] reports the
          certified bound [2k-1] on accept and [infinity] on reject, and
          [cert_violations] is [None]; [`Probe] — sublinear eps-far
          connectivity spot-checks only (stretch fields vacuous). *)
}

val defaults : k:int -> config
(** [`Incremental], no certificate, [headroom = k], [max_affected = 0.25],
    [jobs = Parallel.default_jobs ()].  Override fields with record update
    syntax.  Raises [Invalid_argument] if [k < 1]. *)

type outcome = {
  batch : int;  (** 1-based index of the batch in this engine's life *)
  inserts : int;
  deletes : int;
  action : [ `Repair | `Rebuild ];
  dirty : int;  (** endpoints of deleted spanner edges *)
  candidates : int;  (** edges whose stretch bound was re-checked *)
  added : int;  (** spanner edges added *)
  removed : int;  (** spanner edges lost to deletions *)
  work : int;
      (** deterministic cost of this batch on the repair path: edge
          relaxations of every Dijkstra, ball marking, one membership
          pass over the edge list and the ball-restricted detour checks
          of the candidate filter; the {!field-rebuild_work} proxy when
          the batch rebuilt *)
  rebuild_work : int;
      (** what a from-scratch rebuild costs under the documented
          lower-bound proxy [(k+1) * m + n] — [k-1] derandomized
          iterations plus the finishing iteration each touch every alive
          edge at least once.  Comparing [work] against it is therefore
          conservative in the rebuild's favour. *)
  cert_removed : int;  (** certificate edges lost to deletions *)
  cert_debt : int;  (** deletion debt after the batch *)
  cert_rebuilt : bool;
}

type verdicts = {
  stretch : float;  (** exact max edge stretch of the current state *)
  stretch_ok : bool;  (** {!Stretch.check_stretch} at alpha = 2k-1 *)
  spanning : bool;  (** {!Connectivity.spans}: skeleton property *)
  cert_ok : bool option;
      (** {!Certificate.is_certificate} at the requested [ck] *)
  cert_violations : int option;
      (** violations found by {!Resilience.check_certificate} *)
}

type t

val create : ?metrics:Ultraspan_util.Metrics.t -> config -> Graph.t -> t
(** Build the initial spanner (and certificate, if configured) on [g].
    Raises [Invalid_argument] on a malformed config.

    [metrics] (default: the disabled sink) accumulates per-batch engine
    counters under [dynamic.repair.*]: [batches_total],
    [dirty_balls_total], [candidates_total], [candidates_filtered] (edges
    the dirty-ball filter rejected), [repairs_total] / [rebuilds_total] /
    [rebuild_fallbacks] (candidate-overflow aborts), [work_total],
    [edges_added_total] / [edges_removed_total], [cert_rebuilds_total],
    and the [recert_debt] gauge.  The engine is sequentially
    deterministic, so all of these are jobs- and engine-invariant.
    {!copy} shares the registry handles with the original. *)

val config : t -> config

val graph : t -> Graph.t
(** The current graph (edge ids are renumbered after every batch). *)

val spanner : t -> bool array
(** Edge mask over {!graph}. *)

val spanner_size : t -> int

val certificate : t -> Certificate.t option
(** The maintained certificate at the {e requested} connectivity [ck] (the
    headroom is an implementation margin, not a claim). *)

val certificate_size : t -> int
(** [0] when no certificate is maintained. *)

val cert_debt : t -> int

val apply_batch : t -> Update_stream.batch -> outcome
(** Apply one batch strictly (the ops contract of {!Update_stream.apply};
    [Failure] on an invalid op leaves the engine unchanged) and repair or
    rebuild the structures. *)

val apply_stream : t -> Update_stream.t -> outcome list

val recertify : ?rng:Rng.t -> ?budget:int -> t -> verdicts
(** Verification of the current state in the configured {!config.recert}
    mode.  [`Exact]: ground truth, [budget] caps the Resilience failure
    sets sampled (default 200).  [`Local] / [`Probe]: see
    {!config.recert}; [rng] and [budget] are unused there.  Pure: the
    engine is not modified. *)

val copy : t -> t
(** Independent deep copy (shares only immutable data).  Lets harnesses
    replay batches from a common initial state. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_verdicts : Format.formatter -> verdicts -> unit
