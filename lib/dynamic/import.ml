(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Connectivity = Ultraspan_graph.Connectivity
module Stretch = Ultraspan_graph.Stretch
module Faults = Ultraspan_congest.Faults
module Spanner = Ultraspan_spanner.Spanner
module Bs_derand = Ultraspan_spanner.Bs_derand
module Certificate = Ultraspan_certificate.Certificate
module Thurimella = Ultraspan_certificate.Thurimella
module Kecss = Ultraspan_certificate.Kecss
module Resilience = Ultraspan_certificate.Resilience
module Util = Ultraspan_util
module Rng = Ultraspan_util.Rng
module Pqueue = Ultraspan_util.Pqueue
module Bitset = Ultraspan_util.Bitset
module Parallel = Ultraspan_util.Parallel
