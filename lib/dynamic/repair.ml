open! Import

type cert_algo = Thurimella | Kecss

type config = {
  k : int;
  mode : [ `Incremental | `Rebuild ];
  cert : (cert_algo * int) option;
  headroom : int;
  max_affected : float;
  jobs : int;
  recert : [ `Exact | `Local | `Probe ];
}

let defaults ~k =
  if k < 1 then invalid_arg "Repair.defaults: k < 1";
  {
    k;
    mode = `Incremental;
    cert = None;
    headroom = k;
    max_affected = 0.25;
    jobs = Parallel.default_jobs ();
    recert = `Exact;
  }

type outcome = {
  batch : int;
  inserts : int;
  deletes : int;
  action : [ `Repair | `Rebuild ];
  dirty : int;
  candidates : int;
  added : int;
  removed : int;
  work : int;
  rebuild_work : int;
  cert_removed : int;
  cert_debt : int;
  cert_rebuilt : bool;
}

type verdicts = {
  stretch : float;
  stretch_ok : bool;
  spanning : bool;
  cert_ok : bool option;
  cert_violations : int option;
}

module Metrics = Ultraspan_util.Metrics

(* Every repair counter is a function of the update stream and the initial
   graph alone — the engine is sequential and deterministic — so all of
   them live in the deterministic namespace (jobs only parallelize the
   recertification kernels, which have their own [parallel.*] metrics). *)
type meters = {
  rm_batches : Metrics.counter;
  rm_dirty : Metrics.counter;
  rm_candidates : Metrics.counter;
  rm_filtered : Metrics.counter;  (* edges the candidate filter rejected *)
  rm_repairs : Metrics.counter;
  rm_rebuilds : Metrics.counter;
  rm_fallbacks : Metrics.counter;  (* repairs aborted by candidate overflow *)
  rm_work : Metrics.counter;
  rm_added : Metrics.counter;
  rm_removed : Metrics.counter;
  rm_cert_rebuilds : Metrics.counter;
  rm_debt : Metrics.gauge;
}

let meters_of reg =
  {
    rm_batches = Metrics.counter reg "dynamic.repair.batches_total";
    rm_dirty = Metrics.counter reg "dynamic.repair.dirty_balls_total";
    rm_candidates = Metrics.counter reg "dynamic.repair.candidates_total";
    rm_filtered = Metrics.counter reg "dynamic.repair.candidates_filtered";
    rm_repairs = Metrics.counter reg "dynamic.repair.repairs_total";
    rm_rebuilds = Metrics.counter reg "dynamic.repair.rebuilds_total";
    rm_fallbacks = Metrics.counter reg "dynamic.repair.rebuild_fallbacks";
    rm_work = Metrics.counter reg "dynamic.repair.work_total";
    rm_added = Metrics.counter reg "dynamic.repair.edges_added_total";
    rm_removed = Metrics.counter reg "dynamic.repair.edges_removed_total";
    rm_cert_rebuilds = Metrics.counter reg "dynamic.repair.cert_rebuilds_total";
    rm_debt = Metrics.gauge reg "dynamic.repair.recert_debt";
  }

type t = {
  cfg : config;
  n : int;
  mutable g : Graph.t;
  mutable keep : bool array;
  mutable edges : (int * int, int) Hashtbl.t;  (* live-edge model *)
  mutable span : (int * int, unit) Hashtbl.t;  (* spanner as canonical pairs *)
  mutable cert : (int * int, unit) Hashtbl.t;  (* certificate pairs *)
  mutable debt : int;  (* certificate edges lost since its last build *)
  mutable batches : int;
  rm : meters;  (* shared with copies *)
}

let validate (cfg : config) =
  if cfg.k < 1 then invalid_arg "Repair.create: k < 1";
  if cfg.headroom < 0 then invalid_arg "Repair.create: negative headroom";
  if cfg.max_affected < 0.0 then
    invalid_arg "Repair.create: negative max_affected";
  if cfg.jobs < 1 then invalid_arg "Repair.create: jobs < 1";
  match cfg.cert with
  | Some (_, ck) when ck < 1 -> invalid_arg "Repair.create: certificate k < 1"
  | _ -> ()

let pairs_of_keep g keep =
  let tbl = Hashtbl.create (2 * (Graph.m g + 1)) in
  Graph.iter_edges g (fun e ->
      if keep.(e.Graph.id) then Hashtbl.replace tbl (e.Graph.u, e.Graph.v) ());
  tbl

let keep_of_pairs g pairs =
  let keep = Array.make (Graph.m g) false in
  Graph.iter_edges g (fun e ->
      if Hashtbl.mem pairs (e.Graph.u, e.Graph.v) then keep.(e.Graph.id) <- true);
  keep

let build_spanner (cfg : config) g = (Bs_derand.run ~k:cfg.k g).Bs_derand.spanner.Spanner.keep

(* KECSS presumes a (ck + headroom)-connected input; a deletion stream can
   sink the graph below that, in which case we degrade to Thurimella's
   k-forest peeling, which certifies min(k, lambda) on any graph. *)
let build_cert (cfg : config) g =
  match cfg.cert with
  | None -> Hashtbl.create 1
  | Some (algo, ck) ->
      let kk = ck + cfg.headroom in
      let keep =
        match algo with
        | Thurimella -> (Thurimella.certificate ~k:kk g).Certificate.keep
        | Kecss -> (
            try (Kecss.approximate ~k:kk g).Kecss.certificate.Certificate.keep
            with Invalid_argument _ ->
              (Thurimella.certificate ~k:kk g).Certificate.keep)
      in
      pairs_of_keep g keep

let create ?(metrics = Metrics.disabled) cfg g =
  validate cfg;
  let edges = Hashtbl.create (2 * (Graph.m g + 1)) in
  Graph.iter_edges g (fun e ->
      Hashtbl.replace edges (e.Graph.u, e.Graph.v) e.Graph.w);
  let keep = build_spanner cfg g in
  {
    cfg;
    n = Graph.n g;
    g;
    keep;
    edges;
    span = pairs_of_keep g keep;
    cert = build_cert cfg g;
    debt = 0;
    batches = 0;
    rm = meters_of metrics;
  }

let config t = t.cfg
let graph t = t.g
let spanner t = t.keep
let spanner_size t = Hashtbl.length t.span
let certificate_size t = Hashtbl.length t.cert
let cert_debt t = t.debt

let certificate t =
  match t.cfg.cert with
  | None -> None
  | Some (_, ck) ->
      let eids = ref [] in
      Graph.iter_edges t.g (fun e ->
          if Hashtbl.mem t.cert (e.Graph.u, e.Graph.v) then
            eids := e.Graph.id :: !eids);
      Some (Certificate.of_eids t.g ~k:ck (List.rev !eids))

let copy t =
  {
    t with
    edges = Hashtbl.copy t.edges;
    span = Hashtbl.copy t.span;
    cert = Hashtbl.copy t.cert;
    keep = Array.copy t.keep;
  }

(* Budget-truncated single/multi-purpose Dijkstra over the masked subgraph,
   counting every scanned kept edge into [work].  [stop_at = -1] disables
   the early exit.  Also returns the reached vertices (finite distance),
   so callers can mark dirty balls without rescanning all [n] entries. *)
let dijkstra_trunc ~work g keep ~src ~budget ~stop_at =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let settled = Bitset.create n in
  let pq = Pqueue.create ~cmp:compare () in
  dist.(src) <- 0;
  let reached = ref [ src ] in
  Pqueue.push pq 0 src;
  let finished = ref false in
  while (not !finished) && not (Pqueue.is_empty pq) do
    let d, v = Pqueue.pop_exn pq in
    if not (Bitset.mem settled v) then begin
      Bitset.add settled v;
      if v = stop_at then finished := true
      else
        Graph.iter_adj g v (fun u eid ->
            if keep.(eid) then begin
              incr work;
              let nd = d + Graph.weight g eid in
              if nd <= budget && nd < dist.(u) then begin
                if dist.(u) = max_int then reached := u :: !reached;
                dist.(u) <- nd;
                Pqueue.push pq nd u
              end
            end)
    end
  done;
  (dist, !reached)

let rebuild_work_proxy (cfg : config) g = ((cfg.k + 1) * Graph.m g) + Graph.n g

let apply_batch t batch =
  let cfg = t.cfg in
  let n = t.n in
  (* Stage the ops against copies so a malformed batch leaves the engine
     unchanged; t.span / t.cert are only consulted, never written, until
     the commit below. *)
  let edges' = Hashtbl.copy t.edges in
  let ins = Hashtbl.create 16 in (* inserted pairs still present at the end *)
  let rem_span = Hashtbl.create 16 in (* deleted spanner pairs, with weight *)
  let rem_cert = Hashtbl.create 16 in
  let inserts = ref 0 and deletes = ref 0 in
  List.iter
    (fun op ->
      (match op with
      | Update_stream.Insert _ -> incr inserts
      | Update_stream.Delete _ -> incr deletes);
      (match op with
      | Update_stream.Insert { u; v; _ } | Update_stream.Delete { u; v } ->
          if v >= n then
            failwith
              (Printf.sprintf "Repair: op endpoint %d-%d outside [0, %d)" u v n));
      match op with
      | Update_stream.Insert { u; v; w } ->
          if Hashtbl.mem edges' (u, v) then
            failwith
              (Printf.sprintf "Repair: insert of existing edge %d-%d" u v);
          Hashtbl.replace edges' (u, v) w;
          Hashtbl.replace ins (u, v) w
      | Update_stream.Delete { u; v } -> (
          match Hashtbl.find_opt edges' (u, v) with
          | None ->
              failwith
                (Printf.sprintf "Repair: delete of absent edge %d-%d" u v)
          | Some w ->
              Hashtbl.remove edges' (u, v);
              Hashtbl.remove ins (u, v);
              if Hashtbl.mem t.span (u, v) && not (Hashtbl.mem rem_span (u, v))
              then Hashtbl.replace rem_span (u, v) w;
              if Hashtbl.mem t.cert (u, v) && not (Hashtbl.mem rem_cert (u, v))
              then Hashtbl.replace rem_cert (u, v) ()))
    batch;
  (* the batch is valid: rebuild the graph (ids renumber, n is fixed) *)
  let triples = Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) edges' [] in
  let g' = Graph.of_edges ~n (List.sort compare triples) in
  let m' = Graph.m g' in
  let old_span_size = Hashtbl.length t.span in
  let removed_list =
    List.sort compare
      (Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) rem_span [])
  in
  let removed = List.length removed_list in
  let inserted_list =
    List.sort compare (Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) ins [])
  in
  let rebuild_work = rebuild_work_proxy cfg g' in
  let k2 = (2 * cfg.k) - 1 in
  let work = ref 0 in
  (* ---------- spanner maintenance ---------- *)
  let span' = Hashtbl.copy t.span in
  List.iter (fun (u, v, _) -> Hashtbl.remove span' (u, v)) removed_list;
  let do_rebuild () =
    let keep' = build_spanner cfg g' in
    (keep', pairs_of_keep g' keep', rebuild_work, 0, 0, 0)
  in
  let do_repair () =
    (* one truncated Dijkstra in the *old* spanner per dirty vertex: any
       edge whose bound-length witness crossed a deleted spanner edge has
       both endpoints inside these balls (see repair.mli) *)
    let maxw =
      Array.fold_left (fun acc e -> max acc e.Graph.w) 1 (Graph.edges g')
    in
    let budget = k2 * maxw in
    let dirty = Hashtbl.create 16 in
    List.iter
      (fun (u, v, _) ->
        if not (Hashtbl.mem dirty u) then
          Hashtbl.replace dirty u
            (dijkstra_trunc ~work t.g t.keep ~src:u ~budget ~stop_at:(-1));
        if not (Hashtbl.mem dirty v) then
          Hashtbl.replace dirty v
            (dijkstra_trunc ~work t.g t.keep ~src:v ~budget ~stop_at:(-1)))
      removed_list;
    let n_dirty = Hashtbl.length dirty in
    (* candidate filter: an edge of g' is suspect if some deleted spanner
       edge closes a bound-length detour between its endpoints.  Every
       distance outside the dirty balls is infinite, so the |D|-way detour
       checks only run on edges with BOTH endpoints inside some ball — one
       cheap membership pass over the edge list plus O(|D| * ball) checks
       near the damage, instead of m' * |D| everywhere. *)
    let suspects = ref [] in
    if removed > 0 then begin
      let in_ball = Bitset.create n in
      Hashtbl.iter
        (fun _ (_, reached) ->
          List.iter
            (fun v ->
              incr work;
              Bitset.add in_ball v)
            reached)
        dirty;
      work := !work + m';
      Graph.iter_edges g' (fun e ->
          let x = e.Graph.u and y = e.Graph.v and w = e.Graph.w in
          if
            Bitset.mem in_ball x && Bitset.mem in_ball y
            && (not (Hashtbl.mem span' (x, y)))
            && not (Hashtbl.mem ins (x, y))
          then
            let bound = k2 * w in
            let hit =
              List.exists
                (fun (a, b, w_ab) ->
                  incr work;
                  let da, _ = Hashtbl.find dirty a
                  and db, _ = Hashtbl.find dirty b in
                  let via ds dt =
                    ds.(x) < max_int && dt.(y) < max_int
                    && ds.(x) + w_ab + dt.(y) <= bound
                  in
                  via da db || via db da)
                removed_list
            in
            if hit then suspects := (w, x, y) :: !suspects)
    end;
    if removed > 0 then
      Metrics.add t.rm.rm_filtered (m' - List.length !suspects);
    let candidates =
      List.sort compare
        (List.rev_append
           (List.map (fun (u, v, w) -> (w, u, v)) inserted_list)
           !suspects)
    in
    let n_cand = List.length candidates in
    if float_of_int n_cand > cfg.max_affected *. float_of_int (max 1 m') then begin
      let keep', span'', w, _, _, _ = do_rebuild () in
      (keep', span'', !work + w, n_dirty, n_cand, -1)
    end
    else begin
      (* greedy re-check against the *current* spanner, lightest first *)
      let keep' = keep_of_pairs g' span' in
      let added = ref 0 in
      List.iter
        (fun (w, u, v) ->
          if not (Hashtbl.mem span' (u, v)) then begin
            let bound = k2 * w in
            let dist, _ =
              dijkstra_trunc ~work g' keep' ~src:u ~budget:bound ~stop_at:v
            in
            if dist.(v) > bound then begin
              Hashtbl.replace span' (u, v) ();
              (match Graph.find_edge g' u v with
              | Some eid -> keep'.(eid) <- true
              | None -> assert false);
              incr added
            end
          end)
        candidates;
      (keep', span', !work, n_dirty, n_cand, !added)
    end
  in
  let force_rebuild =
    cfg.mode = `Rebuild
    || float_of_int removed
       > cfg.max_affected *. float_of_int (max 1 old_span_size)
  in
  let keep', span', total_work, n_dirty, n_cand, added =
    if force_rebuild then do_rebuild () else do_repair ()
  in
  let action = if added < 0 || force_rebuild then `Rebuild else `Repair in
  let overflowed = added < 0 && not force_rebuild in
  let added = max added 0 in
  (* ---------- lazy recertification ---------- *)
  let cert_removed = Hashtbl.length rem_cert in
  let cert_rebuilt = ref false in
  let cert' =
    if t.cfg.cert = None then t.cert
    else begin
      let c = Hashtbl.copy t.cert in
      Hashtbl.iter (fun key () -> if not (Hashtbl.mem ins key) then Hashtbl.remove c key) rem_cert;
      List.iter (fun (u, v, _) -> Hashtbl.replace c (u, v) ()) inserted_list;
      c
    end
  in
  let debt' =
    t.debt
    + Hashtbl.fold
        (fun key () acc -> if Hashtbl.mem ins key then acc else acc + 1)
        rem_cert 0
  in
  let cert', debt' =
    if t.cfg.cert <> None && debt' > cfg.headroom then begin
      cert_rebuilt := true;
      (build_cert cfg g', 0)
    end
    else (cert', debt')
  in
  (* ---------- commit ---------- *)
  t.edges <- edges';
  t.g <- g';
  t.keep <- keep';
  t.span <- span';
  t.cert <- cert';
  t.debt <- debt';
  t.batches <- t.batches + 1;
  let rm = t.rm in
  Metrics.incr rm.rm_batches;
  Metrics.add rm.rm_dirty n_dirty;
  Metrics.add rm.rm_candidates n_cand;
  (match action with
  | `Repair -> Metrics.incr rm.rm_repairs
  | `Rebuild -> Metrics.incr rm.rm_rebuilds);
  if overflowed then Metrics.incr rm.rm_fallbacks;
  Metrics.add rm.rm_work total_work;
  Metrics.add rm.rm_added added;
  Metrics.add rm.rm_removed removed;
  if !cert_rebuilt then Metrics.incr rm.rm_cert_rebuilds;
  Metrics.set rm.rm_debt debt';
  {
    batch = t.batches;
    inserts = !inserts;
    deletes = !deletes;
    action;
    dirty = n_dirty;
    candidates = n_cand;
    added;
    removed;
    work = total_work;
    rebuild_work;
    cert_removed;
    cert_debt = debt';
    cert_rebuilt = !cert_rebuilt;
  }

let apply_stream t stream =
  List.map (apply_batch t) stream.Update_stream.batches

let spanner_of_keep g keep =
  let eids = ref [] in
  Array.iteri (fun e b -> if b then eids := e :: !eids) keep;
  Spanner.of_eids g !eids

(* Local recertification: witness + O(k)-round CONGEST checkers instead of
   the O(nm) ground truth.  An accepting run certifies the stretch bound
   (2k-1) without measuring the exact stretch, so [stretch] reports the
   certified bound on accept and [infinity] on reject. *)
let recertify_local t =
  let alpha = float_of_int ((2 * t.cfg.k) - 1) in
  let sp = spanner_of_keep t.g t.keep in
  let v = Verify.spanner ~jobs:t.cfg.jobs ~mode:Verify.Local ~k:t.cfg.k t.g sp in
  let sp_ok = v.Verify.ok in
  let cert_ok =
    match certificate t with
    | None -> None
    | Some c ->
        Some (Verify.certificate ~jobs:t.cfg.jobs ~mode:Verify.Local t.g c)
          .Verify.ok
  in
  {
    stretch = (if sp_ok then alpha else infinity);
    stretch_ok = sp_ok;
    spanning = sp_ok;
    cert_ok;
    cert_violations = None;
  }

(* Probe recertification: sublinear eps-far connectivity spot-checks only.
   Stretch is out of a probe's reach, so the stretch fields are vacuous
   ([stretch = 0.], [stretch_ok = true]); an accept certifies nothing more
   than "not eps-far from connected". *)
let recertify_probe t =
  let seed = t.batches + 1 in
  let probe keep =
    (Eps_far.connectivity ~keep ~seed ~epsilon:0.1 t.g).Eps_far.accepted
  in
  let spanning = probe t.keep in
  let cert_ok =
    match certificate t with
    | None -> None
    | Some c -> Some (probe c.Certificate.keep)
  in
  {
    stretch = 0.;
    stretch_ok = true;
    spanning;
    cert_ok;
    cert_violations = None;
  }

let recertify ?rng ?(budget = 200) t =
  match t.cfg.recert with
  | `Local -> recertify_local t
  | `Probe -> recertify_probe t
  | `Exact -> (
      let jobs = t.cfg.jobs in
      let alpha = float_of_int ((2 * t.cfg.k) - 1) in
      let stretch = Stretch.max_edge_stretch ~jobs t.g t.keep in
      let stretch_ok = Stretch.check_stretch ~jobs t.g t.keep alpha in
      let spanning = Connectivity.spans t.g t.keep in
      match certificate t with
      | None ->
          {
            stretch;
            stretch_ok;
            spanning;
            cert_ok = None;
            cert_violations = None;
          }
      | Some c ->
          let cert_ok = Certificate.is_certificate t.g c in
          let r = Resilience.check_certificate ?rng ~budget t.g c in
          {
            stretch;
            stretch_ok;
            spanning;
            cert_ok = Some cert_ok;
            cert_violations = Some r.Resilience.violations;
          })

let pp_outcome ppf o =
  Format.fprintf ppf
    "batch %d: +%d/-%d %s dirty=%d cand=%d added=%d removed=%d work=%d \
     (rebuild %d) cert(-%d debt=%d%s)"
    o.batch o.inserts o.deletes
    (match o.action with `Repair -> "repair" | `Rebuild -> "rebuild")
    o.dirty o.candidates o.added o.removed o.work o.rebuild_work o.cert_removed
    o.cert_debt
    (if o.cert_rebuilt then " rebuilt" else "")

let pp_verdicts ppf v =
  Format.fprintf ppf "stretch %.3f (%s) spanning=%b%s" v.stretch
    (if v.stretch_ok then "ok" else "VIOLATED")
    v.spanning
    (match (v.cert_ok, v.cert_violations) with
    | Some ok, Some viol ->
        Format.asprintf " cert(%s, %d violations)"
          (if ok then "ok" else "BROKEN")
          viol
    | Some ok, None ->
        (* local / probe recertification: no failure-set sampling *)
        Format.asprintf " cert(%s)" (if ok then "ok" else "BROKEN")
    | _ -> "")
