open! Import

type op =
  | Insert of { u : int; v : int; w : int }
  | Delete of { u : int; v : int }

type batch = op list

type t = { seed : int; batches : batch list }

let schema = "ultraspan-stream/1"

let empty = { seed = 0; batches = [] }

let canon who u v =
  if u < 0 || v < 0 then
    failwith (Printf.sprintf "Update_stream: %s %d-%d: negative endpoint" who u v);
  if u = v then
    failwith (Printf.sprintf "Update_stream: %s %d-%d: self-loop" who u v);
  if u < v then (u, v) else (v, u)

let insert u v w =
  let u, v = canon "insert" u v in
  if w < 1 then
    failwith
      (Printf.sprintf "Update_stream: insert %d-%d: weight %d < 1" u v w);
  Insert { u; v; w }

let delete u v =
  let u, v = canon "delete" u v in
  Delete { u; v }

let batch_count t = List.length t.batches

let op_count t = List.fold_left (fun acc b -> acc + List.length b) 0 t.batches

let count_kind p t =
  List.fold_left
    (fun acc b -> List.fold_left (fun acc op -> if p op then acc + 1 else acc) acc b)
    0 t.batches

let insert_count = count_kind (function Insert _ -> true | Delete _ -> false)

let delete_count = count_kind (function Delete _ -> true | Insert _ -> false)

(* ---------- generation ---------- *)

(* Live-edge model: a swap-remove array for uniform deletion picks plus a
   membership table for insertion rejection sampling. *)
let generate ~rng ~batches ~ops ?(insert_frac = 0.5) ?max_w g =
  if batches < 0 then invalid_arg "Update_stream.generate: negative batch count";
  if ops < 0 then invalid_arg "Update_stream.generate: negative op count";
  if not (insert_frac >= 0.0 && insert_frac <= 1.0) then
    invalid_arg "Update_stream.generate: insert_frac outside [0, 1]";
  let n = Graph.n g in
  if n < 2 then invalid_arg "Update_stream.generate: graph needs >= 2 vertices";
  let max_w =
    match max_w with
    | Some w ->
        if w < 1 then invalid_arg "Update_stream.generate: max_w < 1" else w
    | None -> Array.fold_left (fun acc e -> max acc e.Graph.w) 1 (Graph.edges g)
  in
  let present = Hashtbl.create (2 * (Graph.m g + 1)) in
  let live = ref (Array.make (max 16 (Graph.m g)) (0, 0)) in
  let count = ref 0 in
  let add_live key =
    if !count = Array.length !live then begin
      let bigger = Array.make (2 * !count) (0, 0) in
      Array.blit !live 0 bigger 0 !count;
      live := bigger
    end;
    !live.(!count) <- key;
    Hashtbl.replace present key !count;
    incr count
  in
  let remove_live key =
    let i = Hashtbl.find present key in
    Hashtbl.remove present key;
    decr count;
    let last = !live.(!count) in
    if i < !count then begin
      !live.(i) <- last;
      Hashtbl.replace present last i
    end
  in
  Graph.iter_edges g (fun e -> add_live (e.Graph.u, e.Graph.v));
  let try_insert () =
    (* rejection-sample an absent pair; None when the graph looks full *)
    let attempts = ref 0 in
    let found = ref None in
    while !found = None && !attempts < 64 do
      incr attempts;
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b then begin
        let key = (min a b, max a b) in
        if not (Hashtbl.mem present key) then found := Some key
      end
    done;
    match !found with
    | None -> None
    | Some (u, v) ->
        let w = 1 + Rng.int rng max_w in
        add_live (u, v);
        Some (insert u v w)
  in
  let try_delete () =
    if !count = 0 then None
    else begin
      let u, v = !live.(Rng.int rng !count) in
      remove_live (u, v);
      Some (delete u v)
    end
  in
  let gen_op () =
    let want_insert = Rng.float rng 1.0 < insert_frac in
    let first, second = if want_insert then (try_insert, try_delete) else (try_delete, try_insert) in
    match first () with Some op -> Some op | None -> second ()
  in
  let gen_batch () = List.filter_map (fun _ -> gen_op ()) (List.init ops Fun.id) in
  { seed = 0; batches = List.init batches (fun _ -> gen_batch ()) }

let of_faults g spec =
  let batches =
    List.map
      (fun (_round, dels) -> List.map (fun (u, v) -> Delete { u; v }) dels)
      (Faults.to_update_stream g spec)
  in
  { seed = spec.Faults.seed; batches }

(* ---------- replay ---------- *)

let apply_model n present op =
  match op with
  | Insert { u; v; w } ->
      if v >= n then
        failwith
          (Printf.sprintf "Update_stream: insert %d-%d outside [0, %d)" u v n);
      if Hashtbl.mem present (u, v) then
        failwith
          (Printf.sprintf "Update_stream: insert of existing edge %d-%d" u v);
      Hashtbl.replace present (u, v) w
  | Delete { u; v } ->
      if v >= n then
        failwith
          (Printf.sprintf "Update_stream: delete %d-%d outside [0, %d)" u v n);
      if not (Hashtbl.mem present (u, v)) then
        failwith
          (Printf.sprintf "Update_stream: delete of absent edge %d-%d" u v);
      Hashtbl.remove present (u, v)

let apply g batch =
  let n = Graph.n g in
  let present = Hashtbl.create (2 * (Graph.m g + 1)) in
  Graph.iter_edges g (fun e -> Hashtbl.replace present (e.Graph.u, e.Graph.v) e.Graph.w);
  List.iter (apply_model n present) batch;
  let triples = Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) present [] in
  Graph.of_edges ~n (List.sort compare triples)

let apply_all g t = List.fold_left apply g t.batches

(* ---------- text round-trip ---------- *)

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %d %d\n" schema t.seed (List.length t.batches));
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "batch %d\n" (List.length b));
      List.iter
        (fun op ->
          Buffer.add_string buf
            (match op with
            | Insert { u; v; w } -> Printf.sprintf "+ %d %d %d\n" u v w
            | Delete { u; v } -> Printf.sprintf "- %d %d\n" u v))
        b)
    t.batches;
  Buffer.contents buf

let parse_op line =
  match line.[0] with
  | '+' ->
      let u, v, w =
        try Scanf.sscanf line "+ %d %d %d %!" (fun u v w -> (u, v, w))
        with _ -> failwith ("Update_stream: bad insert line: " ^ line)
      in
      insert u v w
  | '-' ->
      let u, v =
        try Scanf.sscanf line "- %d %d %!" (fun u v -> (u, v))
        with _ -> failwith ("Update_stream: bad delete line: " ^ line)
      in
      delete u v
  | _ -> failwith ("Update_stream: bad op line: " ^ line)

let of_string s =
  let lines =
    List.filter
      (fun l -> String.length l > 0 && l.[0] <> '#')
      (List.map String.trim (String.split_on_char '\n' s))
  in
  match lines with
  | [] -> failwith "Update_stream: empty input"
  | header :: rest ->
      let tag, seed, nbatches =
        try Scanf.sscanf header "%s %d %d %!" (fun t s b -> (t, s, b))
        with _ -> failwith ("Update_stream: bad header: " ^ header)
      in
      if tag <> schema then
        failwith
          (Printf.sprintf "Update_stream: unsupported schema %S (want %s)" tag
             schema);
      if nbatches < 0 then failwith "Update_stream: negative batch count";
      let rec take_ops acc lines k =
        if k = 0 then (List.rev acc, lines)
        else
          match lines with
          | [] -> failwith "Update_stream: truncated batch"
          | l :: _ when String.length l >= 5 && String.sub l 0 5 = "batch" ->
              failwith ("Update_stream: batch shorter than its header: " ^ l)
          | l :: rest -> take_ops (parse_op l :: acc) rest (k - 1)
      in
      let rec take_batches acc lines k =
        if k = 0 then
          if lines <> [] then
            failwith "Update_stream: trailing content after last batch"
          else List.rev acc
        else
          match lines with
          | [] -> failwith "Update_stream: missing batch header"
          | l :: rest ->
              let nops =
                try Scanf.sscanf l "batch %d %!" Fun.id
                with _ -> failwith ("Update_stream: bad batch header: " ^ l)
              in
              if nops < 0 then failwith "Update_stream: negative op count";
              let ops, rest = take_ops [] rest nops in
              take_batches (ops :: acc) rest (k - 1)
      in
      { seed; batches = take_batches [] rest nbatches }

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf ic 4096
         done
       with End_of_file -> ());
      of_string (Buffer.contents buf))

let pp ppf t =
  Format.fprintf ppf "stream(%d batches, +%d/-%d ops, seed %d)"
    (batch_count t) (insert_count t) (delete_count t) t.seed
