open! Import

(** Deterministic, replayable batched edge-update streams.

    A stream is an ordered list of {e batches}; a batch is an ordered list
    of edge insertions and deletions that the dynamic engine ({!Repair})
    applies atomically before re-verifying its structures.  Streams are
    plain data: seeded generation ({!generate}), derivation from a PR 1
    fault plan ({!of_faults} — a link failure {e is} an edge deletion), and
    a versioned text format ({!to_string} / {!of_string}, schema
    ["ultraspan-stream/1"]) all produce values that replay bit-identically.

    Ops inside a batch apply {e sequentially}: deleting an edge inserted
    earlier in the same batch is legal, as is re-inserting an edge deleted
    earlier.  Strictness is the format's contract — inserting an edge that
    is already present or deleting an absent one is an error ({!apply}
    raises [Failure] with a one-line diagnostic), never silently ignored,
    so a stream is only replayable against the graph it was made for.

    {2 Text format}

    {v
    ultraspan-stream/1 <seed> <#batches>
    batch <#ops>
    + <u> <v> <w>     (insert, canonical u < v, w >= 1)
    - <u> <v>         (delete)
    v}

    Blank lines and [#] comments are ignored on input; output is canonical
    (no comments, one op per line) so [to_string] after [of_string] is
    byte-identical on canonical input. *)

type op =
  | Insert of { u : int; v : int; w : int }
  | Delete of { u : int; v : int }
      (** Endpoints are canonical: [u < v].  Use {!insert} / {!delete} to
          build well-formed ops from unordered endpoints. *)

type batch = op list

type t = { seed : int; batches : batch list }
(** [seed] is provenance only (the generator seed, a fault plan's seed, or
    0 for hand-written streams); replay never draws randomness from it. *)

val schema : string
(** ["ultraspan-stream/1"]. *)

val empty : t

val insert : int -> int -> int -> op
(** [insert u v w]: canonicalized insertion.  Raises [Failure] on a
    self-loop, a negative endpoint, or [w < 1]. *)

val delete : int -> int -> op
(** [delete u v]: canonicalized deletion.  Raises [Failure] on a self-loop
    or a negative endpoint. *)

val batch_count : t -> int

val op_count : t -> int

val insert_count : t -> int

val delete_count : t -> int

val generate :
  rng:Rng.t ->
  batches:int ->
  ops:int ->
  ?insert_frac:float ->
  ?max_w:int ->
  Graph.t ->
  t
(** [generate ~rng ~batches ~ops g]: a random stream of [batches] batches
    of [ops] ops each, valid against [g].  Each op is an insertion with
    probability [insert_frac] (default [0.5]) of a uniformly chosen absent
    pair with weight uniform in [[1, max_w]] (default: the maximum edge
    weight of [g]), otherwise a deletion of a uniformly chosen live edge;
    when the preferred kind is impossible (no live edge / no absent pair
    found) the other kind is used.  The model tracks its own edits, so the
    stream is sequentially valid by construction.  The stream's [seed]
    field is informational; determinism comes from [rng]'s state.
    Raises [Invalid_argument] on negative counts, [insert_frac] outside
    [[0, 1]], [max_w < 1], or a graph with fewer than 2 vertices. *)

val of_faults : Graph.t -> Faults.spec -> t
(** Reinterpret a fault plan as a deletion-only stream via
    {!Faults.to_update_stream}: one batch per round that kills at least one
    edge of [g].  The stream's [seed] is the plan's seed.
    Raises [Invalid_argument] on out-of-range nodes in the plan. *)

val apply : Graph.t -> batch -> Graph.t
(** Apply one batch strictly (see the module comment) and rebuild the
    graph; [n] is unchanged, edge ids are renumbered.  Raises [Failure]
    with a one-line diagnostic on the first invalid op. *)

val apply_all : Graph.t -> t -> Graph.t
(** Fold {!apply} over all batches. *)

val to_string : t -> string

val of_string : string -> t
(** Raises [Failure] with a one-line [Update_stream: ...] diagnostic on a
    malformed stream (bad header, unknown schema, bad op line, op/batch
    counts disagreeing with the headers, trailing garbage). *)

val save : string -> t -> unit

val load : string -> t
(** [Failure] on malformed content, [Sys_error] on unreadable paths. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: #batches, #inserts, #deletes, seed. *)
