open! Import

let greedy g ~alpha =
  if alpha < 1 then invalid_arg "Ruling_set.greedy: alpha >= 1";
  let n = Graph.n g in
  (* blocked.(v): distance to the nearest chosen member, if < alpha. *)
  let blocked = Array.make n max_int in
  let members = ref [] in
  for v = 0 to n - 1 do
    if blocked.(v) >= alpha then begin
      members := v :: !members;
      (* BFS to depth alpha-1 updating blocked. *)
      let q = Queue.create () in
      blocked.(v) <- 0;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        if blocked.(u) < alpha - 1 then
          Graph.iter_adj g u (fun w _ ->
              if blocked.(w) > blocked.(u) + 1 then begin
                blocked.(w) <- blocked.(u) + 1;
                Queue.add w q
              end)
      done
    end
  done;
  List.rev !members

let is_ruling g ~alpha ~beta members =
  match members with
  | [] -> Graph.n g = 0
  | _ ->
      let dist, _ = Bfs.multi_source g members in
      let packing =
        (* pairwise distance >= alpha: BFS from each member must not reach
           another member within alpha-1. *)
        List.for_all
          (fun v ->
            let d = Bfs.distances g v in
            List.for_all
              (fun u -> u = v || d.(u) = -1 || d.(u) >= alpha)
              members)
          members
      in
      let covering =
        (* within each component containing a member, everyone within beta;
           components without members must not exist unless they are
           memberless AND the set restricted there is empty: greedy always
           places a member per component, so require global coverage. *)
        Array.for_all (fun d -> d >= 0 && d <= beta) dist
      in
      packing && covering
