open! Import

(** Cole–Vishkin / Linial colour reduction for pointer graphs.

    Step (3) of the stretch-friendly clustering of Lemma 4.1 3-colours the
    cluster graph restricted to the "minimum out-edge" orientation — a graph
    of out-degree one — in O(log* n) rounds [Lin87].  This module implements
    that reduction: iterated Cole–Vishkin bit tricks down to 6 colours, then
    three shift-down/eliminate steps to 3 colours.

    Precondition for {!three_color}: following [succ] pointers, every cycle
    has length exactly 2 (mutual pairs).  This holds for minimum-out-edge
    orientations under a total order on edges (weight, id): around any
    pointer cycle the edge keys are non-increasing, hence all equal, hence
    the cycle uses a single edge.  Mutual pairs are broken by rooting the
    smaller endpoint, turning the pointer graph into a rooted forest. *)

type result = {
  colors : int array;  (** proper colouring with values in [{0,1,2}] *)
  iterations : int;
      (** Cole–Vishkin iterations used (the O(log* n) part); the constant
          shift-down rounds are not included. *)
}

val three_color : n:int -> succ:int array -> result
(** [three_color ~n ~succ] with [succ.(v)] the out-neighbour of [v]
    ([-1] for no out-edge).  Returns a colouring proper on every edge
    [{v, succ v}].  Raises [Invalid_argument] if a pointer cycle of length
    > 2 exists. *)

val is_proper : n:int -> succ:int array -> int array -> bool
(** All pointer edges bichromatic. *)

val log_star : int -> int
(** Iterated logarithm (base 2), for the round-bound checks in tests. *)

(** The individual reduction steps, exposed so that drivers which fetch the
    successor's colour over the network (the distributed Lemma 4.1) can
    apply exactly the same pure functions per step. *)
module Steps : sig
  val to_forest : n:int -> succ:int array -> int array
  (** Break mutual pairs (root the smaller endpoint); rejects longer
      cycles.  Returns the parent array. *)

  val cv_step : parent:int array -> int array -> int array
  (** One Cole–Vishkin bit-reduction step. *)

  val shift_down : parent:int array -> int array -> int array

  val eliminate :
    parent:int array -> old_colors:int array -> shifted:int array -> int ->
    int array
  (** Recolour every vertex of the given colour into {0,1,2}. *)
end
