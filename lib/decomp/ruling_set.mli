open! Import

(** (α, β)-ruling sets.

    A set R is (α, β)-ruling if members of R are pairwise at hop distance
    >= α and every vertex is within β hops of some member.  Used by
    distributed clustering constructions as a seed set; included here as a
    substrate primitive with its invariants tested. *)

val greedy : Graph.t -> alpha:int -> int list
(** Deterministic greedy (α, α-1)-ruling set: sweep vertices in id order,
    add a vertex when no earlier member is within α-1 hops.  Every vertex
    is within α-1 hops of the set (on connected graphs; on general graphs,
    within its own component). *)

val is_ruling : Graph.t -> alpha:int -> beta:int -> int list -> bool
(** Check both the packing (pairwise >= α) and covering (everyone within β,
    per component) conditions. *)
