open! Import

type result = { colors : int array; iterations : int }

let log_star n =
  let rec go x acc =
    if x <= 1 then acc
    else go (int_of_float (Float.log2 (float_of_int x))) (acc + 1)
  in
  go n 0

(* Break pointer cycles: every cycle must have length exactly 2; root the
   smaller endpoint.  Returns the parent array of the resulting forest. *)
let to_forest ~n ~succ =
  if Array.length succ <> n then invalid_arg "Coloring: succ length mismatch";
  let parent = Array.copy succ in
  Array.iteri
    (fun v s ->
      if s < -1 || s >= n then invalid_arg "Coloring: succ out of range";
      if s = v then invalid_arg "Coloring: self-pointer")
    succ;
  (* Mutual pairs. *)
  for v = 0 to n - 1 do
    let s = succ.(v) in
    if s >= 0 && succ.(s) = v && v < s then parent.(v) <- -1
  done;
  (* Any remaining cycle is a bug in the caller (see interface). *)
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  for v0 = 0 to n - 1 do
    if state.(v0) = 0 then begin
      let path = ref [] in
      let v = ref v0 in
      let continue = ref true in
      while !continue do
        if state.(!v) = 1 then
          invalid_arg "Coloring.three_color: pointer cycle longer than 2"
        else if state.(!v) = 2 then continue := false
        else begin
          state.(!v) <- 1;
          path := !v :: !path;
          let p = parent.(!v) in
          if p = -1 then continue := false else v := p
        end
      done;
      List.iter (fun u -> state.(u) <- 2) !path
    end
  done;
  parent

let lowest_differing_bit a b =
  let x = a lxor b in
  if x = 0 then invalid_arg "Coloring: equal colors on an edge";
  let rec go i = if (x lsr i) land 1 = 1 then i else go (i + 1) in
  go 0

let cv_step parent colors =
  Array.mapi
    (fun v c ->
      let p = parent.(v) in
      if p = -1 then c land 1
      else begin
        let i = lowest_differing_bit c colors.(p) in
        (2 * i) + ((c lsr i) land 1)
      end)
    colors

let shift_down parent colors =
  Array.mapi
    (fun v c ->
      let p = parent.(v) in
      if p = -1 then if c = 0 then 1 else 0 else colors.(p))
    colors

let eliminate parent ~old_colors ~shifted c =
  Array.mapi
    (fun v col ->
      if col <> c then col
      else begin
        (* Forbidden: parent's shifted colour; children's shifted colour,
           which is this node's pre-shift colour. *)
        let p = parent.(v) in
        let forb1 = if p = -1 then -1 else shifted.(p) in
        let forb2 = old_colors.(v) in
        let rec pick x =
          if x <> forb1 && x <> forb2 then x
          else pick (x + 1)
        in
        let chosen = pick 0 in
        assert (chosen <= 2);
        chosen
      end)
    shifted

module Steps = struct
  let to_forest ~n ~succ = to_forest ~n ~succ

  let cv_step ~parent colors = cv_step parent colors

  let shift_down ~parent colors = shift_down parent colors

  let eliminate ~parent ~old_colors ~shifted c =
    eliminate parent ~old_colors ~shifted c
end

let three_color ~n ~succ =
  let parent = to_forest ~n ~succ in
  let colors = ref (Array.init n (fun v -> v)) in
  let iterations = ref 0 in
  let max_color () = Array.fold_left max 0 !colors in
  while max_color () >= 6 do
    colors := cv_step parent !colors;
    incr iterations;
    if !iterations > 64 then failwith "Coloring: CV did not converge"
  done;
  List.iter
    (fun c ->
      let old_colors = !colors in
      let shifted = shift_down parent old_colors in
      colors := eliminate parent ~old_colors ~shifted c)
    [ 5; 4; 3 ];
  { colors = !colors; iterations = !iterations }

let is_proper ~n ~succ colors =
  let ok = ref true in
  for v = 0 to n - 1 do
    let s = succ.(v) in
    if s >= 0 && colors.(v) = colors.(s) then ok := false
  done;
  !ok
