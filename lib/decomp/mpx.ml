open! Import

type t = {
  cluster_of : int array;
  center : int array;
  shift : float array;
}

(* Multi-source Dijkstra on shifted distances: vertex u starts with key
   -shift(u); keys propagate with +1 per hop; each vertex keeps the centre
   of its minimum key (ties broken by centre id, deterministically for a
   fixed rng). *)
let decompose ~rng ~beta g =
  if beta <= 0.0 || beta > 1.0 then invalid_arg "Mpx.decompose: beta in (0,1]";
  let n = Graph.n g in
  let shift =
    Array.init n (fun _ ->
        -.log (Float.max 1e-300 (Util.Rng.float rng 1.0)) /. beta)
  in
  let key = Array.make n Float.infinity in
  let center_of = Array.make n (-1) in
  let settled = Array.make n false in
  let pq = Util.Pqueue.create ~cmp:compare () in
  for u = 0 to n - 1 do
    key.(u) <- -.shift.(u);
    center_of.(u) <- u;
    Util.Pqueue.push pq (key.(u), u) u
  done;
  while not (Util.Pqueue.is_empty pq) do
    let (k, _), v = Util.Pqueue.pop_exn pq in
    if not settled.(v) then begin
      settled.(v) <- true;
      Graph.iter_adj g v (fun u _ ->
          if not settled.(u) then begin
            let nk = k +. 1.0 in
            if
              nk < key.(u)
              || (nk = key.(u) && center_of.(v) < center_of.(u))
            then begin
              key.(u) <- nk;
              center_of.(u) <- center_of.(v);
              Util.Pqueue.push pq (nk, center_of.(u)) u
            end
          end)
    end
  done;
  (* compact cluster ids *)
  let remap = Hashtbl.create 16 in
  let centers = ref [] in
  let next = ref 0 in
  let cluster_of =
    Array.map
      (fun c ->
        match Hashtbl.find_opt remap c with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.replace remap c id;
            centers := c :: !centers;
            id)
      center_of
  in
  { cluster_of; center = Array.of_list (List.rev !centers); shift }

let n_clusters t = Array.length t.center

let cut_edges g t =
  let cut = ref 0 in
  Graph.iter_edges g (fun e ->
      if t.cluster_of.(e.Graph.u) <> t.cluster_of.(e.Graph.v) then incr cut);
  !cut

let max_radius g t =
  let worst = ref 0 in
  Array.iteri
    (fun cid c ->
      let dist = Bfs.distances g c in
      Array.iteri
        (fun v cl -> if cl = cid && dist.(v) > !worst then worst := dist.(v))
        t.cluster_of)
    t.center;
  !worst

let validate g t =
  let n = Graph.n g in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length t.cluster_of <> n then err "length mismatch"
  else if n = 0 then Ok ()
  else if
    Array.exists (fun c -> c < 0 || c >= n_clusters t) t.cluster_of
  then err "not a partition"
  else begin
    (* connectivity of each cluster *)
    let result = ref (Ok ()) in
    Array.iteri
      (fun cid c ->
        if !result = Ok () then begin
          (* BFS within the cluster from its centre *)
          let seen = Array.make n false in
          let q = Queue.create () in
          if t.cluster_of.(c) <> cid then
            result := err "centre %d not in its own cluster" cid
          else begin
            seen.(c) <- true;
            Queue.add c q;
            while not (Queue.is_empty q) do
              let v = Queue.pop q in
              Graph.iter_adj g v (fun u _ ->
                  if t.cluster_of.(u) = cid && not seen.(u) then begin
                    seen.(u) <- true;
                    Queue.add u q
                  end)
            done;
            Array.iteri
              (fun v cl ->
                if cl = cid && (not seen.(v)) && !result = Ok () then
                  result := err "cluster %d disconnected at %d" cid v)
              t.cluster_of
          end
        end)
      t.center;
    (* shifted-distance optimality against own shift: being in cluster c
       means d(c,v) - shift(c) <= 0 - shift(v) is NOT required in general,
       but v must prefer its centre to itself: key via centre <= -shift(v). *)
    if !result = Ok () then begin
      Array.iteri
        (fun cid c ->
          if !result = Ok () then begin
            let dist = Bfs.distances g c in
            Array.iteri
              (fun v cl ->
                if cl = cid && !result = Ok () then begin
                  let key =
                    float_of_int (max 0 dist.(v)) -. t.shift.(c)
                  in
                  if key > -.t.shift.(v) +. 1e-9 then
                    result :=
                      err "vertex %d would prefer its own cluster to %d" v cid
                end)
              t.cluster_of
          end)
        t.center
    end;
    !result
  end
