open! Import

type cluster = {
  center : int;
  members : int list;
  radius : int;
  tree_eids : int list;
  tree_vertices : int list;
}

type t = { clusters : cluster array; cluster_of : int array }

(* BFS in the subgraph induced by [active], from [center]. *)
let bfs_active g ~active ~center =
  let n = Graph.n g in
  let d = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  d.(center) <- 0;
  Queue.add center q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_adj g v (fun u eid ->
        if active.(u) && d.(u) = -1 then begin
          d.(u) <- d.(v) + 1;
          parent.(u) <- v;
          parent_eid.(u) <- eid;
          Queue.add u q
        end)
  done;
  (d, parent, parent_eid)

let make ?active ~separation g =
  if separation < 1 then invalid_arg "Separated_clustering: separation >= 1";
  let n = Graph.n g in
  let active =
    match active with
    | None -> Array.make n true
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Separated_clustering: active length mismatch";
        a
  in
  let margin = separation - 1 in
  let cluster_of = Array.make n (-1) in
  let deferred = Array.make n false in
  let clusters = ref [] in
  let n_clusters = ref 0 in
  let eligible u = active.(u) && cluster_of.(u) = -1 && not deferred.(u) in
  for v = 0 to n - 1 do
    if eligible v then begin
      let d, parent, parent_eid = bfs_active g ~active ~center:v in
      (* Eligible population per BFS layer. *)
      let maxd = Array.fold_left max 0 d in
      let layer = Array.make (maxd + 2 + margin) 0 in
      Array.iteri
        (fun u du -> if du >= 0 && eligible u then layer.(du) <- layer.(du) + 1)
        d;
      let prefix = Array.make (Array.length layer + 1) 0 in
      Array.iteri (fun i c -> prefix.(i + 1) <- prefix.(i) + c) layer;
      let count r = prefix.(min (r + 1) (Array.length prefix - 1)) in
      let rec find r =
        if count (r + margin) <= 2 * count r then r else find (r + 1)
      in
      let r = find 0 in
      let cid = !n_clusters in
      incr n_clusters;
      let members = ref [] in
      Array.iteri
        (fun u du ->
          if du >= 0 && eligible u then
            if du <= r then begin
              members := u :: !members;
              cluster_of.(u) <- cid
            end
            else if du <= r + margin then deferred.(u) <- true)
        d;
      (* Steiner tree: union of BFS paths from members to the center. *)
      let tree_eids = ref [] in
      let in_tree = Array.make n false in
      let tree_vertices = ref [] in
      let rec mark u =
        if not in_tree.(u) then begin
          in_tree.(u) <- true;
          tree_vertices := u :: !tree_vertices;
          if u <> v then begin
            tree_eids := parent_eid.(u) :: !tree_eids;
            mark parent.(u)
          end
        end
      in
      List.iter mark !members;
      clusters :=
        {
          center = v;
          members = !members;
          radius = r;
          tree_eids = !tree_eids;
          tree_vertices = !tree_vertices;
        }
        :: !clusters
    end
  done;
  { clusters = Array.of_list (List.rev !clusters); cluster_of }

let covered t = Array.fold_left (fun a c -> if c >= 0 then a + 1 else a) 0 t.cluster_of

let overlap g t =
  let xi = Array.make (Graph.n g) 0 in
  Array.iter
    (fun c -> List.iter (fun v -> xi.(v) <- xi.(v) + 1) c.tree_vertices)
    t.clusters;
  xi

let avg_overlap g t =
  let total =
    Array.fold_left (fun a c -> a + List.length c.tree_vertices) 0 t.clusters
  in
  let n' = Graph.n g in
  if n' = 0 then 0.0 else float_of_int total /. float_of_int n'

let validate ?active ~separation g t =
  let n = Graph.n g in
  let active =
    match active with None -> Array.make n true | Some a -> a
  in
  let n_active = Array.fold_left (fun a b -> if b then a + 1 else a) 0 active in
  let result = ref (Ok ()) in
  let check cond fmt =
    Printf.ksprintf
      (fun s -> if (not cond) && !result = Ok () then result := Error s)
      fmt
  in
  (* Disjointness + membership consistency. *)
  let seen = Array.make n false in
  Array.iteri
    (fun cid c ->
      List.iter
        (fun v ->
          check (not seen.(v)) "vertex %d in two clusters" v;
          seen.(v) <- true;
          check active.(v) "inactive vertex %d clustered" v;
          check (t.cluster_of.(v) = cid) "cluster_of mismatch at %d" v)
        c.members)
    t.clusters;
  Array.iteri
    (fun v c -> check (c = -1 || seen.(v)) "cluster_of set but not member: %d" v)
    t.cluster_of;
  (* Coverage. *)
  check (2 * covered t >= n_active) "coverage below half (%d of %d)" (covered t)
    n_active;
  (* Radius + separation via BFS in G[active]. *)
  Array.iteri
    (fun cid c ->
      if !result = Ok () then begin
        let d, _, _ = bfs_active g ~active ~center:c.center in
        List.iter
          (fun v ->
            check
              (d.(v) >= 0 && d.(v) <= c.radius)
              "member %d of cluster %d outside radius" v cid)
          c.members;
        (* Separation: no other cluster's member within separation-1 of a
           member of this cluster.  Multi-source BFS from members. *)
        let dist = Array.make n (-1) in
        let q = Queue.create () in
        List.iter
          (fun v ->
            dist.(v) <- 0;
            Queue.add v q)
          c.members;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          if dist.(v) < separation - 1 then
            Graph.iter_adj g v (fun u _ ->
                if active.(u) && dist.(u) = -1 then begin
                  dist.(u) <- dist.(v) + 1;
                  Queue.add u q
                end)
        done;
        Array.iteri
          (fun v dv ->
            if dv >= 0 && dv < separation then begin
              let cv = t.cluster_of.(v) in
              check (cv = -1 || cv = cid) "clusters %d and %d too close" cid cv
            end)
          dist
      end)
    t.clusters;
  (* Steiner trees: forest edges within active, containing members. *)
  Array.iteri
    (fun cid c ->
      let uf = Util.Union_find.create n in
      List.iter
        (fun eid ->
          let a, b = Graph.endpoints g eid in
          check (active.(a) && active.(b)) "tree of %d leaves active set" cid;
          check
            (Util.Union_find.union uf a b)
            "tree of %d has a cycle" cid)
        c.tree_eids;
      List.iter
        (fun v ->
          check
            (Util.Union_find.same uf v c.center || v = c.center)
            "member %d not connected to center in tree of %d" v cid)
        c.members)
    t.clusters;
  !result
