open! Import

(** Randomized low-diameter decomposition via exponential shifts
    (Miller–Peng–Xu [MPVX15]).

    Every vertex draws δ_u ~ Exp(β); vertex v joins the cluster of the
    centre u maximizing δ_u − d(u, v).  The result is a partition into
    clusters of strong radius O(log(n)/β) w.h.p. in which each edge is cut
    with probability O(β).  This is the randomized engine behind the
    Elkin–Neiman spanner and the low-diameter-clustering comparisons in
    the bench; the paper's deterministic constructions exist precisely to
    replace it. *)

type t = {
  cluster_of : int array;  (** vertex -> cluster id (a partition) *)
  center : int array;  (** cluster id -> its centre vertex *)
  shift : float array;  (** per-vertex exponential shift *)
}

val decompose : rng:Util.Rng.t -> beta:float -> Graph.t -> t
(** Unweighted hop-distance version.  Requires [0 < beta <= 1]. *)

val n_clusters : t -> int

val cut_edges : Graph.t -> t -> int
(** Number of inter-cluster edges. *)

val max_radius : Graph.t -> t -> int
(** Max hop distance from a vertex to its cluster centre (measured in G —
    the clusters are in fact connected, so this is a strong radius). *)

val validate : Graph.t -> t -> (unit, string) result
(** Partition; every cluster connected; every vertex assigned to a centre
    whose shifted distance is maximal. *)
