open! Import

type t = {
  cluster_of : int array;
  color_of_cluster : int array;
  center : int array;
  radius : int array;
  n_colors : int;
}

(* Grow a ball from [center] in the FULL graph (weak-diameter: the ball may
   pass through already-clustered vertices), counting only vertices where
   [eligible] holds.  Returns the smallest radius r such that the eligible
   count of B(r + margin) is at most twice that of B(r), together with the
   eligible members of B(r) (the new cluster) and of B(r+margin) \ B(r)
   (the deferred shell).  Such r exists with r <= margin * log2 n. *)
let carve_ball g ~eligible ~margin ~center =
  let d = Bfs.distances g center in
  let maxd = Array.fold_left max 0 d in
  let layer = Array.make (maxd + 2 + margin) 0 in
  Array.iteri
    (fun v dv -> if dv >= 0 && eligible v then layer.(dv) <- layer.(dv) + 1)
    d;
  let prefix = Array.make (Array.length layer + 1) 0 in
  Array.iteri (fun i c -> prefix.(i + 1) <- prefix.(i) + c) layer;
  let count r = prefix.(min (r + 1) (Array.length prefix - 1)) in
  let rec find r =
    if count (r + margin) <= 2 * count r then r else find (r + 1)
  in
  let r = find 0 in
  let inside = ref [] and shell = ref [] in
  Array.iteri
    (fun v dv ->
      if dv >= 0 && eligible v then
        if dv <= r then inside := v :: !inside
        else if dv <= r + margin then shell := v :: !shell)
    d;
  (r, !inside, !shell)

let decompose ?(separation = 2) g =
  if separation < 2 then invalid_arg "Network_decomposition: separation >= 2";
  let margin = separation - 1 in
  let n = Graph.n g in
  let cluster_of = Array.make n (-1) in
  let colors = ref [] in
  let centers = ref [] in
  let radii = ref [] in
  let n_clusters = ref 0 in
  let unassigned = ref n in
  let color = ref 0 in
  while !unassigned > 0 do
    (* One colour class: carve weak-diameter balls among unassigned
       vertices; shells are deferred to later colours. *)
    let eligible_now = Array.map (fun c -> c = -1) cluster_of in
    let deferred = Array.make n false in
    for v = 0 to n - 1 do
      if eligible_now.(v) && not deferred.(v) then begin
        let r, inside, shell =
          carve_ball g
            ~eligible:(fun u -> eligible_now.(u) && not deferred.(u))
            ~margin ~center:v
        in
        let cid = !n_clusters in
        incr n_clusters;
        colors := !color :: !colors;
        centers := v :: !centers;
        radii := r :: !radii;
        List.iter
          (fun u ->
            cluster_of.(u) <- cid;
            eligible_now.(u) <- false;
            decr unassigned)
          inside;
        List.iter (fun u -> deferred.(u) <- true) shell
      end
    done;
    incr color;
    if !color > (2 * n) + 4 then failwith "Network_decomposition: no progress"
  done;
  {
    cluster_of;
    color_of_cluster = Array.of_list (List.rev !colors);
    center = Array.of_list (List.rev !centers);
    radius = Array.of_list (List.rev !radii);
    n_colors = !color;
  }

let n_clusters t = Array.length t.color_of_cluster

let color_classes t =
  let out = Array.make t.n_colors [] in
  for c = n_clusters t - 1 downto 0 do
    let col = t.color_of_cluster.(c) in
    out.(col) <- c :: out.(col)
  done;
  out

let max_cluster_radius t = Array.fold_left max 0 t.radius

let validate g ~separation t =
  let n = Graph.n g in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length t.cluster_of <> n then err "cluster_of length"
  else if n > 0 && Array.exists (fun c -> c < 0 || c >= n_clusters t) t.cluster_of
  then err "not a partition"
  else begin
    (* Weak-diameter containment in the stated balls (distances in G). *)
    let bad = ref None in
    Array.iteri
      (fun cid center ->
        if !bad = None then begin
          let dist = Bfs.distances g center in
          Array.iteri
            (fun v c ->
              if
                c = cid
                && (dist.(v) = -1 || dist.(v) > t.radius.(cid))
                && !bad = None
              then bad := Some (cid, v))
            t.cluster_of
        end)
      t.center;
    match !bad with
    | Some (cid, v) -> err "vertex %d outside ball of cluster %d" v cid
    | None ->
        (* Same-colour separation: BFS to depth separation-1 from each
           cluster's member set. *)
        let ok = ref (Ok ()) in
        let members = Array.make (n_clusters t) [] in
        Array.iteri (fun v c -> members.(c) <- v :: members.(c)) t.cluster_of;
        Array.iteri
          (fun cid mem ->
            if !ok = Ok () then begin
              let dist, _ = Bfs.multi_source g mem in
              Array.iteri
                (fun v d ->
                  let cv = t.cluster_of.(v) in
                  if
                    d >= 0 && d < separation && cv <> cid
                    && t.color_of_cluster.(cv) = t.color_of_cluster.(cid)
                    && !ok = Ok ()
                  then ok := err "clusters %d and %d too close (d=%d)" cid cv d)
                dist
            end)
          members;
        !ok
  end

let rounds_bound g =
  let n = max 2 (Graph.n g) in
  let l = Float.log2 (float_of_int n) in
  max 1 (int_of_float ((l ** 6.0) /. 16.0))
