(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Bfs = Ultraspan_graph.Bfs
module Dijkstra = Ultraspan_graph.Dijkstra
module Partition = Ultraspan_graph.Partition
module Contraction = Ultraspan_graph.Contraction
module Connectivity = Ultraspan_graph.Connectivity
module Rounds = Ultraspan_congest.Rounds
module Util = Ultraspan_util
