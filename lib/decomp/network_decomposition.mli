open! Import

(** Deterministic weak-diameter network decomposition.

    A (Q, D) network decomposition partitions the vertices into clusters,
    each coloured with one of Q colours, such that clusters of the same
    colour are non-adjacent and each cluster has (weak) diameter at most D.
    The paper consumes decompositions of G^2 — same-colour clusters at
    distance >= 3 — to let the conditional-expectation derandomization fix
    all clusters of one colour class in parallel (Appendix C, Theorem C.1,
    citing Rozhoň–Ghaffari [RG20]).

    Substitution (see DESIGN.md §3): instead of reproducing RG20, we build
    the decomposition by deterministic sequential ball carving in the full
    graph (weak diameter: balls may pass through already-clustered
    vertices).  Balls grow while their eligible population keeps doubling
    w.r.t. a (separation-1)-hop margin, so radii are
    O(separation · log n); the deferred margin is at most the ball, so each
    colour clusters at least half of what remains and O(log n) colours
    suffice.  All consumers rely only on the (Q, D, separation) properties,
    which the tests check, and the round accounting charges the RG20
    polylog bound. *)

type t = {
  cluster_of : int array;  (** vertex -> cluster id (total: a partition) *)
  color_of_cluster : int array;  (** cluster id -> colour *)
  center : int array;  (** cluster id -> ball center *)
  radius : int array;  (** cluster id -> ball radius (hops, in G) *)
  n_colors : int;
}

val decompose : ?separation:int -> Graph.t -> t
(** [decompose ~separation g]: same-colour clusters are at pairwise hop
    distance >= [separation] (default 2 = ordinary decomposition, i.e.
    same-colour clusters non-adjacent; the paper's Appendix C uses 3).
    Requires [separation >= 2].  Works on disconnected graphs. *)

val n_clusters : t -> int

val color_classes : t -> int list array
(** Colour -> cluster ids. *)

val max_cluster_radius : t -> int

val validate : Graph.t -> separation:int -> t -> (unit, string) result
(** Checks: partition; clusters connected with the stated center/radius;
    same-colour clusters at hop distance >= separation. *)

val rounds_bound : Graph.t -> int
(** The round cost charged for building the decomposition, following the
    RG20 accounting: O(log^6 n) — we charge [ceil (log2 n)^6 / 16] with a
    floor of 1, a concrete monotone stand-in used consistently across the
    bench harness. *)
