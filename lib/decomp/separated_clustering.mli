open! Import

(** Well-separated low-diameter clusterings (Definitions 5.1 and F.4).

    A t-separated clustering with diameter D is a set of disjoint clusters,
    pairwise at distance >= t, each of (weak) diameter <= D, covering at
    least half of the vertices.  Theorem F.1 consumes these to build
    unweighted ultra-sparse spanners; Theorem 1.7 consumes the 3-separated
    weak-diameter variant.

    Substitution (see DESIGN.md §3): the paper's strong-diameter source is
    Chang–Ghaffari [CG21], a paper-sized artifact of its own.  We build the
    clustering by one sweep of deterministic ball carving with a
    (t-1)-hop deferral margin: separation is *exactly* guaranteed (in the
    active subgraph), coverage >= 1/2 is guaranteed, and radii are at most
    (t-1)·log2 n + O(1).  Clusters come with BFS Steiner trees from their
    centers; the per-vertex tree overlap ξ (Definition F.4) is exposed so
    the Theorem 1.7 size bound O(ξ_AVG · n) can be measured. *)

type cluster = {
  center : int;
  members : int list;  (** the cluster proper (eligible ball) *)
  radius : int;  (** hop radius of the ball around [center] *)
  tree_eids : int list;  (** edges of the Steiner tree T_C *)
  tree_vertices : int list;  (** V(T_C) ⊇ members *)
}

type t = {
  clusters : cluster array;
  cluster_of : int array;  (** vertex -> cluster id or -1 (unclustered) *)
}

val make : ?active:bool array -> separation:int -> Graph.t -> t
(** One carving sweep over the subgraph induced by [active] (default: all
    vertices).  Guarantees, all within G[active]:
    clusters pairwise at hop distance >= [separation]; covered vertices
    >= half of the active ones; every member within [radius] hops of its
    center.  Requires [separation >= 1]. *)

val covered : t -> int
(** Number of clustered vertices. *)

val overlap : Graph.t -> t -> int array
(** ξ(v): number of Steiner trees containing each vertex. *)

val avg_overlap : Graph.t -> t -> float
(** ξ_AVG = (Σ_C |V(T_C)|) / n' where n' is the number of active vertices
    — the quantity in Theorem 1.7's size bound. *)

val validate :
  ?active:bool array -> separation:int -> Graph.t -> t -> (unit, string) result
(** Checks disjointness, separation, coverage >= 1/2, member-radius bound,
    and that each Steiner tree is a connected subtree containing its
    members and center. *)
