(** Umbrella module: the public API of the ultraspan library.

    {1 Substrates}

    - {!Rng}, {!Pqueue}, {!Bitset}, {!Union_find}, {!Stats}, {!Hash_family}
      — deterministic utilities; {!Parallel} — the deterministic domain
      pool behind the [?jobs] arguments of the verification kernels and
      the bench harness fan-out.
    - {!Graph} and friends — the CSR graph substrate with stable edge ids.
    - {!Network}, {!Programs}, {!Rounds} — the CONGEST simulator and round
      accounting; {!Faults} — deterministic fault schedules (crashes, link
      failures, message drops) for running programs under adversity;
      {!Trace} — per-round/per-node/per-edge execution traces with JSONL
      and Chrome-trace exporters; {!Profile} — wall-clock phase timers.
    - {!Coloring}, {!Network_decomposition}, {!Separated_clustering},
      {!Ruling_set} — distributed decomposition primitives.
    - {!Metrics}, {!Metrics_io} — the unified metrics plane: a typed
      registry (counters / gauges / histograms / timers) threaded through
      the simulator, the domain pool and the repair engine, snapshotted as
      [ultraspan-metrics/1] artifacts
    - {!Exp_table}, {!Exp_json} — typed experiment tables with declared
      bound predicates, deterministic JSON artifacts and golden diffing
      (the machine-checkable layer behind [bench/main.exe]).

    {1 The paper's algorithms}

    - {!Baswana_sen} (randomized baseline), {!Bs_derand} (Theorem 1.4),
      {!Linear_size} (Theorem 1.5), {!Stretch_friendly} (Lemma 4.1),
      {!Ultra_sparse} (Theorems 1.2/1.6), {!Clustering_spanner}
      (Theorems F.1/1.7), {!Elkin_neiman} and {!Greedy} (baselines),
      {!Weighted_reduction} (folklore reduction).
    - {!Certificate}, {!Spanner_packing} (Theorem G.1), {!Karger_split}
      (Theorem 1.9), {!Thurimella} and {!Nagamochi_ibaraki} (baselines);
      {!Resilience} — empirical failure-set evaluation of certificates and
      spanners.

    {1 Dynamic graphs}

    - {!Update_stream} — deterministic, replayable batched edge-update
      streams (seeded generation, fault-plan derivation, versioned text
      round-trip); {!Repair} — incremental spanner repair with a rebuild
      fallback and lazy, headroom-based recertification of connectivity
      certificates, recertified after every batch by the ground-truth
      checkers (or, optionally, by the local checkers below).

    {1 Verification plane}

    - {!Witness} — witness builders attaching locally checkable
      certificates to outputs (per-edge detour witnesses for spanners,
      forest-membership labels for connectivity certificates);
      {!Checkers} — the CONGEST checker programs verifying them
      distributedly (every node outputs an accept/reject bit);
      {!Eps_far} — sublinear bounded-BFS ε-far connectivity probes;
      {!Verify} — the front door ([local] / [exact] / [probe] modes)
      and the seeded corruption-detection matrix behind the CI
      [verify] job.

    {1 Serving layer}

    - {!Oracle} — spanners compiled into servable [ultraspan-oracle/1]
      binary artifacts (CSR adjacency + per-cluster tree metadata,
      checksummed, loaded through a zero-copy arena reader);
      {!Query_engine} — the batch approximate-distance / membership
      query engine: bounded bidirectional Dijkstra, deterministic
      parallel execution, and a bounded LRU of hot SSSP trees. *)

(* Utilities *)
module Rng = Ultraspan_util.Rng
module Pqueue = Ultraspan_util.Pqueue
module Bitset = Ultraspan_util.Bitset
module Union_find = Ultraspan_util.Union_find
module Stats = Ultraspan_util.Stats
module Hash_family = Ultraspan_util.Hash_family
module Profile = Ultraspan_util.Profile
module Parallel = Ultraspan_util.Parallel
module Metrics = Ultraspan_util.Metrics

(* Graphs *)
module Graph = Ultraspan_graph.Graph
module Bfs = Ultraspan_graph.Bfs
module Dijkstra = Ultraspan_graph.Dijkstra
module Bellman_ford = Ultraspan_graph.Bellman_ford
module Connectivity = Ultraspan_graph.Connectivity
module Spanning_tree = Ultraspan_graph.Spanning_tree
module Maxflow = Ultraspan_graph.Maxflow
module Mincut = Ultraspan_graph.Mincut
module Stretch = Ultraspan_graph.Stretch
module Partition = Ultraspan_graph.Partition
module Contraction = Ultraspan_graph.Contraction
module Generators = Ultraspan_graph.Generators
module Graph_io = Ultraspan_graph.Graph_io
module Apsp = Ultraspan_graph.Apsp
module Bridges = Ultraspan_graph.Bridges
module Cycles = Ultraspan_graph.Cycles

(* CONGEST *)
module Network = Ultraspan_congest.Network
module Faults = Ultraspan_congest.Faults
module Trace = Ultraspan_congest.Trace
module Programs = Ultraspan_congest.Programs
module Cluster_programs = Ultraspan_congest.Cluster_programs
module Rounds = Ultraspan_congest.Rounds
module Pram = Ultraspan_congest.Pram

(* Decompositions *)
module Coloring = Ultraspan_decomp.Coloring
module Network_decomposition = Ultraspan_decomp.Network_decomposition
module Separated_clustering = Ultraspan_decomp.Separated_clustering
module Ruling_set = Ultraspan_decomp.Ruling_set
module Mpx = Ultraspan_decomp.Mpx

(* Spanners *)
module Spanner = Ultraspan_spanner.Spanner
module Bs_core = Ultraspan_spanner.Bs_core
module Baswana_sen = Ultraspan_spanner.Baswana_sen
module Bs_derand = Ultraspan_spanner.Bs_derand
module Linear_size = Ultraspan_spanner.Linear_size
module Stretch_friendly = Ultraspan_spanner.Stretch_friendly
module Ultra_sparse = Ultraspan_spanner.Ultra_sparse
module Clustering_spanner = Ultraspan_spanner.Clustering_spanner
module Elkin_neiman = Ultraspan_spanner.Elkin_neiman
module Greedy = Ultraspan_spanner.Greedy
module Weighted_reduction = Ultraspan_spanner.Weighted_reduction
module Bs_distributed = Ultraspan_spanner.Bs_distributed
module Sf_distributed = Ultraspan_spanner.Sf_distributed

(* Dynamic graphs *)
module Update_stream = Ultraspan_dynamic.Update_stream
module Repair = Ultraspan_dynamic.Repair

(* Verification plane *)
module Checkers = Ultraspan_congest.Checkers
module Witness = Ultraspan_verify.Witness
module Eps_far = Ultraspan_verify.Eps_far
module Verify = Ultraspan_verify.Verify

(* Distance-oracle serving layer *)
module Oracle = Ultraspan_oracle.Oracle
module Query_engine = Ultraspan_oracle.Query_engine

(* Experiment artifacts *)
module Exp_json = Ultraspan_exp.Json
module Exp_table = Ultraspan_exp.Table
module Metrics_io = Ultraspan_exp.Metrics_io

(* Certificates *)
module Certificate = Ultraspan_certificate.Certificate
module Spanner_packing = Ultraspan_certificate.Spanner_packing
module Karger_split = Ultraspan_certificate.Karger_split
module Thurimella = Ultraspan_certificate.Thurimella
module Nagamochi_ibaraki = Ultraspan_certificate.Nagamochi_ibaraki
module Kecss = Ultraspan_certificate.Kecss
module Resilience = Ultraspan_certificate.Resilience
