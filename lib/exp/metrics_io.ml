(* ultraspan-metrics/1: versioned JSON serialization of Metrics snapshots.

   Deterministic by construction: snapshots arrive name-sorted from
   Metrics.snapshot and Json.to_string renders fields in insertion order,
   so the same snapshot is the same bytes — the property check.sh's
   jobs/engine differential gates rely on. *)

module Metrics = Ultraspan_util.Metrics

let schema = "ultraspan-metrics/1"

let json_of_snapshot (s : Metrics.snapshot) : Json.t =
  let counters = List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters in
  let gauges = List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.gauges in
  let histograms =
    List.map
      (fun (n, (h : Metrics.hist_data)) ->
        ( n,
          Json.Obj
            [
              ("edges", Json.Arr (List.map (fun e -> Json.Int e) (Array.to_list h.hedges)));
              ("counts", Json.Arr (List.map (fun c -> Json.Int c) (Array.to_list h.hcounts)));
              ("sum", Json.Int h.hsum);
              ("count", Json.Int h.htotal);
            ] ))
      s.Metrics.histograms
  in
  let timers =
    List.map
      (fun (n, (tm : Metrics.timer_data)) ->
        ( n,
          Json.Obj
            [
              ("seconds", Json.Float tm.tseconds);
              ("calls", Json.Int tm.tcalls);
              ("minor_words", Json.Float tm.tminor_words);
              ("major_words", Json.Float tm.tmajor_words);
              ("promoted_words", Json.Float tm.tpromoted_words);
            ] ))
      s.Metrics.timers
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("partial", Json.Bool s.Metrics.partial);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
      ("timers", Json.Obj timers);
    ]

let snapshot_of_json (j : Json.t) : Metrics.snapshot =
  let got = Json.str (Json.field "schema" j) in
  if got <> schema then
    raise (Json.Error (Printf.sprintf "expected schema %s, got %s" schema got));
  let partial = Json.bool (Json.field "partial" j) in
  let counters =
    List.map (fun (n, v) -> (n, Json.int v)) (Json.obj (Json.field "counters" j))
  in
  let gauges =
    List.map (fun (n, v) -> (n, Json.int v)) (Json.obj (Json.field "gauges" j))
  in
  let histograms =
    List.map
      (fun (n, v) ->
        let ints f = List.map Json.int (Json.arr (Json.field f v)) in
        ( n,
          {
            Metrics.hedges = Array.of_list (ints "edges");
            hcounts = Array.of_list (ints "counts");
            hsum = Json.int (Json.field "sum" v);
            htotal = Json.int (Json.field "count" v);
          } ))
      (Json.obj (Json.field "histograms" j))
  in
  let timers =
    List.map
      (fun (n, v) ->
        ( n,
          {
            Metrics.tseconds = Json.num (Json.field "seconds" v);
            tcalls = Json.int (Json.field "calls" v);
            tminor_words = Json.num (Json.field "minor_words" v);
            tmajor_words = Json.num (Json.field "major_words" v);
            tpromoted_words = Json.num (Json.field "promoted_words" v);
          } ))
      (Json.obj (Json.field "timers" j))
  in
  { Metrics.partial; counters; gauges; histograms; timers }

let save path s = Json.save path (json_of_snapshot s)
let load path = snapshot_of_json (Json.load path)

let save_registry path t = save path (Metrics.snapshot t)
