(* Typed experiment tables: the artifact layer behind bench/main.ml.

   Every bench experiment builds a [Table.t] — sections of typed rows plus
   declared bound predicates (the paper's guarantees as executable checks)
   — and the generic machinery here renders it as text (same shape as the
   historical printf output), emits it as a deterministic JSON artifact,
   re-parses artifacts, and diffs a fresh run against committed goldens
   (exact for counts/stretch, tolerance-banded for wall-clock). *)

let schema = "ultraspan-table/1"

type value =
  | Int of int
  | Float of float  (* deterministic measurement: exact in diffs *)
  | Time of float  (* wall-clock seconds-ish: tolerance-banded in diffs *)
  | Str of string
  | Bool of bool

type bound = {
  bid : string;
  descr : string;
  observed : float;
  limit : float;
  holds : bool;
}

type row = { fields : (string * value) list; bounds : bound list }

type col = {
  key : string;
  title : string;
  width : int;
  align : [ `L | `R ];
  render : (value -> string) option;
}

type section = {
  sid : string;
  caption : string list;
  cols : col list;
  rows : row list;
  elide : int option;
  indent : int;
  rule : bool;
}

type t = {
  id : string;
  title : string;
  params : (string * value) list;
  sections : section list;
  notes : string list;
}

(* ------------------------------------------------------------------ *)
(* constructors                                                        *)
(* ------------------------------------------------------------------ *)

let eps = 1e-9

let bound ~id ?(descr = "") ~observed ~limit holds =
  { bid = id; descr; observed; limit; holds }

let le ~id ?descr observed limit =
  bound ~id ?descr ~observed ~limit (observed <= limit +. eps)

let ge ~id ?descr observed limit =
  bound ~id ?descr ~observed ~limit (observed >= limit -. eps)

let flag ~id ?descr ok =
  bound ~id ?descr ~observed:(if ok then 1.0 else 0.0) ~limit:1.0 ok

let row ?(bounds = []) fields = { fields; bounds }

let col ?(align = `R) ?render ?title ~w key =
  { key; title = Option.value title ~default:key; width = w; align; render }

let section ?(caption = []) ?elide ?(indent = 0) ?(rule = true) ~cols sid rows
    =
  { sid; caption; cols; rows; elide; indent; rule }

let make ~id ~title ?(params = []) ?(notes = []) sections =
  { id; title; params; sections; notes }

(* ------------------------------------------------------------------ *)
(* value rendering                                                     *)
(* ------------------------------------------------------------------ *)

let pretty_float x =
  if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else if Float.is_nan x then "nan"
  else if x >= 1000.0 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let default_render = function
  | Int i -> string_of_int i
  | Float f -> if Float.is_finite f then Printf.sprintf "%.2f" f else pretty_float f
  | Time s -> Printf.sprintf "%.2f" s
  | Str s -> s
  | Bool b -> if b then "yes" else "no"

let pretty = function Float f | Time f -> pretty_float f | v -> default_render v

let to_float = function
  | Int i -> float_of_int i
  | Float f | Time f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Str _ -> Float.nan

(* ------------------------------------------------------------------ *)
(* bound checking                                                      *)
(* ------------------------------------------------------------------ *)

let row_label r =
  match r.fields with
  | (_, Str s) :: _ -> s
  | (k, v) :: _ -> Printf.sprintf "%s=%s" k (default_render v)
  | [] -> "(empty row)"

(* (section id, row label, bound) for every violated bound *)
let violations t =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun r ->
          List.filter_map
            (fun b -> if b.holds then None else Some (s.sid, row_label r, b))
            r.bounds)
        s.rows)
    t.sections

let bounds_checked t =
  List.fold_left
    (fun acc s ->
      List.fold_left (fun acc r -> acc + List.length r.bounds) acc s.rows)
    0 t.sections

let ok t = violations t = []

(* ------------------------------------------------------------------ *)
(* text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let hr_width = 100

let render_cell c v =
  let s = match c.render with Some f -> f v | None -> default_render v in
  match c.align with
  | `R -> Printf.sprintf "%*s" c.width s
  | `L -> Printf.sprintf "%-*s" c.width s

let strip_right s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

let render_row ~indent cols r =
  let cells =
    List.map
      (fun c ->
        match List.assoc_opt c.key r.fields with
        | Some v -> render_cell c v
        | None -> render_cell c (Str "-"))
      cols
  in
  let line = String.make indent ' ' ^ String.concat " " cells in
  let marks =
    List.filter_map
      (fun b -> if b.holds then None else Some (String.uppercase_ascii b.bid))
      r.bounds
  in
  strip_right line
  ^ (if marks = [] then "" else "  VIOLATION:" ^ String.concat "," marks)

let render_header ~indent cols =
  strip_right
    (String.make indent ' '
    ^ String.concat " "
        (List.map
           (fun c ->
             match c.align with
             | `R -> Printf.sprintf "%*s" c.width c.title
             | `L -> Printf.sprintf "%-*s" c.width c.title)
           cols))

let render buf t =
  let out line = Buffer.add_string buf (line ^ "\n") in
  let bar = String.make hr_width '=' in
  let hr = String.make hr_width '-' in
  out "";
  out bar;
  out t.title;
  out bar;
  let last_cols = ref [] in
  List.iter
    (fun s ->
      List.iter out s.caption;
      if s.rows <> [] || s.cols <> [] then begin
        (* Sections sharing the same physical [cols] list print one header;
           all-blank titles suppress the header without resetting it. *)
        if
          s.cols <> []
          && (not (s.cols == !last_cols))
          && List.exists (fun (c : col) -> c.title <> "") s.cols
        then begin
          out (render_header ~indent:s.indent s.cols);
          out hr;
          last_cols := s.cols
        end;
        let rows = Array.of_list s.rows in
        let n = Array.length rows in
        let show i = out (render_row ~indent:s.indent s.cols rows.(i)) in
        (match s.elide with
        | Some e when n > e + 4 ->
            for i = 0 to e - 1 do
              show i
            done;
            out
              (Printf.sprintf "%s%s    (%d rows elided)"
                 (String.make s.indent ' ')
                 "   ..." (n - e - 3));
            for i = n - 3 to n - 1 do
              show i
            done
        | _ ->
            for i = 0 to n - 1 do
              show i
            done);
        if s.rule then out hr
      end)
    t.sections;
  List.iter out t.notes

let to_text t =
  let b = Buffer.create 4096 in
  render b t;
  Buffer.contents b

let print t = print_string (to_text t)

(* ------------------------------------------------------------------ *)
(* JSON artifacts                                                      *)
(* ------------------------------------------------------------------ *)

let json_of_float f =
  if Float.is_finite f then Json.Float f
  else
    Json.Obj
      [
        ( "float",
          Json.Str
            (if f = Float.infinity then "inf"
             else if f = Float.neg_infinity then "-inf"
             else "nan") );
      ]

let float_of_json = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | Json.Obj [ ("float", Json.Str "inf") ] -> Float.infinity
  | Json.Obj [ ("float", Json.Str "-inf") ] -> Float.neg_infinity
  | Json.Obj [ ("float", Json.Str "nan") ] -> Float.nan
  | _ -> raise (Json.Error "expected float")

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> json_of_float f
  | Time s -> Json.Obj [ ("time", Json.Float s) ]
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let value_of_json = function
  | Json.Int i -> Int i
  | Json.Float f -> Float f
  | Json.Str s -> Str s
  | Json.Bool b -> Bool b
  | Json.Obj [ ("time", tv) ] -> Time (Json.num tv)
  | Json.Obj [ ("float", _) ] as j -> Float (float_of_json j)
  | _ -> raise (Json.Error "bad value encoding")

let json_of_bound b =
  Json.Obj
    [
      ("id", Json.Str b.bid);
      ("descr", Json.Str b.descr);
      ("observed", json_of_float b.observed);
      ("limit", json_of_float b.limit);
      ("holds", Json.Bool b.holds);
    ]

let bound_of_json j =
  {
    bid = Json.str (Json.field "id" j);
    descr = Json.str (Json.field "descr" j);
    observed = float_of_json (Json.field "observed" j);
    limit = float_of_json (Json.field "limit" j);
    holds = Json.bool (Json.field "holds" j);
  }

let json_of_row r =
  let fields =
    Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) r.fields)
  in
  if r.bounds = [] then Json.Obj [ ("fields", fields) ]
  else
    Json.Obj
      [
        ("fields", fields);
        ("bounds", Json.Arr (List.map json_of_bound r.bounds));
      ]

let row_of_json j =
  {
    fields =
      List.map
        (fun (k, v) -> (k, value_of_json v))
        (Json.obj (Json.field "fields" j));
    bounds =
      (match Json.field_opt "bounds" j with
      | Some bs -> List.map bound_of_json (Json.arr bs)
      | None -> []);
  }

let json_of_section s =
  Json.Obj
    [
      ("id", Json.Str s.sid);
      ("caption", Json.Arr (List.map (fun l -> Json.Str l) s.caption));
      ("rows", Json.Arr (List.map json_of_row s.rows));
    ]

let section_of_json j =
  {
    sid = Json.str (Json.field "id" j);
    caption = List.map Json.str (Json.arr (Json.field "caption" j));
    cols = [];
    rows = List.map row_of_json (Json.arr (Json.field "rows" j));
    elide = None;
    indent = 0;
    rule = true;
  }

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("id", Json.Str t.id);
      ("title", Json.Str t.title);
      ("params", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) t.params));
      ("sections", Json.Arr (List.map json_of_section t.sections));
      ("notes", Json.Arr (List.map (fun l -> Json.Str l) t.notes));
    ]

let of_json j =
  let s = Json.str (Json.field "schema" j) in
  if s <> schema then raise (Json.Error ("unknown schema " ^ s));
  {
    id = Json.str (Json.field "id" j);
    title = Json.str (Json.field "title" j);
    params =
      List.map
        (fun (k, v) -> (k, value_of_json v))
        (Json.obj (Json.field "params" j));
    sections = List.map section_of_json (Json.arr (Json.field "sections" j));
    notes = List.map Json.str (Json.arr (Json.field "notes" j));
  }

let to_artifact_string t = Json.to_string (to_json t)
let of_artifact_string s = of_json (Json.parse s)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let artifact_path ~dir t = Filename.concat dir (t.id ^ ".json")

let save ~dir t =
  mkdir_p dir;
  let path = artifact_path ~dir t in
  let oc = open_out path in
  output_string oc (to_artifact_string t);
  close_out oc;
  path

let load path = of_artifact_string (Json.read_file path)

(* ------------------------------------------------------------------ *)
(* diffing                                                             *)
(* ------------------------------------------------------------------ *)

(* Floats are deterministic measurements, but committed goldens may cross
   libm versions: allow a relative 1e-9 band.  Time values are wall-clock:
   banded by [time_tolerance] (relative) plus a flat slack for the
   sub-millisecond jitter region. *)
let float_close a b =
  a = b
  || Float.abs (a -. b) <= 1e-9 *. Float.max (Float.abs a) (Float.abs b)
  || (Float.is_nan a && Float.is_nan b)

let time_close ~tol a b =
  Float.abs (a -. b) <= (tol *. Float.max (Float.abs a) (Float.abs b)) +. 0.25

let value_close ~tol a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> x = y
  | Bool x, Bool y -> x = y
  | Float x, Float y -> float_close x y
  | Time x, Time y -> time_close ~tol x y
  | _ -> false

let diff ?(time_tolerance = 0.75) ~golden current =
  let tol = time_tolerance in
  let out = ref [] in
  let report fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let show = default_render in
  if golden.id <> current.id then
    report "id: golden %s vs current %s" golden.id current.id;
  if golden.title <> current.title then report "%s: title changed" current.id;
  let diff_fields ctx gf cf =
    List.iter
      (fun (k, gv) ->
        match List.assoc_opt k cf with
        | None -> report "%s: field %s missing" ctx k
        | Some cv ->
            if not (value_close ~tol gv cv) then
              report "%s: %s = %s, golden %s" ctx k (show cv) (show gv))
      gf;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k gf) then report "%s: new field %s" ctx k)
      cf
  in
  diff_fields (golden.id ^ ".params") golden.params current.params;
  let gsec = golden.sections and csec = current.sections in
  if List.length gsec <> List.length csec then
    report "%s: %d sections, golden %d" current.id (List.length csec)
      (List.length gsec)
  else
    List.iter2
      (fun gs cs ->
        let ctx = Printf.sprintf "%s/%s" current.id gs.sid in
        if gs.sid <> cs.sid then
          report "%s: section id %s, golden %s" current.id cs.sid gs.sid;
        if gs.caption <> cs.caption then report "%s: caption changed" ctx;
        if List.length gs.rows <> List.length cs.rows then
          report "%s: %d rows, golden %d" ctx (List.length cs.rows)
            (List.length gs.rows)
        else
          List.iteri
            (fun i (gr, cr) ->
              let rctx = Printf.sprintf "%s[%d]" ctx i in
              diff_fields rctx gr.fields cr.fields;
              if List.length gr.bounds <> List.length cr.bounds then
                report "%s: %d bounds, golden %d" rctx
                  (List.length cr.bounds) (List.length gr.bounds)
              else
                List.iter2
                  (fun gb cb ->
                    if gb.bid <> cb.bid then
                      report "%s: bound id %s, golden %s" rctx cb.bid gb.bid
                    else if gb.holds <> cb.holds then
                      report "%s: bound %s holds=%b, golden %b" rctx cb.bid
                        cb.holds gb.holds
                    else if
                      not
                        (float_close gb.observed cb.observed
                        && float_close gb.limit cb.limit)
                    then
                      report "%s: bound %s %g<=%g, golden %g<=%g" rctx cb.bid
                        cb.observed cb.limit gb.observed gb.limit)
                  gr.bounds cr.bounds)
            (List.combine gs.rows cs.rows))
      gsec csec;
  if golden.notes <> current.notes then report "%s: notes changed" current.id;
  List.rev !out
