(* Minimal JSON for experiment artifacts: a typed tree, a strict parser and
   a deterministic pretty-printer.  No external JSON library exists in the
   image, so this is the single shared implementation (the perf harness's
   original hand-rolled parser moved here and grew an [Int] constructor so
   integer counts round-trip without a float detour). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let fail msg = error "%s at offset %d" msg !pos in
  let skip_ws () =
    while
      !pos < len
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= len then fail "bad escape";
            (match s.[!pos + 1] with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | c -> Buffer.add_char b c);
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields_loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items_loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ ->
        let start = !pos in
        let floaty = ref false in
        while
          !pos < len
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' -> true
          | '.' | 'e' | 'E' ->
              floaty := true;
              true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character";
        let tok = String.sub s start (!pos - start) in
        if !floaty then Float (float_of_string tok)
        else begin
          match int_of_string_opt tok with
          | Some i -> Int i
          | None -> Float (float_of_string tok)
        end
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Shortest representation that round-trips: integers keep one decimal so
   they read back as floats, everything else tries %.12g before falling
   back to the exact %.17g. *)
let float_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json.float_to_string: non-finite (encode at a higher layer)"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_string ?(indent = 2) j =
  let b = Buffer.create 4096 in
  let pad d = Buffer.add_string b (String.make (d * indent) ' ') in
  let rec go d = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_to_string f)
    | Str s -> Buffer.add_string b (escape_string s)
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (d + 1);
            go (d + 1) v)
          items;
        Buffer.add_char b '\n';
        pad d;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (d + 1);
            Buffer.add_string b (escape_string k);
            Buffer.add_string b ": ";
            go (d + 1) v)
          fields;
        Buffer.add_char b '\n';
        pad d;
        Buffer.add_char b '}'
  in
  go 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* accessors                                                           *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> error "missing field %s" name)
  | _ -> error "not an object looking for %s" name

let field_opt name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let num = function
  | Int i -> float_of_int i
  | Float f -> f
  | _ -> error "expected number"

let int = function Int i -> i | _ -> error "expected integer"
let str = function Str s -> s | _ -> error "expected string"
let arr = function Arr l -> l | _ -> error "expected array"
let bool = function Bool b -> b | _ -> error "expected bool"
let obj = function Obj l -> l | _ -> error "expected object"

(* ------------------------------------------------------------------ *)
(* files                                                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load path = parse (read_file path)

let save path j =
  let oc = open_out path in
  output_string oc (to_string j);
  close_out oc
