(** Typed experiment tables — the machine-checkable artifact layer.

    A [Table.t] is what every bench experiment produces instead of raw
    printf: sections of typed rows, each row optionally carrying {!bound}
    predicates (the paper's guarantees as executable checks, e.g. "size <=
    n + n/t" or "rounds <= 2k+3").  The module renders tables as text in
    the bench harness's historical layout, emits them as deterministic
    JSON artifacts (schema ["ultraspan-table/1"]), parses artifacts back,
    and diffs a fresh run against committed goldens — exact for counts and
    stretch values, tolerance-banded for wall-clock ({!Time}) fields. *)

val schema : string

type value =
  | Int of int
  | Float of float  (** deterministic measurement: exact in diffs *)
  | Time of float  (** wall-clock: tolerance-banded in diffs *)
  | Str of string
  | Bool of bool

type bound = {
  bid : string;
  descr : string;
  observed : float;
  limit : float;
  holds : bool;
}

type row = { fields : (string * value) list; bounds : bound list }

type col = {
  key : string;
  title : string;
  width : int;
  align : [ `L | `R ];
  render : (value -> string) option;
}

type section = {
  sid : string;
  caption : string list;  (** prose lines printed before the rows *)
  cols : col list;  (** render-only; not serialized *)
  rows : row list;
  elide : int option;  (** text: show first [e] and last 3 when longer *)
  indent : int;
  rule : bool;  (** print a ---- rule after the rows *)
}

type t = {
  id : string;
  title : string;
  params : (string * value) list;
  sections : section list;
  notes : string list;
}

(** {1 Constructors} *)

val bound :
  id:string -> ?descr:string -> observed:float -> limit:float -> bool -> bound

val le : id:string -> ?descr:string -> float -> float -> bound
(** [le ~id observed limit] holds iff [observed <= limit + 1e-9]. *)

val ge : id:string -> ?descr:string -> float -> float -> bound

val flag : id:string -> ?descr:string -> bool -> bound
(** A boolean invariant (encoded observed 1/0, limit 1). *)

val row : ?bounds:bound list -> (string * value) list -> row

val col :
  ?align:[ `L | `R ] ->
  ?render:(value -> string) ->
  ?title:string ->
  w:int ->
  string ->
  col
(** [col ~w key] — a column of width [w] showing field [key]; [title]
    defaults to the key.  Sections sharing the {e same physical} column
    list print one header; a fresh list forces a header reprint. *)

val section :
  ?caption:string list ->
  ?elide:int ->
  ?indent:int ->
  ?rule:bool ->
  cols:col list ->
  string ->
  row list ->
  section

val make :
  id:string ->
  title:string ->
  ?params:(string * value) list ->
  ?notes:string list ->
  section list ->
  t

(** {1 Value helpers} *)

val pretty_float : float -> string
(** ["inf"], [%.0f] above 1000, [%.2f] otherwise (bench convention). *)

val pretty : value -> string
(** Render numerics through {!pretty_float} — for stretch-style columns. *)

val default_render : value -> string
val to_float : value -> float

(** {1 Bound checking} *)

val violations : t -> (string * string * bound) list
(** [(section id, row label, bound)] for every violated bound. *)

val bounds_checked : t -> int
val ok : t -> bool
val row_label : row -> string

(** {1 Text rendering} *)

val render : Buffer.t -> t -> unit
val to_text : t -> string
val print : t -> unit

(** {1 JSON artifacts} *)

val to_json : t -> Json.t
val of_json : Json.t -> t
val to_artifact_string : t -> string
val of_artifact_string : string -> t

val artifact_path : dir:string -> t -> string
(** [dir/<id>.json]. *)

val save : dir:string -> t -> string
(** Write the artifact (creating [dir] if needed); returns the path. *)

val load : string -> t
val mkdir_p : string -> unit

(** {1 Diffing} *)

val diff : ?time_tolerance:float -> golden:t -> t -> string list
(** Human-readable mismatch descriptions; empty means identical up to the
    wall-clock band ([time_tolerance] relative, default 0.75, plus 0.25 s
    flat slack). *)
