(** Minimal typed JSON for experiment artifacts.

    The single JSON implementation shared by the bench harness, the perf
    baseline and the CLI [report] subcommand: a strict parser (rejects
    trailing garbage), a deterministic pretty-printer (fields keep
    insertion order, floats print in shortest round-tripping form), and
    total accessors raising {!Error}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

val parse : string -> t
(** Raises {!Error} on malformed input.  Number tokens without [./e/E]
    parse as [Int], everything else as [Float]. *)

val to_string : ?indent:int -> t -> string
(** Deterministic rendering: same tree, same bytes.  [Float] must be
    finite — encode non-finite values at a higher layer. *)

val float_to_string : float -> string
(** Shortest representation that round-trips through [float_of_string].
    Raises [Invalid_argument] on non-finite input. *)

val field : string -> t -> t
val field_opt : string -> t -> t option

val num : t -> float
(** Accepts both [Int] and [Float]. *)

val int : t -> int
val str : t -> string
val arr : t -> t list
val bool : t -> bool
val obj : t -> (string * t) list

val read_file : string -> string
val load : string -> t
val save : string -> t -> unit
