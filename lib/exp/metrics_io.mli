(** [ultraspan-metrics/1] — versioned JSON serialization of
    {!Ultraspan_util.Metrics} snapshots.

    Deterministic byte-for-byte: snapshots are name-sorted and
    {!Json.to_string} preserves field order, so the same snapshot always
    serializes to the same bytes.  The check.sh / CI determinism gates
    compare these files directly (after stripping [timing.*]). *)

val schema : string

val json_of_snapshot : Ultraspan_util.Metrics.snapshot -> Json.t
val snapshot_of_json : Json.t -> Ultraspan_util.Metrics.snapshot
(** Raises {!Json.Error} on schema mismatch or malformed structure. *)

val save : string -> Ultraspan_util.Metrics.snapshot -> unit
val load : string -> Ultraspan_util.Metrics.snapshot

val save_registry : string -> Ultraspan_util.Metrics.t -> unit
(** [save path (Metrics.snapshot t)]. *)
