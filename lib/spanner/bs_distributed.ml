open! Import
module Network = Ultraspan_congest.Network

type outcome = {
  spanner : Spanner.t;
  network_stats : Network.stats;
}

(* message tags *)
let tag_cluster = 0 (* payload: [| tag; cluster_id |] *)
let tag_edge_died = 1 (* payload: [| tag |] *)

type state = {
  alive : bool;
  cluster : int;
  (* per-neighbour knowledge, as assoc lists keyed by neighbour vertex *)
  nbr_cluster : (int * int) list;
  dead_edges : int list; (* neighbours whose connecting edge died *)
  spanner_nbrs : int list; (* neighbours across spanner edges (local output) *)
}

let run ?trace ?metrics ?engine ?backend ?jobs ~seed ~k g =
  if k < 1 then invalid_arg "Bs_distributed.run: k >= 1";
  let n = Graph.n g in
  let p =
    float_of_int (max 2 n) ** (-1.0 /. float_of_int k)
  in
  (* Shared pseudo-randomness: every node evaluates the same family member. *)
  let hash = Util.Hash_family.create ~degree:7 (Rng.create seed) in
  let threshold = Util.Hash_family.threshold_of_prob p in
  let sampled_cluster ~iter c =
    (* last iteration samples nothing, as in the paper *)
    iter < k
    && Util.Hash_family.indicator hash ~threshold ((c * 131) + iter)
  in
  let program =
    {
      Network.init =
        (fun _ v ->
          { alive = true; cluster = v; nbr_cluster = []; dead_edges = [];
            spanner_nbrs = [] });
      round =
        (fun g ~round ~me st inbox ->
          let iter = (round / 2) + 1 in
          if iter > k || not st.alive then
            { Network.state = st; out = []; halt = true }
          else if round mod 2 = 0 then begin
            (* Broadcast phase.  First fold in edge-death notices from the
               previous decision phase. *)
            let newly_dead =
              List.filter_map
                (fun (s, p) -> if p.(0) = tag_edge_died then Some s else None)
                inbox
            in
            let dead_edges = newly_dead @ st.dead_edges in
            let st = { st with dead_edges } in
            let payload = [| tag_cluster; st.cluster |] in
            let out =
              List.rev
                (Graph.fold_adj g me
                   (fun acc u _ ->
                     if List.mem u dead_edges then acc else (u, payload) :: acc)
                   [])
            in
            { Network.state = st; out; halt = false }
          end
          else begin
            (* Decision phase: inbox holds neighbours' cluster ids. *)
            let nbr_cluster =
              List.filter_map
                (fun (s, p) ->
                  if p.(0) = tag_cluster then Some (s, p.(1)) else None)
                inbox
            in
            let st = { st with nbr_cluster } in
            if sampled_cluster ~iter st.cluster then
              (* nothing to do; stay alive. *)
              { Network.state = st; out = []; halt = iter = k }
            else begin
              (* Adjacent clusters with their minimum (w, eid, neighbour). *)
              let best = Hashtbl.create 8 in
              Graph.iter_adj g me (fun u eid ->
                  match List.assoc_opt u nbr_cluster with
                  | None -> () (* dead edge or dead neighbour *)
                  | Some c ->
                      let key = (Graph.weight g eid, eid) in
                      let entry = (key, u) in
                      (match Hashtbl.find_opt best c with
                      | Some (key', _) when key' <= key -> ()
                      | _ -> Hashtbl.replace best c entry));
              let adjacent =
                Hashtbl.fold
                  (fun c ((w, eid), u) acc -> ((w, eid), c, u) :: acc)
                  best []
                |> List.sort compare
              in
              let first_sampled =
                List.find_opt (fun (_, c, _) -> sampled_cluster ~iter c) adjacent
              in
              match first_sampled with
              | Some ((w_i, _), c_i, _) ->
                  (* join c_i; add e_i and all e_j with strictly smaller
                     weight; the corresponding edges die *)
                  let added =
                    List.filter
                      (fun ((w_j, _), c_j, _) -> c_j = c_i || w_j < w_i)
                      adjacent
                  in
                  let spanner_nbrs =
                    List.map (fun (_, _, u) -> u) added @ st.spanner_nbrs
                  in
                  (* edges to each added cluster die: notify every neighbour
                     in those clusters *)
                  let kill_clusters =
                    List.map (fun (_, c, _) -> c) added
                  in
                  let notices =
                    List.filter_map
                      (fun (u, c) ->
                        if List.mem c kill_clusters then
                          Some (u, [| tag_edge_died |])
                        else None)
                      nbr_cluster
                  in
                  let dead_edges =
                    List.map fst notices @ st.dead_edges
                  in
                  {
                    Network.state =
                      { st with cluster = c_i; spanner_nbrs; dead_edges };
                    out = notices;
                    halt = iter = k;
                  }
              | None ->
                  (* die: add min edge per adjacent cluster, all edges die *)
                  let spanner_nbrs =
                    List.map (fun (_, _, u) -> u) adjacent @ st.spanner_nbrs
                  in
                  let notices =
                    List.filter_map
                      (fun (u, _) ->
                        if List.mem u st.dead_edges then None
                        else Some (u, [| tag_edge_died |]))
                      nbr_cluster
                  in
                  {
                    Network.state =
                      { st with alive = false; cluster = -1; spanner_nbrs };
                    out = notices;
                    halt = true;
                  }
            end
          end);
    }
  in
  let states, network_stats = Network.run ~word_limit:4 ?trace ?metrics ?engine ?backend ?jobs g program in
  (* Collect the distributed output. *)
  let keep = Array.make (Graph.m g) false in
  Array.iteri
    (fun v st ->
      List.iter
        (fun u ->
          match Graph.find_edge g v u with
          | Some eid -> keep.(eid) <- true
          | None -> assert false)
        st.spanner_nbrs)
    states;
  let rounds = Ultraspan_congest.Rounds.create () in
  Ultraspan_congest.Rounds.span rounds "bs-congest" (fun () ->
      Ultraspan_congest.Rounds.charge ~label:"protocol" rounds
        network_stats.Network.rounds);
  { spanner = { Spanner.keep; rounds }; network_stats }
