open! Import

(** Stretch-friendly O(t)-partitions (Definition 3.4, Lemma 4.1).

    ceil(log2 t) merging iterations: each cluster finds its minimum-weight
    boundary edge (ties by edge id — a total order, which guarantees the
    pointer graph has only 2-cycles), the pointer graph is 3-coloured in
    O(log* n) rounds (Cole–Vishkin), small clusters are maximally matched
    along pointer edges by colour sweeps, and clusters merge along their
    pointers.  The output is a stretch-friendly partition whose clusters
    have size >= t (hence at most n/t clusters), radius < 3t, in
    O(t log* n) simulated rounds.

    Exception: a cluster that swallows a whole connected component smaller
    than t has no boundary edge and stops growing; such clusters are exempt
    from the size bound (only relevant on disconnected inputs). *)

type info = {
  iterations : int;  (** merging iterations = ceil(log2 t) *)
  cv_iterations : int;  (** total Cole–Vishkin colour-reduction steps *)
  rounds : Rounds.t;
}

val partition : t:int -> Graph.t -> Partition.t * info
(** Requires [t >= 1].  With [t = 1] this is the trivial partition. *)

val is_stretch_friendly : Graph.t -> Partition.t -> bool
(** Exact check of Definition 3.4: for every boundary edge {u∉C, v∈C} of
    weight w, all edges on v's tree path to the root weigh <= w; for every
    inside edge {u,v∈C} of weight w, all edges on the tree path between u
    and v weigh <= w. *)

val is_stretch_friendly_subset :
  Graph.t -> Partition.t -> consider:(int -> bool) -> bool
(** Like {!is_stretch_friendly}, but only the edges with [consider id]
    count as boundary/inside edges (tree paths are always the partition's
    trees).  Lemma 3.1 asserts the property for the {e alive} edges of a
    Baswana–Sen state, which is what {!is_stretch_friendly_alive} checks. *)

val is_stretch_friendly_alive : Graph.t -> Bs_core.t -> bool

type merge_strategy = Matched | Naive_star
(** Ablation knob: [Matched] is Lemma 4.1's matching-based merge;
    [Naive_star] skips the matching and merges every small cluster straight
    into its pointer target, which can chain merges and blow up the radius
    (the bench's A2 ablation measures this). *)

val partition_with_strategy :
  strategy:merge_strategy -> t:int -> Graph.t -> Partition.t * info
