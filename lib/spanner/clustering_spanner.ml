open! Import

type step_info = {
  step : int;
  active_before : int;
  clustered : int;
  clusters_formed : int;
  bad_clusters : int;
  inter_edges_added : int;
  max_cut_distance : int;
  xi_avg : float;
}

type outcome = {
  spanner : Spanner.t;
  steps : step_info list;
  max_tree_diameter : int;
  pram : Pram.t;
}

let require_unweighted g =
  if not (Graph.is_unit_weighted g) then
    invalid_arg "Clustering_spanner: unweighted graphs only"

(* Hop diameter of a tree given by its edge ids: two BFS sweeps restricted
   to the tree edges. *)
let tree_diameter g tree_eids =
  match tree_eids with
  | [] -> 0
  | eid :: _ ->
      let allow = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace allow e ()) tree_eids;
      let start, _ = Graph.endpoints g eid in
      let d1 = Bfs.distances ~allow:(Hashtbl.mem allow) g start in
      let far = ref start in
      Array.iteri (fun v d -> if d > d1.(!far) then far := v) d1;
      let d2 = Bfs.distances ~allow:(Hashtbl.mem allow) g !far in
      Array.fold_left max 0 d2

let sparse ?(separation = 3) g =
  require_unweighted g;
  if separation < 2 then invalid_arg "Clustering_spanner.sparse: separation >= 2";
  let n = Graph.n g in
  let keep = Array.make (Graph.m g) false in
  let rounds = Rounds.create () in
  let pram = Pram.create () in
  let active = Array.make n true in
  let remaining = ref n in
  let steps = ref [] in
  let step_no = ref 0 in
  let max_diam = ref 0 in
  while !remaining > 0 do
    incr step_no;
    if !step_no > (4 * (1 + int_of_float (Float.log2 (float_of_int (n + 2))))) + 8
    then failwith "Clustering_spanner.sparse: no progress";
    let active_before = !remaining in
    let clustering = Separated_clustering.make ~active ~separation g in
    let xi_avg = Separated_clustering.avg_overlap g clustering in
    (* Steiner trees into the spanner; members leave the active set. *)
    Array.iter
      (fun c ->
        List.iter (fun eid -> keep.(eid) <- true) c.Separated_clustering.tree_eids;
        let d = tree_diameter g c.Separated_clustering.tree_eids in
        if d > !max_diam then max_diam := d;
        List.iter
          (fun v ->
            active.(v) <- false;
            decr remaining)
          c.Separated_clustering.members)
      clustering.Separated_clustering.clusters;
    (* One witness edge from each still-unclustered vertex into each
       neighbouring new cluster (with the default separation 3 there is at
       most one; separation 2 can legitimately give several). *)
    let inter = ref 0 in
    for v = 0 to n - 1 do
      if active.(v) then begin
        let chosen = Hashtbl.create 2 in
        Graph.iter_adj g v (fun u eid ->
            let cu = clustering.Separated_clustering.cluster_of.(u) in
            if cu >= 0 && not (Hashtbl.mem chosen cu) then
              Hashtbl.replace chosen cu eid);
        if separation >= 3 && Hashtbl.length chosen > 1 then
          failwith "Clustering_spanner.sparse: separation violated";
        Hashtbl.iter
          (fun _ eid ->
            keep.(eid) <- true;
            incr inter)
          chosen
      end
    done;
    Rounds.span rounds "cl-sparse" (fun () ->
        Rounds.span rounds (Printf.sprintf "step-%d" !step_no) (fun () ->
            Rounds.charge ~label:"decomposition-wave" rounds
              ((2 * Network_decomposition.rounds_bound g / 8) + 4)));
    Pram.charge ~label:"cl-sparse:step" pram
      ~work:((4 * Graph.m g) + n)
      ~depth:(!max_diam + 1 + int_of_float (Float.log2 (float_of_int (n + 2))));
    steps :=
      {
        step = !step_no;
        active_before;
        clustered = active_before - !remaining;
        clusters_formed = Array.length clustering.Separated_clustering.clusters;
        bad_clusters = 0;
        inter_edges_added = !inter;
        max_cut_distance = 0;
        xi_avg;
      }
      :: !steps
  done;
  {
    spanner = { Spanner.keep; rounds };
    steps = List.rev !steps;
    max_tree_diameter = !max_diam;
    pram;
  }

let ultra_sparse ~t g =
  require_unweighted g;
  if t < 1 then invalid_arg "Clustering_spanner.ultra_sparse: t >= 1";
  let n = Graph.n g in
  let keep = Array.make (Graph.m g) false in
  let rounds = Rounds.create () in
  let pram = Pram.create () in
  let active = Array.make n true in
  let remaining = ref n in
  let steps = ref [] in
  let step_no = ref 0 in
  let max_diam = ref 0 in
  let final_cluster_of = Array.make n (-1) in
  let n_final = ref 0 in
  while !remaining > 0 do
    incr step_no;
    if !step_no > (8 * (1 + int_of_float (Float.log2 (float_of_int (n + 2))))) + 8
    then failwith "Clustering_spanner.ultra_sparse: no progress";
    let active_before = !remaining in
    let clustering = Separated_clustering.make ~active ~separation:(10 * t) g in
    let xi_avg = Separated_clustering.avg_overlap g clustering in
    let bad = ref 0 in
    let max_cut = ref 0 in
    let new_cluster_ids = ref [] in
    Array.iter
      (fun c ->
        let size_c = List.length c.Separated_clustering.members in
        (* BFS in G[active] from the members, to depth 4t: dist.(u) =
           d_{G_i}(u, C). *)
        let dist = Array.make n (-1) in
        let par = Array.make n (-1) in
        let par_eid = Array.make n (-1) in
        let q = Queue.create () in
        List.iter
          (fun v ->
            dist.(v) <- 0;
            Queue.add v q)
          c.Separated_clustering.members;
        let layer_count = Array.make ((4 * t) + 2) 0 in
        layer_count.(0) <- size_c;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          if dist.(v) <= 4 * t then
            Graph.iter_adj g v (fun u eid ->
                if active.(u) && dist.(u) = -1 then begin
                  dist.(u) <- dist.(v) + 1;
                  par.(u) <- v;
                  par_eid.(u) <- eid;
                  if dist.(u) <= (4 * t) + 1 then
                    layer_count.(dist.(u)) <- layer_count.(dist.(u)) + 1;
                  Queue.add u q
                end)
        done;
        (* Smallest good cutting distance: frontier at j+1 holds at most
           |C|/t vertices. *)
        let cut = ref (-1) in
        (try
           for j = 0 to (4 * t) - 1 do
             if layer_count.(j + 1) * t <= size_c then begin
               cut := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !cut = -1 then incr bad
        else begin
          let j_c = !cut in
          if j_c > !max_cut then max_cut := j_c;
          let cid = !n_final in
          incr n_final;
          new_cluster_ids := cid :: !new_cluster_ids;
          (* Tree: the cluster's Steiner tree plus BFS parents of the grown
             vertices. *)
          List.iter
            (fun eid -> keep.(eid) <- true)
            c.Separated_clustering.tree_eids;
          let tree = ref c.Separated_clustering.tree_eids in
          for u = 0 to n - 1 do
            if dist.(u) >= 0 && dist.(u) <= j_c then begin
              if dist.(u) > 0 then begin
                keep.(par_eid.(u)) <- true;
                tree := par_eid.(u) :: !tree
              end;
              final_cluster_of.(u) <- cid;
              active.(u) <- false;
              decr remaining
            end
          done;
          let d = tree_diameter g !tree in
          if d > !max_diam then max_diam := d
        end)
      clustering.Separated_clustering.clusters;
    (* Witness edges: each still-active vertex adjacent to a new cluster
       adds one edge into it (unique by separation). *)
    let new_ids = !new_cluster_ids in
    let is_new = Hashtbl.create 16 in
    List.iter (fun c -> Hashtbl.replace is_new c ()) new_ids;
    let inter = ref 0 in
    for v = 0 to n - 1 do
      if active.(v) then begin
        let target = ref (-1) in
        let edge = ref (-1) in
        Graph.iter_adj g v (fun u eid ->
            let cu = final_cluster_of.(u) in
            if cu >= 0 && Hashtbl.mem is_new cu then begin
              if !target = -1 then begin
                target := cu;
                edge := eid
              end
              else if !target <> cu then
                failwith "Clustering_spanner.ultra_sparse: two adjacent new clusters"
            end);
        if !edge >= 0 then begin
          keep.(!edge) <- true;
          incr inter
        end
      end
    done;
    Rounds.span rounds "cl-ultra" (fun () ->
        Rounds.span rounds (Printf.sprintf "step-%d" !step_no) (fun () ->
            Rounds.charge ~label:"decomposition-wave" rounds
              ((2 * Network_decomposition.rounds_bound g / 8) + (10 * t) + 4)));
    Pram.charge ~label:"cl-ultra:step" pram
      ~work:((4 * Graph.m g) + n)
      ~depth:(!max_diam + (4 * t) + 1
              + int_of_float (Float.log2 (float_of_int (n + 2))));
    steps :=
      {
        step = !step_no;
        active_before;
        clustered = active_before - !remaining;
        clusters_formed = List.length new_ids;
        bad_clusters = !bad;
        inter_edges_added = !inter;
        max_cut_distance = !max_cut;
        xi_avg;
      }
      :: !steps
  done;
  {
    spanner = { Spanner.keep; rounds };
    steps = List.rev !steps;
    max_tree_diameter = !max_diam;
    pram;
  }

let sparse_weighted ~epsilon g =
  if Graph.is_unit_weighted g then (sparse g).spanner
  else
    (Weighted_reduction.run
       ~unweighted:(fun u -> (sparse u).spanner)
       ~epsilon g)
      .Weighted_reduction.spanner
