(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Bfs = Ultraspan_graph.Bfs
module Dijkstra = Ultraspan_graph.Dijkstra
module Partition = Ultraspan_graph.Partition
module Contraction = Ultraspan_graph.Contraction
module Connectivity = Ultraspan_graph.Connectivity
module Spanning_tree = Ultraspan_graph.Spanning_tree
module Stretch_check = Ultraspan_graph.Stretch
module Generators = Ultraspan_graph.Generators
module Rounds = Ultraspan_congest.Rounds
module Coloring = Ultraspan_decomp.Coloring
module Network_decomposition = Ultraspan_decomp.Network_decomposition
module Separated_clustering = Ultraspan_decomp.Separated_clustering
module Util = Ultraspan_util
module Rng = Ultraspan_util.Rng
module Pram = Ultraspan_congest.Pram
