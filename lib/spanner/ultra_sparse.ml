open! Import

type outcome = {
  spanner : Spanner.t;
  t_inner : int;
  partition_clusters : int;
  quotient_edges_kept : int;
  attempts : int;
}

let bound ~n ~t = n + (n / t)

let default_sparse g =
  let out = Linear_size.run ~variant:Linear_size.Deterministic g in
  out.Linear_size.spanner

let run ?(sparse = default_sparse) ~t g =
  if t < 1 then invalid_arg "Ultra_sparse.run: t >= 1";
  let n = Graph.n g in
  let budget = n / t in
  let rec attempt t_inner tries =
    let part, info = Stretch_friendly.partition ~t:t_inner g in
    let contraction = Contraction.make g part in
    let quotient = contraction.Contraction.quotient in
    let qspanner = sparse quotient in
    let extra = Spanner.size qspanner in
    if extra > budget && Graph.n quotient > 1 && tries < 30 then
      attempt (2 * t_inner) (tries + 1)
    else begin
      let rounds = Rounds.create () in
      Rounds.merge_into rounds info.Stretch_friendly.rounds;
      (* Cluster-graph dilation: each quotient round costs up to
         (2·radius + 1) network rounds. *)
      let radius = Partition.max_radius part in
      Rounds.charge ~label:"ultra:quotient-spanner" rounds
        (Spanner.total_rounds qspanner * ((2 * radius) + 1));
      let keep = Array.make (Graph.m g) false in
      List.iter (fun eid -> keep.(eid) <- true) (Partition.tree_edges part);
      List.iter
        (fun eid -> keep.(eid) <- true)
        (Contraction.pull_back contraction (Spanner.eids qspanner));
      let spanner = { Spanner.keep; rounds } in
      {
        spanner;
        t_inner;
        partition_clusters = Partition.count part;
        quotient_edges_kept = extra;
        attempts = tries + 1;
      }
    end
  in
  attempt t 0
