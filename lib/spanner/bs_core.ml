open! Import

type t = {
  g : Graph.t;
  spanner : bool array;
  alive : bool array;
  edge_alive : bool array;
  death_iter : int array;
  mutable cluster_of : int array;
  mutable roots : int array;
  parent : int array;
  parent_eid : int array;
  mutable iter : int;
}

type adjacency = (int * int * int) array array

type iteration_stats = {
  edges_added : int;
  died : int;
  joined : int;
  high_degree_died : int;
  death_edges_above_tally : int;
  sampled_clusters : int;
  max_adjacent : int;
}

let create g =
  let n = Graph.n g in
  {
    g;
    spanner = Array.make (Graph.m g) false;
    alive = Array.make n true;
    edge_alive = Array.make (Graph.m g) true;
    death_iter = Array.make (Graph.m g) (-1);
    cluster_of = Array.init n (fun v -> v);
    roots = Array.init n (fun v -> v);
    parent = Array.make n (-1);
    parent_eid = Array.make n (-1);
    iter = 0;
  }

let graph t = t.g

let n_clusters t = Array.length t.roots

let n_alive t = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.alive

let completed_iterations t = t.iter

let cluster_of t = t.cluster_of

let roots t = t.roots

let spanner_mask t = t.spanner

let edge_alive t eid = t.edge_alive.(eid)

let death_iteration t = Array.copy t.death_iter

let vertex_alive t v = t.alive.(v)

(* Per-vertex sorted adjacent-cluster lists: for each alive vertex, the
   minimum alive edge into each cluster it touches, ascending (w, eid). *)
let adjacency t =
  let n = Graph.n t.g in
  let nc = n_clusters t in
  let stamp = Array.make nc (-1) in
  let best_w = Array.make nc 0 in
  let best_e = Array.make nc 0 in
  let out = Array.make n [||] in
  for v = 0 to n - 1 do
    if t.alive.(v) then begin
      let touched = ref [] in
      Graph.iter_adj t.g v (fun u eid ->
          if t.edge_alive.(eid) && t.alive.(u) then begin
            let c = t.cluster_of.(u) in
            let w = Graph.weight t.g eid in
            if stamp.(c) <> v then begin
              stamp.(c) <- v;
              best_w.(c) <- w;
              best_e.(c) <- eid;
              touched := c :: !touched
            end
            else if (w, eid) < (best_w.(c), best_e.(c)) then begin
              best_w.(c) <- w;
              best_e.(c) <- eid
            end
          end);
      let arr =
        Array.of_list (List.map (fun c -> (best_w.(c), best_e.(c), c)) !touched)
      in
      Array.sort compare arr;
      out.(v) <- arr
    end
  done;
  out

let iteration ?adjacency:adj ?(high_degree_threshold = max_int)
    ?(tally_death_threshold = max_int) t ~sampled =
  let nc = n_clusters t in
  if Array.length sampled <> nc then
    invalid_arg "Bs_core.iteration: sampled length mismatch";
  let adj = match adj with Some a -> a | None -> adjacency t in
  let n = Graph.n t.g in
  (* Renumber the sampled clusters compactly. *)
  let new_id = Array.make nc (-1) in
  let n_new = ref 0 in
  for c = 0 to nc - 1 do
    if sampled.(c) then begin
      new_id.(c) <- !n_new;
      incr n_new
    end
  done;
  let old_cluster_of = t.cluster_of in
  let new_cluster_of = Array.make n (-1) in
  (* Edge kills are recorded here and applied after the sweep, so every
     vertex decides against the same pre-iteration snapshot (synchrony). *)
  let kills = ref [] in
  let edges_added = ref 0 in
  let died = ref 0 in
  let joined = ref 0 in
  let high_degree_died = ref 0 in
  let death_edges_above_tally = ref 0 in
  let max_adjacent = ref 0 in
  let add_edge eid =
    if not t.spanner.(eid) then begin
      t.spanner.(eid) <- true;
      incr edges_added
    end
  in
  for v = 0 to n - 1 do
    if t.alive.(v) then begin
      let c = old_cluster_of.(v) in
      if sampled.(c) then new_cluster_of.(v) <- new_id.(c)
      else begin
        let a = adj.(v) in
        let d = Array.length a in
        if d > !max_adjacent then max_adjacent := d;
        (* First sampled cluster in (w, eid) order. *)
        let first_sampled = ref (-1) in
        (try
           Array.iteri
             (fun j (_, _, cj) ->
               if sampled.(cj) then begin
                 first_sampled := j;
                 raise Exit
               end)
             a
         with Exit -> ());
        if !first_sampled >= 0 then begin
          let i = !first_sampled in
          let w_i, e_i, c_i = a.(i) in
          (* Add e_j for strictly smaller weights, and e_i itself; all
             edges between v and those clusters die. *)
          let to_kill = ref [ c_i ] in
          for j = 0 to i - 1 do
            let w_j, e_j, c_j = a.(j) in
            if w_j < w_i then begin
              add_edge e_j;
              to_kill := c_j :: !to_kill
            end
          done;
          add_edge e_i;
          kills := (v, `Into !to_kill) :: !kills;
          new_cluster_of.(v) <- new_id.(c_i);
          t.parent.(v) <- Graph.other_endpoint t.g e_i v;
          t.parent_eid.(v) <- e_i;
          incr joined
        end
        else begin
          (* No sampled neighbour: v dies, adding its minimum edge into
             every adjacent cluster. *)
          Array.iter (fun (_, e_j, _) -> add_edge e_j) a;
          kills := (v, `All) :: !kills;
          t.alive.(v) <- false;
          t.parent.(v) <- -1;
          t.parent_eid.(v) <- -1;
          incr died;
          if d >= high_degree_threshold then incr high_degree_died;
          if d >= tally_death_threshold then
            death_edges_above_tally := !death_edges_above_tally + d
        end
      end
    end
  done;
  (* Apply edge deaths. *)
  let this_iter = t.iter + 1 in
  let kill_edge eid =
    if t.edge_alive.(eid) then begin
      t.edge_alive.(eid) <- false;
      t.death_iter.(eid) <- this_iter
    end
  in
  List.iter
    (fun (v, what) ->
      match what with
      | `All -> Graph.iter_adj t.g v (fun _ eid -> kill_edge eid)
      | `Into clusters ->
          let marks = Hashtbl.create 8 in
          List.iter (fun c -> Hashtbl.replace marks c ()) clusters;
          Graph.iter_adj t.g v (fun u eid ->
              if t.edge_alive.(eid) then begin
                let cu = old_cluster_of.(u) in
                if cu >= 0 && Hashtbl.mem marks cu then kill_edge eid
              end))
    !kills;
  (* New roots: one per sampled cluster, same root vertices. *)
  let new_roots = Array.make !n_new (-1) in
  for c = 0 to nc - 1 do
    if sampled.(c) then new_roots.(new_id.(c)) <- t.roots.(c)
  done;
  t.cluster_of <- new_cluster_of;
  t.roots <- new_roots;
  t.iter <- t.iter + 1;
  {
    edges_added = !edges_added;
    died = !died;
    joined = !joined;
    high_degree_died = !high_degree_died;
    death_edges_above_tally = !death_edges_above_tally;
    sampled_clusters = !n_new;
    max_adjacent = !max_adjacent;
  }

let finish t = iteration t ~sampled:(Array.make (n_clusters t) false)

let partition t =
  {
    Partition.g = t.g;
    cluster_of = Array.copy t.cluster_of;
    parent = Array.copy t.parent;
    parent_eid = Array.copy t.parent_eid;
    roots = Array.copy t.roots;
  }

let alive_quotient t =
  Contraction.of_cluster_of
    ~allow:(fun eid ->
      t.edge_alive.(eid)
      &&
      let u, v = Graph.endpoints t.g eid in
      t.alive.(u) && t.alive.(v))
    t.g t.cluster_of (n_clusters t)
