open! Import
module Cp = Ultraspan_congest.Cluster_programs
module Network = Ultraspan_congest.Network

type outcome = {
  partition : Partition.t;
  real_rounds : int;
  messages : int;
  waves : int;
}

let none_pair = (max_int, max_int)

(* Re-root one cluster tree at [new_root] (identical to the centralized
   implementation). *)
let reroot parent parent_eid new_root =
  let rec go v prev prev_eid =
    let next = parent.(v) in
    let next_eid = parent_eid.(v) in
    parent.(v) <- prev;
    parent_eid.(v) <- prev_eid;
    if next <> -1 then go next v next_eid
  in
  go new_root (-1) (-1)

let partition ~t g =
  if t < 1 then invalid_arg "Sf_distributed.partition: t >= 1";
  let n = Graph.n g in
  let cluster_of = Array.init n (fun v -> v) in
  let parent = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let roots = ref (Array.init n (fun v -> v)) in
  let real_rounds = ref 0 in
  let messages = ref 0 in
  let waves = ref 0 in
  let tally (stats : Network.stats) =
    real_rounds := !real_rounds + stats.Network.rounds;
    messages := !messages + stats.Network.messages;
    incr waves
  in
  let iterations =
    if t = 1 then 0 else int_of_float (ceil (Float.log2 (float_of_int t)))
  in
  for i = 1 to iterations do
    let nc = Array.length !roots in
    let part =
      { Cp.cluster_of = Array.copy cluster_of; parent = Array.copy parent;
        roots = Array.copy !roots }
    in
    (* (1) sizes: one convergecast wave. *)
    let size, s = Cp.sum_to_roots g part ~values:(Array.make n 1) in
    tally s;
    (* (2) minimum boundary edges: one convergecast wave. *)
    let min_edges, s = Cp.min_boundary_edges g part in
    tally s;
    let out_eid =
      Array.map (function Some (_, eid) -> eid | None -> -1) min_edges
    in
    (* successor ids: the out-edge endpoint reads its neighbour's cluster
       from the wave hello and convergecasts it. *)
    let succ_pairs, s =
      Cp.reduce_to_roots g part ~annotation:(Array.make n 0)
        ~local:(fun g me ~nbrs ->
          let best = ref none_pair in
          Graph.iter_adj g me (fun u eid ->
              if eid = out_eid.(cluster_of.(me)) then
                List.iter
                  (fun (s, c, _) ->
                    if s = u && c <> cluster_of.(me) then best := min !best (c, 0))
                  nbrs);
          !best)
        ~merge:min ~identity:none_pair
    in
    tally s;
    let succ =
      Array.map (fun (c, _) -> if c = max_int then -1 else c) succ_pairs
    in
    (* Fetch, over the network, a per-cluster value of the successor:
       broadcast the value to members, then the out-edge endpoint reads the
       neighbour's annotation and convergecasts it. *)
    let fetch_succ values =
      let vertex_val, s1 = Cp.broadcast_from_roots g part ~values in
      tally s1;
      let got, s2 =
        Cp.reduce_to_roots g part ~annotation:vertex_val
          ~local:(fun g me ~nbrs ->
            let best = ref none_pair in
            Graph.iter_adj g me (fun u eid ->
                if eid = out_eid.(cluster_of.(me)) then
                  List.iter
                    (fun (s, c, a) ->
                      if s = u && c <> cluster_of.(me) then
                        best := min !best (a, 0))
                    nbrs);
            !best)
          ~merge:min ~identity:none_pair
      in
      tally s2;
      Array.map (fun (a, _) -> if a = max_int then -1 else a) got
    in
    (* (3) 3-colouring: Cole–Vishkin at cluster level, one colour broadcast
       + one successor fetch per step. *)
    let forest_parent = Coloring.Steps.to_forest ~n:nc ~succ in
    let colors = ref (Array.init nc (fun c -> c)) in
    let max_color () = Array.fold_left max 0 !colors in
    while max_color () >= 6 do
      ignore (fetch_succ !colors);
      colors := Coloring.Steps.cv_step ~parent:forest_parent !colors
    done;
    List.iter
      (fun c ->
        ignore (fetch_succ !colors);
        let shifted = Coloring.Steps.shift_down ~parent:forest_parent !colors in
        ignore (fetch_succ shifted);
        colors :=
          Coloring.Steps.eliminate ~parent:forest_parent ~old_colors:!colors
            ~shifted c)
      [ 5; 4; 3 ];
    let colors = !colors in
    let threshold = 1 lsl i in
    let small c = size.(c) < threshold && succ.(c) >= 0 in
    (* (4) maximal matching by colour sweeps; proposals and acceptances
       travel as relay waves. *)
    let mate = Array.make nc (-1) in
    for q = 0 to 2 do
      (* successor status: is it a small unmatched cluster right now? *)
      let status =
        Array.init nc (fun c -> if small c && mate.(c) = -1 then 1 else 0)
      in
      let succ_status = fetch_succ status in
      (* proposal wave: proposers broadcast their out-edge id; the target
         convergecasts the minimum proposer. *)
      let proposing c =
        colors.(c) = q && small c && mate.(c) = -1 && succ_status.(c) = 1
      in
      let prop_values =
        Array.init nc (fun c -> if proposing c then out_eid.(c) else -1)
      in
      let vertex_prop, s1 = Cp.broadcast_from_roots g part ~values:prop_values in
      tally s1;
      let proposals, s2 =
        Cp.reduce_to_roots g part ~annotation:vertex_prop
          ~local:(fun g me ~nbrs ->
            let best = ref none_pair in
            Graph.iter_adj g me (fun u eid ->
                List.iter
                  (fun (s, c, a) ->
                    if s = u && a = eid && c <> cluster_of.(me) then
                      best := min !best (c, 0))
                  nbrs);
            !best)
          ~merge:min ~identity:none_pair
      in
      tally s2;
      for d = 0 to nc - 1 do
        let p, _ = proposals.(d) in
        if p <> max_int && mate.(d) = -1 && small d && proposing p
           && succ.(p) = d
        then begin
          mate.(d) <- p;
          mate.(p) <- d
        end
      done;
      (* acceptance relay back to the proposers (information already
         derived above; executed for round fidelity). *)
      let chosen =
        Array.init nc (fun d -> if mate.(d) >= 0 then mate.(d) else -1)
      in
      ignore (fetch_succ chosen)
    done;
    (* (5) merge — identical rules and tie-breaking to the centralized
       implementation. *)
    let new_of = Array.make nc (-1) in
    let merge_src = Array.make nc false in
    let new_roots = ref [] in
    let n_new = ref 0 in
    let fresh root =
      let id = !n_new in
      incr n_new;
      new_roots := root :: !new_roots;
      id
    in
    for c = 0 to nc - 1 do
      if not (small c) then new_of.(c) <- fresh !roots.(c)
    done;
    for c = 0 to nc - 1 do
      if small c && mate.(c) >= 0 && succ.(c) = mate.(c) && new_of.(c) = -1
         && new_of.(mate.(c)) = -1
      then begin
        let d = mate.(c) in
        let id = fresh !roots.(d) in
        new_of.(c) <- id;
        new_of.(d) <- id;
        merge_src.(c) <- true
      end
    done;
    let rec resolve c =
      if new_of.(c) >= 0 then new_of.(c)
      else begin
        merge_src.(c) <- true;
        assert (new_of.(succ.(c)) >= 0);
        let id = resolve succ.(c) in
        new_of.(c) <- id;
        id
      end
    in
    for c = 0 to nc - 1 do
      if new_of.(c) = -1 then ignore (resolve c)
    done;
    for c = 0 to nc - 1 do
      if merge_src.(c) then begin
        let eid = out_eid.(c) in
        let u, v = Graph.endpoints g eid in
        let mine, theirs = if cluster_of.(u) = c then (u, v) else (v, u) in
        reroot parent parent_eid mine;
        parent.(mine) <- theirs;
        parent_eid.(mine) <- eid
      end
    done;
    for v = 0 to n - 1 do
      cluster_of.(v) <- new_of.(cluster_of.(v))
    done;
    roots := Array.of_list (List.rev !new_roots);
    (* commit wave: new cluster ids reach every member over the merged
       trees. *)
    let part' =
      { Cp.cluster_of = Array.copy cluster_of; parent = Array.copy parent;
        roots = Array.copy !roots }
    in
    let ids, s =
      Cp.broadcast_from_roots g part'
        ~values:(Array.init (Array.length !roots) Fun.id)
    in
    tally s;
    Array.iteri (fun v id -> assert (id = cluster_of.(v))) ids
  done;
  let p =
    { Partition.g; cluster_of; parent; parent_eid; roots = !roots }
  in
  { partition = p; real_rounds = !real_rounds; messages = !messages;
    waves = !waves }
