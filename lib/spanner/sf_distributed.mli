open! Import

(** The stretch-friendly partition of Lemma 4.1 with all communication
    executed as message-passing waves on the CONGEST simulator.

    Where {!Stretch_friendly} simulates centrally and only *accounts*
    rounds, this driver obtains every piece of cross-cluster information by
    actually running a wave on {!Ultraspan_congest.Network} (via
    {!Ultraspan_congest.Cluster_programs}) and sums the *measured* rounds:

    - cluster sizes: one convergecast wave;
    - minimum boundary edges and successor ids: convergecast waves;
    - each Cole–Vishkin step: a broadcast of the current colour plus a
      relay wave fetching the successor cluster's colour;
    - each matching sweep: a proposal relay (broadcast of the proposer's
      out-edge id, minimum-proposal convergecast at the target) and an
      acceptance relay back;
    - the merge commit: a broadcast of the new cluster ids over the merged
      trees.

    Between waves the driver applies the same pure per-cluster step
    functions as the centralized implementation ({!Coloring.Steps}, the
    Lemma 4.1 merge rules), standing in for root-local computation on the
    wave-delivered values.  The output partition is identical to
    {!Stretch_friendly.partition} (same deterministic tie-breaking), which
    the tests check, and the measured total stays O(t log* n) rounds. *)

type outcome = {
  partition : Partition.t;
  real_rounds : int;  (** sum of measured rounds over all executed waves *)
  messages : int;
  waves : int;
}

val partition : t:int -> Graph.t -> outcome
(** Requires [t >= 1]. *)
