open! Import

(** Baswana–Sen as a genuine message-passing CONGEST program.

    The other spanner modules simulate centrally with round accounting; this
    one actually runs on {!Ultraspan_congest.Network}, under its enforced
    O(log n)-bit message bound, in O(1) communication rounds per iteration
    (2k + O(1) total — the [BS07] round complexity).

    The one liberty taken: cluster sampling uses {e shared pseudo-randomness}
    — every node evaluates the same hash h(cluster, iteration) drawn from
    {!Ultraspan_util.Hash_family}, so no node ever needs to be told which
    clusters were sampled.  The per-iteration protocol is then purely local:

    + broadcast round — every alive node tells each neighbour its current
      cluster id (dead edges are skipped);
    + decision round — every node in an unsampled cluster picks the first
      sampled adjacent cluster in (weight, edge-id) order, joins it (or
      dies), marks the paper's step-(2) edges as spanner edges, and sends
      "edge died" notices on the edges the paper kills.

    Output is distributed, as the model demands: each node ends up knowing
    which of its incident edges are in the spanner; {!run} collects that
    local knowledge into an edge mask. *)

type outcome = {
  spanner : Spanner.t;
  network_stats : Ultraspan_congest.Network.stats;
      (** real measured rounds/messages of the protocol run *)
}

val run :
  ?trace:Ultraspan_congest.Trace.t ->
  ?metrics:Ultraspan_util.Metrics.t ->
  ?engine:Ultraspan_congest.Network.engine ->
  ?backend:Ultraspan_congest.Network.backend ->
  ?jobs:int ->
  seed:int ->
  k:int ->
  Graph.t ->
  outcome
(** [run ~seed ~k g]: (2k-1)-spanner.  [seed] keys the shared hash family.
    Requires [k >= 1].  [trace] attaches a {!Ultraspan_congest.Trace} sink
    to the protocol run (pure observation); [engine], [backend] and [jobs]
    select the simulator message plane, delivery backend and domain budget
    (see {!Ultraspan_congest.Network.engine} and
    {!Ultraspan_congest.Network.backend}); [metrics]
    accumulates the simulator's deterministic run counters
    (see {!Ultraspan_congest.Network.run}). *)
