open! Import

let run ~k g =
  if k < 1 then invalid_arg "Greedy.run: k >= 1";
  let m = Graph.m g in
  let order = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (Graph.weight g a) (Graph.weight g b) in
      if c <> 0 then c else compare a b)
    order;
  let keep = Array.make m false in
  let alpha = (2 * k) - 1 in
  Array.iter
    (fun eid ->
      let u, v = Graph.endpoints g eid in
      let w = Graph.weight g eid in
      let d = Dijkstra.distance ~allow:(fun e -> keep.(e)) g u v in
      if d = Dijkstra.infinity || d > alpha * w then keep.(eid) <- true)
    order;
  (* Rounds: the greedy algorithm is sequential; charge the trivial
     simulation bound of one round per edge decision (it is a baseline,
     not a distributed algorithm). *)
  let rounds = Rounds.create () in
  Rounds.charge ~label:"greedy:sequential" rounds m;
  { Spanner.keep; rounds }

let girth_exceeds g keep c =
  (* For every kept edge, removing it must leave the endpoints at hop
     distance >= c - 1 in the kept subgraph (otherwise a short cycle
     exists). *)
  let ok = ref true in
  Array.iteri
    (fun eid kept ->
      if kept && !ok then begin
        let u, v = Graph.endpoints g eid in
        let dist =
          Bfs.distances ~allow:(fun e -> keep.(e) && e <> eid) g u
        in
        if dist.(v) <> -1 && dist.(v) + 1 <= c then ok := false
      end)
    keep;
  !ok
