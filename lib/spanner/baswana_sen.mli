open! Import

(** The randomized Baswana–Sen (2k-1)-spanner [BS07] — the baseline the
    paper derandomizes.

    k iterations; in iterations 1..k-1 each cluster is sampled independently
    with probability n^(-1/k); in iteration k nothing is sampled, so every
    vertex dies.  Expected size O(n^(1+1/k) k) on weighted graphs and
    O(nk + n^(1+1/k) log k) on unweighted ones; stretch at most 2k-1
    deterministically (Lemma 3.1). *)

type outcome = {
  spanner : Spanner.t;
  per_iteration : Bs_core.iteration_stats list;
}

val run : rng:Rng.t -> ?k:int -> Graph.t -> outcome
(** [run ~rng ~k g].  [k] defaults to [ceil(log2 n)] (the sparse-spanner
    regime).  Requires [k >= 1]. *)

val iterations :
  rng:Rng.t ->
  state:Bs_core.t ->
  p:float ->
  iters:int ->
  rounds:Rounds.t ->
  Bs_core.iteration_stats list
(** Lower-level: run [iters] sampled iterations with probability [p] on an
    existing state (no finishing iteration).  Used by the randomized
    (Pettie-style) variant of the linear-size construction. *)

val size_bound : n:int -> k:int -> weighted:bool -> float
(** The analytical expected-size bound (with explicit constants matching
    the analysis in Section 3), used by the statistical tests:
    weighted [4 n k / p + n^(1+1/k)], unweighted
    [2 n k + 4 n ln(k+1) / p + n^(1+1/k)] where [p = n^(-1/k)]. *)
