open! Import

type t = { keep : bool array; rounds : Rounds.t }

let empty g = { keep = Array.make (Graph.m g) false; rounds = Rounds.create () }

let of_eids g ?rounds eids =
  let t =
    {
      keep = Array.make (Graph.m g) false;
      rounds = (match rounds with Some r -> r | None -> Rounds.create ());
    }
  in
  List.iter
    (fun id ->
      if id < 0 || id >= Graph.m g then invalid_arg "Spanner.of_eids: bad id";
      t.keep.(id) <- true)
    eids;
  t

let size t = Array.fold_left (fun a k -> if k then a + 1 else a) 0 t.keep

let total_rounds t = Rounds.total t.rounds

let eids t =
  let acc = ref [] in
  for i = Array.length t.keep - 1 downto 0 do
    if t.keep.(i) then acc := i :: !acc
  done;
  !acc

let union a b =
  if Array.length a.keep <> Array.length b.keep then
    invalid_arg "Spanner.union: different graphs";
  let rounds = Rounds.create () in
  Rounds.merge_into rounds a.rounds;
  Rounds.merge_into rounds b.rounds;
  { keep = Array.mapi (fun i k -> k || b.keep.(i)) a.keep; rounds }

let add_eid t id = t.keep.(id) <- true

let mem t id = t.keep.(id)

let weight g t =
  let acc = ref 0 in
  Array.iteri (fun id k -> if k then acc := !acc + Graph.weight g id) t.keep;
  !acc

let lightness g t =
  let mst = Spanning_tree.forest_weight g (Spanning_tree.kruskal_mst g) in
  if mst = 0 then Float.nan else float_of_int (weight g t) /. float_of_int mst

let is_spanning g t = Connectivity.spans g t.keep

let max_stretch g t = Stretch_check.max_edge_stretch g t.keep

let validate g t ~alpha =
  if Array.length t.keep <> Graph.m g then Error "mask length mismatch"
  else if not (is_spanning g t) then Error "not spanning"
  else begin
    let s = max_stretch g t in
    if s <= alpha +. 1e-9 then Ok ()
    else Error (Printf.sprintf "stretch %.3f exceeds %.3f" s alpha)
  end
