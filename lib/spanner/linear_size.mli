open! Import

(** Linear-size spanners (Theorem 1.5; Appendix D).

    O(log* n) phases; phase i runs g_i Baswana–Sen iterations with sampling
    probability 1/x_i on the current cluster graph, then contracts the
    surviving clusters into the next phase's cluster graph (dead edges are
    dropped — their stretch is already certified by Lemma 3.1).  The
    iterated-logarithm schedule x_1, ..., x_P follows Appendix D with
    α₀ = 3 and the practical clamps documented in {!schedule}; the last
    phase is extended (if needed) so that the deterministic cluster-count
    guarantee of Lemma 3.3 forces every vertex to die, which is what
    certifies the final stretch.

    With [`Deterministic] sampling this is the paper's contribution
    (O(n) edges, stretch O(log n · 2^(log* n)) unweighted /
    O(log n · 4^(log* n)) weighted, polylog rounds); with [`Randomized]
    sampling it stands in for Pettie's randomized construction [Pet10]
    (Table 1's baseline). *)

type variant = Deterministic | Randomized of Rng.t

type phase_info = {
  phase : int;
  nodes : int;  (** cluster-graph size at phase start *)
  edges : int;
  x : float;
  g_iters : int;
  radius_bound : int;  (** bound on cluster radii in G entering this phase *)
}

type outcome = {
  spanner : Spanner.t;
  phases : phase_info list;
  stretch_bound : float;  (** s₁ = Π (2·g_i + 1) *)
}

val schedule : weighted:bool -> int -> (float * int) list
(** [(x_i, g_i)] pairs for a graph of the given size.  Exposed for tests:
    the x_i grow (roughly) as an exponential tower and Σ 1/x_i = O(1). *)

val run : ?variant:variant -> Graph.t -> outcome
(** Compute a sparse spanner with O(n) edges.  Weighted mode is detected
    from the graph.  [variant] defaults to [Deterministic]. *)
