open! Import

(** Spanners from low-diameter clusterings (Section 5, Appendix F).

    Two constructions for unweighted graphs:

    - {!sparse} (Theorem 1.7): O(log n) steps; each step clusters at least
      half of the remaining vertices with a 3-separated weak-diameter
      clustering, adds the cluster Steiner trees, and for each still
      unclustered vertex one edge into its (unique) neighbouring new
      cluster.  Size O(ξ_AVG·n), stretch O(D).

    - {!ultra_sparse} (Theorem F.1, Lemma F.2, Figure 1): like {!sparse},
      but each step starts from a 10t-separated clustering and grows each
      cluster to its smallest {e good cutting distance} — the first radius
      increment j < 4t at which the cluster's frontier holds at most
      |C|/t vertices — so that the total number of inter-cluster witness
      edges stays below n/t.  Clusters that never reach a good cutting
      distance are "bad" and dissolve back (at most ~1/5 of the step's
      vertices, so the unclustered count still decays geometrically).

    Both consume {!Ultraspan_decomp.Separated_clustering}; see DESIGN.md §3
    for the weak-vs-strong diameter substitution. *)

type step_info = {
  step : int;
  active_before : int;
  clustered : int;  (** vertices that ended in final clusters this step *)
  clusters_formed : int;
  bad_clusters : int;  (** only for {!ultra_sparse} *)
  inter_edges_added : int;
  max_cut_distance : int;  (** largest good cutting distance used *)
  xi_avg : float;  (** Steiner-tree overlap of this step's clustering *)
}

type outcome = {
  spanner : Spanner.t;
  steps : step_info list;
  max_tree_diameter : int;  (** measured bound on the stretch driver *)
  pram : Pram.t;
      (** PRAM work/depth ledger (Theorem 1.7's third bullet): each step
          charges O(m) work and O(D + log n) depth *)
}

val sparse : ?separation:int -> Graph.t -> outcome
(** Theorem 1.7.  [separation] defaults to 3.  Unweighted input. *)

val ultra_sparse : t:int -> Graph.t -> outcome
(** Theorem F.1 / Lemma F.2.  Requires [t >= 1].  Unweighted input. *)

val sparse_weighted : epsilon:float -> Graph.t -> Spanner.t
(** Theorem 1.8's sparse step: the folklore weight-class reduction over
    {!sparse} — an O(n·log n·log(U+1))-edge spanner of a weighted graph
    with stretch O((1+ε)·D), work-efficient (no conditional expectations).
    Feed it to {!Ultra_sparse.run} via [~sparse] to complete Theorem 1.8.
    Unweighted inputs skip the reduction. *)
