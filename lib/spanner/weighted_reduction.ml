open! Import

type outcome = { spanner : Spanner.t; classes : int }

let run ~unweighted ~epsilon g =
  if epsilon <= 0.0 then invalid_arg "Weighted_reduction.run: epsilon > 0";
  let m = Graph.m g in
  let base = 1.0 +. epsilon in
  let class_of w =
    if w <= 0 then invalid_arg "Weighted_reduction.run: weights must be positive";
    int_of_float (Float.floor (log (float_of_int w) /. log base))
  in
  (* Group edge ids per weight class. *)
  let buckets = Hashtbl.create 16 in
  Graph.iter_edges g (fun e ->
      let c = class_of e.Graph.w in
      let cur = Option.value ~default:[] (Hashtbl.find_opt buckets c) in
      Hashtbl.replace buckets c (e.Graph.id :: cur));
  let classes = List.sort compare (Hashtbl.fold (fun c _ l -> c :: l) buckets []) in
  let keep = Array.make m false in
  let rounds = Rounds.create () in
  List.iter
    (fun c ->
      let eids = Hashtbl.find buckets c in
      let mask = Array.make m false in
      List.iter (fun id -> mask.(id) <- true) eids;
      let sub, mapping = Graph.sub_with_mapping g mask in
      let sub = Graph.with_unit_weights sub in
      let sp = unweighted sub in
      (* classes run one after the other on a cluster graph (Theorem 1.8's
         remark), so round accounts add up *)
      Rounds.merge_into rounds sp.Spanner.rounds;
      Array.iteri
        (fun sub_eid kept -> if kept then keep.(mapping.(sub_eid)) <- true)
        sp.Spanner.keep)
    classes;
  { spanner = { Spanner.keep; rounds }; classes = List.length classes }
