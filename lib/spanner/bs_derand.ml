open! Import

type mode = Weighted | Unweighted

type ordering = Simple | Network_decomposition

type guarantee = {
  iteration : int;
  cluster_bound : int;
  clusters : int;
  edge_bound : float;
  edges_added : int;
  high_degree_died : int;
}

type outcome = { spanner : Spanner.t; guarantees : guarantee list }

let iota = 8.0

(* ln g, floored at 1 so the g = 1 and g = 2 cases stay meaningful. *)
let lng g = Float.max 1.0 (log (float_of_int g))

(* Expected contribution of one vertex to the utility, under independent
   sampling with the current per-cluster probabilities [qeff] (entries are
   p/4 when unfixed, 0.0 or 1.0 when fixed).

   Weighted (3.1):    b_v + n^5·h_v
   Unweighted (3.2):  d·[dies]·[d >= tau] + n^5·h_v

   where b_v = edges v adds, h_v = [d >= xi and v dies], and everything is
   conditioned on v's own cluster being unsampled (otherwise v does
   nothing), hence the (1 - q_own) outer factor and the forced 0
   probability for own-cluster entries inside the walk. *)
let vertex_contrib ~mode ~qeff ~n5 ~xi ~tau ~strict_before adj_v c_own =
  let d = Array.length adj_v in
  let q_own = qeff.(c_own) in
  if q_own >= 1.0 then 0.0
  else begin
    let e_b = ref 0.0 in
    let pnone = ref 1.0 in
    Array.iteri
      (fun i (_, _, c_i) ->
        let q_i = if c_i = c_own then 0.0 else qeff.(c_i) in
        (match mode with
        | Weighted ->
            e_b :=
              !e_b +. (q_i *. !pnone *. float_of_int (strict_before.(i) + 1))
        | Unweighted -> ());
        pnone := !pnone *. (1.0 -. q_i))
      adj_v;
    let p_die = !pnone in
    let b_term =
      match mode with
      | Weighted -> !e_b +. (p_die *. float_of_int d)
      | Unweighted -> if d >= tau then p_die *. float_of_int d else 0.0
    in
    let h_term = if d >= xi then n5 *. p_die else 0.0 in
    (1.0 -. q_own) *. (b_term +. h_term)
  end

(* For each vertex, strict_before.(i) = number of adjacency entries with
   weight strictly below entry i's weight (= index of the first entry with
   the same weight, since the array is sorted). *)
let strict_before_of adj_v =
  let d = Array.length adj_v in
  let out = Array.make d 0 in
  let block_start = ref 0 in
  for i = 1 to d - 1 do
    let w_prev, _, _ = adj_v.(i - 1) and w_i, _, _ = adj_v.(i) in
    if w_i > w_prev then block_start := i;
    out.(i) <- !block_start
  done;
  out

let seed_bits n0 =
  let l = Float.log2 (float_of_int (n0 + 2)) in
  int_of_float (ceil (l *. Float.log2 (l +. 2.0))) + 1

(* Choose the sampling vector for one iteration by conditional expectation. *)
let choose_sampling ~mode ~ordering ~state ~adj ~q ~kappa ~n5 ~xi ~tau =
  let g = Bs_core.graph state in
  let n = Graph.n g in
  let nc = Bs_core.n_clusters state in
  let cluster_of = Bs_core.cluster_of state in
  let qeff = Array.make nc q in
  (* Affected vertices per cluster: members plus adjacency toucher. *)
  let affected = Array.make nc [] in
  let strict = Array.make n [||] in
  for v = 0 to n - 1 do
    if Bs_core.vertex_alive state v then begin
      strict.(v) <- strict_before_of adj.(v);
      affected.(cluster_of.(v)) <- v :: affected.(cluster_of.(v));
      let last = ref (-1) in
      Array.iter
        (fun (_, _, c) ->
          if c <> cluster_of.(v) && c <> !last then begin
            affected.(c) <- v :: affected.(c);
            last := c
          end)
        adj.(v)
    end
  done;
  (* Deduplicate affected lists. *)
  let dedup l = List.sort_uniq compare l in
  let order =
    match ordering with
    | Simple -> (List.init nc (fun c -> c), None)
    | Network_decomposition ->
        let contraction = Bs_core.alive_quotient state in
        let nd =
          Network_decomposition.decompose ~separation:3
            contraction.Contraction.quotient
        in
        let keyed =
          List.init nc (fun c ->
              ( nd.Network_decomposition.color_of_cluster.(nd
                                                             .Network_decomposition
                                                             .cluster_of
                                                             .(c)),
                c ))
        in
        (List.map snd (List.sort compare keyed), Some nd)
  in
  let cluster_order, nd = order in
  let eval_affected j =
    List.fold_left
      (fun acc v ->
        acc
        +. vertex_contrib ~mode ~qeff ~n5 ~xi ~tau ~strict_before:strict.(v)
             adj.(v) cluster_of.(v))
      0.0
      (dedup affected.(j))
  in
  List.iter
    (fun j ->
      qeff.(j) <- 1.0;
      let e1 = kappa +. eval_affected j in
      qeff.(j) <- 0.0;
      let e0 = eval_affected j in
      qeff.(j) <- (if e1 < e0 then 1.0 else 0.0))
    cluster_order;
  (Array.map (fun x -> x >= 1.0) qeff, nd)

let simulate ?mode ?(ordering = Simple) ~state ~p ~iters ~rounds () =
  let g = Bs_core.graph state in
  if p <= 0.0 || p >= 1.0 then invalid_arg "Bs_derand.simulate: p in (0,1)";
  let mode =
    match mode with
    | Some m -> m
    | None -> if Graph.is_unit_weighted g then Unweighted else Weighted
  in
  let n0 = max 2 (Bs_core.n_clusters state) in
  let n0f = float_of_int n0 in
  let n5 = n0f ** 5.0 in
  let xi = int_of_float (ceil (40.0 *. log n0f /. p)) in
  let tau =
    int_of_float (ceil (4.0 *. lng iters /. p))
  in
  let q = p /. 4.0 in
  let bits = seed_bits n0 in
  let guarantees = ref [] in
  for i = 1 to iters do
    let adj = Bs_core.adjacency state in
    let kappa =
      match mode with
      | Weighted -> iota /. (p ** float_of_int (i + 1))
      | Unweighted ->
          iota *. lng iters /. (float_of_int iters *. (p ** float_of_int (i + 1)))
    in
    let sampled, nd =
      choose_sampling ~mode ~ordering ~state ~adj ~q ~kappa ~n5 ~xi ~tau
    in
    let stats =
      Bs_core.iteration ~adjacency:adj ~high_degree_threshold:xi
        ~tally_death_threshold:tau state ~sampled
    in
    (* Round accounting per Appendix C: per colour class, fix the seed bits
       one by one, each costing an aggregation over ND-cluster Steiner
       trees of depth (cluster radius + ND diameter). *)
    let n_colors, nd_diam =
      match nd with
      | Some d ->
          ( d.Network_decomposition.n_colors,
            2 * Network_decomposition.max_cluster_radius d )
      | None ->
          let l = int_of_float (ceil (Float.log2 n0f)) in
          (l + 1, 4 * l)
    in
    Rounds.span rounds (Printf.sprintf "iter-%d" i) (fun () ->
        Rounds.charge ~label:"bs-derand:fixing" rounds
          (n_colors * bits * ((2 * (i + nd_diam)) + 2));
        Rounds.charge_aggregate ~label:"bs:iteration" rounds ~radius:i);
    (* Lemma 3.3 guarantees, now deterministic facts. *)
    let cluster_bound =
      int_of_float (floor ((n0f *. (p ** float_of_int i)) +. 1e-6))
    in
    let edge_bound =
      match mode with
      | Weighted -> iota *. n0f /. p
      | Unweighted -> iota *. n0f *. lng iters /. (p *. float_of_int iters)
    in
    let counted_edges =
      match mode with
      | Weighted -> stats.Bs_core.edges_added
      | Unweighted -> stats.Bs_core.death_edges_above_tally
    in
    if stats.Bs_core.sampled_clusters > cluster_bound then
      failwith
        (Printf.sprintf
           "Bs_derand: cluster guarantee violated (iter %d: %d > %d)" i
           stats.Bs_core.sampled_clusters cluster_bound);
    if float_of_int counted_edges > edge_bound +. 1.0 then
      failwith
        (Printf.sprintf
           "Bs_derand: edge guarantee violated (iter %d: %d > %.1f)" i
           counted_edges edge_bound);
    if stats.Bs_core.high_degree_died > 0 then
      failwith
        (Printf.sprintf "Bs_derand: a high-degree vertex died (iter %d)" i);
    guarantees :=
      {
        iteration = i;
        cluster_bound;
        clusters = stats.Bs_core.sampled_clusters;
        edge_bound;
        edges_added = counted_edges;
        high_degree_died = stats.Bs_core.high_degree_died;
      }
      :: !guarantees
  done;
  List.rev !guarantees

let run ?(ordering = Simple) ?k g =
  let n = Graph.n g in
  let k =
    match k with
    | Some k -> k
    | None -> max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 n)))))
  in
  if k < 1 then invalid_arg "Bs_derand.run: k >= 1";
  let state = Bs_core.create g in
  let rounds = Rounds.create () in
  let guarantees =
    Rounds.span rounds "bs-derand" (fun () ->
        let guarantees =
          if k = 1 then []
          else begin
            let p = float_of_int (max 2 n) ** (-1.0 /. float_of_int k) in
            simulate ~ordering ~state ~p ~iters:(k - 1) ~rounds ()
          end
        in
        ignore (Bs_core.finish state);
        Rounds.charge_aggregate ~label:"bs:final" rounds ~radius:k;
        guarantees)
  in
  let spanner =
    { Spanner.keep = Array.copy (Bs_core.spanner_mask state); rounds }
  in
  { spanner; guarantees }

let size_bound ~n ~k ~weighted =
  let nf = float_of_int n and kf = float_of_int k in
  let p = nf ** (-1.0 /. kf) in
  let extremal = nf ** (1.0 +. (1.0 /. kf)) in
  let g = max 1 (k - 1) in
  if weighted then (iota *. nf *. float_of_int g /. p) +. extremal
  else
    (nf *. float_of_int g)
    +. (4.0 *. nf *. lng g /. p)
    +. (iota *. nf *. lng g /. p)
    +. extremal
