open! Import

(** Folklore reduction from weighted to unweighted spanners (Section 1.1).

    Round each weight up to the next power of (1+ε), split the edges into
    weight classes, run an unweighted spanner algorithm per class, and take
    the union.  Stretch grows by (1+ε); the edge count multiplies by the
    number of classes O(log_{1+ε} U) — which is exactly why the paper's
    direct weighted constructions matter (the bench's T3 experiment shows
    the gap). *)

type outcome = {
  spanner : Spanner.t;
  classes : int;  (** number of non-empty weight classes *)
}

val run :
  unweighted:(Graph.t -> Spanner.t) ->
  epsilon:float ->
  Graph.t ->
  outcome
(** Requires [epsilon > 0] and positive weights. *)
