open! Import

type outcome = {
  spanner : Spanner.t;
  per_iteration : Bs_core.iteration_stats list;
}

let default_k n = max 1 (int_of_float (ceil (Float.log2 (float_of_int (max 2 n)))))

let iterations ~rng ~state ~p ~iters ~rounds =
  let stats = ref [] in
  for _ = 1 to iters do
    let nc = Bs_core.n_clusters state in
    let sampled = Array.init nc (fun _ -> Rng.bernoulli rng p) in
    let st = Bs_core.iteration state ~sampled in
    Rounds.charge_aggregate ~label:"bs:iteration" rounds
      ~radius:(Bs_core.completed_iterations state);
    stats := st :: !stats
  done;
  List.rev !stats

let run ~rng ?k g =
  let n = Graph.n g in
  let k = match k with Some k -> k | None -> default_k n in
  if k < 1 then invalid_arg "Baswana_sen.run: k >= 1";
  let p = float_of_int (max 2 n) ** (-1.0 /. float_of_int k) in
  let state = Bs_core.create g in
  let rounds = Rounds.create () in
  let stats, last =
    Rounds.span rounds "baswana-sen" (fun () ->
        let stats = iterations ~rng ~state ~p ~iters:(k - 1) ~rounds in
        let last = Bs_core.finish state in
        Rounds.charge_aggregate ~label:"bs:final" rounds ~radius:k;
        (stats, last))
  in
  let spanner =
    { Spanner.keep = Array.copy (Bs_core.spanner_mask state); rounds }
  in
  { spanner; per_iteration = stats @ [ last ] }

let size_bound ~n ~k ~weighted =
  let nf = float_of_int n and kf = float_of_int k in
  let p = nf ** (-1.0 /. kf) in
  let extremal = nf ** (1.0 +. (1.0 /. kf)) in
  if weighted then (4.0 *. nf *. kf /. p) +. extremal
  else (2.0 *. nf *. kf) +. (4.0 *. nf *. log (kf +. 1.0) /. p) +. extremal
