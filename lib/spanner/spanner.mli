open! Import

(** Common result type and validation for spanner algorithms.

    Every construction in this library returns a {!t}: a mask over the input
    graph's edge ids plus the simulated CONGEST round account.  Validation
    (subgraph, spanning, stretch) is shared here and exercised heavily by
    the test-suite. *)

type t = {
  keep : bool array;  (** edge id -> kept in the spanner *)
  rounds : Rounds.t;  (** simulated round account *)
}

val of_eids : Graph.t -> ?rounds:Rounds.t -> int list -> t

val empty : Graph.t -> t

val size : t -> int
(** Number of kept edges. *)

val total_rounds : t -> int

val eids : t -> int list

val union : t -> t -> t
(** Edge-wise union; round accounts are summed (sequential composition). *)

val add_eid : t -> int -> unit

val mem : t -> int -> bool

val weight : Graph.t -> t -> int
(** Total weight of kept edges. *)

val lightness : Graph.t -> t -> float
(** Total kept weight divided by the minimum spanning forest weight of the
    input — the standard "lightness" measure of spanner quality.
    [nan] on edgeless graphs. *)

val is_spanning : Graph.t -> t -> bool
(** Kept edges preserve the connected components of the input ("skeleton"
    property). *)

val max_stretch : Graph.t -> t -> float
(** Exact stretch (see {!Ultraspan_graph.Stretch.max_edge_stretch}). *)

val validate : Graph.t -> t -> alpha:float -> (unit, string) result
(** Spanning + stretch <= alpha. *)
