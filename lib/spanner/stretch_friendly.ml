open! Import

type info = { iterations : int; cv_iterations : int; rounds : Rounds.t }

type merge_strategy = Matched | Naive_star

(* Re-root the tree of one cluster at [new_root]: reverse the parent
   pointers along the path from [new_root] to the old root. *)
let reroot parent parent_eid new_root =
  let rec go v prev prev_eid =
    let next = parent.(v) in
    let next_eid = parent_eid.(v) in
    parent.(v) <- prev;
    parent_eid.(v) <- prev_eid;
    if next <> -1 then go next v next_eid
  in
  go new_root (-1) (-1)

let partition_with_strategy ~strategy ~t g =
  if t < 1 then invalid_arg "Stretch_friendly.partition: t >= 1";
  let n = Graph.n g in
  let rounds = Rounds.create () in
  let cluster_of = Array.init n (fun v -> v) in
  let parent = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let roots = ref (Array.init n (fun v -> v)) in
  let cv_total = ref 0 in
  let iterations =
    if t = 1 then 0
    else int_of_float (ceil (Float.log2 (float_of_int t)))
  in
  for i = 1 to iterations do
    let nc = Array.length !roots in
    (* (1) sizes *)
    let size = Array.make nc 0 in
    Array.iter (fun c -> size.(c) <- size.(c) + 1) cluster_of;
    (* (2) minimum boundary edge per cluster, oriented out *)
    let best : (int * int) array = Array.make nc (max_int, max_int) in
    Graph.iter_edges g (fun e ->
        let cu = cluster_of.(e.Graph.u) and cv = cluster_of.(e.Graph.v) in
        if cu <> cv then begin
          let key = (e.Graph.w, e.Graph.id) in
          if key < best.(cu) then best.(cu) <- key;
          if key < best.(cv) then best.(cv) <- key
        end);
    let succ = Array.make nc (-1) in
    let out_eid = Array.make nc (-1) in
    for c = 0 to nc - 1 do
      let _, eid = best.(c) in
      if eid <> max_int then begin
        out_eid.(c) <- eid;
        let u, v = Graph.endpoints g eid in
        succ.(c) <- (if cluster_of.(u) = c then cluster_of.(v) else cluster_of.(u))
      end
    done;
    (* (3) 3-colouring of the pointer graph *)
    let coloring = Coloring.three_color ~n:nc ~succ in
    cv_total := !cv_total + coloring.Coloring.iterations;
    let colors = coloring.Coloring.colors in
    let threshold = 1 lsl i in
    let small c = size.(c) < threshold && succ.(c) >= 0 in
    (* (4) maximal matching between small clusters along pointer edges,
       one colour class at a time (proposer and target always differ in
       colour since the colouring is proper on pointer edges). *)
    let mate = Array.make nc (-1) in
    (match strategy with
    | Naive_star -> ()
    | Matched ->
        for q = 0 to 2 do
          let proposals = Array.make nc [] in
          for c = 0 to nc - 1 do
            if colors.(c) = q && small c && mate.(c) = -1 then begin
              let d = succ.(c) in
              if small d && mate.(d) = -1 then proposals.(d) <- c :: proposals.(d)
            end
          done;
          for d = 0 to nc - 1 do
            if mate.(d) = -1 then begin
              match List.sort compare proposals.(d) with
              | [] -> ()
              | c :: _ ->
                  mate.(d) <- c;
                  mate.(c) <- d
            end
          done
        done);
    (* (5) merge.  new_of.(c): the new cluster id of old cluster c.  Merge
       targets: matched pairs take the pointer target's root; large (or
       exempt) clusters stand alone; remaining small clusters follow their
       pointer (in the Matched strategy the target is immediately a
       standing cluster; in Naive_star pointers may chain, so we resolve
       them to their sink). *)
    let new_of = Array.make nc (-1) in
    (* merge_src.(c): cluster c merges along its own pointer edge, so its
       tree is re-rooted at its endpoint and hung off the other side. *)
    let merge_src = Array.make nc false in
    let new_roots = ref [] in
    let n_new = ref 0 in
    let fresh root =
      let id = !n_new in
      incr n_new;
      new_roots := root :: !new_roots;
      id
    in
    (* Standing clusters: large/exempt ones stand alone. *)
    for c = 0 to nc - 1 do
      if not (small c) then new_of.(c) <- fresh !roots.(c)
    done;
    (* Matched pairs: the proposer side (first in id order for mutual
       pointers) merges along its edge; the pair is rooted at the target's
       root. *)
    for c = 0 to nc - 1 do
      if small c && mate.(c) >= 0 && succ.(c) = mate.(c) && new_of.(c) = -1
         && new_of.(mate.(c)) = -1
      then begin
        let d = mate.(c) in
        let id = fresh !roots.(d) in
        new_of.(c) <- id;
        new_of.(d) <- id;
        merge_src.(c) <- true
      end
    done;
    (* Naive_star has no matching, so mutual small 2-cycles must still be
       collapsed into standing pairs to give the pointer chains a sink. *)
    (match strategy with
    | Matched -> ()
    | Naive_star ->
        for c = 0 to nc - 1 do
          if
            small c && new_of.(c) = -1 && succ.(c) >= 0
            && succ.(c) < nc && small succ.(c)
            && succ.(succ.(c)) = c
            && new_of.(succ.(c)) = -1
            && c < succ.(c)
          then begin
            let d = succ.(c) in
            let id = fresh !roots.(d) in
            new_of.(c) <- id;
            new_of.(d) <- id;
            merge_src.(c) <- true
          end
        done);
    (* Remaining small clusters follow pointers to a standing cluster. *)
    let rec resolve c =
      if new_of.(c) >= 0 then new_of.(c)
      else begin
        merge_src.(c) <- true;
        (match strategy with
        | Matched ->
            (* Maximality of the matching: the target already stands. *)
            assert (new_of.(succ.(c)) >= 0)
        | Naive_star -> ());
        let id = resolve succ.(c) in
        new_of.(c) <- id;
        id
      end
    in
    for c = 0 to nc - 1 do
      if new_of.(c) = -1 then ignore (resolve c)
    done;
    (* Tree surgery. *)
    for c = 0 to nc - 1 do
      if merge_src.(c) then begin
        let eid = out_eid.(c) in
        let u, v = Graph.endpoints g eid in
        let mine, theirs = if cluster_of.(u) = c then (u, v) else (v, u) in
        reroot parent parent_eid mine;
        parent.(mine) <- theirs;
        parent_eid.(mine) <- eid
      end
    done;
    (* Commit the new clustering. *)
    for v = 0 to n - 1 do
      cluster_of.(v) <- new_of.(cluster_of.(v))
    done;
    roots := Array.of_list (List.rev !new_roots);
    Rounds.span rounds "stretch-friendly" (fun () ->
        Rounds.span rounds (Printf.sprintf "iter-%d" i) (fun () ->
            Rounds.charge ~label:"sf:iteration" rounds
              ((2 * 3 * (1 lsl i)) + (coloring.Coloring.iterations + 6))));
    ignore coloring
  done;
  let p =
    {
      Partition.g;
      cluster_of;
      parent;
      parent_eid;
      roots = !roots;
    }
  in
  (p, { iterations; cv_iterations = !cv_total; rounds })

let partition ~t g = partition_with_strategy ~strategy:Matched ~t g

(* Definition 3.4, checked exactly.  For each cluster, walk every vertex's
   tree path computing the maximum edge weight from the root down
   (max_to_root); then:
   - boundary edge {u∉C, v∈C} of weight w: max_to_root v <= w;
   - inside edge {u,v∈C} of weight w: max weight on the tree path u..v
     <= w, computed via the max-to-LCA trick using depths. *)
let is_stretch_friendly_subset g (p : Partition.t) ~consider =
  let n = Graph.n g in
  let depth = Partition.depths p in
  let max_up = Array.make n 0 in
  (* max edge weight on the path from v to the root *)
  let computed = Array.make n false in
  let rec fill v =
    if not computed.(v) then begin
      computed.(v) <- true;
      if p.Partition.parent.(v) <> -1 then begin
        fill p.Partition.parent.(v);
        max_up.(v) <-
          max
            (Graph.weight g p.Partition.parent_eid.(v))
            max_up.(p.Partition.parent.(v))
      end
    end
  in
  for v = 0 to n - 1 do
    if p.Partition.cluster_of.(v) >= 0 then fill v
  done;
  let path_max u v =
    (* max edge weight on the tree path between u and v (same cluster) *)
    let rec go u v acc =
      if u = v then acc
      else if depth.(u) >= depth.(v) then
        go p.Partition.parent.(u) v
          (max acc (Graph.weight g p.Partition.parent_eid.(u)))
      else
        go u p.Partition.parent.(v)
          (max acc (Graph.weight g p.Partition.parent_eid.(v)))
    in
    go u v 0
  in
  let ok = ref true in
  Graph.iter_edges g (fun e ->
      if consider e.Graph.id then begin
      let cu = p.Partition.cluster_of.(e.Graph.u)
      and cv = p.Partition.cluster_of.(e.Graph.v) in
      if cu >= 0 && cv >= 0 && cu = cv then begin
        (* inside edge *)
        if path_max e.Graph.u e.Graph.v > e.Graph.w then ok := false
      end
      else begin
        (* boundary edge of each clustered side *)
        if cu >= 0 && max_up.(e.Graph.u) > e.Graph.w then ok := false;
        if cv >= 0 && max_up.(e.Graph.v) > e.Graph.w then ok := false
      end
      end);
  !ok

let is_stretch_friendly g p =
  is_stretch_friendly_subset g p ~consider:(fun _ -> true)

let is_stretch_friendly_alive g state =
  let p = Bs_core.partition state in
  is_stretch_friendly_subset g p ~consider:(fun eid ->
      Bs_core.edge_alive state eid
      &&
      let u, v = Graph.endpoints g eid in
      Bs_core.vertex_alive state u && Bs_core.vertex_alive state v)
