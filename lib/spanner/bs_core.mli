open! Import

(** The Baswana–Sen iteration engine (Section 3 of the paper).

    One value of type {!t} tracks the full state of a Baswana–Sen run:
    which vertices and edges are alive, the current partition of the alive
    vertices into clusters with rooted trees (radius <= completed
    iterations), and the spanner built so far.  The engine is shared by the
    randomized algorithm ({!Baswana_sen}), the derandomized one
    ({!Bs_derand}) and the linear-size phases ({!Linear_size}): they differ
    only in how the per-iteration [sampled] vector is chosen, which is
    exactly the paper's point — Lemma 3.1's guarantees are deterministic
    "regardless of the way we sample clusters".

    Iteration semantics follow Section 3 steps (1)–(3) precisely, with ties
    among equal-weight edges broken by edge id (a fixed total order, needed
    for determinism). *)

type t

type adjacency = (int * int * int) array array
(** Per-vertex sorted array of [(weight, eid, cluster)] triples: the
    minimum alive edge into each adjacent cluster, ascending by
    (weight, eid).  Empty for dead vertices.  A vertex's own cluster
    appears if it has an alive edge into it. *)

type iteration_stats = {
  edges_added : int;
  died : int;
  joined : int;
  high_degree_died : int;  (** died with >= threshold adjacent clusters *)
  death_edges_above_tally : int;
      (** edges contributed by dying vertices whose adjacent-cluster count
          is >= the [tally_death_threshold] argument (the τ-nodes of the
          unweighted utility (3.2)) *)
  sampled_clusters : int;
  max_adjacent : int;
}

val create : Graph.t -> t
(** Fresh state: everything alive, trivial partition (one singleton cluster
    per vertex), empty spanner, zero completed iterations. *)

val graph : t -> Graph.t

val n_clusters : t -> int

val n_alive : t -> int

val completed_iterations : t -> int

val cluster_of : t -> int array
(** Current cluster per vertex ([-1] dead).  Do not mutate. *)

val roots : t -> int array

val adjacency : t -> adjacency
(** Compute the per-vertex adjacent-cluster structure of the current state
    (an O(m + n log n) scan).  Only unsampled-cluster vertices consult it
    during an iteration, but it is defined for every alive vertex. *)

val iteration :
  ?adjacency:adjacency ->
  ?high_degree_threshold:int ->
  ?tally_death_threshold:int ->
  t ->
  sampled:bool array ->
  iteration_stats
(** Execute one iteration with the given sampling decisions (length
    {!n_clusters}).  All reads are against the pre-iteration snapshot, as
    in the synchronous distributed algorithm.  Passing [adjacency] avoids
    recomputing it when the caller (the derandomizer) already has it. *)

val finish : t -> iteration_stats
(** The last iteration: nothing sampled, so every remaining vertex dies and
    contributes its minimum edge per adjacent cluster. *)

val spanner_mask : t -> bool array
(** The spanner so far (live reference; treat as read-only). *)

val partition : t -> Partition.t
(** Current clustering of the alive vertices, with its rooted trees.  The
    trees' edges are already in the spanner (they were added as join
    edges). *)

val alive_quotient : t -> Contraction.t
(** Contract the current clusters, keeping only alive inter-cluster edges
    (dead edges already have their stretch certified by Lemma 3.1 and are
    dropped from further consideration, as in Theorem 1.5's proof). *)

val edge_alive : t -> int -> bool

val vertex_alive : t -> int -> bool

val death_iteration : t -> int array
(** Per edge, the iteration (1-based) in which it died; [-1] if still
    alive.  Lemma 3.1 promises that an edge dead since iteration i has
    spanner stretch at most 2i-1 — the tests check exactly that. *)
