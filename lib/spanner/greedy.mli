open! Import

(** The classic greedy (2k-1)-spanner of Althöfer et al. [ADD+93] — the
    centralized baseline against which the distributed constructions are
    compared.

    Edges are scanned in non-decreasing weight order; an edge (u,v,w) is
    kept iff the current spanner has d(u,v) > (2k-1)·w.  The output has
    girth > 2k, hence at most O(n^(1+1/k)) edges unconditionally, and its
    size is the best known for the stretch — but the algorithm is
    inherently sequential (each decision depends on all previous ones). *)

val run : k:int -> Graph.t -> Spanner.t
(** Exact greedy; point-to-point Dijkstra per edge, so O(m·(m + n log n)).
    Fine up to a few thousand vertices. *)

val girth_exceeds : Graph.t -> bool array -> int -> bool
(** [girth_exceeds g keep c]: the kept subgraph has no cycle of length
    <= c (hop count).  The defining property of greedy unweighted
    (2k-1)-spanners with c = 2k; used by the tests. *)
