open! Import

(** The Elkin–Neiman randomized (2k-1)-spanner [EN18] for unweighted
    graphs — Table 1's second baseline.

    Every vertex draws a shift r_u ~ Exp(ln n / k), truncated below k (the
    paper resamples / accepts an ε failure probability; truncation keeps
    the k-round structure deterministic).  Vertices then learn, over k
    synchronous rounds, the set C(v) = {u : r_u − d(u,v) >= m(v) − 1} where
    m(v) = max_u (r_u − d(u,v)), and add one edge toward each member of
    C(v) along a shortest path.  Expected size O(n^(1+1/k)) with constant
    probability; stretch <= 2k−1. *)

type outcome = {
  spanner : Spanner.t;
  max_table : int;  (** largest per-vertex candidate table over the run —
                        the CONGEST congestion this run would incur *)
}

val run : rng:Rng.t -> k:int -> Graph.t -> outcome
(** Requires an unweighted graph ([Invalid_argument] otherwise) and
    [k >= 1]. *)
