open! Import

(** Ultra-sparse spanners via the sparse-spanner reduction
    (Theorems 1.2 and 1.6).

    The reduction: build a stretch-friendly O(t')-partition with at most
    n/t' clusters (Lemma 4.1), contract it, run a sparse-spanner algorithm
    on the cluster graph, and return the partition's trees plus the pulled
    back cluster-graph spanner.  By Observation 3.5 the stretch multiplies
    by O(t'); the edge count is at most (n - 1) + (extra), where (extra) is
    the cluster-graph spanner's size.

    Because the sparse algorithm's constant s(n) is not known a priori, t'
    starts at t and doubles until (extra) <= n/t — the same "multiply t by
    a large enough constant" step as the paper's proof of Theorem 1.2, done
    adaptively.  The result therefore always satisfies
    |E(H)| <= n + n/t. *)

type outcome = {
  spanner : Spanner.t;
  t_inner : int;  (** the partition coarseness t' actually used *)
  partition_clusters : int;
  quotient_edges_kept : int;  (** the "extra" edges beyond the forest *)
  attempts : int;  (** doubling attempts *)
}

val run :
  ?sparse:(Graph.t -> Spanner.t) ->
  t:int ->
  Graph.t ->
  outcome
(** [run ~t g] computes a spanner with at most [n + n/t] edges.  [sparse]
    defaults to the deterministic linear-size algorithm of Theorem 1.5
    (making this Theorem 1.6); pass the randomized variant to reproduce
    Theorem 1.3.  Requires [t >= 1]. *)

val bound : n:int -> t:int -> int
(** n + n/t, the guaranteed size bound. *)
