open! Import

(** Derandomized Baswana–Sen (Lemma 3.3 / Theorem 1.4).

    Each iteration's cluster-sampling is chosen deterministically by the
    method of conditional expectations applied to the paper's utility
    functions (3.1) (weighted) and (3.2) (unweighted), evaluated under
    independent sampling with probability p/4.  Substitution note (see
    DESIGN.md §3): we fix the sampling indicators X_j one cluster at a time
    with exact closed-form conditional expectations, instead of fixing the
    seed bits of the Gopalan–Yehudayoff distribution; this realizes the
    identical guarantees of Lemma 3.3 in polynomial time.  Two constants
    deviate from the paper's prose, whose stated values are inconsistent
    with its own p/4 sampling rate: the high-degree threshold is
    ξ = 40·ln n / p (paper: 10·ln n / p) and the unweighted ignore
    threshold is τ = 4·ln g / p (paper: ln g / p); both only affect
    constants in the O(·) bounds.

    Deterministic guarantees, asserted by the implementation after every
    iteration (Lemma 3.3 (1)–(3)):
    - at most [8·n/p] spanner edges per iteration on weighted graphs, and
      at most [8·n·ln(g)/(p·g)] edges from dying high-adjacency vertices on
      unweighted ones;
    - at most [n·p^i] clusters after iteration i;
    - no vertex with ξ or more adjacent clusters ever dies. *)

type mode = Weighted | Unweighted

type ordering =
  | Simple
      (** fix clusters in id order; rounds are charged by the Appendix C
          formula without materializing the network decomposition *)
  | Network_decomposition
      (** group the fixing by colour classes of an actual decomposition of
          the cluster graph's square, as in Appendix C (slower; exercised
          by the tests to demonstrate fidelity) *)

type guarantee = {
  iteration : int;  (** 1-based within the simulated run *)
  cluster_bound : int;  (** floor(n0 · p^i) *)
  clusters : int;
  edge_bound : float;
  edges_added : int;
  high_degree_died : int;  (** must be 0 *)
}

val simulate :
  ?mode:mode ->
  ?ordering:ordering ->
  state:Bs_core.t ->
  p:float ->
  iters:int ->
  rounds:Rounds.t ->
  unit ->
  guarantee list
(** Lemma 3.3: deterministically simulate [iters] iterations of Baswana–Sen
    with sampling probability [p] on [state].  [mode] defaults to
    [Unweighted] iff the graph has unit weights.  Raises [Assert_failure]
    if a guarantee is violated (which would be a bug, not bad luck — there
    is no randomness left). *)

type outcome = {
  spanner : Spanner.t;
  guarantees : guarantee list;
}

val run : ?ordering:ordering -> ?k:int -> Graph.t -> outcome
(** Theorem 1.4: the deterministic (2k-1)-spanner.  [k] defaults to
    [ceil(log2 n)].  Runs k-1 derandomized iterations with p = n^(-1/k)
    followed by the deterministic finishing iteration. *)

val size_bound : n:int -> k:int -> weighted:bool -> float
(** Deterministic size bound with the implementation's constants:
    weighted [8nk/p + n^(1+1/k)]; unweighted
    [n(k-1) + 4·n·ln(k)/p + 8·n·ln(k)/p + n^(1+1/k)] — see the module
    comment for where each term comes from. *)
