open! Import

type variant = Deterministic | Randomized of Rng.t

type phase_info = {
  phase : int;
  nodes : int;
  edges : int;
  x : float;
  g_iters : int;
  radius_bound : int;
}

type outcome = {
  spanner : Spanner.t;
  phases : phase_info list;
  stretch_bound : float;
}

let alpha0 = 3.0

(* Iterated logs of n down to alpha0: arr.(0) = n, arr.(j) = log2 arr.(j-1).
   P is the largest index with arr.(P) >= alpha0 (paper notation
   log^(P) n >= alpha0). *)
let iterated_logs n =
  let rec go x acc = if x < alpha0 then List.rev (x :: acc) else go (Float.log2 x) (x :: acc) in
  go (float_of_int (max 4 n)) []

let g_of_x ~weighted x =
  let iw = if weighted then 1 else 0 in
  let lx = Float.max 1.0 (Float.log2 x) in
  let llx = Float.max 0.0 (Float.log2 lx) in
  let raw = float_of_int (1 + iw) *. x *. (1.0 +. (2.0 *. llx /. lx)) in
  max 1 (int_of_float (ceil raw))

let schedule ~weighted n =
  let arr = Array.of_list (iterated_logs n) in
  (* arr.(p) >= alpha0 > arr.(p+1); phases use x_i = arr.(p-i+1)/arr.(p-i+2)
     in paper indexing.  Here arr.(0) = n, arr.(j) = log^(j) n. *)
  let p = Array.length arr - 2 in
  if p < 1 then [ (2.0, g_of_x ~weighted 2.0) ]
  else
    List.init p (fun i ->
        (* i = 0 is phase 1: x_1 = log^(P) n / log^(P+1) n. *)
        let num = arr.(p - i) and den = arr.(p - i + 1) in
        let x = Float.max 2.0 (num /. Float.max 1.0 den) in
        (x, g_of_x ~weighted x))

let run ?(variant = Deterministic) g0 =
  let weighted = not (Graph.is_unit_weighted g0) in
  let sched = schedule ~weighted (Graph.n g0) in
  let n_phases = List.length sched in
  let rounds = Rounds.create () in
  let spanner_keep = Array.make (Graph.m g0) false in
  let phases = ref [] in
  let stretch_bound = ref 1.0 in
  (* to_base.(eid of current graph) = eid of g0 *)
  let current = ref g0 in
  let to_base = ref (Array.init (Graph.m g0) (fun i -> i)) in
  let radius_bound = ref 0 in
  let stop = ref false in
  Rounds.span rounds "linear-size" (fun () ->
  List.iteri
    (fun idx (x, g_iters) ->
      if not !stop then
        Rounds.span rounds (Printf.sprintf "phase-%d" (idx + 1)) (fun () ->
        let gi = !current in
        let last_phase = idx = n_phases - 1 in
        let n_i = Graph.n gi in
        (* Make sure the last phase kills everyone: the deterministic
           cluster bound n·p^g < 1 needs g > log n / log x. *)
        let g_iters =
          if last_phase then
            max g_iters
              (1 + int_of_float (ceil (log (float_of_int (n_i + 1)) /. log x)))
          else g_iters
        in
        phases :=
          {
            phase = idx + 1;
            nodes = n_i;
            edges = Graph.m gi;
            x;
            g_iters;
            radius_bound = !radius_bound;
          }
          :: !phases;
        stretch_bound := !stretch_bound *. float_of_int ((2 * g_iters) + 1);
        let state = Bs_core.create gi in
        let p = 1.0 /. x in
        let phase_rounds = Rounds.create () in
        (match variant with
        | Deterministic ->
            ignore
              (Bs_derand.simulate ~state ~p ~iters:g_iters ~rounds:phase_rounds ())
        | Randomized rng ->
            ignore
              (Baswana_sen.iterations ~rng ~state ~p ~iters:g_iters
                 ~rounds:phase_rounds));
        if last_phase && Bs_core.n_clusters state > 0 then begin
          (* Randomized variant may leave survivors; the explicit finishing
             iteration (nobody sampled) kills them, as in plain BS. *)
          ignore (Bs_core.finish state);
          Rounds.charge_aggregate ~label:"linear:final" phase_rounds
            ~radius:g_iters
        end;
        (* Cluster-graph dilation: each simulated round on the cluster
           graph costs up to (2·radius+1) rounds on G. *)
        Rounds.charge
          ~label:(Printf.sprintf "linear:phase%d" (idx + 1))
          rounds
          (Rounds.total phase_rounds * ((2 * !radius_bound) + 1));
        (* Collect this phase's spanner edges, translated back to g0. *)
        Array.iteri
          (fun eid kept -> if kept then spanner_keep.(!to_base.(eid)) <- true)
          (Bs_core.spanner_mask state);
        if not last_phase then begin
          let contraction = Bs_core.alive_quotient state in
          let q = contraction.Contraction.quotient in
          if Graph.n q = 0 || Graph.m q = 0 then begin
            (* Everything died (or no inter-cluster edges remain): the
               remaining clusters' trees are already in the spanner. *)
            ignore (Bs_core.finish state);
            Array.iteri
              (fun eid kept ->
                if kept then spanner_keep.(!to_base.(eid)) <- true)
              (Bs_core.spanner_mask state);
            stop := true
          end
          else begin
            let old_to_base = !to_base in
            to_base :=
              Array.map
                (fun base_eid -> old_to_base.(base_eid))
                contraction.Contraction.repr_eid;
            current := q;
            radius_bound := ((2 * g_iters) + 1) * (!radius_bound + 1)
          end
        end))
    sched);
  let spanner = { Spanner.keep = spanner_keep; rounds } in
  { spanner; phases = List.rev !phases; stretch_bound = !stretch_bound }
