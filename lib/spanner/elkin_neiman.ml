open! Import

type outcome = { spanner : Spanner.t; max_table : int }

let run ~rng ~k g =
  if k < 1 then invalid_arg "Elkin_neiman.run: k >= 1";
  if not (Graph.is_unit_weighted g) then
    invalid_arg "Elkin_neiman.run: unweighted graphs only";
  let n = Graph.n g in
  if n = 0 then { spanner = Spanner.empty g; max_table = 0 }
  else begin
    let beta = log (float_of_int (max 2 n)) /. float_of_int k in
    let kf = float_of_int k in
    let shift () =
      let x = -.log (Float.max 1e-300 (Rng.float rng 1.0)) /. beta in
      Float.min x (kf -. 0.5)
    in
    let r = Array.init n (fun _ -> shift ()) in
    (* table.(v): u -> r_u - d(u,v), for the candidates surviving the
       "within 1 of the maximum" pruning rule. *)
    let table = Array.init n (fun v -> [ (v, r.(v)) ]) in
    let max_table = ref 1 in
    let prune entries =
      let best = List.fold_left (fun a (_, x) -> Float.max a x) neg_infinity entries in
      List.filter (fun (_, x) -> x >= best -. 1.0) entries
    in
    (* Values must travel d(u,v) <= r_u + 1 < k + 1 hops, so k rounds. *)
    for _round = 1 to k do
      let next = Array.make n [] in
      for v = 0 to n - 1 do
        (* Merge own table with neighbours' decremented tables. *)
        let merged = Hashtbl.create 8 in
        let absorb (u, x) =
          match Hashtbl.find_opt merged u with
          | Some y when y >= x -> ()
          | _ -> Hashtbl.replace merged u x
        in
        List.iter absorb table.(v);
        Graph.iter_adj g v (fun w _ ->
            List.iter (fun (u, x) -> absorb (u, x -. 1.0)) table.(w));
        let entries = Hashtbl.fold (fun u x acc -> (u, x) :: acc) merged [] in
        (* Keep values down to -1: the broadcast travels one hop past the
           ball radius, and the within-1-of-max rule can select them. *)
        let entries = prune (List.filter (fun (_, x) -> x >= -1.0) entries) in
        next.(v) <- List.sort compare entries;
        if List.length entries > !max_table then
          max_table := List.length entries
      done;
      Array.blit next 0 table 0 n
    done;
    (* Edge rule: for each candidate u of v (u <> v), keep one edge toward
       a neighbour w whose value for u exceeds v's by exactly 1. *)
    let keep = Array.make (Graph.m g) false in
    for v = 0 to n - 1 do
      List.iter
        (fun (u, x) ->
          if u <> v then begin
            let chosen = ref (-1) in
            Graph.iter_adj g v (fun w eid ->
                if !chosen = -1 then
                  match List.assoc_opt u table.(w) with
                  | Some y when y >= x +. 1.0 -. 1e-9 -> chosen := eid
                  | _ -> ())
            (* u may be v's own neighbour: the direct edge qualifies since
               table.(u) contains (u, r_u). *);
            if !chosen >= 0 then keep.(!chosen) <- true
          end)
        table.(v)
    done;
    let rounds = Rounds.create () in
    Rounds.charge ~label:"en:broadcast" rounds (k * !max_table);
    ({ spanner = { Spanner.keep; rounds }; max_table = !max_table } : outcome)
  end
