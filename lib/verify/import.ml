(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Generators = Ultraspan_graph.Generators
module Stretch = Ultraspan_graph.Stretch
module Connectivity = Ultraspan_graph.Connectivity
module Network = Ultraspan_congest.Network
module Checkers = Ultraspan_congest.Checkers
module Spanner = Ultraspan_spanner.Spanner
module Bs_derand = Ultraspan_spanner.Bs_derand
module Certificate = Ultraspan_certificate.Certificate
module Thurimella = Ultraspan_certificate.Thurimella
module Nagamochi_ibaraki = Ultraspan_certificate.Nagamochi_ibaraki
module Util = Ultraspan_util
module Rng = Ultraspan_util.Rng
