open! Import

type mode = Local | Exact | Probe

let mode_of_string = function
  | "local" -> Ok Local
  | "exact" -> Ok Exact
  | "probe" -> Ok Probe
  | s ->
      Error
        (Printf.sprintf "unknown verify mode %S (expected local, exact or probe)"
           s)

let mode_name = function Local -> "local" | Exact -> "exact" | Probe -> "probe"

type verdict = {
  target : string;
  mode : mode;
  ok : bool;
  rejects : int;
  rounds : int;
  messages : int;
  max_words : int;
  queries : int;
  note : string;
}

let pp_verdict ppf v =
  Format.fprintf ppf
    "%s %s: %s rejects=%d rounds=%d msgs=%d words=%d queries=%d%s" v.target
    (mode_name v.mode)
    (if v.ok then "accept" else "reject")
    v.rejects v.rounds v.messages v.max_words v.queries
    (if v.note = "" then "" else " [" ^ v.note ^ "]")

let count_rejects accept =
  Array.fold_left (fun a b -> if b then a else a + 1) 0 accept

let base target mode =
  {
    target;
    mode;
    ok = false;
    rejects = 0;
    rounds = 0;
    messages = 0;
    max_words = 0;
    queries = 0;
    note = "";
  }

let of_checker target (cv : Checkers.verdict) note =
  {
    (base target Local) with
    ok = Checkers.all_accept cv;
    rejects = count_rejects cv.Checkers.accept;
    rounds = cv.Checkers.stats.Network.rounds;
    messages = cv.Checkers.stats.Network.messages;
    max_words = cv.Checkers.stats.Network.max_words;
    note;
  }

let of_probe target (r : Eps_far.report) =
  let note =
    match r.Eps_far.witness with
    | Some (v, size) ->
        Printf.sprintf "disconnected: component of %d vertex(es) around %d"
          size v
    | None -> ""
  in
  {
    (base target Probe) with
    ok = r.Eps_far.accepted;
    queries = r.Eps_far.vertex_queries + r.Eps_far.edge_queries;
    note;
  }

let spanner ?engine ?backend ?jobs ?(seed = 1) ?(epsilon = 0.1) ~mode ~k g sp =
  match mode with
  | Local ->
      let w = Witness.spanner g ~k sp in
      let cv =
        Checkers.spanner ?engine ?backend ?jobs g ~keep:sp.Spanner.keep ~k
          ~detour:w.Witness.detour
      in
      let note =
        if w.Witness.missing > 0 then
          Printf.sprintf "%d detour witness(es) missing" w.Witness.missing
        else ""
      in
      of_checker "spanner" cv note
  | Exact -> (
      match Spanner.validate g sp ~alpha:(float_of_int ((2 * k) - 1)) with
      | Ok () -> { (base "spanner" Exact) with ok = true }
      | Error e -> { (base "spanner" Exact) with note = e })
  | Probe ->
      of_probe "spanner"
        (Eps_far.connectivity ~keep:sp.Spanner.keep ~seed ~epsilon g)

let exact_certificate g cert note =
  let ok = Certificate.is_certificate g cert in
  {
    (base "certificate" Exact) with
    ok;
    note =
      (if ok then note
       else if note = "" then "connectivity not preserved up to k"
       else note ^ "; connectivity not preserved up to k");
  }

let certificate ?engine ?backend ?jobs ?(seed = 1) ?(epsilon = 0.1) ~mode g
    cert =
  match mode with
  | Local -> (
      match Witness.certificate g cert with
      | Ok w ->
          let cv =
            Checkers.forests ?engine ?backend ?jobs g
              ~keep:cert.Certificate.keep ~k:w.Witness.ck
              ~forest:w.Witness.forest ~parent:w.Witness.parent
              ~depth:w.Witness.depth ~root:w.Witness.root
          in
          of_checker "certificate" cv ""
      | Error e ->
          { (exact_certificate g cert ("local fallback: " ^ e)) with
            mode = Local })
  | Exact -> exact_certificate g cert ""
  | Probe ->
      of_probe "certificate"
        (Eps_far.connectivity ~keep:cert.Certificate.keep ~seed ~epsilon g)

(* ---------- the corruption-detection matrix ---------- *)

let copy_spanner_witness (w : Witness.spanner_witness) =
  { w with Witness.detour = Array.map Array.copy w.Witness.detour }

let copy_certificate_witness (w : Witness.certificate_witness) =
  {
    w with
    Witness.forest = Array.copy w.Witness.forest;
    parent = Array.map Array.copy w.Witness.parent;
    depth = Array.map Array.copy w.Witness.depth;
    root = Array.map Array.copy w.Witness.root;
  }

let spanner_kinds =
  [
    ("drop-spanner-edge", `Drop_spanner_edge);
    ("truncate-detour", `Truncate_detour);
    ("reroute-nonadjacent", `Reroute_nonadjacent);
    ("erase-detour", `Erase_detour);
  ]

let certificate_kinds =
  [
    ("drop-forest-arc", `Drop_forest_arc);
    ("flip-forest-label", `Flip_forest_label);
    ("corrupt-depth", `Corrupt_depth);
    ("corrupt-root", `Corrupt_root);
  ]

(* Apply one seeded corruption in place; [false] = no applicable site. *)
let corrupt_spanner g rng kind keep (w : Witness.spanner_witness) =
  let cands = ref [] in
  Array.iteri
    (fun e p -> if Array.length p > 0 then cands := e :: !cands)
    w.Witness.detour;
  let cands = Array.of_list (List.rev !cands) in
  if Array.length cands = 0 then false
  else
    let pick () = cands.(Rng.int rng (Array.length cands)) in
    match kind with
    | `Drop_spanner_edge -> (
        let p = w.Witness.detour.(pick ()) in
        match Graph.find_edge g p.(0) p.(1) with
        | Some e1 ->
            keep.(e1) <- false;
            true
        | None -> false)
    | `Truncate_detour ->
        let e = pick () in
        let p = w.Witness.detour.(e) in
        w.Witness.detour.(e) <- Array.sub p 0 (Array.length p - 1);
        true
    | `Reroute_nonadjacent -> (
        let e = pick () in
        let p = w.Witness.detour.(e) in
        let pos = if Array.length p >= 4 then 2 else 1 in
        let anchor = p.(pos - 1) in
        (* a vertex the token cannot legally step to from [anchor]: not
           adjacent in the spanner (edge absent, or present but dropped) *)
        let z = ref (-1) in
        for v = Graph.n g - 1 downto 0 do
          if v <> anchor && v <> p.(pos) then
            match Graph.find_edge g anchor v with
            | None -> z := v
            | Some e' -> if not keep.(e') then z := v
        done;
        match !z with
        | -1 -> false
        | z ->
            p.(pos) <- z;
            true)
    | `Erase_detour ->
        w.Witness.detour.(pick ()) <- [||];
        true

let corrupt_certificate rng kind keep (w : Witness.certificate_witness) =
  let k = w.Witness.ck in
  let labeled = ref [] in
  Array.iteri
    (fun e j -> if j >= 1 then labeled := e :: !labeled)
    w.Witness.forest;
  let labeled = Array.of_list (List.rev !labeled) in
  let parented = ref [] in
  for i = k - 1 downto 0 do
    Array.iteri
      (fun v p -> if p >= 0 then parented := (i, v) :: !parented)
      w.Witness.parent.(i)
  done;
  let parented = Array.of_list !parented in
  let pick_edge () = labeled.(Rng.int rng (Array.length labeled)) in
  let pick_node () = parented.(Rng.int rng (Array.length parented)) in
  match kind with
  | `Drop_forest_arc ->
      if Array.length labeled = 0 then false
      else begin
        let e = pick_edge () in
        w.Witness.forest.(e) <- 0;
        keep.(e) <- false;
        true
      end
  | `Flip_forest_label ->
      if k < 2 || Array.length labeled = 0 then false
      else begin
        let e = pick_edge () in
        w.Witness.forest.(e) <- (w.Witness.forest.(e) mod k) + 1;
        true
      end
  | `Corrupt_depth ->
      if Array.length parented = 0 then false
      else begin
        let i, v = pick_node () in
        w.Witness.depth.(i).(v) <- w.Witness.depth.(i).(v) + 1;
        true
      end
  | `Corrupt_root ->
      if Array.length parented = 0 then false
      else begin
        let i, v = pick_node () in
        w.Witness.root.(i).(v) <- v;
        true
      end

let matrix ?engine ?backend ?jobs ~seed ~quick ppf =
  let pr fmt = Format.fprintf ppf fmt in
  let all_ok = ref true in
  let emit name expect (got : bool) extra =
    if got <> expect then all_ok := false;
    pr "%-52s verdict=%-6s expect=%-6s %s%s@." name
      (if got then "accept" else "reject")
      (if expect then "accept" else "reject")
      extra
      (if got = expect then "" else " MISMATCH")
  in
  let checker_extra (cv : Checkers.verdict) =
    Printf.sprintf "rejects=%d rounds=%d msgs=%d words=%d"
      (count_rejects cv.Checkers.accept)
      cv.Checkers.stats.Network.rounds cv.Checkers.stats.Network.messages
      cv.Checkers.stats.Network.max_words
  in
  pr "verify-matrix/1 seed=%d quick=%b@." seed quick;
  (* Both families are dense enough that [Bs_derand] discards edges, so
     the spanner corruptions always have detour witnesses to attack. *)
  let n_gnp = if quick then 128 else 384 in
  let n_cl = if quick then 24 else 40 in
  let specs =
    [
      ( "gnp",
        Generators.connected_gnp
          ~rng:(Rng.create (seed * 7))
          ~n:n_gnp ~avg_degree:32.,
        3,
        `Thurimella );
      ("complete", Generators.complete n_cl, 2, `Ni);
    ]
  in
  List.iter
    (fun (gname, g, k, cert_kind) ->
      let rng = Rng.create (seed + (17 * k)) in
      (* -- spanner cases -- *)
      let sp = (Bs_derand.run ~k g).Bs_derand.spanner in
      let w = Witness.spanner g ~k sp in
      let run_sp keep detour =
        Checkers.spanner ?engine ?backend ?jobs g ~keep ~k ~detour
      in
      let cv = run_sp sp.Spanner.keep w.Witness.detour in
      emit
        (Printf.sprintf "spanner %s n=%d k=%d valid" gname (Graph.n g) k)
        true
        (Checkers.all_accept cv && w.Witness.missing = 0)
        (checker_extra cv);
      List.iter
        (fun (kname, kind) ->
          let keep = Array.copy sp.Spanner.keep in
          let wc = copy_spanner_witness w in
          if corrupt_spanner g rng kind keep wc then begin
            let cv = run_sp keep wc.Witness.detour in
            emit
              (Printf.sprintf "spanner %s corrupt=%s" gname kname)
              false (Checkers.all_accept cv) (checker_extra cv)
          end
          else
            emit
              (Printf.sprintf "spanner %s corrupt=%s" gname kname)
              false true "no applicable corruption site")
        spanner_kinds;
      (* -- certificate cases -- *)
      let cert =
        match cert_kind with
        | `Thurimella -> Thurimella.certificate ~k g
        | `Ni -> Nagamochi_ibaraki.certificate ~k g
      in
      (match Witness.certificate g cert with
      | Error e ->
          all_ok := false;
          pr "certificate %s witness build FAILED: %s@." gname e
      | Ok cw ->
          let run_cert keep (wc : Witness.certificate_witness) =
            Checkers.forests ?engine ?backend ?jobs g ~keep ~k
              ~forest:wc.Witness.forest ~parent:wc.Witness.parent
              ~depth:wc.Witness.depth ~root:wc.Witness.root
          in
          let cv = run_cert cert.Certificate.keep cw in
          emit
            (Printf.sprintf "certificate %s n=%d k=%d valid" gname (Graph.n g)
               k)
            true (Checkers.all_accept cv) (checker_extra cv);
          List.iter
            (fun (kname, kind) ->
              let keep = Array.copy cert.Certificate.keep in
              let wc = copy_certificate_witness cw in
              if corrupt_certificate rng kind keep wc then begin
                let cv = run_cert keep wc in
                emit
                  (Printf.sprintf "certificate %s corrupt=%s" gname kname)
                  false (Checkers.all_accept cv) (checker_extra cv)
              end
              else
                emit
                  (Printf.sprintf "certificate %s corrupt=%s" gname kname)
                  false true "no applicable corruption site")
            certificate_kinds);
      (* -- probe cases -- *)
      let pv =
        Eps_far.connectivity ~keep:sp.Spanner.keep ~seed ~epsilon:0.1 g
      in
      emit
        (Printf.sprintf "probe %s spanner connected" gname)
        true pv.Eps_far.accepted
        (Printf.sprintf "samples=%d cap=%d queries=%d" pv.Eps_far.samples
           pv.Eps_far.cap
           (pv.Eps_far.vertex_queries + pv.Eps_far.edge_queries)))
    specs;
  (* far-from-connected negative control: every component is tiny, so any
     sampled start exhausts its component below the cap *)
  let nm = if quick then 64 else 256 in
  let matching =
    Graph.of_edges ~n:nm
      (List.init (nm / 2) (fun i -> ((2 * i), (2 * i) + 1, 1)))
  in
  let pv = Eps_far.connectivity ~seed ~epsilon:0.1 matching in
  emit
    (Printf.sprintf "probe matching n=%d far" nm)
    false pv.Eps_far.accepted
    (Printf.sprintf "samples=%d cap=%d queries=%d" pv.Eps_far.samples
       pv.Eps_far.cap
       (pv.Eps_far.vertex_queries + pv.Eps_far.edge_queries));
  pr "verify-matrix: %s@." (if !all_ok then "OK" else "FAILED");
  !all_ok
