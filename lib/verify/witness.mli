open! Import

(** Witness builders: attach locally checkable certificates to outputs.

    The builders are centralized (they run next to the algorithm that
    produced the artifact, where the whole graph is in memory); the
    produced labels are per-node/per-edge state that the CONGEST checker
    programs in {!Checkers} then verify distributedly. *)

(** {1 Spanner detour witnesses} *)

type spanner_witness = {
  k : int;  (** stretch parameter: the spanner claims stretch [2k-1] *)
  detour : int array array;
      (** [detour.(e)] for each non-spanner edge [e = (u,v)]: the vertex
          sequence [u, x1, ..., v] of a replacement path inside the
          spanner with at most [2k-1] hops and weight at most
          [(2k-1) * w(e)]; [[||]] for spanner edges and for non-spanner
          edges where no such path exists.  Conceptually the path is
          recorded at {e both} endpoints (the checker's far endpoint
          cross-checks its copy against the delivered walk). *)
  missing : int;
      (** Non-spanner edges with no hop-and-weight-bounded replacement
          path.  Nonzero means the local checker will reject: either the
          spanner genuinely violates the stretch bound, or it was built
          by a construction (e.g. weighted greedy) whose detours are
          weight-bounded but not hop-bounded — see the scope note. *)
}

val spanner : Graph.t -> k:int -> Spanner.t -> spanner_witness
(** Build detour witnesses by hop-bounded shortest-path search ([<= 2k-1]
    layers of budget-pruned relaxation) inside the spanner subgraph, one
    search per canonical endpoint with early exit once its non-spanner
    edges are settled.

    {b Scope.}  The paper's cluster-based constructions (Baswana–Sen and
    its derandomization, the linear-size and ultra-sparse spanners)
    guarantee replacement paths that satisfy the hop {e and} weight bound
    simultaneously, so their witnesses are always complete; on unit
    weights any valid [(2k-1)]-spanner admits them.  A weighted spanner
    whose stretch guarantee is weight-only may yield [missing > 0] even
    when valid — use exact verification there. *)

(** {1 Certificate forest witnesses} *)

type certificate_witness = {
  ck : int;  (** connectivity parameter *)
  forest : int array;  (** edge id -> peel index [1..k], [0] = not kept *)
  parent : int array array;  (** [parent.(i-1).(v)]: parent in [F_i], -1 *)
  depth : int array array;
  root : int array array;
}

val certificate :
  Graph.t -> Certificate.t -> (certificate_witness, string) result
(** Label the certificate as a maximal-spanning-forest peeling
    [F_1 .. F_k] of the graph.  Two strategies are tried in order:

    - replay the Thurimella BFS peeling of the whole graph (bit-exact
      with {!Thurimella.certificate}) and use its forests when their
      union is exactly the certificate's edge set;
    - otherwise fall back to the Nagamochi–Ibaraki forest partition
      ({!Nagamochi_ibaraki.forests}) when its first [k] forests match,
      rooting each forest component at its minimum vertex.

    Certificates built by other means (spanner packing, KECSS) are
    generally {e not} unions of graph peelings; for those the builder
    returns [Error] and callers fall back to exact verification. *)
