open! Import

type spanner_witness = { k : int; detour : int array array; missing : int }

(* Hop-bounded, budget-pruned shortest paths inside the spanner subgraph.
   [dist.(h*n + v)] is the least weight of an explored path from the
   source to [v] with at most [h] hops that was *improved at layer h*;
   the true <=h-hop optimum is the min over layers [0..h].  [par] records
   the predecessor of each explicit entry, so backtracking from an
   argmin layer walks a path with exactly that many hops.  Arrays are
   sized once and reset through [touched] between sources. *)
let spanner g ~k sp =
  if k < 1 then invalid_arg "Witness.spanner: k >= 1";
  let n = Graph.n g and m = Graph.m g in
  let keep = sp.Spanner.keep in
  if Array.length keep <> m then
    invalid_arg "Witness.spanner: keep length mismatch";
  let hmax = (2 * k) - 1 in
  let inf = max_int in
  let layers = hmax + 1 in
  let dist = Array.make (layers * n) inf in
  let par = Array.make (layers * n) (-1) in
  let touched = ref [] in
  let set h v d p =
    let i = (h * n) + v in
    if dist.(i) = inf then touched := i :: !touched;
    dist.(i) <- d;
    par.(i) <- p
  in
  let get h v = dist.((h * n) + v) in
  let best_upto h v =
    (* min over layers 0..h, preferring the fewest hops on ties *)
    let bd = ref inf and bh = ref (-1) in
    for h' = 0 to h do
      let d = get h' v in
      if d < !bd then begin
        bd := d;
        bh := h'
      end
    done;
    (!bd, !bh)
  in
  let detour = Array.make m [||] in
  let missing = ref 0 in
  for u = 0 to n - 1 do
    let targets =
      Graph.fold_adj g u
        (fun acc v eid ->
          if u < v && not keep.(eid) then (v, eid) :: acc else acc)
        []
    in
    if targets <> [] then begin
      let budget =
        List.fold_left
          (fun b (_, eid) -> max b (hmax * Graph.weight g eid))
          0 targets
      in
      set 0 u 0 (-1);
      let frontier = ref [ u ] in
      for h = 1 to hmax do
        let next = ref [] in
        List.iter
          (fun v ->
            let dv = get (h - 1) v in
            Graph.iter_adj g v (fun v' eid ->
                if keep.(eid) then begin
                  let nd = dv + Graph.weight g eid in
                  let cur, _ = best_upto h v' in
                  if nd <= budget && nd < cur then begin
                    if get h v' = inf then next := v' :: !next;
                    set h v' nd v
                  end
                end))
          (List.rev !frontier);
        frontier := List.rev !next
      done;
      List.iter
        (fun (v, eid) ->
          let d, h = best_upto hmax v in
          if d <= hmax * Graph.weight g eid then begin
            let path = Array.make (h + 1) 0 in
            let cur = ref v and hh = ref h in
            while !hh >= 0 do
              path.(!hh) <- !cur;
              cur := par.((!hh * n) + !cur);
              decr hh
            done;
            detour.(eid) <- path
          end
          else incr missing)
        (List.rev targets);
      List.iter
        (fun i ->
          dist.(i) <- inf;
          par.(i) <- -1)
        !touched;
      touched := []
    end
  done;
  { k; detour; missing = !missing }

type certificate_witness = {
  ck : int;
  forest : int array;
  parent : int array array;
  depth : int array array;
  root : int array array;
}

(* BFS labels for one forest: explore only edges accepted by [use]
   (already-claimed edges are skipped via [claimed]), rooting every
   component at its minimum vertex via the ascending start scan. *)
let peel_stage g ~use ~claim i w =
  let q = Queue.create () in
  let seen = Array.make (Graph.n g) false in
  for s = 0 to Graph.n g - 1 do
    if not seen.(s) then begin
      seen.(s) <- true;
      w.root.(i).(s) <- s;
      w.depth.(i).(s) <- 0;
      w.parent.(i).(s) <- -1;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Graph.iter_adj g v (fun u eid ->
            if use eid && not seen.(u) then begin
              seen.(u) <- true;
              claim eid;
              w.forest.(eid) <- i + 1;
              w.parent.(i).(u) <- v;
              w.depth.(i).(u) <- w.depth.(i).(v) + 1;
              w.root.(i).(u) <- w.root.(i).(v);
              Queue.add u q
            end)
      done
    end
  done

let fresh_witness g k =
  let n = Graph.n g in
  {
    ck = k;
    forest = Array.make (Graph.m g) 0;
    parent = Array.init k (fun _ -> Array.make n (-1));
    depth = Array.init k (fun _ -> Array.make n 0);
    root = Array.init k (fun _ -> Array.make n (-1));
  }

let matches_keep keep w =
  let ok = ref true in
  Array.iteri (fun e kp -> if kp <> (w.forest.(e) >= 1) then ok := false) keep;
  !ok

(* Strategy 1: replay the Thurimella BFS peeling of the whole graph. *)
let thurimella_labels g k =
  let w = fresh_witness g k in
  let removed = Array.make (Graph.m g) false in
  for i = 0 to k - 1 do
    peel_stage g
      ~use:(fun eid -> not removed.(eid))
      ~claim:(fun eid -> removed.(eid) <- true)
      i w
  done;
  w

(* Strategy 2: the Nagamochi–Ibaraki forest partition.  Its first k
   forests satisfy the same peeling property (F_i is a maximal spanning
   forest of G minus the earlier forests); per-forest BFS labels are
   rebuilt here because the scan itself does not produce rooted trees. *)
let ni_labels g k =
  let label = Nagamochi_ibaraki.forests g in
  let w = fresh_witness g k in
  for i = 0 to k - 1 do
    peel_stage g
      ~use:(fun eid -> label.(eid) = i + 1)
      ~claim:(fun _ -> ())
      i w
  done;
  w

let certificate g cert =
  let k = cert.Certificate.k in
  let keep = cert.Certificate.keep in
  let w = thurimella_labels g k in
  if matches_keep keep w then Ok w
  else
    let w = ni_labels g k in
    if matches_keep keep w then Ok w
    else
      Error
        "certificate is not a maximal-spanning-forest peeling of the graph \
         (Thurimella/Nagamochi-Ibaraki); no forest labels exist - use exact \
         verification"
