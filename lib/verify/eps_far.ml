open! Import

type report = {
  accepted : bool;
  witness : (int * int) option;
  samples : int;
  cap : int;
  vertex_queries : int;
  edge_queries : int;
}

let connectivity ?keep ~seed ~epsilon g =
  if epsilon <= 0. then invalid_arg "Eps_far.connectivity: epsilon > 0";
  let n = Graph.n g in
  let live eid = match keep with None -> true | Some k -> k.(eid) in
  (match keep with
  | Some k when Array.length k <> Graph.m g ->
      invalid_arg "Eps_far.connectivity: keep length mismatch"
  | _ -> ());
  if n <= 1 then
    {
      accepted = true;
      witness = None;
      samples = 0;
      cap = 0;
      vertex_queries = 0;
      edge_queries = 0;
    }
  else begin
    let m_live =
      match keep with
      | None -> Graph.m g
      | Some k -> Array.fold_left (fun a b -> if b then a + 1 else a) 0 k
    in
    let d = max 1. (2. *. float_of_int m_live /. float_of_int n) in
    let samples = max 1 (int_of_float (ceil (8. /. (epsilon *. d)))) in
    let cap = max 2 (int_of_float (ceil (4. /. (epsilon *. d)))) in
    let rng = Rng.create seed in
    let seen = Array.make n false in
    let vertex_queries = ref 0 in
    let edge_queries = ref 0 in
    let witness = ref None in
    let performed = ref 0 in
    (try
       for _ = 1 to samples do
         incr performed;
         let start = Rng.int rng n in
         let q = Queue.create () in
         let visited = ref [] in
         let count = ref 0 in
         seen.(start) <- true;
         visited := start :: !visited;
         incr count;
         Queue.add start q;
         while (not (Queue.is_empty q)) && !count < cap do
           let v = Queue.pop q in
           incr vertex_queries;
           Graph.iter_adj g v (fun u eid ->
               incr edge_queries;
               if live eid && not seen.(u) && !count < cap then begin
                 seen.(u) <- true;
                 visited := u :: !visited;
                 incr count;
                 Queue.add u q
               end)
         done;
         let exhausted = Queue.is_empty q && !count < cap in
         List.iter (fun v -> seen.(v) <- false) !visited;
         if exhausted && !count < n then begin
           witness := Some (start, !count);
           raise Exit
         end
       done
     with Exit -> ());
    {
      accepted = !witness = None;
      witness = !witness;
      samples = !performed;
      cap;
      vertex_queries = !vertex_queries;
      edge_queries = !edge_queries;
    }
  end
