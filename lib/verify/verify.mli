open! Import

(** Front door of the verification plane.

    One call verifies an artifact in one of three modes:

    - [Local] — build the witness ({!Witness}) and run the CONGEST
      checker program ({!Checkers}) on the simulator: every node outputs
      an accept/reject bit from its own state and O(k) rounds of
      neighbour messages; the verdict is the global AND.
    - [Exact] — the centralized ground-truth checkers (stretch /
      connectivity / certificate), global and exact but O(nm)-ish.
    - [Probe] — the sublinear ε-far connectivity spot-check
      ({!Eps_far}): constant query budget, one-sided error.

    {!matrix} is the corruption-detection differential used by the CI
    [verify] job: it builds valid artifacts, checks they are accepted,
    then applies seeded corruptions (dropped spanner edges, truncated or
    detached detours, erased witnesses, dropped forest arcs, flipped
    forest labels, corrupted depth/root labels) and checks every one is
    rejected.  Its output is canonical text: byte-identical across
    engines, backends and job counts (the simulator's determinism
    contract), which CI enforces with [cmp]. *)

type mode = Local | Exact | Probe

val mode_of_string : string -> (mode, string) result
(** ["local" | "exact" | "probe"]. *)

val mode_name : mode -> string

type verdict = {
  target : string;  (** ["spanner"] or ["certificate"] *)
  mode : mode;
  ok : bool;
  rejects : int;  (** rejecting nodes ([Local]) *)
  rounds : int;  (** checker rounds ([Local]; 0 otherwise) *)
  messages : int;
  max_words : int;
  queries : int;  (** vertex + edge queries ([Probe]; 0 otherwise) *)
  note : string;  (** diagnostic detail, [""] when clean *)
}

val pp_verdict : Format.formatter -> verdict -> unit
(** Canonical one-line rendering (deterministic; used by the CLI and the
    matrix transcript). *)

val spanner :
  ?engine:Network.engine ->
  ?backend:Network.backend ->
  ?jobs:int ->
  ?seed:int ->
  ?epsilon:float ->
  mode:mode ->
  k:int ->
  Graph.t ->
  Spanner.t ->
  verdict
(** Verify a claimed [(2k-1)]-spanner.  [Local] checks spanning-ness and
    stretch from detour witnesses; [Exact] runs {!Spanner.validate};
    [Probe] spot-checks the kept subgraph for connectivity ([seed]
    defaults to 1, [epsilon] to 0.1; stretch is out of a probe's reach). *)

val certificate :
  ?engine:Network.engine ->
  ?backend:Network.backend ->
  ?jobs:int ->
  ?seed:int ->
  ?epsilon:float ->
  mode:mode ->
  Graph.t ->
  Certificate.t ->
  verdict
(** Verify a k-connectivity certificate ([k] from the artifact).  [Local]
    checks the forest-peeling witness; when no witness exists (the
    certificate is not a graph peeling — see {!Witness.certificate}) it
    falls back to the exact checker and says so in [note]. *)

val matrix :
  ?engine:Network.engine ->
  ?backend:Network.backend ->
  ?jobs:int ->
  seed:int ->
  quick:bool ->
  Format.formatter ->
  bool
(** Run the corruption-detection matrix, printing the canonical
    transcript; [true] iff every valid artifact was accepted and every
    corruption rejected. *)
