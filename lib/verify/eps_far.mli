open! Import

(** Sublinear ε-far connectivity probes (bounded-BFS property testing).

    The Goldreich–Ron style spot-check for graphs too large for exact
    verification: sample vertices and run a bounded BFS from each; a
    component that is exhausted before the exploration cap is a
    disconnection witness.  A graph that is ε-far from connected (more
    than [ε d n / 2] edge edits away, [d] the average degree) has more
    than [ε d n / 4] components, so most components are smaller than
    [4/(ε d)] and a random vertex lands in one with constant
    probability — the standard argument behind the sample and cap
    budgets below.  The probe is one-sided: [`Accept] can be wrong (it
    is a spot-check, not a proof), [`Reject] never is (it carries a
    concrete witness component).

    {b Query budget} (documented contract, reported in {!report}):
    [samples = ceil(8/(ε d))] starts, each exploring at most
    [cap = max 2 (ceil(4/(ε d)))] vertices, so vertex queries are at most
    [samples * cap] and edge (adjacency-list) queries at most
    [samples * cap * Δ] — all independent of [n]. *)

type report = {
  accepted : bool;
  witness : (int * int) option;
      (** [(start, size)]: a component of [size < n] vertices fully
          explored below the cap — proof of disconnection. *)
  samples : int;  (** BFS starts performed (stops early on a witness) *)
  cap : int;  (** per-start vertex exploration cap *)
  vertex_queries : int;  (** vertices popped across all starts *)
  edge_queries : int;  (** adjacency entries scanned across all starts *)
}

val connectivity :
  ?keep:bool array -> seed:int -> epsilon:float -> Graph.t -> report
(** Probe the graph — or, with [?keep], the spanning subgraph of the
    edges with [keep.(e) = true] (vertex set unchanged) — for
    connectivity.  Deterministic for a fixed [seed].  Raises
    [Invalid_argument] on [epsilon <= 0] or a mis-sized mask. *)
