(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Dijkstra = Ultraspan_graph.Dijkstra
module Stretch = Ultraspan_graph.Stretch
module Connectivity = Ultraspan_graph.Connectivity
module Spanner = Ultraspan_spanner.Spanner
module Witness = Ultraspan_verify.Witness
module Util = Ultraspan_util
module Rng = Ultraspan_util.Rng
module Pqueue = Ultraspan_util.Pqueue
module Bitset = Ultraspan_util.Bitset
module Parallel = Ultraspan_util.Parallel
module Metrics = Ultraspan_util.Metrics
