open! Import

let queries_schema = "ultraspan-queries/1"
let results_schema = "ultraspan-results/1"

type query = Dist of int * int | Mem of int * int
type answer = Dist_answer of int | Mem_answer of int option

(* ------------------------------------------------------------------ *)
(* text formats                                                        *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let parse_queries ~path s =
  let fail line fmt =
    Printf.ksprintf (fun m -> failwith (Printf.sprintf "%s:%d: %s" path line m)) fmt
  in
  match String.split_on_char '\n' s with
  | [] | [ "" ] -> failwith (Printf.sprintf "%s: empty query file" path)
  | header :: body ->
      if String.trim header <> queries_schema then
        fail 1 "bad header %S (expected %S)" (String.trim header) queries_schema;
      let qs = ref [] in
      List.iteri
        (fun i line ->
          let lineno = i + 2 in
          let line = String.trim line in
          if line <> "" then
            let fields =
              String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
            in
            let vertex t =
              match int_of_string_opt t with
              | Some v when v >= 0 -> v
              | _ -> fail lineno "bad vertex %S" t
            in
            match fields with
            | [ "dist"; a; b ] -> qs := Dist (vertex a, vertex b) :: !qs
            | [ "mem"; a; b ] -> qs := Mem (vertex a, vertex b) :: !qs
            | _ -> fail lineno "unrecognized query %S (want 'dist s t' or 'mem u v')" line)
        body;
      Array.of_list (List.rev !qs)

let load_queries path =
  let s = try read_file path with Sys_error msg -> failwith msg in
  parse_queries ~path s

let save_queries path qs =
  let b = Buffer.create (16 * Array.length qs) in
  Buffer.add_string b queries_schema;
  Buffer.add_char b '\n';
  Array.iter
    (function
      | Dist (s, t) -> Buffer.add_string b (Printf.sprintf "dist %d %d\n" s t)
      | Mem (u, v) -> Buffer.add_string b (Printf.sprintf "mem %d %d\n" u v))
    qs;
  write_file path (Buffer.contents b)

let render_results qs answers =
  if Array.length qs <> Array.length answers then
    invalid_arg "Query_engine.render_results: length mismatch";
  let b = Buffer.create (24 * Array.length qs) in
  Buffer.add_string b results_schema;
  Buffer.add_char b '\n';
  Array.iteri
    (fun i q ->
      match (q, answers.(i)) with
      | Dist (s, t), Dist_answer d ->
          if d = Dijkstra.infinity then
            Buffer.add_string b (Printf.sprintf "dist %d %d inf\n" s t)
          else Buffer.add_string b (Printf.sprintf "dist %d %d %d\n" s t d)
      | Mem (u, v), Mem_answer (Some eid) ->
          Buffer.add_string b (Printf.sprintf "mem %d %d yes %d\n" u v eid)
      | Mem (u, v), Mem_answer None ->
          Buffer.add_string b (Printf.sprintf "mem %d %d no\n" u v)
      | _ -> invalid_arg "Query_engine.render_results: query/answer kind mismatch")
    qs;
  Buffer.contents b

let save_results path qs answers = write_file path (render_results qs answers)

(* ------------------------------------------------------------------ *)
(* workload generation                                                 *)
(* ------------------------------------------------------------------ *)

let generate ~rng ~n ~count =
  if n < 1 then invalid_arg "Query_engine.generate: n must be >= 1";
  (* a small pool of hot sources receives most distance queries, so a
     realistic batch actually exercises the SSSP-tree cache *)
  let hot = Array.init (min 8 n) (fun _ -> Rng.int rng n) in
  Array.init count (fun _ ->
      let r = Rng.int rng 100 in
      if r < 25 then Mem (Rng.int rng n, Rng.int rng n)
      else if r < 85 then Dist (hot.(Rng.int rng (Array.length hot)), Rng.int rng n)
      else Dist (Rng.int rng n, Rng.int rng n))

(* ------------------------------------------------------------------ *)
(* bounded bidirectional Dijkstra                                      *)
(* ------------------------------------------------------------------ *)

(* Per-block scratch, allocated once per block and reused across its
   queries (the per-query cost is O(touched), not O(n)): stamped distance
   and settled arrays — bumping [stamp] invalidates everything in O(1) —
   plus two heaps emptied with [Pqueue.clear]. *)
type scratch = {
  df : int array;
  sf : int array;
  db : int array;
  sb : int array;
  setf : int array;
  setb : int array;
  pqf : (int, int) Pqueue.t;
  pqb : (int, int) Pqueue.t;
  mutable stamp : int;
}

let make_scratch n =
  {
    df = Array.make n 0;
    sf = Array.make n 0;
    db = Array.make n 0;
    sb = Array.make n 0;
    setf = Array.make n 0;
    setb = Array.make n 0;
    pqf = Pqueue.create ~cmp:compare ();
    pqb = Pqueue.create ~cmp:compare ();
    stamp = 0;
  }

(* Exact d_H(s, t) for same-cluster endpoints.  The search radius is
   bounded from the start by the cluster-tree path s->root->t (a real
   spanner path), vertices at distance >= the best-known path are never
   expanded, and the two frontiers stop as soon as their tops certify no
   shorter meeting point exists.  The result is independent of the
   expansion schedule, so answers match the SSSP-cache route bit for
   bit. *)
let bidi (o : Oracle.t) sc s t =
  sc.stamp <- sc.stamp + 1;
  let st = sc.stamp in
  Pqueue.clear sc.pqf;
  Pqueue.clear sc.pqb;
  let g = o.Oracle.graph in
  let csr = Graph.csr g in
  let edges = Graph.edges g in
  let mu = ref (Oracle.tree_bound o s t) in
  sc.sf.(s) <- st;
  sc.df.(s) <- 0;
  sc.sb.(t) <- st;
  sc.db.(t) <- 0;
  Pqueue.push sc.pqf 0 s;
  Pqueue.push sc.pqb 0 t;
  let expand forward =
    let pq, dist, stamp, odist, ostamp, settled =
      if forward then (sc.pqf, sc.df, sc.sf, sc.db, sc.sb, sc.setf)
      else (sc.pqb, sc.db, sc.sb, sc.df, sc.sf, sc.setb)
    in
    match Pqueue.pop pq with
    | None -> ()
    | Some (d, x) ->
        if settled.(x) <> st && d < !mu then begin
          settled.(x) <- st;
          for a = csr.off.(x) to csr.off.(x + 1) - 1 do
            let u = csr.dst.(a) in
            let nd = d + edges.(csr.eid.(a)).Graph.w in
            if nd < !mu && (stamp.(u) <> st || nd < dist.(u)) then begin
              stamp.(u) <- st;
              dist.(u) <- nd;
              Pqueue.push pq nd u;
              if ostamp.(u) = st && nd + odist.(u) < !mu then
                mu := nd + odist.(u)
            end
          done
        end
  in
  let rec loop () =
    match (Pqueue.peek sc.pqf, Pqueue.peek sc.pqb) with
    | None, None -> ()
    | Some (a, _), Some (b, _) ->
        if a + b < !mu then begin
          expand (a <= b);
          loop ()
        end
    | Some (a, _), None ->
        if a < !mu then begin
          expand true;
          loop ()
        end
    | None, Some (b, _) ->
        if b < !mu then begin
          expand false;
          loop ()
        end
  in
  loop ();
  !mu

(* ------------------------------------------------------------------ *)
(* batch execution                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  queries : int;
  dist : int;
  mem : int;
  unreachable : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}

(* A source is served from a cached SSSP tree once the batch queries it
   this often; below that a bounded bidirectional search is cheaper than
   building (and holding) a tree. *)
let hot_threshold = 4

type cache_entry = { cdist : int array; csettled : Bitset.t }

let run ?jobs ?(metrics = Metrics.disabled) ?(cache_capacity = 64)
    (o : Oracle.t) (qs : query array) =
  let n = Oracle.n o in
  Array.iteri
    (fun i q ->
      let check x =
        if x < 0 || x >= n then
          failwith
            (Printf.sprintf "query %d: vertex %d out of range [0, %d)" (i + 1) x n)
      in
      match q with Dist (s, t) | Mem (s, t) -> check s; check t)
    qs;
  (* Routing is a pure function of the batch: count how often each vertex
     appears as a distance endpoint, call it hot past the threshold, and
     for every same-cluster query send it to the hot endpoint's tree
     (source first, then target) or to the bidirectional search.  The
     partner lists collected here are exactly the targets each tree's
     early-exit countdown build needs to settle. *)
  let freq = Array.make n 0 in
  Array.iter
    (function
      | Dist (s, t) when s <> t ->
          freq.(s) <- freq.(s) + 1;
          freq.(t) <- freq.(t) + 1
      | Dist _ | Mem _ -> ())
    qs;
  let partners : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let add_partner v u =
    match Hashtbl.find_opt partners v with
    | Some l -> l := u :: !l
    | None -> Hashtbl.add partners v (ref [ u ])
  in
  let route =
    Array.map
      (function
        | Mem _ -> -1
        | Dist (s, t) ->
            if s = t || o.Oracle.comp.{s} <> o.Oracle.comp.{t} then -1
            else if freq.(s) >= hot_threshold then (add_partner s t; s)
            else if freq.(t) >= hot_threshold then (add_partner t s; t)
            else -2)
      qs
  in
  (* Bounded LRU of SSSP trees, Gcache-style: lookups and the build both
     run under the lock, so per source the first access misses and the
     rest hit — totals independent of the schedule as long as nothing is
     evicted. *)
  let cache_lock = Mutex.create () in
  let cache : (int, cache_entry) Hashtbl.t = Hashtbl.create 16 in
  let lru = ref [] in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let tree_for v =
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt cache v with
        | Some e ->
            incr hits;
            lru := v :: List.filter (fun x -> x <> v) !lru;
            e
        | None ->
            incr misses;
            let is_target = Array.make n false in
            let remaining = ref 0 in
            (match Hashtbl.find_opt partners v with
            | None -> ()
            | Some l ->
                List.iter
                  (fun u ->
                    if not is_target.(u) then begin
                      is_target.(u) <- true;
                      incr remaining
                    end)
                  !l);
            let cdist, csettled =
              Stretch.distances_to_targets o.Oracle.graph v ~is_target
                ~remaining:!remaining
            in
            let e = { cdist; csettled } in
            Hashtbl.add cache v e;
            lru := v :: !lru;
            if List.length !lru > cache_capacity then begin
              match List.rev !lru with
              | victim :: _ ->
                  Hashtbl.remove cache victim;
                  lru := List.filter (fun x -> x <> victim) !lru;
                  incr evictions
              | [] -> ()
            end;
            e)
  in
  let nq = Array.length qs in
  let answers = Array.make nq (Dist_answer 0) in
  let blocks = max 1 (Parallel.block_count nq) in
  let b_dist = Array.make blocks 0 in
  let b_mem = Array.make blocks 0 in
  let b_unreach = Array.make blocks 0 in
  Parallel.iter_blocks ?jobs nq (fun b lo hi ->
      let sc = make_scratch n in
      for i = lo to hi - 1 do
        match qs.(i) with
        | Mem (u, v) ->
            b_mem.(b) <- b_mem.(b) + 1;
            let ans =
              if u = v then None
              else
                match Graph.find_edge o.Oracle.graph u v with
                | Some eid -> Some o.Oracle.orig_eid.{eid}
                | None -> None
            in
            answers.(i) <- Mem_answer ans
        | Dist (s, t) ->
            b_dist.(b) <- b_dist.(b) + 1;
            let d =
              if s = t then 0
              else if o.Oracle.comp.{s} <> o.Oracle.comp.{t} then begin
                b_unreach.(b) <- b_unreach.(b) + 1;
                Dijkstra.infinity
              end
              else begin
                let r = route.(i) in
                if r >= 0 then begin
                  let e = tree_for r in
                  let u = if r = s then t else s in
                  if Bitset.mem e.csettled u then e.cdist.(u)
                  else Dijkstra.infinity
                end
                else bidi o sc s t
              end
            in
            answers.(i) <- Dist_answer d
      done);
  let sum = Array.fold_left ( + ) 0 in
  let stats =
    {
      queries = nq;
      dist = sum b_dist;
      mem = sum b_mem;
      unreachable = sum b_unreach;
      cache_hits = !hits;
      cache_misses = !misses;
      cache_evictions = !evictions;
    }
  in
  (* registry updates happen here, on the calling domain, after the
     parallel section's barrier (handle updates are unsynchronized) *)
  Metrics.add (Metrics.counter metrics "oracle.queries_total") stats.queries;
  Metrics.add (Metrics.counter metrics "oracle.dist_total") stats.dist;
  Metrics.add (Metrics.counter metrics "oracle.mem_total") stats.mem;
  Metrics.add
    (Metrics.counter metrics "oracle.unreachable_total")
    stats.unreachable;
  Metrics.add
    (Metrics.counter metrics "timing.oracle.cache.hits_total")
    stats.cache_hits;
  Metrics.add
    (Metrics.counter metrics "timing.oracle.cache.misses_total")
    stats.cache_misses;
  Metrics.add
    (Metrics.counter metrics "timing.oracle.cache.evictions_total")
    stats.cache_evictions;
  (answers, stats)

(* ------------------------------------------------------------------ *)
(* local verification                                                  *)
(* ------------------------------------------------------------------ *)

let spot_check ?(samples = 32) ~rng g (o : Oracle.t) qs answers =
  if Array.length qs <> Array.length answers then
    invalid_arg "Query_engine.spot_check: length mismatch";
  let nq = Array.length qs in
  if nq = 0 then Ok 0
  else begin
    let bound = (2 * o.Oracle.k) - 1 in
    let checked = ref 0 in
    let err = ref None in
    for _ = 1 to samples do
      if !err = None then begin
        let i = Rng.int rng nq in
        incr checked;
        let fail fmt =
          Printf.ksprintf (fun m -> err := Some (Printf.sprintf "query %d: %s" (i + 1) m)) fmt
        in
        match (qs.(i), answers.(i)) with
        | Dist (s, t), Dist_answer d ->
            let dg = Dijkstra.distance g s t in
            if dg = Dijkstra.infinity then begin
              if d <> Dijkstra.infinity then
                fail "answered %d but %d and %d are disconnected in G" d s t
            end
            else if d = Dijkstra.infinity then
              fail "unreachable answer but d_G(%d, %d) = %d" s t dg
            else if d < dg then fail "answer %d below d_G = %d" d dg
            else if dg > 0 && d > bound * dg then
              fail "answer %d violates (2k-1)-stretch: %d * %d = %d" d bound dg
                (bound * dg)
        | Mem (u, v), Mem_answer (Some eid) ->
            if eid < 0 || eid >= Graph.m g then
              fail "membership names edge %d outside G" eid
            else begin
              let a, b = Graph.endpoints g eid in
              if (a, b) <> (min u v, max u v) then
                fail "membership edge %d joins (%d, %d), not (%d, %d)" eid a b u
                  v
            end
        | Mem _, Mem_answer None -> ()
        | _ -> fail "query/answer kind mismatch"
      end
    done;
    match !err with Some m -> Error m | None -> Ok !checked
  end
