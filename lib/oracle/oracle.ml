open! Import

let schema = "ultraspan-oracle/1"

type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  k : int;
  orig_m : int;
  graph : Graph.t;
  orig_eid : ivec;
  clusters : int;
  comp : ivec;
  root : ivec;
  parent : ivec;
  parent_eid : ivec;
  depth_w : ivec;
}

let n t = Graph.n t.graph
let m t = Graph.m t.graph

let ivec len : ivec = Bigarray.Array1.create Bigarray.int Bigarray.c_layout len

let ivec_of_array a =
  let v = ivec (Array.length a) in
  Array.iteri (fun i x -> v.{i} <- x) a;
  v

(* ------------------------------------------------------------------ *)
(* compile                                                             *)
(* ------------------------------------------------------------------ *)

(* One multi-source Dijkstra seeded at every cluster root grows all the
   cluster trees in a single pass (per-cluster runs would cost a queue
   setup per component; a spanner of a disconnected input can have many).
   Deterministic: roots are pushed in increasing cluster order and the
   heap's tie-breaking is a fixed function of the insertion sequence. *)
let grow_trees g roots =
  let n = Graph.n g in
  let dist = Array.make n Dijkstra.infinity in
  let parent = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let settled = Bitset.create n in
  let pq = Pqueue.create ~cmp:compare () in
  Array.iter
    (fun r ->
      dist.(r) <- 0;
      Pqueue.push pq 0 r)
    roots;
  while not (Pqueue.is_empty pq) do
    let d, x = Pqueue.pop_exn pq in
    if not (Bitset.mem settled x) then begin
      Bitset.add settled x;
      Graph.iter_adj g x (fun u eid ->
          let nd = d + Graph.weight g eid in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            parent.(u) <- x;
            parent_eid.(u) <- eid;
            Pqueue.push pq nd u
          end)
    end
  done;
  (dist, parent, parent_eid)

let compile g ~k (sp : Spanner.t) =
  if k < 1 then invalid_arg "Oracle.compile: k must be >= 1";
  if Array.length sp.Spanner.keep <> Graph.m g then
    invalid_arg "Oracle.compile: spanner mask does not match the graph";
  let sub, mapping = Graph.sub_with_mapping g sp.Spanner.keep in
  let comp, clusters = Connectivity.components sub in
  (* component labels are assigned in order of smallest member, so the
     root of a cluster is the first vertex carrying its label *)
  let root = Array.make clusters (-1) in
  for v = Graph.n sub - 1 downto 0 do
    root.(comp.(v)) <- v
  done;
  let d, p, pe = grow_trees sub root in
  {
    k;
    orig_m = Graph.m g;
    graph = sub;
    orig_eid = ivec_of_array mapping;
    clusters;
    comp = ivec_of_array comp;
    root = ivec_of_array root;
    parent = ivec_of_array p;
    parent_eid = ivec_of_array pe;
    depth_w = ivec_of_array d;
  }

let tree_bound t s u =
  if t.comp.{s} <> t.comp.{u} then Dijkstra.infinity
  else t.depth_w.{s} + t.depth_w.{u}

(* ------------------------------------------------------------------ *)
(* binary format                                                       *)
(* ------------------------------------------------------------------ *)

let magic = "USPANORC"
let version = 1
let header_words = 7

let payload_words t =
  let n = n t and m = m t in
  (3 * m) + m + n + n + n + n + t.clusters

(* Serialize the payload once into bytes: the checksum, [save] and the
   tests all read from the same encoding. *)
let payload_bytes t =
  let words = payload_words t in
  let b = Bytes.create (8 * words) in
  let pos = ref 0 in
  let put x =
    Bytes.set_int64_le b (8 * !pos) (Int64.of_int x);
    incr pos
  in
  Graph.iter_edges t.graph (fun e ->
      put e.Graph.u;
      put e.Graph.v;
      put e.Graph.w);
  let put_vec (v : ivec) =
    for i = 0 to Bigarray.Array1.dim v - 1 do
      put v.{i}
    done
  in
  put_vec t.orig_eid;
  put_vec t.comp;
  put_vec t.parent;
  put_vec t.parent_eid;
  put_vec t.depth_w;
  put_vec t.root;
  assert (!pos = words);
  b

(* FNV-1a over bytes, 64-bit. *)
let fnv1a b =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let checksum t = fnv1a (payload_bytes t)

let save path t =
  let payload = payload_bytes t in
  let b = Bytes.create (8 + (8 * header_words) + Bytes.length payload) in
  Bytes.blit_string magic 0 b 0 8;
  let put i x = Bytes.set_int64_le b (8 + (8 * i)) x in
  put 0 (Int64.of_int version);
  put 1 (Int64.of_int (n t));
  put 2 (Int64.of_int (m t));
  put 3 (Int64.of_int t.orig_m);
  put 4 (Int64.of_int t.k);
  put 5 (Int64.of_int t.clusters);
  put 6 (fnv1a payload);
  Bytes.blit payload 0 b (8 + (8 * header_words)) (Bytes.length payload);
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  Bytes.length b

(* ------------------------------------------------------------------ *)
(* load                                                                *)
(* ------------------------------------------------------------------ *)

let bad path fmt =
  Printf.ksprintf
    (fun s -> failwith (Printf.sprintf "%s: not an %s artifact (%s)" path schema s))
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      really_input_string ic len)

let load path =
  let s = try read_file path with Sys_error msg -> failwith msg in
  let b = Bytes.unsafe_of_string s in
  if Bytes.length b < 8 + (8 * header_words) then
    bad path "truncated: %d bytes, need at least %d for the header"
      (Bytes.length b)
      (8 + (8 * header_words));
  if not (String.equal (String.sub s 0 8) magic) then
    bad path "bad magic %S" (String.sub s 0 8);
  let hdr i = Int64.to_int (Bytes.get_int64_le b (8 + (8 * i))) in
  let v = hdr 0 in
  if v <> version then bad path "unsupported version %d (this build reads %d)" v version;
  let gn = hdr 1 and gm = hdr 2 and orig_m = hdr 3 and k = hdr 4 and clusters = hdr 5 in
  let want = fun who x lo -> if x < lo then bad path "%s %d out of range" who x in
  want "n" gn 0;
  want "m" gm 0;
  want "orig_m" orig_m gm;
  want "k" k 1;
  want "clusters" clusters 0;
  if clusters > gn then bad path "clusters %d exceeds n %d" clusters gn;
  let words = (3 * gm) + gm + (4 * gn) + clusters in
  let expect = 8 + (8 * header_words) + (8 * words) in
  if Bytes.length b <> expect then
    bad path "truncated or oversized payload: %d bytes, header promises %d"
      (Bytes.length b) expect;
  let payload = Bytes.sub b (8 + (8 * header_words)) (8 * words) in
  let sum = fnv1a payload in
  if not (Int64.equal sum (Bytes.get_int64_le b (8 + (8 * 6)))) then
    bad path "checksum mismatch (corrupt payload)";
  (* one off-heap arena for the whole payload; the metadata vectors below
     are zero-copy sub-views of it *)
  let arena = ivec words in
  for i = 0 to words - 1 do
    arena.{i} <- Int64.to_int (Bytes.get_int64_le payload (8 * i))
  done;
  let cursor = ref 0 in
  let view len =
    let v = Bigarray.Array1.sub arena !cursor len in
    cursor := !cursor + len;
    v
  in
  let edges = view (3 * gm) in
  let orig_eid = view gm in
  let comp = view gn in
  let parent = view gn in
  let parent_eid = view gn in
  let depth_w = view gn in
  let root = view clusters in
  (* Streamed, replayable reconstruction: ids come out in canonical sorted
     order, which is exactly the order [payload_bytes] wrote them in, so
     edge ids round-trip bit-for-bit. *)
  let graph =
    try
      Graph.of_edge_iter ~n:gn (fun f ->
          for e = 0 to gm - 1 do
            f edges.{3 * e} edges.{(3 * e) + 1} edges.{(3 * e) + 2}
          done)
    with Invalid_argument msg -> bad path "bad edge list: %s" msg
  in
  if Graph.m graph <> gm then
    bad path "edge list is not canonical: %d edges collapsed to %d" gm
      (Graph.m graph);
  let check_range who (v : ivec) lo hi =
    for i = 0 to Bigarray.Array1.dim v - 1 do
      if v.{i} < lo || v.{i} >= hi then
        bad path "%s[%d] = %d out of range [%d, %d)" who i v.{i} lo hi
    done
  in
  check_range "orig_eid" orig_eid 0 orig_m;
  check_range "comp" comp 0 (max clusters 1);
  check_range "root" root 0 gn;
  check_range "parent" parent (-1) gn;
  check_range "parent_eid" parent_eid (-1) gm;
  check_range "depth_w" depth_w 0 max_int;
  { k; orig_m; graph; orig_eid; clusters; comp; root; parent; parent_eid; depth_w }

(* ------------------------------------------------------------------ *)

let vec_equal (a : ivec) (b : ivec) =
  Bigarray.Array1.dim a = Bigarray.Array1.dim b
  &&
  let ok = ref true in
  for i = 0 to Bigarray.Array1.dim a - 1 do
    if a.{i} <> b.{i} then ok := false
  done;
  !ok

let equal a b =
  a.k = b.k && a.orig_m = b.orig_m && a.clusters = b.clusters
  && Graph.n a.graph = Graph.n b.graph
  && Graph.edges a.graph = Graph.edges b.graph
  && vec_equal a.orig_eid b.orig_eid
  && vec_equal a.comp b.comp && vec_equal a.root b.root
  && vec_equal a.parent b.parent
  && vec_equal a.parent_eid b.parent_eid
  && vec_equal a.depth_w b.depth_w

let pp fmt t =
  Format.fprintf fmt "oracle: %d vertices, %d spanner edges, %d cluster(s), k=%d"
    (n t) (m t) t.clusters t.k
