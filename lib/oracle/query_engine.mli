open! Import

(** Batch query engine over a compiled {!Oracle.t}.

    Answers two query kinds against the spanner the oracle froze:

    - [dist s t] — the exact spanner distance [d_H(s, t)] (which the
      spanner contract bounds by [(2k-1) * d_G(s, t)]), computed by a
      bounded bidirectional Dijkstra whose search radius is capped by the
      cluster-tree upper bound {!Oracle.tree_bound}; cross-cluster pairs
      short-circuit to unreachable in O(1) via the component labels.
    - [mem u v] — spanner edge membership; a positive answer carries the
      edge id {e in the original graph}.

    Batches fan out across the {!Parallel} domain pool with the fixed
    block schedule of {!Parallel.iter_blocks}, per-block scratch (stamped
    distance arrays, reusable heaps) hoisted out of the per-query loop,
    and answers written by query index — result files are byte-identical
    for every [--jobs], which the test suite asserts by [cmp].

    Sources that recur often enough in a batch are served from a bounded,
    mutex-protected LRU of single-source shortest-path trees (built with
    the early-exit countdown search {!Stretch.distances_to_targets},
    targeting exactly the partners the batch will ask about).  A cached
    answer equals what the bidirectional search would return, so caching
    never changes output bytes — only throughput. *)

val queries_schema : string
(** ["ultraspan-queries/1"] — header line of batch query files. *)

val results_schema : string
(** ["ultraspan-results/1"] — header line of result files. *)

type query =
  | Dist of int * int  (** [dist s t] *)
  | Mem of int * int  (** [mem u v] *)

type answer =
  | Dist_answer of int  (** spanner distance; [Dijkstra.infinity] = unreachable *)
  | Mem_answer of int option  (** original-graph edge id when present *)

(** {1 Text formats} *)

val parse_queries : path:string -> string -> query array
(** Parse the [ultraspan-queries/1] text format (header line, then one
    [dist s t] / [mem u v] query per line; blank lines ignored).  Raises
    [Failure] with a one-line [path:line:] diagnostic on a bad header or
    malformed line — the CLI turns that into exit 1. *)

val load_queries : string -> query array

val save_queries : string -> query array -> unit

val render_results : query array -> answer array -> string
(** The [ultraspan-results/1] file contents: header line, then one line
    per query in input order — [dist s t <d|inf>], [mem u v yes <eid>],
    [mem u v no].  Pure function of (queries, answers): this is where
    byte-identity across job counts is decided. *)

val save_results : string -> query array -> answer array -> unit

(** {1 Workload generation} *)

val generate : rng:Rng.t -> n:int -> count:int -> query array
(** Seeded mixed workload: ~60% distance queries from a small hot pool of
    sources (exercising the SSSP cache), ~15% uniform distance queries,
    ~25% membership queries.  Deterministic in [rng]. *)

(** {1 Execution} *)

type stats = {
  queries : int;
  dist : int;  (** distance queries answered *)
  mem : int;  (** membership queries answered *)
  unreachable : int;  (** distance queries across clusters *)
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
}
(** [queries]/[dist]/[mem]/[unreachable] are functions of the batch and
    oracle alone.  The cache totals are too as long as no eviction occurs
    (per hot source: first access misses, the rest hit); under eviction
    pressure with [jobs > 1] the interleaving decides them, which is why
    their registry counters live in the [timing.*] execution namespace. *)

val run :
  ?jobs:int ->
  ?metrics:Metrics.t ->
  ?cache_capacity:int ->
  Oracle.t ->
  query array ->
  answer array * stats
(** Answer a batch.  [cache_capacity] bounds the SSSP-tree LRU (default
    64 trees).  Registry counters: [oracle.queries_total] /
    [oracle.dist_total] / [oracle.mem_total] / [oracle.unreachable_total]
    (deterministic) and [timing.oracle.cache.hits_total] /
    [misses_total] / [evictions_total]; all published from the calling
    domain after the parallel section.  Raises [Failure] on out-of-range
    query vertices (checked up front). *)

(** {1 Local verification} *)

val spot_check :
  ?samples:int ->
  rng:Rng.t ->
  Graph.t ->
  Oracle.t ->
  query array ->
  answer array ->
  (int, string) result
(** Sample [samples] (default 32) answered queries and check them against
    the {e original} graph [g]: every distance answer [d] must satisfy
    [d_G <= d <= (2k-1) * d_G] (exact point-to-point Dijkstra on [g]),
    and every positive membership answer must name an edge of [g] with
    the queried endpoints.  [Ok checked] or [Error diagnostic]. *)
