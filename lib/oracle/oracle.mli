open! Import

(** Compiled distance-oracle artifacts ([ultraspan-oracle/1]).

    A built spanner is a verified, expensive-to-produce object; this module
    turns it into a {e servable} one: {!compile} freezes the kept subgraph
    into CSR adjacency plus per-cluster shortest-path-tree metadata, and
    {!save}/{!load} round-trip the whole thing through a compact versioned
    binary file with a deterministic header and checksum, so a query
    process never rebuilds (or re-verifies) the spanner it answers from.

    The on-disk layout is a fixed-width word format (64-bit little-endian
    words throughout):

    {v
    bytes 0..7   magic "USPANORC"
    words 0..6   version=1, n, m (spanner edges), orig_m, k, clusters,
                 fnv1a-64 checksum of the payload bytes
    payload      edge list in id order (u, v, w per edge — the canonical
                 sorted order of Graph construction, so ids round-trip),
                 orig_eid[m], comp[n], parent[n], parent_eid[n],
                 depth_w[n], root[clusters]
    v}

    {!load} reads the payload into a single off-heap [Bigarray] arena (the
    PR 8 payload-arena idiom) and takes zero-copy sub-views for the
    metadata vectors; the graph itself is reconstructed with
    {!Graph.of_edge_iter} streaming straight out of the arena, so the peak
    transient is the arena plus the CSR being built — no tuple lists.
    Every load validates magic, version, header ranges and the checksum
    and raises [Failure] with a one-line diagnostic on truncated or
    corrupt files (the CLI turns that into exit 1). *)

val schema : string
(** ["ultraspan-oracle/1"]. *)

type ivec = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  k : int;  (** stretch parameter: answers are within [2k-1] of d_G *)
  orig_m : int;  (** edge count of the graph the spanner was built on *)
  graph : Graph.t;
      (** the spanner as a standalone graph: same vertex set as the input,
          exactly the kept edges (original weights), ids renumbered in
          canonical sorted order *)
  orig_eid : ivec;  (** spanner edge id -> edge id in the input graph *)
  clusters : int;  (** connected components of the spanner *)
  comp : ivec;  (** vertex -> cluster id in [0 .. clusters-1] *)
  root : ivec;  (** cluster id -> root vertex (minimum vertex, length [clusters]) *)
  parent : ivec;  (** vertex -> parent towards the cluster root; [-1] at roots *)
  parent_eid : ivec;  (** spanner edge id of the parent edge; [-1] at roots *)
  depth_w : ivec;  (** weighted distance to the cluster root in the spanner *)
}

val compile : Graph.t -> k:int -> Spanner.t -> t
(** Compile a built spanner against its input graph: extract the kept
    subgraph ({!Graph.sub_with_mapping}), label clusters, and grow one
    shortest-path tree per cluster (a single multi-source Dijkstra seeded
    at every cluster root).  Deterministic: equal inputs give equal
    oracles.  Raises [Invalid_argument] on [k < 1] or a mask/graph
    mismatch. *)

val n : t -> int
val m : t -> int
(** Vertex / kept-edge counts of the compiled spanner. *)

val tree_bound : t -> int -> int -> int
(** [tree_bound o s t] is the weight of the s->root->t path through the
    cluster tree — an upper bound on the spanner distance used to bound
    the query engine's bidirectional search — or [Dijkstra.infinity] when
    the endpoints live in different clusters. *)

val checksum : t -> int64
(** The FNV-1a checksum {!save} writes (a pure function of the artifact). *)

val save : string -> t -> int
(** Write the binary artifact; returns the byte size written. *)

val load : string -> t
(** Read an artifact back.  Raises [Failure] with a one-line diagnostic on
    a truncated, corrupt or wrong-version file (bad magic, short payload,
    checksum mismatch, out-of-range structure). *)

val equal : t -> t -> bool
(** Structural equality: parameters, graph (vertices, edges, weights, ids)
    and every metadata vector.  What the round-trip tests assert. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: n, edges, clusters, k. *)
