open! Import

let certificate ~k g =
  if k < 1 then invalid_arg "Thurimella.certificate: k >= 1";
  let keep = Array.make (Graph.m g) false in
  let removed = Array.make (Graph.m g) false in
  let continue = ref true in
  let i = ref 0 in
  while !continue && !i < k do
    incr i;
    (* Spanning forest of the remaining edges: BFS forest restricted. *)
    let n = Graph.n g in
    let seen = Array.make n false in
    let added = ref 0 in
    let q = Queue.create () in
    for s = 0 to n - 1 do
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s q;
        while not (Queue.is_empty q) do
          let v = Queue.pop q in
          Graph.iter_adj g v (fun u eid ->
              if (not removed.(eid)) && not seen.(u) then begin
                seen.(u) <- true;
                keep.(eid) <- true;
                removed.(eid) <- true;
                incr added;
                Queue.add u q
              end)
        done
      end
    done;
    if !added = 0 then continue := false
  done;
  let rounds = Rounds.create () in
  (* O(k (D + sqrt n)): estimate D by twice an eccentricity. *)
  let d_est = if Graph.n g = 0 then 0 else 2 * Bfs.eccentricity g 0 in
  Rounds.span rounds "thurimella" (fun () ->
      Rounds.charge ~label:"forests" rounds
        (k * (d_est + int_of_float (sqrt (float_of_int (Graph.n g))) + 1)));
  { Certificate.keep; rounds; k }
