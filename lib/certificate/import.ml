(** Short aliases for the substrate libraries (opened by every module of
    this library). *)

module Graph = Ultraspan_graph.Graph
module Bfs = Ultraspan_graph.Bfs
module Maxflow = Ultraspan_graph.Maxflow
module Connectivity = Ultraspan_graph.Connectivity
module Stretch = Ultraspan_graph.Stretch
module Spanning_tree = Ultraspan_graph.Spanning_tree
module Rounds = Ultraspan_congest.Rounds
module Spanner = Ultraspan_spanner.Spanner
module Ultra_sparse = Ultraspan_spanner.Ultra_sparse
module Util = Ultraspan_util
module Rng = Ultraspan_util.Rng
