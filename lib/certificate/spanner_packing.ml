open! Import

type outcome = { certificate : Certificate.t; layers : int list }

let size_bound ~n ~k ~epsilon =
  float_of_int k *. float_of_int n *. (1.0 +. epsilon)

let run ~k ~epsilon g =
  if k < 1 then invalid_arg "Spanner_packing.run: k >= 1";
  if epsilon <= 0.0 then invalid_arg "Spanner_packing.run: epsilon > 0";
  let t = max 1 (int_of_float (ceil (1.0 /. epsilon))) in
  let m = Graph.m g in
  let keep = Array.make m false in
  let remaining = Array.make m true in
  let rounds = Rounds.create () in
  let layers = ref [] in
  let continue = ref true in
  let step = ref 0 in
  while !continue && !step < k do
    incr step;
    let sub, mapping = Graph.sub_with_mapping g remaining in
    if Graph.m sub = 0 then continue := false
    else begin
      let out = Ultra_sparse.run ~t sub in
      let layer_size = Spanner.size out.Ultra_sparse.spanner in
      layers := layer_size :: !layers;
      Rounds.merge_into rounds out.Ultra_sparse.spanner.Spanner.rounds;
      List.iter
        (fun sub_eid ->
          let orig = mapping.(sub_eid) in
          keep.(orig) <- true;
          remaining.(orig) <- false)
        (Spanner.eids out.Ultra_sparse.spanner)
    end
  done;
  { certificate = { Certificate.keep; rounds; k }; layers = List.rev !layers }
