open! Import

(** Nagamochi–Ibaraki scan-first forest decomposition — the classical
    sequential sparse-certificate baseline.

    One maximum-adjacency sweep labels every edge with a forest index
    r >= 1 such that each label class is a forest and the union of the
    first k forests is a k-connectivity certificate with at most k(n-1)
    edges.  O(m + n) with a bucket queue. *)

val forests : Graph.t -> int array
(** Edge id -> forest index (>= 1). *)

val certificate : k:int -> Graph.t -> Certificate.t
(** Union of the first [k] forests. *)
