open! Import

(** Empirical resilience evaluation — certificates and spanners under edge
    failures.

    The paper's k-connectivity certificates (Section 1.3, Appendix G) are
    built to survive failures: if H certifies k-edge-connectivity of G,
    then for {e every} failure set F of at most k-1 edges, H - F is
    connected exactly when G - F is.  The strong cut property (every cut
    keeps all of its edges or at least k of them) gives the component-exact
    form checked here: H - F and G - F have {e identical} connected
    components.  This module turns that guarantee into an executable
    experiment: enumerate or sample failure sets, knock the edges out of
    both graphs, compare.

    All sampling is driven by an explicit {!Rng.t}, so a (seed, graph,
    certificate) triple replays exactly. *)

(** {1 Certificates under failures} *)

type violation = {
  failed : int list;  (** failure set F, as edge ids of the input graph *)
  components_g : int;  (** connected components of G - F *)
  components_h : int;  (** connected components of H - F (> components_g) *)
}

type cert_report = {
  k : int;  (** the certificate's parameter; failure sets have <= k-1 edges *)
  trials : int;  (** failure sets tested *)
  exhaustive : bool;
      (** whether every failure set with |F| <= k-1 was enumerated *)
  violations : int;  (** trials where H - F split more than G - F *)
  worst : violation option;
      (** the violation with the largest component gap, if any *)
}

val check_certificate :
  ?rng:Rng.t -> ?budget:int -> Graph.t -> Certificate.t -> cert_report
(** [check_certificate g c] tests the certificate against failure sets of
    at most [c.k - 1] edges.  When the number of such sets is at most
    [budget] (default 2000) they are all enumerated ([exhaustive = true]);
    otherwise [budget] sets are sampled: the empty set, then sets of a
    uniform non-zero size, drawn with the given [rng] (default seed 1).
    Duplicate sampled sets are allowed — this is a stress test, not a
    counter. *)

val is_resilient : ?rng:Rng.t -> ?budget:int -> Graph.t -> Certificate.t -> bool
(** [violations = 0] shorthand, used by the qcheck properties. *)

val pp_cert_report : Format.formatter -> cert_report -> unit

(** {1 Spanners under failures} *)

type spanner_report = {
  failures : int;  (** edges removed per trial *)
  span_trials : int;
  disconnected : int;
      (** trials where H - F lost a component of G - F (infinite stretch) *)
  baseline : float;  (** stretch of H in G with no failures *)
  worst_stretch : float;
      (** max stretch of H - F w.r.t. G - F over the connected trials
          ([neg_infinity] when every trial disconnected) *)
  mean_stretch : float;  (** mean over the connected trials ([nan] if none) *)
}

val check_spanner :
  ?rng:Rng.t ->
  ?trials:int ->
  failures:int ->
  Graph.t ->
  bool array ->
  spanner_report
(** [check_spanner ~failures g keep] removes [failures] random edges F from
    the graph and measures the exact stretch of the surviving spanner
    [keep - F] with respect to [G - F], over [trials] (default 32) sampled
    sets.  Spanners promise nothing under failures — this measures the
    degradation the paper's certificates are designed to avoid.  The full
    graph as its own spanner reports stretch 1.0 in every trial. *)

val pp_spanner_report : Format.formatter -> spanner_report -> unit
