open! Import

(** Approximation for the k-edge-connected spanning subgraph problem
    (k-ECSS), the optimization framing of Section 1.3.

    Given a k-edge-connected graph, any k-connectivity certificate is a
    k-edge-connected spanning subgraph; with Theorem G.1's packing it has
    at most kn(1+ε) edges, against the universal lower bound of
    ceil(kn/2) edges (every vertex needs degree >= k).  That makes it a
    2(1+ε)-approximation — and, unlike Parter's certificate [Par19], with
    {e exact} connectivity k, not k(1-ε). *)

type outcome = {
  certificate : Certificate.t;
  size : int;
  lower_bound : int;  (** ceil(k·n/2) *)
  ratio : float;  (** size / lower_bound — guaranteed <= 2(1+ε) + o(1) *)
  connectivity_checked : bool;
      (** whether the exact λ(H) >= k check ran (skipped above the
          verification size cutoff) *)
}

val approximate :
  ?epsilon:float -> ?verify_upto:int -> k:int -> Graph.t -> outcome
(** [approximate ~k g]: requires λ(G) >= k, which is verified for graphs
    with at most [verify_upto] vertices (default 400) and trusted above.
    Raises [Invalid_argument] if the check runs and fails.
    [epsilon] defaults to 0.25. *)
