open! Import

(** Randomized polylog-round certificates via Karger edge splitting
    (Theorem 1.9).

    Edges are split uniformly at random into Q = Θ(k·ε²/log n) groups;
    each group gets a k' = ceil(k(1+ε)/(Q(1-ε)))-connectivity certificate
    by spanner packing (computed in parallel across groups — the round
    account takes the maximum, not the sum); the union is, w.h.p., an
    *exact* k-connectivity certificate of G with at most kn(1+O(ε)) edges.
    When Q = 1 this degenerates to Theorem G.1 itself. *)

type outcome = {
  certificate : Certificate.t;
  groups : int;  (** Q *)
  k_inner : int;  (** k' *)
}

val run : ?c:float -> rng:Rng.t -> k:int -> epsilon:float -> Graph.t -> outcome
(** Requires [k >= 1] and [0 < epsilon < 1/2].  [c] (default 3.0) is the
    constant in Q = floor(k·ε²/(c·ln n)); Karger's theorem wants it large
    enough for the w.h.p. guarantee — tests lower it to exercise Q > 1 at
    laptop scale, trading failure probability they then measure. *)

val size_bound : n:int -> k:int -> epsilon:float -> float
(** n·k·(1+8ε), the bound from Appendix G's final computation. *)
