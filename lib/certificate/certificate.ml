open! Import

type t = { keep : bool array; rounds : Rounds.t; k : int }

let of_eids g ~k ?rounds eids =
  let keep = Array.make (Graph.m g) false in
  List.iter
    (fun id ->
      if id < 0 || id >= Graph.m g then invalid_arg "Certificate.of_eids";
      keep.(id) <- true)
    eids;
  {
    keep;
    rounds = (match rounds with Some r -> r | None -> Rounds.create ());
    k;
  }

let size t = Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.keep

let subgraph g t = Graph.sub_by_eids g t.keep

let union a b =
  if Array.length a.keep <> Array.length b.keep then
    invalid_arg "Certificate.union: different graphs";
  let rounds = Rounds.create () in
  Rounds.merge_into rounds a.rounds;
  Rounds.merge_into rounds b.rounds;
  {
    keep = Array.mapi (fun i k -> k || b.keep.(i)) a.keep;
    rounds;
    k = max a.k b.k;
  }

let preserved_connectivity g t =
  let h = subgraph g t in
  let lg = Maxflow.edge_connectivity ~upper:t.k g in
  let lh = Maxflow.edge_connectivity ~upper:t.k h in
  (lg, lh)

let is_certificate g t =
  let lg, lh = preserved_connectivity g t in
  lh >= min t.k lg

let cut_property_exhaustive g t =
  let n = Graph.n g in
  if n > 22 then invalid_arg "Certificate.cut_property_exhaustive: n too large";
  if n < 2 then true
  else begin
    let ok = ref true in
    (* Fix vertex 0 on one side; enumerate the other n-1 memberships. *)
    let total = 1 lsl (n - 1) in
    let side = Array.make n false in
    for mask = 1 to total - 1 do
      for v = 1 to n - 1 do
        side.(v) <- (mask lsr (v - 1)) land 1 = 1
      done;
      let in_g = ref 0 and in_h = ref 0 in
      Graph.iter_edges g (fun e ->
          if side.(e.Graph.u) <> side.(e.Graph.v) then begin
            incr in_g;
            if t.keep.(e.Graph.id) then incr in_h
          end);
      if not (!in_h = !in_g || !in_h >= t.k) then ok := false
    done;
    !ok
  end
