open! Import

(** Ultra-sparse spanner packing (Theorem G.1).

    k peeling steps; step i removes a deterministic ultra-sparse spanner
    (Theorem 1.6, with t = ceil(1/ε), hence at most n(1+ε) edges) from what
    is left of the graph.  Because every spanner is a skeleton, each cut of
    G loses edges to the peeled layers only while at least one layer still
    crosses it — so the union keeps all, or at least k, edges of every cut
    (the exact-connectivity argument of Appendix G).  Total size at most
    k·n·(1+ε); round cost k·polylog(n)/ε. *)

type outcome = {
  certificate : Certificate.t;
  layers : int list;  (** edges peeled per step *)
}

val run : k:int -> epsilon:float -> Graph.t -> outcome
(** Requires [k >= 1] and [epsilon > 0]. *)

val size_bound : n:int -> k:int -> epsilon:float -> float
(** k·n·(1+ε) plus the forest slack; the guarantee tested against. *)
