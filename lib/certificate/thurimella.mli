open! Import

(** Thurimella's certificate [Thu97]: k rounds of spanning-forest peeling.

    F_i is a spanning forest of G minus the first i-1 forests; the union of
    F_1 ... F_k is a k-connectivity certificate with at most k(n-1) edges.
    Distributed cost O(k(D + sqrt n)) rounds, which is what this module
    charges — the baseline the paper's polylog algorithms beat. *)

val certificate : k:int -> Graph.t -> Certificate.t
