open! Import

(** Connectivity certificates (Section 1.3, Appendix G).

    A k-connectivity certificate of G is a spanning subgraph H such that H
    is k-edge-connected whenever G is.  All constructions in this library
    return a {!t}; the validation helpers here are the ground truth used by
    the tests and the bench harness. *)

type t = {
  keep : bool array;  (** edge mask over the input graph *)
  rounds : Rounds.t;
  k : int;  (** the connectivity parameter this certificate was built for *)
}

val of_eids : Graph.t -> k:int -> ?rounds:Rounds.t -> int list -> t

val size : t -> int

val subgraph : Graph.t -> t -> Graph.t

val union : t -> t -> t

val is_certificate : Graph.t -> t -> bool
(** λ(H) >= min(k, λ(G)): H preserves edge connectivity up to k.  This is
    (slightly stronger than) the definition — it also covers graphs that
    are not k-edge-connected, for which the certificate must retain their
    actual connectivity up to k. *)

val preserved_connectivity : Graph.t -> t -> int * int
(** (λ(G) capped at k+1, λ(H) capped at k+1) — the pair the bench
    reports. *)

val cut_property_exhaustive : Graph.t -> t -> bool
(** Appendix G's stronger invariant, checked by enumerating all 2^(n-1)
    cuts: every cut of G keeps either all of its edges or at least k of
    them in H.  Only for n <= 22 (raises otherwise). *)
