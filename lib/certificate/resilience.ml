open! Import

type violation = {
  failed : int list;
  components_g : int;
  components_h : int;
}

type cert_report = {
  k : int;
  trials : int;
  exhaustive : bool;
  violations : int;
  worst : violation option;
}

(* sum_{s=0}^{upto} C(m, s), saturating at cap + 1. *)
let count_failure_sets ~m ~upto cap =
  let total = ref 0 in
  (try
     let c = ref 1 in
     for s = 0 to upto do
       total := !total + !c;
       if !total > cap then raise Exit;
       if s < upto then
         if m - s > 0 && !c > max_int / (m - s) then raise Exit
         else c := !c * (m - s) / (s + 1)
     done
   with Exit -> total := cap + 1);
  !total

(* [s] distinct edge ids by rejection; s <= m. *)
let sample_failure_set rng ~m s =
  let seen = Hashtbl.create (2 * s) in
  while Hashtbl.length seen < s do
    let e = Rng.int rng m in
    if not (Hashtbl.mem seen e) then Hashtbl.add seen e ()
  done;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) seen [])

(* Components of G - F and H - F.  H - F refines G - F (its edges are a
   subset), so equal component counts mean identical partitions. *)
let components_under g (c : Certificate.t) failed =
  let m = Graph.m g in
  let mask_g = Array.make m true in
  let mask_h = Array.copy c.Certificate.keep in
  List.iter
    (fun e ->
      mask_g.(e) <- false;
      mask_h.(e) <- false)
    failed;
  let _, cg = Connectivity.components (Graph.sub_by_eids g mask_g) in
  let _, ch = Connectivity.components (Graph.sub_by_eids g mask_h) in
  (cg, ch)

let check_certificate ?rng ?(budget = 2000) g (c : Certificate.t) =
  if budget < 1 then invalid_arg "Resilience.check_certificate: budget >= 1";
  let m = Graph.m g in
  let upto = max 0 (c.Certificate.k - 1) in
  let upto = min upto m in
  let trials = ref 0 in
  let violations = ref 0 in
  let worst = ref None in
  let try_set failed =
    incr trials;
    let cg, ch = components_under g c failed in
    if ch > cg then begin
      incr violations;
      let gap = function
        | None -> -1
        | Some v -> v.components_h - v.components_g
      in
      if ch - cg > gap !worst then
        worst := Some { failed; components_g = cg; components_h = ch }
    end
  in
  let total = count_failure_sets ~m ~upto budget in
  let exhaustive = total <= budget in
  if exhaustive then begin
    (* all subsets of size s, for each s <= upto *)
    let rec combos start chosen s =
      if s = 0 then try_set (List.rev chosen)
      else
        for e = start to m - s do
          combos (e + 1) (e :: chosen) (s - 1)
        done
    in
    for s = 0 to upto do
      combos 0 [] s
    done
  end
  else begin
    let rng = match rng with Some r -> r | None -> Rng.create 1 in
    try_set [];
    for _ = 2 to budget do
      let s = 1 + Rng.int rng upto in
      try_set (sample_failure_set rng ~m s)
    done
  end;
  {
    k = c.Certificate.k;
    trials = !trials;
    exhaustive;
    violations = !violations;
    worst = !worst;
  }

let is_resilient ?rng ?budget g c =
  (check_certificate ?rng ?budget g c).violations = 0

let pp_cert_report ppf r =
  Format.fprintf ppf "k=%d: %d failure sets (%s), %d violations%t" r.k r.trials
    (if r.exhaustive then "exhaustive" else "sampled")
    r.violations
    (fun ppf ->
      match r.worst with
      | None -> ()
      | Some v ->
          Format.fprintf ppf "; worst |F|=%d split G into %d, H into %d"
            (List.length v.failed) v.components_g v.components_h)

(* ---------- spanners ---------- *)

type spanner_report = {
  failures : int;
  span_trials : int;
  disconnected : int;
  baseline : float;
  worst_stretch : float;
  mean_stretch : float;
}

let check_spanner ?rng ?(trials = 32) ~failures g keep =
  let m = Graph.m g in
  if failures < 0 || failures > m then
    invalid_arg "Resilience.check_spanner: failures outside [0, m]";
  if Array.length keep <> m then
    invalid_arg "Resilience.check_spanner: mask length mismatch";
  let rng = match rng with Some r -> r | None -> Rng.create 1 in
  let baseline = Stretch.max_edge_stretch g keep in
  let disconnected = ref 0 in
  let worst = ref neg_infinity in
  let sum = ref 0.0 and finite = ref 0 in
  for _ = 1 to trials do
    let failed = sample_failure_set rng ~m failures in
    let mask_g = Array.make m true in
    List.iter (fun e -> mask_g.(e) <- false) failed;
    let g', back = Graph.sub_with_mapping g mask_g in
    let keep' = Array.map (fun orig -> keep.(orig)) back in
    let s = Stretch.max_edge_stretch g' keep' in
    if s = Float.infinity then incr disconnected
    else begin
      if s > !worst then worst := s;
      sum := !sum +. s;
      incr finite
    end
  done;
  {
    failures;
    span_trials = trials;
    disconnected = !disconnected;
    baseline;
    worst_stretch = !worst;
    mean_stretch = (if !finite = 0 then nan else !sum /. float_of_int !finite);
  }

let pp_spanner_report ppf r =
  Format.fprintf ppf
    "|F|=%d over %d trials: baseline stretch %.2f, worst %.2f, mean %.2f, %d \
     disconnected"
    r.failures r.span_trials r.baseline r.worst_stretch r.mean_stretch
    r.disconnected
