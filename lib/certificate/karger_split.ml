open! Import

type outcome = { certificate : Certificate.t; groups : int; k_inner : int }

let size_bound ~n ~k ~epsilon =
  float_of_int n *. float_of_int k *. (1.0 +. (8.0 *. epsilon))

let run ?(c = 3.0) ~rng ~k ~epsilon g =
  if k < 1 then invalid_arg "Karger_split.run: k >= 1";
  if epsilon <= 0.0 || epsilon >= 0.5 then
    invalid_arg "Karger_split.run: epsilon in (0, 1/2)";
  if c <= 0.0 then invalid_arg "Karger_split.run: c > 0";
  let n = Graph.n g in
  let m = Graph.m g in
  let q =
    max 1
      (int_of_float
         (floor
            (float_of_int k *. epsilon *. epsilon
            /. (c *. log (float_of_int (max 2 n))))))
  in
  let k_inner =
    int_of_float
      (ceil (float_of_int k *. (1.0 +. epsilon) /. (float_of_int q *. (1.0 -. epsilon))))
  in
  let assignment = Array.init m (fun _ -> Rng.int rng q) in
  let keep = Array.make m false in
  let rounds = Rounds.create () in
  let max_group_rounds = ref 0 in
  for group = 0 to q - 1 do
    let mask = Array.mapi (fun eid _ -> assignment.(eid) = group) keep in
    let sub, mapping = Graph.sub_with_mapping g mask in
    if Graph.m sub > 0 then begin
      let out = Spanner_packing.run ~k:k_inner ~epsilon sub in
      let cert = out.Spanner_packing.certificate in
      Array.iteri
        (fun sub_eid kept -> if kept then keep.(mapping.(sub_eid)) <- true)
        cert.Certificate.keep;
      let r = Rounds.total cert.Certificate.rounds in
      if r > !max_group_rounds then max_group_rounds := r
    end
  done;
  (* Groups run simultaneously on the same network; the split multiplies
     congestion by at most O(1) in expectation per edge, so we charge the
     maximum group cost. *)
  Rounds.charge ~label:"karger:parallel-groups" rounds !max_group_rounds;
  {
    certificate = { Certificate.keep; rounds; k };
    groups = q;
    k_inner;
  }
