open! Import

let forests g =
  let n = Graph.n g in
  let label = Array.make (Graph.m g) 0 in
  let r = Array.make n 0 in
  let scanned = Array.make n false in
  (* Bucket queue on r-values (each bounded by n). *)
  let buckets = Array.make (n + 2) [] in
  for v = 0 to n - 1 do
    buckets.(0) <- v :: buckets.(0)
  done;
  let top = ref 0 in
  let rec pop () =
    if !top < 0 then None
    else
      match buckets.(!top) with
      | [] ->
          decr top;
          pop ()
      | v :: rest ->
          buckets.(!top) <- rest;
          if scanned.(v) || r.(v) <> !top then pop () (* stale entry *)
          else Some v
  in
  let rec scan_all () =
    match pop () with
    | None -> ()
    | Some v ->
        scanned.(v) <- true;
        Graph.iter_adj g v (fun u eid ->
            if not scanned.(u) then begin
              r.(u) <- r.(u) + 1;
              label.(eid) <- r.(u);
              buckets.(r.(u)) <- u :: buckets.(r.(u));
              if r.(u) > !top then top := r.(u)
            end);
        scan_all ()
  in
  scan_all ();
  label

let certificate ~k g =
  if k < 1 then invalid_arg "Nagamochi_ibaraki.certificate: k >= 1";
  let label = forests g in
  let keep = Array.map (fun l -> l >= 1 && l <= k) label in
  let rounds = Rounds.create () in
  (* Sequential baseline: charge the trivial bound of one round per scan. *)
  Rounds.charge ~label:"ni:sequential" rounds (Graph.n g);
  { Certificate.keep; rounds; k }
