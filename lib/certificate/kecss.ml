open! Import

type outcome = {
  certificate : Certificate.t;
  size : int;
  lower_bound : int;
  ratio : float;
  connectivity_checked : bool;
}

let approximate ?(epsilon = 0.25) ?(verify_upto = 400) ~k g =
  if k < 1 then invalid_arg "Kecss.approximate: k >= 1";
  let n = Graph.n g in
  let check = n <= verify_upto in
  if check && not (Maxflow.is_k_edge_connected g k) then
    invalid_arg "Kecss.approximate: input is not k-edge-connected";
  let out = Spanner_packing.run ~k ~epsilon g in
  let certificate = out.Spanner_packing.certificate in
  if check then begin
    let h = Certificate.subgraph g certificate in
    if not (Maxflow.is_k_edge_connected h k) then
      failwith "Kecss.approximate: certificate lost connectivity (bug)"
  end;
  let size = Certificate.size certificate in
  let lower_bound = ((k * n) + 1) / 2 in
  {
    certificate;
    size;
    lower_bound;
    ratio = float_of_int size /. float_of_int (max 1 lower_bound);
    connectivity_checked = check;
  }
