type t = {
  n : int;
  (* Arc arrays: arc i has to.(i), cap.(i); arc i lxor 1 is its reverse.
     For an undirected edge both directions start with the full capacity,
     which is the standard undirected-flow construction. *)
  arc_to : int array;
  arc_cap : int array;
  arc_cap0 : int array;
  off : int array;
  arc_of : int array; (* CSR of arc ids per vertex *)
}

let of_graph ?(unit_capacities = true) g =
  let n = Graph.n g in
  let m = Graph.m g in
  let arc_to = Array.make (2 * m) 0 in
  let arc_cap = Array.make (2 * m) 0 in
  Graph.iter_edges g (fun e ->
      let c = if unit_capacities then 1 else e.Graph.w in
      arc_to.(2 * e.Graph.id) <- e.Graph.v;
      arc_cap.(2 * e.Graph.id) <- c;
      arc_to.((2 * e.Graph.id) + 1) <- e.Graph.u;
      arc_cap.((2 * e.Graph.id) + 1) <- c);
  let deg = Array.make n 0 in
  Graph.iter_edges g (fun e ->
      deg.(e.Graph.u) <- deg.(e.Graph.u) + 1;
      deg.(e.Graph.v) <- deg.(e.Graph.v) + 1);
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  let cursor = Array.copy off in
  let arc_of = Array.make (2 * m) 0 in
  Graph.iter_edges g (fun e ->
      arc_of.(cursor.(e.Graph.u)) <- 2 * e.Graph.id;
      cursor.(e.Graph.u) <- cursor.(e.Graph.u) + 1;
      arc_of.(cursor.(e.Graph.v)) <- (2 * e.Graph.id) + 1;
      cursor.(e.Graph.v) <- cursor.(e.Graph.v) + 1);
  { n; arc_to; arc_cap; arc_cap0 = Array.copy arc_cap; off; arc_of }

let reset net = Array.blit net.arc_cap0 0 net.arc_cap 0 (Array.length net.arc_cap)

(* Dinic: BFS level graph + DFS blocking flow. *)
let max_flow ?(limit = max_int) net s t =
  if s = t then invalid_arg "Maxflow.max_flow: s = t";
  reset net;
  let level = Array.make net.n (-1) in
  let iter = Array.make net.n 0 in
  let bfs () =
    Array.fill level 0 net.n (-1);
    let q = Queue.create () in
    level.(s) <- 0;
    Queue.add s q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      for i = net.off.(v) to net.off.(v + 1) - 1 do
        let a = net.arc_of.(i) in
        let u = net.arc_to.(a) in
        if net.arc_cap.(a) > 0 && level.(u) = -1 then begin
          level.(u) <- level.(v) + 1;
          Queue.add u q
        end
      done
    done;
    level.(t) >= 0
  in
  let rec dfs v pushed =
    if v = t then pushed
    else begin
      let result = ref 0 in
      while !result = 0 && iter.(v) < net.off.(v + 1) - net.off.(v) do
        let a = net.arc_of.(net.off.(v) + iter.(v)) in
        let u = net.arc_to.(a) in
        if net.arc_cap.(a) > 0 && level.(u) = level.(v) + 1 then begin
          let d = dfs u (min pushed net.arc_cap.(a)) in
          if d > 0 then begin
            net.arc_cap.(a) <- net.arc_cap.(a) - d;
            net.arc_cap.(a lxor 1) <- net.arc_cap.(a lxor 1) + d;
            result := d
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !result
    end
  in
  let flow = ref 0 in
  let continue = ref true in
  while !continue && !flow < limit && bfs () do
    Array.fill iter 0 net.n 0;
    let pushed = ref (dfs s (limit - !flow)) in
    while !pushed > 0 do
      flow := !flow + !pushed;
      pushed := if !flow < limit then dfs s (limit - !flow) else 0
    done;
    if !flow >= limit then continue := false
  done;
  min !flow limit

let edge_connectivity ?(upper = max_int) g =
  let n = Graph.n g in
  if n <= 1 then 0
  else if not (Connectivity.is_connected g) then 0
  else begin
    let net = of_graph ~unit_capacities:true g in
    let lambda = ref (if upper = max_int then max_int else upper + 1) in
    (* Fix s = 0; some minimum cut separates 0 from somebody. *)
    for v = 1 to n - 1 do
      let cap = if !lambda = max_int then max_int else !lambda in
      let f = max_flow ~limit:cap net 0 v in
      if f < !lambda then lambda := f
    done;
    !lambda
  end

let is_k_edge_connected g k =
  if k <= 0 then Graph.n g > 0
  else if Graph.n g <= 1 then false
  else edge_connectivity ~upper:k g >= k
