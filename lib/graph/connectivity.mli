(** Connected components and basic connectivity predicates. *)

val components : Graph.t -> int array * int
(** [(comp, count)]: component label per vertex (labels are [0 .. count-1],
    assigned in order of smallest member vertex). *)

val is_connected : Graph.t -> bool

val component_sizes : Graph.t -> int array
(** Size per component label. *)

val same_component : Graph.t -> int -> int -> bool

val spans : Graph.t -> bool array -> bool
(** [spans g keep] is [true] iff the subgraph of the kept edges has exactly
    the same connected components as [g] (i.e. it is a spanning subgraph in
    the connectivity sense, the "skeleton" property of the paper). *)
