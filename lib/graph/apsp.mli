(** All-pairs shortest paths.

    Small-graph oracles used by the test-suite to validate the single-source
    routines and the edge-based stretch computation against an independent
    implementation.  Distances use {!Dijkstra.infinity} for unreachable
    pairs. *)

val floyd_warshall : Graph.t -> int array array
(** O(n³), O(n²) memory — for n in the hundreds. *)

val by_dijkstra : ?allow:(int -> bool) -> Graph.t -> int array array
(** One restricted Dijkstra per vertex. *)

val exact_pair_stretch : Graph.t -> bool array -> float
(** The true pairwise stretch max over u,v of d_H(u,v)/d_G(u,v) via two
    APSP computations.  The edge-based {!Stretch.max_edge_stretch} is an
    upper bound on this; the tests check the sandwich
    [exact <= edge-based]. *)

val diameter : Graph.t -> int
(** Weighted diameter; [Dijkstra.infinity] when disconnected, 0 for
    graphs with < 2 vertices. *)
