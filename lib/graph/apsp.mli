(** All-pairs shortest paths.

    Small-graph oracles used by the test-suite to validate the single-source
    routines and the edge-based stretch computation against an independent
    implementation.  Distances use {!Dijkstra.infinity} for unreachable
    pairs.

    The per-source Dijkstras are independent, so the multi-source entry
    points take [?jobs] (default {!Ultraspan_util.Parallel.default_jobs})
    and fan across the domain pool; results are identical for every job
    count. *)

val floyd_warshall : Graph.t -> int array array
(** O(n³), O(n²) memory — for n in the hundreds. *)

val by_dijkstra : ?jobs:int -> ?allow:(int -> bool) -> Graph.t -> int array array
(** One restricted Dijkstra per vertex. *)

val multi_source :
  ?jobs:int -> ?allow:(int -> bool) -> Graph.t -> int array -> int array array
(** [multi_source g sources] is one distance row per entry of [sources], in
    order — the parallel multi-source mode used by the table harness for
    per-component eccentricity bounds. *)

val exact_pair_stretch : ?jobs:int -> Graph.t -> bool array -> float
(** The true pairwise stretch max over u,v of d_H(u,v)/d_G(u,v) via two
    APSP computations.  The edge-based {!Stretch.max_edge_stretch} is an
    upper bound on this; the tests check the sandwich
    [exact <= edge-based]. *)

val diameter : ?jobs:int -> Graph.t -> int
(** Weighted diameter; [Dijkstra.infinity] when disconnected, 0 for
    graphs with < 2 vertices. *)
