let distances g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Bellman_ford: source out of range";
  let dist = Array.make n Dijkstra.infinity in
  dist.(s) <- 0;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < n do
    changed := false;
    incr rounds;
    Graph.iter_edges g (fun e ->
        let relax a b =
          if dist.(a) < Dijkstra.infinity && dist.(a) + e.Graph.w < dist.(b)
          then begin
            dist.(b) <- dist.(a) + e.Graph.w;
            changed := true
          end
        in
        relax e.Graph.u e.Graph.v;
        relax e.Graph.v e.Graph.u)
  done;
  dist
