module Parallel = Ultraspan_util.Parallel

(* Restricted Dijkstra from [v] that stops as soon as every vertex in
   [targets] is settled (their distances are then final), instead of
   exhausting the whole subgraph.  Vertices the queue never reaches keep
   [Dijkstra.infinity]: when the queue empties, every vertex with a finite
   tentative distance has been settled, so unsettled targets are exactly
   the unreachable ones.  Distances of settled vertices are identical to a
   full single-source run — only unread entries differ. *)
let distances_to_targets ?keep g v ~is_target ~remaining =
  let n = Graph.n g in
  let dist = Array.make n Dijkstra.infinity in
  let settled = Ultraspan_util.Bitset.create n in
  let pq = Ultraspan_util.Pqueue.create ~cmp:compare () in
  let allowed =
    match keep with None -> fun _ -> true | Some mask -> fun eid -> mask.(eid)
  in
  dist.(v) <- 0;
  Ultraspan_util.Pqueue.push pq 0 v;
  let remaining = ref remaining in
  while !remaining > 0 && not (Ultraspan_util.Pqueue.is_empty pq) do
    let d, x = Ultraspan_util.Pqueue.pop_exn pq in
    if not (Ultraspan_util.Bitset.mem settled x) then begin
      Ultraspan_util.Bitset.add settled x;
      if is_target.(x) then begin
        is_target.(x) <- false;
        decr remaining
      end;
      if !remaining > 0 then
        Graph.iter_adj g x (fun u eid ->
            if allowed eid then begin
              let nd = d + Graph.weight g eid in
              if nd < dist.(u) then begin
                dist.(u) <- nd;
                Ultraspan_util.Pqueue.push pq nd u
              end
            end)
    end
  done;
  (dist, settled)

let vertex_worst g keep v =
  (* Worst stretch among edges (v,u) with v < u (each edge charged once).
     If every such edge is kept, each has d_H <= w, so stretch <= 1 and the
     Dijkstra can be skipped. *)
  let needs_check = ref false in
  let kept_count = ref 0 in
  Graph.iter_adj g v (fun u eid ->
      if u > v then
        if keep.(eid) then incr kept_count else needs_check := true);
  if not !needs_check then
    if !kept_count = 0 then (0.0, 0.0, 0)
    else (1.0, float_of_int !kept_count, !kept_count)
  else begin
    (* Early exit: only the distances of the neighbors u > v are read, so
       the search stops once they are all settled. *)
    let is_target = Array.make (Graph.n g) false in
    let remaining = ref 0 in
    Graph.iter_adj g v (fun u _ ->
        if u > v && not is_target.(u) then begin
          is_target.(u) <- true;
          incr remaining
        end);
    let dist, _settled =
      distances_to_targets ~keep g v ~is_target ~remaining:!remaining
    in
    let worst = ref 0.0 and total = ref 0.0 and count = ref 0 in
    Graph.iter_adj g v (fun u eid ->
        if u > v then begin
          let w = Graph.weight g eid in
          let s =
            if dist.(u) = Dijkstra.infinity then Float.infinity
            else if w = 0 then if dist.(u) = 0 then 1.0 else Float.infinity
            else float_of_int dist.(u) /. float_of_int w
          in
          if s > !worst then worst := s;
          total := !total +. s;
          incr count
        end);
    (!worst, !total, !count)
  end

let check_mask g keep =
  if Array.length keep <> Graph.m g then
    invalid_arg "Stretch: mask length mismatch"

(* The per-vertex checks are independent, so they fan across the domain
   pool; both reductions are bit-identical to the sequential loop (max is
   order-free, the mean's float sums are reduced in vertex order). *)

let max_edge_stretch ?jobs g keep =
  check_mask g keep;
  let worst =
    Parallel.map_reduce ?jobs ~n:(Graph.n g)
      ~map:(fun v ->
        let w, _, _ = vertex_worst g keep v in
        w)
      ~init:0.0
      ~reduce:(fun a w -> if w > a then w else a)
  in
  if Graph.m g = 0 then 1.0 else worst

let mean_edge_stretch ?jobs g keep =
  check_mask g keep;
  let total, count =
    Parallel.map_reduce ?jobs ~n:(Graph.n g)
      ~map:(fun v ->
        let _, t, c = vertex_worst g keep v in
        (t, c))
      ~init:(0.0, 0)
      ~reduce:(fun (total, count) (t, c) -> (total +. t, count + c))
  in
  if count = 0 then 1.0 else total /. float_of_int count

let sampled_edge_stretch ?jobs ~rng ~samples g keep =
  check_mask g keep;
  let n = Graph.n g in
  if n = 0 || Graph.m g = 0 then 1.0
  else begin
    (* Draw the sample sequence first (same rng consumption as the
       sequential version), then fan the per-vertex checks out. *)
    let sample = Array.init samples (fun _ -> Ultraspan_util.Rng.int rng n) in
    Parallel.map_reduce ?jobs ~n:samples
      ~map:(fun i ->
        let w, _, _ = vertex_worst g keep sample.(i) in
        w)
      ~init:0.0
      ~reduce:(fun a w -> if w > a then w else a)
  end

let check_stretch ?jobs g keep alpha =
  max_edge_stretch ?jobs g keep <= alpha +. 1e-9
