let vertex_worst g keep v =
  (* Worst stretch among edges (v,u) with v < u (each edge charged once).
     If every such edge is kept, each has d_H <= w, so stretch <= 1 and the
     Dijkstra can be skipped. *)
  let needs_check = ref false in
  let kept_count = ref 0 in
  Graph.iter_adj g v (fun u eid ->
      if u > v then
        if keep.(eid) then incr kept_count else needs_check := true);
  if not !needs_check then
    if !kept_count = 0 then (0.0, 0.0, 0)
    else (1.0, float_of_int !kept_count, !kept_count)
  else begin
    let dist = Dijkstra.distances ~allow:(fun eid -> keep.(eid)) g v in
    let worst = ref 0.0 and total = ref 0.0 and count = ref 0 in
    Graph.iter_adj g v (fun u eid ->
        if u > v then begin
          let w = Graph.weight g eid in
          let s =
            if dist.(u) = Dijkstra.infinity then Float.infinity
            else if w = 0 then if dist.(u) = 0 then 1.0 else Float.infinity
            else float_of_int dist.(u) /. float_of_int w
          in
          if s > !worst then worst := s;
          total := !total +. s;
          incr count
        end);
    (!worst, !total, !count)
  end

let max_edge_stretch g keep =
  if Array.length keep <> Graph.m g then
    invalid_arg "Stretch: mask length mismatch";
  let worst = ref 0.0 in
  for v = 0 to Graph.n g - 1 do
    let w, _, _ = vertex_worst g keep v in
    if w > !worst then worst := w
  done;
  if Graph.m g = 0 then 1.0 else !worst

let mean_edge_stretch g keep =
  if Array.length keep <> Graph.m g then
    invalid_arg "Stretch: mask length mismatch";
  let total = ref 0.0 and count = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let _, t, c = vertex_worst g keep v in
    total := !total +. t;
    count := !count + c
  done;
  if !count = 0 then 1.0 else !total /. float_of_int !count

let sampled_edge_stretch ~rng ~samples g keep =
  if Array.length keep <> Graph.m g then
    invalid_arg "Stretch: mask length mismatch";
  let n = Graph.n g in
  if n = 0 || Graph.m g = 0 then 1.0
  else begin
    let worst = ref 0.0 in
    for _ = 1 to samples do
      let v = Ultraspan_util.Rng.int rng n in
      let w, _, _ = vertex_worst g keep v in
      if w > !worst then worst := w
    done;
    !worst
  end

let check_stretch g keep alpha = max_edge_stretch g keep <= alpha +. 1e-9
