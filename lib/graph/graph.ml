type edge = { u : int; v : int; w : int; id : int }

type csr = {
  off : int array;
  dst : int array;
  eid : int array;
  rev : int array;
}

type t = {
  n : int;
  edges : edge array;
  adj_off : int array; (* length n+1 *)
  adj_dst : int array; (* length 2m; each vertex slice strictly increasing *)
  adj_eid : int array; (* length 2m *)
  adj_rev : int array; (* length 2m; CSR index of the reverse arc *)
  view : csr; (* preallocated zero-copy view over the four arrays above *)
}

let n g = g.n

let m g = Array.length g.edges

let edges g = g.edges

let edge g id = g.edges.(id)

let weight g id = g.edges.(id).w

let endpoints g id =
  let e = g.edges.(id) in
  (e.u, e.v)

let other_endpoint g eid x =
  let e = g.edges.(eid) in
  if e.u = x then e.v
  else if e.v = x then e.u
  else invalid_arg "Graph.other_endpoint: vertex not on edge"

let degree g v = g.adj_off.(v + 1) - g.adj_off.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let iter_adj g v f =
  for i = g.adj_off.(v) to g.adj_off.(v + 1) - 1 do
    f g.adj_dst.(i) g.adj_eid.(i)
  done

let fold_adj g v f init =
  let acc = ref init in
  iter_adj g v (fun u eid -> acc := f !acc u eid);
  !acc

let neighbors g v = List.rev (fold_adj g v (fun acc u eid -> (u, eid) :: acc) [])

(* ---------- arc-level access ----------

   The canonical edge array is sorted by (u, v) with u < v, and [build]
   scatters it in one pass, so every vertex's [adj_dst] slice lists first
   its smaller neighbours in increasing order, then its larger neighbours
   in increasing order — i.e. each slice is strictly increasing.  That
   invariant is what makes [arc_index] a binary search and [neighbors]
   sorted by construction; [build] asserts it. *)

let arc_count g = Array.length g.adj_dst

let arc_base g v = g.adj_off.(v)

let arc_dst g a = g.adj_dst.(a)

let arc_eid g a = g.adj_eid.(a)

let arc_rev g a = g.adj_rev.(a)

(* The view record is built once at construction time, so hot loops (the
   simulator fetches it per run, once, outside the round loop) get the raw
   arrays without allocating anything. *)
let csr g = g.view

let arc_index g v u =
  let lo = ref g.adj_off.(v) and hi = ref (g.adj_off.(v + 1) - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let d = g.adj_dst.(mid) in
    if d = u then res := mid else if d < u then lo := mid + 1 else hi := mid - 1
  done;
  !res

let iter_edges g f = Array.iter f g.edges

let total_weight g = Array.fold_left (fun acc e -> acc + e.w) 0 g.edges

let is_unit_weighted g = Array.for_all (fun e -> e.w = 1) g.edges

(* Index an already-canonical edge array (sorted by (u, v), u < v,
   deduplicated): one counting pass, one scatter pass.  Shared by the
   list-based [build] below and the streaming [of_edge_iter], which
   constructs [edges] without ever materializing a tuple list. *)
let index_edges n edges =
  let m = Array.length edges in
  let deg = Array.make n 0 in
  Array.iter
    (fun e ->
      deg.(e.u) <- deg.(e.u) + 1;
      deg.(e.v) <- deg.(e.v) + 1)
    edges;
  let adj_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    adj_off.(v + 1) <- adj_off.(v) + deg.(v)
  done;
  let cursor = Array.copy adj_off in
  let adj_dst = Array.make (2 * m) 0 in
  let adj_eid = Array.make (2 * m) 0 in
  let adj_rev = Array.make (2 * m) 0 in
  Array.iter
    (fun e ->
      let pu = cursor.(e.u) and pv = cursor.(e.v) in
      adj_dst.(pu) <- e.v;
      adj_eid.(pu) <- e.id;
      adj_dst.(pv) <- e.u;
      adj_eid.(pv) <- e.id;
      adj_rev.(pu) <- pv;
      adj_rev.(pv) <- pu;
      cursor.(e.u) <- pu + 1;
      cursor.(e.v) <- pv + 1)
    edges;
  (* Sorted-slice invariant backing the arc_index binary search. *)
  for v = 0 to n - 1 do
    for i = adj_off.(v) + 1 to adj_off.(v + 1) - 1 do
      assert (adj_dst.(i - 1) < adj_dst.(i))
    done
  done;
  let view = { off = adj_off; dst = adj_dst; eid = adj_eid; rev = adj_rev } in
  { n; edges; adj_off; adj_dst; adj_eid; adj_rev; view }

let build n canonical_edges =
  (* canonical_edges: deduplicated, u < v, valid. *)
  index_edges n (Array.mapi (fun id (u, v, w) -> { u; v; w; id }) canonical_edges)

(* In-place quicksort (insertion cutoff) of a [bv]/[bw] bucket slice by
   destination — the streamed builder's per-vertex neighbour sort. *)
let sort_bucket bv bw lo hi =
  let swap i j =
    let tv = bv.(i) and tw = bw.(i) in
    bv.(i) <- bv.(j);
    bw.(i) <- bw.(j);
    bv.(j) <- tv;
    bw.(j) <- tw
  in
  let rec go lo hi =
    if hi - lo <= 12 then
      for i = lo + 1 to hi do
        let v = bv.(i) and w = bw.(i) in
        let j = ref (i - 1) in
        while !j >= lo && bv.(!j) > v do
          bv.(!j + 1) <- bv.(!j);
          bw.(!j + 1) <- bw.(!j);
          decr j
        done;
        bv.(!j + 1) <- v;
        bw.(!j + 1) <- w
      done
    else begin
      let mid = (lo + hi) lsr 1 in
      (* median-of-three pivot, moved to [hi] *)
      if bv.(mid) < bv.(lo) then swap mid lo;
      if bv.(hi) < bv.(lo) then swap hi lo;
      if bv.(hi) < bv.(mid) then swap hi mid;
      swap mid hi;
      let p = bv.(hi) in
      let i = ref lo in
      for j = lo to hi - 1 do
        if bv.(j) <= p then begin
          swap !i j;
          incr i
        end
      done;
      swap !i hi;
      go lo (!i - 1);
      go (!i + 1) hi
    end
  in
  if hi > lo then go lo hi

let of_edge_iter ~n iter =
  if n < 0 then invalid_arg "Graph.of_edge_iter: negative n";
  (* Pass 1: count edges per smaller endpoint (validating as we go). *)
  let cnt = Array.make (max 1 n) 0 in
  let total = ref 0 in
  iter (fun u v w ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edge_iter: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edge_iter: self-loop";
      if w < 0 then invalid_arg "Graph.of_edge_iter: negative weight";
      let a = if u < v then u else v in
      cnt.(a) <- cnt.(a) + 1;
      incr total);
  let boff = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    boff.(v + 1) <- boff.(v) + cnt.(v)
  done;
  (* Pass 2: scatter the larger endpoints and weights into per-vertex
     buckets — two flat int arrays, never a tuple list. *)
  let bv = Array.make (max 1 !total) 0 in
  let bw = Array.make (max 1 !total) 0 in
  let cur = Array.copy boff in
  iter (fun u v w ->
      let a = if u < v then u else v and b = if u < v then v else u in
      let p = cur.(a) in
      if p >= boff.(a + 1) then
        invalid_arg "Graph.of_edge_iter: stream changed between passes";
      bv.(p) <- b;
      bw.(p) <- w;
      cur.(a) <- p + 1);
  for v = 0 to n - 1 do
    if cur.(v) <> boff.(v + 1) then
      invalid_arg "Graph.of_edge_iter: stream changed between passes"
  done;
  (* Sort each bucket by destination and merge parallel edges keeping the
     minimum weight (matching [canonicalize]); compact in place. *)
  let m = ref 0 in
  for u = 0 to n - 1 do
    let lo = boff.(u) and hi = boff.(u + 1) - 1 in
    sort_bucket bv bw lo hi;
    let k = ref lo in
    for i = lo to hi do
      if i > lo && bv.(i) = bv.(i - 1) then begin
        if bw.(i) < bw.(!k - 1) then bw.(!k - 1) <- bw.(i)
      end
      else begin
        bv.(!k) <- bv.(i);
        bw.(!k) <- bw.(i);
        incr k
      end
    done;
    cnt.(u) <- !k - lo;
    m := !m + (!k - lo)
  done;
  (* Emit the canonical edge array in (u, v) order — bucket order is
     exactly that — and index it. *)
  let dummy = { u = 0; v = 0; w = 0; id = 0 } in
  let edges = Array.make !m dummy in
  let id = ref 0 in
  for u = 0 to n - 1 do
    let lo = boff.(u) in
    for i = lo to lo + cnt.(u) - 1 do
      edges.(!id) <- { u; v = bv.(i); w = bw.(i); id = !id };
      incr id
    done
  done;
  index_edges n edges

let canonicalize ~n triples =
  let check (u, v, w) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Graph.of_edges: endpoint out of range";
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    if w < 0 then invalid_arg "Graph.of_edges: negative weight";
    if u < v then (u, v, w) else (v, u, w)
  in
  let canon = Array.map check triples in
  Array.sort
    (fun (u1, v1, w1) (u2, v2, w2) -> compare (u1, v1, w1) (u2, v2, w2))
    canon;
  (* Merge parallel edges keeping the minimum weight (sort puts it first). *)
  let out = ref [] in
  Array.iter
    (fun (u, v, w) ->
      match !out with
      | (u', v', _) :: _ when u' = u && v' = v -> ()
      | _ -> out := (u, v, w) :: !out)
    canon;
  Array.of_list (List.rev !out)

let of_edge_array ~n triples =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  build n (canonicalize ~n triples)

let of_edges ~n triples = of_edge_array ~n (Array.of_list triples)

let empty n = of_edge_array ~n [||]

let find_edge g a b =
  if a = b then None
  else begin
    let a, b = if degree g a <= degree g b then (a, b) else (b, a) in
    let i = arc_index g a b in
    if i < 0 then None else Some g.adj_eid.(i)
  end

let mem_edge g a b = a <> b && arc_index g a b >= 0

let with_weights g f =
  let edges' = Array.map (fun e -> { e with w = f e.id }) g.edges in
  Array.iter (fun e -> if e.w < 0 then invalid_arg "Graph.with_weights: negative") edges';
  { g with edges = edges' }

let with_unit_weights g = with_weights g (fun _ -> 1)

let sub_by_eids g keep =
  if Array.length keep <> m g then
    invalid_arg "Graph.sub_by_eids: mask length mismatch";
  let triples = ref [] in
  Array.iter
    (fun e -> if keep.(e.id) then triples := (e.u, e.v, e.w) :: !triples)
    g.edges;
  of_edge_array ~n:g.n (Array.of_list !triples)

let sub_with_mapping g keep =
  if Array.length keep <> m g then
    invalid_arg "Graph.sub_with_mapping: mask length mismatch";
  (* The canonical edge array is sorted by (u, v); a filtered subsequence
     stays sorted, so [of_edge_array] assigns new ids in filtered order. *)
  let kept = ref [] in
  for id = m g - 1 downto 0 do
    if keep.(id) then kept := id :: !kept
  done;
  let mapping = Array.of_list !kept in
  let triples =
    Array.map
      (fun id ->
        let e = g.edges.(id) in
        (e.u, e.v, e.w))
      mapping
  in
  (of_edge_array ~n:g.n triples, mapping)

let sub_by_eid_list g eids =
  let keep = Array.make (m g) false in
  List.iter
    (fun id ->
      if id < 0 || id >= m g then invalid_arg "Graph.sub_by_eid_list: bad id";
      keep.(id) <- true)
    eids;
  sub_by_eids g keep

let pp fmt g =
  let lo, hi =
    if m g = 0 then (0, 0)
    else
      Array.fold_left
        (fun (lo, hi) e -> (min lo e.w, max hi e.w))
        (g.edges.(0).w, g.edges.(0).w)
        g.edges
  in
  Format.fprintf fmt "graph(n=%d, m=%d, w∈[%d,%d])" g.n (m g) lo hi

let pp_edges fmt g =
  pp fmt g;
  Array.iter (fun e -> Format.fprintf fmt "@.%d -- %d (w=%d)" e.u e.v e.w) g.edges
