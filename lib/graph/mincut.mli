(** Stoer–Wagner global minimum cut.

    An independent O(n³) oracle for edge connectivity: with unit weights the
    minimum cut value equals λ(G).  Used to cross-check the flow-based
    {!Maxflow.edge_connectivity} in the property tests. *)

val stoer_wagner : Graph.t -> int
(** Weight of a global minimum cut of a connected graph with >= 2 vertices.
    Returns 0 for disconnected graphs and raises [Invalid_argument] for
    graphs with < 2 vertices. *)

val stoer_wagner_cut : Graph.t -> int * bool array
(** [(weight, side)]: a minimum cut and the side of each vertex. *)
