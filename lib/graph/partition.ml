type t = {
  g : Graph.t;
  cluster_of : int array;
  parent : int array;
  parent_eid : int array;
  roots : int array;
}

let count t = Array.length t.roots

let trivial g =
  let n = Graph.n g in
  {
    g;
    cluster_of = Array.init n (fun v -> v);
    parent = Array.make n (-1);
    parent_eid = Array.make n (-1);
    roots = Array.init n (fun v -> v);
  }

let of_cluster_of g cluster_of =
  let n = Graph.n g in
  if Array.length cluster_of <> n then
    invalid_arg "Partition.of_cluster_of: length mismatch";
  let cmax = Array.fold_left max (-1) cluster_of in
  let roots = Array.make (cmax + 1) (-1) in
  for v = n - 1 downto 0 do
    let c = cluster_of.(v) in
    if c < -1 then invalid_arg "Partition.of_cluster_of: bad cluster id";
    if c >= 0 then roots.(c) <- v
  done;
  Array.iteri
    (fun c r ->
      if r = -1 then
        invalid_arg
          (Printf.sprintf "Partition.of_cluster_of: empty cluster %d" c))
    roots;
  let parent = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let seen = Array.make n false in
  let q = Queue.create () in
  Array.iteri
    (fun c r ->
      seen.(r) <- true;
      Queue.add (r, c) q)
    roots;
  while not (Queue.is_empty q) do
    let v, c = Queue.pop q in
    Graph.iter_adj g v (fun u eid ->
        if (not seen.(u)) && cluster_of.(u) = c then begin
          seen.(u) <- true;
          parent.(u) <- v;
          parent_eid.(u) <- eid;
          Queue.add (u, c) q
        end)
  done;
  for v = 0 to n - 1 do
    if cluster_of.(v) >= 0 && not seen.(v) then
      invalid_arg "Partition.of_cluster_of: cluster not connected"
  done;
  { g; cluster_of = Array.copy cluster_of; parent; parent_eid; roots }

let members t =
  let out = Array.make (count t) [] in
  for v = Graph.n t.g - 1 downto 0 do
    let c = t.cluster_of.(v) in
    if c >= 0 then out.(c) <- v :: out.(c)
  done;
  out

let sizes t =
  let out = Array.make (count t) 0 in
  Array.iter (fun c -> if c >= 0 then out.(c) <- out.(c) + 1) t.cluster_of;
  out

let tree_edges t =
  let acc = ref [] in
  Array.iter (fun eid -> if eid >= 0 then acc := eid :: !acc) t.parent_eid;
  List.rev !acc

let depths t =
  let n = Graph.n t.g in
  let depth = Array.make n (-1) in
  let rec compute v =
    if depth.(v) >= 0 then depth.(v)
    else if t.cluster_of.(v) < 0 then -1
    else if t.parent.(v) = -1 then begin
      depth.(v) <- 0;
      0
    end
    else begin
      let d = 1 + compute t.parent.(v) in
      depth.(v) <- d;
      d
    end
  in
  for v = 0 to n - 1 do
    if t.cluster_of.(v) >= 0 then ignore (compute v)
  done;
  depth

let radius t c =
  if c < 0 || c >= count t then invalid_arg "Partition.radius: bad cluster";
  let depth = depths t in
  let best = ref 0 in
  Array.iteri
    (fun v cv -> if cv = c && depth.(v) > !best then best := depth.(v))
    t.cluster_of;
  !best

let max_radius t =
  let depth = depths t in
  Array.fold_left max 0 (Array.map (fun d -> max d 0) depth)

let is_partition t = Array.for_all (fun c -> c >= 0) t.cluster_of

let restrict t ~keep_cluster =
  let c_old = count t in
  let remap = Array.make c_old (-1) in
  let next = ref 0 in
  for c = 0 to c_old - 1 do
    if keep_cluster c then begin
      remap.(c) <- !next;
      incr next
    end
  done;
  let n = Graph.n t.g in
  let cluster_of = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  for v = 0 to n - 1 do
    let c = t.cluster_of.(v) in
    if c >= 0 && remap.(c) >= 0 then begin
      cluster_of.(v) <- remap.(c);
      parent.(v) <- t.parent.(v);
      parent_eid.(v) <- t.parent_eid.(v)
    end
  done;
  let roots = Array.make !next (-1) in
  Array.iteri (fun c _ -> if remap.(c) >= 0 then roots.(remap.(c)) <- t.roots.(c)) t.roots;
  { g = t.g; cluster_of; parent; parent_eid; roots }

let validate t =
  let n = Graph.n t.g in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let result = ref (Ok ()) in
  let check cond fmt =
    Printf.ksprintf (fun s -> if (not cond) && !result = Ok () then result := Error s) fmt
  in
  check (Array.length t.cluster_of = n) "cluster_of length";
  check (Array.length t.parent = n) "parent length";
  check (Array.length t.parent_eid = n) "parent_eid length";
  if !result <> Ok () then !result
  else begin
    let c = count t in
    Array.iteri
      (fun i r ->
        check (r >= 0 && r < n) "root %d out of range" i;
        if r >= 0 && r < n then begin
          check (t.cluster_of.(r) = i) "root %d not in its cluster" i;
          check (t.parent.(r) = -1) "root %d has a parent" i
        end)
      t.roots;
    for v = 0 to n - 1 do
      let cv = t.cluster_of.(v) in
      check (cv >= -1 && cv < c) "vertex %d: bad cluster id" v;
      if cv = -1 then begin
        check (t.parent.(v) = -1) "unclustered vertex %d has parent" v;
        check (t.parent_eid.(v) = -1) "unclustered vertex %d has parent edge" v
      end
      else if t.parent.(v) <> -1 then begin
        let p = t.parent.(v) and eid = t.parent_eid.(v) in
        check (p >= 0 && p < n) "vertex %d: parent out of range" v;
        check (eid >= 0 && eid < Graph.m t.g) "vertex %d: bad parent eid" v;
        if p >= 0 && p < n && eid >= 0 && eid < Graph.m t.g then begin
          let a, b = Graph.endpoints t.g eid in
          check ((a = v && b = p) || (a = p && b = v))
            "vertex %d: parent edge does not join v and parent" v;
          check (t.cluster_of.(p) = cv) "vertex %d: parent in other cluster" v
        end
      end
      else check (cv >= 0 && t.roots.(cv) = v) "non-root vertex %d has no parent" v
    done;
    if !result <> Ok () then !result
    else begin
      (* Acyclicity / rootedness: walking parents must reach the root. *)
      let state = Array.make n 0 in
      (* 0 unknown, 1 in progress, 2 ok *)
      let rec walk v =
        if state.(v) = 2 then true
        else if state.(v) = 1 then false
        else begin
          state.(v) <- 1;
          let ok = if t.parent.(v) = -1 then true else walk t.parent.(v) in
          state.(v) <- 2;
          ok
        end
      in
      let cyclic = ref false in
      for v = 0 to n - 1 do
        if t.cluster_of.(v) >= 0 && not (walk v) then cyclic := true
      done;
      if !cyclic then fail "parent pointers contain a cycle" else Ok ()
    end
  end
