let to_channel oc g =
  Printf.fprintf oc "%d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges g (fun e ->
      Printf.fprintf oc "%d %d %d\n" e.Graph.u e.Graph.v e.Graph.w)

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun e ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d\n" e.Graph.u e.Graph.v e.Graph.w));
  Buffer.contents buf

let parse_lines lines =
  let lines =
    List.filter
      (fun l ->
        let l = String.trim l in
        String.length l > 0 && l.[0] <> '#')
      lines
  in
  match lines with
  | [] -> failwith "Graph_io: empty input"
  | header :: rest ->
      let n, m =
        try Scanf.sscanf header " %d %d" (fun a b -> (a, b))
        with _ -> failwith "Graph_io: bad header"
      in
      let triples =
        List.map
          (fun line ->
            try Scanf.sscanf line " %d %d %d" (fun u v w -> (u, v, w))
            with _ -> failwith ("Graph_io: bad edge line: " ^ line))
          rest
      in
      if List.length triples <> m then
        failwith "Graph_io: edge count does not match header";
      Graph.of_edges ~n triples

let of_string s = parse_lines (String.split_on_char '\n' s)

let of_channel ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  parse_lines (List.rev !lines)

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc g)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

(* ---------- DIMACS ---------- *)

let to_dimacs g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p sp %d %d\n" (Graph.n g) (2 * Graph.m g));
  Graph.iter_edges g (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "a %d %d %d\n" (e.Graph.u + 1) (e.Graph.v + 1) e.Graph.w);
      Buffer.add_string buf
        (Printf.sprintf "a %d %d %d\n" (e.Graph.v + 1) (e.Graph.u + 1) e.Graph.w));
  Buffer.contents buf

let of_dimacs s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let triples = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line > 0 then
        match line.[0] with
        | 'c' -> ()
        | 'p' ->
            (try
               Scanf.sscanf line "p %s %d %d" (fun _ nn _ -> n := nn)
             with _ -> failwith "Graph_io: bad DIMACS problem line")
        | 'a' ->
            (try
               Scanf.sscanf line "a %d %d %d" (fun u v w ->
                   if u <> v then triples := (u - 1, v - 1, w) :: !triples)
             with _ -> failwith ("Graph_io: bad DIMACS arc line: " ^ line))
        | _ -> failwith ("Graph_io: unknown DIMACS line: " ^ line))
    lines;
  if !n < 0 then failwith "Graph_io: DIMACS input has no problem line";
  Graph.of_edges ~n:!n !triples

let save_dimacs path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dimacs g))

let load_dimacs path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf ic 4096
         done
       with End_of_file -> ());
      of_dimacs (Buffer.contents buf))
