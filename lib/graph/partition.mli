(** Clusterings and partitions with per-cluster rooted trees.

    This is the paper's central bookkeeping object (Section 2): a
    {e clustering} is a set of disjoint vertex clusters; it is a
    {e partition} when every vertex is clustered; it is an {e r-clustering}
    when each cluster carries a rooted spanning tree of hop-radius <= r
    inside the cluster.  Baswana–Sen iterations, the stretch-friendly
    partitions of Lemma 4.1 and the ultra-sparse reduction of Theorem 1.2
    all manipulate values of this type.

    Representation: per-vertex cluster id ([-1] = unclustered) and
    per-vertex tree parent pointer (vertex + edge id, [-1] at roots and at
    unclustered vertices). *)

type t = {
  g : Graph.t;
  cluster_of : int array;  (** vertex -> cluster id in [0..count-1], or -1 *)
  parent : int array;      (** vertex -> tree parent vertex, or -1 at roots *)
  parent_eid : int array;  (** vertex -> edge id to parent, or -1 at roots *)
  roots : int array;       (** cluster id -> root vertex *)
}

val count : t -> int
(** Number of clusters. *)

val trivial : Graph.t -> t
(** One singleton cluster per vertex. *)

val of_cluster_of : Graph.t -> int array -> t
(** Rebuild trees for a given (possibly partial) cluster assignment: inside
    each cluster a BFS tree from the smallest-id member.  Raises if some
    cluster is not connected in the induced subgraph. *)

val members : t -> int list array
(** Cluster id -> member vertices (increasing). *)

val sizes : t -> int array

val tree_edges : t -> int list
(** All tree edge ids (a forest: one tree per cluster). *)

val radius : t -> int -> int
(** Hop radius of the given cluster's tree (max hop depth of a member). *)

val max_radius : t -> int
(** 0 when there are no clusters. *)

val is_partition : t -> bool
(** Every vertex clustered. *)

val restrict : t -> keep_cluster:(int -> bool) -> t
(** Drop the clusters for which [keep_cluster] is false (their vertices
    become unclustered); remaining clusters are renumbered compactly. *)

val depths : t -> int array
(** Vertex -> hop depth in its cluster tree ([-1] if unclustered). *)

val validate : t -> (unit, string) result
(** Structural soundness: parent pointers form in-cluster trees rooted at
    [roots], each tree edge exists in the graph, unclustered vertices have
    no parent, clusters are exactly the root-reachable sets. *)
