let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if comp.(s) = -1 then begin
      let label = !count in
      incr count;
      comp.(s) <- label;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Graph.iter_adj g v (fun u _ ->
            if comp.(u) = -1 then begin
              comp.(u) <- label;
              Queue.add u q
            end)
      done
    end
  done;
  (comp, !count)

let is_connected g =
  let _, count = components g in
  count <= 1

let component_sizes g =
  let comp, count = components g in
  let sizes = Array.make count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
  sizes

let same_component g a b =
  let comp, _ = components g in
  comp.(a) = comp.(b)

let spans g keep =
  let uf_sub = Ultraspan_util.Union_find.create (Graph.n g) in
  Graph.iter_edges g (fun e ->
      if keep.(e.Graph.id) then
        ignore (Ultraspan_util.Union_find.union uf_sub e.Graph.u e.Graph.v));
  (* Every edge of g must connect vertices already joined by kept edges. *)
  let ok = ref true in
  Graph.iter_edges g (fun e ->
      if not (Ultraspan_util.Union_find.same uf_sub e.Graph.u e.Graph.v) then
        ok := false);
  !ok
