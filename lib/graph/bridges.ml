(* Iterative Tarjan: DFS with explicit stack, low-link values; an edge
   (parent -> child) is a bridge iff low(child) > disc(parent). *)

let bridges g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent_edge = Array.make n (-1) in
  let timer = ref 0 in
  let out = ref [] in
  (* Explicit DFS stack of (vertex, adjacency cursor).  We materialize the
     adjacency as arrays once to allow cursor-based iteration. *)
  let adj = Array.make n [||] in
  for v = 0 to n - 1 do
    adj.(v) <- Array.of_list (Graph.neighbors g v)
  done;
  let cursor = Array.make n 0 in
  for root = 0 to n - 1 do
    if disc.(root) = -1 then begin
      let stack = ref [ root ] in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            if cursor.(v) < Array.length adj.(v) then begin
              let u, eid = adj.(v).(cursor.(v)) in
              cursor.(v) <- cursor.(v) + 1;
              if eid <> parent_edge.(v) then begin
                if disc.(u) = -1 then begin
                  disc.(u) <- !timer;
                  low.(u) <- !timer;
                  incr timer;
                  parent_edge.(u) <- eid;
                  stack := u :: !stack
                end
                else if disc.(u) < low.(v) then low.(v) <- disc.(u)
              end
            end
            else begin
              (* retire v; propagate low to its parent *)
              stack := rest;
              match rest with
              | p :: _ ->
                  if low.(v) < low.(p) then low.(p) <- low.(v);
                  if low.(v) > disc.(p) then out := parent_edge.(v) :: !out
              | [] -> ()
            end
      done
    end
  done;
  List.rev !out

let is_2_edge_connected g =
  Graph.n g >= 2 && Connectivity.is_connected g && bridges g = []

let two_edge_components g =
  let bridge = Array.make (Graph.m g) false in
  List.iter (fun e -> bridge.(e) <- true) (bridges g);
  let keep = Array.map not bridge in
  let sub = Graph.sub_by_eids g keep in
  Connectivity.components sub
