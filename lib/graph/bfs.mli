(** Breadth-first search over hop distances (edge weights ignored).

    Hop distances are what the CONGEST round analyses, cluster radii and
    r-clusterings of the paper are measured in, so BFS is kept separate from
    the weighted shortest-path routines. *)

val distances : ?allow:(int -> bool) -> Graph.t -> int -> int array
(** [distances g s] is the hop distance from [s] to every vertex, [-1] when
    unreachable.  [allow eid] restricts traversal to a subset of edges
    (default: all). *)

val tree : ?allow:(int -> bool) -> Graph.t -> int -> int array * int array
(** [tree g s] is [(dist, parent_eid)]: for each reached vertex other than
    [s], the id of the tree edge toward the root; [-1] for [s] and for
    unreachable vertices. *)

val multi_source : ?allow:(int -> bool) -> Graph.t -> int list ->
  int array * int array
(** [multi_source g sources] is [(dist, source_of)]: hop distance to the
    nearest source and which source claimed each vertex ([-1] when
    unreachable).  Ties are broken toward the source reached first in the
    deterministic queue order. *)

val eccentricity : Graph.t -> int -> int
(** Largest finite hop distance from the vertex. *)

val diameter_hops : Graph.t -> int
(** Exact hop diameter (max over vertices of eccentricity); [-1] if the
    graph is disconnected.  O(n·m) — intended for tests and small graphs. *)
