module Rng = Ultraspan_util.Rng

let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1, 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  Graph.of_edges ~n ((n - 1, 0, 1) :: List.init (n - 1) (fun i -> (i, i + 1, 1)))

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v, 1) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let star n =
  if n < 1 then invalid_arg "Generators.star: need n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1, 1)))

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.grid";
  let idx r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (idx r c, idx r (c + 1), 1) :: !acc;
      if r + 1 < rows then acc := (idx r c, idx (r + 1) c, 1) :: !acc
    done
  done;
  Graph.of_edges ~n:(rows * cols) !acc

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus: dims >= 3";
  let idx r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      acc := (idx r c, idx r ((c + 1) mod cols), 1) :: !acc;
      acc := (idx r c, idx ((r + 1) mod rows) c, 1) :: !acc
    done
  done;
  Graph.of_edges ~n:(rows * cols) !acc

let hypercube d =
  if d < 0 || d > 20 then invalid_arg "Generators.hypercube";
  let n = 1 lsl d in
  let acc = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then acc := (v, u, 1) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let binary_tree n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i + 1, i / 2, 1)))

let caterpillar spine legs =
  if spine < 1 || legs < 0 then invalid_arg "Generators.caterpillar";
  let n = spine * (1 + legs) in
  let acc = ref [] in
  for s = 0 to spine - 2 do
    acc := (s, s + 1, 1) :: !acc
  done;
  for s = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      acc := (s, spine + (s * legs) + l, 1) :: !acc
    done
  done;
  Graph.of_edges ~n !acc

let circulant n offsets =
  if n < 2 then invalid_arg "Generators.circulant";
  let acc = ref [] in
  List.iter
    (fun o ->
      if o <= 0 || o >= n then invalid_arg "Generators.circulant: bad offset";
      for v = 0 to n - 1 do
        let u = (v + o) mod n in
        if u <> v then acc := (v, u, 1) :: !acc
      done)
    offsets;
  Graph.of_edges ~n !acc

let harary ~k ~n =
  if k < 1 || k >= n then invalid_arg "Generators.harary: need 1 <= k < n";
  let half = k / 2 in
  let offsets = List.init half (fun i -> i + 1) in
  let acc = ref [] in
  List.iter
    (fun o ->
      for v = 0 to n - 1 do
        acc := (v, (v + o) mod n, 1) :: !acc
      done)
    offsets;
  if k mod 2 = 1 then
    if n mod 2 = 0 then
      for v = 0 to (n / 2) - 1 do
        acc := (v, v + (n / 2), 1) :: !acc
      done
    else begin
      (* Odd k, odd n: the classic construction joins i to i + (n-1)/2 and
         i to i + (n+1)/2 for i = 0, yielding ceil(kn/2) edges. *)
      for v = 0 to (n - 1) / 2 do
        acc := (v, v + ((n - 1) / 2), 1) :: !acc
      done;
      acc := (0, (n + 1) / 2, 1) :: !acc
    end;
  Graph.of_edges
    ~n
    (List.filter (fun (u, v, _) -> u <> v) !acc)

let gnp ~rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Generators.gnp: p out of range";
  let acc = ref [] in
  (* Geometric skipping for sparse p keeps this O(m) instead of O(n^2). *)
  if p >= 1.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        acc := (u, v, 1) :: !acc
      done
    done
  else if p > 0.0 then begin
    let log1mp = log (1.0 -. p) in
    let total = n * (n - 1) / 2 in
    let pos = ref (-1) in
    let decode i =
      (* i-th pair in lexicographic (u,v) order, u < v. *)
      let u = ref 0 and rem = ref i in
      while !rem >= n - 1 - !u do
        rem := !rem - (n - 1 - !u);
        incr u
      done;
      (!u, !u + 1 + !rem)
    in
    let continue = ref true in
    while !continue do
      let r = Rng.float rng 1.0 in
      let r = if r <= 0.0 then 1e-18 else r in
      let skip = int_of_float (floor (log r /. log1mp)) in
      pos := !pos + 1 + skip;
      if !pos >= total then continue := false
      else begin
        let u, v = decode !pos in
        acc := (u, v, 1) :: !acc
      end
    done
  end;
  Graph.of_edges ~n !acc

let gnm ~rng ~n ~m =
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Generators.gnm: m out of range";
  let chosen = Hashtbl.create (2 * m) in
  while Hashtbl.length chosen < m do
    let u = Rng.int rng n in
    let v = Rng.int rng n in
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem chosen key) then Hashtbl.replace chosen key ()
    end
  done;
  let acc = Hashtbl.fold (fun (u, v) () l -> (u, v, 1) :: l) chosen [] in
  Graph.of_edges ~n acc

let random_geometric ~rng ~n ~radius =
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      if d <= radius then begin
        let w = max 1 (int_of_float (d /. radius *. 1000.0)) in
        acc := (u, v, w) :: !acc
      end
    done
  done;
  Graph.of_edges ~n !acc

let preferential_attachment ~rng ~n ~degree =
  if degree < 1 then invalid_arg "Generators.preferential_attachment";
  if n <= degree then invalid_arg "Generators.preferential_attachment: n too small";
  (* endpoint pool: each edge contributes both endpoints, so sampling from
     the pool is degree-proportional. *)
  let pool = ref [] in
  let acc = ref [] in
  (* seed: clique on degree+1 vertices *)
  for u = 0 to degree do
    for v = u + 1 to degree do
      acc := (u, v, 1) :: !acc;
      pool := u :: v :: !pool
    done
  done;
  let pool_arr = ref (Array.of_list !pool) in
  for v = degree + 1 to n - 1 do
    let targets = Hashtbl.create degree in
    let attempts = ref 0 in
    while Hashtbl.length targets < degree && !attempts < 50 * degree do
      incr attempts;
      let t = Rng.choose rng !pool_arr in
      if t <> v then Hashtbl.replace targets t ()
    done;
    let new_pool = ref [] in
    Hashtbl.iter
      (fun t () ->
        acc := (v, t, 1) :: !acc;
        new_pool := v :: t :: !new_pool)
      targets;
    pool_arr := Array.append !pool_arr (Array.of_list !new_pool)
  done;
  Graph.of_edges ~n !acc

let random_regular ~rng ~n ~d =
  if d < 1 || d >= n then invalid_arg "Generators.random_regular: 1 <= d < n";
  if n * d mod 2 <> 0 then
    invalid_arg "Generators.random_regular: n*d must be even";
  (* Configuration model: shuffle the multiset of d copies of each vertex
     and pair consecutive stubs, dropping self-loops and duplicates. *)
  let stubs = Array.concat (List.init n (fun v -> Array.make d v)) in
  Rng.shuffle rng stubs;
  let acc = ref [] in
  let seen = Hashtbl.create (n * d) in
  let half = Array.length stubs / 2 in
  for i = 0 to half - 1 do
    let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        acc := (u, v, 1) :: !acc
      end
    end
  done;
  Graph.of_edges ~n !acc

let lollipop clique_n path_n =
  if clique_n < 1 || path_n < 0 then invalid_arg "Generators.lollipop";
  let n = clique_n + path_n in
  let acc = ref [] in
  for u = 0 to clique_n - 1 do
    for v = u + 1 to clique_n - 1 do
      acc := (u, v, 1) :: !acc
    done
  done;
  for i = 0 to path_n - 1 do
    let prev = if i = 0 then clique_n - 1 else clique_n + i - 1 in
    acc := (prev, clique_n + i, 1) :: !acc
  done;
  Graph.of_edges ~n !acc

let randomize_weights ~rng ~lo ~hi g =
  if lo < 0 || hi < lo then invalid_arg "Generators.randomize_weights";
  Graph.with_weights g (fun _ -> Rng.int_in rng lo hi)

let ensure_connected ~rng g =
  let comp, count = Connectivity.components g in
  if count <= 1 then g
  else begin
    (* one representative per component; link them in a random chain *)
    let reps = Array.make count (-1) in
    Array.iteri (fun v c -> if reps.(c) = -1 then reps.(c) <- v) comp;
    Rng.shuffle rng reps;
    let extra = ref [] in
    for i = 0 to count - 2 do
      extra := (reps.(i), reps.(i + 1), 1) :: !extra
    done;
    let existing =
      Array.to_list
        (Array.map (fun e -> (e.Graph.u, e.Graph.v, e.Graph.w)) (Graph.edges g))
    in
    Graph.of_edges ~n:(Graph.n g) (!extra @ existing)
  end

let connected_gnp ~rng ~n ~avg_degree =
  if n < 2 then invalid_arg "Generators.connected_gnp";
  let p = avg_degree /. float_of_int (n - 1) in
  let p = if p > 1.0 then 1.0 else p in
  ensure_connected ~rng (gnp ~rng ~n ~p)

let weighted_connected_gnp ~rng ~n ~avg_degree ~max_w =
  randomize_weights ~rng ~lo:1 ~hi:max_w (connected_gnp ~rng ~n ~avg_degree)

(* ---------- streamed families ----------

   Edge streams for topologies too large to materialize as tuple lists.
   Each constructor produces a {e replayable} iterator — [Graph.of_edge_iter]
   consumes it twice, so randomized families build a fresh [Rng] from the
   seed on every pass instead of threading shared state. *)

module Streamed = struct
  type t = { sn : int; iter : (int -> int -> int -> unit) -> unit }

  let n s = s.sn

  let iter s f = s.iter f

  let graph s = Graph.of_edge_iter ~n:s.sn s.iter

  let grid rows cols =
    if rows < 1 || cols < 1 then invalid_arg "Generators.Streamed.grid";
    let idx r c = (r * cols) + c in
    let iter f =
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          if c + 1 < cols then f (idx r c) (idx r (c + 1)) 1;
          if r + 1 < rows then f (idx r c) (idx (r + 1) c) 1
        done
      done
    in
    { sn = rows * cols; iter }

  let torus rows cols =
    if rows < 3 || cols < 3 then
      invalid_arg "Generators.Streamed.torus: dims >= 3";
    let idx r c = (r * cols) + c in
    let iter f =
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          f (idx r c) (idx r ((c + 1) mod cols)) 1;
          f (idx r c) (idx ((r + 1) mod rows) c) 1
        done
      done
    in
    { sn = rows * cols; iter }

  let degree_bounded ~seed ~n ~degree =
    if n < 3 then invalid_arg "Generators.Streamed.degree_bounded: n >= 3";
    if degree < 2 || degree >= n then
      invalid_arg "Generators.Streamed.degree_bounded: 2 <= degree < n";
    let iter f =
      let rng = Rng.create seed in
      (* cycle backbone keeps the graph connected *)
      for v = 0 to n - 1 do
        f v ((v + 1) mod n) 1
      done;
      (* random chords: every draw consumes the rng, even the rejected
         self-loop ones, so both passes see the same stream *)
      for v = 0 to n - 1 do
        for _ = 1 to degree - 2 do
          let u = Rng.int rng n in
          if u <> v then f v u 1
        done
      done
    in
    { sn = n; iter }

  let preferential ~seed ~n ~degree =
    if degree < 1 then invalid_arg "Generators.Streamed.preferential";
    if n <= degree then
      invalid_arg "Generators.Streamed.preferential: n too small";
    let iter f =
      let rng = Rng.create seed in
      (* Growable endpoint pool (amortized O(1) appends, unlike the
         list-based family above): sampling from it is degree-proportional. *)
      let pool = ref (Array.make 1024 0) in
      let len = ref 0 in
      let push x =
        if !len = Array.length !pool then begin
          let bigger = Array.make (2 * !len) 0 in
          Array.blit !pool 0 bigger 0 !len;
          pool := bigger
        end;
        !pool.(!len) <- x;
        incr len
      in
      for u = 0 to degree do
        for v = u + 1 to degree do
          f u v 1;
          push u;
          push v
        done
      done;
      let targets = Array.make degree (-1) in
      for v = degree + 1 to n - 1 do
        let k = ref 0 in
        let attempts = ref 0 in
        while !k < degree && !attempts < 50 * degree do
          incr attempts;
          let t = !pool.(Rng.int rng !len) in
          let dup = ref (t = v) in
          for i = 0 to !k - 1 do
            if targets.(i) = t then dup := true
          done;
          if not !dup then begin
            targets.(!k) <- t;
            incr k
          end
        done;
        for i = 0 to !k - 1 do
          f v targets.(i) 1;
          push v;
          push targets.(i)
        done
      done
    in
    { sn = n; iter }
end
