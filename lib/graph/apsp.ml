let floyd_warshall g =
  let n = Graph.n g in
  let inf = Dijkstra.infinity in
  let d = Array.make_matrix n n inf in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges g (fun e ->
      if e.Graph.w < d.(e.Graph.u).(e.Graph.v) then begin
        d.(e.Graph.u).(e.Graph.v) <- e.Graph.w;
        d.(e.Graph.v).(e.Graph.u) <- e.Graph.w
      end);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if d.(i).(k) < inf then
        for j = 0 to n - 1 do
          if d.(k).(j) < inf && d.(i).(k) + d.(k).(j) < d.(i).(j) then
            d.(i).(j) <- d.(i).(k) + d.(k).(j)
        done
    done
  done;
  d

let by_dijkstra ?allow g =
  Array.init (Graph.n g) (fun v -> Dijkstra.distances ?allow g v)

let exact_pair_stretch g keep =
  let n = Graph.n g in
  let dg = by_dijkstra g in
  let dh = by_dijkstra ~allow:(fun eid -> keep.(eid)) g in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dg.(u).(v) < Dijkstra.infinity && dg.(u).(v) > 0 then begin
        let s =
          if dh.(u).(v) = Dijkstra.infinity then Float.infinity
          else float_of_int dh.(u).(v) /. float_of_int dg.(u).(v)
        in
        if s > !worst then worst := s
      end
    done
  done;
  if n < 2 then 1.0 else !worst

let diameter g =
  let n = Graph.n g in
  if n < 2 then 0
  else begin
    let worst = ref 0 in
    for v = 0 to n - 1 do
      let d = Dijkstra.distances g v in
      Array.iter
        (fun x ->
          if x = Dijkstra.infinity then worst := Dijkstra.infinity
          else if !worst < Dijkstra.infinity && x > !worst then worst := x)
        d
    done;
    !worst
  end
