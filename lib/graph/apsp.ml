module Parallel = Ultraspan_util.Parallel

let floyd_warshall g =
  let n = Graph.n g in
  let inf = Dijkstra.infinity in
  let d = Array.make_matrix n n inf in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges g (fun e ->
      if e.Graph.w < d.(e.Graph.u).(e.Graph.v) then begin
        d.(e.Graph.u).(e.Graph.v) <- e.Graph.w;
        d.(e.Graph.v).(e.Graph.u) <- e.Graph.w
      end);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if d.(i).(k) < inf then
        for j = 0 to n - 1 do
          if d.(k).(j) < inf && d.(i).(k) + d.(k).(j) < d.(i).(j) then
            d.(i).(j) <- d.(i).(k) + d.(k).(j)
        done
    done
  done;
  d

let multi_source ?jobs ?allow g sources =
  Parallel.map_array ?jobs (Array.length sources) (fun i ->
      Dijkstra.distances ?allow g sources.(i))

let by_dijkstra ?jobs ?allow g =
  Parallel.map_array ?jobs (Graph.n g) (fun v -> Dijkstra.distances ?allow g v)

let exact_pair_stretch ?jobs g keep =
  let n = Graph.n g in
  let dg = by_dijkstra ?jobs g in
  let dh = by_dijkstra ?jobs ~allow:(fun eid -> keep.(eid)) g in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dg.(u).(v) < Dijkstra.infinity && dg.(u).(v) > 0 then begin
        let s =
          if dh.(u).(v) = Dijkstra.infinity then Float.infinity
          else float_of_int dh.(u).(v) /. float_of_int dg.(u).(v)
        in
        if s > !worst then worst := s
      end
    done
  done;
  if n < 2 then 1.0 else !worst

let diameter ?jobs g =
  let n = Graph.n g in
  if n < 2 then 0
  else
    (* [Dijkstra.infinity] is [max_int], so a plain max propagates
       unreachability exactly like the sequential sticky-infinity loop. *)
    Parallel.map_reduce ?jobs ~n
      ~map:(fun v -> Array.fold_left max 0 (Dijkstra.distances g v))
      ~init:0 ~reduce:max
