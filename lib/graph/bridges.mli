(** Bridges and 2-edge-connected components (Tarjan low-link).

    A bridge is an edge whose removal disconnects its component — exactly
    the obstruction to 2-edge-connectivity.  Used as a fast oracle for the
    k = 2 certificate tests ([is_2_edge_connected] is linear-time, against
    the max-flow based λ computation). *)

val bridges : Graph.t -> int list
(** Edge ids of all bridges. *)

val is_2_edge_connected : Graph.t -> bool
(** Connected and bridgeless (requires n >= 2). *)

val two_edge_components : Graph.t -> int array * int
(** [(comp, count)]: label per vertex of its 2-edge-connected component
    (bridges are the only edges between different labels). *)
