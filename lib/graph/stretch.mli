(** Stretch measurement for spanners.

    The stretch of a subgraph H w.r.t. G is max over u,v of
    d_H(u,v)/d_G(u,v).  A standard fact makes this computable edge-by-edge:
    the maximum is attained on an *edge* of G, because any shortest G-path
    is a concatenation of edges and each edge's detour in H bounds the
    path's detour.  So we only ever evaluate d_H(u,v)/w(u,v) over the edges
    (u,v,w) of G.

    The per-vertex checks are independent, so every verifier takes [?jobs]
    (default {!Ultraspan_util.Parallel.default_jobs}, i.e. [ULTRASPAN_JOBS]
    or 1) and fans them across the domain pool.  Results are bit-identical
    for every job count. *)

val distances_to_targets :
  ?keep:bool array ->
  Graph.t ->
  int ->
  is_target:bool array ->
  remaining:int ->
  int array * Ultraspan_util.Bitset.t
(** [distances_to_targets g v ~is_target ~remaining] is a restricted
    single-source Dijkstra from [v] that stops as soon as the [remaining]
    marked targets are all settled, instead of exhausting the graph.
    [?keep] restricts the search to a subgraph edge mask (absent = whole
    graph).  Returns [(dist, settled)]: distances of {e settled} vertices
    equal a full single-source run; entries of unsettled vertices are
    tentative and must not be read (except that once the queue empties,
    unsettled = unreachable).  [is_target] is consumed — settled targets
    are flipped back to [false].  This is the early-exit countdown search
    behind {!max_edge_stretch} and the oracle query engine's cached SSSP
    trees. *)

val max_edge_stretch : ?jobs:int -> Graph.t -> bool array -> float
(** [max_edge_stretch g keep] is the exact stretch of the spanning subgraph
    given by the edge mask [keep].  [Float.infinity] if some edge's
    endpoints are disconnected in the subgraph.  Cost: one restricted
    Dijkstra per vertex that has at least one dropped incident edge, each
    stopping as soon as the vertex's relevant neighbors are settled. *)

val sampled_edge_stretch :
  ?jobs:int ->
  rng:Ultraspan_util.Rng.t ->
  samples:int ->
  Graph.t ->
  bool array ->
  float
(** Lower bound on the stretch from a random sample of vertices (runs the
    per-vertex check for [samples] random vertices).  Used at bench scale
    where the exact check is too slow; the tests always use the exact
    version.  The sample sequence is drawn from [rng] up front, so the
    result does not depend on [jobs]. *)

val check_stretch : ?jobs:int -> Graph.t -> bool array -> float -> bool
(** [check_stretch g keep alpha] iff the subgraph is an alpha-spanner. *)

val mean_edge_stretch : ?jobs:int -> Graph.t -> bool array -> float
(** Average (not max) stretch over edges of [g]; infinity as above. *)
