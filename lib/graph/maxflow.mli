(** Dinic max-flow and edge-connectivity queries.

    The certificate algorithms of the paper promise to preserve
    k-edge-connectivity; these routines are the ground truth the test-suite
    and bench harness check that promise against. *)

type t
(** A flow network built from an undirected graph (each undirected edge
    becomes a unit- or weight-capacity arc pair).  Reusable across many
    (s,t) queries; capacities are reset per query. *)

val of_graph : ?unit_capacities:bool -> Graph.t -> t
(** [unit_capacities] defaults to [true] (edge connectivity semantics);
    with [false] the capacity of each edge is its weight. *)

val max_flow : ?limit:int -> t -> int -> int -> int
(** [max_flow net s t] is the maximum (s,t)-flow.  With [~limit:k] the
    search stops as soon as the flow reaches [k] (returning [k]), which
    turns the query into a cheap "is local connectivity >= k" test. *)

val edge_connectivity : ?upper:int -> Graph.t -> int
(** Global edge connectivity λ(G): the size of a minimum edge cut.  0 when
    disconnected (or [n <= 1]).  Computed as min over vertices [v <> 0] of
    maxflow(0, v), each run capped at [upper+1] when [upper] is given
    (so the result saturates at [upper + 1], meaning "> upper").
    O(n · maxflow). *)

val is_k_edge_connected : Graph.t -> int -> bool
(** [is_k_edge_connected g k] iff λ(G) >= k.  [k <= 0] is trivially true
    for non-empty graphs. *)
