(** Textbook Bellman–Ford, used as the independent oracle for Dijkstra in
    the property tests (weights in this library are non-negative, so both
    must agree exactly). *)

val distances : Graph.t -> int -> int array
(** Weighted distances from the source; [Dijkstra.infinity] when
    unreachable.  O(n·m). *)
