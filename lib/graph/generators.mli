(** Graph generators for tests, examples and the bench harness.

    All randomized generators take an explicit {!Ultraspan_util.Rng.t} and
    are fully reproducible.  Weighted variants draw integer weights from
    the given inclusive range (the paper assumes poly(n)-bounded weights). *)

(** {1 Deterministic families} *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val complete : int -> Graph.t
val star : int -> Graph.t

val grid : int -> int -> Graph.t
(** [grid rows cols], 4-neighbour mesh. *)

val torus : int -> int -> Graph.t
(** [torus rows cols], wrap-around mesh; requires both dims >= 3 to avoid
    parallel edges. *)

val hypercube : int -> Graph.t
(** [hypercube d] on 2^d vertices. *)

val binary_tree : int -> Graph.t
(** Complete binary tree on n vertices (heap layout). *)

val caterpillar : int -> int -> Graph.t
(** [caterpillar spine legs]: a path with [legs] pendant vertices per spine
    vertex.  A classic hard case for clustering radius bounds. *)

val harary : k:int -> n:int -> Graph.t
(** Harary graph H_{k,n}: the minimal k-edge-connected graph on [n]
    vertices, with ceil(kn/2) edges (circulant construction).  Requires
    [1 <= k < n].  Ground truth for the connectivity-certificate tests. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets] joins [i] to [i + o mod n] for each offset. *)

(** {1 Random families} *)

val gnp : rng:Ultraspan_util.Rng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi G(n,p) (possibly disconnected). *)

val gnm : rng:Ultraspan_util.Rng.t -> n:int -> m:int -> Graph.t
(** Uniform graph with exactly [m] distinct edges ([m] <= n(n-1)/2). *)

val random_geometric :
  rng:Ultraspan_util.Rng.t -> n:int -> radius:float -> Graph.t
(** Unit-square random geometric graph; edge weights are the Euclidean
    distances scaled to integers in [1, 1000]. *)

val preferential_attachment :
  rng:Ultraspan_util.Rng.t -> n:int -> degree:int -> Graph.t
(** Barabási–Albert-style: each new vertex attaches to [degree] existing
    vertices sampled proportionally to degree.  Connected by
    construction. *)

val random_regular : rng:Ultraspan_util.Rng.t -> n:int -> d:int -> Graph.t
(** d-regular-ish graph by the configuration model with rejection of
    self-loops and duplicates (so a few vertices may fall short of degree
    d).  Requires [n·d] even and [d < n].  Expander-like for d >= 3 —
    a stress case for the clustering constructions. *)

val lollipop : int -> int -> Graph.t
(** [lollipop clique_n path_n]: a clique with a path attached — maximizes
    the gap between diameter-dependent baselines (Thurimella) and the
    paper's polylog algorithms. *)

(** {1 Combinators} *)

val randomize_weights :
  rng:Ultraspan_util.Rng.t -> lo:int -> hi:int -> Graph.t -> Graph.t
(** Same topology and ids, weights uniform in [\[lo, hi\]]. *)

val ensure_connected : rng:Ultraspan_util.Rng.t -> Graph.t -> Graph.t
(** Add random inter-component edges (weight 1) until connected.  Edge ids
    are {e not} preserved. *)

val connected_gnp :
  rng:Ultraspan_util.Rng.t -> n:int -> avg_degree:float -> Graph.t
(** G(n, p) with [p = avg_degree/(n-1)], patched to be connected.  The
    bench harness's default workload. *)

val weighted_connected_gnp :
  rng:Ultraspan_util.Rng.t -> n:int -> avg_degree:float -> max_w:int -> Graph.t
(** {!connected_gnp} then weights uniform in [\[1, max_w\]]. *)

(** {1 Streamed families}

    Generators for n = 10^6..10^7 topologies that never materialize an
    edge list: each value is a replayable edge {e stream} that
    {!Graph.of_edge_iter} folds straight into CSR form.  Randomized
    families take a [seed] (not an [Rng.t]) because the stream is
    consumed twice and must replay identically — a fresh generator is
    built from the seed on every pass. *)

module Streamed : sig
  type t
  (** A replayable edge stream with a known vertex count. *)

  val n : t -> int
  (** Number of vertices of the topology the stream describes. *)

  val iter : t -> (int -> int -> int -> unit) -> unit
  (** [iter s f] calls [f u v w] once per streamed edge.  Replayable:
      successive calls produce the identical sequence. *)

  val graph : t -> Graph.t
  (** Materialize via {!Graph.of_edge_iter} — structurally equal to
      building the same edges through {!Graph.of_edge_array}. *)

  val degree_bounded : seed:int -> n:int -> degree:int -> t
  (** Cycle backbone (connected by construction) plus [degree - 2]
      random chords per vertex; average degree about [degree].
      Requires [2 <= degree < n] and [n >= 3]. *)

  val grid : int -> int -> t
  (** Streamed {!Generators.grid}. *)

  val torus : int -> int -> t
  (** Streamed {!Generators.torus}. *)

  val preferential : seed:int -> n:int -> degree:int -> t
  (** Barabási–Albert-style preferential attachment with a growable
      endpoint pool; connected by construction.  Unlike
      {!preferential_attachment}, target selection is insertion-ordered
      (no hash-table iteration), so the stream replays exactly. *)
end
