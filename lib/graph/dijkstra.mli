(** Weighted single-source shortest paths.

    The stretch checks of the test-suite and bench harness run Dijkstra from
    every vertex of a *spanner* (given as an edge mask of the original
    graph), so the traversal supports edge restriction without materializing
    the subgraph. *)

val infinity : int
(** Distance value for unreachable vertices ([max_int]). *)

val distances : ?allow:(int -> bool) -> Graph.t -> int -> int array
(** [distances g s] is weighted distance from [s]; {!infinity} when
    unreachable.  [allow eid] restricts traversal to a subset of edges. *)

val tree : ?allow:(int -> bool) -> Graph.t -> int -> int array * int array
(** [(dist, parent_eid)]: shortest-path tree edges; [-1] at the root and for
    unreachable vertices. *)

val distance : ?allow:(int -> bool) -> Graph.t -> int -> int -> int
(** Point-to-point distance with early exit at the target. *)
