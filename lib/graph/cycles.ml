(* BFS from each vertex; the first non-tree edge closing back into the BFS
   tree bounds the shortest cycle through the root.  The minimum over all
   roots is exact (standard argument: take a shortest cycle and root the
   BFS at one of its vertices). *)

let girth_from g root ~cap =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let best = ref cap in
  let q = Queue.create () in
  dist.(root) <- 0;
  Queue.add root q;
  (try
     while not (Queue.is_empty q) do
       let v = Queue.pop q in
       if 2 * dist.(v) >= !best then raise Exit;
       Graph.iter_adj g v (fun u eid ->
           if eid <> parent_eid.(v) then begin
             if dist.(u) = -1 then begin
               dist.(u) <- dist.(v) + 1;
               parent_eid.(u) <- eid;
               Queue.add u q
             end
             else if dist.(u) >= dist.(v) then begin
               (* cycle through root of length <= d(v) + d(u) + 1 *)
               let len = dist.(v) + dist.(u) + 1 in
               if len < !best then best := len
             end
           end)
     done
   with Exit -> ());
  !best

let girth g =
  let best = ref max_int in
  for v = 0 to Graph.n g - 1 do
    best := girth_from g v ~cap:!best
  done;
  !best

let has_cycle_shorter_than g c =
  let rec go v best =
    if v >= Graph.n g then best < c
    else begin
      let best = girth_from g v ~cap:best in
      if best < c then true else go (v + 1) best
    end
  in
  go 0 max_int
