(** Undirected weighted graphs in compressed-sparse-row form.

    This is the substrate every algorithm in the library operates on.
    Design points:

    - Vertices are [0 .. n-1].  Edges carry non-negative integer weights
      (the paper assumes poly(n)-bounded weights; unweighted graphs use
      weight 1 everywhere).
    - Every edge has a stable integer id in [0 .. m-1].  Spanner and
      certificate algorithms return sets of edge ids of the input graph,
      which makes "is the output a subgraph" trivially true by construction
      and lets distinct algorithms be compared edge-for-edge.
    - The structure is immutable after construction.  Self-loops are
      rejected; parallel edges are merged keeping the minimum weight. *)

type edge = { u : int; v : int; w : int; id : int }
(** Canonical representation: [u < v], [w >= 0]. *)

type t

(** {1 Construction} *)

val of_edges : n:int -> (int * int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] vertices from
    [(u, v, weight)] triples.  Orientation of the pairs is irrelevant.
    Raises [Invalid_argument] on out-of-range endpoints, self-loops, or
    negative weights.  Parallel edges are merged (minimum weight kept). *)

val of_edge_array : n:int -> (int * int * int) array -> t

val of_edge_iter : n:int -> ((int -> int -> int -> unit) -> unit) -> t
(** [of_edge_iter ~n iter] builds the same graph as {!of_edge_array}
    without ever materializing the triples: [iter f] must call
    [f u v w] once per edge, and must be {e replayable} — the stream is
    consumed twice (a counting pass, then a scatter pass) and must
    produce the identical sequence both times (checked; a mismatch
    raises [Invalid_argument]).  Peak auxiliary memory is two int arrays
    of the stream length, so n=10^6..10^7 topologies build within
    memory where a tuple list would not.  Validation, parallel-edge
    merging (minimum weight) and edge-id assignment match
    {!of_edge_array} exactly: the result is structurally equal. *)

val empty : int -> t
(** Graph with [n] vertices and no edges. *)

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val edges : t -> edge array
(** All edges, indexed by id.  Do not mutate. *)

val edge : t -> int -> edge
(** Edge by id. *)

val weight : t -> int -> int
(** Weight of the edge with the given id. *)

val endpoints : t -> int -> int * int
(** [(u, v)] with [u < v]. *)

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g eid x] is the endpoint of edge [eid] that is not [x]. *)

val degree : t -> int -> int

val max_degree : t -> int

val iter_adj : t -> int -> (int -> int -> unit) -> unit
(** [iter_adj g v f] calls [f neighbor edge_id] for every incident edge,
    in increasing neighbour order (see {!section-arcs}). *)

val fold_adj : t -> int -> ('a -> int -> int -> 'a) -> 'a -> 'a

val neighbors : t -> int -> (int * int) list
(** [(neighbor, edge_id)] pairs, sorted by neighbour. *)

(** {1:arcs Arc-level access}

    Each undirected edge appears as two {e arcs} in the CSR index; arcs
    are addressed by their CSR position.  The arcs of vertex [v] occupy
    [arc_base v .. arc_base (v+1) - 1], and within that range
    destinations are {e strictly increasing} (a construction invariant of
    {!of_edges}).  These accessors exist for performance-critical code —
    the CONGEST simulator's slot-based message plane maps the message
    [s -> t] to the arc [t -> s], a dense per-inbox slot — and for
    O(log deg) adjacency queries. *)

val arc_count : t -> int
(** [2 m]: total number of arcs. *)

val arc_base : t -> int -> int
(** First arc position of a vertex; index [n] gives [arc_count]. *)

val arc_dst : t -> int -> int
(** Destination vertex of an arc. *)

val arc_eid : t -> int -> int
(** Edge id of an arc. *)

val arc_rev : t -> int -> int
(** Position of the reverse arc, O(1): if arc [a] is [u -> v] then
    [arc_rev a] is the arc [v -> u]. *)

val arc_index : t -> int -> int -> int
(** [arc_index g v u] is the position of the arc [v -> u], or [-1] when
    [u] is not adjacent to [v].  O(log deg v) binary search; allocation
    free (the hot-path variant of {!find_edge}). *)

type csr = {
  off : int array;  (** arc range of vertex [v] is [off.(v) .. off.(v+1)-1] *)
  dst : int array;  (** arc destination *)
  eid : int array;  (** arc edge id *)
  rev : int array;  (** position of the reverse arc *)
}

val csr : t -> csr
(** Zero-copy view of the live CSR arrays, for tight inner loops that
    cannot afford a call per arc (the compiler is not flambda; each
    accessor above is a real function call).  The arrays are the graph's
    own — treat them as read-only. *)

val iter_edges : t -> (edge -> unit) -> unit

val total_weight : t -> int

val is_unit_weighted : t -> bool
(** All weights equal to 1. *)

val find_edge : t -> int -> int -> int option
(** Edge id joining the two vertices, if present.  O(log min-degree)
    binary search over the sorted adjacency slice. *)

val mem_edge : t -> int -> int -> bool

(** {1 Derived graphs} *)

val with_unit_weights : t -> t
(** Same topology and the same edge ids, all weights 1. *)

val with_weights : t -> (int -> int) -> t
(** [with_weights g f] reweights edge [id] to [f id] (same ids). *)

val sub_by_eids : t -> bool array -> t
(** [sub_by_eids g keep] is the spanning subgraph on the same vertex set
    keeping exactly the edges with [keep.(id) = true].  Edge ids in the
    result are renumbered; use {!sub_orig_eid} metadata variant if the
    mapping is needed. *)

val sub_by_eid_list : t -> int list -> t

val sub_with_mapping : t -> bool array -> t * int array
(** Like {!sub_by_eids}, but also returns the map from new edge ids to the
    original ids (new id [i] corresponds to original edge [map.(i)]).  Used
    by the certificate algorithms, which peel spanners off shrinking
    subgraphs and must translate the result back. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** One-line summary: [n] vertices, [m] edges, weight range. *)

val pp_edges : Format.formatter -> t -> unit
