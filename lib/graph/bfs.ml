let all_edges _ = true

let run ?(allow = all_edges) g sources =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let parent_eid = Array.make n (-1) in
  let source_of = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Bfs: source out of range";
      if dist.(s) = -1 then begin
        dist.(s) <- 0;
        source_of.(s) <- s;
        Queue.add s q
      end)
    sources;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Graph.iter_adj g v (fun u eid ->
        if allow eid && dist.(u) = -1 then begin
          dist.(u) <- dist.(v) + 1;
          parent_eid.(u) <- eid;
          source_of.(u) <- source_of.(v);
          Queue.add u q
        end)
  done;
  (dist, parent_eid, source_of)

let distances ?allow g s =
  let dist, _, _ = run ?allow g [ s ] in
  dist

let tree ?allow g s =
  let dist, parent_eid, _ = run ?allow g [ s ] in
  (dist, parent_eid)

let multi_source ?allow g sources =
  let dist, _, source_of = run ?allow g sources in
  (dist, source_of)

let eccentricity g v =
  let dist = distances g v in
  Array.fold_left max 0 dist

let diameter_hops g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    let disconnected = ref false in
    for v = 0 to n - 1 do
      let dist = distances g v in
      Array.iter
        (fun d -> if d = -1 then disconnected := true else if d > !best then best := d)
        dist
    done;
    if !disconnected then -1 else !best
  end
