(** Girth of unweighted graphs.

    The greedy (2k-1)-spanner of [ADD+93] is characterized by girth > 2k,
    which (by the Bondy–Simonovits moore bound) caps its size at
    O(n^(1+1/k)); this module makes that property directly measurable. *)

val girth : Graph.t -> int
(** Length of the shortest cycle (hop count); [max_int] for forests.
    BFS from every vertex: O(n·m). *)

val has_cycle_shorter_than : Graph.t -> int -> bool
(** [has_cycle_shorter_than g c] iff girth < c (may stop early). *)
