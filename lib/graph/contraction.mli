(** Cluster-graph contraction (the r-cluster-graph of Section 2).

    Given a clustering of a base graph, the quotient graph has one vertex
    per cluster and, for each pair of adjacent clusters, one edge whose
    weight is the minimum base-edge weight between them.  Each quotient edge
    remembers a representative base edge, so edge sets computed on the
    quotient pull back to the base graph — this is how spanners of
    cluster graphs become spanners of the original graph in Theorems 1.2
    and 1.5. *)

type t = {
  base : Graph.t;
  quotient : Graph.t;
  cluster_of : int array;  (** base vertex -> quotient vertex, or -1 *)
  repr_eid : int array;    (** quotient edge id -> base edge id *)
}

val make : Graph.t -> Partition.t -> t
(** Contract the clusters of the partition.  Unclustered vertices are
    dropped from the quotient.  Intra-cluster edges disappear. *)

val of_cluster_of : ?allow:(int -> bool) -> Graph.t -> int array -> int -> t
(** [of_cluster_of g cluster_of count]: contraction from a raw assignment
    ([-1] = dropped); clusters need not be connected here.  [allow eid]
    restricts which base edges induce quotient edges (default: all) — the
    linear-size spanner uses this to drop the edges already "dead" in the
    Baswana–Sen sense. *)

val pull_back : t -> int list -> int list
(** Map quotient edge ids to their representative base edge ids. *)

val push_vertex : t -> int -> int
(** Quotient vertex of a base vertex ([-1] when dropped). *)
