(* Stoer–Wagner with an adjacency matrix of merged super-vertices; maximum
   adjacency (minimum cut phase) ordering. *)

let stoer_wagner_cut g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Mincut.stoer_wagner: need >= 2 vertices";
  if not (Connectivity.is_connected g) then (0, Array.make n false)
  else begin
    let w = Array.make_matrix n n 0 in
    Graph.iter_edges g (fun e ->
        w.(e.Graph.u).(e.Graph.v) <- w.(e.Graph.u).(e.Graph.v) + e.Graph.w;
        w.(e.Graph.v).(e.Graph.u) <- w.(e.Graph.v).(e.Graph.u) + e.Graph.w);
    (* members.(v): original vertices merged into super-vertex v. *)
    let members = Array.init n (fun v -> [ v ]) in
    let active = Array.make n true in
    let best = ref max_int in
    let best_side = ref [] in
    let remaining = ref n in
    while !remaining > 1 do
      (* Minimum cut phase: maximum adjacency order over active vertices. *)
      let in_a = Array.make n false in
      let key = Array.make n 0 in
      let prev = ref (-1) in
      let last = ref (-1) in
      for _ = 1 to !remaining do
        (* pick active, not in A, max key *)
        let pick = ref (-1) in
        for v = 0 to n - 1 do
          if active.(v) && not in_a.(v) then
            if !pick = -1 || key.(v) > key.(!pick) then pick := v
        done;
        let v = !pick in
        in_a.(v) <- true;
        prev := !last;
        last := v;
        for u = 0 to n - 1 do
          if active.(u) && not in_a.(u) then key.(u) <- key.(u) + w.(v).(u)
        done
      done;
      (* cut-of-the-phase: last vertex vs rest *)
      let s = !prev and t = !last in
      if key.(t) < !best then begin
        best := key.(t);
        best_side := members.(t)
      end;
      (* merge t into s *)
      for u = 0 to n - 1 do
        if active.(u) && u <> s && u <> t then begin
          w.(s).(u) <- w.(s).(u) + w.(t).(u);
          w.(u).(s) <- w.(u).(s) + w.(u).(t)
        end
      done;
      members.(s) <- members.(t) @ members.(s);
      active.(t) <- false;
      decr remaining
    done;
    let side = Array.make n false in
    List.iter (fun v -> side.(v) <- true) !best_side;
    (!best, side)
  end

let stoer_wagner g = fst (stoer_wagner_cut g)
