(** Plain-text edge-list serialization.

    Format: first line [n m], then [m] lines [u v w].  Lines starting with
    [#] are comments.  Round-trips through {!Graph.of_edges}, so parallel
    edges collapse and ids are renumbered canonically. *)

val to_channel : out_channel -> Graph.t -> unit

val of_channel : in_channel -> Graph.t
(** Raises [Failure] on malformed input. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t

val save : string -> Graph.t -> unit
(** Write to a file path. *)

val load : string -> Graph.t

(** {1 DIMACS}

    The classic DIMACS shortest-path format: a line [p sp n m], then [m]
    lines [a u v w] with 1-based vertices (written symmetrically; on input
    each undirected edge may appear once or twice — duplicates merge). *)

val to_dimacs : Graph.t -> string

val of_dimacs : string -> Graph.t
(** Raises [Failure] on malformed input. *)

val save_dimacs : string -> Graph.t -> unit

val load_dimacs : string -> Graph.t
