let infinity = max_int

let all_edges _ = true

let run ?(allow = all_edges) ?(stop_at = -1) g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  let dist = Array.make n infinity in
  let parent_eid = Array.make n (-1) in
  let settled = Ultraspan_util.Bitset.create n in
  let pq = Ultraspan_util.Pqueue.create ~cmp:compare () in
  dist.(s) <- 0;
  Ultraspan_util.Pqueue.push pq 0 s;
  let finished = ref false in
  while (not !finished) && not (Ultraspan_util.Pqueue.is_empty pq) do
    let d, v = Ultraspan_util.Pqueue.pop_exn pq in
    if not (Ultraspan_util.Bitset.mem settled v) then begin
      Ultraspan_util.Bitset.add settled v;
      if v = stop_at then finished := true
      else
        Graph.iter_adj g v (fun u eid ->
            if allow eid then begin
              let nd = d + Graph.weight g eid in
              if nd < dist.(u) then begin
                dist.(u) <- nd;
                parent_eid.(u) <- eid;
                Ultraspan_util.Pqueue.push pq nd u
              end
            end)
    end
  done;
  (dist, parent_eid)

let distances ?allow g s =
  let dist, _ = run ?allow g s in
  dist

let tree ?allow g s = run ?allow g s

let distance ?allow g s t =
  if t < 0 || t >= Graph.n g then invalid_arg "Dijkstra: target out of range";
  let dist, _ = run ?allow ~stop_at:t g s in
  dist.(t)
