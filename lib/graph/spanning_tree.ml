module Uf = Ultraspan_util.Union_find

let bfs_forest g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let acc = ref [] in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      seen.(s) <- true;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Graph.iter_adj g v (fun u eid ->
            if not seen.(u) then begin
              seen.(u) <- true;
              acc := eid :: !acc;
              Queue.add u q
            end)
      done
    end
  done;
  List.rev !acc

let kruskal_mst g =
  let order = Array.init (Graph.m g) (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (Graph.weight g a) (Graph.weight g b) in
      if c <> 0 then c else compare a b)
    order;
  let uf = Uf.create (Graph.n g) in
  let acc = ref [] in
  Array.iter
    (fun eid ->
      let u, v = Graph.endpoints g eid in
      if Uf.union uf u v then acc := eid :: !acc)
    order;
  List.rev !acc

let prim_mst g =
  let n = Graph.n g in
  let in_tree = Array.make n false in
  let acc = ref [] in
  let pq = Ultraspan_util.Pqueue.create ~cmp:compare () in
  let add_vertex v =
    in_tree.(v) <- true;
    Graph.iter_adj g v (fun u eid ->
        if not in_tree.(u) then
          Ultraspan_util.Pqueue.push pq (Graph.weight g eid, eid) u)
  in
  for s = 0 to n - 1 do
    if not in_tree.(s) then begin
      add_vertex s;
      let continue = ref true in
      while !continue do
        match Ultraspan_util.Pqueue.pop pq with
        | None -> continue := false
        | Some ((_, eid), v) ->
            if not in_tree.(v) then begin
              acc := eid :: !acc;
              add_vertex v
            end
      done
    end
  done;
  List.rev !acc

let forest_weight g eids =
  List.fold_left (fun acc eid -> acc + Graph.weight g eid) 0 eids

let is_forest g eids =
  let uf = Uf.create (Graph.n g) in
  List.for_all
    (fun eid ->
      let u, v = Graph.endpoints g eid in
      Uf.union uf u v)
    eids

let is_spanning_forest g eids =
  is_forest g eids
  &&
  let keep = Array.make (Graph.m g) false in
  List.iter (fun eid -> keep.(eid) <- true) eids;
  Connectivity.spans g keep
