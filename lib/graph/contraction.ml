type t = {
  base : Graph.t;
  quotient : Graph.t;
  cluster_of : int array;
  repr_eid : int array;
}

let of_cluster_of ?(allow = fun _ -> true) g cluster_of count =
  if Array.length cluster_of <> Graph.n g then
    invalid_arg "Contraction.of_cluster_of: length mismatch";
  Array.iter
    (fun c ->
      if c < -1 || c >= count then
        invalid_arg "Contraction.of_cluster_of: cluster id out of range")
    cluster_of;
  (* Best (weight, base eid) per unordered cluster pair, via a hash table
     keyed by (min, max). *)
  let best : (int * int, int * int) Hashtbl.t = Hashtbl.create 97 in
  Graph.iter_edges g (fun e ->
      let cu = cluster_of.(e.Graph.u) and cv = cluster_of.(e.Graph.v) in
      if allow e.Graph.id && cu >= 0 && cv >= 0 && cu <> cv then begin
        let key = if cu < cv then (cu, cv) else (cv, cu) in
        match Hashtbl.find_opt best key with
        | Some (w, eid) when (w, eid) <= (e.Graph.w, e.Graph.id) -> ()
        | _ -> Hashtbl.replace best key (e.Graph.w, e.Graph.id)
      end);
  let triples = ref [] in
  let reprs = ref [] in
  Hashtbl.iter
    (fun (cu, cv) (w, eid) ->
      triples := (cu, cv, w, eid) :: !triples;
      ignore reprs)
    best;
  (* Sort for determinism (hash table iteration order is unspecified). *)
  let sorted = List.sort compare !triples in
  let quotient =
    Graph.of_edges ~n:count (List.map (fun (u, v, w, _) -> (u, v, w)) sorted)
  in
  (* Graph.of_edges sorts canonical triples the same way, and there are no
     duplicates, so edge id i corresponds to element i of [sorted]. *)
  let repr_eid = Array.of_list (List.map (fun (_, _, _, eid) -> eid) sorted) in
  (* Sanity: endpoints must line up. *)
  Array.iteri
    (fun qid base_eid ->
      let qu, qv = Graph.endpoints quotient qid in
      let bu, bv = Graph.endpoints g base_eid in
      let cu = cluster_of.(bu) and cv = cluster_of.(bv) in
      assert ((qu = cu && qv = cv) || (qu = cv && qv = cu)))
    repr_eid;
  { base = g; quotient; cluster_of = Array.copy cluster_of; repr_eid }

let make g (p : Partition.t) = of_cluster_of g p.Partition.cluster_of (Partition.count p)

let pull_back t qids = List.map (fun qid -> t.repr_eid.(qid)) qids

let push_vertex t v = t.cluster_of.(v)
