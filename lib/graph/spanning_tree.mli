(** Spanning trees and forests.

    A forest is returned as a list of edge ids of the host graph, which
    composes directly with the edge-mask convention used by the spanner and
    certificate algorithms. *)

val bfs_forest : Graph.t -> int list
(** Edge ids of a BFS spanning forest (one BFS tree per component, roots at
    the smallest vertex of each component). *)

val kruskal_mst : Graph.t -> int list
(** Minimum spanning forest by Kruskal; ties broken by edge id, so the
    output is deterministic. *)

val prim_mst : Graph.t -> int list
(** Minimum spanning forest by Prim (run from each component).  Used to
    cross-check Kruskal in tests; total weights must agree. *)

val forest_weight : Graph.t -> int list -> int

val is_forest : Graph.t -> int list -> bool
(** No cycle among the given edges. *)

val is_spanning_forest : Graph.t -> int list -> bool
(** A forest whose components equal the graph's components. *)
