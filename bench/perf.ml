(* Perf baseline harness for the CONGEST simulator (EXPERIMENTS.md §P1).

   Bechamel microbenchmarks of the simulator hot path:
   - message-plane throughput (flood workload) under both engines, which is
     the Fast-vs-Ref speedup the baseline records;
   - whole-protocol rounds-per-second (BFS, distributed Baswana-Sen,
     spanning forest — the Thurimella substrate) at several n.

   Results are written as JSON (default [BENCH_congest.json]) so future
   PRs can diff against the recorded baseline.

   Usage:
     perf [--quick] [-o FILE]   run the suite, write FILE
     perf --validate FILE       check FILE parses and each suite ran *)

open Ultraspan

(* ------------------------------------------------------------------ *)
(* workloads                                                           *)
(* ------------------------------------------------------------------ *)

let mp_n = 2000
let mp_avg_degree = 8.0
let flood_rounds = 8

let mp_graph () =
  Generators.connected_gnp ~rng:(Rng.create 42) ~n:mp_n
    ~avg_degree:mp_avg_degree

(* Flood workload: every node sends one word to every neighbour, every
   round, for [flood_rounds] rounds.  The outbox is precomputed in the
   initial state, so per-round program cost is negligible and the engine's
   message plane dominates the measurement. *)
let flood_program =
  {
    Network.init =
      (fun g v ->
        List.rev (Graph.fold_adj g v (fun acc u _ -> (u, [| v land 0xffff |]) :: acc) []));
    round =
      (fun _ ~round ~me:_ out _ ->
        if round >= flood_rounds then { Network.state = out; out = []; halt = true }
        else { Network.state = out; out; halt = false });
  }

let protocol_sizes ~quick = if quick then [ 512; 2048 ] else [ 512; 2048; 8192 ]

let protocol_graph n =
  Generators.connected_gnp ~rng:(Rng.create 43) ~n ~avg_degree:8.0

let weighted_graph n =
  Generators.randomize_weights ~rng:(Rng.create 2) ~lo:1 ~hi:1000
    (protocol_graph n)

(* ------------------------------------------------------------------ *)
(* measurement                                                         *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  kind : string;
  n : int;
  runs : int;
  ns_per_run : float;
  messages_per_run : int;
  rounds_per_run : int;
}

let messages_per_sec r =
  float_of_int r.messages_per_run /. (r.ns_per_run *. 1e-9)

let rounds_per_sec r = float_of_int r.rounds_per_run /. (r.ns_per_run *. 1e-9)

(* One bechamel measurement: OLS estimate of ns/run plus the sample count,
   paired with the workload's per-run stats (measured once, outside the
   clock). *)
let measure ~quick ~name ~kind ~n ~stats f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let elt = List.hd (Test.elements test) in
  let cfg =
    if quick then Benchmark.cfg ~limit:20 ~quota:(Time.second 0.25) ~kde:None ()
    else Benchmark.cfg ~limit:300 ~quota:(Time.second 2.0) ~kde:None ()
  in
  let b = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
  let ns_per_run =
    let ols =
      Analyze.one
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock b
    in
    match Analyze.OLS.estimates ols with
    | Some (est :: _) -> est
    | _ -> Float.nan
  in
  let stats : Network.stats = stats in
  {
    name;
    kind;
    n;
    runs = b.Benchmark.stats.Benchmark.samples;
    ns_per_run;
    messages_per_run = stats.Network.messages;
    rounds_per_run = stats.Network.rounds;
  }

let message_plane_rows ~quick =
  let g = mp_graph () in
  let run engine () = ignore (Network.run ~engine g flood_program) in
  let stats engine = snd (Network.run ~engine g flood_program) in
  let fast =
    measure ~quick ~name:"mp:fast" ~kind:"message-plane" ~n:mp_n
      ~stats:(stats `Fast) (run `Fast)
  in
  let ref_ =
    measure ~quick ~name:"mp:ref" ~kind:"message-plane" ~n:mp_n
      ~stats:(stats `Ref) (run `Ref)
  in
  [ fast; ref_ ]

let protocol_rows ~quick =
  List.concat_map
    (fun n ->
      let g = protocol_graph n in
      let gw = weighted_graph n in
      let sized name = Printf.sprintf "%s:n=%d" name n in
      [
        measure ~quick ~name:(sized "bfs") ~kind:"protocol" ~n
          ~stats:(snd (Programs.bfs g ~root:0))
          (fun () -> ignore (Programs.bfs g ~root:0));
        measure ~quick ~name:(sized "bs-distributed-k3") ~kind:"protocol" ~n
          ~stats:
            (Bs_distributed.run ~seed:7 ~k:3 gw).Bs_distributed.network_stats
          (fun () -> ignore (Bs_distributed.run ~seed:7 ~k:3 gw));
        measure ~quick ~name:(sized "spanning-forest") ~kind:"protocol" ~n
          ~stats:(snd (Programs.spanning_forest g))
          (fun () -> ignore (Programs.spanning_forest g));
      ])
    (protocol_sizes ~quick)

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)
(* ------------------------------------------------------------------ *)

let json_of_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "    { \"name\": %S, \"kind\": %S, \"n\": %d, \"runs\": %d,\n\
       \      \"ns_per_run\": %.1f, \"messages_per_run\": %d, \
        \"rounds_per_run\": %d,\n\
       \      \"messages_per_sec\": %.1f, \"rounds_per_sec\": %.1f }"
       r.name r.kind r.n r.runs r.ns_per_run r.messages_per_run
       r.rounds_per_run (messages_per_sec r) (rounds_per_sec r))

let write_json ~quick ~file rows =
  let fast = List.find (fun r -> r.name = "mp:fast") rows in
  let ref_ = List.find (fun r -> r.name = "mp:ref") rows in
  let speedup = messages_per_sec fast /. messages_per_sec ref_ in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"ultraspan-perf/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": { \"mp_n\": %d, \"mp_avg_degree\": %.1f, \
        \"mp_flood_rounds\": %d },\n"
       mp_n mp_avg_degree flood_rounds);
  Buffer.add_string b "  \"suites\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_of_row b r)
    rows;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"message_plane\": { \"n\": %d, \"fast_messages_per_sec\": %.1f, \
        \"ref_messages_per_sec\": %.1f, \"speedup\": %.2f }\n"
       mp_n (messages_per_sec fast) (messages_per_sec ref_) speedup);
  Buffer.add_string b "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  speedup

(* ------------------------------------------------------------------ *)
(* JSON validation (minimal parser — no JSON library in the image)     *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            if !pos + 1 >= len then fail "bad escape";
            Buffer.add_char b s.[!pos + 1];
            pos := !pos + 2;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields_loop ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; Arr [])
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items_loop ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some 't' -> pos := !pos + 4; Bool true
    | Some 'f' -> pos := !pos + 5; Bool false
    | Some 'n' -> pos := !pos + 4; Null
    | Some _ ->
        let start = !pos in
        while
          !pos < len
          && (match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character";
        Num (float_of_string (String.sub s start (!pos - start)))
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let field name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Bad_json ("missing field " ^ name)))
  | _ -> raise (Bad_json ("not an object looking for " ^ name))

let num = function Num f -> f | _ -> raise (Bad_json "expected number")
let str = function Str s -> s | _ -> raise (Bad_json "expected string")
let arr = function Arr l -> l | _ -> raise (Bad_json "expected array")

let validate file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let j = parse_json s in
  let schema = str (field "schema" j) in
  if schema <> "ultraspan-perf/1" then
    raise (Bad_json ("unknown schema " ^ schema));
  let suites = arr (field "suites" j) in
  if suites = [] then raise (Bad_json "no suites");
  List.iter
    (fun suite ->
      let name = str (field "name" suite) in
      let runs = int_of_float (num (field "runs" suite)) in
      if runs <= 0 then raise (Bad_json (name ^ ": 0 runs"));
      let ns = num (field "ns_per_run" suite) in
      if not (Float.is_finite ns && ns > 0.0) then
        raise (Bad_json (name ^ ": bad ns_per_run")))
    suites;
  let mp = field "message_plane" j in
  let speedup = num (field "speedup" mp) in
  if not (Float.is_finite speedup && speedup > 0.0) then
    raise (Bad_json "bad message_plane.speedup");
  Printf.printf "%s: OK (%d suites, all ran; message-plane speedup %.2fx)\n"
    file (List.length suites) speedup

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let rec opt flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> opt flag rest
    | [] -> None
  in
  match opt "--validate" args with
  | Some file -> (
      try validate file
      with Bad_json msg | Sys_error msg ->
        Printf.eprintf "%s: INVALID (%s)\n" file msg;
        exit 1)
  | None ->
      let file = Option.value (opt "-o" args) ~default:"BENCH_congest.json" in
      Printf.printf "perf: message plane (n=%d, %d flood rounds, both engines)...\n%!"
        mp_n flood_rounds;
      let mp = message_plane_rows ~quick in
      Printf.printf "perf: protocols at n in {%s}...\n%!"
        (String.concat ", " (List.map string_of_int (protocol_sizes ~quick)));
      let rows = mp @ protocol_rows ~quick in
      let speedup = write_json ~quick ~file rows in
      Printf.printf "%-26s %6s %8s %14s %14s %14s\n" "suite" "n" "runs"
        "ns/run" "msgs/s" "rounds/s";
      List.iter
        (fun r ->
          Printf.printf "%-26s %6d %8d %14.0f %14.0f %14.1f\n" r.name r.n
            r.runs r.ns_per_run (messages_per_sec r) (rounds_per_sec r))
        rows;
      Printf.printf "message-plane speedup (fast vs ref): %.2fx\n" speedup;
      Printf.printf "wrote %s\n" file
