(* Perf baseline harness for the CONGEST simulator and the parallel
   verification kernels (EXPERIMENTS.md §P1).

   Bechamel microbenchmarks:
   - message-plane throughput (flood workload) under both engines, which is
     the Fast-vs-Ref speedup the baseline records;
   - whole-protocol rounds-per-second (BFS, distributed Baswana-Sen,
     spanning forest — the Thurimella substrate) at several n;
   - the domain pool: exact stretch verification and independent seeded
     spanner trials at jobs=1 vs jobs=N (stretch:seq/stretch:par,
     tables:seq/tables:par — identical outputs, wall-clock apart);
   - the self-healing engine: the same update stream applied by the
     incremental repair engine vs the rebuild-every-batch baseline
     (dynamic:repair/dynamic:rebuild), measured in updates per second;
   - the distance-oracle serving layer (schema v6): compiling a built
     spanner into the ultraspan-oracle/1 artifact (oracle:compile) and
     serving a hot-skewed batch of distance/membership queries from it at
     jobs=1 vs jobs=N (oracle:query:seq/oracle:query:par) — identical
     answers by construction, wall-clock (queries/sec) apart.

   Efficiency metrics (schema v4): dedicated instrumented runs through the
   unified metrics plane record how well the machinery is used, not just
   how fast it goes —
   - messages/arc/round and arena waste of the Fast engine's slot arena
     (both deterministic: pure functions of the flood workload);
   - pool utilization of the parallel stretch kernel (chunk_run seconds /
     job_capacity seconds — wall-clock, but a ratio of co-measured clocks,
     so it transfers across machines far better than ns/run).
   The run fails (exit 1) when pool utilization drops below the floor or
   arena waste rises above the ceiling; --min-pool-utilization and
   --max-arena-waste override the defaults, and --gate-efficiency FILE
   re-checks a recorded artifact against the floors without re-running
   (the instant negative control: --min-pool-utilization 1.5 must fail,
   utilization can never exceed 1).

   Sharded message plane (schema v5): the same flood workload on streamed
   degree-bounded graphs at n = 1e5 (and 1e6 in full mode), run under the
   Fast engine's sequential and sharded delivery backends
   (mp:seq:n=.../mp:sharded:n=...).  The two are byte-identical in every
   observable — the suites measure wall-clock only, and the full run
   re-proves the identity at n = 1e6 (states, stats and stripped metric
   exposition compared across seq, sharded -j 1 and sharded -j 4).

   Results are written as JSON (schema ultraspan-perf/6, default
   [BENCH_congest.json]) so future PRs can diff against the recorded
   baseline; v1-v5 baselines (no oracle section, etc.) still load.

   Usage:
     perf [--quick] [--jobs N] [-o FILE]   run the suite, write FILE
     perf --validate FILE            check FILE parses and each suite ran
     perf --gate-efficiency FILE [--min-pool-utilization X]
          [--max-arena-waste X]     gate a recorded artifact's efficiency
     perf --mp-smoke N              large-n determinism gate: flood + BFS
        on a streamed degree-bounded graph at n=N, sequential backend vs
        sharded at jobs 1 and 4; states, stats and stripped metrics must
        be byte-identical (exit 1 on any mismatch)
     perf [--quick] --against FILE [--tolerance PCT] [--suites]
        rerun the suite and gate on the recorded baseline: the fast-vs-ref
        message-plane speedup must stay within PCT percent of the baseline
        (default 40; the ratio is machine-robust, unlike wall-clock), and —
        on machines with >= 4 cores and a v2 baseline — the stretch:par
        speedup must clear the 1.8x floor and stay within PCT of the
        recorded ratio.  On smaller machines the parallel gate is skipped
        with a note: a ratio needs cores to manifest.  Against a v3
        baseline the dynamic repair-vs-rebuild speedup must clear a 1.2x
        absolute floor and stay within PCT of the recorded ratio, and
        against a v5 baseline the sharded-vs-seq message-plane speedup at
        n=1e5 must clear a 1.5x absolute floor (>= 4 cores only, same
        skip rule as the stretch gate).  Against a v6 baseline the oracle
        batch queries/sec speedup at jobs=N must clear the same 1.5x
        absolute floor under the same core-aware skip rule.
        [--suites] additionally gates each suite's ns/run — opt-in because
        absolute wall-clock does not transfer across CI machines. *)

open Ultraspan
module J = Exp_json

(* ------------------------------------------------------------------ *)
(* workloads                                                           *)
(* ------------------------------------------------------------------ *)

let mp_n = 2000
let mp_avg_degree = 8.0
let flood_rounds = 8

let mp_graph () =
  Generators.connected_gnp ~rng:(Rng.create 42) ~n:mp_n
    ~avg_degree:mp_avg_degree

(* Flood workload: every node sends one word to every neighbour, every
   round, for a fixed number of rounds.  The outbox is precomputed in the
   initial state, so per-round program cost is negligible and the engine's
   message plane dominates the measurement. *)
let make_flood_program rounds =
  {
    Network.init =
      (fun g v ->
        List.rev (Graph.fold_adj g v (fun acc u _ -> (u, [| v land 0xffff |]) :: acc) []));
    round =
      (fun _ ~round ~me:_ out _ ->
        if round >= rounds then { Network.state = out; out = []; halt = true }
        else { Network.state = out; out; halt = false });
  }

let flood_program = make_flood_program flood_rounds

(* Large-n message plane: streamed degree-bounded graphs put the sharded
   delivery backend where it matters — sizes at which the per-round arc
   sweep is memory-bound.  Fewer flood rounds than the small workload: one
   run already moves millions of words. *)
let sharded_seed = 91
let sharded_degree = 4
let big_flood_rounds = 4
let big_sizes ~quick = if quick then [ 100_000 ] else [ 100_000; 1_000_000 ]

(* the size whose seq-vs-sharded ratio feeds the gated speedup *)
let gate_big_n = 100_000

let big_graph n =
  Generators.Streamed.graph
    (Generators.Streamed.degree_bounded ~seed:sharded_seed ~n
       ~degree:sharded_degree)

let protocol_sizes ~quick = if quick then [ 512; 2048 ] else [ 512; 2048; 8192 ]

let protocol_graph n =
  Generators.connected_gnp ~rng:(Rng.create 43) ~n ~avg_degree:8.0

let weighted_graph n =
  Generators.randomize_weights ~rng:(Rng.create 2) ~lo:1 ~hi:1000
    (protocol_graph n)

(* Parallel-kernel workload: exact stretch of a Baswana-Sen spanner (one
   early-exit Dijkstra per vertex, fanned over the pool) and a batch of
   independent seeded spanner trials (the A1 ablation's inner loop).  Both
   produce identical results at any job count — the suites measure the
   wall-clock difference only. *)
let par_jobs = ref 4
let par_n ~quick = if quick then 512 else 1024
let par_trials = 8

let par_workload ~quick =
  let g =
    Generators.weighted_connected_gnp ~rng:(Rng.create 5) ~n:(par_n ~quick)
      ~avg_degree:8.0 ~max_w:10000
  in
  let keep = (Baswana_sen.run ~rng:(Rng.create 3) ~k:3 g).Baswana_sen.spanner.Spanner.keep in
  (g, keep)

(* Self-healing workload: one seeded update stream on a unit-weight torus,
   applied from a shared initial engine state ([Repair.copy] per measured
   run) by the incremental engine and by the rebuild-every-batch baseline.
   Identical final states (D1 checks that); wall-clock apart. *)
(* Same torus in both modes: below side ~24 the per-batch staging cost
   (hash-table copies, sorting, graph rebuild) dominates both engines and
   the gated ratio loses its margin; at 32 the quiet-machine ratio is ~2x
   against the 1.2x floor. *)
let dyn_side ~quick:_ = 32
let dyn_batches = 4
let dyn_ops = 8

let dyn_workload ~quick =
  let side = dyn_side ~quick in
  let g = Generators.torus side side in
  let stream =
    Update_stream.generate ~rng:(Rng.create 83) ~batches:dyn_batches
      ~ops:dyn_ops ~insert_frac:0.5 ~max_w:1 g
  in
  let cfg = { (Repair.defaults ~k:3) with Repair.jobs = 1 } in
  let inc0 = Repair.create cfg g in
  let rb0 = Repair.create { cfg with Repair.mode = `Rebuild } g in
  (g, stream, inc0, rb0)

(* Oracle workload: one deterministic spanner compiled into the
   ultraspan-oracle/1 artifact, then a hot-skewed batch of
   distance/membership queries served from it.  The compile suite measures
   the artifact build; the query suites measure batch throughput at jobs=1
   vs jobs=N — byte-identical answers either way, so only queries/sec
   separates them.  A generous cache capacity keeps the serving runs out
   of eviction churn: the suites measure the engine, not cache sizing. *)
let oracle_n ~quick = if quick then 512 else 1024
let oracle_k = 3
let oracle_query_count ~quick = if quick then 2048 else 4096
let oracle_cache_capacity = 1024

let oracle_workload ~quick =
  let g =
    Generators.connected_gnp ~rng:(Rng.create 19) ~n:(oracle_n ~quick)
      ~avg_degree:16.0
  in
  let sp = (Bs_derand.run ~k:oracle_k g).Bs_derand.spanner in
  let o = Oracle.compile g ~k:oracle_k sp in
  let qs =
    Query_engine.generate ~rng:(Rng.create 21) ~n:(oracle_n ~quick)
      ~count:(oracle_query_count ~quick)
  in
  (g, sp, o, qs)

(* ------------------------------------------------------------------ *)
(* measurement                                                         *)
(* ------------------------------------------------------------------ *)

type row = {
  name : string;
  kind : string;
  n : int;
  runs : int;
  ns_per_run : float;
  messages_per_run : int;
  rounds_per_run : int;
}

let messages_per_sec r =
  float_of_int r.messages_per_run /. (r.ns_per_run *. 1e-9)

let rounds_per_sec r = float_of_int r.rounds_per_run /. (r.ns_per_run *. 1e-9)

(* One bechamel measurement: OLS estimate of ns/run plus the sample count,
   paired with the workload's per-run message/round counts (measured once,
   outside the clock; 0 for the non-simulator suites). ?quota widens the
   time budget past the quick default for suites whose single run is so
   slow that 0.25s would leave the OLS fit with one or two samples. *)
let measure ?quota ~quick ~name ~kind ~n ~messages ~rounds f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let elt = List.hd (Test.elements test) in
  let cfg =
    if quick then
      let quota = Option.value quota ~default:0.25 in
      Benchmark.cfg ~limit:100 ~quota:(Time.second quota) ~kde:None ()
    else Benchmark.cfg ~limit:300 ~quota:(Time.second 2.0) ~kde:None ()
  in
  let b = Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt in
  let ns_per_run =
    let ols =
      Analyze.one
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock b
    in
    match Analyze.OLS.estimates ols with
    | Some (est :: _) -> est
    | _ -> Float.nan
  in
  {
    name;
    kind;
    n;
    runs = b.Benchmark.stats.Benchmark.samples;
    ns_per_run;
    messages_per_run = messages;
    rounds_per_run = rounds;
  }

let measure_stats ?quota ~quick ~name ~kind ~n ~stats f =
  let stats : Network.stats = stats in
  measure ?quota ~quick ~name ~kind ~n ~messages:stats.Network.messages
    ~rounds:stats.Network.rounds f

let message_plane_rows ~quick =
  let g = mp_graph () in
  let run engine () = ignore (Network.run ~engine g flood_program) in
  let stats engine = snd (Network.run ~engine g flood_program) in
  let fast =
    measure_stats ~quick ~name:"mp:fast" ~kind:"message-plane" ~n:mp_n
      ~stats:(stats `Fast) (run `Fast)
  in
  let ref_ =
    measure_stats ~quick ~name:"mp:ref" ~kind:"message-plane" ~n:mp_n
      ~stats:(stats `Ref) (run `Ref)
  in
  [ fast; ref_ ]

(* Seq vs sharded delivery on the large streamed graphs.  Both backends on
   the Fast engine; results are byte-identical (the differential suite and
   --mp-smoke prove it), so only wall-clock separates the rows. *)
let sharded_rows ~quick =
  let prog = make_flood_program big_flood_rounds in
  List.concat_map
    (fun n ->
      let g = big_graph n in
      let run backend () =
        ignore (Network.run ~engine:`Fast ~backend ~jobs:!par_jobs g prog)
      in
      let stats backend =
        snd (Network.run ~engine:`Fast ~backend ~jobs:!par_jobs g prog)
      in
      let sized b = Printf.sprintf "mp:%s:n=%d" b n in
      [
        measure_stats ~quota:1.0 ~quick ~name:(sized "seq")
          ~kind:"message-plane" ~n ~stats:(stats `Seq) (run `Seq);
        measure_stats ~quota:1.0 ~quick ~name:(sized "sharded")
          ~kind:"message-plane" ~n ~stats:(stats `Sharded) (run `Sharded);
      ])
    (big_sizes ~quick)

let protocol_rows ~quick =
  List.concat_map
    (fun n ->
      let g = protocol_graph n in
      let gw = weighted_graph n in
      let sized name = Printf.sprintf "%s:n=%d" name n in
      [
        measure_stats ~quick ~name:(sized "bfs") ~kind:"protocol" ~n
          ~stats:(snd (Programs.bfs g ~root:0))
          (fun () -> ignore (Programs.bfs g ~root:0));
        measure_stats ~quick ~name:(sized "bs-distributed-k3") ~kind:"protocol"
          ~n
          ~stats:
            (Bs_distributed.run ~seed:7 ~k:3 gw).Bs_distributed.network_stats
          (fun () -> ignore (Bs_distributed.run ~seed:7 ~k:3 gw));
        measure_stats ~quick ~name:(sized "spanning-forest") ~kind:"protocol" ~n
          ~stats:(snd (Programs.spanning_forest g))
          (fun () -> ignore (Programs.spanning_forest g));
      ])
    (protocol_sizes ~quick)

let parallel_rows ~quick =
  let n = par_n ~quick in
  let g, keep = par_workload ~quick in
  let stretch jobs () = ignore (Stretch.max_edge_stretch ~jobs g keep) in
  let trials jobs () =
    ignore
      (Parallel.map_array ~jobs par_trials (fun i ->
           Spanner.size
             (Baswana_sen.run ~rng:(Rng.create (500 + i)) ~k:3 g)
               .Baswana_sen.spanner))
  in
  [
    measure ~quick ~name:"stretch:seq" ~kind:"parallel" ~n ~messages:0
      ~rounds:0 (stretch 1);
    measure ~quick ~name:"stretch:par" ~kind:"parallel" ~n ~messages:0
      ~rounds:0
      (stretch !par_jobs);
    measure ~quick ~name:"tables:seq" ~kind:"parallel" ~n ~messages:0
      ~rounds:0 (trials 1);
    measure ~quick ~name:"tables:par" ~kind:"parallel" ~n ~messages:0
      ~rounds:0
      (trials !par_jobs);
  ]

let oracle_rows ~quick =
  let g, sp, o, qs = oracle_workload ~quick in
  let n = oracle_n ~quick in
  let serve jobs () =
    ignore (Query_engine.run ~jobs ~cache_capacity:oracle_cache_capacity o qs)
  in
  [
    measure ~quick ~name:"oracle:compile" ~kind:"oracle" ~n ~messages:0
      ~rounds:0 (fun () -> ignore (Oracle.compile g ~k:oracle_k sp));
    measure ~quick ~name:"oracle:query:seq" ~kind:"oracle" ~n ~messages:0
      ~rounds:0 (serve 1);
    measure ~quick ~name:"oracle:query:par" ~kind:"oracle" ~n ~messages:0
      ~rounds:0
      (serve !par_jobs);
  ]

let dynamic_rows ~quick =
  let g, stream, inc0, rb0 = dyn_workload ~quick in
  let n = Graph.n g in
  let run e0 () = ignore (Repair.apply_stream (Repair.copy e0) stream) in
  (* This pair feeds a hard-floored ratio gate, so it needs a more careful
     protocol than the throughput suites: one replay costs tens of ms, so
     the quick default quota would leave the OLS fit with one or two
     samples; scheduler/GC noise only ever inflates wall-clock samples; and
     a noise burst that lands on one suite but not the other skews the
     ratio.  So (a) widen the quota, (b) compact the heap before each
     measurement so both engines start from the same GC state, and
     (c) interleave three (repair, rebuild) measurement pairs and keep the
     per-suite minimum — the minimum is the robust estimator under
     additive noise, and interleaving exposes both suites to the same
     machine climate. *)
  let m name f =
    Gc.compact ();
    measure ~quota:1.5 ~quick ~name ~kind:"dynamic" ~n ~messages:0 ~rounds:0 f
  in
  let pairs =
    List.init 3 (fun _ ->
        (m "dynamic:repair" (run inc0), m "dynamic:rebuild" (run rb0)))
  in
  let best sel =
    List.fold_left
      (fun acc p ->
        let r = sel p in
        if r.ns_per_run < acc.ns_per_run then r else acc)
      (sel (List.hd pairs))
      (List.tl pairs)
  in
  [ best fst; best snd ]

(* ------------------------------------------------------------------ *)
(* efficiency metrics (the unified metrics plane, EXPERIMENTS.md §O2)  *)
(* ------------------------------------------------------------------ *)

(* Floors a healthy build clears with margin on any machine: utilization
   of the 4-job stretch kernel is ~0.2 even on one core (compute time ~
   wall-clock there) and rises with real cores; flood arena waste is
   1 - 1/word_limit = 0.75 exactly (one-word payloads in four-word
   slots), so 0.9 only fires if slots stop being reused or payloads
   shrink relative to their slots. *)
let default_min_pool_utilization = 0.10
let default_max_arena_waste = 0.90
let mp_word_limit = 4

type efficiency = {
  eff_deliveries : int;
  eff_arcs : int;
  eff_rounds : int;
  eff_msgs_per_arc_round : float;  (** deterministic *)
  eff_arena_slots : int;
  eff_arena_words : int;
  eff_arena_waste : float;  (** deterministic *)
  eff_pool_jobs : int;
  eff_chunk_run : float;  (** seconds, wall-clock *)
  eff_capacity : float;  (** seconds, wall-clock *)
  eff_pool_utilization : float;
}

let measure_efficiency ~quick =
  (* message plane: one instrumented flood run on the Fast engine *)
  let g = mp_graph () in
  let reg = Metrics.create () in
  ignore (Network.run ~word_limit:mp_word_limit ~metrics:reg ~engine:`Fast g
            flood_program);
  let s = Metrics.snapshot reg in
  let cnt name = Option.value ~default:0 (Metrics.find_counter s name) in
  let deliveries = cnt "congest.deliveries_total" in
  let rounds = cnt "congest.rounds_total" in
  let arcs = 2 * Graph.m g in
  let slots = cnt "timing.congest.fast.arena_slots_touched" in
  let words = cnt "timing.congest.fast.arena_words_written" in
  (* domain pool: one instrumented stretch verification, after an untimed
     warm-up so worker spawn cost stays outside the measurement *)
  let gp, keep = par_workload ~quick in
  ignore (Stretch.max_edge_stretch ~jobs:!par_jobs gp keep);
  let regp = Metrics.create () in
  Parallel.set_metrics (Some regp);
  Fun.protect
    ~finally:(fun () -> Parallel.set_metrics None)
    (fun () -> ignore (Stretch.max_edge_stretch ~jobs:!par_jobs gp keep));
  let sp = Metrics.snapshot regp in
  let tsec name =
    match Metrics.find_timer sp name with
    | Some d -> d.Metrics.tseconds
    | None -> 0.0
  in
  let chunk_run = tsec "timing.parallel.pool.chunk_run" in
  let capacity = tsec "timing.parallel.pool.job_capacity" in
  {
    eff_deliveries = deliveries;
    eff_arcs = arcs;
    eff_rounds = rounds;
    eff_msgs_per_arc_round =
      float_of_int deliveries
      /. (float_of_int arcs *. float_of_int (max 1 rounds));
    eff_arena_slots = slots;
    eff_arena_words = words;
    (* per-delivery slot waste: each delivery occupies a [word_limit]-word
       slot and writes its payload words into it ([slots_touched] counts
       distinct slots ever used, so it is not the per-delivery base) *)
    eff_arena_waste =
      (if deliveries = 0 then 1.0
       else
         1.0
         -. float_of_int words
            /. (float_of_int deliveries *. float_of_int mp_word_limit));
    eff_pool_jobs = !par_jobs;
    eff_chunk_run = chunk_run;
    eff_capacity = capacity;
    eff_pool_utilization =
      (if capacity > 0.0 then chunk_run /. capacity else 0.0);
  }

let print_efficiency e =
  Printf.printf
    "efficiency: %.4f msgs/arc/round (%d deliveries / %d arcs / %d rounds)\n"
    e.eff_msgs_per_arc_round e.eff_deliveries e.eff_arcs e.eff_rounds;
  Printf.printf
    "efficiency: arena waste %.2f (%d payload words over %d deliveries in \
     %d-word slots; %d distinct slots)\n"
    e.eff_arena_waste e.eff_arena_words e.eff_deliveries mp_word_limit
    e.eff_arena_slots;
  Printf.printf
    "efficiency: pool utilization %.2f at %d jobs (%.4fs run / %.4fs \
     capacity)\n"
    e.eff_pool_utilization e.eff_pool_jobs e.eff_chunk_run e.eff_capacity

(* The efficiency gate proper: shared by the measuring modes (on the
   fresh numbers) and --gate-efficiency (on recorded ones). *)
let gate_efficiency ~min_util ~max_waste ~utilization ~waste =
  let failures = ref 0 in
  Printf.printf "efficiency gate: pool utilization %.3f vs floor %.3f\n"
    utilization min_util;
  if not (Float.is_finite utilization) || utilization < min_util then begin
    incr failures;
    Printf.eprintf
      "EFFICIENCY REGRESSION pool utilization %.3f below floor %.3f\n"
      utilization min_util
  end;
  Printf.printf "efficiency gate: arena waste %.3f vs ceiling %.3f\n" waste
    max_waste;
  if not (Float.is_finite waste) || waste > max_waste then begin
    incr failures;
    Printf.eprintf
      "EFFICIENCY REGRESSION arena waste %.3f above ceiling %.3f\n" waste
      max_waste
  end;
  !failures

let run_suite ~quick =
  Printf.printf "perf: message plane (n=%d, %d flood rounds, both engines)...\n%!"
    mp_n flood_rounds;
  let mp = message_plane_rows ~quick in
  Printf.printf
    "perf: sharded message plane at n in {%s} (degree %d, jobs=%d on %d \
     core(s))...\n%!"
    (String.concat ", " (List.map string_of_int (big_sizes ~quick)))
    sharded_degree !par_jobs
    (Parallel.available_cores ());
  let sharded = sharded_rows ~quick in
  Printf.printf "perf: protocols at n in {%s}...\n%!"
    (String.concat ", " (List.map string_of_int (protocol_sizes ~quick)));
  let proto = protocol_rows ~quick in
  Printf.printf
    "perf: parallel kernels (n=%d, jobs=%d on %d core(s))...\n%!"
    (par_n ~quick) !par_jobs
    (Parallel.available_cores ());
  let par = parallel_rows ~quick in
  Printf.printf
    "perf: oracle serving (n=%d, k=%d, %d queries, jobs=%d on %d core(s))...\n%!"
    (oracle_n ~quick) oracle_k
    (oracle_query_count ~quick)
    !par_jobs
    (Parallel.available_cores ());
  let orc = oracle_rows ~quick in
  Printf.printf
    "perf: dynamic repair vs rebuild (torus %dx%d, %d batches x %d ops)...\n%!"
    (dyn_side ~quick) (dyn_side ~quick) dyn_batches dyn_ops;
  mp @ sharded @ proto @ par @ orc @ dynamic_rows ~quick

let speedup_of rows =
  let fast = List.find (fun r -> r.name = "mp:fast") rows in
  let ref_ = List.find (fun r -> r.name = "mp:ref") rows in
  messages_per_sec fast /. messages_per_sec ref_

(* seq-vs-sharded wall-clock ratio of the gated large-n pair (>1 = the
   sharded backend wins); NaN when the rows are absent (old baselines). *)
let sharded_speedup_of rows =
  match
    ( List.find_opt
        (fun r -> r.name = Printf.sprintf "mp:seq:n=%d" gate_big_n)
        rows,
      List.find_opt
        (fun r -> r.name = Printf.sprintf "mp:sharded:n=%d" gate_big_n)
        rows )
  with
  | Some seq, Some sh when sh.ns_per_run > 0.0 ->
      seq.ns_per_run /. sh.ns_per_run
  | _ -> Float.nan

(* seq-vs-par wall-clock ratio of a parallel suite pair (>1 = the pool
   wins); NaN when the rows are absent (old baselines). *)
let par_speedup_of rows prefix =
  match
    ( List.find_opt (fun r -> r.name = prefix ^ ":seq") rows,
      List.find_opt (fun r -> r.name = prefix ^ ":par") rows )
  with
  | Some seq, Some par when par.ns_per_run > 0.0 ->
      seq.ns_per_run /. par.ns_per_run
  | _ -> Float.nan

(* rebuild-vs-repair wall-clock ratio of the dynamic pair (>1 = the
   incremental engine wins); NaN when the rows are absent. *)
let dyn_speedup_of rows =
  match
    ( List.find_opt (fun r -> r.name = "dynamic:repair") rows,
      List.find_opt (fun r -> r.name = "dynamic:rebuild") rows )
  with
  | Some inc, Some rb when inc.ns_per_run > 0.0 ->
      rb.ns_per_run /. inc.ns_per_run
  | _ -> Float.nan

let print_rows rows =
  Printf.printf "%-26s %6s %8s %14s %14s %14s\n" "suite" "n" "runs" "ns/run"
    "msgs/s" "rounds/s";
  List.iter
    (fun r ->
      Printf.printf "%-26s %6d %8d %14.0f %14.0f %14.1f\n" r.name r.n r.runs
        r.ns_per_run (messages_per_sec r) (rounds_per_sec r))
    rows

(* ------------------------------------------------------------------ *)
(* JSON output (shared Exp_json encoder — schema ultraspan-perf/1)     *)
(* ------------------------------------------------------------------ *)

let schema = "ultraspan-perf/6"

let accepted_schemas =
  [
    "ultraspan-perf/1"; "ultraspan-perf/2"; "ultraspan-perf/3";
    "ultraspan-perf/4"; "ultraspan-perf/5"; schema;
  ]

(* A failed OLS estimate is NaN; encode it as 0.0 so the file stays valid
   JSON and --validate rejects it with a clear message. *)
let fin f = if Float.is_finite f then f else 0.0

let json_of_row r =
  J.Obj
    [
      ("name", J.Str r.name);
      ("kind", J.Str r.kind);
      ("n", J.Int r.n);
      ("runs", J.Int r.runs);
      ("ns_per_run", J.Float (fin r.ns_per_run));
      ("messages_per_run", J.Int r.messages_per_run);
      ("rounds_per_run", J.Int r.rounds_per_run);
      ("messages_per_sec", J.Float (fin (messages_per_sec r)));
      ("rounds_per_sec", J.Float (fin (rounds_per_sec r)));
    ]

let json_of_efficiency e =
  J.Obj
    [
      ("deliveries", J.Int e.eff_deliveries);
      ("arcs", J.Int e.eff_arcs);
      ("rounds", J.Int e.eff_rounds);
      ("messages_per_arc_round", J.Float (fin e.eff_msgs_per_arc_round));
      ("arena_slots_touched", J.Int e.eff_arena_slots);
      ("arena_words_written", J.Int e.eff_arena_words);
      ("word_limit", J.Int mp_word_limit);
      ("arena_waste", J.Float (fin e.eff_arena_waste));
      ("pool_jobs", J.Int e.eff_pool_jobs);
      ("pool_chunk_run_seconds", J.Float (fin e.eff_chunk_run));
      ("pool_job_capacity_seconds", J.Float (fin e.eff_capacity));
      ("pool_utilization", J.Float (fin e.eff_pool_utilization));
    ]

let json_of_run ~quick ~eff rows =
  let fast = List.find (fun r -> r.name = "mp:fast") rows in
  let ref_ = List.find (fun r -> r.name = "mp:ref") rows in
  J.Obj
    [
      ("schema", J.Str schema);
      ("quick", J.Bool quick);
      ( "workload",
        J.Obj
          [
            ("mp_n", J.Int mp_n);
            ("mp_avg_degree", J.Float mp_avg_degree);
            ("mp_flood_rounds", J.Int flood_rounds);
          ] );
      ("suites", J.Arr (List.map json_of_row rows));
      ( "message_plane",
        J.Obj
          [
            ("n", J.Int mp_n);
            ("fast_messages_per_sec", J.Float (fin (messages_per_sec fast)));
            ("ref_messages_per_sec", J.Float (fin (messages_per_sec ref_)));
            ("speedup", J.Float (fin (speedup_of rows)));
          ] );
      ( "sharded",
        let msgs name =
          match List.find_opt (fun r -> r.name = name) rows with
          | Some r -> messages_per_sec r
          | None -> 0.0
        in
        J.Obj
          [
            ("cores", J.Int (Parallel.available_cores ()));
            ("jobs", J.Int !par_jobs);
            ("n", J.Int gate_big_n);
            ("degree", J.Int sharded_degree);
            ("flood_rounds", J.Int big_flood_rounds);
            ( "seq_messages_per_sec",
              J.Float (fin (msgs (Printf.sprintf "mp:seq:n=%d" gate_big_n))) );
            ( "sharded_messages_per_sec",
              J.Float (fin (msgs (Printf.sprintf "mp:sharded:n=%d" gate_big_n)))
            );
            ("speedup", J.Float (fin (sharded_speedup_of rows)));
          ] );
      ( "parallel",
        J.Obj
          [
            ("cores", J.Int (Parallel.available_cores ()));
            ("jobs", J.Int !par_jobs);
            ("n", J.Int (par_n ~quick));
            ("trials", J.Int par_trials);
            ("stretch_speedup", J.Float (fin (par_speedup_of rows "stretch")));
            ("tables_speedup", J.Float (fin (par_speedup_of rows "tables")));
          ] );
      ( "oracle",
        let count = oracle_query_count ~quick in
        let qps name =
          match List.find_opt (fun r -> r.name = name) rows with
          | Some r when r.ns_per_run > 0.0 ->
              float_of_int count /. (r.ns_per_run *. 1e-9)
          | _ -> 0.0
        in
        J.Obj
          [
            ("cores", J.Int (Parallel.available_cores ()));
            ("jobs", J.Int !par_jobs);
            ("n", J.Int (oracle_n ~quick));
            ("k", J.Int oracle_k);
            ("queries", J.Int count);
            ("seq_queries_per_sec", J.Float (fin (qps "oracle:query:seq")));
            ("par_queries_per_sec", J.Float (fin (qps "oracle:query:par")));
            ("speedup", J.Float (fin (par_speedup_of rows "oracle:query")));
          ] );
      ("efficiency", json_of_efficiency eff);
      ( "dynamic",
        let updates = dyn_batches * dyn_ops in
        let ups name =
          match List.find_opt (fun r -> r.name = name) rows with
          | Some r when r.ns_per_run > 0.0 ->
              float_of_int updates /. (r.ns_per_run *. 1e-9)
          | _ -> 0.0
        in
        J.Obj
          [
            ("side", J.Int (dyn_side ~quick));
            ("batches", J.Int dyn_batches);
            ("ops_per_batch", J.Int dyn_ops);
            ("updates", J.Int updates);
            ("repair_updates_per_sec", J.Float (fin (ups "dynamic:repair")));
            ("rebuild_updates_per_sec", J.Float (fin (ups "dynamic:rebuild")));
            ("repair_speedup", J.Float (fin (dyn_speedup_of rows)));
          ] );
    ]

let write_json ~quick ~eff ~file rows =
  J.save file (json_of_run ~quick ~eff rows);
  speedup_of rows

(* ------------------------------------------------------------------ *)
(* validation and baseline gating                                      *)
(* ------------------------------------------------------------------ *)

let load_baseline file =
  let j = J.load file in
  let s = J.str (J.field "schema" j) in
  if not (List.mem s accepted_schemas) then
    raise (J.Error ("unknown schema " ^ s));
  j

let validate file =
  let j = load_baseline file in
  let suites = J.arr (J.field "suites" j) in
  if suites = [] then raise (J.Error "no suites");
  List.iter
    (fun suite ->
      let name = J.str (J.field "name" suite) in
      let runs = J.int (J.field "runs" suite) in
      if runs <= 0 then raise (J.Error (name ^ ": 0 runs"));
      let ns = J.num (J.field "ns_per_run" suite) in
      if not (Float.is_finite ns && ns > 0.0) then
        raise (J.Error (name ^ ": bad ns_per_run")))
    suites;
  let mp = J.field "message_plane" j in
  let speedup = J.num (J.field "speedup" mp) in
  if not (Float.is_finite speedup && speedup > 0.0) then
    raise (J.Error "bad message_plane.speedup");
  (match J.field_opt "parallel" j with
  | None -> ()
  | Some p ->
      let cores = J.int (J.field "cores" p) in
      if cores <= 0 then raise (J.Error "bad parallel.cores");
      let s = J.num (J.field "stretch_speedup" p) in
      if not (Float.is_finite s && s > 0.0) then
        raise (J.Error "bad parallel.stretch_speedup"));
  (match J.field_opt "sharded" j with
  | None -> ()
  | Some p ->
      if J.int (J.field "cores" p) <= 0 then
        raise (J.Error "bad sharded.cores");
      if J.int (J.field "n" p) <= 0 then raise (J.Error "bad sharded.n");
      let s = J.num (J.field "speedup" p) in
      if not (Float.is_finite s && s > 0.0) then
        raise (J.Error "bad sharded.speedup"));
  (match J.field_opt "dynamic" j with
  | None -> ()
  | Some d ->
      if J.int (J.field "updates" d) <= 0 then
        raise (J.Error "bad dynamic.updates");
      let s = J.num (J.field "repair_speedup" d) in
      if not (Float.is_finite s && s > 0.0) then
        raise (J.Error "bad dynamic.repair_speedup"));
  (match J.field_opt "oracle" j with
  | None -> ()
  | Some o ->
      if J.int (J.field "cores" o) <= 0 then raise (J.Error "bad oracle.cores");
      if J.int (J.field "queries" o) <= 0 then
        raise (J.Error "bad oracle.queries");
      let q = J.num (J.field "seq_queries_per_sec" o) in
      if not (Float.is_finite q && q > 0.0) then
        raise (J.Error "bad oracle.seq_queries_per_sec");
      let s = J.num (J.field "speedup" o) in
      if not (Float.is_finite s && s > 0.0) then
        raise (J.Error "bad oracle.speedup"));
  (match J.field_opt "efficiency" j with
  | None -> ()
  | Some e ->
      if J.int (J.field "deliveries" e) <= 0 then
        raise (J.Error "bad efficiency.deliveries");
      let u = J.num (J.field "pool_utilization" e) in
      if not (Float.is_finite u && u > 0.0 && u <= 1.0) then
        raise (J.Error "bad efficiency.pool_utilization");
      let w = J.num (J.field "arena_waste" e) in
      if not (Float.is_finite w && w >= 0.0 && w <= 1.0) then
        raise (J.Error "bad efficiency.arena_waste"));
  Printf.printf "%s: OK (%d suites, all ran; message-plane speedup %.2fx)\n"
    file (List.length suites) speedup

(* Re-check a recorded artifact's efficiency section against the floors
   without re-running anything — the negative-control entry point. *)
let gate_recorded ~min_util ~max_waste file =
  let j = load_baseline file in
  match J.field_opt "efficiency" j with
  | None ->
      Printf.eprintf
        "%s: no efficiency section (pre-v4 baseline) — cannot gate\n" file;
      exit 1
  | Some e ->
      gate_efficiency ~min_util ~max_waste
        ~utilization:(J.num (J.field "pool_utilization" e))
        ~waste:(J.num (J.field "arena_waste" e))

(* Gate a fresh run against a recorded baseline.  The default check is the
   fast-vs-ref speedup RATIO: wall-clock shifts with the machine, but the
   two engines shift together, so the ratio is what a regression in the
   fast message plane actually moves.  [--suites] adds per-suite ns/run
   checks for same-machine use. *)
let against ~quick ~tolerance ~suites_gate ~min_util ~max_waste ~eff
    ~baseline_file rows =
  let j = load_baseline baseline_file in
  let tol = tolerance /. 100.0 in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        incr failures;
        Printf.eprintf "PERF REGRESSION %s\n" s)
      fmt
  in
  let base_speedup = J.num (J.field "speedup" (J.field "message_plane" j)) in
  let cur_speedup = speedup_of rows in
  let floor = base_speedup *. (1.0 -. tol) in
  Printf.printf
    "message-plane speedup: %.2fx now vs %.2fx baseline (floor %.2fx at \
     tolerance %.0f%%)\n"
    cur_speedup base_speedup floor tolerance;
  if not (Float.is_finite cur_speedup) || cur_speedup < floor then
    fail "message-plane speedup %.2fx below floor %.2fx (baseline %.2fx)"
      cur_speedup floor base_speedup;
  (* Parallel-kernel gate: a seq-vs-par ratio needs cores to manifest, so
     it is enforced only on >= 4-core machines, and only against a v2
     baseline that recorded the parallel section. *)
  let cores = Parallel.available_cores () in
  (match J.field_opt "parallel" j with
  | None ->
      Printf.printf
        "parallel gate: skipped (baseline %s has no parallel section)\n"
        baseline_file
  | Some p when cores < 4 ->
      let base_cores = J.int (J.field "cores" p) in
      Printf.printf
        "parallel gate: skipped (%d core(s) here, baseline recorded %d — \
         the stretch:par ratio cannot manifest below 4 cores)\n"
        cores base_cores
  | Some p ->
      let abs_floor = 1.8 in
      let base_par = J.num (J.field "stretch_speedup" p) in
      let cur_par = par_speedup_of rows "stretch" in
      let rel_floor = base_par *. (1.0 -. tol) in
      Printf.printf
        "stretch:par speedup: %.2fx now vs %.2fx baseline (floors: %.2fx \
         absolute, %.2fx relative)\n"
        cur_par base_par abs_floor rel_floor;
      if not (Float.is_finite cur_par) || cur_par < abs_floor then
        fail "stretch:par speedup %.2fx below the %.2fx floor at %d cores"
          cur_par abs_floor cores
      else if cur_par < rel_floor then
        fail "stretch:par speedup %.2fx below relative floor %.2fx (baseline \
              %.2fx)"
          cur_par rel_floor base_par);
  (* Sharded-delivery gate: same shape as the stretch gate — the
     seq-vs-sharded message-plane ratio at n=1e5 needs real cores to
     manifest, so it is enforced only on >= 4-core machines and only
     against a v5 baseline that recorded the sharded section. *)
  (match J.field_opt "sharded" j with
  | None ->
      Printf.printf
        "sharded gate: skipped (baseline %s has no sharded section)\n"
        baseline_file
  | Some p when cores < 4 ->
      let base_cores = J.int (J.field "cores" p) in
      Printf.printf
        "sharded gate: skipped (%d core(s) here, baseline recorded %d — the \
         sharded-vs-seq ratio cannot manifest below 4 cores)\n"
        cores base_cores
  | Some p ->
      let abs_floor = 1.5 in
      let base_sh = J.num (J.field "speedup" p) in
      let cur_sh = sharded_speedup_of rows in
      let rel_floor = base_sh *. (1.0 -. tol) in
      Printf.printf
        "mp:sharded speedup at n=%d: %.2fx now vs %.2fx baseline (floors: \
         %.2fx absolute, %.2fx relative)\n"
        gate_big_n cur_sh base_sh abs_floor rel_floor;
      if not (Float.is_finite cur_sh) || cur_sh < abs_floor then
        fail "mp:sharded speedup %.2fx below the %.2fx floor at %d cores"
          cur_sh abs_floor cores
      else if cur_sh < rel_floor then
        fail
          "mp:sharded speedup %.2fx below relative floor %.2fx (baseline \
           %.2fx)"
          cur_sh rel_floor base_sh);
  (* Oracle gate: the batch query engine's jobs=N throughput must keep
     beating the sequential run — the same core-aware skip rule as the
     other pool ratios, and only against a v6 baseline that recorded the
     oracle section. *)
  (match J.field_opt "oracle" j with
  | None ->
      Printf.printf
        "oracle gate: skipped (baseline %s has no oracle section)\n"
        baseline_file
  | Some p when cores < 4 ->
      let base_cores = J.int (J.field "cores" p) in
      Printf.printf
        "oracle gate: skipped (%d core(s) here, baseline recorded %d — the \
         batch queries/sec ratio cannot manifest below 4 cores)\n"
        cores base_cores
  | Some p ->
      let abs_floor = 1.5 in
      let base_q = J.num (J.field "speedup" p) in
      let cur_q = par_speedup_of rows "oracle:query" in
      let rel_floor = base_q *. (1.0 -. tol) in
      Printf.printf
        "oracle:query speedup: %.2fx now vs %.2fx baseline (floors: %.2fx \
         absolute, %.2fx relative)\n"
        cur_q base_q abs_floor rel_floor;
      if not (Float.is_finite cur_q) || cur_q < abs_floor then
        fail "oracle:query speedup %.2fx below the %.2fx floor at %d cores"
          cur_q abs_floor cores
      else if cur_q < rel_floor then
        fail
          "oracle:query speedup %.2fx below relative floor %.2fx (baseline \
           %.2fx)"
          cur_q rel_floor base_q);
  (* Dynamic gate: incremental repair must keep beating the rebuild
     baseline on the same stream — a ratio of the same workload on the
     same machine, so it transfers like the other ratio gates. *)
  (match J.field_opt "dynamic" j with
  | None ->
      Printf.printf
        "dynamic gate: skipped (baseline %s has no dynamic section)\n"
        baseline_file
  | Some d ->
      let abs_floor = 1.2 in
      let base_dyn = J.num (J.field "repair_speedup" d) in
      let cur_dyn = dyn_speedup_of rows in
      let rel_floor = base_dyn *. (1.0 -. tol) in
      Printf.printf
        "dynamic repair-vs-rebuild speedup: %.2fx now vs %.2fx baseline \
         (floors: %.2fx absolute, %.2fx relative)\n"
        cur_dyn base_dyn abs_floor rel_floor;
      if not (Float.is_finite cur_dyn) || cur_dyn < abs_floor then
        fail "dynamic repair speedup %.2fx below the %.2fx floor" cur_dyn
          abs_floor
      else if cur_dyn < rel_floor then
        fail
          "dynamic repair speedup %.2fx below relative floor %.2fx (baseline \
           %.2fx)"
          cur_dyn rel_floor base_dyn);
  (* Efficiency gate: absolute floors on the fresh run's efficiency
     metrics — ratios of co-measured quantities, so no baseline scaling
     is needed (the recorded section documents what this machine saw). *)
  failures :=
    !failures
    + gate_efficiency ~min_util ~max_waste
        ~utilization:eff.eff_pool_utilization ~waste:eff.eff_arena_waste;
  if suites_gate then begin
    let base_quick =
      match J.field_opt "quick" j with Some b -> J.bool b | None -> false
    in
    if base_quick <> quick then
      Printf.printf
        "note: baseline quick=%b but this run quick=%b — per-suite ns/run \
         estimates use different sample budgets\n"
        base_quick quick;
    let baseline_ns =
      List.map
        (fun s -> (J.str (J.field "name" s), J.num (J.field "ns_per_run" s)))
        (J.arr (J.field "suites" j))
    in
    List.iter
      (fun r ->
        match List.assoc_opt r.name baseline_ns with
        | None -> Printf.printf "suite %s: not in baseline, skipped\n" r.name
        | Some base_ns ->
            let ceiling = base_ns *. (1.0 +. tol) in
            if r.ns_per_run > ceiling then
              fail "suite %s: %.0f ns/run above ceiling %.0f (baseline %.0f)"
                r.name r.ns_per_run ceiling base_ns
            else
              Printf.printf "suite %s: %.0f ns/run vs baseline %.0f — ok\n"
                r.name r.ns_per_run base_ns)
      rows
  end;
  !failures

(* ------------------------------------------------------------------ *)
(* --mp-smoke: the large-n determinism gate                            *)
(* ------------------------------------------------------------------ *)

(* Flood and BFS on a streamed degree-bounded graph at the given n, run
   under the sequential backend and under the sharded backend at jobs 1
   and 4.  States, stats and the stripped deterministic metric exposition
   must be byte-identical across all three — in-process, no files.
   Returns the mismatch count (the caller exits 1 on any). *)
let mp_smoke n =
  Printf.printf
    "mp-smoke: n=%d streamed degree-%d graph — flood + BFS, seq vs sharded \
     -j 1 vs sharded -j 4...\n%!"
    n sharded_degree;
  let g = big_graph n in
  let flood = make_flood_program big_flood_rounds in
  let failures = ref 0 in
  let agree what tag (s1, st1, e1) (s2, st2, e2) =
    let miss part =
      incr failures;
      Printf.eprintf "MP-SMOKE MISMATCH %s %s: %s differs from seq\n" what
        part tag
    in
    if s1 <> s2 then miss "states";
    if st1 <> st2 then miss "stats";
    if not (String.equal e1 e2) then miss "metrics"
  in
  let family what obs =
    let base = obs ~backend:`Seq ~jobs:1 in
    agree what "sharded -j 1" base (obs ~backend:`Sharded ~jobs:1);
    agree what "sharded -j 4" base (obs ~backend:`Sharded ~jobs:4)
  in
  family "flood" (fun ~backend ~jobs ->
      let reg = Metrics.create () in
      let states, stats =
        Network.run ~metrics:reg ~engine:`Fast ~backend ~jobs g flood
      in
      (states, stats, Metrics.exposition ~strip:true (Metrics.snapshot reg)));
  family "bfs" (fun ~backend ~jobs ->
      let reg = Metrics.create () in
      let res, stats = Programs.bfs ~metrics:reg ~backend ~jobs g ~root:0 in
      (res, stats, Metrics.exposition ~strip:true (Metrics.snapshot reg)));
  if !failures = 0 then
    Printf.printf
      "mp-smoke: OK (n=%d: flood and BFS byte-identical across backends and \
       job counts)\n"
      n;
  !failures

(* ------------------------------------------------------------------ *)

let usage () =
  prerr_endline
    "usage: perf.exe [--quick] [--jobs N | -j N] [-o FILE]\n\
    \       perf.exe --validate FILE\n\
    \       perf.exe --gate-efficiency FILE [--min-pool-utilization X]\n\
    \                [--max-arena-waste X]\n\
    \       perf.exe --mp-smoke N [--jobs N | -j N]\n\
    \       perf.exe [--quick] --against FILE [--tolerance PCT] [--suites]"

let die fmtstr =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("perf.exe: " ^ s);
      usage ();
      exit 2)
    fmtstr

let () =
  let quick = ref false
  and out = ref None
  and validate_file = ref None
  and against_file = ref None
  and gate_eff_file = ref None
  and min_util = ref default_min_pool_utilization
  and max_waste = ref default_max_arena_waste
  and tolerance = ref 40.0
  and suites_gate = ref false
  and mp_smoke_n = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: r -> quick := true; parse r
    | "--suites" :: r -> suites_gate := true; parse r
    | "-o" :: f :: r -> out := Some f; parse r
    | "--validate" :: f :: r -> validate_file := Some f; parse r
    | "--against" :: f :: r -> against_file := Some f; parse r
    | "--gate-efficiency" :: f :: r -> gate_eff_file := Some f; parse r
    | "--mp-smoke" :: v :: r ->
        (match int_of_string_opt v with
        | Some n when n >= 3 -> mp_smoke_n := Some n
        | _ -> die "--mp-smoke expects an integer n >= 3, got %S" v);
        parse r
    | "--min-pool-utilization" :: v :: r ->
        (match float_of_string_opt v with
        | Some x when x >= 0.0 -> min_util := x
        | _ -> die "--min-pool-utilization expects a non-negative float");
        parse r
    | "--max-arena-waste" :: v :: r ->
        (match float_of_string_opt v with
        | Some x when x >= 0.0 -> max_waste := x
        | _ -> die "--max-arena-waste expects a non-negative float");
        parse r
    | "--tolerance" :: p :: r ->
        (match float_of_string_opt p with
        | Some v when v >= 0.0 -> tolerance := v
        | _ -> die "--tolerance expects a non-negative percentage, got %S" p);
        parse r
    | ("--jobs" | "-j") :: v :: r ->
        (match int_of_string_opt v with
        | Some j when j >= 1 -> par_jobs := j
        | _ -> die "--jobs expects a positive integer, got %S" v);
        parse r
    | [ (("-o" | "--validate" | "--against" | "--gate-efficiency"
        | "--mp-smoke" | "--min-pool-utilization" | "--max-arena-waste"
        | "--tolerance" | "--jobs" | "-j") as f) ] ->
        die "%s needs an argument" f
    | a :: _ -> die "unknown argument %S" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  if
    List.length
      (List.filter Fun.id
         [
           Option.is_some !validate_file; Option.is_some !against_file;
           Option.is_some !gate_eff_file; Option.is_some !mp_smoke_n;
         ])
    > 1
  then
    die
      "--validate, --against, --gate-efficiency and --mp-smoke are mutually \
       exclusive";
  (match !mp_smoke_n with
  | Some n ->
      let failures = mp_smoke n in
      if failures > 0 then begin
        Printf.eprintf "mp-smoke: %d mismatch(es) at n=%d\n" failures n;
        exit 1
      end;
      exit 0
  | None -> ());
  match (!validate_file, !against_file, !gate_eff_file) with
  | Some file, None, None -> (
      try validate file
      with J.Error msg | Sys_error msg ->
        Printf.eprintf "%s: INVALID (%s)\n" file msg;
        exit 1)
  | None, None, Some file ->
      let failures =
        try gate_recorded ~min_util:!min_util ~max_waste:!max_waste file
        with J.Error msg | Sys_error msg ->
          Printf.eprintf "%s: INVALID artifact (%s)\n" file msg;
          exit 1
      in
      if failures > 0 then begin
        Printf.eprintf "efficiency gate: %d failure(s) in %s\n" failures file;
        exit 1
      end;
      Printf.printf "efficiency gate: OK for %s\n" file
  | None, Some baseline_file, None ->
      let rows = run_suite ~quick:!quick in
      let eff = measure_efficiency ~quick:!quick in
      print_rows rows;
      print_efficiency eff;
      (match !out with
      | Some file -> ignore (write_json ~quick:!quick ~eff ~file rows)
      | None -> ());
      let failures =
        try
          against ~quick:!quick ~tolerance:!tolerance
            ~suites_gate:!suites_gate ~min_util:!min_util
            ~max_waste:!max_waste ~eff ~baseline_file rows
        with J.Error msg | Sys_error msg ->
          Printf.eprintf "%s: INVALID baseline (%s)\n" baseline_file msg;
          exit 1
      in
      if failures > 0 then begin
        Printf.eprintf "perf gate: %d regression(s) vs %s\n" failures
          baseline_file;
        exit 1
      end;
      Printf.printf "perf gate: OK vs %s\n" baseline_file
  | None, None, None ->
      let file = Option.value !out ~default:"BENCH_congest.json" in
      let rows = run_suite ~quick:!quick in
      let eff = measure_efficiency ~quick:!quick in
      let speedup = write_json ~quick:!quick ~eff ~file rows in
      print_rows rows;
      print_efficiency eff;
      (* full runs re-prove the seq/sharded identity at the largest size
         before the artifact is trusted *)
      let smoke_failures =
        if !quick then 0
        else mp_smoke (List.fold_left max 0 (big_sizes ~quick:false))
      in
      let failures =
        smoke_failures
        + gate_efficiency ~min_util:!min_util ~max_waste:!max_waste
            ~utilization:eff.eff_pool_utilization ~waste:eff.eff_arena_waste
      in
      Printf.printf "message-plane speedup (fast vs ref): %.2fx\n" speedup;
      Printf.printf "sharded-vs-seq speedup at n=%d: %.2fx (%d core(s))\n"
        gate_big_n
        (sharded_speedup_of rows)
        (Parallel.available_cores ());
      Printf.printf "oracle batch-query speedup: %.2fx (%d core(s))\n"
        (par_speedup_of rows "oracle:query")
        (Parallel.available_cores ());
      Printf.printf "wrote %s\n" file;
      if failures > 0 then begin
        Printf.eprintf "efficiency gate: %d failure(s)\n" failures;
        exit 1
      end
  | _ -> die "--validate, --against and --gate-efficiency are mutually exclusive"
