(* Bench harness: regenerates the paper's tables and figure as empirical
   analogues (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
   for recorded output).

   Default: run every experiment at moderate scale.
   [--quick]      smaller instances (CI-friendly)
   [--table ID]   run one experiment (t1 t2 t3 t4 t5 t6 t7 t8 t9 f1 r1 a1 a2 o1)
   [--bechamel]   run the Bechamel wall-clock suite (one Test per table) *)

open Ultraspan

let fmt = Printf.printf

let hr () = fmt "%s\n" (String.make 100 '-')

let header title =
  fmt "\n%s\n" (String.make 100 '=');
  fmt "%s\n" title;
  fmt "%s\n" (String.make 100 '=')

(* Exact stretch while affordable, sampled above: the check runs one
   restricted Dijkstra per vertex over the KEPT subgraph, so the cost is
   ~ n · (kept + n). *)
let stretch_of ?(exact_limit = 120_000_000) g keep =
  let kept = Array.fold_left (fun a k -> if k then a + 1 else a) 0 keep in
  let cost = Graph.n g * (kept + Graph.n g) in
  if cost <= exact_limit then Stretch.max_edge_stretch g keep
  else
    Stretch.sampled_edge_stretch ~rng:(Rng.create 12345) ~samples:512 g keep

let pretty_float x =
  if x = Float.infinity then "inf"
  else if x >= 1000.0 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

(* ------------------------------------------------------------------ *)
(* T1 — Table 1: very sparse spanners                                   *)
(* ------------------------------------------------------------------ *)

let table1 ~quick () =
  header
    "T1 (Table 1): sparse/ultra-sparse spanner constructions — size O(n), \
     stretch ~ log n";
  let sizes = if quick then [ 512; 1024 ] else [ 512; 2048; 8192 ] in
  fmt "%-34s %6s %9s %8s %9s %10s  %s\n" "algorithm" "n" "edges" "edges/n"
    "stretch" "rounds" "det/wgt";
  hr ();
  List.iter
    (fun n ->
      let rng = Rng.create 42 in
      let gu = Generators.connected_gnp ~rng ~n ~avg_degree:8.0 in
      let gw =
        Generators.randomize_weights ~rng:(Rng.create 7) ~lo:1 ~hi:(n * n) gu
      in
      let k = int_of_float (ceil (Float.log2 (float_of_int n))) in
      let row name g sp det wgt =
        fmt "%-34s %6d %9d %8.2f %9s %10d  %s/%s\n" name n (Spanner.size sp)
          (float_of_int (Spanner.size sp) /. float_of_int n)
          (pretty_float (stretch_of g sp.Spanner.keep))
          (Spanner.total_rounds sp)
          (if det then "yes" else "no")
          (if wgt then "yes" else "no")
      in
      let pettie =
        Linear_size.run ~variant:(Linear_size.Randomized (Rng.create 1)) gu
      in
      row "[Pet10] randomized linear-size" gu pettie.Linear_size.spanner false
        false;
      let en = Elkin_neiman.run ~rng:(Rng.create 2) ~k gu in
      row "[EN18] exp-shift spanner" gu en.Elkin_neiman.spanner false false;
      let det_u = Linear_size.run gu in
      row "this paper: det linear (Thm 1.5)" gu det_u.Linear_size.spanner true
        false;
      let det_w = Linear_size.run gw in
      row "this paper: det linear, weighted" gw det_w.Linear_size.spanner true
        true;
      hr ())
    sizes;
  fmt
    "shape check: edges/n flat in n for every row; the deterministic rows \
     match the randomized sizes\nwithout randomness, and weighted costs only \
     a constant factor (the paper's 2^(log* n) vs 4^(log* n)).\n"

(* ------------------------------------------------------------------ *)
(* T2 — Table 2: (2k-1)-spanners                                        *)
(* ------------------------------------------------------------------ *)

let table2 ~quick () =
  header "T2 (Table 2): (2k-1)-spanners — size vs n^(1+1/k)";
  let n = if quick then 1024 else 2048 in
  let ks = [ 2; 3; 4; 5 ] in
  fmt
    "n = %d; every row checks measured max stretch <= 2k-1 (exact where \
     affordable, sampled above).\n"
    n;
  fmt "%-30s %3s %9s %12s %9s %10s\n" "algorithm" "k" "edges"
    "edges/n^(1+1/k)" "stretch" "rounds";
  hr ();
  List.iter
    (fun k ->
      let norm =
        float_of_int n ** (1.0 +. (1.0 /. float_of_int k))
      in
      (* m must clear n^(1+1/k) by a healthy factor for compression to be
         visible at all. *)
      let avg_degree = Float.min (float_of_int (n - 1) /. 3.0) (6.0 *. norm /. float_of_int n) in
      let rng = Rng.create (100 + k) in
      let gu = Generators.connected_gnp ~rng ~n ~avg_degree in
      let gw =
        Generators.randomize_weights ~rng:(Rng.create 8) ~lo:1 ~hi:(n * n) gu
      in
      let row name g sp =
        let s = stretch_of g sp.Spanner.keep in
        fmt "%-30s %3d %9d %12.2f %9s %10d%s\n" name k (Spanner.size sp)
          (float_of_int (Spanner.size sp) /. norm)
          (pretty_float s) (Spanner.total_rounds sp)
          (if s <= float_of_int ((2 * k) - 1) +. 1e-9 then "" else "  STRETCH VIOLATION")
      in
      let bs_u = Baswana_sen.run ~rng:(Rng.create 3) ~k gu in
      row "[BS07] randomized, unweighted" gu bs_u.Baswana_sen.spanner;
      let bs_w = Baswana_sen.run ~rng:(Rng.create 3) ~k gw in
      row "[BS07] randomized, weighted" gw bs_w.Baswana_sen.spanner;
      let de_u = Bs_derand.run ~k gu in
      row "this paper Thm 1.4, unweighted" gu de_u.Bs_derand.spanner;
      let de_w = Bs_derand.run ~k gw in
      row "this paper Thm 1.4, weighted" gw de_w.Bs_derand.spanner;
      let bd = Bs_distributed.run ~seed:11 ~k gw in
      fmt "%-30s %3d %9d %12.2f %9s %10d  <- real protocol rounds\n"
        "[BS07] as CONGEST program" k
        (Spanner.size bd.Bs_distributed.spanner)
        (float_of_int (Spanner.size bd.Bs_distributed.spanner) /. norm)
        (pretty_float (stretch_of gw bd.Bs_distributed.spanner.Spanner.keep))
        bd.Bs_distributed.network_stats.Network.rounds;
      fmt "%-30s %3d %9s %12s\n" "(bounds) BS07/ours vs GK18" k
        (Printf.sprintf "%.0f" (Bs_derand.size_bound ~n ~k ~weighted:true))
        (Printf.sprintf "GK18 ~ %.0f"
           (norm *. float_of_int k *. Float.log2 (float_of_int n)));
      hr ())
    ks;
  fmt
    "shape check: derandomized sizes track the randomized ones (no log n \
     overhead as in [GK18]),\nand all stretches are exactly within 2k-1.\n"

(* ------------------------------------------------------------------ *)
(* T3 — Theorem 1.6: deterministic ultra-sparse spanners                *)
(* ------------------------------------------------------------------ *)

let table3 ~quick () =
  header "T3 (Thm 1.6): deterministic ultra-sparse spanners, n + n/t edges";
  let n = if quick then 1024 else 4096 in
  let graphs =
    [
      ( "weighted gnp",
        Generators.weighted_connected_gnp ~rng:(Rng.create 5) ~n
          ~avg_degree:12.0 ~max_w:(n * n) );
      ( "weighted geometric",
        let n = n / 2 in
        let rng = Rng.create 6 in
        Generators.ensure_connected ~rng
          (Generators.random_geometric ~rng ~n
             ~radius:(2.0 *. sqrt (Float.log2 (float_of_int n) /. float_of_int n))) );
    ]
  in
  fmt "%-20s %4s %9s %9s %8s %9s %11s %8s\n" "graph" "t" "edges" "bound"
    "t_inner" "stretch" "str/(t·lg n)" "rounds";
  hr ();
  List.iter
    (fun (name, g) ->
      List.iter
        (fun t ->
          let out = Ultra_sparse.run ~t g in
          let sp = out.Ultra_sparse.spanner in
          let s = stretch_of g sp.Spanner.keep in
          fmt "%-20s %4d %9d %9d %8d %9s %11.2f %8d%s\n" name t
            (Spanner.size sp)
            (Ultra_sparse.bound ~n:(Graph.n g) ~t)
            out.Ultra_sparse.t_inner (pretty_float s)
            (s /. (float_of_int t *. Float.log2 (float_of_int (Graph.n g))))
            (Spanner.total_rounds sp)
            (if Spanner.size sp <= Ultra_sparse.bound ~n:(Graph.n g) ~t then ""
             else "  SIZE VIOLATION"))
        [ 1; 2; 4; 8; 16 ];
      hr ())
    graphs;
  fmt
    "shape check: edges <= n + n/t always (deterministic guarantee); \
     stretch grows ~ linearly in t\n(constant str/(t·lg n) column), the \
     optimal tradeoff of [Elk07, DGPV09].\n"

(* ------------------------------------------------------------------ *)
(* T4 — Lemma 4.1: stretch-friendly partitions                          *)
(* ------------------------------------------------------------------ *)

let table4 ~quick () =
  header "T4 (Lemma 4.1): stretch-friendly O(t)-partitions";
  let n = if quick then 2000 else 8000 in
  let g =
    Generators.weighted_connected_gnp ~rng:(Rng.create 11) ~n ~avg_degree:8.0
      ~max_w:100000
  in
  fmt "graph: weighted gnp, n=%d m=%d; bound columns from the lemma.\n"
    (Graph.n g) (Graph.m g);
  fmt "%4s %10s %8s %8s %8s %8s %9s %13s %6s\n" "t" "clusters" "<= n/t"
    "minsize" "radius" "< 3·2^i" "sf?" "rounds" "<=c·t·lg*";
  hr ();
  List.iter
    (fun t ->
      let p, info = Stretch_friendly.partition ~t g in
      let iters = info.Stretch_friendly.iterations in
      let sizes = Partition.sizes p in
      fmt "%4d %10d %8d %8d %8d %8d %9b %13d %6d\n" t (Partition.count p)
        (Graph.n g / t)
        (Array.fold_left min max_int sizes)
        (Partition.max_radius p)
        (3 * (1 lsl max 0 iters))
        (Stretch_friendly.is_stretch_friendly g p)
        (Ultraspan.Rounds.total info.Stretch_friendly.rounds)
        (16 * t * (Coloring.log_star (Graph.n g) + 6)))
    [ 2; 4; 8; 16; 32; 64; 128 ];
  fmt
    "\nand the same algorithm with every cross-cluster exchange executed as \
     real message-passing waves\n(Sf_distributed; output is bit-identical, \
     rounds are measured, not charged):\n";
  fmt "%4s %12s %8s %12s\n" "t" "real rounds" "waves" "messages";
  List.iter
    (fun t ->
      let out = Sf_distributed.partition ~t g in
      fmt "%4d %12d %8d %12d\n" t out.Sf_distributed.real_rounds
        out.Sf_distributed.waves out.Sf_distributed.messages)
    [ 2; 8; 32; 128 ];
  fmt "\nshape check: every invariant of Lemma 4.1 holds; rounds linear in t.\n"

(* ------------------------------------------------------------------ *)
(* F1 — Figure 1 / Lemma F.2: cluster growing                           *)
(* ------------------------------------------------------------------ *)

let fig1 ~quick () =
  header
    "F1 (Figure 1 / Lemma F.2): cluster growing with good cutting distances";
  let side = if quick then 40 else 64 in
  let graphs =
    [
      ("grid", Generators.grid side side);
      ( "unweighted gnp",
        Generators.connected_gnp ~rng:(Rng.create 13)
          ~n:(side * side) ~avg_degree:6.0 );
    ]
  in
  List.iter
    (fun (name, g) ->
      List.iter
        (fun t ->
          let out = Clustering_spanner.ultra_sparse ~t g in
          fmt "\n%s (n=%d), t=%d: final edges=%d (n + n/t = %d), stretch=%s\n"
            name (Graph.n g) t
            (Spanner.size out.Clustering_spanner.spanner)
            (Graph.n g + (Graph.n g / t))
            (pretty_float
               (stretch_of g out.Clustering_spanner.spanner.Spanner.keep));
          fmt "  %4s %9s %10s %9s %6s %8s %9s %7s\n" "step" "active"
            "clustered" "clusters" "bad" "maxcut" "E_inter" "xi_avg";
          List.iter
            (fun s ->
              fmt "  %4d %9d %10d %9d %6d %8d %9d %7.2f\n"
                s.Clustering_spanner.step s.Clustering_spanner.active_before
                s.Clustering_spanner.clustered
                s.Clustering_spanner.clusters_formed
                s.Clustering_spanner.bad_clusters
                s.Clustering_spanner.max_cut_distance
                s.Clustering_spanner.inter_edges_added
                s.Clustering_spanner.xi_avg)
            out.Clustering_spanner.steps)
        [ 2; 4 ];
      hr ())
    graphs;
  fmt
    "shape check: the active count decays geometrically (Lemma F.2's 7/10 \
     factor), cutting distances\nstay below 4t, and inter-cluster witness \
     edges stay near n/t.\n"

(* ------------------------------------------------------------------ *)
(* T5 — Theorems 1.7 / F.1: spanners from clusterings                   *)
(* ------------------------------------------------------------------ *)

let table5 ~quick () =
  header "T5 (Thm 1.7 / F.1): unweighted spanners from separated clusterings";
  let side = if quick then 40 else 64 in
  let graphs =
    [
      ("grid", Generators.grid side side);
      ("torus", Generators.torus side side);
      ( "unweighted gnp",
        Generators.connected_gnp ~rng:(Rng.create 17) ~n:(side * side)
          ~avg_degree:8.0 );
    ]
  in
  fmt "%-16s %-22s %9s %9s %9s %9s %8s\n" "graph" "construction" "edges"
    "edges/n" "stretch" "treediam" "xi_avg";
  hr ();
  List.iter
    (fun (name, g) ->
      let nf = float_of_int (Graph.n g) in
      let sparse = Clustering_spanner.sparse g in
      let xi =
        Stats.mean
          (Array.of_list
             (List.map
                (fun s -> s.Clustering_spanner.xi_avg)
                sparse.Clustering_spanner.steps))
      in
      fmt "%-16s %-22s %9d %9.2f %9s %9d %8.2f\n" name "Thm 1.7 (sparse)"
        (Spanner.size sparse.Clustering_spanner.spanner)
        (float_of_int (Spanner.size sparse.Clustering_spanner.spanner) /. nf)
        (pretty_float
           (stretch_of g sparse.Clustering_spanner.spanner.Spanner.keep))
        sparse.Clustering_spanner.max_tree_diameter xi;
      List.iter
        (fun t ->
          let out = Clustering_spanner.ultra_sparse ~t g in
          fmt "%-16s %-22s %9d %9.2f %9s %9d %8s\n" name
            (Printf.sprintf "Thm F.1 (t=%d)" t)
            (Spanner.size out.Clustering_spanner.spanner)
            (float_of_int (Spanner.size out.Clustering_spanner.spanner) /. nf)
            (pretty_float
               (stretch_of g out.Clustering_spanner.spanner.Spanner.keep))
            out.Clustering_spanner.max_tree_diameter "-")
        [ 2; 8 ];
      hr ())
    graphs;
  fmt
    "shape check: sizes near n + n/t, stretch tracks the cluster tree \
     diameters (O(D + t)).\n"

(* ------------------------------------------------------------------ *)
(* T6 — Theorems G.1 / 1.9: connectivity certificates                   *)
(* ------------------------------------------------------------------ *)

let table6 ~quick () =
  header "T6 (Thm G.1 / Thm 1.9): sparse connectivity certificates";
  let n = if quick then 150 else 300 in
  fmt "%-18s %3s %5s %9s %9s %10s %10s %9s\n" "graph" "k" "eps" "algorithm"
    "edges" "edges/(kn)" "lam G->H" "rounds";
  hr ();
  let workloads =
    [
      ("harary+noise", fun k ->
        let g0 = Generators.harary ~k:(k + 1) ~n in
        let rng = Rng.create 19 in
        let extra =
          List.init n (fun _ ->
              let a = Rng.int rng n and b = Rng.int rng n in
              if a = b then None else Some (a, b, 1))
        in
        let base =
          Array.to_list
            (Array.map (fun e -> (e.Graph.u, e.Graph.v, 1)) (Graph.edges g0))
        in
        Graph.of_edges ~n (base @ List.filter_map Fun.id extra));
      ("dense gnp", fun k ->
        let rng = Rng.create (23 + k) in
        Generators.connected_gnp ~rng ~n
          ~avg_degree:(float_of_int (4 * k) +. 8.0));
    ]
  in
  List.iter
    (fun (wname, mk) ->
      List.iter
        (fun k ->
          let g = mk k in
          let eps = 0.5 in
          let row name (c : Certificate.t) =
            let lg, lh = Certificate.preserved_connectivity g c in
            fmt "%-18s %3d %5.2f %9s %9d %10.2f %6d->%-3d %9d%s\n" wname k eps
              name (Certificate.size c)
              (float_of_int (Certificate.size c)
              /. float_of_int (k * Graph.n g))
              lg lh
              (Ultraspan.Rounds.total c.Certificate.rounds)
              (if lh >= min k lg then "" else "  VIOLATION")
          in
          row "NI" (Nagamochi_ibaraki.certificate ~k g);
          row "Thurimella" (Thurimella.certificate ~k g);
          row "SpanPack"
            (Spanner_packing.run ~k ~epsilon:eps g).Spanner_packing.certificate;
          let ks = Karger_split.run ~c:0.2 ~rng:(Rng.create 29) ~k ~epsilon:0.45 g in
          row
            (Printf.sprintf "Karger/%d" ks.Karger_split.groups)
            ks.Karger_split.certificate;
          hr ())
        (if quick then [ 2; 4 ] else [ 2; 4; 8; 16 ]))
    workloads;
  fmt
    "shape check: all certificates preserve connectivity exactly (lam G->H \
     equal up to the k cap);\nspanner packing sizes ~ (1+eps)kn vs \
     Thurimella's k(n-1); Karger splitting keeps polylog rounds as k grows.\n"

(* ------------------------------------------------------------------ *)
(* A1 — ablation: derandomization vs random sampling                    *)
(* ------------------------------------------------------------------ *)

let ablation_derand ~quick () =
  header
    "A1 (ablation): conditional expectation vs independent sampling, same \
     graphs";
  let n = if quick then 512 else 2048 in
  let seeds = 8 in
  fmt "%3s %10s %12s %12s %12s %12s\n" "k" "derand" "rand(mean)" "rand(min)"
    "rand(max)" "det.bound";
  hr ();
  List.iter
    (fun k ->
      let rng = Rng.create (31 + k) in
      let g =
        Generators.weighted_connected_gnp ~rng ~n
          ~avg_degree:
            (Float.min
               (float_of_int (n - 1) /. 2.0)
               (3.0 *. (float_of_int n ** (1.0 /. float_of_int k))))
          ~max_w:(n * n)
      in
      let de = float_of_int (Spanner.size (Bs_derand.run ~k g).Bs_derand.spanner) in
      let sizes =
        Array.init seeds (fun i ->
            float_of_int
              (Spanner.size
                 (Baswana_sen.run ~rng:(Rng.create (500 + i)) ~k g)
                   .Baswana_sen.spanner))
      in
      let lo, hi = Stats.min_max sizes in
      fmt "%3d %10.0f %12.1f %12.0f %12.0f %12.0f\n" k de (Stats.mean sizes) lo
        hi
        (Bs_derand.size_bound ~n ~k ~weighted:true))
    [ 2; 3; 4; 5 ];
  fmt
    "\nshape check: the derandomized size is a deterministic point inside \
     (or near) the randomized\ndistribution and always under the analytic \
     bound — matching BS07's tradeoff without randomness.\n"

(* ------------------------------------------------------------------ *)
(* A2 — ablation: matched merging vs naive star merging                 *)
(* ------------------------------------------------------------------ *)

let ablation_merge ~quick () =
  header "A2 (ablation): Lemma 4.1 matched merging vs naive star merging";
  let scale = if quick then 1 else 2 in
  let graphs =
    [
      ("caterpillar", Generators.caterpillar (200 * scale) 4);
      ("path", Generators.path (1000 * scale));
      ( "weighted geometric",
        let rng = Rng.create 37 in
        Generators.ensure_connected ~rng
          (Generators.random_geometric ~rng ~n:(800 * scale) ~radius:0.06) );
    ]
  in
  fmt "%-20s %4s %14s %14s %12s %12s\n" "graph" "t" "radius(match)"
    "radius(naive)" "clu(match)" "clu(naive)";
  hr ();
  List.iter
    (fun (name, g) ->
      List.iter
        (fun t ->
          let p1, _ = Stretch_friendly.partition ~t g in
          let p2, _ =
            Stretch_friendly.partition_with_strategy
              ~strategy:Stretch_friendly.Naive_star ~t g
          in
          fmt "%-20s %4d %14d %14d %12d %12d\n" name t (Partition.max_radius p1)
            (Partition.max_radius p2) (Partition.count p1) (Partition.count p2))
        [ 8; 32 ];
      hr ())
    graphs;
  fmt
    "shape check: the matching step is what keeps the radius O(t); naive \
     star merges can chain and inflate it.\n"

(* ------------------------------------------------------------------ *)
(* T7 — Theorem 1.8: work-efficient weighted ultra-sparse spanners      *)
(* ------------------------------------------------------------------ *)

let table7 ~quick () =
  header
    "T7 (Thm 1.8): work-efficient weighted ultra-sparse spanners — \
     weight classes + Thm 1.7 + Thm 1.2";
  let n = if quick then 512 else 2048 in
  let rng = Rng.create 41 in
  let g =
    Generators.weighted_connected_gnp ~rng ~n ~avg_degree:10.0 ~max_w:(n * 4)
  in
  fmt "graph: weighted gnp n=%d m=%d, aspect ratio U <= %d\n" (Graph.n g)
    (Graph.m g) (4 * n);
  fmt "%-40s %4s %9s %9s %9s %10s\n" "pipeline" "t" "edges" "bound" "stretch"
    "rounds";
  hr ();
  (* Thm 1.8's sparse step: folklore weight classes over the Thm 1.7
     clustering spanner.  Thm 1.6's sparse step: derandomized linear size
     (heavier local computation, better stretch). *)
  let sparse_1_8 = Clustering_spanner.sparse_weighted ~epsilon:0.5 in
  List.iter
    (fun t ->
      let a = Ultra_sparse.run ~t g in
      let b = Ultra_sparse.run ~sparse:sparse_1_8 ~t g in
      let row name (out : Ultra_sparse.outcome) =
        let sp = out.Ultra_sparse.spanner in
        fmt "%-40s %4d %9d %9d %9s %10d\n" name t (Spanner.size sp)
          (Ultra_sparse.bound ~n:(Graph.n g) ~t)
          (pretty_float (stretch_of g sp.Spanner.keep))
          (Spanner.total_rounds sp)
      in
      row "Thm 1.6 (derandomized BS inside)" a;
      row "Thm 1.8 (clustering + weight classes)" b;
      hr ())
    [ 2; 8 ];
  (* PRAM ledger of the Thm 1.7 engine (the work-efficiency claim). *)
  let cl = Clustering_spanner.sparse (Graph.with_unit_weights g) in
  let w = Pram.work cl.Clustering_spanner.pram in
  let d = Pram.depth cl.Clustering_spanner.pram in
  let lg = Float.log2 (float_of_int (Graph.n g)) in
  fmt
    "PRAM ledger of the Thm 1.7 engine: work=%d (= %.1f x m·lg n), depth=%d \
     (= %.1f x lg^2 n)\n"
    w
    (float_of_int w /. (float_of_int (Graph.m g) *. lg))
    d
    (float_of_int d /. (lg *. lg));
  fmt
    "shape check: both meet the n + n/t size bound; Thm 1.8 trades a \
     log(U)-flavoured stretch factor for\nwork-efficiency (m·polylog work, \
     polylog depth — the ledger above), as in the paper.\n"

(* ------------------------------------------------------------------ *)
(* T8 — native CONGEST protocols: real measured rounds                  *)
(* ------------------------------------------------------------------ *)

let table8 ~quick () =
  header
    "T8: native message-passing protocols on the enforcing simulator \
     (REAL rounds, not accounting)";
  let sizes = if quick then [ 256; 1024 ] else [ 256; 1024; 4096 ] in
  fmt "%-28s %6s %8s %10s %10s %12s\n" "protocol" "n" "rounds" "messages"
    "max words" "notes";
  hr ();
  List.iter
    (fun n ->
      let rng = Rng.create 43 in
      let g = Generators.connected_gnp ~rng ~n ~avg_degree:8.0 in
      let gw =
        Generators.randomize_weights ~rng:(Rng.create 2) ~lo:1 ~hi:1000 g
      in
      let bfs_res, s1 = Programs.bfs g ~root:0 in
      fmt "%-28s %6d %8d %10d %10d %12s\n" "BFS tree" n s1.Network.rounds
        s1.Network.messages s1.Network.max_words
        (Printf.sprintf "depth %d" (Array.fold_left max 0 bfs_res.Programs.dist));
      let _, s2 = Programs.broadcast_max g ~values:(Array.init n Fun.id) in
      fmt "%-28s %6d %8d %10d %10d\n" "broadcast max" n s2.Network.rounds
        s2.Network.messages s2.Network.max_words;
      let _, s3 = Programs.maximal_matching g in
      fmt "%-28s %6d %8d %10d %10d\n" "maximal matching" n s3.Network.rounds
        s3.Network.messages s3.Network.max_words;
      let _, s4 = Programs.luby_mis ~seed:5 g in
      fmt "%-28s %6d %8d %10d %10d %12s\n" "Luby MIS" n s4.Network.rounds
        s4.Network.messages s4.Network.max_words
        (Printf.sprintf "%d phases" (s4.Network.rounds / 3));
      let _, s5 = Programs.bellman_ford gw ~source:0 in
      fmt "%-28s %6d %8d %10d %10d\n" "Bellman-Ford SSSP" n s5.Network.rounds
        s5.Network.messages s5.Network.max_words;
      let forest, s6 = Programs.spanning_forest g in
      fmt "%-28s %6d %8d %10d %10d %12s\n" "spanning forest" n
        s6.Network.rounds s6.Network.messages s6.Network.max_words
        (Printf.sprintf "%d edges" (List.length forest));
      List.iter
        (fun k ->
          let out = Bs_distributed.run ~seed:7 ~k gw in
          fmt "%-28s %6d %8d %10d %10d %12s\n"
            (Printf.sprintf "Baswana-Sen (k=%d)" k)
            n out.Bs_distributed.network_stats.Network.rounds
            out.Bs_distributed.network_stats.Network.messages
            out.Bs_distributed.network_stats.Network.max_words
            (Printf.sprintf "%d edges"
               (Spanner.size out.Bs_distributed.spanner)))
        [ 2; 4 ];
      hr ())
    sizes;
  fmt
    "shape check: BFS/broadcast ~ diameter; matching/MIS ~ log n; \
     Baswana-Sen exactly 2k + 1 rounds\nwith 2-word messages — the O(k) \
     CONGEST bound, executed rather than asserted.\n"

(* ------------------------------------------------------------------ *)
(* T9 — scalability sweep                                               *)
(* ------------------------------------------------------------------ *)

let table9 ~quick () =
  header
    "T9: scalability — deterministic ultra-sparse spanner wall-clock as n \
     grows";
  let sizes = if quick then [ 4096; 16384 ] else [ 4096; 16384; 65536 ] in
  fmt "%8s %9s %9s %9s %9s %10s %12s %9s\n" "n" "m" "edges" "bound"
    "stretch*" "rounds" "wall (s)" "edges/s";
  hr ();
  List.iter
    (fun n ->
      let rng = Rng.create 47 in
      let g =
        Generators.weighted_connected_gnp ~rng ~n ~avg_degree:8.0 ~max_w:100000
      in
      let t0 = Unix.gettimeofday () in
      let out = Ultra_sparse.run ~t:4 g in
      let dt = Unix.gettimeofday () -. t0 in
      let sp = out.Ultra_sparse.spanner in
      let s =
        Stretch.sampled_edge_stretch ~rng:(Rng.create 1) ~samples:128 g
          sp.Spanner.keep
      in
      fmt "%8d %9d %9d %9d %9s %10d %12.2f %9.0f\n" n (Graph.m g)
        (Spanner.size sp)
        (Ultra_sparse.bound ~n ~t:4)
        (pretty_float s) (Spanner.total_rounds sp) dt
        (float_of_int (Graph.m g) /. dt))
    sizes;
  fmt
    "(*) stretch sampled over 128 source vertices at this scale.\n\
     shape check: near-linear wall-clock in m; the n + n/4 bound holds at \
     every scale.\n"

(* ------------------------------------------------------------------ *)
(* R1 — resilience: certificates, spanners and protocols under faults  *)
(* ------------------------------------------------------------------ *)

let table_r1 ~quick () =
  header
    "R1: resilience — certificates under |F| <= k-1 edge failures, spanner \
     stretch degradation,\nand native protocols on the fault-injecting \
     simulator";
  (* --- certificates on an exactly k-edge-connected family --- *)
  let n = if quick then 48 else 96 in
  let budget = if quick then 400 else 1500 in
  fmt
    "certificates on Harary H_{k,%d} (lambda = k exactly): H - F must have \
     the components of G - F\nfor every failure set |F| <= k-1 (the paper's \
     guarantee, Appendix G).\n"
    n;
  fmt "%-12s %3s %9s %9s %12s %11s\n" "algorithm" "k" "edges" "trials" "mode"
    "violations";
  hr ();
  List.iter
    (fun k ->
      let g = Generators.harary ~k ~n in
      let row name (c : Certificate.t) =
        let r = Resilience.check_certificate ~rng:(Rng.create 101) ~budget g c in
        fmt "%-12s %3d %9d %9d %12s %11d%s\n" name k (Certificate.size c)
          r.Resilience.trials
          (if r.Resilience.exhaustive then "exhaustive" else "sampled")
          r.Resilience.violations
          (if r.Resilience.violations = 0 then "" else "  VIOLATION")
      in
      row "NI" (Nagamochi_ibaraki.certificate ~k g);
      row "Thurimella" (Thurimella.certificate ~k g);
      row "SpanPack"
        (Spanner_packing.run ~k ~epsilon:0.5 g).Spanner_packing.certificate;
      row "kECSS" (Kecss.approximate ~k g).Kecss.certificate;
      hr ())
    (if quick then [ 2; 3 ] else [ 2; 3; 4; 6 ]);
  (* --- spanner stretch degradation --- *)
  let n = if quick then 192 else 384 in
  let trials = if quick then 12 else 24 in
  let g = Generators.connected_gnp ~rng:(Rng.create 53) ~n ~avg_degree:6.0 in
  fmt
    "\nspanner stretch degradation (gnp n=%d, m=%d): exact stretch of H - F \
     w.r.t. G - F over %d\nsampled deletion sets (spanners promise nothing \
     under failures — this measures the damage).\n"
    (Graph.n g) (Graph.m g) trials;
  fmt "%-22s %4s %9s %9s %8s %13s\n" "spanner" "|F|" "baseline" "worst" "mean"
    "disconnected";
  hr ();
  let spanners =
    [
      ("BS07 k=3", (Baswana_sen.run ~rng:(Rng.create 3) ~k:3 g).Baswana_sen.spanner);
      ("stretch-friendly t=4", (Ultra_sparse.run ~t:4 g).Ultra_sparse.spanner);
      ("full graph", Spanner.of_eids g (List.init (Graph.m g) Fun.id));
    ]
  in
  List.iter
    (fun (name, sp) ->
      List.iter
        (fun failures ->
          let r =
            Resilience.check_spanner ~rng:(Rng.create 7) ~trials ~failures g
              sp.Spanner.keep
          in
          fmt "%-22s %4d %9s %9s %8s %8d/%d\n" name failures
            (pretty_float r.Resilience.baseline)
            (pretty_float r.Resilience.worst_stretch)
            (pretty_float r.Resilience.mean_stretch)
            r.Resilience.disconnected r.Resilience.span_trials)
        [ 1; 3 ];
      hr ())
    spanners;
  (* --- native protocols under injected faults --- *)
  let n = if quick then 256 else 1024 in
  let g = Generators.connected_gnp ~rng:(Rng.create 59) ~n ~avg_degree:8.0 in
  fmt
    "\nBFS flood under seeded fault schedules (gnp n=%d): reached = vertices \
     with a BFS distance.\n"
    n;
  fmt "%-26s %9s %8s %10s %8s %9s %8s\n" "fault plan" "reached" "rounds"
    "messages" "drops" "crashes" "severed";
  hr ();
  let plans =
    [
      ("no faults", Faults.empty);
      ("drop 10%", Faults.with_drops ~seed:71 0.10 Faults.empty);
      ("drop 30%", Faults.with_drops ~seed:71 0.30 Faults.empty);
      ( "8 crashes by round 3",
        Faults.random_crashes ~rng:(Rng.create 73) ~n ~within:3 ~count:8
          Faults.empty );
      ( "48 links cut + drop 5%",
        Faults.random_link_failures ~rng:(Rng.create 79) g ~within:4 ~count:48
          (Faults.with_drops ~seed:83 0.05 Faults.empty) );
    ]
  in
  List.iter
    (fun (name, plan) ->
      let result, stats = Programs.bfs ~faults:(Faults.make plan) g ~root:0 in
      let reached =
        Array.fold_left (fun a d -> if d >= 0 then a + 1 else a) 0
          result.Programs.dist
      in
      fmt "%-26s %5d/%-3d %8d %10d %8d %9d %8d\n" name reached n
        stats.Network.rounds stats.Network.messages stats.Network.drops
        stats.Network.crashed_nodes stats.Network.severed_links)
    plans;
  (* determinism: the same (seed, plan) replays bit-for-bit *)
  let replay plan =
    let f = Faults.make plan in
    let result, stats = Programs.bfs ~faults:f g ~root:0 in
    (result, stats, Faults.events f)
  in
  let plan =
    Faults.random_crashes ~rng:(Rng.create 73) ~n ~within:3 ~count:8
      (Faults.with_drops ~seed:71 0.30 Faults.empty)
  in
  fmt "\nreplay determinism (same seed + plan, fresh injector): %s\n"
    (if replay plan = replay plan then "states, stats and event logs identical"
     else "MISMATCH");
  fmt
    "shape check: zero certificate violations at every k (exhaustive where \
     the set count fits);\nthe full graph degrades to stretch 1.0 exactly \
     while sparse spanners stretch or disconnect;\nfault runs replay \
     deterministically.\n"

(* ------------------------------------------------------------------ *)
(* O1 — observability: convergence traces on the real simulator         *)
(* ------------------------------------------------------------------ *)

let print_convergence tr =
  let recs = Trace.rounds tr in
  fmt "  %6s %9s %9s %8s %8s\n" "round" "active" "messages" "words" "halted";
  let show r =
    let x = recs.(r) in
    fmt "  %6d %9d %9d %8d %8d\n" x.Trace.round x.Trace.active
      x.Trace.delivered x.Trace.words x.Trace.halted
  in
  let nr = Array.length recs in
  if nr <= 14 then
    for r = 0 to nr - 1 do show r done
  else begin
    for r = 0 to 9 do show r done;
    fmt "  %6s    (%d rounds elided)\n" "..." (nr - 13);
    for r = nr - 3 to nr - 1 do show r done
  end

(* Min-id flooding on a (possibly disconnected) peeled subgraph settles in
   at most max over components of ecc(min vertex of the component) rounds,
   plus O(1) for the final quiet round and halting handshake. *)
let forest_round_bound sub =
  let comp_of, ncomp = Connectivity.components sub in
  let minv = Array.make (max 1 ncomp) max_int in
  Array.iteri (fun v c -> if v < minv.(c) then minv.(c) <- v) comp_of;
  let b = ref 0 in
  Array.iter
    (fun mv ->
      if mv < max_int then
        Array.iteri
          (fun _ d -> if d > !b then b := d)
          (Bfs.distances sub mv))
    minv;
  !b + 3

let table_o1 ~quick () =
  header
    "O1: convergence traces — per-round messages / active nodes from the \
     Trace sink,\nchecked against the round bounds (BFS ~ ecc, distributed \
     BS ~ 2k+O(1), forest peeling ~ ecc)";
  let n = if quick then 256 else 1024 in
  let profile = Profile.create () in
  let g = Generators.connected_gnp ~rng:(Rng.create 61) ~n ~avg_degree:8.0 in
  let gw = Generators.randomize_weights ~rng:(Rng.create 3) ~lo:1 ~hi:1000 g in
  let ecc = Bfs.eccentricity g 0 in
  (* BFS flood *)
  let trb = Trace.create g in
  let _, s =
    Profile.time profile "bfs" (fun () -> Programs.bfs ~trace:trb g ~root:0)
  in
  fmt "\nBFS flood (gnp n=%d, ecc(root)=%d): %d rounds, %d messages — bound \
       ecc+2: %s\n"
    n ecc s.Network.rounds s.Network.messages
    (if s.Network.rounds <= ecc + 2 then "OK" else "VIOLATION");
  print_convergence trb;
  (* distributed Baswana-Sen *)
  let k = 3 in
  let trs = Trace.create gw in
  let out =
    Profile.time profile "baswana-sen" (fun () ->
        Bs_distributed.run ~trace:trs ~seed:7 ~k gw)
  in
  let sb = out.Bs_distributed.network_stats in
  fmt "\ndistributed Baswana-Sen (k=%d, weighted): %d rounds, %d messages — \
       bound 2k+3 = %d: %s\n"
    k sb.Network.rounds sb.Network.messages ((2 * k) + 3)
    (if sb.Network.rounds <= (2 * k) + 3 then "OK" else "VIOLATION");
  print_convergence trs;
  (* Thurimella certificate substrate: k spanning-forest peels *)
  let kf = 3 in
  fmt "\nThurimella substrate (k=%d): min-id forest peeling; each forest \
       settles within the\ncomponent-eccentricity bound of its remaining \
       subgraph.\n"
    kf;
  fmt "  %6s %9s %9s %9s %9s\n" "forest" "edges" "rounds" "bound" "messages";
  let removed = Array.make (Graph.m g) false in
  let first_trace = ref None in
  (try
     for i = 1 to kf do
       let keep = Array.map not removed in
       let sub, mapping = Graph.sub_with_mapping g keep in
       let tr = Trace.create sub in
       let eids, sf =
         Profile.time profile "thurimella-forests" (fun () ->
             Programs.spanning_forest ~trace:tr sub)
       in
       if !first_trace = None then first_trace := Some tr;
       let bound = forest_round_bound sub in
       fmt "  %6d %9d %9d %9d %9d %s\n" i (List.length eids) sf.Network.rounds
         bound sf.Network.messages
         (if sf.Network.rounds <= bound then "OK" else "VIOLATION");
       List.iter (fun eid -> removed.(mapping.(eid)) <- true) eids;
       if eids = [] then raise Exit
     done
   with Exit -> ());
  (match !first_trace with
  | Some tr ->
      fmt "first forest convergence:\n";
      print_convergence tr
  | None -> ());
  (* congestion digest + wall-clock ledger *)
  fmt "\nBFS congestion digest (Stats percentiles, top edges):\n";
  Format.printf "%a@?" (Trace.pp_summary ~top:5) trb;
  fmt "\nwall-clock phases:\n";
  Format.printf "%a@." Profile.pp profile;
  fmt
    "\nshape check: every traced protocol meets its round bound; per-round \
     message sums match\nNetwork.stats (enforced by the test-suite); traces \
     export via `ultraspan trace`.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock suite: one Test per table                        *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let g_small =
    Generators.weighted_connected_gnp ~rng:(Rng.create 1) ~n:256
      ~avg_degree:8.0 ~max_w:1000
  in
  let gu_small = Graph.with_unit_weights g_small in
  let tests =
    [
      Test.make ~name:"t1:linear_size_det" (Staged.stage (fun () ->
          ignore (Linear_size.run g_small)));
      Test.make ~name:"t2:bs_derand_k3" (Staged.stage (fun () ->
          ignore (Bs_derand.run ~k:3 g_small)));
      Test.make ~name:"t3:ultra_sparse_t4" (Staged.stage (fun () ->
          ignore (Ultra_sparse.run ~t:4 g_small)));
      Test.make ~name:"t4:stretch_friendly_t8" (Staged.stage (fun () ->
          ignore (Stretch_friendly.partition ~t:8 g_small)));
      Test.make ~name:"t5:clustering_sparse" (Staged.stage (fun () ->
          ignore (Clustering_spanner.sparse gu_small)));
      Test.make ~name:"f1:clustering_ultra_t2" (Staged.stage (fun () ->
          ignore (Clustering_spanner.ultra_sparse ~t:2 gu_small)));
      Test.make ~name:"t6:spanner_packing_k3" (Staged.stage (fun () ->
          ignore (Spanner_packing.run ~k:3 ~epsilon:0.5 g_small)));
      Test.make ~name:"a1:baswana_sen_k3" (Staged.stage (fun () ->
          ignore (Baswana_sen.run ~rng:(Rng.create 2) ~k:3 g_small)));
      Test.make ~name:"a2:naive_star_t8" (Staged.stage (fun () ->
          ignore
            (Stretch_friendly.partition_with_strategy
               ~strategy:Stretch_friendly.Naive_star ~t:8 g_small)));
    ]
  in
  let grouped = Test.make_grouped ~name:"tables" tests in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let analysis =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  header "Bechamel wall-clock suite (monotonic clock per run)";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Printf.sprintf "%14.0f ns/run" est
          | _ -> "(no estimate)"
        in
        (name, est) :: acc)
      analysis []
  in
  List.iter (fun (name, est) -> fmt "%-40s %s\n" name est)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let bech = List.mem "--bechamel" args in
  let rec selected = function
    | "--table" :: id :: _ -> Some id
    | _ :: rest -> selected rest
    | [] -> None
  in
  let all =
    [
      ("t1", table1); ("t2", table2); ("t3", table3); ("t4", table4);
      ("f1", fig1); ("t5", table5); ("t6", table6); ("t7", table7);
      ("t8", table8); ("t9", table9); ("r1", table_r1);
      ("a1", ablation_derand); ("a2", ablation_merge); ("o1", table_o1);
    ]
  in
  if bech then bechamel_suite ()
  else begin
    match selected args with
    | Some id -> (
        match List.assoc_opt id all with
        | Some f -> f ~quick ()
        | None ->
            prerr_endline ("unknown table " ^ id);
            exit 1)
    | None -> List.iter (fun (_, f) -> f ~quick ()) all
  end
